// Ablation (DESIGN.md): the utilization-ranked fusion candidate policy of
// §4.1 against a random-legal-sub-graph baseline.
//
// For every testbed topology with under-utilized operators, both policies
// pick one fusion.  We report how often the chosen fusion preserves
// throughput (no new bottleneck), and how many actors it saves (members
// fused into one).  Ranking by utilization should dominate the random
// choice on both axes: it targets exactly the operators whose idle time is
// pure scheduling overhead.
//
// Flags: --topologies=N --seed=S
#include <algorithm>
#include <iostream>

#include "core/fusion.hpp"
#include "gen/workload.hpp"
#include "harness/args.hpp"
#include "harness/table.hpp"

namespace {

/// Random policy: random seed vertex, grow a random legal group up to 3
/// members (no utilization information).
std::optional<ss::FusionSpec> random_fusion(const ss::Topology& t, ss::Rng& rng) {
  for (int attempt = 0; attempt < 50; ++attempt) {
    const auto seed =
        static_cast<ss::OpIndex>(rng.rand_int(1, static_cast<int>(t.num_operators()) - 1));
    std::vector<ss::OpIndex> members{seed};
    for (int grow = 0; grow < 2; ++grow) {
      std::vector<ss::OpIndex> frontier;
      for (ss::OpIndex m : members) {
        for (const ss::Edge& e : t.out_edges(m)) frontier.push_back(e.to);
      }
      if (frontier.empty()) break;
      const ss::OpIndex pick = frontier[static_cast<std::size_t>(
          rng.rand_int(0, static_cast<int>(frontier.size()) - 1))];
      if (std::find(members.begin(), members.end(), pick) != members.end()) continue;
      members.push_back(pick);
    }
    ss::FusionSpec spec{members, {}};
    if (members.size() >= 2 && ss::check_fusion_legal(t, spec).empty()) return spec;
  }
  return std::nullopt;
}

}  // namespace

int main(int argc, char** argv) {
  using ss::harness::Table;
  const ss::harness::Args args(argc, argv);
  const int topologies = static_cast<int>(args.get_int("topologies", 50));
  const std::uint64_t seed = static_cast<std::uint64_t>(args.get_int("seed", 2018));

  std::cout << "== Ablation: utilization-ranked fusion candidates vs random legal fusions ==\n\n";

  const auto testbed = ss::make_testbed(seed, topologies);
  ss::Rng rng(seed ^ 0xf00d);

  int ranked_applicable = 0;
  int ranked_safe = 0;
  int ranked_actors_saved = 0;
  int random_applicable = 0;
  int random_safe = 0;
  int random_actors_saved = 0;

  for (const ss::Topology& t : testbed) {
    const ss::SteadyStateResult rates = ss::steady_state(t);

    const auto candidates = ss::suggest_fusion_candidates(t, rates, {});
    if (!candidates.empty()) {
      ++ranked_applicable;
      const ss::FusionResult result = ss::apply_fusion(t, candidates.front().spec);
      if (!result.introduces_bottleneck &&
          result.throughput_after >= result.throughput_before * (1 - 1e-6)) {
        ++ranked_safe;
        ranked_actors_saved +=
            static_cast<int>(candidates.front().spec.members.size()) - 1;
      }
    }

    if (auto spec = random_fusion(t, rng)) {
      ++random_applicable;
      const ss::FusionResult result = ss::apply_fusion(t, *spec);
      if (!result.introduces_bottleneck &&
          result.throughput_after >= result.throughput_before * (1 - 1e-6)) {
        ++random_safe;
        random_actors_saved += static_cast<int>(spec->members.size()) - 1;
      }
    }
  }

  Table table({"policy", "found a fusion", "throughput-safe", "actors saved (safe fusions)"});
  table.add_row({"utilization-ranked (SpinStreams)", std::to_string(ranked_applicable),
                 std::to_string(ranked_safe), std::to_string(ranked_actors_saved)});
  table.add_row({"random legal sub-graph", std::to_string(random_applicable),
                 std::to_string(random_safe), std::to_string(random_actors_saved)});
  table.print(std::cout);

  std::cout << "\nreading: the ranked policy only proposes fusions predicted safe, so its\n"
               "safe-rate should be ~100%; random fusions regularly merge busy operators\n"
               "and would have degraded throughput had the tool not checked first\n";
  return 0;
}
