// Ablation: what fusion actually buys — and what it costs.
//
// Fusion serializes its members, so it can never *raise* the throughput of
// an already-healthy pipeline; its benefits are fewer actors (threads,
// mailboxes) and lower end-to-end latency, because each item pays the
// per-hop scheduling/communication overhead once instead of once per
// member (paper §2: fusion "saves communication latency and reduces
// scheduling overhead").  The risk is exactly Table 2's: the summed
// service time plus overhead can saturate.  This bench sweeps the per-hop
// overhead h on an over-decomposed five-stage tail and reports, for the
// fine-grained and the fused version: throughput, end-to-end sojourn
// (DES, Little's law), and the number of servers — showing the regime
// where fusion is free and better (small h) and the crossover where the
// fused operator saturates and SpinStreams would raise the Table 2 alert.
//
// Flags: --duration=SEC
#include <iostream>

#include "core/fusion.hpp"
#include "core/steady_state.hpp"
#include "harness/args.hpp"
#include "harness/table.hpp"
#include "sim/des.hpp"

namespace {

double total_sojourn(const ss::sim::SimResult& sim, const ss::Topology& t) {
  double total = 0.0;
  for (ss::OpIndex i = 0; i < t.num_operators(); ++i) {
    if (i == t.source()) continue;
    total += sim.ops[i].mean_sojourn;
  }
  return total;
}

}  // namespace

int main(int argc, char** argv) {
  using ss::harness::Table;
  const ss::harness::Args args(argc, argv);
  const double duration = args.get_double("duration", 100.0);

  // src (1 ms -> 1000 t/s) feeding five 0.1 ms micro-operators: each stage
  // is 10% utilized — the over-decomposed shape fusion exists for.
  ss::Topology::Builder b;
  b.add_operator("src", 1.0e-3);
  for (int i = 0; i < 5; ++i) {
    b.add_operator("stage" + std::to_string(i), 0.1e-3);
    b.add_edge(static_cast<ss::OpIndex>(i), static_cast<ss::OpIndex>(i + 1));
  }
  const ss::Topology fine = b.build();
  const ss::FusionSpec spec{{1, 2, 3, 4, 5}, "tail"};
  const ss::FusionResult fusion = ss::apply_fusion(fine, spec);
  const ss::Topology& fused = fusion.topology;

  std::cout << "== Ablation: fusion vs per-hop overhead ==\n"
            << "five 0.1 ms stages at 1000 tuples/s; fused service time "
            << Table::num(fusion.service_time * 1e3, 2)
            << " ms; servers: 6 fine-grained vs 2 fused\n\n";

  Table table({"hop overhead (us)", "fine t/s", "fused t/s", "fine latency (ms)",
               "fused latency (ms)", "latency saved"});
  for (double overhead_us : {0.0, 20.0, 100.0, 300.0, 500.0, 700.0}) {
    ss::sim::SimOptions options;
    options.duration = duration;
    options.hop_overhead = overhead_us * 1e-6;
    // Deterministic service: these are fixed-cost operators (the threaded
    // runtime's timed waits).  Under high-variance laws the fused
    // operator's higher utilization adds queueing that can offset the hop
    // savings — run with exponential to see that regime.
    options.law = ss::sim::ServiceLaw::deterministic();
    const ss::sim::SimResult fine_sim = ss::sim::simulate(fine, options);
    const ss::sim::SimResult fused_sim = ss::sim::simulate(fused, options);
    const double fine_latency = total_sojourn(fine_sim, fine);
    const double fused_latency = total_sojourn(fused_sim, fused);
    table.add_row({Table::num(overhead_us, 0), Table::num(fine_sim.throughput, 1),
                   Table::num(fused_sim.throughput, 1), Table::num(fine_latency * 1e3, 2),
                   Table::num(fused_latency * 1e3, 2),
                   Table::num((1.0 - fused_latency / fine_latency) * 100.0, 0) + "%"});
  }
  table.print(std::cout);
  std::cout
      << "\nreading: with no hop cost the versions tie (0.5 ms of work either\n"
         "way, minus pipelining).  As the per-hop cost grows, the fused actor\n"
         "pays it once per item instead of five times: same throughput, several\n"
         "times lower latency, a third of the actors.  Past ~500 us the fused\n"
         "operator's summed service time crosses the source period and it\n"
         "saturates while the fine-grained version still ingests everything —\n"
         "exactly the situation the tool's Alg. 1 re-check catches before\n"
         "committing a fusion (Table 2's alert)\n";
  return 0;
}
