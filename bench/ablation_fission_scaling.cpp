// Ablation: fission scaling curve — throughput vs replica count for one
// bottleneck operator, model vs simulator, for a stateless operator (ideal
// linear scaling up to the source rate) and a partitioned-stateful one with
// skewed keys (scaling flattens at mu / p_max, the Alg. 2 "mitigated"
// regime).  This is the per-operator view behind Definition 1
// (n_opt = ceil(rho)).
//
// Flags: --duration=SEC --max-replicas=N
#include <iostream>

#include "core/key_partitioning.hpp"
#include "core/steady_state.hpp"
#include "harness/args.hpp"
#include "harness/table.hpp"
#include "sim/des.hpp"

namespace {

ss::Topology make_pipeline(ss::StateKind state, const ss::KeyDistribution& keys) {
  ss::Topology::Builder b;
  b.add_operator("src", 1e-3);  // 1000/s
  ss::OperatorSpec work;
  work.name = "work";
  work.service_time = 6e-3;  // rho = 6 at full source rate
  work.state = state;
  work.keys = keys;
  b.add_operator(std::move(work));
  b.add_operator("sink", 0.05e-3);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  return b.build();
}

}  // namespace

int main(int argc, char** argv) {
  using ss::harness::Table;
  const ss::harness::Args args(argc, argv);
  const double duration = args.get_double("duration", 120.0);
  const int max_replicas = static_cast<int>(args.get_int("max-replicas", 10));

  std::cout << "== Ablation: fission scaling (throughput vs replicas) ==\n"
            << "bottleneck: mu = 166.7/s, source = 1000/s, n_opt = ceil(rho) = 6\n\n";

  const ss::KeyDistribution skewed = ss::KeyDistribution::zipf(100, 1.4);
  const ss::Topology stateless = make_pipeline(ss::StateKind::kStateless, {});
  const ss::Topology partitioned =
      make_pipeline(ss::StateKind::kPartitionedStateful, skewed);

  Table table({"replicas", "stateless model", "stateless sim", "partitioned model",
               "partitioned sim", "p_max"});
  for (int n = 1; n <= max_replicas; ++n) {
    ss::ReplicationPlan stateless_plan;
    stateless_plan.replicas = {1, n, 1};

    const ss::KeyPartition part = ss::partition_keys(skewed, n);
    ss::ReplicationPlan partitioned_plan;
    partitioned_plan.replicas = {1, part.replicas, 1};
    partitioned_plan.max_share = {0.0, part.max_share, 0.0};

    ss::sim::SimOptions options;
    options.duration = duration;
    options.replication = stateless_plan;
    const double stateless_sim = ss::sim::simulate(stateless, options).throughput;
    options.replication = partitioned_plan;
    options.partitions = {ss::KeyPartition{}, part, ss::KeyPartition{}};
    const double partitioned_sim = ss::sim::simulate(partitioned, options).throughput;

    table.add_row({std::to_string(n),
                   Table::num(ss::steady_state(stateless, stateless_plan).throughput(), 1),
                   Table::num(stateless_sim, 1),
                   Table::num(ss::steady_state(partitioned, partitioned_plan).throughput(), 1),
                   Table::num(partitioned_sim, 1), Table::num(part.max_share, 3)});
  }
  table.print(std::cout);
  std::cout << "\nreading: the stateless curve is linear in n until the source rate caps\n"
               "it at n_opt = 6; the partitioned curve flattens once n * p_max stops\n"
               "shrinking — the heaviest key becomes the floor (Alg. 2 lines 13-23)\n";
  return 0;
}
