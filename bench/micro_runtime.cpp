// Micro-benchmarks of the runtime substrate: mailbox operations (the cost
// of one actor hop), routing decisions, and end-to-end pipeline hops
// through the engine — the overheads operator fusion exists to remove.
//
// --mailbox=mutex|ring selects the inbox engine every benchmark runs on
// (default ring); --mailbox=both skips Google Benchmark entirely and runs
// the dedicated A/B comparison: the pooled engine's pipeline-hop benchmark
// once per mailbox kind, printing per-hop nanoseconds for each and a
// machine-parseable throughput delta line (the CI perf-smoke job greps
// "ring vs mutex:" and fails the build if the ratio drops below 1.0).
// --profile=both is the analogous A/B for the online profiler: the same
// workload with the estimator off vs on-and-disarmed, gating the disarmed
// overhead ("profile on vs off:" must stay >= 0.98x).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "runtime/engine.hpp"
#include "runtime/mailbox.hpp"
#include "runtime/routing.hpp"
#include "runtime/synthetic.hpp"

namespace {

using namespace std::chrono_literals;
using ss::runtime::Mailbox;
using ss::runtime::MailboxKind;
using ss::runtime::Message;
using ss::runtime::OverflowPolicy;
using ss::runtime::Tuple;

/// Inbox engine under test, set once by --mailbox before any benchmark runs.
MailboxKind g_mailbox = MailboxKind::kRing;

void BM_MailboxSendReceive(benchmark::State& state) {
  Mailbox box(64, OverflowPolicy::kBlockAfterService, g_mailbox);
  const Message m = Message::data(Tuple{}, 0, 1);
  Message out;
  for (auto _ : state) {
    benchmark::DoNotOptimize(box.send(m, 1s));
    benchmark::DoNotOptimize(box.receive(out));
  }
}
BENCHMARK(BM_MailboxSendReceive);

void BM_MailboxPingPongThreads(benchmark::State& state) {
  // Producer thread + benchmark thread: the cross-thread hop cost.
  Mailbox request(64, OverflowPolicy::kBlockAfterService, g_mailbox);
  Mailbox response(64, OverflowPolicy::kBlockAfterService, g_mailbox);
  std::thread echo([&] {
    Message m;
    while (request.receive(m)) {
      if (m.kind == Message::Kind::kShutdown) break;
      response.send_unbounded(m);
    }
  });
  const Message m = Message::data(Tuple{}, 0, 1);
  Message out;
  for (auto _ : state) {
    benchmark::DoNotOptimize(request.send(m, 1s));
    benchmark::DoNotOptimize(response.receive(out));
  }
  request.send_unbounded(Message::shutdown());
  echo.join();
}
BENCHMARK(BM_MailboxPingPongThreads);

void BM_MailboxTrySend(benchmark::State& state) {
  // The pooled scheduler's fast path: no blocking machinery touched.
  Mailbox box(64, OverflowPolicy::kBlockAfterService, g_mailbox);
  const Message m = Message::data(Tuple{}, 0, 1);
  Message out;
  for (auto _ : state) {
    benchmark::DoNotOptimize(box.try_send(m));
    benchmark::DoNotOptimize(box.try_receive(out));
  }
}
BENCHMARK(BM_MailboxTrySend);

void BM_MailboxTrySendBatch(benchmark::State& state) {
  // The output-staging hand-off: one credit reservation moves a whole
  // MessageBatch worth of messages.
  Mailbox box(64, OverflowPolicy::kBlockAfterService, g_mailbox);
  Message msgs[ss::runtime::MessageBatch::kCapacity];
  for (auto& m : msgs) m = Message::data(Tuple{}, 0, 1);
  Message out;
  for (auto _ : state) {
    const std::size_t n =
        box.try_send_batch(msgs, ss::runtime::MessageBatch::kCapacity);
    for (std::size_t i = 0; i < n; ++i) box.try_receive(out);
    benchmark::DoNotOptimize(n);
  }
}
BENCHMARK(BM_MailboxTrySendBatch);

void BM_EdgeRouterChoose(benchmark::State& state) {
  ss::Topology::Builder b;
  b.add_operator("src", 1e-3);
  for (int i = 0; i < 4; ++i) {
    b.add_operator("d" + std::to_string(i), 1e-3);
    b.add_edge(0, static_cast<ss::OpIndex>(i + 1), 0.25);
  }
  const ss::Topology t = b.build();
  ss::runtime::EdgeRouter router(t, 0);
  ss::Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(router.choose(rng));
  }
}
BENCHMARK(BM_EdgeRouterChoose);

void BM_ReplicaSelectorByKey(benchmark::State& state) {
  ss::KeyPartition partition = ss::partition_keys(ss::KeyDistribution::zipf(1024, 0.5), 8);
  auto selector = ss::runtime::ReplicaSelector::by_key(partition);
  ss::Rng rng(7);
  std::int64_t key = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(selector.select(key++, rng));
  }
}
BENCHMARK(BM_ReplicaSelectorByKey);

/// One run of the pipeline-hop workload: a `stages`-hop chain of
/// pass-through synthetic operators with near-zero service time pushes
/// `items` tuples end to end.  Returns the wall-clock seconds of the run.
double run_pipeline_hops(ss::runtime::SchedulerKind scheduler, MailboxKind mailbox,
                         int stages, std::int64_t items, int workers,
                         bool profile = false) {
  ss::Topology::Builder b;
  b.add_operator("src", 1e-6);
  for (int i = 0; i < stages; ++i) {
    b.add_operator("s" + std::to_string(i), 1e-7);
    b.add_edge(static_cast<ss::OpIndex>(i), static_cast<ss::OpIndex>(i + 1));
  }
  const ss::Topology t = b.build();
  ss::runtime::EngineConfig config;
  config.scheduler = scheduler;
  config.mailbox = mailbox;
  config.workers = workers;
  config.profile = profile;
  // Fold fast so the estimator reaches confidence and disarms within the
  // first few tens of milliseconds: the A/B measures the *disarmed*
  // steady-state overhead (thinned sampling), which is what a long
  // production run pays.  At the default 0.25 s period a ~0.2 s benchmark
  // run would spend itself entirely in the armed dense-sampling window.
  if (profile) config.profile_period = 0.02;
  ss::runtime::Engine engine(t, ss::runtime::Deployment{},
                             ss::runtime::synthetic_factory(0.0, items), config);
  const auto stats = engine.run_until_complete(std::chrono::duration<double>(60.0));
  if (std::getenv("AB_DEBUG") != nullptr) {
    const auto c = engine.scheduler_counters();
    std::printf("  [dbg] pushes=%llu pops=%llu steals=%llu parks=%llu wakes=%llu batches=%llu bmsgs=%llu maxb=%llu ringe=%llu spills=%llu\n",
      (unsigned long long)c.pushes,(unsigned long long)c.local_pops,(unsigned long long)c.steals,
      (unsigned long long)c.parks,(unsigned long long)c.wakeups,(unsigned long long)c.batches,
      (unsigned long long)c.batch_messages,(unsigned long long)c.max_batch,
      (unsigned long long)c.ring_enqueues,(unsigned long long)c.ring_spills);
  }
  return stats.total_seconds;
}

/// Full engine: N-stage pipeline; reports tuples/second through the whole
/// chain, i.e. the per-hop actor overhead fusion removes.  Runs on both
/// execution backends so the hop cost of the dedicated-thread and the
/// pooled scheduler can be compared directly.
void engine_pipeline_hops(benchmark::State& state, ss::runtime::SchedulerKind scheduler) {
  const auto stages = static_cast<int>(state.range(0));
  constexpr std::int64_t kItems = 20000;
  for (auto _ : state) {
    const double seconds = run_pipeline_hops(scheduler, g_mailbox, stages, kItems, 0);
    state.counters["tuples/s"] =
        benchmark::Counter(static_cast<double>(kItems) / seconds);
    state.counters["hop_ns"] = benchmark::Counter(
        seconds * 1e9 / (static_cast<double>(kItems) * stages));
  }
}

void BM_EnginePipelineHops(benchmark::State& state) {
  engine_pipeline_hops(state, ss::runtime::SchedulerKind::kThreadPerActor);
}
BENCHMARK(BM_EnginePipelineHops)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

void BM_EnginePipelineHopsPooled(benchmark::State& state) {
  engine_pipeline_hops(state, ss::runtime::SchedulerKind::kPooled);
}
BENCHMARK(BM_EnginePipelineHopsPooled)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

/// The --mailbox=both comparison: the pooled pipeline-hop workload run as
/// `kReps` mutex/ring pairs (median of per-pair ratios, so a stray scheduler
/// hiccup cannot fake a regression), then the delta line CI parses.
int run_mailbox_ab() {
  // AB_STAGES / AB_WORKERS / AB_ITEMS env overrides support local
  // experimentation (cost decomposition); CI runs the defaults.
  const char* stages_env = std::getenv("AB_STAGES");
  const int kStages = stages_env != nullptr ? std::atoi(stages_env) : 4;
  const char* workers_env = std::getenv("AB_WORKERS");
  const int kWorkers = workers_env != nullptr ? std::atoi(workers_env) : 4;
  // Long enough that one run is ~0.1 s: 20k-item runs are dominated by
  // scheduler noise on small/oversubscribed hosts and the ratio swings
  // +-25% run to run; 60k with best-of-5 keeps the gate stable.
  constexpr std::int64_t kDefaultItems = 60000;
  const char* items_env = std::getenv("AB_ITEMS");
  const std::int64_t kItems = items_env != nullptr ? std::atoll(items_env) : kDefaultItems;
  constexpr int kReps = 5;
  // Paired reps: one mutex run immediately followed by one ring run, the
  // reported ratio is the *median* of the per-pair ratios.  Host-load
  // drift (noisy neighbors, frequency scaling) hits both halves of a pair
  // alike and cancels; an unpaired best-of lets a slow phase land on one
  // engine only and fake a regression either way.
  const auto one = [&](MailboxKind kind) {
    return run_pipeline_hops(ss::runtime::SchedulerKind::kPooled, kind, kStages,
                             kItems, kWorkers);
  };
  double mutex_best = 1e300;
  double ring_best = 1e300;
  std::vector<double> ratios;
  for (int r = 0; r < kReps; ++r) {
    const double m = one(MailboxKind::kMutex);
    const double g = one(MailboxKind::kRing);
    mutex_best = std::min(mutex_best, m);
    ring_best = std::min(ring_best, g);
    ratios.push_back(m / g);
  }
  std::sort(ratios.begin(), ratios.end());
  const double ratio = ratios[ratios.size() / 2];
  const double hops = static_cast<double>(kItems) * kStages;
  const double mutex_hop_ns = mutex_best * 1e9 / hops;
  const double ring_hop_ns = ring_best * 1e9 / hops;
  std::printf(
      "mailbox A/B: pool engine, %d workers, %d-stage pipeline, %lld items, "
      "median of %d pairs\n",
      kWorkers, kStages, static_cast<long long>(kItems), kReps);
  std::printf("  mutex: %8.1f ns/hop  %12.0f tuples/s\n", mutex_hop_ns,
              static_cast<double>(kItems) / mutex_best);
  std::printf("  ring:  %8.1f ns/hop  %12.0f tuples/s\n", ring_hop_ns,
              static_cast<double>(kItems) / ring_best);
  std::printf("ring vs mutex: %.2fx throughput (per-hop %.1f ns -> %.1f ns)\n",
              ratio, mutex_hop_ns, ring_hop_ns);
  return 0;
}

/// The --profile=both comparison: the pooled pipeline-hop workload run
/// `kReps` times per side, best-of each.  "On" runs with a 20 ms fold
/// period so the estimator disarms almost immediately — the line CI parses
/// ("profile on vs off:") is therefore the *disarmed* overhead of the
/// online profiler, gated at <= 2%.
int run_profile_ab() {
  const char* stages_env = std::getenv("AB_STAGES");
  const int kStages = stages_env != nullptr ? std::atoi(stages_env) : 4;
  const char* workers_env = std::getenv("AB_WORKERS");
  const int kWorkers = workers_env != nullptr ? std::atoi(workers_env) : 4;
  // Longer runs and more reps than the mailbox A/B: a 2% overhead gate
  // needs the noise floor pushed below the +-5% that 60k-item runs show.
  constexpr std::int64_t kDefaultItems = 150000;
  const char* items_env = std::getenv("AB_ITEMS");
  const std::int64_t kItems = items_env != nullptr ? std::atoll(items_env) : kDefaultItems;
  constexpr int kReps = 7;
  const auto one = [&](bool profile) {
    return run_pipeline_hops(ss::runtime::SchedulerKind::kPooled, g_mailbox,
                             kStages, kItems, kWorkers, profile);
  };
  double off_best = 1e300;
  double on_best = 1e300;
  for (int r = 0; r < kReps; ++r) {
    off_best = std::min(off_best, one(false));
    on_best = std::min(on_best, one(true));
  }
  // Best-of rather than the mailbox A/B's per-pair median: a 2% gate sits
  // below this workload's per-run scheduler noise (+-8% pair to pair), and
  // best-of-N suppresses one-sided hiccups that pairing cannot cancel.
  const double ratio = off_best / on_best;
  const double hops = static_cast<double>(kItems) * kStages;
  const double off_hop_ns = off_best * 1e9 / hops;
  const double on_hop_ns = on_best * 1e9 / hops;
  std::printf(
      "profiler A/B: pool engine, %d workers, %d-stage pipeline, %lld items, "
      "median of %d pairs\n",
      kWorkers, kStages, static_cast<long long>(kItems), kReps);
  std::printf("  profile off: %8.1f ns/hop  %12.0f tuples/s\n", off_hop_ns,
              static_cast<double>(kItems) / off_best);
  std::printf("  profile on:  %8.1f ns/hop  %12.0f tuples/s\n", on_hop_ns,
              static_cast<double>(kItems) / on_best);
  std::printf(
      "profile on vs off: %.2fx throughput (per-hop %.1f ns -> %.1f ns)\n",
      ratio, off_hop_ns, on_hop_ns);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<char*> args;
  bool both = false;
  bool profile_ab = false;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--mailbox=", 0) == 0) {
      const std::string value = arg.substr(10);
      if (value == "both") {
        both = true;
      } else {
        g_mailbox = ss::runtime::mailbox_kind_from_string(value);  // throws on junk
      }
      continue;
    }
    if (arg == "--profile=both") {
      profile_ab = true;
      continue;
    }
    args.push_back(argv[i]);
  }
  if (both) return run_mailbox_ab();
  if (profile_ab) return run_profile_ab();
  int count = static_cast<int>(args.size());
  benchmark::Initialize(&count, args.data());
  if (benchmark::ReportUnrecognizedArguments(count, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
