// Micro-benchmarks of the runtime substrate: mailbox operations (the cost
// of one actor hop), routing decisions, and end-to-end pipeline hops
// through the engine — the overheads operator fusion exists to remove.
#include <benchmark/benchmark.h>

#include <chrono>
#include <thread>

#include "runtime/engine.hpp"
#include "runtime/mailbox.hpp"
#include "runtime/routing.hpp"
#include "runtime/synthetic.hpp"

namespace {

using namespace std::chrono_literals;
using ss::runtime::Mailbox;
using ss::runtime::Message;
using ss::runtime::Tuple;

void BM_MailboxSendReceive(benchmark::State& state) {
  Mailbox box(64);
  const Message m = Message::data(Tuple{}, 0, 1);
  Message out;
  for (auto _ : state) {
    benchmark::DoNotOptimize(box.send(m, 1s));
    benchmark::DoNotOptimize(box.receive(out));
  }
}
BENCHMARK(BM_MailboxSendReceive);

void BM_MailboxPingPongThreads(benchmark::State& state) {
  // Producer thread + benchmark thread: the cross-thread hop cost.
  Mailbox request(64);
  Mailbox response(64);
  std::thread echo([&] {
    Message m;
    while (request.receive(m)) {
      if (m.kind == Message::Kind::kShutdown) break;
      response.send_unbounded(m);
    }
  });
  const Message m = Message::data(Tuple{}, 0, 1);
  Message out;
  for (auto _ : state) {
    benchmark::DoNotOptimize(request.send(m, 1s));
    benchmark::DoNotOptimize(response.receive(out));
  }
  request.send_unbounded(Message::shutdown());
  echo.join();
}
BENCHMARK(BM_MailboxPingPongThreads);

void BM_MailboxTrySend(benchmark::State& state) {
  // The pooled scheduler's fast path: no blocking machinery touched.
  Mailbox box(64);
  const Message m = Message::data(Tuple{}, 0, 1);
  Message out;
  for (auto _ : state) {
    benchmark::DoNotOptimize(box.try_send(m));
    benchmark::DoNotOptimize(box.try_receive(out));
  }
}
BENCHMARK(BM_MailboxTrySend);

void BM_EdgeRouterChoose(benchmark::State& state) {
  ss::Topology::Builder b;
  b.add_operator("src", 1e-3);
  for (int i = 0; i < 4; ++i) {
    b.add_operator("d" + std::to_string(i), 1e-3);
    b.add_edge(0, static_cast<ss::OpIndex>(i + 1), 0.25);
  }
  const ss::Topology t = b.build();
  ss::runtime::EdgeRouter router(t, 0);
  ss::Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(router.choose(rng));
  }
}
BENCHMARK(BM_EdgeRouterChoose);

void BM_ReplicaSelectorByKey(benchmark::State& state) {
  ss::KeyPartition partition = ss::partition_keys(ss::KeyDistribution::zipf(1024, 0.5), 8);
  auto selector = ss::runtime::ReplicaSelector::by_key(partition);
  ss::Rng rng(7);
  std::int64_t key = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(selector.select(key++, rng));
  }
}
BENCHMARK(BM_ReplicaSelectorByKey);

/// Full engine: N-stage pipeline of pass-through synthetic operators with
/// near-zero service time; reports tuples/second through the whole chain,
/// i.e. the per-hop actor overhead fusion removes.  Runs on both execution
/// backends so the hop cost of the dedicated-thread and the pooled
/// scheduler can be compared directly.
void engine_pipeline_hops(benchmark::State& state, ss::runtime::SchedulerKind scheduler) {
  const auto stages = static_cast<int>(state.range(0));
  for (auto _ : state) {
    ss::Topology::Builder b;
    b.add_operator("src", 1e-6);
    for (int i = 0; i < stages; ++i) {
      b.add_operator("s" + std::to_string(i), 1e-7);
      b.add_edge(static_cast<ss::OpIndex>(i), static_cast<ss::OpIndex>(i + 1));
    }
    const ss::Topology t = b.build();
    constexpr std::int64_t kItems = 20000;
    ss::runtime::EngineConfig config;
    config.scheduler = scheduler;
    ss::runtime::Engine engine(t, ss::runtime::Deployment{},
                               ss::runtime::synthetic_factory(0.0, kItems), config);
    const auto stats = engine.run_until_complete(std::chrono::duration<double>(60.0));
    state.counters["tuples/s"] =
        benchmark::Counter(static_cast<double>(kItems) / stats.total_seconds);
    state.counters["lat_p50_us"] = benchmark::Counter(stats.end_to_end.p50 * 1e6);
    state.counters["lat_p95_us"] = benchmark::Counter(stats.end_to_end.p95 * 1e6);
    state.counters["lat_p99_us"] = benchmark::Counter(stats.end_to_end.p99 * 1e6);
  }
}

void BM_EnginePipelineHops(benchmark::State& state) {
  engine_pipeline_hops(state, ss::runtime::SchedulerKind::kThreadPerActor);
}
BENCHMARK(BM_EnginePipelineHops)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

void BM_EnginePipelineHopsPooled(benchmark::State& state) {
  engine_pipeline_hops(state, ss::runtime::SchedulerKind::kPooled);
}
BENCHMARK(BM_EnginePipelineHopsPooled)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
