// Table 1 (paper §5.4): fusion of the under-utilized sub-graph {op3, op4,
// op5} of the Fig. 11 topology is feasible — the predicted fused service
// time is ~2.80 ms, no new bottleneck appears, and throughput is preserved
// (paper: 1000 t/s predicted, 961-970 t/s measured on Akka).
//
// Flags: --engine=threads|sim --real-duration=SEC --sim-duration=SEC
#include "fig11_common.hpp"

int main(int argc, char** argv) {
  return fig11::run(
      argc, argv, {1.0, 1.2, 0.7, 2.0, 1.5, 0.2},
      "== Table 1: feasible operator fusion on the Fig. 11 example ==",
      "paper reference: T_F = 2.80 ms, rho_F = 0.84, throughput 1000 predicted /\n"
      "961-970 measured; the fusion does not impair performance");
}
