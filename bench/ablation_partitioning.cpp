// Ablation (DESIGN.md): the KeyPartitioning heuristic of Algorithm 2.
//
// Compares the greedy LPT assignment against the naive `key mod n` hash
// split across key skews, reporting the achieved max share p_max (the
// quantity that decides whether a partitioned bottleneck is removed,
// Alg. 2 lines 13-23) and the resulting operator capacity relative to a
// perfect 1/n split.
//
// Flags: --keys=N
#include <iostream>

#include "core/key_partitioning.hpp"
#include "harness/args.hpp"
#include "harness/table.hpp"

namespace {

/// p_max of the naive modulo split.
double modulo_max_share(const ss::KeyDistribution& keys, int replicas) {
  std::vector<double> load(static_cast<std::size_t>(replicas), 0.0);
  for (std::size_t k = 0; k < keys.num_keys(); ++k) {
    load[k % static_cast<std::size_t>(replicas)] += keys.probability(k);
  }
  double best = 0.0;
  for (double v : load) best = std::max(best, v);
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  using ss::harness::Table;
  const ss::harness::Args args(argc, argv);
  const auto keys = static_cast<std::size_t>(args.get_int("keys", 1000));

  std::cout << "== Ablation: KeyPartitioning (greedy LPT) vs modulo hashing ==\n"
            << "key domain: " << keys << " keys, Zipf skew alpha varies\n\n";

  Table table({"alpha", "replicas", "ideal 1/n", "p_max LPT", "p_max mod", "capacity gain"});
  for (double alpha : {0.1, 0.3, 0.6, 0.9, 1.2, 1.5}) {
    for (int n : {4, 16}) {
      const ss::KeyDistribution dist = ss::KeyDistribution::zipf(keys, alpha);
      const ss::KeyPartition lpt = ss::partition_keys(dist, n);
      const double naive = modulo_max_share(dist, n);
      // Operator capacity is mu / p_max: smaller p_max = more capacity.
      table.add_row({Table::num(alpha, 1), std::to_string(n), Table::num(1.0 / n, 4),
                     Table::num(lpt.max_share, 4), Table::num(naive, 4),
                     Table::num(naive / lpt.max_share, 2) + "x"});
    }
  }
  table.print(std::cout);
  std::cout << "\nreading: 'capacity gain' is the extra effective service capacity the\n"
               "LPT split gives a partitioned-stateful bottleneck over modulo hashing;\n"
               "at high skew both converge to the heaviest key's share (the hard floor)\n";
  return 0;
}
