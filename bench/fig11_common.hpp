// Shared machinery for the Table 1 / Table 2 fusion benches: the Fig. 11
// six-operator example topology and the before/after fusion report.
//
// Edge probabilities are the exact values that reproduce every cell of the
// paper's Tables 1-2 (see DESIGN.md): 1->2 (0.7), 1->3 (0.3), 2->6 (1),
// 3->4 (2/3), 3->5 (1/3), 4->5 (0.25), 4->6 (0.75), 5->6 (1).
#pragma once

#include <iostream>
#include <vector>

#include "core/fusion.hpp"
#include "core/steady_state.hpp"
#include "core/topology.hpp"
#include "harness/args.hpp"
#include "harness/experiment.hpp"
#include "harness/table.hpp"

namespace fig11 {

inline ss::Topology topology(const std::vector<double>& service_ms) {
  ss::Topology::Builder b;
  const char* names[] = {"op1", "op2", "op3", "op4", "op5", "op6"};
  for (int i = 0; i < 6; ++i) b.add_operator(names[i], service_ms[i] * 1e-3);
  b.add_edge(0, 1, 0.7);
  b.add_edge(0, 2, 0.3);
  b.add_edge(1, 5, 1.0);
  b.add_edge(2, 3, 2.0 / 3.0);
  b.add_edge(2, 4, 1.0 / 3.0);
  b.add_edge(3, 4, 0.25);
  b.add_edge(3, 5, 0.75);
  b.add_edge(4, 5, 1.0);
  return b.build();
}

/// Prints one topology block in the layout of the paper's Tables 1-2:
/// per-operator mu^-1 / delta^-1 / rho plus predicted and measured
/// throughput.
inline void print_block(const char* title, const ss::Topology& t,
                        const ss::harness::MeasureOptions& options) {
  using ss::harness::Table;
  const ss::SteadyStateResult analysis = ss::steady_state(t);
  const double measured =
      ss::harness::measure(t, ss::runtime::Deployment{}, options).throughput;

  std::cout << title << "\n";
  std::vector<std::string> header{"metric"};
  for (ss::OpIndex i = 0; i < t.num_operators(); ++i) header.push_back(t.op(i).name);
  Table table(std::move(header));

  std::vector<std::string> mu{"mu^-1 (ms)"};
  std::vector<std::string> delta{"delta^-1 (ms)"};
  std::vector<std::string> rho{"rho"};
  for (ss::OpIndex i = 0; i < t.num_operators(); ++i) {
    mu.push_back(Table::num(t.op(i).service_time * 1e3, 2));
    const double departure = analysis.rates[i].departure;
    delta.push_back(departure > 0.0 ? Table::num(1e3 / departure, 2) : "-");
    rho.push_back(Table::num(analysis.rates[i].utilization, 2));
  }
  table.add_row(std::move(mu)).add_row(std::move(delta)).add_row(std::move(rho));
  table.print(std::cout);
  std::cout << "throughput: " << Table::num(analysis.throughput(), 0) << " (predicted)  "
            << Table::num(measured, 0) << " (measured)\n\n";
}

/// Runs the whole Table 1 / Table 2 experiment for the given service times.
inline int run(int argc, char** argv, const std::vector<double>& service_ms,
               const char* banner, const char* paper_note) {
  const ss::harness::Args args(argc, argv);
  ss::harness::MeasureOptions base;
  base.sim_duration = 300.0;
  base.real_duration = 2.5;
  const ss::harness::MeasureOptions options = ss::harness::measure_options_from_args(
      args, ss::harness::ExecutionBackend::kThreads, base);

  std::cout << banner << "\n\n";
  const ss::Topology original = topology(service_ms);
  print_block("-- original topology --", original, options);

  const ss::FusionSpec spec{{2, 3, 4}, "F"};
  const ss::FusionResult fusion = ss::apply_fusion(original, spec);
  std::cout << "fusing {op3, op4, op5}: predicted service time of F = "
            << ss::harness::Table::num(fusion.service_time * 1e3, 2) << " ms\n"
            << (fusion.introduces_bottleneck
                    ? "ALERT: the fusion would introduce a bottleneck (performance impaired)\n\n"
                    : "the fusion is feasible: no new bottleneck predicted\n\n");

  print_block("-- topology after fusion --", fusion.topology, options);
  std::cout << paper_note << "\n";
  return 0;
}

}  // namespace fig11
