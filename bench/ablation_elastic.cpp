// Ablation: elastic re-deployment under a ramping input rate.
//
// The static pipeline (Algorithms 1-3) sizes a deployment once, from the
// profiled characteristics.  This bench ramps the workload mid-run: a
// filter stage starts passing only a quarter of the stream (the profiled
// behaviour, under which the sequential deployment is optimal) and then
// jumps to passing everything — the arrival rate at the heavy downstream
// stage ramps 4x and the sequential deployment saturates at the stage's
// service rate.  The ramp is expressed through the filter's selectivity
// because that is exactly the quantity the elastic controller measures and
// feeds back into the model (the source anchor stays declared; see
// core/optimizer with_measured_profile).
//
// Two runs of the same application:
//   * static  — the engine keeps the initial sequential deployment and the
//               source is backpressured to the bottleneck's service rate,
//   * elastic — the ReconfigController notices the measured selectivity
//               shift, re-runs Algorithms 1-3 on the observed topology and
//               switches epochs mid-run (fence, drain, migrate, resume)
//               without losing a tuple.
//
// Flags: --duration=SEC --ramp-at=SEC --engine=threads|pool [--workers=K]
//        --reconfig-period=SEC --reconfig-threshold=R
#include <iostream>
#include <memory>

#include "harness/args.hpp"
#include "harness/table.hpp"
#include "runtime/engine.hpp"
#include "runtime/synthetic.hpp"

namespace {

using ss::OperatorSpec;
using ss::OpIndex;

/// Filter whose pass-rate ramps from `low` to `high` a fixed delay after
/// construction (construction happens at engine build, so the delay is
/// effectively "seconds into the run").
class RampingFilter final : public ss::runtime::OperatorLogic {
 public:
  RampingFilter(double service_time, double low, double high, double ramp_after,
                std::uint64_t seed)
      : service_time_(service_time),
        low_(low),
        high_(high),
        ramp_after_(ramp_after),
        seed_(seed),
        rng_(seed),
        start_(ss::runtime::Clock::now()) {}

  void process(const ss::runtime::Tuple& item, OpIndex from,
               ss::runtime::Collector& out) override {
    (void)from;
    {
      ss::runtime::BlockingSection blocking;
      waiter_.wait(service_time_);
    }
    const double elapsed = ss::runtime::seconds_between(start_, ss::runtime::Clock::now());
    if (rng_.bernoulli(elapsed < ramp_after_ ? low_ : high_)) out.emit(item);
  }

  [[nodiscard]] std::unique_ptr<OperatorLogic> clone() const override {
    auto copy = std::make_unique<RampingFilter>(service_time_, low_, high_, ramp_after_,
                                                seed_ ^ 0x9e3779b97f4a7c15ULL);
    copy->start_ = start_;  // replicas share the ramp schedule
    return copy;
  }

 private:
  double service_time_;
  double low_;
  double high_;
  double ramp_after_;
  std::uint64_t seed_;
  ss::Rng rng_;
  ss::runtime::PacedWaiter waiter_;
  ss::runtime::Clock::time_point start_;
};

ss::runtime::RunStats run_once(const ss::Topology& t, double ramp_at, double duration,
                               ss::runtime::EngineConfig config,
                               const ss::harness::Args& args) {
  ss::runtime::AppFactory factory = ss::runtime::synthetic_factory();
  factory.logic = [&t, ramp_at](OpIndex op, const OperatorSpec& spec)
      -> std::unique_ptr<ss::runtime::OperatorLogic> {
    if (t.op(op).name == "filter") {
      return std::make_unique<RampingFilter>(spec.service_time, spec.selectivity.output,
                                             1.0, ramp_at, 0xe1a5'71c0u + op);
    }
    return std::make_unique<ss::runtime::SyntheticOperator>(spec,
                                                            0xa076'1d64'78bd'642fULL + op);
  };
  if (args.get("engine", "threads") == "pool") {
    config.scheduler = ss::runtime::SchedulerKind::kPooled;
    config.workers = static_cast<int>(args.get_int("workers", 0));
  }
  ss::runtime::Engine engine(t, ss::Deployment{}, std::move(factory), config);
  ss::runtime::RunStats stats = engine.run_for(std::chrono::duration<double>(duration));
  if (engine.controller() != nullptr) {
    std::cout << "controller decisions (elastic run):\n";
    for (const auto& d : engine.controller()->decisions()) {
      std::cout << "  t=" << ss::harness::Table::num(d.at_seconds) << "s measured "
                << ss::harness::Table::num(d.measured_throughput, 1)
                << " tuples/s: " << d.reason << '\n';
    }
    std::cout << '\n';
  }
  return stats;
}

}  // namespace

int main(int argc, char** argv) {
  using ss::harness::Table;
  const ss::harness::Args args(argc, argv);
  const double duration = args.get_double("duration", 9.0);
  const double ramp_at = args.get_double("ramp-at", duration / 3.0);

  // Profiled at the pre-ramp workload: the filter passes a quarter of the
  // 1000/s stream, so the 2.8 ms heavy stage runs at rho = 0.7 and the
  // sequential deployment is what Algorithms 1-3 would pick.  Post-ramp the
  // heavy stage sees the full 1000/s (rho = 2.8): the static run saturates
  // at ~357/s while the controller's re-run recommends 3 replicas.
  ss::Topology::Builder b;
  b.add_operator("src", 1.0e-3);
  b.add_operator("filter", 0.2e-3, ss::StateKind::kStateless, ss::Selectivity{1.0, 0.25});
  b.add_operator("work", 2.8e-3);
  b.add_operator("sink", 0.05e-3);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 3);
  const ss::Topology t = b.build();

  std::cout << "== Ablation: elastic re-deployment under a ramping input rate ==\n"
            << "ramp at t=" << Table::num(ramp_at) << "s of " << Table::num(duration)
            << "s; the heavy stage's arrival rate jumps 250/s -> 1000/s\n\n";

  ss::runtime::EngineConfig config;
  config.reconfig_period = args.get_double("reconfig-period", 0.5);
  config.reconfig_threshold = args.get_double("reconfig-threshold", 0.10);

  const ss::runtime::RunStats fixed = run_once(t, ramp_at, duration, config, args);
  config.elastic = true;
  const ss::runtime::RunStats elastic = run_once(t, ramp_at, duration, config, args);

  Table table({"mode", "source/s", "sink/s", "epochs", "re-deployments", "keys moved"});
  table.add_row({"static", Table::num(fixed.source_rate, 1), Table::num(fixed.sink_rate, 1),
                 std::to_string(fixed.epochs), std::to_string(fixed.reconfigurations),
                 std::to_string(fixed.keys_migrated)});
  table.add_row({"elastic", Table::num(elastic.source_rate, 1),
                 Table::num(elastic.sink_rate, 1), std::to_string(elastic.epochs),
                 std::to_string(elastic.reconfigurations),
                 std::to_string(elastic.keys_migrated)});
  table.print(std::cout);
  std::cout << "\nreading: the static deployment is backpressured to the heavy stage's\n"
               "service rate once the ramp hits; the elastic controller re-runs the\n"
               "Alg. 1-3 pipeline on the measured selectivity, fences the graph at a\n"
               "tuple boundary and resumes with the stage replicated — no tuple lost\n"
               "(dropped: static " << fixed.dropped << ", elastic " << elastic.dropped
            << ")\n";
  return 0;
}
