// The profiling table: service time per input tuple of every one of the 20
// real-world operators (paper §5.1 profiles its operators the same way
// before feeding the measurements to the cost models).  One benchmark per
// catalog implementation, driven through the public OperatorLogic
// interface.
#include <benchmark/benchmark.h>

#include "gen/rng.hpp"
#include "ops/registry.hpp"

namespace {

ss::runtime::Tuple synthetic_tuple(ss::Rng& rng, std::int64_t id) {
  ss::runtime::Tuple t;
  t.id = id;
  t.key = static_cast<std::int64_t>(rng.next_u64() >> 48);
  t.ts = static_cast<double>(id) * 1e-3;
  for (double& f : t.f) f = rng.next_double();
  return t;
}

class NullCollector final : public ss::runtime::Collector {
 public:
  void emit(const ss::runtime::Tuple& t) override {
    benchmark::DoNotOptimize(t);
    ++emitted;
  }
  void emit_to(ss::OpIndex, const ss::runtime::Tuple& t) override { emit(t); }
  std::uint64_t emitted = 0;
};

void BM_Operator(benchmark::State& state, const std::string& impl) {
  ss::OperatorSpec spec;
  spec.name = impl;
  spec.impl = impl;
  spec.service_time = 1e-3;  // irrelevant for real logic
  const auto& entry = ss::ops::catalog_entry(impl);
  if (entry.windowed) spec.selectivity.input = 10.0;  // window slide 10
  if (entry.impl == "flatmap_expand") spec.selectivity.output = 2.0;
  if (entry.impl == "sampler") spec.selectivity.output = 0.25;

  auto logic = ss::ops::make_logic(0, spec);
  NullCollector out;
  ss::Rng rng(42);
  std::int64_t id = 0;
  // Prime windows/state so the steady-state cost is measured.
  for (int i = 0; i < 2000; ++i) logic->process(synthetic_tuple(rng, id++), 0, out);

  for (auto _ : state) {
    const ss::OpIndex side = id % 2 == 0 ? 0u : 1u;  // alternate join sides
    logic->process(synthetic_tuple(rng, id), side, out);
    ++id;
  }
  state.counters["out/in"] = benchmark::Counter(
      static_cast<double>(out.emitted) / static_cast<double>(id), benchmark::Counter::kDefaults);
}

}  // namespace

int main(int argc, char** argv) {
  for (const auto& entry : ss::ops::catalog()) {
    benchmark::RegisterBenchmark(("BM_Op/" + entry.impl).c_str(),
                                 [impl = entry.impl](benchmark::State& state) {
                                   BM_Operator(state, impl);
                                 });
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
