// Ablation: sensitivity of steady-state throughput to the buffer capacity B.
//
// The cost models (§3.1) deliberately ignore B: flow conservation holds for
// any finite capacity.  In a *stochastic* system tiny buffers do add
// blocking stalls (service-time variance cannot be absorbed), so this bench
// sweeps B across service laws and shows where the B-independence
// assumption kicks in — by B ~ 8-16 all laws sit on the model's prediction,
// justifying both the paper's and our default of treating B as irrelevant
// to throughput (it matters for latency instead, cf. ext_latency).
//
// Flags: --duration=SEC
#include <iostream>

#include "core/steady_state.hpp"
#include "harness/args.hpp"
#include "harness/table.hpp"
#include "sim/des.hpp"

int main(int argc, char** argv) {
  using ss::harness::Table;
  const ss::harness::Args args(argc, argv);
  const double duration = args.get_double("duration", 120.0);

  // A 4-stage pipeline whose third stage is the bottleneck.
  ss::Topology::Builder b;
  b.add_operator("src", 1e-3);
  b.add_operator("parse", 0.6e-3);
  b.add_operator("slow", 2.5e-3);
  b.add_operator("sink", 0.1e-3);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 3);
  const ss::Topology t = b.build();
  const double predicted = ss::steady_state(t).throughput();  // 400/s

  std::cout << "== Ablation: throughput vs buffer capacity B ==\n"
            << "model prediction (B-independent): " << Table::num(predicted, 1)
            << " tuples/s\n\n";

  Table table({"B", "deterministic", "exponential", "lognormal(cv=1)"});
  for (std::size_t capacity : {1u, 2u, 4u, 8u, 16u, 32u, 64u, 128u}) {
    std::vector<std::string> row{std::to_string(capacity)};
    for (const ss::sim::ServiceLaw& law :
         {ss::sim::ServiceLaw::deterministic(), ss::sim::ServiceLaw::exponential(),
          ss::sim::ServiceLaw::lognormal(1.0)}) {
      ss::sim::SimOptions options;
      options.duration = duration;
      options.buffer_capacity = capacity;
      options.law = law;
      row.push_back(Table::num(ss::sim::simulate(t, options).throughput, 1));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::cout << "\nreading: deterministic service needs no buffering at all; the more\n"
               "variable the law, the more slots it takes to absorb bursts, but by\n"
               "B ~ 16 every law reaches the model's B-independent prediction\n";
  return 0;
}
