// Micro-benchmarks of the discrete-event simulator: event throughput on a
// pipeline and on a paper-scale random topology, across service laws.
// These numbers justify using the DES as the measured engine for the
// 50-topology sweeps (see DESIGN.md).
#include <benchmark/benchmark.h>

#include "gen/workload.hpp"
#include "sim/des.hpp"

namespace {

ss::Topology pipeline(int stages) {
  ss::Topology::Builder b;
  b.add_operator("src", 1e-3);
  for (int i = 0; i < stages; ++i) {
    b.add_operator("s" + std::to_string(i), 0.5e-3);
    b.add_edge(static_cast<ss::OpIndex>(i), static_cast<ss::OpIndex>(i + 1));
  }
  return b.build();
}

void run_sim(benchmark::State& state, const ss::Topology& t, ss::sim::ServiceLaw law) {
  std::uint64_t events = 0;
  for (auto _ : state) {
    ss::sim::SimOptions options;
    options.duration = 20.0;
    options.law = law;
    const ss::sim::SimResult result = ss::sim::simulate(t, options);
    events += result.events;
    benchmark::DoNotOptimize(result.throughput);
  }
  state.counters["events/s"] =
      benchmark::Counter(static_cast<double>(events), benchmark::Counter::kIsRate);
}

void BM_DesPipelineExponential(benchmark::State& state) {
  run_sim(state, pipeline(static_cast<int>(state.range(0))),
          ss::sim::ServiceLaw::exponential());
}
BENCHMARK(BM_DesPipelineExponential)->Arg(4)->Arg(16)->Unit(benchmark::kMillisecond);

void BM_DesPipelineDeterministic(benchmark::State& state) {
  run_sim(state, pipeline(static_cast<int>(state.range(0))),
          ss::sim::ServiceLaw::deterministic());
}
BENCHMARK(BM_DesPipelineDeterministic)->Arg(4)->Arg(16)->Unit(benchmark::kMillisecond);

void BM_DesRandomTopology(benchmark::State& state) {
  ss::Rng rng(static_cast<std::uint64_t>(state.range(0)));
  const ss::Topology t = ss::random_topology(rng);
  run_sim(state, t, ss::sim::ServiceLaw::exponential());
}
BENCHMARK(BM_DesRandomTopology)->Arg(1)->Arg(2)->Arg(3)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
