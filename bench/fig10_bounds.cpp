// Figure 10 (paper §5.3): hold-off replication — the effect of a global
// replica budget on the parallelization phase, for three topologies, with
// bounds 30/35/40 and unbounded, against the original topology.  The
// expected shape is a proportional de-scalability of throughput with the
// budget, with the highest bound matching "no bound" when fewer than 40
// replicas suffice.
//
// The three topologies are the ones of the testbed that want the most
// replicas, mirroring the paper's choice of bound-sensitive applications.
//
// Flags: --seed=S --engine=sim|threads|pool --bounds=30,35,40
//        --sim-duration=SEC --real-duration=SEC
#include <algorithm>
#include <iostream>
#include <sstream>

#include "core/bottleneck.hpp"
#include "gen/workload.hpp"
#include "harness/args.hpp"
#include "harness/experiment.hpp"
#include "harness/table.hpp"

namespace {

std::vector<int> parse_bounds(const std::string& csv) {
  std::vector<int> bounds;
  std::istringstream in(csv);
  std::string token;
  while (std::getline(in, token, ',')) bounds.push_back(std::stoi(token));
  return bounds;
}

}  // namespace

int main(int argc, char** argv) {
  using ss::harness::Table;
  const ss::harness::Args args(argc, argv);
  const std::uint64_t seed = static_cast<std::uint64_t>(args.get_int("seed", 2018));
  const std::vector<int> bounds = parse_bounds(args.get("bounds", "30,35,40"));

  const ss::harness::MeasureOptions options =
      ss::harness::measure_options_from_args(args, ss::harness::ExecutionBackend::kSim);

  std::cout << "== Figure 10: bounded parallelization (hold-off replication) ==\n\n";

  // Pick three bound-sensitive topologies: the two that want the most
  // replicas, plus one whose optimal total sits just below the largest
  // bound — the paper's third topology, where the highest bound already
  // matches the unbounded result.
  const auto testbed = ss::make_testbed(seed, 50);
  std::vector<std::pair<int, std::size_t>> demand;
  for (std::size_t i = 0; i < testbed.size(); ++i) {
    demand.emplace_back(ss::eliminate_bottlenecks(testbed[i]).total_replicas, i);
  }
  std::sort(demand.rbegin(), demand.rend());
  const int top_bound = *std::max_element(bounds.begin(), bounds.end());
  for (std::size_t k = 2; k < demand.size(); ++k) {
    if (demand[k].first <= top_bound) {
      std::swap(demand[2], demand[k]);  // becomes the third pick
      break;
    }
  }

  std::vector<std::string> headers{"topology", "optimal replicas", "original"};
  for (int b : bounds) headers.push_back("bound=" + std::to_string(b));
  headers.emplace_back("no bound");
  Table table(std::move(headers));

  for (int pick = 0; pick < 3; ++pick) {
    const std::size_t index = demand[static_cast<std::size_t>(pick)].second;
    const ss::Topology& t = testbed[index];

    std::vector<std::string> row{"#" + std::to_string(index + 1),
                                 std::to_string(demand[static_cast<std::size_t>(pick)].first)};
    // Original (sequential) topology.
    row.push_back(Table::num(
        ss::harness::measure(t, ss::runtime::Deployment{}, options).throughput, 1));
    // Bounded parallelizations, then unbounded.
    std::vector<std::optional<int>> budgets;
    for (int b : bounds) budgets.emplace_back(b);
    budgets.emplace_back(std::nullopt);
    for (const auto& budget : budgets) {
      ss::BottleneckOptions bo;
      bo.max_total_replicas = budget;
      const ss::BottleneckResult result = ss::eliminate_bottlenecks(t, bo);
      ss::runtime::Deployment deployment;
      deployment.replication = result.plan;
      deployment.partitions = result.partitions;
      row.push_back(Table::num(ss::harness::measure(t, deployment, options).throughput, 1));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);

  std::cout << "\npaper reference: throughput de-scales roughly proportionally with the\n"
               "budget; a bound above the optimal total matches the unbounded result\n";
  return 0;
}
