// Figure 9 (paper §5.3): bottleneck elimination over the testbed.
//
//   9a: per topology, the number of operators and the additional replicas
//       Algorithm 2 introduced;
//   9b: predicted vs measured throughput of the *parallelized* topologies.
//
// The paper also reports that 43/50 topologies reach the ideal (source)
// throughput after parallelization while 7/50 stay limited by stateful
// operators — the same breakdown is printed here for our testbed.
//
// Flags: --topologies=N --seed=S --engine=sim|threads|pool --sim-duration=SEC
//        --real-duration=SEC
#include <iostream>

#include "core/bottleneck.hpp"
#include "gen/workload.hpp"
#include "harness/args.hpp"
#include "harness/experiment.hpp"
#include "harness/table.hpp"

int main(int argc, char** argv) {
  using ss::harness::Table;
  const ss::harness::Args args(argc, argv);
  const int topologies = static_cast<int>(args.get_int("topologies", 50));
  const std::uint64_t seed = static_cast<std::uint64_t>(args.get_int("seed", 2018));

  const ss::harness::MeasureOptions options =
      ss::harness::measure_options_from_args(args, ss::harness::ExecutionBackend::kSim);

  std::cout << "== Figure 9: bottleneck elimination (operator fission) ==\n"
            << "testbed: " << topologies << " topologies, seed " << seed
            << " (source paced 33% above the fastest operator)\n\n";

  const auto testbed = ss::make_testbed(seed, topologies);

  Table table({"topology", "operators", "add.replicas", "ideal (t/s)", "predicted (t/s)",
               "measured (t/s)", "rel.error", "outcome"});
  std::vector<double> errors;
  int reached_ideal = 0;
  int stateful_limited = 0;
  for (std::size_t i = 0; i < testbed.size(); ++i) {
    const ss::Topology& t = testbed[i];
    const ss::BottleneckResult result = ss::eliminate_bottlenecks(t);

    ss::runtime::Deployment deployment;
    deployment.replication = result.plan;
    deployment.partitions = result.partitions;
    const ss::harness::Measured measured = ss::harness::measure(t, deployment, options);

    const double predicted = result.analysis.throughput();
    const double error = ss::harness::relative_error(predicted, measured.throughput);
    errors.push_back(error);
    if (result.reaches_ideal) {
      ++reached_ideal;
    } else {
      ++stateful_limited;
    }
    table.add_row({std::to_string(i + 1), std::to_string(t.num_operators()),
                   std::to_string(result.additional_replicas),
                   Table::num(ss::ideal_source_rate(t), 1), Table::num(predicted, 1),
                   Table::num(measured.throughput, 1), Table::percent(error),
                   result.reaches_ideal ? "ideal" : "blocked"});
  }
  table.print(std::cout);

  std::cout << "\nsummary: " << reached_ideal << "/" << testbed.size()
            << " topologies reach the ideal throughput after fission; " << stateful_limited
            << "/" << testbed.size()
            << " remain limited by non-replicable (stateful or too-skewed) bottlenecks\n"
            << "model accuracy on parallelized topologies (Fig. 9b): mean error "
            << Table::percent(ss::harness::mean(errors)) << ", max "
            << Table::percent(ss::harness::max_value(errors)) << "\n"
            << "paper reference: 43/50 ideal, 7/50 stateful-limited, error ~3-3.5%\n";
  return 0;
}
