// Extension experiment (DESIGN.md): validation of the latency estimator
// (core/latency.hpp) against the discrete-event simulator.
//
// A single M/M/1-like stage is swept across utilizations and a multi-stage
// pipeline is checked end to end: the simulator measures per-operator
// sojourn times via Little's law; the model predicts them from the Alg. 1
// rates.  Agreement should be tight for rho < 0.9 and bounded by the
// finite-buffer cap at saturation.
//
// Flags: --duration=SEC
#include <iostream>

#include "core/latency.hpp"
#include "harness/args.hpp"
#include "harness/table.hpp"
#include "sim/des.hpp"

int main(int argc, char** argv) {
  using ss::harness::Table;
  const ss::harness::Args args(argc, argv);
  const double duration = args.get_double("duration", 150.0);

  std::cout << "== Extension: latency model vs simulated sojourn times ==\n\n";

  // --- utilization sweep on one queue ------------------------------------
  Table sweep({"rho", "model W (ms)", "simulated W (ms)", "rel.error"});
  for (double rho : {0.2, 0.4, 0.6, 0.8, 0.9, 0.95}) {
    ss::Topology::Builder b;
    b.add_operator("src", 1e-3 / rho);   // arrival rate = rho * mu
    b.add_operator("queue", 1e-3);       // mu = 1000/s
    b.add_edge(0, 1);
    const ss::Topology t = b.build();

    const ss::SteadyStateResult rates = ss::steady_state(t);
    const ss::LatencyEstimate model = ss::estimate_latency(t, rates);
    ss::sim::SimOptions options;
    options.duration = duration;
    const ss::sim::SimResult sim = ss::sim::simulate(t, options);

    sweep.add_row({Table::num(rho, 2), Table::num(model.response[1] * 1e3),
                   Table::num(sim.ops[1].mean_sojourn * 1e3),
                   Table::percent(ss::harness::relative_error(model.response[1],
                                                              sim.ops[1].mean_sojourn))});
  }
  sweep.print(std::cout);

  // --- end-to-end pipeline ------------------------------------------------
  ss::Topology::Builder b;
  b.add_operator("src", 1.2e-3);
  b.add_operator("parse", 0.6e-3);
  b.add_operator("score", 0.9e-3);
  b.add_operator("store", 0.4e-3);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 3);
  const ss::Topology pipeline = b.build();
  const ss::SteadyStateResult rates = ss::steady_state(pipeline);
  const ss::LatencyEstimate model = ss::estimate_latency(pipeline, rates);
  ss::sim::SimOptions options;
  options.duration = duration;
  const ss::sim::SimResult sim = ss::sim::simulate(pipeline, options);
  double simulated_e2e = 0.0;
  for (ss::OpIndex i = 1; i < pipeline.num_operators(); ++i) {
    simulated_e2e += sim.ops[i].mean_sojourn;
  }
  std::cout << "\npipeline end-to-end: model "
            << Table::num((model.end_to_end - model.response[0]) * 1e3)
            << " ms vs simulated " << Table::num(simulated_e2e * 1e3)
            << " ms (excluding source generation time)\n"
            << "reading: M/M/1 estimates track the simulator into high utilization;\n"
               "at saturation the finite buffer caps the real wait where the open\n"
               "formula would diverge\n";
  return 0;
}
