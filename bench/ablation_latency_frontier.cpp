// Ablation: the throughput / tail-latency frontier of the latency-aware
// optimizer (--objective=throughput|balanced|latency, optional SLO).
//
// The paper's pipeline maximizes throughput: fission to ceil(rho) leaves
// the bottleneck at rho ~ 0.8-0.95, where queueing delay — and especially
// its p99 — is steep.  The latency objective keeps adding replicas while
// the predicted tail improves, buying latency with actors instead of
// throughput.  This bench sweeps the objectives over bottlenecked
// pipelines and measures each deployment in the DES (virtual time, same
// seed), printing predicted and measured p99 plus the throughput cost.
//
// Expected shape: --objective=latency strictly below --objective=throughput
// on measured p99, at <= 10% throughput cost (usually 0: the source stays
// the limit).
//
// Flags: --duration=SEC --slo-p99=MS
#include <iostream>

#include "core/optimizer.hpp"
#include "harness/args.hpp"
#include "harness/experiment.hpp"
#include "harness/table.hpp"

namespace {

ss::Topology heavy_pipeline() {
  // src -> parse -> heavy -> enrich -> sink: `heavy` needs 4 replicas at
  // rho ~ 0.83 under pure ceil(rho); overshoot drains its queueing tail.
  ss::Topology::Builder b;
  b.add_operator("src", 1.0e-3);
  b.add_operator("parse", 0.5e-3);
  b.add_operator("heavy", 3.3e-3);
  b.add_operator("enrich", 0.6e-3);
  b.add_operator("sink", 0.1e-3);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 3);
  b.add_edge(3, 4);
  return b.build();
}

ss::Topology forked_pipeline() {
  // A fork where one branch is near-critical after fission.
  ss::Topology::Builder b;
  b.add_operator("src", 0.8e-3);
  b.add_operator("route", 0.3e-3);
  b.add_operator("fast", 0.4e-3);
  b.add_operator("slow", 2.9e-3);
  b.add_operator("sink", 0.1e-3);
  b.add_edge(0, 1);
  b.add_edge(1, 2, 0.6);
  b.add_edge(1, 3, 0.4);
  b.add_edge(2, 4);
  b.add_edge(3, 4);
  return b.build();
}

}  // namespace

int main(int argc, char** argv) {
  using ss::harness::Table;
  const ss::harness::Args args(argc, argv);
  const double duration = args.get_double("duration", 120.0);
  const double slo_ms = args.get_double("slo-p99", 0.0);

  const struct {
    const char* name;
    ss::Topology topology;
  } cases[] = {{"heavy_pipeline", heavy_pipeline()}, {"forked_pipeline", forked_pipeline()}};

  for (const auto& c : cases) {
    std::cout << "== " << c.name << " ==\n";
    Table table({"objective", "replicas", "pred p99 (ms)", "meas p99 (ms)",
                 "throughput/s", "thr cost"});
    double base_throughput = 0.0;
    double base_p99 = 0.0;
    for (const ss::Objective objective :
         {ss::Objective::kThroughput, ss::Objective::kBalanced, ss::Objective::kLatency}) {
      ss::AutoOptimizeOptions options;
      options.enable_fusion = false;
      options.objective = objective;
      options.slo_p99 = slo_ms * 1e-3;
      const ss::AutoOptimizeResult plan = ss::auto_optimize(c.topology, options);

      ss::runtime::Deployment deployment;
      deployment.replication = plan.plan;
      deployment.partitions = plan.partitions;
      ss::harness::MeasureOptions measure;
      measure.engine = ss::harness::ExecutionBackend::kSim;
      measure.sim_duration = duration;
      const ss::harness::Measured measured =
          ss::harness::measure(c.topology, deployment, measure);

      int replicas = 0;
      for (ss::OpIndex i = 0; i < c.topology.num_operators(); ++i) {
        replicas += plan.plan.replicas_of(i);
      }
      if (objective == ss::Objective::kThroughput) {
        base_throughput = measured.throughput;
        base_p99 = measured.latency_p99;
      }
      const double cost = base_throughput > 0.0
                              ? (base_throughput - measured.throughput) / base_throughput
                              : 0.0;
      table.add_row({ss::to_string(objective), std::to_string(replicas),
                     Table::num(plan.predicted_p99 * 1e3), Table::num(measured.latency_p99 * 1e3),
                     Table::num(measured.throughput, 1), Table::percent(cost)});
      if (objective == ss::Objective::kLatency && base_p99 > 0.0) {
        std::cout << "latency vs throughput objective: p99 "
                  << Table::num(base_p99 * 1e3) << " -> "
                  << Table::num(measured.latency_p99 * 1e3) << " ms, throughput cost "
                  << Table::percent(cost) << "\n";
      }
    }
    table.print(std::cout);
    std::cout << '\n';
  }
  std::cout << "reading: the latency objective overshoots ceil(rho) on the bottleneck,\n"
               "pulling the measured p99 down at little or no throughput cost — the\n"
               "frontier the --slo-p99 constraint walks automatically.\n";
  return 0;
}
