// Figure 8 (paper §5.2): relative error between the predicted and measured
// *departure rate of every operator* across the whole testbed (the paper
// reports 678 operators, 6.14% mean error, 5% stddev, a few outliers above
// 20% on low-probability paths that are slow to reach steady state).
//
// Flags: --topologies=N --seed=S --engine=sim|threads|pool --sim-duration=SEC
//        --real-duration=SEC --dump (print one row per operator)
#include <algorithm>
#include <iostream>

#include "core/steady_state.hpp"
#include "gen/workload.hpp"
#include "harness/args.hpp"
#include "harness/experiment.hpp"
#include "harness/table.hpp"

int main(int argc, char** argv) {
  using ss::harness::Table;
  const ss::harness::Args args(argc, argv);
  const int topologies = static_cast<int>(args.get_int("topologies", 50));
  const std::uint64_t seed = static_cast<std::uint64_t>(args.get_int("seed", 2018));
  const bool dump = args.has("dump");

  const ss::harness::MeasureOptions options =
      ss::harness::measure_options_from_args(args, ss::harness::ExecutionBackend::kSim);

  std::cout << "== Figure 8: per-operator departure-rate prediction error ==\n"
            << "testbed: " << topologies << " topologies, seed " << seed << "\n\n";

  const auto testbed = ss::make_testbed(seed, topologies);

  std::vector<double> errors;
  Table rows({"topology", "operator", "predicted (t/s)", "measured (t/s)", "rel.error"});
  int skipped_idle = 0;
  for (std::size_t i = 0; i < testbed.size(); ++i) {
    const ss::Topology& t = testbed[i];
    const ss::SteadyStateResult predicted = ss::steady_state(t);
    const ss::harness::Measured measured =
        ss::harness::measure(t, ss::runtime::Deployment{}, options);
    for (ss::OpIndex op = 0; op < t.num_operators(); ++op) {
      const double pred = predicted.rates[op].departure;
      const double meas = measured.departure_rates[op];
      if (meas < 0.5 && pred < 0.5) {
        // Paths with near-zero flow (probability tails): both sides agree
        // that nothing meaningful flows; a ratio would be noise.
        ++skipped_idle;
        continue;
      }
      const double error = ss::harness::relative_error(pred, meas);
      errors.push_back(error);
      if (dump) {
        rows.add_row({std::to_string(i + 1), t.op(op).name, Table::num(pred, 1),
                      Table::num(meas, 1), Table::percent(error)});
      }
    }
  }
  if (dump) rows.print(std::cout);

  // Error distribution, the shape Fig. 8 plots.
  const double buckets[] = {0.01, 0.02, 0.03, 0.06, 0.10, 0.20, 1e9};
  const char* labels[] = {"<=1%", "<=2%", "<=3%", "<=6%", "<=10%", "<=20%", ">20%"};
  std::vector<int> counts(std::size(buckets), 0);
  for (double e : errors) {
    for (std::size_t b = 0; b < std::size(buckets); ++b) {
      if (e <= buckets[b]) {
        ++counts[b];
        break;
      }
    }
  }
  Table histogram({"error bucket", "operators", "share"});
  for (std::size_t b = 0; b < std::size(buckets); ++b) {
    histogram.add_row({labels[b], std::to_string(counts[b]),
                       Table::percent(counts[b] / static_cast<double>(errors.size()))});
  }
  histogram.print(std::cout);

  std::cout << "\noperators compared: " << errors.size() << " (idle-path operators skipped: "
            << skipped_idle << ")\n"
            << "mean error " << Table::percent(ss::harness::mean(errors)) << ", stddev "
            << Table::percent(ss::harness::stddev(errors)) << ", max "
            << Table::percent(ss::harness::max_value(errors)) << "\n"
            << "paper reference: ~678 operators, mean 6.14%, stddev 5%, outliers up to ~25%\n";
  return 0;
}
