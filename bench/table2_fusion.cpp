// Table 2 (paper §5.4): with slower operators 3-5 the same fusion is
// predicted to *introduce* a bottleneck (T_F ~ 4.42 ms, rho_F = 1.0) and
// SpinStreams raises an alert: throughput would degrade by ~20%
// (paper: 760 t/s predicted, 753 t/s measured, vs 1000/961 originally).
//
// Flags: --engine=threads|sim --real-duration=SEC --sim-duration=SEC
#include "fig11_common.hpp"

int main(int argc, char** argv) {
  return fig11::run(
      argc, argv, {1.0, 1.2, 1.5, 2.7, 2.2, 0.2},
      "== Table 2: fusion that would introduce a bottleneck (alert case) ==",
      "paper reference: T_F = 4.42 ms, rho_F = 1.0, throughput drops to 760\n"
      "predicted / 753 measured — SpinStreams warns before any code is generated");
}
