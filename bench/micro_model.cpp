// Micro-benchmarks of the cost-model algorithms: Algorithm 1 scaling with
// topology size (validating the O(|V| * |E|) claim of Proposition 3.4),
// Algorithm 2, Algorithm 3, and the graph utilities they rest on.
#include <benchmark/benchmark.h>

#include "core/bottleneck.hpp"
#include "core/fusion.hpp"
#include "core/paths.hpp"
#include "core/steady_state.hpp"
#include "gen/workload.hpp"

namespace {

/// Random topology with exactly `vertices` operators (unit selectivity to
/// isolate the algorithmic cost).
ss::Topology sized_topology(int vertices, std::uint64_t seed) {
  ss::Rng rng(seed);
  const ss::TopologyShape shape =
      ss::random_shape(rng, vertices, static_cast<int>((vertices - 1) * 1.2));
  ss::WorkloadOptions options;
  options.unit_selectivity = true;
  return ss::assign_workload(shape, rng, options);
}

void BM_SteadyState(benchmark::State& state) {
  const ss::Topology t = sized_topology(static_cast<int>(state.range(0)), 99);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ss::steady_state(t));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_SteadyState)->RangeMultiplier(2)->Range(8, 256)->Complexity();

void BM_BottleneckElimination(benchmark::State& state) {
  const ss::Topology t = sized_topology(static_cast<int>(state.range(0)), 77);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ss::eliminate_bottlenecks(t));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_BottleneckElimination)->RangeMultiplier(2)->Range(8, 256)->Complexity();

void BM_TopologicalSort(benchmark::State& state) {
  const ss::Topology t = sized_topology(static_cast<int>(state.range(0)), 55);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ss::topological_sort(t.num_operators(), t.edges()));
  }
}
BENCHMARK(BM_TopologicalSort)->Range(8, 256);

void BM_ArrivalCoefficients(benchmark::State& state) {
  const ss::Topology t = sized_topology(static_cast<int>(state.range(0)), 33);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ss::arrival_coefficients(t));
  }
}
BENCHMARK(BM_ArrivalCoefficients)->Range(8, 256);

/// Fig. 11 fusion primitives on the paper's example.
ss::Topology fig11() {
  ss::Topology::Builder b;
  const char* names[] = {"op1", "op2", "op3", "op4", "op5", "op6"};
  const double ms[] = {1.0, 1.2, 0.7, 2.0, 1.5, 0.2};
  for (int i = 0; i < 6; ++i) b.add_operator(names[i], ms[i] * 1e-3);
  b.add_edge(0, 1, 0.7);
  b.add_edge(0, 2, 0.3);
  b.add_edge(1, 5, 1.0);
  b.add_edge(2, 3, 2.0 / 3.0);
  b.add_edge(2, 4, 1.0 / 3.0);
  b.add_edge(3, 4, 0.25);
  b.add_edge(3, 5, 0.75);
  b.add_edge(4, 5, 1.0);
  return b.build();
}

void BM_FusionServiceTime(benchmark::State& state) {
  const ss::Topology t = fig11();
  const ss::FusionSpec spec{{2, 3, 4}, {}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(ss::fusion_service_time(t, spec));
  }
}
BENCHMARK(BM_FusionServiceTime);

void BM_ApplyFusion(benchmark::State& state) {
  const ss::Topology t = fig11();
  const ss::FusionSpec spec{{2, 3, 4}, "F"};
  for (auto _ : state) {
    benchmark::DoNotOptimize(ss::apply_fusion(t, spec));
  }
}
BENCHMARK(BM_ApplyFusion);

void BM_KeyPartitioning(benchmark::State& state) {
  const ss::KeyDistribution keys =
      ss::KeyDistribution::zipf(static_cast<std::size_t>(state.range(0)), 1.2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ss::partition_keys(keys, 8));
  }
}
BENCHMARK(BM_KeyPartitioning)->Range(64, 4096);

void BM_RandomTopologyGeneration(benchmark::State& state) {
  ss::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ss::random_topology(rng));
  }
}
BENCHMARK(BM_RandomTopologyGeneration);

}  // namespace

BENCHMARK_MAIN();
