// Figure 7 (paper §5.2): accuracy of the backpressure model on the
// 50-topology random testbed.
//
//   7a: predicted vs measured throughput per topology,
//   7b: relative prediction error per topology (paper: < 3% on average).
//
// The "measured" engine defaults to the discrete-event BAS simulator; pass
// --engine=threads to run the real actor runtime instead (wall-clock bound:
// ~real-duration seconds per topology).
//
// Flags: --topologies=N --seed=S --engine=sim|threads|pool --sim-duration=SEC
//        --real-duration=SEC --law=exp|det|normal|lognormal
#include <iostream>

#include "core/steady_state.hpp"
#include "gen/workload.hpp"
#include "harness/args.hpp"
#include "harness/experiment.hpp"
#include "harness/table.hpp"

namespace {

ss::sim::ServiceLaw law_from_string(const std::string& name) {
  if (name == "exp") return ss::sim::ServiceLaw::exponential();
  if (name == "det") return ss::sim::ServiceLaw::deterministic();
  if (name == "normal") return ss::sim::ServiceLaw::normal();
  if (name == "lognormal") return ss::sim::ServiceLaw::lognormal();
  throw ss::Error("unknown law '" + name + "'");
}

}  // namespace

int main(int argc, char** argv) {
  using ss::harness::Table;
  const ss::harness::Args args(argc, argv);
  const int topologies = static_cast<int>(args.get_int("topologies", 50));
  const std::uint64_t seed = static_cast<std::uint64_t>(args.get_int("seed", 2018));

  ss::harness::MeasureOptions options =
      ss::harness::measure_options_from_args(args, ss::harness::ExecutionBackend::kSim);
  options.law = law_from_string(args.get("law", "exp"));

  std::cout << "== Figure 7: accuracy of the SpinStreams backpressure model ==\n"
            << "testbed: " << topologies << " random topologies (Alg. 5), seed " << seed
            << ", engine " << ss::harness::backend_name(options.engine) << "\n\n";

  const auto testbed = ss::make_testbed(seed, topologies);

  Table table({"topology", "|V|", "|E|", "predicted (t/s)", "measured (t/s)", "rel.error"});
  std::vector<double> errors;
  for (std::size_t i = 0; i < testbed.size(); ++i) {
    const ss::Topology& t = testbed[i];
    const ss::harness::Comparison cmp =
        ss::harness::compare_throughput(t, ss::runtime::Deployment{}, options);
    errors.push_back(cmp.error);
    table.add_row({std::to_string(i + 1), std::to_string(t.num_operators()),
                   std::to_string(t.num_edges()), Table::num(cmp.predicted, 1),
                   Table::num(cmp.measured, 1), Table::percent(cmp.error)});
  }
  table.print(std::cout);

  std::cout << "\nsummary (Fig. 7b): mean error " << Table::percent(ss::harness::mean(errors))
            << ", stddev " << Table::percent(ss::harness::stddev(errors)) << ", max "
            << Table::percent(ss::harness::max_value(errors)) << "\n"
            << "paper reference: relative error below ~3% on average\n";
  return 0;
}
