// Ablation (paper §2): backpressure (BAS) vs load shedding as the
// full-buffer semantics.
//
// The SpinStreams cost models assume BAS.  Under shedding the source is
// never throttled, so its rate stays at the ideal while items are silently
// lost before the bottleneck — throughput "looks" fine at the source and
// wrong at the sinks.  This bench quantifies that on the testbed: the
// model's prediction matches the BAS sink rate, while under shedding the
// sink rate is the same but the *loss fraction* is what backpressure would
// have pushed back to the source — exactly why exactly-once applications
// need BAS (and why the model models it).
//
// Flags: --topologies=N --seed=S --sim-duration=SEC
#include <iostream>

#include "core/steady_state.hpp"
#include "gen/workload.hpp"
#include "harness/args.hpp"
#include "harness/table.hpp"
#include "sim/des.hpp"

int main(int argc, char** argv) {
  using ss::harness::Table;
  const ss::harness::Args args(argc, argv);
  const int topologies = static_cast<int>(args.get_int("topologies", 15));
  const std::uint64_t seed = static_cast<std::uint64_t>(args.get_int("seed", 2018));
  const double duration = args.get_double("sim-duration", 150.0);

  std::cout << "== Ablation: Blocking-After-Service vs load shedding ==\n\n";

  const auto testbed = ss::make_testbed(seed, topologies);
  Table table({"topology", "predicted (t/s)", "BAS source", "shed generated", "shed sink",
               "loss"});
  std::vector<double> bas_errors;
  for (std::size_t i = 0; i < testbed.size(); ++i) {
    const ss::Topology& t = testbed[i];
    const double predicted = ss::steady_state(t).throughput();

    ss::sim::SimOptions options;
    options.duration = duration;
    options.seed = 7;
    const ss::sim::SimResult bas = ss::sim::simulate(t, options);
    options.shedding = true;
    const ss::sim::SimResult shed = ss::sim::simulate(t, options);

    bas_errors.push_back(ss::harness::relative_error(predicted, bas.throughput));
    // Under shedding the source *generates* at its free-running pace; the
    // loss is the generated flow that never reaches a sink, normalized by
    // the BAS sink/source ratio so selectivities cancel out.
    const double generated = shed.ops[t.source()].arrival_rate;
    const double bas_ratio = bas.throughput > 0.0 ? bas.sink_rate / bas.throughput : 1.0;
    const double shed_ratio = generated > 0.0 ? shed.sink_rate / generated : 1.0;
    const double loss = bas_ratio > 0.0 ? std::max(0.0, 1.0 - shed_ratio / bas_ratio) : 0.0;
    table.add_row({std::to_string(i + 1), Table::num(predicted, 1),
                   Table::num(bas.throughput, 1), Table::num(generated, 1),
                   Table::num(shed.sink_rate, 1), Table::percent(loss, 1)});
  }
  table.print(std::cout);
  std::cout << "\nmodel vs BAS mean error: " << Table::percent(ss::harness::mean(bas_errors))
            << " — the model tracks BAS; under shedding the source runs at its ideal\n"
               "rate and the difference is silently discarded before the bottleneck\n";
  return 0;
}
