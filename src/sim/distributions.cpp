#include "sim/distributions.hpp"

#include <cmath>

namespace ss::sim {

namespace {
constexpr double kFloor = 1e-12;

/// Standard normal via Box-Muller on the repo PRNG (keeps runs
/// bit-reproducible across platforms, unlike std::normal_distribution).
double standard_normal(Rng& rng) {
  double u1 = rng.next_double();
  if (u1 <= 0.0) u1 = 1e-300;
  const double u2 = rng.next_double();
  const double r = std::sqrt(-2.0 * std::log(u1));
  return r * std::cos(6.283185307179586 * u2);
}
}  // namespace

double ServiceLaw::sample(double mean, Rng& rng) const {
  switch (kind) {
    case Kind::kDeterministic:
      return mean;
    case Kind::kExponential: {
      double u = rng.next_double();
      if (u <= 0.0) u = 1e-300;
      return std::max(kFloor, -mean * std::log(u));
    }
    case Kind::kNormal: {
      const double x = mean + cv * mean * standard_normal(rng);
      return std::max(kFloor, x);
    }
    case Kind::kLogNormal: {
      // Parameterize so the distribution's mean equals `mean`:
      // sigma^2 = ln(1 + cv^2), mu = ln(mean) - sigma^2/2.
      const double sigma2 = std::log(1.0 + cv * cv);
      const double mu = std::log(mean) - sigma2 / 2.0;
      const double x = std::exp(mu + std::sqrt(sigma2) * standard_normal(rng));
      return std::max(kFloor, x);
    }
  }
  return mean;
}

}  // namespace ss::sim
