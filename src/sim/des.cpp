#include "sim/des.hpp"

#include <algorithm>
#include <deque>
#include <queue>
#include <tuple>

#include "core/error.hpp"
#include "runtime/routing.hpp"

namespace ss::sim {

namespace {

struct Server {
  /// One produced result awaiting its push downstream: where it goes and
  /// the virtual time its lineage left the source (the latency stamp the
  /// runtime carries in Tuple::ts).
  struct PendingResult {
    int dest;
    double birth;
  };

  OpIndex op = kInvalidOp;
  bool is_source = false;
  std::size_t queue_len = 0;        ///< occupancy of the bounded input queue
  std::deque<double> queue_birth;   ///< source stamp of each queued item
  double queue_integral = 0.0;      ///< time-weighted occupancy (Little's law)
  double queue_since = 0.0;         ///< last time queue_len changed
  bool busy = false;
  bool blocked = false;             ///< waiting for space downstream (BAS)
  double busy_since = 0.0;
  double blocked_since = 0.0;       ///< when the current BAS stall began
  std::size_t queue_peak = 0;       ///< high-water occupancy in the window
  double service_birth = 0.0;       ///< stamp of the item in service
  std::vector<PendingResult> pending;  ///< results awaiting the push
  std::size_t pending_pos = 0;
  double input_credit = 0.0;        ///< toward the next production event
  std::deque<int> waiters;          ///< servers blocked on THIS queue
};

struct Event {
  double time;
  std::uint64_t seq;
  int server;
  bool operator>(const Event& other) const {
    return std::tie(time, seq) > std::tie(other.time, other.seq);
  }
};

class Simulation {
 public:
  Simulation(const Topology& t, const SimOptions& options)
      : topology_(t), options_(options), rng_(options.seed), latency_(t.num_operators()) {
    build_servers();
    for (OpIndex i = 0; i < t.num_operators(); ++i) routers_.emplace_back(t, i);
  }

  SimResult run();

 private:
  void build_servers();
  void schedule_service(int sid, double now);
  void complete_service(int sid, double now);
  void attempt_flush(int sid, double now);
  void try_start(int sid, double now);
  int resolve_destination(OpIndex dest_op);
  void produce(Server& s, double now);
  void count_emitted(OpIndex op) { ++emitted_[op]; }
  void maybe_snapshot(double now);
  /// Accrues the time-weighted queue occupancy up to `now`, clipped to the
  /// measurement window; call immediately BEFORE changing queue_len.
  void account_queue(Server& s, double now) {
    const double lo = std::max(s.queue_since, warmup_at_);
    const double hi = std::min(now, options_.duration);
    if (hi > lo) s.queue_integral += (hi - lo) * static_cast<double>(s.queue_len);
    s.queue_since = now;
  }
  /// Accrues window-clipped BAS stall time ending at `now`; call when a
  /// blocked server is released (and once at the end for still-blocked).
  void account_blocked(Server& s, double now) {
    const double lo = std::max(s.blocked_since, warmup_at_);
    const double hi = std::min(now, options_.duration);
    if (hi > lo) blocked_time_[s.op] += hi - lo;
  }

  const Topology& topology_;
  const SimOptions& options_;
  Rng rng_;

  std::vector<Server> servers_;
  std::vector<int> base_server_;        // op -> first server id
  std::vector<int> replica_count_;      // op -> replicas
  std::vector<int> rr_cursor_;          // op -> round-robin state
  std::vector<std::vector<double>> share_cdf_;  // op -> replica share cdf
  std::vector<runtime::EdgeRouter> routers_;

  std::priority_queue<Event, std::vector<Event>, std::greater<>> heap_;
  std::uint64_t seq_ = 0;

  std::vector<std::uint64_t> consumed_;
  std::vector<std::uint64_t> emitted_;
  std::vector<std::uint64_t> warm_consumed_;
  std::vector<std::uint64_t> warm_emitted_;
  std::vector<double> busy_time_;       // per op, inside the window
  std::vector<double> blocked_time_;    // per op, inside the window (BAS)
  std::vector<std::uint64_t> shed_;     // per op
  // Per-tuple latency in virtual time, window-gated like the runtime's
  // StatsBoard: one histogram per op (source stamp -> service start) plus
  // the end-to-end distribution (source stamp -> leaving at a sink).
  std::vector<runtime::LatencyHistogram> latency_;
  runtime::LatencyHistogram end_to_end_;
  bool snapped_ = false;
  double warmup_at_ = 0.0;

  bool in_window(double now) const {
    return now >= warmup_at_ && now <= options_.duration;
  }
};

void Simulation::build_servers() {
  const std::size_t n = topology_.num_operators();
  base_server_.assign(n, -1);
  replica_count_.assign(n, 1);
  rr_cursor_.assign(n, 0);
  share_cdf_.assign(n, {});
  consumed_.assign(n, 0);
  emitted_.assign(n, 0);
  busy_time_.assign(n, 0.0);
  blocked_time_.assign(n, 0.0);
  shed_.assign(n, 0);

  for (OpIndex i = 0; i < n; ++i) {
    const OperatorSpec& op = topology_.op(i);
    int replicas = options_.replication.replicas_of(i);
    if (i == topology_.source()) {
      require(replicas == 1, "simulate: the source cannot be replicated");
    }
    if (replicas > 1 && op.state == StateKind::kPartitionedStateful) {
      KeyPartition partition;
      if (i < options_.partitions.size() &&
          !options_.partitions[i].replica_of_key.empty()) {
        partition = options_.partitions[i];
      } else {
        partition = partition_keys(op.keys, replicas);
      }
      replicas = partition.replicas;
      // Per-replica load shares realized by the key split.
      std::vector<double> load(static_cast<std::size_t>(replicas), 0.0);
      for (std::size_t k = 0; k < partition.replica_of_key.size(); ++k) {
        load[static_cast<std::size_t>(partition.replica_of_key[k])] +=
            op.keys.probability(k);
      }
      double running = 0.0;
      for (double share : load) {
        running += share;
        share_cdf_[i].push_back(running);
      }
      if (!share_cdf_[i].empty()) share_cdf_[i].back() = 1.0;
    }
    replica_count_[i] = replicas;
    base_server_[i] = static_cast<int>(servers_.size());
    for (int r = 0; r < replicas; ++r) {
      Server s;
      s.op = i;
      s.is_source = (i == topology_.source());
      servers_.push_back(std::move(s));
    }
  }
}

int Simulation::resolve_destination(OpIndex dest_op) {
  const int replicas = replica_count_[dest_op];
  if (replicas == 1) return base_server_[dest_op];
  if (!share_cdf_[dest_op].empty()) {
    // Partitioned-stateful: share-weighted draw = the key-hash split.
    const double u = rng_.next_double();
    const auto& cdf = share_cdf_[dest_op];
    auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
    if (it == cdf.end()) --it;
    return base_server_[dest_op] + static_cast<int>(it - cdf.begin());
  }
  // Stateless: round-robin, like the runtime's emitter.
  const int r = rr_cursor_[dest_op];
  rr_cursor_[dest_op] = (r + 1) % replicas;
  return base_server_[dest_op] + r;
}

void Simulation::schedule_service(int sid, double now) {
  Server& s = servers_[static_cast<std::size_t>(sid)];
  s.busy = true;
  s.busy_since = now;
  const double mean = topology_.op(s.op).service_time;
  // hop_overhead models the cost of receiving one item through a mailbox;
  // sources generate without an input hop.
  const double overhead = s.is_source ? 0.0 : options_.hop_overhead;
  heap_.push(Event{now + options_.law.sample(mean, rng_) + overhead, seq_++, sid});
}

void Simulation::produce(Server& s, double now) {
  const Selectivity& sel = topology_.op(s.op).selectivity;
  // Results inherit the stamp of the item that produced them, exactly like
  // the runtime copying Tuple::ts through an operator; source items are
  // born now.
  const double birth = s.is_source ? now : s.service_birth;
  s.input_credit += 1.0;
  while (s.input_credit >= sel.input) {
    s.input_credit -= sel.input;
    double quota = sel.output;
    int results = static_cast<int>(quota);
    quota -= results;
    if (quota > 0.0 && rng_.bernoulli(quota)) ++results;
    for (int k = 0; k < results; ++k) {
      const OpIndex dest = routers_[s.op].choose(rng_);
      if (dest == kInvalidOp) {
        count_emitted(s.op);  // sink: the result leaves the system
        if (in_window(now)) end_to_end_.record(now - birth);
      } else {
        s.pending.push_back(Server::PendingResult{resolve_destination(dest), birth});
      }
    }
  }
}

void Simulation::complete_service(int sid, double now) {
  Server& s = servers_[static_cast<std::size_t>(sid)];
  ++consumed_[s.op];
  // Busy time clipped to the measurement window.
  const double lo = std::max(s.busy_since, warmup_at_);
  const double hi = std::min(now, options_.duration);
  if (hi > lo) busy_time_[s.op] += hi - lo;
  s.busy = false;
  produce(s, now);
  attempt_flush(sid, now);
}

void Simulation::attempt_flush(int sid, double now) {
  Server& s = servers_[static_cast<std::size_t>(sid)];
  while (s.pending_pos < s.pending.size()) {
    const int dest_id = s.pending[s.pending_pos].dest;
    Server& dest = servers_[static_cast<std::size_t>(dest_id)];
    if (dest.queue_len >= options_.buffer_capacity) {
      if (options_.shedding) {
        // Load shedding: discard the item; the sender never stalls.
        ++shed_[s.op];
        ++s.pending_pos;
        continue;
      }
      // BAS: block until the destination pops an item.
      if (!s.blocked) {
        s.blocked = true;
        s.blocked_since = now;
        dest.waiters.push_back(sid);
      }
      return;
    }
    account_queue(dest, now);
    ++dest.queue_len;
    if (snapped_ && dest.queue_len > dest.queue_peak) dest.queue_peak = dest.queue_len;
    dest.queue_birth.push_back(s.pending[s.pending_pos].birth);
    count_emitted(s.op);
    ++s.pending_pos;
    try_start(dest_id, now);
  }
  s.pending.clear();
  s.pending_pos = 0;
  s.blocked = false;
  if (s.is_source) {
    if (now < options_.duration) schedule_service(sid, now);
  } else {
    try_start(sid, now);
  }
}

void Simulation::try_start(int sid, double now) {
  Server& s = servers_[static_cast<std::size_t>(sid)];
  if (s.busy || s.blocked || s.is_source || s.queue_len == 0) return;
  account_queue(s, now);
  --s.queue_len;
  s.service_birth = s.queue_birth.front();
  s.queue_birth.pop_front();
  // Source stamp -> service start, the runtime's meter_arrival sample.
  if (in_window(now)) latency_[s.op].record(now - s.service_birth);
  // Mark the server busy *before* admitting a waiter: the waiter's flush
  // can re-enter try_start on this very server, and the busy flag is what
  // stops it from starting a second concurrent service.
  schedule_service(sid, now);
  // A slot freed: admit the longest-waiting blocked sender.
  if (!s.waiters.empty()) {
    const int waiter = s.waiters.front();
    s.waiters.pop_front();
    Server& w = servers_[static_cast<std::size_t>(waiter)];
    account_blocked(w, now);
    w.blocked = false;
    attempt_flush(waiter, now);
  }
}

void Simulation::maybe_snapshot(double now) {
  if (!snapped_ && now >= warmup_at_) {
    warm_consumed_ = consumed_;
    warm_emitted_ = emitted_;
    // High-water tracking restarts at the window open, seeded with the
    // current occupancy — the runtime's reset_depth_peak semantics.
    for (Server& s : servers_) s.queue_peak = s.queue_len;
    snapped_ = true;
  }
}

SimResult Simulation::run() {
  warmup_at_ = options_.duration * options_.warmup_fraction;
  SimResult result;

  // Kick off the source.
  schedule_service(base_server_[topology_.source()], 0.0);

  while (!heap_.empty()) {
    const Event ev = heap_.top();
    if (ev.time > options_.duration) break;
    heap_.pop();
    maybe_snapshot(ev.time);
    ++result.events;
    complete_service(ev.server, ev.time);
  }
  if (!snapped_) maybe_snapshot(warmup_at_);  // degenerate ultra-short runs

  const double window = options_.duration - warmup_at_;
  const std::size_t n = topology_.num_operators();
  result.ops.resize(n);
  for (OpIndex i = 0; i < n; ++i) {
    SimOperatorStats& stats = result.ops[i];
    stats.consumed = consumed_[i];
    stats.emitted = emitted_[i];
    stats.arrival_rate =
        static_cast<double>(consumed_[i] - warm_consumed_[i]) / window;
    stats.departure_rate =
        static_cast<double>(emitted_[i] - warm_emitted_[i]) / window;
    stats.shed = shed_[i];
    result.shed += shed_[i];
    // Little's law: mean items in system (queued + in service) over the
    // arrival rate gives the mean per-item sojourn at this operator.
    double queue_integral = 0.0;
    for (int r = 0; r < replica_count_[i]; ++r) {
      Server& server = servers_[static_cast<std::size_t>(base_server_[i] + r)];
      account_queue(server, options_.duration);  // close the last interval
      if (server.blocked) account_blocked(server, options_.duration);
      queue_integral += server.queue_integral;
      stats.queue_peak = std::max(stats.queue_peak, server.queue_peak);
    }
    stats.busy_fraction = busy_time_[i] / (window * replica_count_[i]);
    stats.blocked_fraction = blocked_time_[i] / (window * replica_count_[i]);
    stats.mean_queue = queue_integral / window;
    const double in_system = stats.mean_queue + busy_time_[i] / window;
    if (stats.arrival_rate > 0.0 && i != topology_.source()) {
      stats.mean_sojourn = in_system / stats.arrival_rate;
    }
    stats.latency = latency_[i].summary();
  }
  result.end_to_end = end_to_end_.summary();
  result.throughput = result.ops[topology_.source()].departure_rate;
  for (OpIndex s : topology_.sinks()) result.sink_rate += result.ops[s].departure_rate;
  result.sim_time = options_.duration;
  return result;
}

}  // namespace

SimResult simulate(const Topology& t, const SimOptions& options) {
  require(options.duration > 0.0, "simulate: duration must be positive");
  require(options.warmup_fraction >= 0.0 && options.warmup_fraction < 1.0,
          "simulate: warmup_fraction must be in [0, 1)");
  Simulation sim(t, options);
  return sim.run();
}

}  // namespace ss::sim
