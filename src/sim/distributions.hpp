// Service-time laws for the discrete-event simulator.
//
// The paper's flow-conservation model is distribution-agnostic (§3.1: "this
// condition is always valid regardless of the statistical distributions of
// the service rates, e.g., Poisson, Normal or Deterministic").  The
// simulator therefore supports several laws so that claim can be exercised.
#pragma once

#include <cstdint>

#include "gen/rng.hpp"

namespace ss::sim {

struct ServiceLaw {
  enum class Kind : std::uint8_t {
    kDeterministic,  ///< always exactly the mean
    kExponential,    ///< memoryless (M/M-style stations)
    kNormal,         ///< truncated normal, sigma = cv * mean
    kLogNormal,      ///< heavy-ish tail, sigma parameter from cv
  };

  Kind kind = Kind::kExponential;
  /// Coefficient of variation for kNormal / kLogNormal.
  double cv = 0.25;

  /// Draws one service time with the given mean (> 0; results are clamped
  /// to a tiny positive floor so time always advances).
  [[nodiscard]] double sample(double mean, Rng& rng) const;

  static ServiceLaw deterministic() { return {Kind::kDeterministic, 0.0}; }
  static ServiceLaw exponential() { return {Kind::kExponential, 0.0}; }
  static ServiceLaw normal(double cv = 0.25) { return {Kind::kNormal, cv}; }
  static ServiceLaw lognormal(double cv = 0.25) { return {Kind::kLogNormal, cv}; }
};

}  // namespace ss::sim
