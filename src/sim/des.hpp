// Discrete-event simulator of the finite-buffer BAS queueing network.
//
// This is an *independent implementation of the mechanism* the cost models
// abstract (bounded buffers, Blocking-After-Service, probabilistic routing,
// selectivity, replica splitting), so comparing Alg. 1 predictions against
// simulated rates is a genuine accuracy experiment — the role Akka plays in
// the paper's evaluation, at a scale a 1-core container can sweep: millions
// of events per second, 50 topologies in seconds (see DESIGN.md on this
// substitution).
//
// Model, mirroring the threaded runtime:
//   * every replica of every operator is a server with a bounded FIFO input
//     queue; the source is a server with no input that generates items;
//   * a server takes an item, serves it for law.sample(mean), then pushes
//     each produced result into the chosen destination queue; if a queue is
//     full the server BLOCKS until the destination pops an item (BAS);
//   * input selectivity s: one production event per s consumed items;
//     output selectivity: floor + Bernoulli(fraction) results per event;
//   * replicated operators split round-robin (stateless) or by key share
//     (partitioned-stateful), exactly like the runtime's emitter.
#pragma once

#include <vector>

#include "core/key_partitioning.hpp"
#include "core/steady_state.hpp"
#include "core/topology.hpp"
#include "runtime/metrics.hpp"
#include "sim/distributions.hpp"

namespace ss::sim {

struct SimOptions {
  /// Simulated seconds.
  double duration = 300.0;
  /// Fraction of the duration discarded as warmup before rates are measured.
  double warmup_fraction = 0.3;
  /// Input-queue capacity of every server (Akka BoundedMailbox size).
  std::size_t buffer_capacity = 64;
  /// Service-time law applied to every operator (mean = profiled time).
  ServiceLaw law = ServiceLaw::exponential();
  std::uint64_t seed = 1;
  /// Optional fission plan (replicas and, for partitioned-stateful
  /// operators, the key shares realized through `partitions`).
  ReplicationPlan replication{};
  /// Key partitions per operator (derived automatically when absent).
  std::vector<KeyPartition> partitions{};
  /// When true, a full destination queue sheds (discards) the new item
  /// instead of blocking the sender (paper §2's load-shedding alternative;
  /// the cost models assume the default BAS behaviour).
  bool shedding = false;
  /// Fixed per-item overhead added to every server's service time: the
  /// scheduling/communication cost of one actor hop.  The paper's §3.1
  /// folds this into the profiled service time ("the communication latency
  /// spent to send the result"); exposing it separately lets the fusion
  /// ablation measure what merging operators actually saves.
  double hop_overhead = 0.0;
};

/// Measured steady-state behaviour of one logical operator.
struct SimOperatorStats {
  std::uint64_t consumed = 0;  ///< items served (whole run)
  std::uint64_t emitted = 0;   ///< results delivered (whole run)
  double arrival_rate = 0.0;   ///< items/s in the measurement window
  double departure_rate = 0.0; ///< results/s in the measurement window
  double busy_fraction = 0.0;  ///< fraction of window time spent serving
  /// Fraction of window time spent blocked pushing downstream (BAS) — the
  /// virtual-time counterpart of the runtime's blocked-on-send metering.
  double blocked_fraction = 0.0;
  /// Input-queue high-water mark inside the window (max over replicas).
  std::size_t queue_peak = 0;
  std::uint64_t shed = 0;      ///< results this operator lost to shedding
  double mean_queue = 0.0;     ///< time-averaged input-queue occupancy
  /// Mean time an item spends at this operator (queueing + service),
  /// derived from the queue integral via Little's law: W = L / lambda.
  double mean_sojourn = 0.0;
  /// Per-tuple virtual-time delay from source emission to the start of
  /// service at this operator (measurement window only) — the simulated
  /// counterpart of the runtime's meter_arrival percentiles.
  runtime::LatencySummary latency;
};

struct SimResult {
  std::vector<SimOperatorStats> ops;
  double throughput = 0.0;   ///< source departure rate in the window
  double sink_rate = 0.0;    ///< combined sink departure rate
  double sim_time = 0.0;     ///< simulated seconds actually run
  std::uint64_t events = 0;  ///< processed simulation events
  std::uint64_t shed = 0;    ///< total items discarded by load shedding
  /// Source emission to leaving the system at a sink, virtual time,
  /// measurement window only (the runtime's end-to-end percentiles).
  runtime::LatencySummary end_to_end;
};

/// Runs the simulation.  Deterministic for a given (topology, options).
SimResult simulate(const Topology& t, const SimOptions& options = {});

}  // namespace ss::sim
