// Epoch checkpointing & crash recovery (barrier-aligned snapshotting).
//
// The fence/drain barrier of elastic re-deployment (engine.hpp) quiesces
// the whole actor graph at an exact tuple boundary: every mailbox is empty
// and every in-flight item fully processed, while sources keep generating
// into a bounded buffer.  That is precisely the consistent cut a checkpoint
// needs, so checkpointing piggybacks on the same barrier — Engine::
// checkpoint_now() arms a fence, and instead of swapping the epoch it
// serializes the quiesced state and resumes the *same* epoch in place.
//
// A checkpoint captures everything required to resume the exact stream an
// uninterrupted run would have produced:
//   * the deployment (replication / partitions / fusions) of the epoch,
//   * per-source offsets: items delivered into the graph so far (items
//     sitting in the fence buffer are *not* counted — they have not been
//     processed, and a rewound source regenerates them deterministically),
//   * per-actor rng lanes (emitter key draws and probabilistic routing are
//     rng-driven; exactly-once per-key accounting needs the generator
//     state, not its seed) and the emitter's round-robin cursor,
//   * the OperatorLogic state blobs (save_state/restore_state).
//
// On-disk format (one file per checkpoint, written to a tmp file and
// atomically renamed):
//
//   "SSCK" | u32 version | u64 payload_len | payload | u32 crc32(payload)
//
// all little-endian (wire.hpp).  Loading scans the directory for the
// newest file whose magic, length and CRC all check out, silently skipping
// truncated or corrupt ones — a crash mid-write can never poison recovery,
// it only loses the youngest snapshot.  The last `retain` checkpoints are
// kept; older ones are pruned after each successful write.
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "core/deployment.hpp"
#include "core/types.hpp"

namespace ss::runtime {

class Engine;

/// What produced an actor-state entry.  Values 0..5 mirror ActorKind
/// (plan.hpp); kMember tags the per-member logic blobs of a fused meta
/// actor, which has several logic instances behind one actor.
enum class CheckpointRole : std::uint8_t {
  kSource = 0,
  kWorker = 1,
  kEmitter = 2,
  kReplica = 3,
  kCollector = 4,
  kMeta = 5,
  kMember = 6,
};

/// Serialized state of one actor (or one fused member's logic).  Matched
/// back on recovery by (op, role, replica).
struct CheckpointActorEntry {
  OpIndex op = kInvalidOp;
  CheckpointRole role = CheckpointRole::kWorker;
  std::int32_t replica = -1;
  std::array<std::uint64_t, 4> rng{};  ///< actor rng lanes (zero for kMember)
  std::int32_t rr_cursor = -1;         ///< emitter round-robin cursor; -1 = n/a
  bool has_state = false;              ///< logic supported save_state()
  std::string state;                   ///< OperatorLogic::save_state bytes
};

/// Items one source delivered into the graph before the cut.
struct CheckpointSourceEntry {
  OpIndex op = kInvalidOp;
  std::uint64_t offset = 0;
};

struct Checkpoint {
  std::uint64_t sequence = 0;  ///< monotonic within the directory (file name)
  std::uint64_t epoch = 0;     ///< engine epoch the cut was taken in
  std::string tenant;          ///< EngineConfig::tenant tag ("" = untagged)
  Deployment deployment;       ///< deployment of the checkpointed epoch
  std::vector<CheckpointSourceEntry> sources;
  std::vector<CheckpointActorEntry> actors;
};

// --- codec -----------------------------------------------------------------

/// CRC-32 (reflected, poly 0xEDB88320) of `data`.
[[nodiscard]] std::uint32_t crc32(std::string_view data, std::uint32_t seed = 0);

/// Serializes `cp` into the bare payload (no header/CRC framing).
[[nodiscard]] std::string encode_checkpoint(const Checkpoint& cp);

/// Decodes a payload produced by encode_checkpoint(); false on any
/// truncation, trailing garbage or malformed field.
[[nodiscard]] bool decode_checkpoint(std::string_view payload, Checkpoint& out);

/// Full file image: magic + version + length-prefixed payload + CRC footer.
[[nodiscard]] std::string checkpoint_file_bytes(const Checkpoint& cp);

/// Validates framing + CRC and decodes; false for torn/corrupt files.
[[nodiscard]] bool parse_checkpoint_file(std::string_view bytes, Checkpoint& out);

// --- fault injection -------------------------------------------------------

/// Deterministic failure seam for the checkpoint write path.  Tests arm it
/// programmatically; child-process recovery tests arm it through the
/// environment (read once, at first use):
///   SS_CHECKPOINT_FAIL_WRITE=N  the Nth snapshot write throws ss::Error
///   SS_CHECKPOINT_TORN_WRITE=N  the Nth snapshot is silently truncated
///                               mid-payload (torn-write simulation)
///   SS_CRASH_AFTER_CHECKPOINTS=N  hard process exit (status 42) right
///                               after the Nth successful write — a
///                               deterministic stand-in for kill -9 at a
///                               known checkpoint boundary
class FaultInjector {
 public:
  /// Exit status of the injected hard crash (distinguishable from normal
  /// failure paths in the recovery test's waitpid).
  static constexpr int kCrashExitCode = 42;

  static FaultInjector& instance();

  /// Disarms everything (tests reset between cases).
  void reset();

  void fail_write_on(int nth);       ///< 1-based: the nth write() throws
  void tear_write_on(int nth);       ///< 1-based: the nth write() is truncated
  void crash_after_writes(int nth);  ///< hard exit after the nth success

  // Hooks consumed by CheckpointManager::write().
  [[nodiscard]] bool take_fail_write();
  [[nodiscard]] bool take_torn_write();
  void note_write_success();

 private:
  FaultInjector();

  std::atomic<int> fail_write_in_{0};  // 0 = disarmed; fires when it hits 0
  std::atomic<int> torn_write_in_{0};
  std::atomic<int> crash_in_{0};
};

// --- manager ---------------------------------------------------------------

/// Owns one checkpoint directory: atomic writes, retention, recovery scan.
/// Construction creates the directory and probes writability, so an
/// unusable --checkpoint-dir fails at startup rather than at the first
/// fence.  Sequence numbering continues from existing files, so a
/// recovered run never reuses (and thus never clobbers) a live snapshot.
class CheckpointManager {
 public:
  static constexpr int kDefaultRetain = 3;

  /// Throws ss::Error when the directory cannot be created or written.
  explicit CheckpointManager(std::string dir, int retain = kDefaultRetain);

  /// Stamps cp.sequence, writes dir/ckpt-<seq>.bin via tmp-file + rename,
  /// prunes beyond the retention limit.  Throws ss::Error on I/O failure
  /// (or injected write failure).  Returns the final path.
  std::string write(Checkpoint& cp);

  /// Writes dir/final.bin — the complete state at a *successful* end of
  /// run, outside the retention rotation.  Recovery treats it like any
  /// other checkpoint (it carries the next sequence number), so
  /// re-running a completed run with --recover is a no-op rather than a
  /// replay.  Not subject to fault injection: the injector targets the
  /// periodic snapshot path.
  std::string write_final(Checkpoint& cp);

  /// Newest checkpoint in the directory that passes framing + CRC +
  /// decode; skips torn or corrupt files.  False when none is valid.
  [[nodiscard]] bool load_latest(Checkpoint& out) const;

  /// Parses one checkpoint file; false on missing/torn/corrupt.
  static bool read_file(const std::string& path, Checkpoint& out);

  /// Checkpoint files currently on disk (full paths, unordered).
  [[nodiscard]] std::vector<std::string> list() const;

  [[nodiscard]] const std::string& dir() const { return dir_; }
  [[nodiscard]] std::uint64_t next_sequence() const { return next_sequence_; }
  [[nodiscard]] int retain() const { return retain_; }

 private:
  std::string write_file(const std::string& name, Checkpoint& cp, bool injectable);
  void prune() const;

  std::string dir_;
  int retain_;
  std::uint64_t next_sequence_ = 1;
};

// --- periodic driver -------------------------------------------------------

/// Background thread calling Engine::checkpoint_now() every `period`
/// seconds, same shape as ReconfigController/MetricsExporter: started by
/// the engine when EngineConfig::checkpoint_dir is set, stopped (joined)
/// before the run's stop flag is raised so an in-flight snapshot always
/// completes or aborts cleanly.
class CheckpointController {
 public:
  CheckpointController(Engine& engine, double period);
  ~CheckpointController();

  CheckpointController(const CheckpointController&) = delete;
  CheckpointController& operator=(const CheckpointController&) = delete;

  void start();
  void stop();

 private:
  void loop();

  Engine& engine_;
  double period_;
  std::thread thread_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace ss::runtime
