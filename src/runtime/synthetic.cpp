#include "runtime/synthetic.hpp"

#include <cmath>

#include "runtime/clock.hpp"
#include "runtime/scheduler.hpp"
#include "runtime/wire.hpp"

namespace ss::runtime {

SyntheticOperator::SyntheticOperator(const OperatorSpec& spec, std::uint64_t seed,
                                     double time_scale)
    : service_time_(spec.service_time * time_scale),
      selectivity_(spec.selectivity),
      seed_(seed),
      time_scale_(time_scale),
      rng_(seed) {}

void SyntheticOperator::process(const Tuple& item, OpIndex from, Collector& out) {
  (void)from;
  if (service_time_ > 0.0) {
    // The timed wait parks this thread; under the pooled scheduler the
    // BlockingSection lends the core to another worker meanwhile.  A
    // zero-cost operator skips the section entirely: blocking_begin/end
    // take the host's global mutex, which would dominate the hop cost.
    BlockingSection blocking;
    waiter_.wait(service_time_);
  }
  last_item_ = item;
  has_pending_ = true;
  // One production event per `input` items consumed (window-slide style).
  input_credit_ += 1.0;
  while (input_credit_ >= selectivity_.input) {
    input_credit_ -= selectivity_.input;
    produce(item, out);
    has_pending_ = false;
  }
}

void SyntheticOperator::produce(const Tuple& item, Collector& out) {
  // `output` results per production event; fractional part statistically.
  double quota = selectivity_.output;
  while (quota >= 1.0) {
    out.emit(item);
    quota -= 1.0;
  }
  if (quota > 0.0 && rng_.bernoulli(quota)) out.emit(item);
}

void SyntheticOperator::on_finish(Collector& out) {
  // Flush a partially filled window so short finite runs do not lose the
  // tail (only when something was consumed since the last result).
  if (selectivity_.input > 1.0 && has_pending_ && input_credit_ > 0.0) {
    produce(last_item_, out);
    input_credit_ = 0.0;
    has_pending_ = false;
  }
}

bool SyntheticOperator::save_state(std::string& out) const {
  // Everything the selectivity machinery accumulated: the Bernoulli rng
  // stream position, the input credit toward the next production, and the
  // pending tail item on_finish() would flush.
  for (std::uint64_t lane : rng_.state()) wire::put_u64(out, lane);
  wire::put_f64(out, input_credit_);
  wire::put_u8(out, has_pending_ ? 1 : 0);
  wire::put_i64(out, last_item_.id);
  wire::put_i64(out, last_item_.key);
  wire::put_f64(out, last_item_.ts);
  for (double f : last_item_.f) wire::put_f64(out, f);
  return true;
}

bool SyntheticOperator::restore_state(const std::string& bytes) {
  wire::Reader in(bytes);
  std::array<std::uint64_t, 4> lanes{};
  for (auto& lane : lanes) {
    if (!in.u64(lane)) return false;
  }
  std::uint8_t pending = 0;
  if (!in.f64(input_credit_) || !in.u8(pending)) return false;
  if (!in.i64(last_item_.id) || !in.i64(last_item_.key) || !in.f64(last_item_.ts)) {
    return false;
  }
  for (double& f : last_item_.f) {
    if (!in.f64(f)) return false;
  }
  if (!in.ok() || in.remaining() != 0) return false;
  rng_.set_state(lanes);
  has_pending_ = pending != 0;
  return true;
}

std::unique_ptr<OperatorLogic> SyntheticOperator::clone() const {
  OperatorSpec spec;
  spec.name = "synthetic";
  spec.service_time = service_time_ / time_scale_;
  spec.selectivity = selectivity_;
  // Derive a distinct stream per replica so Bernoulli draws decorrelate.
  const std::uint64_t child_seed = seed_ + (++clones_) * 0x5851f42d4c957f2dULL;
  return std::make_unique<SyntheticOperator>(spec, child_seed, time_scale_);
}

SyntheticSource::SyntheticSource(const OperatorSpec& spec, std::uint64_t seed,
                                 double time_scale, std::int64_t max_items)
    : service_time_(spec.service_time * time_scale), rng_(seed), max_items_(max_items) {}

bool SyntheticSource::next(Tuple& out) {
  if (max_items_ >= 0 && next_id_ >= max_items_) return false;
  if (service_time_ > 0.0) {
    BlockingSection blocking;
    waiter_.wait(service_time_);
  }
  out.id = next_id_++;
  out.key = static_cast<std::int64_t>(rng_.next_u64() >> 1);
  out.ts = static_cast<double>(out.id) * service_time_;
  for (double& f : out.f) f = rng_.next_double();
  return true;
}

void SyntheticSource::skip(std::uint64_t n) {
  // Recovery rewind: consume exactly the rng draws next() makes per item
  // (one u64 for the key, four doubles for the attributes) without the
  // paced wait, so the (n+1)-th item matches an uninterrupted run's.
  for (std::uint64_t i = 0; i < n; ++i) {
    if (max_items_ >= 0 && next_id_ >= max_items_) return;
    ++next_id_;
    rng_.next_u64();
    for (int k = 0; k < 4; ++k) rng_.next_double();
  }
}

}  // namespace ss::runtime
