#include "runtime/synthetic.hpp"

#include <cmath>

#include "runtime/clock.hpp"
#include "runtime/scheduler.hpp"

namespace ss::runtime {

SyntheticOperator::SyntheticOperator(const OperatorSpec& spec, std::uint64_t seed,
                                     double time_scale)
    : service_time_(spec.service_time * time_scale),
      selectivity_(spec.selectivity),
      seed_(seed),
      time_scale_(time_scale),
      rng_(seed) {}

void SyntheticOperator::process(const Tuple& item, OpIndex from, Collector& out) {
  (void)from;
  {
    // The timed wait parks this thread; under the pooled scheduler the
    // BlockingSection lends the core to another worker meanwhile.
    BlockingSection blocking;
    waiter_.wait(service_time_);
  }
  last_item_ = item;
  has_pending_ = true;
  // One production event per `input` items consumed (window-slide style).
  input_credit_ += 1.0;
  while (input_credit_ >= selectivity_.input) {
    input_credit_ -= selectivity_.input;
    produce(item, out);
    has_pending_ = false;
  }
}

void SyntheticOperator::produce(const Tuple& item, Collector& out) {
  // `output` results per production event; fractional part statistically.
  double quota = selectivity_.output;
  while (quota >= 1.0) {
    out.emit(item);
    quota -= 1.0;
  }
  if (quota > 0.0 && rng_.bernoulli(quota)) out.emit(item);
}

void SyntheticOperator::on_finish(Collector& out) {
  // Flush a partially filled window so short finite runs do not lose the
  // tail (only when something was consumed since the last result).
  if (selectivity_.input > 1.0 && has_pending_ && input_credit_ > 0.0) {
    produce(last_item_, out);
    input_credit_ = 0.0;
    has_pending_ = false;
  }
}

std::unique_ptr<OperatorLogic> SyntheticOperator::clone() const {
  OperatorSpec spec;
  spec.name = "synthetic";
  spec.service_time = service_time_ / time_scale_;
  spec.selectivity = selectivity_;
  // Derive a distinct stream per replica so Bernoulli draws decorrelate.
  const std::uint64_t child_seed = seed_ + (++clones_) * 0x5851f42d4c957f2dULL;
  return std::make_unique<SyntheticOperator>(spec, child_seed, time_scale_);
}

SyntheticSource::SyntheticSource(const OperatorSpec& spec, std::uint64_t seed,
                                 double time_scale, std::int64_t max_items)
    : service_time_(spec.service_time * time_scale), rng_(seed), max_items_(max_items) {}

bool SyntheticSource::next(Tuple& out) {
  if (max_items_ >= 0 && next_id_ >= max_items_) return false;
  {
    BlockingSection blocking;
    waiter_.wait(service_time_);
  }
  out.id = next_id_++;
  out.key = static_cast<std::int64_t>(rng_.next_u64() >> 1);
  out.ts = static_cast<double>(out.id) * service_time_;
  for (double& f : out.f) f = rng_.next_double();
  return true;
}

}  // namespace ss::runtime
