// Bounded blocking mailbox with Blocking-After-Service semantics.
//
// This is the C++ equivalent of the Akka BoundedMailbox configuration the
// paper evaluates (§5.1): a fixed-capacity MPSC queue whose send() blocks
// the producer while the buffer is full — that blocking *is* the
// backpressure the cost models capture — and gives up after a timeout, in
// which case the item is dropped (the paper sets the timeout high enough,
// five seconds, that drops never happen in practice).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>

#include "runtime/message.hpp"

namespace ss::runtime {

/// What a full mailbox does to a new item (paper §2): block the sender
/// (backpressure, the semantics the cost models capture) or discard the
/// item immediately (load shedding, which trades loss for liveness).
enum class OverflowPolicy : std::uint8_t {
  kBlockAfterService,
  kShedNewest,
};

class Mailbox {
 public:
  explicit Mailbox(std::size_t capacity,
                   OverflowPolicy policy = OverflowPolicy::kBlockAfterService)
      : capacity_(capacity == 0 ? 1 : capacity), policy_(policy) {}

  Mailbox(const Mailbox&) = delete;
  Mailbox& operator=(const Mailbox&) = delete;

  /// Enqueues `m`.  Under kBlockAfterService, blocks while full (BAS) and
  /// returns false only if `timeout` expired or the mailbox was closed;
  /// under kShedNewest a full mailbox discards the item immediately.
  bool send(const Message& m, std::chrono::nanoseconds timeout);

  /// Enqueues bypassing the capacity bound (used for shutdown tokens so a
  /// drain can never deadlock behind a full buffer).
  void send_unbounded(const Message& m);

  /// Dequeues into `out`, blocking while empty.  Returns false once the
  /// mailbox is closed *and* drained.
  bool receive(Message& out);

  /// Non-blocking variant; returns false when empty right now.
  bool try_receive(Message& out);

  /// Wakes all waiters; send() starts failing, receive() drains then stops.
  void close();

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  /// Items dropped on send timeout since construction.
  [[nodiscard]] std::uint64_t dropped() const;

 private:
  const std::size_t capacity_;
  const OverflowPolicy policy_;
  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<Message> queue_;
  bool closed_ = false;
  std::uint64_t dropped_ = 0;
};

}  // namespace ss::runtime
