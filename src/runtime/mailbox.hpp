// Bounded blocking mailbox with Blocking-After-Service semantics.
//
// This is the C++ equivalent of the Akka BoundedMailbox configuration the
// paper evaluates (§5.1): a fixed-capacity MPSC queue whose send() blocks
// the producer while the buffer is full — that blocking *is* the
// backpressure the cost models capture — and gives up after a timeout, in
// which case the item is dropped (the paper sets the timeout high enough,
// five seconds, that drops never happen in practice).
//
// Two interchangeable engines sit behind one API (MailboxKind):
//
//  - kRing (default): a bounded lock-free MPSC ring in the style of
//    Vyukov's bounded queue.  Producers claim slots with a CAS on
//    enqueue_pos_ and publish through per-cell sequence numbers; the single
//    consumer (the pooled scheduler's actor claim serializes consumers
//    across threads, and its acquire/release ordering publishes the ring
//    between them) advances dequeue_pos_ without any atomic RMW.  The
//    logical capacity is decoupled from the physical ring: a separate
//    credit counter (size_) enforces the BAS bound, so deferred release
//    (drain(..., release_now=false) + release()) keeps capacity exactly B.
//    Capacity-exempt sends (send_unbounded: shutdown/fence tokens) that
//    find the physical ring full spill into a mutex-guarded side queue;
//    once spilled, *all* later enqueues follow it until the consumer has
//    drained the spill, which preserves per-producer FIFO — the property
//    the scheduler's token counting relies on ("every channel's tokens
//    arrive after that channel's data").  Blocking (BAS), kShedNewest,
//    close and on_ready keep their exact mutex-path semantics as the slow
//    path: a full mailbox parks the sender on the old condition variable,
//    and that park is where blocked-on-send telemetry is charged.
//
//  - kMutex: the original two-queue (producer inbox / consumer-private
//    outbox) design, kept as the A/B baseline for `--mailbox=mutex`.
//    Producers append under the lock; the consumer refills its outbox by
//    swapping the whole inbox in one lock acquisition.
//
// Either way the mailbox stays MPSC: many producers, one consumer *at a
// time*.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "runtime/message.hpp"

namespace ss::runtime {

/// What a full mailbox does to a new item (paper §2): block the sender
/// (backpressure, the semantics the cost models capture) or discard the
/// item immediately (load shedding, which trades loss for liveness).
enum class OverflowPolicy : std::uint8_t {
  kBlockAfterService,
  kShedNewest,
};

/// Which queue engine backs the mailbox: the lock-free MPSC ring fast path
/// (default) or the original mutex-guarded two-queue baseline.
enum class MailboxKind : std::uint8_t {
  kMutex,
  kRing,
};

/// Parses "mutex" / "ring"; throws std::invalid_argument otherwise.
MailboxKind mailbox_kind_from_string(const std::string& name);
const char* to_string(MailboxKind kind);

class Mailbox {
 public:
  explicit Mailbox(std::size_t capacity,
                   OverflowPolicy policy = OverflowPolicy::kBlockAfterService,
                   MailboxKind kind = MailboxKind::kRing);

  Mailbox(const Mailbox&) = delete;
  Mailbox& operator=(const Mailbox&) = delete;

  /// Enqueues `m`.  Under kBlockAfterService, blocks while full (BAS) and
  /// returns false only if `timeout` expired or the mailbox was closed;
  /// under kShedNewest a full mailbox discards the item immediately.
  bool send(const Message& m, std::chrono::nanoseconds timeout);

  /// Non-blocking fast path: enqueues if a slot is free right now and
  /// returns true.  Returns false when the mailbox is closed or full; a
  /// full kShedNewest mailbox counts the drop (the item is shed), a full
  /// kBlockAfterService one does not — the caller decides whether to fall
  /// back to the blocking send() or to retry later.
  bool try_send(const Message& m);

  /// Non-blocking batched enqueue: accepts the longest prefix of
  /// `msgs[0..n)` that fits in free capacity right now and returns how many
  /// were taken (0 when closed or full).  On the ring this is one credit
  /// CAS plus one slot reservation for the whole prefix; on the mutex
  /// engine it is one lock acquisition.  Never counts drops — the caller
  /// falls back to send()/try_send() per remaining message, which applies
  /// the usual BAS/shed semantics.
  std::size_t try_send_batch(const Message* msgs, std::size_t n);

  /// Enqueues bypassing the capacity bound (used for shutdown tokens so a
  /// drain can never deadlock behind a full buffer).  A closed mailbox
  /// counts the item as dropped instead of enqueueing it.
  void send_unbounded(const Message& m);

  /// Dequeues into `out`, blocking while empty.  Returns false once the
  /// mailbox is closed *and* drained.
  bool receive(Message& out);

  /// Non-blocking variant; returns false when empty right now.
  bool try_receive(Message& out);

  /// Batched dequeue: appends up to `max` messages to `out` in FIFO order
  /// and returns how many were taken (0 when empty right now).  With
  /// `release_now` (the default) the taken messages free their capacity
  /// slots immediately, exactly as if each had been try_receive()d before
  /// the batch ran; a consumer that processes the batch over time should
  /// pass false and call release() as each message enters service instead —
  /// releasing a whole batch up front would hand senders up to `max` extra
  /// slots and visibly weaken Blocking-After-Service backpressure (the
  /// cost models assume capacity B, not B + batch).
  std::size_t drain(std::vector<Message>& out, std::size_t max, bool release_now = true);

  /// Frees `n` capacity slots taken by drain(..., release_now=false) and
  /// wakes blocked senders if any — an atomic decrement unless senders are
  /// actually waiting.
  void release(std::size_t n) { release_slots(n); }

  /// Wakes all waiters; send() starts failing, receive() drains then stops.
  void close();

  /// Installs a readiness hook fired (outside the lock) whenever an enqueue
  /// turns the mailbox from empty to non-empty.  Pooled schedulers use it
  /// to learn that the owning actor has work without parking a worker on
  /// this mailbox's condition variable.  The installation is synchronized
  /// with concurrent senders (the hook is read and written under the
  /// mailbox lock), so it may be swapped while producers are live; an
  /// enqueue concurrent with the swap fires either the old or the new
  /// hook, never a torn one.  Pass nullptr to clear.
  void set_on_ready(std::function<void()> on_ready);

  [[nodiscard]] std::size_t size() const {
    return size_.load(std::memory_order_acquire);
  }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] bool closed() const {
    return closed_.load(std::memory_order_acquire);
  }
  [[nodiscard]] OverflowPolicy policy() const { return policy_; }
  [[nodiscard]] MailboxKind kind() const { return kind_; }

  /// Items dropped on send timeout since construction.
  [[nodiscard]] std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// Messages that took the lock-free ring fast path (0 on kMutex).  The
  /// scheduler folds these into its counter report so the ready-hint
  /// ledger can be read next to the enqueue volume that fed it.
  [[nodiscard]] std::uint64_t ring_enqueues() const {
    return ring_enqueues_.load(std::memory_order_relaxed);
  }
  /// Messages that overflowed the physical ring into the spill queue —
  /// capacity-exempt tokens beyond the ring's slack, or stragglers behind
  /// them.  Always 0 on kMutex.
  [[nodiscard]] std::uint64_t ring_spills() const {
    return ring_spills_.load(std::memory_order_relaxed);
  }

  /// Queue-depth high-water mark since construction or the last
  /// reset_depth_peak() — the sampled backpressure gauge the telemetry
  /// layer reports per steady-state window.
  [[nodiscard]] std::size_t depth_peak() const {
    return depth_peak_.load(std::memory_order_relaxed);
  }
  /// Restarts the high-water tracking at the current depth (window open).
  void reset_depth_peak() {
    depth_peak_.store(size_.load(std::memory_order_acquire),
                      std::memory_order_relaxed);
  }

  /// Logical operator that consumes from this mailbox.  The engine tags
  /// every actor's mailbox at epoch build; the blocking slow path passes
  /// it to charge_blocked so blocked-on-send time can be attributed per
  /// *edge* (sender → this op), not just per sender.  kInvalidOp (the
  /// default) degrades to the plain per-sender charge.
  void set_owner_op(OpIndex op) { owner_op_ = op; }
  [[nodiscard]] OpIndex owner_op() const { return owner_op_; }

 private:
  /// One ring slot: the per-cell sequence number is the publication
  /// protocol (seq == pos: free for the producer claiming pos; seq ==
  /// pos + 1: published, readable by the consumer).  Cache-line aligned so
  /// neighbouring publishes don't false-share.
  struct alignas(64) Cell {
    std::atomic<std::size_t> seq{0};
    Message msg{};
  };

  // --- shared helpers -----------------------------------------------------
  void release_slots(std::size_t n);
  static void fire(std::function<void()>& hook) {
    if (hook) hook();
  }
  void bump_peak(std::size_t depth) {
    std::size_t cur = depth_peak_.load(std::memory_order_relaxed);
    while (depth > cur &&
           !depth_peak_.compare_exchange_weak(cur, depth,
                                              std::memory_order_relaxed)) {
    }
  }

  // --- ring engine --------------------------------------------------------
  /// Claims one credit of logical capacity; returns false when full.
  /// `depth_out` is the post-claim depth (1 == empty→non-empty edge).
  bool acquire_credit(std::size_t& depth_out);
  /// Producer-side slot claim + publish; false when the physical ring is
  /// full (caller spills).
  bool ring_enqueue(const Message& m);
  /// Claims `k` contiguous slots with one CAS and publishes all of them;
  /// returns false (publishing nothing) when the ring lacks `k` free slots.
  bool ring_enqueue_many(const Message* msgs, std::size_t k);
  /// Routes one message into the ring or, after a spill, the side queue.
  void ring_publish(const Message& m);
  /// Consumer-side pop: ring first, spill queue once the ring is empty.
  bool ring_consume(Message& out);
  /// Consumer-side peek (only the consumer advances dequeue_pos_).
  [[nodiscard]] bool ring_ready() const;
  /// Post-publish notifications: wake a parked receive()r and fire the
  /// on_ready hook when this publish was the empty→non-empty edge.
  void after_publish(bool edge);
  bool send_ring(const Message& m, std::chrono::nanoseconds timeout);

  // --- mutex engine -------------------------------------------------------
  bool send_mutex(const Message& m, std::chrono::nanoseconds timeout);
  /// Pops one message from the consumer side; refills the outbox from the
  /// inbox (one lock) when needed.  Returns false when both are empty.
  bool consume(Message& out);
  /// Under mutex_: enqueue to the inbox and capture the hook to fire when
  /// this enqueue is the empty→non-empty edge.
  std::function<void()> push_locked(const Message& m);

  const std::size_t capacity_;
  const OverflowPolicy policy_;
  const MailboxKind kind_;

  /// Guards inbox_ (kMutex), overflow_ + spilled_ transitions (kRing),
  /// closed_ writes, on_ready_, and the condition variables.
  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;

  // Ring storage (kRing only; empty allocation on kMutex).
  std::unique_ptr<Cell[]> cells_;
  std::size_t ring_mask_ = 0;
  alignas(64) std::atomic<std::size_t> enqueue_pos_{0};
  alignas(64) std::atomic<std::size_t> dequeue_pos_{0};
  /// True while overflow_ holds spilled messages; producers route every
  /// enqueue through the spill queue until the consumer drains it (FIFO).
  std::atomic<bool> spilled_{false};
  std::deque<Message> overflow_;  ///< spill queue, guarded by mutex_

  // Two-queue storage (kMutex only).
  std::deque<Message> inbox_;   ///< producer side, appended under mutex_
  std::deque<Message> outbox_;  ///< consumer-private, refilled by swap

  /// Unconsumed messages.  The empty→non-empty edge is a 0→1 transition of
  /// this counter; producers see capacity through it (the ring's credit
  /// counter — freed by release_slots, not by dequeue).
  alignas(64) std::atomic<std::size_t> size_{0};
  /// High-water mark of size_, maintained with a CAS max (ring producers
  /// race on it), read lock-free by telemetry samplers.
  std::atomic<std::size_t> depth_peak_{0};
  /// Senders currently blocked in send(); consumers take the lock before
  /// notifying not_full_ only when this is non-zero, keeping the consume
  /// fast path lock-free.
  std::atomic<int> waiting_senders_{0};
  /// Consumers parked in receive(); ring producers take the lock before
  /// notifying not_empty_ only when this is non-zero, keeping the publish
  /// fast path lock-free.
  std::atomic<int> waiting_consumers_{0};
  std::atomic<bool> closed_{false};  ///< written under mutex_
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<std::uint64_t> ring_enqueues_{0};
  std::atomic<std::uint64_t> ring_spills_{0};
  /// Consumer operator of this mailbox (set once at epoch build, before
  /// producers run; plain member, read from the blocking slow path only).
  OpIndex owner_op_ = kInvalidOp;
  std::function<void()> on_ready_;  ///< empty→non-empty edge notification
};

}  // namespace ss::runtime
