// Bounded blocking mailbox with Blocking-After-Service semantics.
//
// This is the C++ equivalent of the Akka BoundedMailbox configuration the
// paper evaluates (§5.1): a fixed-capacity MPSC queue whose send() blocks
// the producer while the buffer is full — that blocking *is* the
// backpressure the cost models capture — and gives up after a timeout, in
// which case the item is dropped (the paper sets the timeout high enough,
// five seconds, that drops never happen in practice).
//
// Internally the queue is split in two (a producer inbox and a
// consumer-private outbox): producers append to the inbox under the lock,
// and the consumer refills its outbox by *swapping* the whole inbox in one
// lock acquisition.  A pooled batch of 64 messages therefore costs one
// lock acquisition instead of 64 — the hop-cost fix called out in ROADMAP.
// The mailbox stays MPSC: many producers, one consumer *at a time* (the
// pooled scheduler's actor claim serializes consumers across threads and
// its acquire/release ordering publishes the outbox between them).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <vector>

#include "runtime/message.hpp"

namespace ss::runtime {

/// What a full mailbox does to a new item (paper §2): block the sender
/// (backpressure, the semantics the cost models capture) or discard the
/// item immediately (load shedding, which trades loss for liveness).
enum class OverflowPolicy : std::uint8_t {
  kBlockAfterService,
  kShedNewest,
};

class Mailbox {
 public:
  explicit Mailbox(std::size_t capacity,
                   OverflowPolicy policy = OverflowPolicy::kBlockAfterService)
      : capacity_(capacity == 0 ? 1 : capacity), policy_(policy) {}

  Mailbox(const Mailbox&) = delete;
  Mailbox& operator=(const Mailbox&) = delete;

  /// Enqueues `m`.  Under kBlockAfterService, blocks while full (BAS) and
  /// returns false only if `timeout` expired or the mailbox was closed;
  /// under kShedNewest a full mailbox discards the item immediately.
  bool send(const Message& m, std::chrono::nanoseconds timeout);

  /// Non-blocking fast path: enqueues if a slot is free right now and
  /// returns true.  Returns false when the mailbox is closed or full; a
  /// full kShedNewest mailbox counts the drop (the item is shed), a full
  /// kBlockAfterService one does not — the caller decides whether to fall
  /// back to the blocking send() or to retry later.
  bool try_send(const Message& m);

  /// Enqueues bypassing the capacity bound (used for shutdown tokens so a
  /// drain can never deadlock behind a full buffer).  A closed mailbox
  /// counts the item as dropped instead of enqueueing it.
  void send_unbounded(const Message& m);

  /// Dequeues into `out`, blocking while empty.  Returns false once the
  /// mailbox is closed *and* drained.
  bool receive(Message& out);

  /// Non-blocking variant; returns false when empty right now.
  bool try_receive(Message& out);

  /// Batched dequeue: appends up to `max` messages to `out` in FIFO order
  /// and returns how many were taken (0 when empty right now).  The whole
  /// batch costs at most one lock acquisition.  With `release_now` (the
  /// default) the taken messages free their capacity slots immediately,
  /// exactly as if each had been try_receive()d before the batch ran; a
  /// consumer that processes the batch over time should pass false and
  /// call release() as each message enters service instead — releasing a
  /// whole batch up front would hand senders up to `max` extra slots and
  /// visibly weaken Blocking-After-Service backpressure (the cost models
  /// assume capacity B, not B + batch).
  std::size_t drain(std::vector<Message>& out, std::size_t max, bool release_now = true);

  /// Frees `n` capacity slots taken by drain(..., release_now=false) and
  /// wakes blocked senders if any — an atomic decrement unless senders are
  /// actually waiting.
  void release(std::size_t n) { release_slots(n); }

  /// Wakes all waiters; send() starts failing, receive() drains then stops.
  void close();

  /// Installs a readiness hook fired (outside the lock) whenever an enqueue
  /// turns the mailbox from empty to non-empty.  Pooled schedulers use it
  /// to learn that the owning actor has work without parking a worker on
  /// this mailbox's condition variable.  The installation is synchronized
  /// with concurrent senders (the hook is read and written under the
  /// mailbox lock), so it may be swapped while producers are live; an
  /// enqueue concurrent with the swap fires either the old or the new
  /// hook, never a torn one.  Pass nullptr to clear.
  void set_on_ready(std::function<void()> on_ready);

  [[nodiscard]] std::size_t size() const {
    return size_.load(std::memory_order_acquire);
  }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] bool closed() const;
  [[nodiscard]] OverflowPolicy policy() const { return policy_; }

  /// Items dropped on send timeout since construction.
  [[nodiscard]] std::uint64_t dropped() const;

  /// Queue-depth high-water mark since construction or the last
  /// reset_depth_peak() — the sampled backpressure gauge the telemetry
  /// layer reports per steady-state window.
  [[nodiscard]] std::size_t depth_peak() const {
    return depth_peak_.load(std::memory_order_relaxed);
  }
  /// Restarts the high-water tracking at the current depth (window open).
  void reset_depth_peak() {
    depth_peak_.store(size_.load(std::memory_order_acquire),
                      std::memory_order_relaxed);
  }

 private:
  /// Pops one message from the consumer side; refills the outbox from the
  /// inbox (one lock) when needed.  Returns false when both are empty.
  bool consume(Message& out);
  /// Frees `n` capacity slots and wakes blocked senders if any.
  void release_slots(std::size_t n);
  /// Fires the readiness hook captured under the lock, if any.
  static void fire(std::function<void()>& hook) {
    if (hook) hook();
  }
  /// Under mutex_: enqueue to the inbox and capture the hook to fire when
  /// this enqueue is the empty→non-empty edge.
  std::function<void()> push_locked(const Message& m);

  const std::size_t capacity_;
  const OverflowPolicy policy_;
  mutable std::mutex mutex_;  ///< guards inbox_, closed_, dropped_, on_ready_
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<Message> inbox_;   ///< producer side, appended under mutex_
  std::deque<Message> outbox_;  ///< consumer-private, refilled by swap
  /// Unconsumed messages (inbox + outbox).  The empty→non-empty edge is a
  /// 0→1 transition of this counter; producers see capacity through it.
  std::atomic<std::size_t> size_{0};
  /// High-water mark of size_; written under mutex_ (enqueues are the only
  /// growth), read lock-free by telemetry samplers.
  std::atomic<std::size_t> depth_peak_{0};
  /// Senders currently blocked in send(); consumers take the lock before
  /// notifying not_full_ only when this is non-zero, keeping the consume
  /// fast path lock-free.
  std::atomic<int> waiting_senders_{0};
  bool closed_ = false;
  std::uint64_t dropped_ = 0;
  std::function<void()> on_ready_;  ///< empty→non-empty edge notification
};

}  // namespace ss::runtime
