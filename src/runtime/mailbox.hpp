// Bounded blocking mailbox with Blocking-After-Service semantics.
//
// This is the C++ equivalent of the Akka BoundedMailbox configuration the
// paper evaluates (§5.1): a fixed-capacity MPSC queue whose send() blocks
// the producer while the buffer is full — that blocking *is* the
// backpressure the cost models capture — and gives up after a timeout, in
// which case the item is dropped (the paper sets the timeout high enough,
// five seconds, that drops never happen in practice).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>

#include "runtime/message.hpp"

namespace ss::runtime {

/// What a full mailbox does to a new item (paper §2): block the sender
/// (backpressure, the semantics the cost models capture) or discard the
/// item immediately (load shedding, which trades loss for liveness).
enum class OverflowPolicy : std::uint8_t {
  kBlockAfterService,
  kShedNewest,
};

class Mailbox {
 public:
  explicit Mailbox(std::size_t capacity,
                   OverflowPolicy policy = OverflowPolicy::kBlockAfterService)
      : capacity_(capacity == 0 ? 1 : capacity), policy_(policy) {}

  Mailbox(const Mailbox&) = delete;
  Mailbox& operator=(const Mailbox&) = delete;

  /// Enqueues `m`.  Under kBlockAfterService, blocks while full (BAS) and
  /// returns false only if `timeout` expired or the mailbox was closed;
  /// under kShedNewest a full mailbox discards the item immediately.
  bool send(const Message& m, std::chrono::nanoseconds timeout);

  /// Non-blocking fast path: enqueues if a slot is free right now and
  /// returns true.  Returns false when the mailbox is closed or full; a
  /// full kShedNewest mailbox counts the drop (the item is shed), a full
  /// kBlockAfterService one does not — the caller decides whether to fall
  /// back to the blocking send() or to retry later.
  bool try_send(const Message& m);

  /// Enqueues bypassing the capacity bound (used for shutdown tokens so a
  /// drain can never deadlock behind a full buffer).  A closed mailbox
  /// counts the item as dropped instead of enqueueing it.
  void send_unbounded(const Message& m);

  /// Dequeues into `out`, blocking while empty.  Returns false once the
  /// mailbox is closed *and* drained.
  bool receive(Message& out);

  /// Non-blocking variant; returns false when empty right now.
  bool try_receive(Message& out);

  /// Wakes all waiters; send() starts failing, receive() drains then stops.
  void close();

  /// Installs a readiness hook fired (outside the lock) whenever an enqueue
  /// turns the mailbox from empty to non-empty.  Pooled schedulers use it
  /// to learn that the owning actor has work without parking a worker on
  /// this mailbox's condition variable.  Must be installed before any
  /// concurrent sender exists; pass nullptr to clear.
  void set_on_ready(std::function<void()> on_ready) { on_ready_ = std::move(on_ready); }

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] bool closed() const;
  [[nodiscard]] OverflowPolicy policy() const { return policy_; }

  /// Items dropped on send timeout since construction.
  [[nodiscard]] std::uint64_t dropped() const;

 private:
  const std::size_t capacity_;
  const OverflowPolicy policy_;
  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<Message> queue_;
  bool closed_ = false;
  std::uint64_t dropped_ = 0;
  std::function<void()> on_ready_;  ///< empty→non-empty edge notification
};

}  // namespace ss::runtime
