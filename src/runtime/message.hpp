// Mailbox messages: data items routed between actors, plus the control
// tokens of the channel barrier protocol — shutdown (drain the topology at
// the end of a run) and fence (quiesce the topology at a tuple boundary
// for an elastic re-deployment).
#pragma once

#include <cstdint>

#include "core/types.hpp"
#include "runtime/tuple.hpp"

namespace ss::runtime {

struct Message {
  enum class Kind : std::uint8_t {
    kData,      ///< a tuple travelling an edge of the logical topology
    kShutdown,  ///< end-of-stream marker counted per upstream channel
    kSeqMark,   ///< "input #seq fully processed" marker from a replica to
                ///< its collector (order-preserving collection only)
    kFence,     ///< epoch barrier counted per upstream channel: the actor
                ///< forwards it once all inputs fenced, then retires with
                ///< its state intact (elastic re-deployment)
  };

  Kind kind = Kind::kData;
  Tuple tuple{};
  /// Logical operator that produced the tuple (joins and fused
  /// meta-operators dispatch on it).
  OpIndex from = kInvalidOp;
  /// Logical operator the tuple is headed to (meta-operators start
  /// execution at this member, cf. Alg. 4 and the Fig. 2 semantics).
  OpIndex target = kInvalidOp;
  /// Sequence number stamped by an order-preserving emitter; -1 when
  /// ordering is off.  Results inherit the seq of the input that produced
  /// them so the collector can release them in input order.
  std::int64_t seq = -1;

  static Message data(const Tuple& t, OpIndex from, OpIndex target) {
    Message m;
    m.kind = Kind::kData;
    m.tuple = t;
    m.from = from;
    m.target = target;
    return m;
  }
  static Message shutdown() {
    Message m;
    m.kind = Kind::kShutdown;
    return m;
  }
  static Message fence() {
    Message m;
    m.kind = Kind::kFence;
    return m;
  }
  static Message seq_mark(std::int64_t seq) {
    Message m;
    m.kind = Kind::kSeqMark;
    m.seq = seq;
    return m;
  }
};

}  // namespace ss::runtime
