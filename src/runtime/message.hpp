// Mailbox messages: data items routed between actors, plus the control
// tokens of the channel barrier protocol — shutdown (drain the topology at
// the end of a run) and fence (quiesce the topology at a tuple boundary
// for an elastic re-deployment).
#pragma once

#include <cstddef>
#include <cstdint>

#include "core/types.hpp"
#include "runtime/tuple.hpp"

namespace ss::runtime {

struct Message {
  enum class Kind : std::uint8_t {
    kData,      ///< a tuple travelling an edge of the logical topology
    kShutdown,  ///< end-of-stream marker counted per upstream channel
    kSeqMark,   ///< "input #seq fully processed" marker from a replica to
                ///< its collector (order-preserving collection only)
    kFence,     ///< epoch barrier counted per upstream channel: the actor
                ///< forwards it once all inputs fenced, then retires with
                ///< its state intact (elastic re-deployment)
  };

  Kind kind = Kind::kData;
  Tuple tuple{};
  /// Logical operator that produced the tuple (joins and fused
  /// meta-operators dispatch on it).
  OpIndex from = kInvalidOp;
  /// Logical operator the tuple is headed to (meta-operators start
  /// execution at this member, cf. Alg. 4 and the Fig. 2 semantics).
  OpIndex target = kInvalidOp;
  /// Sequence number stamped by an order-preserving emitter; -1 when
  /// ordering is off.  Results inherit the seq of the input that produced
  /// them so the collector can release them in input order.
  std::int64_t seq = -1;

  static Message data(const Tuple& t, OpIndex from, OpIndex target) {
    Message m;
    m.kind = Kind::kData;
    m.tuple = t;
    m.from = from;
    m.target = target;
    return m;
  }
  static Message shutdown() {
    Message m;
    m.kind = Kind::kShutdown;
    return m;
  }
  static Message fence() {
    Message m;
    m.kind = Kind::kFence;
    return m;
  }
  static Message seq_mark(std::int64_t seq) {
    Message m;
    m.kind = Kind::kSeqMark;
    m.seq = seq;
    return m;
  }
};

/// A cache-line-aligned run of messages moved as one unit per hop.  Sources
/// and fused replicas stage consecutive same-destination emissions here and
/// hand the whole batch to Mailbox::try_send_batch — one credit CAS and one
/// ring-slot reservation instead of per-Message enqueues.  The capacity is
/// deliberately smaller than the scheduler's drain batch (--batch=N,
/// default 64): staging only delays *visibility*, never capacity, and a
/// small batch keeps the added in-stage latency bounded to a fraction of a
/// scheduling quantum.
struct alignas(64) MessageBatch {
  static constexpr std::size_t kCapacity = 16;

  std::uint32_t count = 0;
  /// Bit i set: message i's delivery should be counted as an emission by
  /// `items[i].from` when the batch flushes (set for freshly routed
  /// results, clear for forwards that were already counted upstream).
  std::uint32_t emit_mask = 0;
  Message items[kCapacity];

  [[nodiscard]] bool full() const { return count == kCapacity; }
  [[nodiscard]] bool empty() const { return count == 0; }
  void push(const Message& m, bool count_emit) {
    if (count_emit) emit_mask |= (1u << count);
    items[count++] = m;
  }
  void clear() {
    count = 0;
    emit_mask = 0;
  }
};

}  // namespace ss::runtime
