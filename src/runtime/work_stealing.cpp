#include "runtime/work_stealing.hpp"

#include "runtime/trace.hpp"

namespace ss::runtime {

WorkStealingQueues::WorkStealingQueues(std::size_t num_queues)
    : queues_(num_queues == 0 ? 1 : num_queues) {}

void WorkStealingQueues::push(std::size_t item, std::size_t preferred) {
  Queue& q = queues_[preferred % queues_.size()];
  {
    std::lock_guard lock(q.mu);
    q.items.push_back(item);
    ++q.pushes;  // under q.mu: no shared counter line in the hot path
  }
  pending_.fetch_add(1, std::memory_order_release);
  // Wake a parked worker.  The check-then-notify is race-free: a worker
  // only parks after re-evaluating `pending_ > 0` under park_mu_, and our
  // fetch_add above is ordered before this load, so either the worker sees
  // the item and stays awake or it registered as idle and we notify it.
  if (idle_.load(std::memory_order_acquire) > 0) {
    std::lock_guard lock(park_mu_);
    park_cv_.notify_one();
  }
}

bool WorkStealingQueues::pop_local(std::size_t self, std::size_t& out) {
  Queue& q = queues_[self % queues_.size()];
  std::lock_guard lock(q.mu);
  if (q.items.empty()) return false;
  out = q.items.back();  // LIFO: the hint this worker pushed most recently
  q.items.pop_back();
  ++q.local_pops;
  return true;
}

bool WorkStealingQueues::steal_from(std::size_t victim, std::size_t& out) {
  Queue& q = queues_[victim];
  std::lock_guard lock(q.mu);
  if (q.items.empty()) return false;
  out = q.items.front();  // FIFO: the victim's oldest (coldest) hint
  q.items.pop_front();
  ++q.steals;  // charged to the victim's queue; counters() sums them all
  return true;
}

bool WorkStealingQueues::try_acquire(std::size_t self, std::size_t& out) {
  if (pop_local(self, out)) {
    pending_.fetch_sub(1, std::memory_order_release);
    return true;
  }
  const std::size_t n = queues_.size();
  for (std::size_t i = 1; i < n; ++i) {
    const std::size_t victim = (self + i) % n;
    if (steal_from(victim, out)) {
      pending_.fetch_sub(1, std::memory_order_release);
      trace::instant("steal", "sched", "victim", static_cast<std::int64_t>(victim));
      return true;
    }
  }
  return false;
}

bool WorkStealingQueues::acquire(std::size_t self, std::size_t& out) {
  for (;;) {
    if (shutdown_.load(std::memory_order_acquire)) return false;
    if (try_acquire(self, out)) return true;
    // Steal-miss: park until the next push (or shutdown).  The predicate
    // re-check under park_mu_ closes the lost-wakeup window with push().
    std::unique_lock lock(park_mu_);
    idle_.fetch_add(1, std::memory_order_release);
    const auto runnable = [&] {
      return shutdown_.load(std::memory_order_acquire) ||
             pending_.load(std::memory_order_acquire) > 0;
    };
    if (!runnable()) {
      parks_.fetch_add(1, std::memory_order_relaxed);
      trace::Span span("park", "sched");
      park_cv_.wait(lock, runnable);
      if (!shutdown_.load(std::memory_order_acquire)) {
        wakeups_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    idle_.fetch_sub(1, std::memory_order_release);
  }
}

void WorkStealingQueues::shutdown() {
  shutdown_.store(true, std::memory_order_release);
  std::lock_guard lock(park_mu_);
  park_cv_.notify_all();
}

WorkStealingCounters WorkStealingQueues::counters() const {
  WorkStealingCounters c;
  c.parks = parks_.load(std::memory_order_relaxed);
  c.wakeups = wakeups_.load(std::memory_order_relaxed);
  for (const Queue& q : queues_) {
    std::lock_guard lock(q.mu);
    c.pushes += q.pushes;
    c.local_pops += q.local_pops;
    c.steals += q.steals;
    c.discarded += q.items.size();
  }
  return c;
}

}  // namespace ss::runtime
