#include "runtime/work_stealing.hpp"

namespace ss::runtime {

WorkStealingQueues::WorkStealingQueues(std::size_t num_queues)
    : queues_(num_queues == 0 ? 1 : num_queues) {}

void WorkStealingQueues::push(std::size_t item, std::size_t preferred) {
  Queue& q = queues_[preferred % queues_.size()];
  {
    std::lock_guard lock(q.mu);
    q.items.push_back(item);
  }
  pending_.fetch_add(1, std::memory_order_release);
  // Wake a parked worker.  The check-then-notify is race-free: a worker
  // only parks after re-evaluating `pending_ > 0` under park_mu_, and our
  // fetch_add above is ordered before this load, so either the worker sees
  // the item and stays awake or it registered as idle and we notify it.
  if (idle_.load(std::memory_order_acquire) > 0) {
    std::lock_guard lock(park_mu_);
    park_cv_.notify_one();
  }
}

bool WorkStealingQueues::pop_local(std::size_t self, std::size_t& out) {
  Queue& q = queues_[self % queues_.size()];
  std::lock_guard lock(q.mu);
  if (q.items.empty()) return false;
  out = q.items.back();  // LIFO: the hint this worker pushed most recently
  q.items.pop_back();
  return true;
}

bool WorkStealingQueues::steal_from(std::size_t victim, std::size_t& out) {
  Queue& q = queues_[victim];
  std::lock_guard lock(q.mu);
  if (q.items.empty()) return false;
  out = q.items.front();  // FIFO: the victim's oldest (coldest) hint
  q.items.pop_front();
  return true;
}

bool WorkStealingQueues::try_acquire(std::size_t self, std::size_t& out) {
  if (pop_local(self, out)) {
    pending_.fetch_sub(1, std::memory_order_release);
    return true;
  }
  const std::size_t n = queues_.size();
  for (std::size_t i = 1; i < n; ++i) {
    if (steal_from((self + i) % n, out)) {
      pending_.fetch_sub(1, std::memory_order_release);
      return true;
    }
  }
  return false;
}

bool WorkStealingQueues::acquire(std::size_t self, std::size_t& out) {
  for (;;) {
    if (shutdown_.load(std::memory_order_acquire)) return false;
    if (try_acquire(self, out)) return true;
    // Steal-miss: park until the next push (or shutdown).  The predicate
    // re-check under park_mu_ closes the lost-wakeup window with push().
    std::unique_lock lock(park_mu_);
    idle_.fetch_add(1, std::memory_order_release);
    park_cv_.wait(lock, [&] {
      return shutdown_.load(std::memory_order_acquire) ||
             pending_.load(std::memory_order_acquire) > 0;
    });
    idle_.fetch_sub(1, std::memory_order_release);
  }
}

void WorkStealingQueues::shutdown() {
  shutdown_.store(true, std::memory_order_release);
  std::lock_guard lock(park_mu_);
  park_cv_.notify_all();
}

}  // namespace ss::runtime
