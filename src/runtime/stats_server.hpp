// Live stats endpoint: a deliberately tiny HTTP/1.0 server over raw POSIX
// sockets (no third-party dependencies) that exposes the running engine's
// measurements without waiting for exit stats.
//
//   GET /metrics     Prometheus-style text exposition (counters, rates,
//                    profiler estimates, bottleneck shares, percentiles)
//   GET /stats.json  one JSON snapshot (same data, nested per op)
//   GET /            alias of /stats.json
//
// The server binds 127.0.0.1:<port> in the constructor and throws
// ss::Error when the port is invalid or already taken — the engine
// constructs it before starting the scheduler, so a bad --stats-port
// fails the run up front instead of half-way through.  One accept loop
// thread serves requests serially (observability endpoint, not a web
// server); each response closes the connection.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "runtime/telemetry.hpp"

namespace ss::runtime {

class StatsServer {
 public:
  /// `sampler` is called per request (cheap: counter snapshot + profiler
  /// copy); `op_names` labels the per-op series.  Throws ss::Error when
  /// binding 127.0.0.1:`port` fails.
  StatsServer(int port, std::function<MetricsSample()> sampler,
              std::vector<std::string> op_names);
  ~StatsServer();

  StatsServer(const StatsServer&) = delete;
  StatsServer& operator=(const StatsServer&) = delete;

  void start();
  /// Closes the listening socket and joins the accept loop.  Idempotent.
  void stop();

  /// The bound port (== the requested one; kept for symmetry with tests
  /// that pass explicit ports).
  [[nodiscard]] int port() const { return port_; }

  /// Payload builders, exposed for unit tests.
  [[nodiscard]] std::string render_json(const MetricsSample& s) const;
  [[nodiscard]] std::string render_prometheus(const MetricsSample& s) const;

 private:
  void loop();
  void serve(int client_fd);

  const int port_;
  std::function<MetricsSample()> sampler_;
  std::vector<std::string> op_names_;
  int listen_fd_ = -1;
  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> started_{false};
};

}  // namespace ss::runtime
