#include "runtime/mailbox.hpp"

#include <algorithm>
#include <cstdint>
#include <stdexcept>

#include "runtime/clock.hpp"
#include "runtime/telemetry.hpp"

namespace ss::runtime {

namespace {

std::size_t next_pow2(std::size_t v) {
  std::size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

/// Parked receive()rs re-poll at this period so a publish racing the very
/// first park can never strand a message behind a missed notify: the ring
/// fast path deliberately avoids a full fence between "publish" and "is a
/// consumer waiting?", and this bounds the cost of losing that race.
constexpr std::chrono::milliseconds kConsumerRepoll{10};

}  // namespace

MailboxKind mailbox_kind_from_string(const std::string& name) {
  if (name == "mutex") return MailboxKind::kMutex;
  if (name == "ring") return MailboxKind::kRing;
  throw std::invalid_argument("unknown mailbox kind: " + name +
                              " (expected mutex|ring)");
}

const char* to_string(MailboxKind kind) {
  return kind == MailboxKind::kRing ? "ring" : "mutex";
}

Mailbox::Mailbox(std::size_t capacity, OverflowPolicy policy, MailboxKind kind)
    : capacity_(capacity == 0 ? 1 : capacity), policy_(policy), kind_(kind) {
  if (kind_ == MailboxKind::kRing) {
    // Physical ring ≥ 2× the logical capacity: the slack absorbs
    // capacity-exempt tokens (send_unbounded) so spills stay rare.
    const std::size_t slots = next_pow2(std::max<std::size_t>(capacity_ * 2, 16));
    cells_ = std::make_unique<Cell[]>(slots);
    for (std::size_t i = 0; i < slots; ++i) {
      cells_[i].seq.store(i, std::memory_order_relaxed);
    }
    ring_mask_ = slots - 1;
  }
}

// ---------------------------------------------------------------------------
// Ring engine.  Producers claim a capacity credit (size_), then a physical
// slot; the 0→1 transition of the credit counter is the empty→non-empty
// edge.  The hook is *captured* under the lock (so set_on_ready can swap it
// concurrently) but *fired* outside it — same contract as the mutex engine.

bool Mailbox::acquire_credit(std::size_t& depth_out) {
  std::size_t cur = size_.load(std::memory_order_relaxed);
  do {
    if (cur >= capacity_) return false;
  } while (!size_.compare_exchange_weak(cur, cur + 1,
                                        std::memory_order_acq_rel,
                                        std::memory_order_relaxed));
  depth_out = cur + 1;
  return true;
}

bool Mailbox::ring_enqueue(const Message& m) {
  std::size_t pos = enqueue_pos_.load(std::memory_order_relaxed);
  for (;;) {
    Cell& cell = cells_[pos & ring_mask_];
    const std::size_t seq = cell.seq.load(std::memory_order_acquire);
    const auto dif = static_cast<std::intptr_t>(seq) - static_cast<std::intptr_t>(pos);
    if (dif == 0) {
      if (enqueue_pos_.compare_exchange_weak(pos, pos + 1,
                                             std::memory_order_relaxed)) {
        cell.msg = m;
        cell.seq.store(pos + 1, std::memory_order_release);
        ring_enqueues_.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
      // CAS failure reloaded pos; retry with the fresh value.
    } else if (dif < 0) {
      return false;  // physically full (a lap behind): caller spills
    } else {
      pos = enqueue_pos_.load(std::memory_order_relaxed);
    }
  }
}

bool Mailbox::ring_enqueue_many(const Message* msgs, std::size_t k) {
  for (;;) {
    std::size_t pos = enqueue_pos_.load(std::memory_order_relaxed);
    // The consumer recycles cells strictly in order and producers only
    // claim at enqueue_pos_, so "the last slot of the range is free"
    // implies the whole range is free.
    Cell& last = cells_[(pos + k - 1) & ring_mask_];
    if (last.seq.load(std::memory_order_acquire) != pos + k - 1) return false;
    if (enqueue_pos_.compare_exchange_weak(pos, pos + k,
                                           std::memory_order_relaxed)) {
      for (std::size_t i = 0; i < k; ++i) {
        Cell& cell = cells_[(pos + i) & ring_mask_];
        cell.msg = msgs[i];
        cell.seq.store(pos + i + 1, std::memory_order_release);
      }
      ring_enqueues_.fetch_add(k, std::memory_order_relaxed);
      return true;
    }
  }
}

void Mailbox::ring_publish(const Message& m) {
  if (!spilled_.load(std::memory_order_acquire) && ring_enqueue(m)) return;
  // Spill slow path.  Once one message lands in the side queue, every
  // later enqueue (from producers that observe the spill — which includes
  // every producer whose own earlier message spilled) follows it until the
  // consumer drains the queue, preserving per-producer FIFO.
  std::lock_guard lock(mutex_);
  if (!spilled_.load(std::memory_order_relaxed) && ring_enqueue(m)) return;
  spilled_.store(true, std::memory_order_release);
  overflow_.push_back(m);
  ring_spills_.fetch_add(1, std::memory_order_relaxed);
}

bool Mailbox::ring_ready() const {
  const std::size_t pos = dequeue_pos_.load(std::memory_order_relaxed);
  return cells_[pos & ring_mask_].seq.load(std::memory_order_acquire) == pos + 1;
}

bool Mailbox::ring_consume(Message& out) {
  const std::size_t pos = dequeue_pos_.load(std::memory_order_relaxed);
  Cell& cell = cells_[pos & ring_mask_];
  if (cell.seq.load(std::memory_order_acquire) == pos + 1) {
    out = cell.msg;
    cell.seq.store(pos + ring_mask_ + 1, std::memory_order_release);  // recycle
    dequeue_pos_.store(pos + 1, std::memory_order_relaxed);
    return true;
  }
  if (!spilled_.load(std::memory_order_acquire)) return false;
  std::lock_guard lock(mutex_);
  if (overflow_.empty()) {
    // A racing producer re-entered the ring after the spill drained.
    spilled_.store(false, std::memory_order_release);
    return false;
  }
  out = overflow_.front();
  overflow_.pop_front();
  if (overflow_.empty()) spilled_.store(false, std::memory_order_release);
  return true;
}

void Mailbox::after_publish(bool edge) {
  if (waiting_consumers_.load(std::memory_order_acquire) > 0) {
    // Order our publish with the parked consumer's predicate check (the
    // empty lock scope is intentional; see release_slots).
    { std::lock_guard lock(mutex_); }
    not_empty_.notify_all();
  }
  if (edge) {
    std::function<void()> hook;
    {
      std::lock_guard lock(mutex_);
      hook = on_ready_;
    }
    fire(hook);
  }
}

bool Mailbox::send_ring(const Message& m, std::chrono::nanoseconds timeout) {
  bool deadline_set = false;
  Clock::time_point deadline{};
  for (;;) {
    if (closed_.load(std::memory_order_acquire)) return false;
    std::size_t depth = 0;
    if (acquire_credit(depth)) {
      bump_peak(depth);
      ring_publish(m);
      after_publish(depth == 1);
      return true;
    }
    if (policy_ == OverflowPolicy::kShedNewest) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    // Backpressure slow path — the ring's park path.  This wait *is* the
    // blocked-on-send time the cost models capture, so charge it to the
    // sending operator's telemetry context.  Clock reads happen only when
    // actually blocking.  A single deadline spans every park episode: a
    // woken sender that loses the credit race to a lock-free try_send
    // re-parks with the remaining budget, never a fresh one.
    if (!deadline_set) {
      deadline = Clock::now() + timeout;
      deadline_set = true;
    }
    const bool meter = blocked_metering_enabled();
    const auto blocked_from = meter ? metering_now() : Clock::time_point{};
    bool freed;
    {
      std::unique_lock lock(mutex_);
      waiting_senders_.fetch_add(1, std::memory_order_acq_rel);
      freed = not_full_.wait_until(lock, deadline, [&] {
        return closed_.load(std::memory_order_relaxed) ||
               size_.load(std::memory_order_acquire) < capacity_;
      });
      waiting_senders_.fetch_sub(1, std::memory_order_acq_rel);
    }
    if (meter) {
      charge_blocked(static_cast<std::uint64_t>(
                         std::chrono::duration_cast<std::chrono::nanoseconds>(
                             metering_now() - blocked_from)
                             .count()),
                     owner_op_);
    }
    if (!freed) {
      dropped_.fetch_add(1, std::memory_order_relaxed);  // timed out (§5.1)
      return false;
    }
  }
}

// ---------------------------------------------------------------------------
// Mutex engine (the original two-queue design, kept for --mailbox=mutex).

std::function<void()> Mailbox::push_locked(const Message& m) {
  inbox_.push_back(m);
  const std::size_t depth = size_.fetch_add(1, std::memory_order_acq_rel) + 1;
  bump_peak(depth);
  return depth == 1 ? on_ready_ : std::function<void()>{};
}

bool Mailbox::send_mutex(const Message& m, std::chrono::nanoseconds timeout) {
  std::function<void()> ready;
  {
    std::unique_lock lock(mutex_);
    const bool was_closed = closed_.load(std::memory_order_relaxed);
    if (policy_ == OverflowPolicy::kShedNewest) {
      if (!was_closed && size_.load(std::memory_order_relaxed) >= capacity_) {
        dropped_.fetch_add(1, std::memory_order_relaxed);  // shed, no backpressure
        return false;
      }
    } else if (size_.load(std::memory_order_relaxed) >= capacity_ && !was_closed) {
      const bool meter = blocked_metering_enabled();
      const auto blocked_from = meter ? metering_now() : Clock::time_point{};
      waiting_senders_.fetch_add(1, std::memory_order_acq_rel);
      const bool freed = not_full_.wait_for(lock, timeout, [&] {
        return closed_.load(std::memory_order_relaxed) ||
               size_.load(std::memory_order_acquire) < capacity_;
      });
      waiting_senders_.fetch_sub(1, std::memory_order_acq_rel);
      if (meter) {
        charge_blocked(static_cast<std::uint64_t>(
                           std::chrono::duration_cast<std::chrono::nanoseconds>(
                               metering_now() - blocked_from)
                               .count()),
                       owner_op_);
      }
      if (!freed) {
        dropped_.fetch_add(1, std::memory_order_relaxed);  // timed out (§5.1)
        return false;
      }
    }
    if (closed_.load(std::memory_order_relaxed)) return false;
    ready = push_locked(m);
  }
  not_empty_.notify_one();
  fire(ready);
  return true;
}

bool Mailbox::consume(Message& out) {
  if (outbox_.empty()) {
    std::lock_guard lock(mutex_);
    if (inbox_.empty()) return false;
    outbox_.swap(inbox_);  // the whole backlog for one lock acquisition
  }
  out = outbox_.front();
  outbox_.pop_front();
  release_slots(1);
  return true;
}

// ---------------------------------------------------------------------------
// Public API: thin dispatch over the two engines.

bool Mailbox::send(const Message& m, std::chrono::nanoseconds timeout) {
  return kind_ == MailboxKind::kRing ? send_ring(m, timeout)
                                     : send_mutex(m, timeout);
}

bool Mailbox::try_send(const Message& m) {
  if (kind_ == MailboxKind::kRing) {
    if (closed_.load(std::memory_order_acquire)) return false;
    std::size_t depth = 0;
    if (!acquire_credit(depth)) {
      if (policy_ == OverflowPolicy::kShedNewest) {
        dropped_.fetch_add(1, std::memory_order_relaxed);  // shed, like send()
      }
      return false;
    }
    bump_peak(depth);
    ring_publish(m);
    after_publish(depth == 1);
    return true;
  }
  std::function<void()> ready;
  {
    std::lock_guard lock(mutex_);
    if (closed_.load(std::memory_order_relaxed)) return false;
    if (size_.load(std::memory_order_relaxed) >= capacity_) {
      if (policy_ == OverflowPolicy::kShedNewest) {
        dropped_.fetch_add(1, std::memory_order_relaxed);
      }
      return false;
    }
    ready = push_locked(m);
  }
  not_empty_.notify_one();
  fire(ready);
  return true;
}

std::size_t Mailbox::try_send_batch(const Message* msgs, std::size_t n) {
  if (n == 0) return 0;
  if (kind_ == MailboxKind::kRing) {
    if (closed_.load(std::memory_order_acquire)) return 0;
    // One CAS claims credits for the longest prefix that fits.
    std::size_t cur = size_.load(std::memory_order_relaxed);
    std::size_t k = 0;
    do {
      if (cur >= capacity_) return 0;
      k = std::min(n, capacity_ - cur);
    } while (!size_.compare_exchange_weak(cur, cur + k,
                                          std::memory_order_acq_rel,
                                          std::memory_order_relaxed));
    bump_peak(cur + k);
    std::size_t published = 0;
    if (!spilled_.load(std::memory_order_acquire) &&
        ring_enqueue_many(msgs, k)) {
      published = k;
    }
    for (; published < k; ++published) ring_publish(msgs[published]);
    after_publish(cur == 0);
    return k;
  }
  std::function<void()> ready;
  std::size_t accepted = 0;
  {
    std::lock_guard lock(mutex_);
    if (closed_.load(std::memory_order_relaxed)) return 0;
    while (accepted < n && size_.load(std::memory_order_relaxed) < capacity_) {
      auto hook = push_locked(msgs[accepted]);
      if (hook) ready = std::move(hook);
      ++accepted;
    }
  }
  if (accepted > 0) {
    not_empty_.notify_one();
    fire(ready);
  }
  return accepted;
}

void Mailbox::send_unbounded(const Message& m) {
  if (kind_ == MailboxKind::kRing) {
    if (closed_.load(std::memory_order_acquire)) {
      dropped_.fetch_add(1, std::memory_order_relaxed);  // never drained again
      return;
    }
    const std::size_t depth = size_.fetch_add(1, std::memory_order_acq_rel) + 1;
    bump_peak(depth);
    ring_publish(m);
    after_publish(depth == 1);
    return;
  }
  std::function<void()> ready;
  {
    std::lock_guard lock(mutex_);
    if (closed_.load(std::memory_order_relaxed)) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    ready = push_locked(m);
  }
  not_empty_.notify_one();
  fire(ready);
}

void Mailbox::release_slots(std::size_t n) {
  size_.fetch_sub(n, std::memory_order_acq_rel);
  if (waiting_senders_.load(std::memory_order_acquire) > 0) {
    // A sender may be between its predicate check and the wait; taking the
    // lock here orders our size_ decrement with that check so the notify
    // cannot be lost.  The empty lock scope is intentional.
    { std::lock_guard lock(mutex_); }
    not_full_.notify_all();
  }
}

bool Mailbox::receive(Message& out) {
  if (kind_ == MailboxKind::kRing) {
    for (;;) {
      if (ring_consume(out)) {
        release_slots(1);
        return true;
      }
      std::unique_lock lock(mutex_);
      if (ring_ready() || spilled_.load(std::memory_order_relaxed)) continue;
      if (closed_.load(std::memory_order_relaxed)) return false;
      waiting_consumers_.fetch_add(1, std::memory_order_acq_rel);
      // Bounded waits, not one indefinite one: combined with kConsumerRepoll
      // this makes a publish that raced the registration self-healing.
      not_empty_.wait_for(lock, kConsumerRepoll, [&] {
        return closed_.load(std::memory_order_relaxed) || ring_ready() ||
               spilled_.load(std::memory_order_relaxed);
      });
      waiting_consumers_.fetch_sub(1, std::memory_order_acq_rel);
    }
  }
  if (consume(out)) return true;
  {
    std::unique_lock lock(mutex_);
    not_empty_.wait(lock, [&] {
      return closed_.load(std::memory_order_relaxed) || !inbox_.empty();
    });
    if (inbox_.empty()) return false;  // closed and drained
    outbox_.swap(inbox_);
  }
  out = outbox_.front();
  outbox_.pop_front();
  release_slots(1);
  return true;
}

bool Mailbox::try_receive(Message& out) {
  if (kind_ == MailboxKind::kRing) {
    if (!ring_consume(out)) return false;
    release_slots(1);
    return true;
  }
  return consume(out);
}

std::size_t Mailbox::drain(std::vector<Message>& out, std::size_t max, bool release_now) {
  std::size_t taken = 0;
  if (kind_ == MailboxKind::kRing) {
    Message m;
    while (taken < max && ring_consume(m)) {
      out.push_back(m);
      ++taken;
    }
    if (release_now && taken > 0) release_slots(taken);
    return taken;
  }
  const auto take = [&] {
    while (taken < max && !outbox_.empty()) {
      out.push_back(outbox_.front());
      outbox_.pop_front();
      ++taken;
    }
  };
  take();  // leftovers of an earlier swap first: FIFO across refills
  if (taken < max) {
    {
      std::lock_guard lock(mutex_);
      if (outbox_.empty() && !inbox_.empty()) outbox_.swap(inbox_);
    }
    take();
  }
  if (release_now && taken > 0) release_slots(taken);
  return taken;
}

void Mailbox::close() {
  {
    std::lock_guard lock(mutex_);
    closed_.store(true, std::memory_order_release);
  }
  not_full_.notify_all();
  not_empty_.notify_all();
}

void Mailbox::set_on_ready(std::function<void()> on_ready) {
  std::lock_guard lock(mutex_);
  on_ready_ = std::move(on_ready);
}

}  // namespace ss::runtime
