#include "runtime/mailbox.hpp"

namespace ss::runtime {

bool Mailbox::send(const Message& m, std::chrono::nanoseconds timeout) {
  bool was_empty = false;
  {
    std::unique_lock lock(mutex_);
    if (policy_ == OverflowPolicy::kShedNewest) {
      if (!closed_ && queue_.size() >= capacity_) {
        ++dropped_;  // shedding: discard instead of exerting backpressure
        return false;
      }
    } else if (!not_full_.wait_for(lock, timeout,
                                   [&] { return closed_ || queue_.size() < capacity_; })) {
      ++dropped_;  // timed out while full: the item is discarded (paper §5.1)
      return false;
    }
    if (closed_) return false;
    was_empty = queue_.empty();
    queue_.push_back(m);
  }
  not_empty_.notify_one();
  if (was_empty && on_ready_) on_ready_();
  return true;
}

bool Mailbox::try_send(const Message& m) {
  bool was_empty = false;
  {
    std::lock_guard lock(mutex_);
    if (closed_) return false;
    if (queue_.size() >= capacity_) {
      if (policy_ == OverflowPolicy::kShedNewest) ++dropped_;  // shed, like send()
      return false;
    }
    was_empty = queue_.empty();
    queue_.push_back(m);
  }
  not_empty_.notify_one();
  if (was_empty && on_ready_) on_ready_();
  return true;
}

void Mailbox::send_unbounded(const Message& m) {
  bool was_empty = false;
  {
    std::lock_guard lock(mutex_);
    if (closed_) {
      ++dropped_;  // the box will never be drained again: record the loss
      return;
    }
    was_empty = queue_.empty();
    queue_.push_back(m);
  }
  not_empty_.notify_one();
  if (was_empty && on_ready_) on_ready_();
}

bool Mailbox::receive(Message& out) {
  std::unique_lock lock(mutex_);
  not_empty_.wait(lock, [&] { return closed_ || !queue_.empty(); });
  if (queue_.empty()) return false;  // closed and drained
  out = queue_.front();
  queue_.pop_front();
  lock.unlock();
  not_full_.notify_one();
  return true;
}

bool Mailbox::try_receive(Message& out) {
  {
    std::lock_guard lock(mutex_);
    if (queue_.empty()) return false;
    out = queue_.front();
    queue_.pop_front();
  }
  not_full_.notify_one();
  return true;
}

void Mailbox::close() {
  {
    std::lock_guard lock(mutex_);
    closed_ = true;
  }
  not_full_.notify_all();
  not_empty_.notify_all();
}

std::size_t Mailbox::size() const {
  std::lock_guard lock(mutex_);
  return queue_.size();
}

bool Mailbox::closed() const {
  std::lock_guard lock(mutex_);
  return closed_;
}

std::uint64_t Mailbox::dropped() const {
  std::lock_guard lock(mutex_);
  return dropped_;
}

}  // namespace ss::runtime
