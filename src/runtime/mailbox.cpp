#include "runtime/mailbox.hpp"

#include "runtime/clock.hpp"
#include "runtime/telemetry.hpp"

namespace ss::runtime {

// Producers append under mutex_ and bump size_; the 0→1 transition of
// size_ is the empty→non-empty edge, and the hook is *captured* under the
// lock (so set_on_ready can swap it concurrently) but *fired* outside it.

std::function<void()> Mailbox::push_locked(const Message& m) {
  inbox_.push_back(m);
  const std::size_t depth = size_.fetch_add(1, std::memory_order_acq_rel) + 1;
  if (depth > depth_peak_.load(std::memory_order_relaxed)) {
    depth_peak_.store(depth, std::memory_order_relaxed);  // single-writer: lock held
  }
  return depth == 1 ? on_ready_ : std::function<void()>{};
}

bool Mailbox::send(const Message& m, std::chrono::nanoseconds timeout) {
  std::function<void()> ready;
  {
    std::unique_lock lock(mutex_);
    if (policy_ == OverflowPolicy::kShedNewest) {
      if (!closed_ && size_.load(std::memory_order_relaxed) >= capacity_) {
        ++dropped_;  // shedding: discard instead of exerting backpressure
        return false;
      }
    } else if (size_.load(std::memory_order_relaxed) >= capacity_ && !closed_) {
      // Backpressure slow path: this wait *is* the blocked-on-send time the
      // cost models capture, so charge it to the sending operator's
      // telemetry context.  Clock reads happen only when actually blocking.
      const bool meter = blocked_metering_enabled();
      const auto blocked_from = meter ? metering_now() : Clock::time_point{};
      waiting_senders_.fetch_add(1, std::memory_order_acq_rel);
      const bool freed = not_full_.wait_for(lock, timeout, [&] {
        return closed_ || size_.load(std::memory_order_acquire) < capacity_;
      });
      waiting_senders_.fetch_sub(1, std::memory_order_acq_rel);
      if (meter) {
        charge_blocked(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(metering_now() -
                                                                 blocked_from)
                .count()));
      }
      if (!freed) {
        ++dropped_;  // timed out while full: the item is discarded (§5.1)
        return false;
      }
    }
    if (closed_) return false;
    ready = push_locked(m);
  }
  not_empty_.notify_one();
  fire(ready);
  return true;
}

bool Mailbox::try_send(const Message& m) {
  std::function<void()> ready;
  {
    std::lock_guard lock(mutex_);
    if (closed_) return false;
    if (size_.load(std::memory_order_relaxed) >= capacity_) {
      if (policy_ == OverflowPolicy::kShedNewest) ++dropped_;  // shed, like send()
      return false;
    }
    ready = push_locked(m);
  }
  not_empty_.notify_one();
  fire(ready);
  return true;
}

void Mailbox::send_unbounded(const Message& m) {
  std::function<void()> ready;
  {
    std::lock_guard lock(mutex_);
    if (closed_) {
      ++dropped_;  // the box will never be drained again: record the loss
      return;
    }
    ready = push_locked(m);
  }
  not_empty_.notify_one();
  fire(ready);
}

void Mailbox::release_slots(std::size_t n) {
  size_.fetch_sub(n, std::memory_order_acq_rel);
  if (waiting_senders_.load(std::memory_order_acquire) > 0) {
    // A sender may be between its predicate check and the wait; taking the
    // lock here orders our size_ decrement with that check so the notify
    // cannot be lost.  The empty lock scope is intentional.
    { std::lock_guard lock(mutex_); }
    not_full_.notify_all();
  }
}

bool Mailbox::consume(Message& out) {
  if (outbox_.empty()) {
    std::lock_guard lock(mutex_);
    if (inbox_.empty()) return false;
    outbox_.swap(inbox_);  // the whole backlog for one lock acquisition
  }
  out = outbox_.front();
  outbox_.pop_front();
  release_slots(1);
  return true;
}

bool Mailbox::receive(Message& out) {
  if (consume(out)) return true;
  {
    std::unique_lock lock(mutex_);
    not_empty_.wait(lock, [&] { return closed_ || !inbox_.empty(); });
    if (inbox_.empty()) return false;  // closed and drained
    outbox_.swap(inbox_);
  }
  out = outbox_.front();
  outbox_.pop_front();
  release_slots(1);
  return true;
}

bool Mailbox::try_receive(Message& out) { return consume(out); }

std::size_t Mailbox::drain(std::vector<Message>& out, std::size_t max, bool release_now) {
  std::size_t taken = 0;
  const auto take = [&] {
    while (taken < max && !outbox_.empty()) {
      out.push_back(outbox_.front());
      outbox_.pop_front();
      ++taken;
    }
  };
  take();  // leftovers of an earlier swap first: FIFO across refills
  if (taken < max) {
    {
      std::lock_guard lock(mutex_);
      if (outbox_.empty() && !inbox_.empty()) outbox_.swap(inbox_);
    }
    take();
  }
  if (release_now && taken > 0) release_slots(taken);
  return taken;
}

void Mailbox::close() {
  {
    std::lock_guard lock(mutex_);
    closed_ = true;
  }
  not_full_.notify_all();
  not_empty_.notify_all();
}

void Mailbox::set_on_ready(std::function<void()> on_ready) {
  std::lock_guard lock(mutex_);
  on_ready_ = std::move(on_ready);
}

bool Mailbox::closed() const {
  std::lock_guard lock(mutex_);
  return closed_;
}

std::uint64_t Mailbox::dropped() const {
  std::lock_guard lock(mutex_);
  return dropped_;
}

}  // namespace ss::runtime
