// ThreadPerActorScheduler: one dedicated thread per actor, the §5.1
// configuration the paper evaluates and the engine's default.  Each thread
// runs the actor's blocking loop; a full destination mailbox blocks the
// sending thread (Blocking-After-Service), which *is* the backpressure the
// cost models capture.
#include <thread>
#include <vector>

#include "core/error.hpp"
#include "runtime/scheduler.hpp"

namespace ss::runtime {

namespace {

class ThreadPerActorScheduler final : public Scheduler {
 public:
  void start(EngineCore& core) override {
    core_ = &core;
    threads_.reserve(core.num_actors());
    for (std::size_t id = 0; id < core.num_actors(); ++id) {
      threads_.emplace_back([this, id] {
        try {
          core_->run_actor(id);
        } catch (const std::exception& e) {
          // No exception may cross a thread boundary: record the failure,
          // stop the run and unblock neighbours so the drain completes;
          // run_for()/run_until_complete() rethrow after join.
          core_->report_failure(id, e.what());
        }
        core_->actor_done(id);
      });
    }
  }

  bool deliver(std::size_t target, const Message& m,
               std::chrono::nanoseconds timeout) override {
    return core_->mailbox(target).send(m, timeout);
  }

  void join() override {
    for (std::thread& thread : threads_) {
      if (thread.joinable()) thread.join();
    }
    threads_.clear();
  }

 private:
  EngineCore* core_ = nullptr;
  std::vector<std::thread> threads_;
};

}  // namespace

SchedulerKind scheduler_kind_from_string(const std::string& name) {
  if (name == "threads") return SchedulerKind::kThreadPerActor;
  if (name == "pool") return SchedulerKind::kPooled;
  throw Error("unknown scheduler '" + name + "' (expected 'threads' or 'pool')");
}

const char* to_string(SchedulerKind kind) {
  return kind == SchedulerKind::kThreadPerActor ? "threads" : "pool";
}

PinMode pin_mode_from_string(const std::string& name) {
  if (name == "none") return PinMode::kNone;
  if (name == "cores") return PinMode::kCores;
  if (name == "sockets") return PinMode::kSockets;
  throw Error("unknown pin mode '" + name +
              "' (expected 'none', 'cores' or 'sockets')");
}

const char* to_string(PinMode mode) {
  switch (mode) {
    case PinMode::kCores:
      return "cores";
    case PinMode::kSockets:
      return "sockets";
    default:
      return "none";
  }
}

std::unique_ptr<Scheduler> make_thread_per_actor_scheduler();
std::unique_ptr<Scheduler> make_pooled_scheduler(int workers, int batch, PinMode pin);

std::unique_ptr<Scheduler> make_thread_per_actor_scheduler() {
  return std::make_unique<ThreadPerActorScheduler>();
}

std::unique_ptr<Scheduler> make_scheduler(SchedulerKind kind, int workers, int batch,
                                          PinMode pin) {
  if (kind == SchedulerKind::kPooled) return make_pooled_scheduler(workers, batch, pin);
  return make_thread_per_actor_scheduler();
}

}  // namespace ss::runtime
