#include "runtime/tenants.hpp"

#include <sstream>
#include <utility>

#include "core/deployment.hpp"
#include "core/latency.hpp"
#include "core/optimizer.hpp"
#include "core/steady_state.hpp"

namespace ss::runtime {

// ---------------------------------------------------------------------------
// TenantGroup

TenantGroup::TenantGroup(int workers, int batch, PinMode pin)
    : host_(workers, batch, pin) {}

TenantGroup::~TenantGroup() {
  stop_controller();
  // Hot-retire everything still running, swallowing tenant failures: a
  // destructor cannot rethrow, and wait_all()/retire() already offered
  // them to the caller.
  std::size_t n;
  {
    std::lock_guard lock(mu_);
    n = slots_.size();
  }
  for (std::size_t i = 0; i < n; ++i) {
    Slot* slot;
    {
      std::lock_guard lock(mu_);
      slot = slots_[i].get();
    }
    slot->engine->request_stop();
    try {
      collect(*slot);
    } catch (...) {
    }
  }
}

std::size_t TenantGroup::submit(TenantSpec spec) {
  auto owned = std::make_unique<Slot>();
  // The group owns scheduling and elasticity; per-spec values of these
  // config fields are overwritten by contract (tenants.hpp).
  spec.config.host = &host_;
  spec.config.tenant = spec.name;
  spec.config.tenant_weight = spec.weight;
  spec.config.elastic = false;
  owned->spec = std::move(spec);
  owned->engine = std::make_unique<Engine>(owned->spec.topology, owned->spec.deployment,
                                           owned->spec.factory, owned->spec.config);
  Slot* slot = owned.get();
  std::size_t index;
  {
    std::lock_guard lock(mu_);
    index = slots_.size();
    slots_.push_back(std::move(owned));
  }
  // The runner thread is the tenant's driver: it blocks in
  // run_until_complete while the actors execute on the shared host.  A
  // request_stop() that wins the race and lands before run_until_complete
  // starts still drains: the engine honors a pre-start stop immediately.
  slot->runner = std::thread([slot] {
    try {
      slot->stats = slot->engine->run_until_complete(slot->spec.max_duration);
    } catch (...) {
      slot->error = std::current_exception();
    }
    slot->finished.store(true, std::memory_order_release);
  });
  return index;
}

RunStats TenantGroup::retire(std::size_t index) {
  Slot* slot;
  {
    std::lock_guard lock(mu_);
    slot = slots_.at(index).get();
  }
  slot->engine->request_stop();
  return collect(*slot);
}

RunStats TenantGroup::collect(Slot& slot) {
  std::thread runner;
  {
    std::lock_guard lock(mu_);
    if (!slot.joined) {
      slot.joined = true;
      runner = std::move(slot.runner);
    }
  }
  if (runner.joinable()) {
    runner.join();
  } else {
    // Another collect() owns the join; its runner publishes stats/error
    // before raising `finished`, so waiting on the flag is enough.
    while (!slot.finished.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  if (slot.error) std::rethrow_exception(slot.error);
  return slot.stats;
}

std::vector<RunStats> TenantGroup::wait_all() {
  std::size_t n;
  {
    std::lock_guard lock(mu_);
    n = slots_.size();
  }
  std::vector<RunStats> stats;
  stats.reserve(n);
  std::exception_ptr first_error;
  for (std::size_t i = 0; i < n; ++i) {
    Slot* slot;
    {
      std::lock_guard lock(mu_);
      slot = slots_[i].get();
    }
    try {
      stats.push_back(collect(*slot));
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
      stats.push_back(slot->stats);
    }
  }
  // Only now that every tenant drained: the joint loop must keep
  // re-balancing while the tenants run, not die on entry to the wait.
  stop_controller();
  if (first_error) std::rethrow_exception(first_error);
  return stats;
}

std::size_t TenantGroup::size() const {
  std::lock_guard lock(mu_);
  return slots_.size();
}

const std::string& TenantGroup::name(std::size_t index) const {
  std::lock_guard lock(mu_);
  return slots_.at(index)->spec.name;
}

Engine& TenantGroup::engine(std::size_t index) {
  std::lock_guard lock(mu_);
  return *slots_.at(index)->engine;
}

bool TenantGroup::finished(std::size_t index) const {
  std::lock_guard lock(mu_);
  return slots_.at(index)->finished.load(std::memory_order_acquire);
}

void TenantGroup::start_controller(JointControllerOptions options) {
  stop_controller();
  controller_ = std::make_unique<JointController>(*this, options);
  controller_->start();
}

void TenantGroup::stop_controller() {
  if (controller_) controller_->stop();
}

// ---------------------------------------------------------------------------
// JointController

JointController::JointController(TenantGroup& group, JointControllerOptions options)
    : group_(group), options_(options) {
  if (options_.period <= 0.0) options_.period = 0.5;
  if (options_.threshold < 0.0) options_.threshold = 0.0;
}

JointController::~JointController() { stop(); }

void JointController::start() {
  thread_ = std::thread([this] { loop(); });
}

void JointController::stop() {
  {
    std::lock_guard lock(mu_);
    stop_.store(true);
  }
  stop_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

std::vector<JointDecision> JointController::decisions() const {
  std::lock_guard lock(mu_);
  return decisions_;
}

void JointController::loop() {
  const auto period = std::chrono::duration<double>(options_.period);
  while (true) {
    {
      std::unique_lock lock(mu_);
      if (stop_cv_.wait_for(lock, period, [this] { return stop_.load(); })) return;
    }
    JointDecision decision = evaluate_window();
    std::lock_guard lock(mu_);
    decisions_.push_back(std::move(decision));
  }
}

JointDecision JointController::evaluate_window() {
  JointDecision decision;

  // The slots a tenant occupies never move (unique_ptr), so raw pointers
  // stay valid past the lock; submit() only appends.
  std::vector<std::size_t> live;
  std::vector<TenantGroup::Slot*> slots;
  {
    std::lock_guard lock(group_.mu_);
    if (windows_.size() < group_.slots_.size()) windows_.resize(group_.slots_.size());
    for (std::size_t i = 0; i < group_.slots_.size(); ++i) {
      if (group_.slots_[i]->finished.load(std::memory_order_acquire)) continue;
      live.push_back(i);
      slots.push_back(group_.slots_[i].get());
    }
  }
  if (live.empty()) {
    decision.reason = "no live tenants";
    return decision;
  }

  // Measure every live tenant's window.  The joint allocation is only
  // meaningful on a consistent snapshot, so one unprimed or under-sampled
  // tenant postpones the whole round (its window keeps accumulating).
  struct Measured {
    std::vector<MeasuredOperator> ops;
    double source_rate = 0.0;
    double measured_p99 = 0.0;  ///< 0 = not enough latency samples
    std::uint64_t source_samples = 0;
  };
  std::vector<Measured> measures(live.size());
  bool all_ready = true;
  for (std::size_t k = 0; k < live.size(); ++k) {
    Engine& engine = *slots[k]->engine;
    TenantWindow& win = windows_[live[k]];
    const CounterSnapshot now = engine.sample();
    if (!win.primed) {
      win.prev = now;
      win.e2e_prev = engine.stats_board().end_to_end_snapshot();
      win.primed = true;
      all_ready = false;
      continue;
    }
    const Topology& topology = engine.topology();
    const double window = now.at_seconds - win.prev.at_seconds;
    Measured& m = measures[k];
    m.ops.resize(topology.num_operators());
    for (OpIndex i = 0; i < topology.num_operators(); ++i) {
      MeasuredOperator& op = m.ops[i];
      op.samples = now.processed[i] - win.prev.processed[i];
      if (window > 0.0) {
        op.processed_rate = static_cast<double>(op.samples) / window;
        op.emitted_rate =
            static_cast<double>(now.emitted[i] - win.prev.emitted[i]) / window;
      }
      if (op.samples > 0 && i < now.busy_ns.size() && i < win.prev.busy_ns.size()) {
        const std::uint64_t busy = now.busy_ns[i] - win.prev.busy_ns[i];
        op.service_time =
            static_cast<double>(busy) / 1e9 / static_cast<double>(op.samples);
      }
    }
    m.source_rate = m.ops[topology.source()].emitted_rate;
    m.source_samples =
        now.emitted[topology.source()] - win.prev.emitted[topology.source()];
    const LatencySummary window_latency =
        engine.stats_board().end_to_end_since(win.e2e_prev);
    if (window_latency.count >= options_.min_samples) {
      m.measured_p99 = window_latency.p99;
    }
    win.prev = now;
    win.e2e_prev = engine.stats_board().end_to_end_snapshot();
    if (decision.at_seconds == 0.0) decision.at_seconds = now.at_seconds;
    if (m.source_samples < options_.min_samples) all_ready = false;
  }
  for (std::size_t k = 0; k < live.size(); ++k) {
    decision.names.push_back(slots[k]->spec.name);
  }
  // Every per-tenant column stays parallel to `names`, early returns
  // included — consumers index them by position.
  decision.granted.assign(live.size(), 0);
  decision.current.assign(live.size(), 0);
  decision.redeployed.assign(live.size(), false);
  decision.slo_breached.assign(live.size(), false);
  if (!all_ready) {
    decision.reason = "insufficient samples in window";
    return decision;
  }

  // Fold the measurements into each tenant's topology and allocate the
  // global budget jointly.
  std::vector<TenantWorkload> workloads;
  workloads.reserve(live.size());
  for (std::size_t k = 0; k < live.size(); ++k) {
    Engine& engine = *slots[k]->engine;
    TenantWorkload w;
    w.topology =
        with_measured_profile(engine.topology(), measures[k].ops, options_.min_samples);
    w.options = slots[k]->spec.optimize;
    w.weight = slots[k]->spec.weight;
    w.name = slots[k]->spec.name;
    workloads.push_back(std::move(w));
  }
  JointOptions joint_options;
  joint_options.replica_budget = options_.replica_budget;
  const JointResult joint = optimize_joint(workloads, joint_options);
  decision.budget_binding = joint.budget_binding;

  // Apply per tenant: the granted share redeploys when it clears the gain
  // threshold or repairs an SLO breach.  An in-flight breach is judged on
  // the measured windowed p99 when available, on the model otherwise.
  std::ostringstream reason;
  for (std::size_t k = 0; k < live.size(); ++k) {
    Engine& engine = *slots[k]->engine;
    const TenantAllocation& alloc = joint.tenants[k];
    const Topology& measured_topology = workloads[k].topology;
    const Deployment current = engine.deployment();
    const std::size_t num_ops = measured_topology.num_operators();
    const DeploymentDiff diff = diff_deployments(num_ops, current, alloc.deployment);

    const SteadyStateResult current_rates =
        steady_state(measured_topology, current.replication);
    const double predicted_current = current_rates.throughput();
    const double gain = predicted_current > 0.0
                            ? (alloc.predicted_throughput - predicted_current) /
                                  predicted_current
                            : 0.0;
    const double slo = slots[k]->spec.optimize.slo_p99;
    double current_p99 = measures[k].measured_p99;
    if (slo > 0.0 && current_p99 <= 0.0) {
      const LatencyEstimate est =
          estimate_latency(measured_topology, current_rates, current.replication,
                           slots[k]->spec.optimize.buffer_capacity);
      current_p99 = est.sojourn.p99;
    }
    const bool breached = slo > 0.0 && current_p99 > slo;
    // A breach justifies the fence when the granted deployment is
    // predicted to meet the SLO or at least clearly improve the tail.
    const bool repairs =
        breached && (alloc.slo_feasible || alloc.predicted_p99 < current_p99 * 0.999);
    // Claw-back: with a budget in force the granted share IS the tenant's
    // allowance — one deployed above it is over-provisioned and gives the
    // replicas back, provided shrinking costs it (nearly) nothing.  That
    // is where a breached neighbor's extra share comes from.
    const int deployed = current.replication.total_replicas(num_ops);
    const bool reclaims = options_.replica_budget > 0 &&
                          alloc.granted_replicas < deployed && gain >= -0.02;
    const bool beneficial =
        diff.any() && (gain >= options_.threshold || repairs || reclaims);

    decision.granted[k] = alloc.granted_replicas;
    decision.current[k] = deployed;
    decision.slo_breached[k] = breached;

    bool redeployed = false;
    if (beneficial &&
        redeployments_.load(std::memory_order_relaxed) < options_.max_redeployments &&
        engine.reconfigure(alloc.deployment)) {
      redeployed = true;
      redeployments_.fetch_add(1, std::memory_order_relaxed);
      // The fence window is not a steady-state sample; restart the window.
      TenantWindow& win = windows_[live[k]];
      win.prev = engine.sample();
      win.e2e_prev = engine.stats_board().end_to_end_snapshot();
      reason << slots[k]->spec.name << ": redeployed to " << alloc.granted_replicas
             << " replicas (" << diff.ops_changed << " op(s) changed, gain "
             << gain * 100.0 << "%";
      if (breached) {
        reason << ", slo breach p99 " << current_p99 * 1e3 << " ms > " << slo * 1e3
               << " ms";
      }
      reason << "); ";
    }
    decision.redeployed[k] = redeployed;
  }
  if (reason.str().empty()) {
    decision.reason = "no beneficial change";
  } else {
    decision.reason = reason.str();
  }
  return decision;
}

}  // namespace ss::runtime
