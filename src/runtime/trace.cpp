#include "runtime/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <deque>
#include <fstream>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "core/error.hpp"

namespace ss::runtime::trace {

namespace {

std::uint64_t steady_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Minimal JSON string escaping (thread names can carry user operator
/// names; event names are literals but escape uniformly anyway).
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

/// Single-writer ring: the owning thread writes a slot, then publishes it
/// by bumping `head` (release).  The flusher reads `head` (acquire) after
/// disarming and takes the newest `kCapacity` slots; older ones were
/// overwritten and count as dropped.  Rings outlive their threads (the
/// registry holds shared ownership) so flush can run after workers joined.
struct Tracer::Ring {
  static constexpr std::size_t kCapacity = 1 << 15;  ///< 32K events/thread

  std::vector<Event> slots{std::vector<Event>(kCapacity)};
  std::atomic<std::uint64_t> head{0};  ///< events ever written
  std::uint32_t tid = 0;
  std::string thread_name;

  void write(const Event& e) {
    const std::uint64_t h = head.load(std::memory_order_relaxed);
    slots[h % kCapacity] = e;
    head.store(h + 1, std::memory_order_release);
  }
};

namespace {

/// Registry of every ring ever created, so flush sees rings of threads
/// that already exited.  The mutex is taken at thread registration,
/// renaming and flush — never on the record path.
struct Registry {
  std::mutex mu;
  std::vector<std::shared_ptr<Tracer::Ring>> rings;
  std::uint32_t next_tid = 1;
};

Registry& registry() {
  static Registry r;
  return r;
}

thread_local std::shared_ptr<Tracer::Ring> tls_ring;

thread_local const char* tls_tenant = nullptr;

/// Interned tenant labels.  Deque: stable addresses across growth; the
/// storage lives for the process (labels are few — one per tenant).
struct LabelPool {
  std::mutex mu;
  std::deque<std::string> labels;
};

LabelPool& label_pool() {
  static LabelPool p;
  return p;
}

}  // namespace

const char* intern_label(const std::string& label) {
  LabelPool& pool = label_pool();
  std::lock_guard<std::mutex> lock(pool.mu);
  for (const std::string& existing : pool.labels) {
    if (existing == label) return existing.c_str();
  }
  pool.labels.push_back(label);
  return pool.labels.back().c_str();
}

void set_thread_tenant(const char* tenant) { tls_tenant = tenant; }

const char* thread_tenant() { return tls_tenant; }

Tracer& Tracer::instance() {
  static Tracer t;
  return t;
}

Tracer::Ring& Tracer::local_ring() {
  if (!tls_ring) {
    auto ring = std::make_shared<Ring>();
    Registry& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mu);
    ring->tid = reg.next_tid++;
    ring->thread_name = "thread-" + std::to_string(ring->tid);
    reg.rings.push_back(ring);
    tls_ring = std::move(ring);
  }
  return *tls_ring;
}

bool Tracer::start() {
  bool expected = false;
  if (!enabled_.compare_exchange_strong(expected, true)) return false;
  dropped_.store(0, std::memory_order_relaxed);
  start_ns_.store(steady_ns(), std::memory_order_relaxed);
  return true;
}

std::uint64_t Tracer::now_ns() const {
  const std::uint64_t origin = start_ns_.load(std::memory_order_relaxed);
  if (origin == 0) return 0;
  return steady_ns() - origin;
}

void Tracer::record(const Event& e) {
  if (!enabled()) return;
  if (e.tenant == nullptr && tls_tenant != nullptr) {
    Event tagged = e;
    tagged.tenant = tls_tenant;
    local_ring().write(tagged);
    return;
  }
  local_ring().write(e);
}

void Tracer::set_thread_name(const std::string& name) {
  if (!enabled()) return;
  Ring& ring = local_ring();
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  ring.thread_name = name;
}

std::size_t Tracer::stop_and_flush(const std::string& path) {
  enabled_.store(false, std::memory_order_seq_cst);

  struct Timed {
    Event e;
    std::uint32_t tid;
  };
  struct Lane {
    std::uint32_t tid;
    std::string name;
  };
  std::vector<Timed> events;
  std::vector<Lane> lanes;
  std::uint64_t dropped = 0;
  {
    Registry& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mu);
    for (const auto& ring : reg.rings) {
      const std::uint64_t head = ring->head.load(std::memory_order_acquire);
      const std::uint64_t kept = std::min<std::uint64_t>(head, Ring::kCapacity);
      dropped += head - kept;
      for (std::uint64_t i = head - kept; i < head; ++i) {
        events.push_back({ring->slots[i % Ring::kCapacity], ring->tid});
      }
      if (kept > 0) lanes.push_back({ring->tid, ring->thread_name});
      ring->head.store(0, std::memory_order_relaxed);  // fresh next start()
    }
  }
  dropped_.store(dropped, std::memory_order_relaxed);

  std::sort(events.begin(), events.end(), [](const Timed& a, const Timed& b) {
    return a.e.ts_ns < b.e.ts_ns;
  });

  std::ofstream out(path, std::ios::trunc);
  require(out.good(), "cannot write trace file: " + path);
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto sep = [&] {
    if (!first) out << ",";
    first = false;
    out << "\n";
  };
  for (const Lane& lane : lanes) {
    sep();
    out << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" << lane.tid
        << ",\"args\":{\"name\":\"" << json_escape(lane.name) << "\"}}";
  }
  out.precision(3);
  out << std::fixed;
  for (const Timed& t : events) {
    const Event& e = t.e;
    sep();
    out << "{\"name\":\"" << json_escape(e.name ? e.name : "?")
        << "\",\"cat\":\"" << json_escape(e.cat ? e.cat : "runtime")
        << "\",\"ph\":\"" << e.phase << "\",\"pid\":1,\"tid\":" << t.tid
        << ",\"ts\":" << static_cast<double>(e.ts_ns) / 1e3;
    if (e.phase == 'X') out << ",\"dur\":" << static_cast<double>(e.dur_ns) / 1e3;
    if (e.phase == 'i') out << ",\"s\":\"t\"";
    if (e.arg_name != nullptr || e.tenant != nullptr) {
      out << ",\"args\":{";
      if (e.tenant != nullptr) {
        out << "\"tenant\":\"" << json_escape(e.tenant) << "\"";
        if (e.arg_name != nullptr) out << ",";
      }
      if (e.arg_name != nullptr) {
        out << "\"" << json_escape(e.arg_name) << "\":" << e.arg;
      }
      out << "}";
    }
    out << "}";
  }
  out << "\n]}\n";
  out.flush();
  require(out.good(), "failed writing trace file: " + path);
  return events.size();
}

void instant_armed(const char* name, const char* cat, const char* arg_name,
                   std::int64_t arg) {
  Tracer& t = Tracer::instance();
  if (!t.enabled()) return;
  Event e;
  e.name = name;
  e.cat = cat;
  e.arg_name = arg_name;
  e.arg = arg;
  e.ts_ns = t.now_ns();
  e.phase = 'i';
  t.record(e);
}

void Span::arm() noexcept {
  Tracer& t = Tracer::instance();
  if (t.enabled()) {
    active_ = true;
    start_ns_ = t.now_ns();
  }
}

void Span::finish() {
  Tracer& t = Tracer::instance();
  if (!t.enabled()) return;  // disarmed mid-span: drop it
  Event e;
  e.name = name_;
  e.cat = cat_;
  e.arg_name = arg_name_;
  e.arg = arg_;
  e.ts_ns = start_ns_;
  e.dur_ns = t.now_ns() - start_ns_;
  e.phase = 'X';
  t.record(e);
}

}  // namespace ss::runtime::trace
