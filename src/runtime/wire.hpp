// Little-endian binary primitives shared by the checkpoint codec and the
// operator state serialization hooks (OperatorLogic::save_state /
// restore_state).
//
// Every multi-byte value is encoded explicitly byte-by-byte, so the bytes
// are identical across platforms and compilers — checkpoints written by one
// build must decode in another, and the recovery tests compare state blobs
// byte-for-byte.  The Reader never reads past its input: a truncated or
// corrupt buffer flips ok() and every subsequent get returns false, which
// is what lets the checkpoint loader reject torn files instead of crashing.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace ss::runtime::wire {

inline void put_u8(std::string& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}

inline void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

inline void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

inline void put_i64(std::string& out, std::int64_t v) {
  put_u64(out, static_cast<std::uint64_t>(v));
}

inline void put_i32(std::string& out, std::int32_t v) {
  put_u32(out, static_cast<std::uint32_t>(v));
}

inline void put_f64(std::string& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

/// Length-prefixed byte string (u64 length + raw bytes).
inline void put_bytes(std::string& out, std::string_view bytes) {
  put_u64(out, bytes.size());
  out.append(bytes.data(), bytes.size());
}

/// Bounds-checked sequential decoder over one buffer.  All getters return
/// false (and leave the output untouched) once the input is exhausted; a
/// single failed get poisons the reader, so callers can decode a whole
/// record and check ok() once at the end.
class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  [[nodiscard]] bool ok() const { return ok_; }
  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }

  bool u8(std::uint8_t& v) {
    if (!take(1)) return false;
    v = static_cast<std::uint8_t>(data_[pos_ - 1]);
    return true;
  }

  bool u32(std::uint32_t& v) {
    if (!take(4)) return false;
    v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(data_[pos_ - 4 + i]))
           << (8 * i);
    }
    return true;
  }

  bool u64(std::uint64_t& v) {
    if (!take(8)) return false;
    v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(data_[pos_ - 8 + i]))
           << (8 * i);
    }
    return true;
  }

  bool i64(std::int64_t& v) {
    std::uint64_t raw;
    if (!u64(raw)) return false;
    v = static_cast<std::int64_t>(raw);
    return true;
  }

  bool i32(std::int32_t& v) {
    std::uint32_t raw;
    if (!u32(raw)) return false;
    v = static_cast<std::int32_t>(raw);
    return true;
  }

  bool f64(double& v) {
    std::uint64_t raw;
    if (!u64(raw)) return false;
    v = std::bit_cast<double>(raw);
    return true;
  }

  bool bytes(std::string& v) {
    std::uint64_t len;
    if (!u64(len)) return false;
    if (len > remaining()) {
      ok_ = false;
      return false;
    }
    v.assign(data_.data() + pos_, static_cast<std::size_t>(len));
    pos_ += static_cast<std::size_t>(len);
    return true;
  }

 private:
  bool take(std::size_t n) {
    if (!ok_ || n > remaining()) {
      ok_ = false;
      return false;
    }
    pos_ += n;
    return true;
  }

  std::string_view data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace ss::runtime::wire
