// The operator programming interface executed by actors (paper §4.2).
//
// This is the SS2Akka analogue: users implement OperatorLogic (the
// operatorFunction() of the paper), the runtime decides which actor executes
// it, how results are routed, and how replicas/meta-operators wrap it.  A
// logic instance is owned by exactly one actor, so implementations need no
// synchronization — the same guarantee Akka gives actor state.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/types.hpp"
#include "runtime/tuple.hpp"

namespace ss::runtime {

/// Sink for results produced by an operator invocation.
class Collector {
 public:
  virtual ~Collector() = default;

  /// Emits a result; the runtime picks the out-edge (probabilistically,
  /// per the topology's routing annotations).
  virtual void emit(const Tuple& t) = 0;

  /// Emits a result to a specific downstream logical operator; `target`
  /// must be an out-neighbor in the topology.  For content-based routing
  /// (e.g. alert vs. archive branches in the examples).
  virtual void emit_to(OpIndex target, const Tuple& t) = 0;
};

/// User-defined processing logic of one logical operator.
class OperatorLogic {
 public:
  virtual ~OperatorLogic() = default;

  /// Called once by the executing actor before the first item.
  virtual void on_start() {}

  /// Processes one input item.  `from` is the logical upstream operator the
  /// item came from (joins use it to tell their two inputs apart).  Emit
  /// zero, one or many results through `out`.
  virtual void process(const Tuple& item, OpIndex from, Collector& out) = 0;

  /// Called once when the input streams are exhausted; may flush pending
  /// state (e.g. a partial window).
  virtual void on_finish(Collector& out) { (void)out; }

  /// Fresh instance with the same configuration and empty state; used to
  /// give every replica its own state partition.
  [[nodiscard]] virtual std::unique_ptr<OperatorLogic> clone() const = 0;

  // --- key-state migration (elastic re-deployment) ----------------------
  //
  // When the controller changes the replica count or key partition of a
  // partitioned-stateful operator, the engine fences the graph and moves
  // each key's state from the replica that owned it to the one that owns
  // it in the new deployment.  Both hooks are optional: logic that keeps
  // no per-key state (or cannot move it) uses the defaults and the new
  // owner simply starts the key from scratch.

  /// Keys with live state in this instance.
  [[nodiscard]] virtual std::vector<std::int64_t> owned_keys() const { return {}; }

  /// Moves the state of `key` into `dest` — an instance of the same
  /// concrete logic type owned by the replica taking the key over.
  /// Returns false when this logic does not support migration (the key's
  /// state is discarded and the new owner starts fresh).
  virtual bool migrate_key(std::int64_t key, OperatorLogic& dest) {
    (void)key;
    (void)dest;
    return false;
  }

  // --- state serialization (epoch checkpointing) ------------------------
  //
  // At a checkpoint fence the engine asks every logic instance to encode
  // its full state into a byte string; crash recovery decodes it into a
  // fresh instance of the same concrete type.  Both hooks are optional:
  // logic returning false from save_state() is checkpointed as stateless
  // (a recovered instance starts empty, which is exact for genuinely
  // stateless operators and a documented loss for unsupported ones).

  /// Serializes the complete operator state into `out` (appended).
  /// Returns false when this logic does not support checkpointing.
  [[nodiscard]] virtual bool save_state(std::string& out) const {
    (void)out;
    return false;
  }

  /// Restores state previously produced by save_state() on an instance of
  /// the same concrete type.  Returns false on unsupported or undecodable
  /// input (the instance is left default-initialized).
  virtual bool restore_state(const std::string& bytes) {
    (void)bytes;
    return false;
  }
};

/// Source logics additionally produce the stream: the runtime calls next()
/// in a loop from the source actor until it returns false or the run stops.
class SourceLogic {
 public:
  virtual ~SourceLogic() = default;

  /// Produces the next item into `out`; returns false at end-of-stream
  /// (infinite sources simply always return true and are cut off by the
  /// run duration).
  virtual bool next(Tuple& out) = 0;

  /// Fast-forwards the source past its first `n` items, as if they had
  /// been produced and discarded.  Recovery rewinds a restarted source to
  /// the checkpointed offset with this; the default pulls and drops, which
  /// is exact for any deterministic source but pays full production cost
  /// (paced sources override to skip without sleeping).
  virtual void skip(std::uint64_t n) {
    Tuple scratch{};
    for (std::uint64_t i = 0; i < n; ++i) {
      if (!next(scratch)) break;
    }
  }
};

}  // namespace ss::runtime
