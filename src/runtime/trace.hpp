// Opt-in event tracing: lock-free per-thread ring buffers flushed at
// shutdown as Chrome trace-event JSON (load the file in Perfetto or
// chrome://tracing).  The runtime records *spans* — a pooled worker
// draining one mailbox batch, a source pump quantum, the fence/drain
// phases of an epoch switch-over, a worker parking — and *instants*
// (steals, epoch swaps), which makes the reconfiguration protocol and the
// scheduler's load balance visually debuggable for the first time.
//
// Cost model: tracing off (the default) is one relaxed atomic load per
// potential event.  Tracing on appends one 48-byte record to a per-thread
// ring (single-writer, no locks, no allocation); when a ring wraps, the
// oldest events are overwritten and counted as dropped.  Event names and
// categories must be string literals (the ring stores the pointers).
//
// Flush discipline: stop_and_flush() first disables recording, then reads
// the rings.  Readers and writers are not otherwise synchronized, so flush
// only after the traced threads quiesced (the engine joins its scheduler
// before the CLI flushes) — the price of a wait-free record() path.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace ss::runtime::trace {

/// One recorded event.  `phase` follows the trace-event format: 'X' is a
/// complete span (ts + dur), 'i' an instant.
struct Event {
  const char* name = nullptr;      ///< string literal
  const char* cat = nullptr;       ///< string literal ("sched", "fence", ...)
  const char* arg_name = nullptr;  ///< optional numeric payload key
  /// Tenant tag (multi-tenant runs): interned label (intern_label) or
  /// nullptr.  Stamped automatically from the calling thread's tag
  /// (set_thread_tenant) when record() sees it unset.
  const char* tenant = nullptr;
  std::uint64_t ts_ns = 0;         ///< nanoseconds since Tracer start
  std::uint64_t dur_ns = 0;        ///< span length ('X' only)
  std::int64_t arg = 0;
  char phase = 'X';
};

/// Process-global tracer.  start() arms it, record() appends to the
/// calling thread's ring, stop_and_flush() writes the JSON.
class Tracer {
 public:
  static Tracer& instance();

  /// Arms recording; timestamps are relative to this call.  Returns false
  /// (and does nothing) if already armed — the first starter owns the
  /// trace and its flush.
  bool start();

  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Nanoseconds since start(); 0 when not armed.
  [[nodiscard]] std::uint64_t now_ns() const;

  /// Appends one event to the calling thread's ring (no-op when off).
  void record(const Event& e);

  /// Names the calling thread's lane in the trace viewer ("worker-3",
  /// "actor-7-map").  No-op when off.
  void set_thread_name(const std::string& name);

  /// Disarms recording, writes every surviving event as Chrome trace-event
  /// JSON to `path` and resets the rings (a later start() begins a fresh
  /// trace).  Returns the number of events written; throws ss::Error when
  /// the file cannot be written.  Call only after traced threads quiesced.
  std::size_t stop_and_flush(const std::string& path);

  /// Events lost to ring wrap-around in the trace just flushed.
  [[nodiscard]] std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  struct Ring;  ///< per-thread ring buffer (defined in trace.cpp)

 private:
  Tracer() = default;
  Ring& local_ring();

  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<std::uint64_t> start_ns_{0};  ///< steady-clock origin
};

/// True when the process-global tracer is armed (one relaxed load — the
/// whole cost of an untraced call site).
inline bool enabled() { return Tracer::instance().enabled(); }

/// Interns `label` in process-lifetime storage and returns a stable
/// pointer, so dynamically named tenants can tag Events (which store raw
/// pointers).  Idempotent per distinct string.
const char* intern_label(const std::string& label);

/// Tags every event the calling thread records from now on with `tenant`
/// (an interned label or a string literal); nullptr clears the tag.
/// Scheduler workers set it around each tenant's actor slot; engine-owned
/// threads (run loop, controller, exporter) set it once at entry.
void set_thread_tenant(const char* tenant);

/// The calling thread's current tenant tag (nullptr when untagged).
const char* thread_tenant();

/// Out-of-line armed path of instant() below.
void instant_armed(const char* name, const char* cat, const char* arg_name,
                   std::int64_t arg);

/// Records an instant event ('i') at the current time.  Inline disarmed
/// fast path: one relaxed load + branch — cheap enough for scheduler hot
/// loops that fire per drained batch.
inline void instant(const char* name, const char* cat, const char* arg_name = nullptr,
                    std::int64_t arg = 0) {
  if (enabled()) instant_armed(name, cat, arg_name, arg);
}

/// RAII complete-event span: captures the start time on construction (when
/// tracing is armed) and records one 'X' event on destruction.  Like
/// instant(), the disarmed cost is a relaxed load + branch per end.
class Span {
 public:
  Span(const char* name, const char* cat) noexcept : name_(name), cat_(cat) {
    if (enabled()) arm();
  }
  ~Span() {
    if (active_) finish();
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Attaches a numeric payload shown in the viewer's args pane.
  void set_arg(const char* key, std::int64_t value) {
    arg_name_ = key;
    arg_ = value;
  }

 private:
  void arm() noexcept;   ///< captures the start stamp (tracing armed)
  void finish();         ///< records the 'X' event

  const char* name_;
  const char* cat_;
  const char* arg_name_ = nullptr;
  std::int64_t arg_ = 0;
  std::uint64_t start_ns_ = 0;
  bool active_ = false;
};

}  // namespace ss::runtime::trace
