#include "runtime/routing.hpp"

#include <algorithm>
#include <cmath>

#include "core/error.hpp"

namespace ss::runtime {

EdgeRouter::EdgeRouter(const Topology& t, OpIndex op) {
  double running = 0.0;
  for (const Edge& e : t.out_edges(op)) {
    targets_.push_back(e.to);
    running += e.probability;
    cdf_.push_back(running);
  }
  if (!cdf_.empty()) cdf_.back() = 1.0;  // absorb floating-point undershoot
}

OpIndex EdgeRouter::choose(Rng& rng) const {
  if (targets_.empty()) return kInvalidOp;
  if (targets_.size() == 1) return targets_[0];
  const double u = rng.next_double();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) --it;
  return targets_[static_cast<std::size_t>(it - cdf_.begin())];
}

bool EdgeRouter::is_destination(OpIndex target) const {
  return std::find(targets_.begin(), targets_.end(), target) != targets_.end();
}

ReplicaSelector ReplicaSelector::round_robin(int replicas) {
  require(replicas >= 1, "ReplicaSelector: need at least one replica");
  ReplicaSelector s;
  s.mode_ = Mode::kRoundRobin;
  s.replicas_ = replicas;
  return s;
}

ReplicaSelector ReplicaSelector::by_key(KeyPartition partition) {
  require(!partition.replica_of_key.empty(), "ReplicaSelector: empty partition map");
  ReplicaSelector s;
  s.mode_ = Mode::kByKey;
  s.replicas_ = partition.replicas;
  s.partition_ = std::move(partition);
  return s;
}

ReplicaSelector ReplicaSelector::by_share(std::vector<double> shares) {
  require(!shares.empty(), "ReplicaSelector: empty share vector");
  ReplicaSelector s;
  s.mode_ = Mode::kByShare;
  s.replicas_ = static_cast<int>(shares.size());
  double total = 0.0;
  for (double v : shares) total += v;
  require(total > 0.0, "ReplicaSelector: shares sum to zero");
  double running = 0.0;
  for (double v : shares) {
    running += v / total;
    s.share_cdf_.push_back(running);
  }
  s.share_cdf_.back() = 1.0;
  return s;
}

int ReplicaSelector::select(std::int64_t key, Rng& rng) {
  switch (mode_) {
    case Mode::kRoundRobin: {
      const int r = next_;
      next_ = (next_ + 1) % replicas_;
      return r;
    }
    case Mode::kByKey: {
      const auto n = static_cast<std::int64_t>(partition_.replica_of_key.size());
      std::int64_t k = key % n;
      if (k < 0) k += n;
      return partition_.replica_of_key[static_cast<std::size_t>(k)];
    }
    case Mode::kByShare: {
      const double u = rng.next_double();
      auto it = std::lower_bound(share_cdf_.begin(), share_cdf_.end(), u);
      if (it == share_cdf_.end()) --it;
      return static_cast<int>(it - share_cdf_.begin());
    }
  }
  return 0;
}

}  // namespace ss::runtime
