// Monotonic time helpers and the precise timed wait used by synthetic
// operators.
//
// Synthetic workloads realize a profiled service time as a *timed wait*
// rather than CPU burn: blocked/sleeping threads do not contend for cores,
// so all rate relationships (mu, lambda, rho, backpressure) survive on
// machines with fewer cores than actors — see DESIGN.md.  sleep_for alone
// overshoots by tens of microseconds at millisecond scale, so the wait
// sleeps for most of the interval and spins the short residue on the
// monotonic clock.
#pragma once

#include <chrono>
#include <thread>

namespace ss::runtime {

using Clock = std::chrono::steady_clock;

/// Seconds elapsed between two steady_clock points.
inline double seconds_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

/// Waits for `seconds` with microsecond-level accuracy.
inline void precise_wait(double seconds) {
  if (seconds <= 0.0) return;
  const auto deadline = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                           std::chrono::duration<double>(seconds));
  // Leave ~120us for the spin phase; below that the kernel timer slack
  // dominates and sleeping would overshoot.
  constexpr auto kSpinSlack = std::chrono::microseconds(120);
  const auto sleep_until = deadline - kSpinSlack;
  if (sleep_until > Clock::now()) std::this_thread::sleep_until(sleep_until);
  while (Clock::now() < deadline) {
    // short spin; yield keeps single-core hosts responsive
    std::this_thread::yield();
  }
}

/// Timed wait with drift compensation.
///
/// On an oversubscribed machine every sleep/spin overshoots a little
/// (scheduler quanta, timer slack); uncorrected, that bias compounds into
/// service rates measurably below the profiled ones.  PacedWaiter keeps a
/// running debt of extra time already spent and discounts it from later
/// waits, so the long-run average interval converges to exactly the
/// requested service time.
class PacedWaiter {
 public:
  void wait(double seconds) {
    if (seconds <= 0.0) return;
    const double effective = seconds - debt_;
    if (effective <= 0.0) {
      debt_ -= seconds;  // still repaying earlier overshoot
      return;
    }
    const auto start = Clock::now();
    precise_wait(effective);
    debt_ = seconds_between(start, Clock::now()) - effective;
  }

  [[nodiscard]] double debt() const { return debt_; }

 private:
  double debt_ = 0.0;
};

}  // namespace ss::runtime
