// Monotonic time helpers and the precise timed wait used by synthetic
// operators.
//
// Synthetic workloads realize a profiled service time as a *timed wait*
// rather than CPU burn: blocked/sleeping threads do not contend for cores,
// so all rate relationships (mu, lambda, rho, backpressure) survive on
// machines with fewer cores than actors — see DESIGN.md.  sleep_for alone
// overshoots by tens of microseconds at millisecond scale, so the wait
// sleeps for most of the interval and spins the short residue on the
// monotonic clock.
#pragma once

#include <chrono>
#include <cstdint>
#include <thread>

#if defined(__x86_64__) || defined(_M_X64)
#include <x86intrin.h>
#endif

namespace ss::runtime {

using Clock = std::chrono::steady_clock;

/// Seconds elapsed between two steady_clock points.
inline double seconds_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

/// Cheap approximate Clock::now() for high-frequency metering stamps.
///
/// Busy-span telemetry and per-tuple latency samples read the clock up to
/// four times per message; at ~25 ns per vDSO steady_clock read that is
/// measurable overhead on sub-microsecond operators.  On x86_64 this reads
/// the invariant TSC (~7 ns) and maps it onto the steady_clock timeline
/// through a once-per-process anchor + frequency calibration (≲0.1% rate
/// error — irrelevant for utilization fractions and the ~3%-resolution
/// latency buckets, which is all this stamp feeds; pacing and scheduling
/// keep using the real clock).  On other targets it is exactly
/// Clock::now().
inline Clock::time_point metering_now() {
#if defined(__x86_64__) || defined(_M_X64)
  struct Anchor {
    Clock::time_point base;
    std::uint64_t tsc;
    double ns_per_tick;
    Anchor() {
      const Clock::time_point t0 = Clock::now();
      const std::uint64_t c0 = __rdtsc();
      // ~200 us calibration spin: enough for ≲0.1% frequency accuracy,
      // short enough to vanish into engine start-up (runs once ever).
      Clock::time_point t1;
      std::uint64_t c1;
      do {
        t1 = Clock::now();
        c1 = __rdtsc();
      } while (t1 - t0 < std::chrono::microseconds(200));
      ns_per_tick = static_cast<double>(
                        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                            .count()) /
                    static_cast<double>(c1 - c0);
      base = t1;
      tsc = c1;
    }
  };
  static const Anchor anchor;  // thread-safe magic-static calibration
  const double ticks = static_cast<double>(__rdtsc() - anchor.tsc);
  return anchor.base +
         std::chrono::nanoseconds(static_cast<std::int64_t>(ticks * anchor.ns_per_tick));
#else
  return Clock::now();
#endif
}

/// Waits for `seconds` with microsecond-level accuracy.
inline void precise_wait(double seconds) {
  if (seconds <= 0.0) return;
  const auto deadline = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                           std::chrono::duration<double>(seconds));
  // Leave ~120us for the spin phase; below that the kernel timer slack
  // dominates and sleeping would overshoot.
  constexpr auto kSpinSlack = std::chrono::microseconds(120);
  const auto sleep_until = deadline - kSpinSlack;
  if (sleep_until > Clock::now()) std::this_thread::sleep_until(sleep_until);
  while (Clock::now() < deadline) {
    // short spin; yield keeps single-core hosts responsive
    std::this_thread::yield();
  }
}

/// Timed wait with drift compensation.
///
/// On an oversubscribed machine every sleep/spin overshoots a little
/// (scheduler quanta, timer slack); uncorrected, that bias compounds into
/// service rates measurably below the profiled ones.  PacedWaiter keeps a
/// running debt of extra time already spent and discounts it from later
/// waits, so the long-run average interval converges to exactly the
/// requested service time.
class PacedWaiter {
 public:
  void wait(double seconds) {
    if (seconds <= 0.0) return;
    const double effective = seconds - debt_;
    if (effective <= 0.0) {
      debt_ -= seconds;  // still repaying earlier overshoot
      return;
    }
    const auto start = Clock::now();
    precise_wait(effective);
    debt_ = seconds_between(start, Clock::now()) - effective;
  }

  [[nodiscard]] double debt() const { return debt_; }

 private:
  double debt_ = 0.0;
};

}  // namespace ss::runtime
