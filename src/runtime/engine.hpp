// The actor core: builds the actor graph of a deployment, dispatches
// messages to operator logic, measures steady-state rates, and drains the
// topology deterministically on stop.  *How* actors get CPU time is
// delegated to a Scheduler (scheduler.hpp): one dedicated thread per actor
// (the configuration the paper evaluates in §5.1, the default) or a shared
// worker pool multiplexing N actors onto K workers.
//
// A running actor graph is an *epoch*: the instantiation of one Deployment
// (actors, mailboxes, routing targets, scheduler).  reconfigure() switches
// epochs without losing a tuple — a fence token flows the channel barrier
// (the generalization of the shutdown protocol), every actor quiesces at a
// tuple boundary and retires with its state intact, the source buffers
// (bounded) instead of stopping, unchanged actors carry over whole and the
// key state of changed partitioned operators migrates to its new owners,
// then a fresh scheduler resumes the graph.  EngineConfig::elastic runs a
// ReconfigController (controller.hpp) that drives this loop from measured
// rates.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "core/topology.hpp"
#include "runtime/checkpoint.hpp"
#include "runtime/clock.hpp"
#include "runtime/controller.hpp"
#include "runtime/mailbox.hpp"
#include "runtime/metrics.hpp"
#include "runtime/operator.hpp"
#include "runtime/plan.hpp"
#include "runtime/routing.hpp"
#include "runtime/scheduler.hpp"
#include "runtime/telemetry.hpp"

namespace ss::runtime {

class SchedulerHost;
class ProfileEstimator;  // profiler.hpp
class StatsServer;       // stats_server.hpp

struct EngineConfig {
  /// Mailbox capacity of every actor (Akka BoundedMailbox equivalent).
  std::size_t mailbox_capacity = 64;
  /// Blocking-send timeout after which an item is dropped; the paper uses
  /// five seconds, far above any service time, so drops never happen.
  std::chrono::duration<double> send_timeout{5.0};
  /// Fraction of a run_for() duration treated as warmup before the
  /// steady-state measurement window opens.
  double warmup_fraction = 0.3;
  /// Seed for routing/selection randomness.
  std::uint64_t seed = 42;
  /// When true, the emitter of a partitioned-stateful operator samples the
  /// tuple key from the operator's key distribution (synthetic workloads);
  /// when false the tuple's own key is hashed through the partition map.
  bool assign_keys_at_emitter = true;
  /// Full-mailbox behaviour: backpressure (default, what the cost models
  /// assume) or load shedding (drop-newest; an alternative §2 discusses).
  OverflowPolicy overflow = OverflowPolicy::kBlockAfterService;
  /// Queue engine behind every mailbox: the lock-free MPSC ring fast path
  /// (default) or the mutex-guarded two-queue baseline (--mailbox=mutex,
  /// kept for A/B comparison).  Semantics are identical either way.
  MailboxKind mailbox = MailboxKind::kRing;
  /// Worker-to-CPU pinning of the pooled scheduler (--pin).  Ignored under
  /// kThreadPerActor; best-effort (warns and continues unpinned when CPU
  /// affinity is unavailable).
  PinMode pin = PinMode::kNone;
  /// When true, collectors of replicated operators release results in the
  /// order the inputs entered the emitter (paper §2: "proper approaches
  /// for item scheduling and collection, to preserve the sequential
  /// ordering").  Costs one marker message per input item.
  bool preserve_replica_order = false;
  /// Execution backend: dedicated thread per actor (paper-faithful
  /// default) or a shared worker pool.
  SchedulerKind scheduler = SchedulerKind::kThreadPerActor;
  /// Worker threads of the pooled scheduler; <= 0 means one per hardware
  /// thread.  Ignored under kThreadPerActor.
  int workers = 0;
  /// Messages a pooled worker drains per actor claim — the whole batch
  /// costs one mailbox lock acquisition (Mailbox::drain).  <= 0 means the
  /// default of 64.  Ignored under kThreadPerActor.
  int pool_batch = 0;
  /// Elastic re-deployment: run a ReconfigController that samples measured
  /// rates every `reconfig_period` seconds, re-runs Algorithms 1-3 on them
  /// and switches epochs when the predicted throughput gain exceeds
  /// `reconfig_threshold` (relative; 0.10 = 10%).
  bool elastic = false;
  double reconfig_period = 0.5;
  double reconfig_threshold = 0.10;
  /// End-to-end p99 latency SLO in seconds (0 = none).  With `elastic`
  /// set, the controller meters end-to-end latency from the start of the
  /// run, feeds the measured windowed p99 into reoptimize(), and
  /// re-deploys on SLO breach even when the throughput gain alone would
  /// not justify a fence (the repair path adds replicas past ceil(rho) to
  /// drain queueing delay).
  double slo_p99 = 0.0;
  /// Objective handed to the controller's re-optimization (and recorded in
  /// the predictions attached to RunStats / metrics lines).
  Objective objective = Objective::kThroughput;
  /// When non-empty, a MetricsExporter appends one JSON metrics snapshot
  /// per line to this file every `metrics_period` seconds (rates, measured
  /// ρ, blocked fraction, queue depths, latency percentiles, scheduler
  /// counters).  Busy/blocked metering is then enabled for the whole run,
  /// not only the steady-state window.
  std::string metrics_path;
  double metrics_period = 0.5;
  /// Epoch checkpointing (checkpoint.hpp): when `checkpoint_dir` is
  /// non-empty, a CheckpointController snapshots the quiesced graph every
  /// `checkpoint_period` seconds through the fence barrier, keeping the
  /// last `checkpoint_retain` snapshots.  The directory is created and
  /// probed at construction — an unusable path throws before the run
  /// starts.  A successful run additionally writes `final.bin` with the
  /// complete end-of-run state.
  std::string checkpoint_dir;
  double checkpoint_period = 1.0;
  int checkpoint_retain = CheckpointManager::kDefaultRetain;
  /// Crash recovery: restore this checkpoint before the run starts — the
  /// deployment argument is replaced by the checkpoint's, operator state
  /// and rng lanes are restored, and sources rewind (skip) to the recorded
  /// offsets so the run resumes the exact uninterrupted stream.
  std::shared_ptr<const Checkpoint> recover_from;
  /// Online profile estimation (runtime/profiler.hpp): when telemetry is
  /// on (elastic runs, metrics-exporting runs, --stats-port runs), a
  /// ProfileEstimator reconstructs non-blocking service rates from busy
  /// slices and queue-occupancy probes and attributes backpressure to its
  /// root cause.  `profile = false` turns the estimator off (A/B
  /// baseline; the elastic controller then falls back to busy-time rates).
  bool profile = true;
  /// Fold cadence of the estimator, seconds; multiplied by the tenant
  /// count when several engines share one SchedulerHost.
  double profile_period = 0.25;
  /// Live stats endpoint: serve Prometheus text (/metrics) and a JSON
  /// snapshot (/stats.json) on 127.0.0.1:<stats_port> for the duration of
  /// the run.  0 = off; an unusable port throws before the run starts.
  int stats_port = 0;
  /// Multi-tenant execution: when set, this engine does not own a worker
  /// pool — every epoch registers its actors as a tenant of the shared
  /// host (scheduler_host.hpp) and `scheduler`/`workers`/`pool_batch` are
  /// ignored.  The host must outlive the engine's run.
  SchedulerHost* host = nullptr;
  /// Tenant label: tags this engine's trace events and metrics lines, and
  /// names it in the host's telemetry.  Empty = untagged (single-tenant).
  std::string tenant;
  /// Stride-scheduling weight of this tenant on the shared host (> 0);
  /// relative CPU share against the other tenants when all stay ready.
  double tenant_weight = 1.0;
};

/// Produces the processing logic of each logical operator.
struct AppFactory {
  std::function<std::unique_ptr<SourceLogic>(OpIndex, const OperatorSpec&)> source;
  std::function<std::unique_ptr<OperatorLogic>(OpIndex, const OperatorSpec&)> logic;
};

/// Factory realizing every operator synthetically from its profiled spec
/// (timed-wait service, statistical selectivity).  `max_items < 0` means an
/// unbounded source cut off by the run duration.
AppFactory synthetic_factory(double time_scale = 1.0, std::int64_t max_items = -1);

class Engine final : public EngineCore {
 public:
  Engine(const Topology& t, Deployment deployment, AppFactory factory, EngineConfig config = {});
  ~Engine() override;

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Runs for `duration`, measuring rates in the post-warmup window, then
  /// stops the source and drains.  Callable once per Engine instance.
  /// If any operator logic threw, the run is aborted and the first error
  /// is rethrown as ss::Error after all threads joined.
  RunStats run_for(std::chrono::duration<double> duration);

  /// Runs until the source ends by itself (finite SourceLogic) or
  /// `max_duration` elapses; measures over the whole run.
  RunStats run_until_complete(std::chrono::duration<double> max_duration);

  /// Switches the running graph to `next` without losing a tuple: fence
  /// tokens quiesce every actor at a tuple boundary (the source keeps
  /// generating into a bounded buffer meanwhile), actors of unchanged
  /// operators carry over with mailboxes and state untouched, the key
  /// state of changed partitioned-stateful operators migrates to its new
  /// owners, and a fresh scheduler resumes.  Returns false — without
  /// switching — when the run has not started, is stopping, or the source
  /// already finished.  Thread-safe against the run's own stop path; at
  /// most one reconfiguration runs at a time.
  bool reconfigure(const Deployment& next);

  /// Takes one checkpoint now: arms the fence barrier, waits for the graph
  /// to quiesce at a tuple boundary, serializes the cut to the checkpoint
  /// directory and resumes the *same* epoch in place (no deployment
  /// change, no epoch bump).  Returns false — without snapshotting — when
  /// checkpointing is off, the run has not started, is stopping, or the
  /// source already finished; also false when the snapshot write failed
  /// (the failure is recorded and surfaces from the run like an operator
  /// exception, but the graph still resumes and drains — a bad disk never
  /// stalls the stream).  Thread-safe, same serialization as reconfigure().
  bool checkpoint_now();

  /// Asks a running engine to stop: sources stop emitting, the pipeline
  /// drains through the shutdown protocol (no tuple in flight is lost),
  /// and the blocked run_until_complete() returns.  The hot-retire hook of
  /// multi-tenant groups (tenants.hpp); safe from any thread, idempotent.
  /// Called before the run starts, the run drains immediately on start.
  void request_stop();

  [[nodiscard]] const Topology& topology() const { return topology_; }
  /// The deployment of the current epoch (by value: the epoch may swap).
  [[nodiscard]] Deployment deployment() const;
  [[nodiscard]] const ActorGraph& graph() const { return epoch_->graph; }
  /// Counter totals right now — the controller's sampling hook.  Carries
  /// busy/blocked telemetry whenever metering is on (elastic runs and
  /// metrics-exporting runs keep it on end to end).
  [[nodiscard]] CounterSnapshot sample() const;
  /// The shared measurement board — the controller's latency hook
  /// (end_to_end_snapshot / end_to_end_since for windowed p99).
  [[nodiscard]] const StatsBoard& stats_board() const { return board_; }
  /// Model predictions (Alg. 1 + estimate_latency) for the deployment of
  /// the current epoch; recomputed at every switch-over.
  [[nodiscard]] PredictedLatency predicted_latency() const;
  /// Everything the metrics exporter writes per line, cumulative.
  [[nodiscard]] MetricsSample metrics_sample() const;
  /// Work-stealing / batching counters summed over every epoch so far
  /// (all zero under thread-per-actor).
  [[nodiscard]] SchedulerCounters scheduler_counters() const;
  /// Epochs this engine has run (1 + completed reconfigurations).
  [[nodiscard]] int epochs() const { return epoch_counter_.load(std::memory_order_relaxed); }
  /// The elastic controller, when EngineConfig::elastic is set and the run
  /// started; its decision log outlives the run.
  [[nodiscard]] const ReconfigController* controller() const { return controller_.get(); }
  /// Snapshots persisted this run (zero with checkpointing off).
  [[nodiscard]] std::uint64_t checkpoints_written() const {
    return checkpoints_written_.load(std::memory_order_relaxed);
  }
  /// Engine epoch of the newest persisted snapshot (0 = none yet).
  [[nodiscard]] std::uint64_t last_epoch_persisted() const {
    return last_epoch_persisted_.load(std::memory_order_relaxed);
  }
  /// Epoch the run was restored from (EngineConfig::recover_from; 0 = fresh).
  [[nodiscard]] std::uint64_t recovered_from_epoch() const { return recovered_from_epoch_; }
  /// The checkpoint directory manager (null with checkpointing off).
  [[nodiscard]] const CheckpointManager* checkpoint_manager() const {
    return checkpoint_mgr_.get();
  }
  /// The online profile estimator (null when EngineConfig::profile is off
  /// or the run carries no telemetry); the controller's estimate hook.
  [[nodiscard]] const ProfileEstimator* profiler() const { return profiler_.get(); }

 private:
  struct ActorState;

  /// One instantiation of a Deployment: the actors and the scheduler that
  /// runs them.  reconfigure() builds the next epoch from the previous one
  /// (carrying unchanged actors over, migrating key state) and swaps.
  struct EpochState {
    Deployment deployment;
    ActorGraph graph;
    std::vector<std::unique_ptr<ActorState>> actors;
    std::unique_ptr<Scheduler> scheduler;
  };

  // --- EngineCore: the surface the scheduler drives
  std::size_t num_actors() const override { return epoch_->actors.size(); }
  bool is_source(std::size_t id) const override;
  int incoming_channels(std::size_t id) const override;
  Mailbox& mailbox(std::size_t id) override;
  void run_actor(std::size_t id) override;
  bool pump_source(std::size_t id, int quantum) override;
  void process_message(std::size_t id, Message& m) override;
  void begin_output_batch(std::size_t id) override;
  void flush_output_batch(std::size_t id) override;
  bool begin_batch_meter(std::size_t id) override;
  void end_batch_meter(std::size_t id) override;
  void finish_actor(std::size_t id) override;
  void report_failure(std::size_t id, const std::string& what) override;
  bool actor_retired(std::size_t id) const override;
  void actor_done(std::size_t id) override;
  bool stop_requested() const override { return stop_.load(std::memory_order_relaxed); }

  /// Instantiates `deployment` as a new epoch.  `prev` (when non-null) is
  /// the quiesced previous epoch: actors of operators unchanged per `diff`
  /// are moved over whole, changed partitioned-stateful operators get
  /// fresh logic with per-key state migrated in.
  std::unique_ptr<EpochState> build_epoch(Deployment deployment, ActorGraph graph,
                                          EpochState* prev, const DeploymentDiff* diff);
  /// Instantiates fresh logic (and emitter routing state) for one actor.
  void init_actor_logic(ActorState& state, const ActorSpec& spec,
                        const Deployment& deployment);
  /// Moves per-key state of changed partitioned operators from `prev` into
  /// the new epoch's logic instances.
  void migrate_state(EpochState& next, EpochState& prev, const DeploymentDiff& diff);

  /// The execution backend of one epoch: a scheduler of `config_.scheduler`
  /// kind, or — multi-tenant — a tenant registration on `config_.host`.
  std::unique_ptr<Scheduler> make_epoch_scheduler();
  void start_execution();
  void join_execution();
  /// Stops the controller (an in-flight switch-over completes first), then
  /// raises the stop flag under the epoch lock so no new switch-over starts.
  void stop_run();
  void actor_loop(std::size_t id);
  void source_loop(std::size_t id);
  /// Next item for the source actor: replays the fence buffer of the
  /// previous epoch first, then pulls from the SourceLogic.
  bool next_source_item(ActorState& st, Tuple& tuple);
  /// Source-side fence: forwards fence tokens downstream, keeps generating
  /// into the bounded fence buffer while the rest of the graph drains, and
  /// retires once the switch-over releases it.
  void source_fence(std::size_t id);
  /// A fence token arrived on one input channel of `id`.
  void on_fence_token(std::size_t id);
  /// `id` passed the fence: forward tokens downstream, retire, count.
  void pass_fence(std::size_t id);
  /// Counts `id` toward fence completion exactly once (fence_mutex_ held).
  void count_fence_locked(ActorState& st);
  /// Seconds since the run started (the time base of Tuple::ts stamps).
  // metering_now: this stamp feeds Tuple::ts and every latency/telemetry
  // sample, so the cheap TSC clock keeps the per-tuple cost low (clock.hpp).
  double run_seconds() const { return seconds_between(run_start_, metering_now()); }
  /// Records the source→operator delay of a data message about to be
  /// processed (steady-state window only; no-op while metering is off).
  /// The overload taking `now` shares the caller's clock read (the busy
  /// metering around the logic dispatch already read it).
  void meter_arrival(OpIndex op, const Message& msg);
  void meter_arrival(OpIndex op, const Message& msg, Clock::time_point now);
  /// Fills the per-op queue depth / high-water columns of a snapshot from
  /// the live mailboxes (takes the epoch lock; peaks fold prior epochs).
  void fill_queue_stats(CounterSnapshot& snap) const;
  /// Per-op replica counts of the current epoch (ρ normalization).
  std::vector<int> replica_counts() const;
  /// Restarts every mailbox's high-water tracking (window open).
  void reset_queue_peaks();
  /// Records the end-to-end delay of a tuple leaving the system at a sink.
  void meter_exit(const Tuple& tuple);
  /// Serializes the quiesced graph (epoch_mutex_ held, scheduler joined or
  /// never started): deployment, source offsets, rng lanes, logic blobs.
  Checkpoint capture_checkpoint();
  /// Restores `cp` into the freshly built epoch (constructor only): rng
  /// lanes, emitter cursors, logic state, source rewind to the offsets.
  void apply_recovery(const Checkpoint& cp);
  /// End-of-run state snapshot (dir/final.bin) after a clean drain; no-op
  /// with checkpointing off or after a failure.
  void write_final_checkpoint();
  RunStats finalize_run();
  bool send_to_actor(int actor_id, const Message& m);
  /// Appends a data message to the calling thread's output stage when one
  /// is armed for this engine (consecutive same-destination messages leave
  /// as one MessageBatch).  `count_emit` marks deliveries that should be
  /// counted as emissions of `m.from` at flush time.  Returns false when
  /// no stage is armed — the caller delivers directly.
  bool stage_message(int actor_id, const Message& m, bool count_emit);
  /// Delivers the calling thread's staged batch (Mailbox::try_send_batch
  /// fast path, per-message blocking deliver for the remainder).  Called
  /// on every path that sends a control token so data never overtakes.
  void flush_stage();
  /// Routes a result of logical operator `op` (explicit `target` or
  /// probabilistic when kInvalidOp) and delivers it; returns true when the
  /// result was delivered (or absorbed at a sink edge).
  bool route_result(OpIndex op, OpIndex target, const Tuple& tuple, Rng& rng);
  void run_meta(std::size_t id, OpIndex member, const Tuple& tuple, OpIndex from);
  void release_ordered(ActorState& st);
  ActorState& actor(std::size_t id) { return *epoch_->actors[id]; }
  const ActorState& actor(std::size_t id) const { return *epoch_->actors[id]; }

  class RouteCollector;
  class ReplicaCollector;
  class MetaCollector;

  Topology topology_;
  AppFactory factory_;
  EngineConfig config_;
  StatsBoard board_;
  /// Busy/blocked-time accumulators, attached to board_ so snapshots and
  /// the window gate cover counters, latency and telemetry together.
  TelemetryBoard telemetry_;
  std::vector<EdgeRouter> routers_;  // per logical operator (epoch-invariant)
  Rng master_rng_;                   ///< split per actor at epoch build
  std::unique_ptr<EpochState> epoch_;
  /// Predictions for epoch_'s deployment (epoch_mutex_; see
  /// predicted_latency()).
  PredictedLatency predicted_;
  std::unique_ptr<ReconfigController> controller_;
  // --- epoch checkpointing (EngineConfig::checkpoint_dir)
  std::unique_ptr<CheckpointManager> checkpoint_mgr_;
  std::unique_ptr<CheckpointController> checkpoint_controller_;
  /// Per-source items already replayed before this run (recovery rewind);
  /// the checkpointed offset is base + items delivered this run.
  std::vector<std::uint64_t> source_base_offset_;
  std::atomic<std::uint64_t> checkpoints_written_{0};
  std::atomic<std::uint64_t> last_epoch_persisted_{0};
  std::uint64_t recovered_from_epoch_ = 0;
  /// JSONL metrics writer (EngineConfig::metrics_path); declared after
  /// epoch_ so its stop() (final sample) runs before the epoch dies.
  std::unique_ptr<MetricsExporter> exporter_;
  /// Online profile estimator (EngineConfig::profile + telemetry on);
  /// registered as the telemetry board's BlockedEdgeSink while running.
  std::unique_ptr<ProfileEstimator> profiler_;
  /// Live stats endpoint (EngineConfig::stats_port); declared after the
  /// members its request sampler reads.
  std::unique_ptr<StatsServer> stats_server_;
  std::atomic<bool> stop_{false};
  std::atomic<int> active_actors_{0};
  std::mutex failure_mutex_;
  std::string first_failure_;  ///< first actor exception message, if any
  std::mutex done_mutex_;
  std::condition_variable done_cv_;
  Clock::time_point run_start_{};
  std::atomic<bool> started_{false};
  /// Interned EngineConfig::tenant for trace tagging (nullptr = untagged).
  const char* tenant_tag_ = nullptr;

  // --- epoch switch-over (reconfigure)
  /// Serializes reconfigure() against the run's stop path: stop never
  /// interrupts a switch-over halfway and a switch-over never starts once
  /// the run is stopping.  Mutable: deployment() is a const observer.
  mutable std::mutex epoch_mutex_;
  /// True between "old epoch quiesced" and "new epoch started": tells
  /// run_until_complete() that active_actors_ == 0 is not completion.
  std::atomic<bool> swap_in_progress_{false};
  std::atomic<int> epoch_counter_{1};
  std::atomic<std::uint64_t> keys_migrated_{0};
  std::uint64_t dropped_prior_epochs_ = 0;  ///< mailbox drops of replaced actors
  /// Telemetry folded in from epochs that already died (epoch_mutex_):
  /// per-op queue high-water marks and the old schedulers' counters.
  std::vector<std::size_t> queue_peak_prior_;
  SchedulerCounters sched_counters_prior_;
  std::uint64_t ring_enqueues_prior_ = 0;  ///< ring traffic of replaced actors
  std::uint64_t ring_spills_prior_ = 0;

  // --- fence/drain barrier state
  std::atomic<bool> fence_active_{false};
  mutable std::mutex fence_mutex_;  ///< guards the fence counters below
  std::condition_variable fence_cv_;
  std::size_t fence_passed_ = 0;    ///< non-source actors quiesced so far
  std::size_t fence_expected_ = 0;  ///< non-source actors this epoch
  bool fence_release_sources_ = false;  ///< graph quiesced; sources may retire
  /// Items the source generated while a fence was in flight; the next
  /// epoch's source replays them first.  Bounded by mailbox_capacity.
  std::deque<Tuple> fence_buffer_;
  bool source_exhausted_ = false;   ///< SourceLogic::next() returned false mid-fence
  std::atomic<bool> source_finished_{false};  ///< source completed normally
};

}  // namespace ss::runtime
