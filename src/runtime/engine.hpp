// The actor core: builds the actor graph of a deployment, dispatches
// messages to operator logic, measures steady-state rates, and drains the
// topology deterministically on stop.  *How* actors get CPU time is
// delegated to a Scheduler (scheduler.hpp): one dedicated thread per actor
// (the configuration the paper evaluates in §5.1, the default) or a shared
// worker pool multiplexing N actors onto K workers.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "core/topology.hpp"
#include "runtime/clock.hpp"
#include "runtime/mailbox.hpp"
#include "runtime/metrics.hpp"
#include "runtime/operator.hpp"
#include "runtime/plan.hpp"
#include "runtime/routing.hpp"
#include "runtime/scheduler.hpp"

namespace ss::runtime {

struct EngineConfig {
  /// Mailbox capacity of every actor (Akka BoundedMailbox equivalent).
  std::size_t mailbox_capacity = 64;
  /// Blocking-send timeout after which an item is dropped; the paper uses
  /// five seconds, far above any service time, so drops never happen.
  std::chrono::duration<double> send_timeout{5.0};
  /// Fraction of a run_for() duration treated as warmup before the
  /// steady-state measurement window opens.
  double warmup_fraction = 0.3;
  /// Seed for routing/selection randomness.
  std::uint64_t seed = 42;
  /// When true, the emitter of a partitioned-stateful operator samples the
  /// tuple key from the operator's key distribution (synthetic workloads);
  /// when false the tuple's own key is hashed through the partition map.
  bool assign_keys_at_emitter = true;
  /// Full-mailbox behaviour: backpressure (default, what the cost models
  /// assume) or load shedding (drop-newest; an alternative §2 discusses).
  OverflowPolicy overflow = OverflowPolicy::kBlockAfterService;
  /// When true, collectors of replicated operators release results in the
  /// order the inputs entered the emitter (paper §2: "proper approaches
  /// for item scheduling and collection, to preserve the sequential
  /// ordering").  Costs one marker message per input item.
  bool preserve_replica_order = false;
  /// Execution backend: dedicated thread per actor (paper-faithful
  /// default) or a shared worker pool.
  SchedulerKind scheduler = SchedulerKind::kThreadPerActor;
  /// Worker threads of the pooled scheduler; <= 0 means one per hardware
  /// thread.  Ignored under kThreadPerActor.
  int workers = 0;
  /// Messages a pooled worker drains per actor claim — the whole batch
  /// costs one mailbox lock acquisition (Mailbox::drain).  <= 0 means the
  /// default of 64.  Ignored under kThreadPerActor.
  int pool_batch = 0;
};

/// Produces the processing logic of each logical operator.
struct AppFactory {
  std::function<std::unique_ptr<SourceLogic>(OpIndex, const OperatorSpec&)> source;
  std::function<std::unique_ptr<OperatorLogic>(OpIndex, const OperatorSpec&)> logic;
};

/// Factory realizing every operator synthetically from its profiled spec
/// (timed-wait service, statistical selectivity).  `max_items < 0` means an
/// unbounded source cut off by the run duration.
AppFactory synthetic_factory(double time_scale = 1.0, std::int64_t max_items = -1);

class Engine final : public EngineCore {
 public:
  Engine(const Topology& t, Deployment deployment, AppFactory factory, EngineConfig config = {});
  ~Engine() override;

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Runs for `duration`, measuring rates in the post-warmup window, then
  /// stops the source and drains.  Callable once per Engine instance.
  /// If any operator logic threw, the run is aborted and the first error
  /// is rethrown as ss::Error after all threads joined.
  RunStats run_for(std::chrono::duration<double> duration);

  /// Runs until the source ends by itself (finite SourceLogic) or
  /// `max_duration` elapses; measures over the whole run.
  RunStats run_until_complete(std::chrono::duration<double> max_duration);

  [[nodiscard]] const ActorGraph& graph() const { return graph_; }

 private:
  struct ActorState;

  // --- EngineCore: the surface the scheduler drives
  std::size_t num_actors() const override { return actors_.size(); }
  bool is_source(std::size_t id) const override;
  int incoming_channels(std::size_t id) const override;
  Mailbox& mailbox(std::size_t id) override;
  void run_actor(std::size_t id) override;
  bool pump_source(std::size_t id, int quantum) override;
  void process_message(std::size_t id, Message& m) override;
  void finish_actor(std::size_t id) override;
  void report_failure(std::size_t id, const std::string& what) override;
  void actor_done() override;
  bool stop_requested() const override { return stop_.load(std::memory_order_relaxed); }

  void start_execution();
  void join_execution();
  void actor_loop(std::size_t id);
  void source_loop(std::size_t id);
  /// Seconds since the run started (the time base of Tuple::ts stamps).
  double run_seconds() const { return seconds_between(run_start_, Clock::now()); }
  /// Records the source→operator delay of a data message about to be
  /// processed (steady-state window only; no-op while metering is off).
  void meter_arrival(OpIndex op, const Message& msg);
  /// Records the end-to-end delay of a tuple leaving the system at a sink.
  void meter_exit(const Tuple& tuple);
  RunStats finalize_run();
  bool send_to_actor(int actor_id, const Message& m);
  /// Routes a result of logical operator `op` (explicit `target` or
  /// probabilistic when kInvalidOp) and delivers it; returns true when the
  /// result was delivered (or absorbed at a sink edge).
  bool route_result(OpIndex op, OpIndex target, const Tuple& tuple, Rng& rng);
  void run_meta(std::size_t id, OpIndex member, const Tuple& tuple, OpIndex from);
  void release_ordered(ActorState& st);

  class RouteCollector;
  class ReplicaCollector;
  class MetaCollector;

  Topology topology_;
  Deployment deployment_;
  AppFactory factory_;
  EngineConfig config_;
  ActorGraph graph_;
  StatsBoard board_;
  std::vector<EdgeRouter> routers_;  // per logical operator
  std::vector<std::unique_ptr<ActorState>> actors_;
  std::unique_ptr<Scheduler> scheduler_;
  std::atomic<bool> stop_{false};
  std::atomic<int> active_actors_{0};
  std::mutex failure_mutex_;
  std::string first_failure_;  ///< first actor exception message, if any
  std::mutex done_mutex_;
  std::condition_variable done_cv_;
  Clock::time_point run_start_{};
  bool started_ = false;
};

}  // namespace ss::runtime
