// The data item flowing through the runtime.
//
// The paper's operators work on tuples: records of attributes.  We use a
// small fixed-size POD so items are cheap to copy through mailboxes; four
// numeric fields cover every bundled operator (filters, arithmetic maps,
// windowed aggregates, 2-D skylines, band joins on one attribute...).
#pragma once

#include <array>
#include <cstdint>

namespace ss::runtime {

struct Tuple {
  /// Monotonic sequence number assigned by the source.
  std::int64_t id = 0;
  /// Partitioning key (meaningful to partitioned-stateful operators).
  std::int64_t key = 0;
  /// Event timestamp, seconds since the run started.
  double ts = 0.0;
  /// Generic numeric attributes; meaning is operator-defined.
  std::array<double, 4> f{};
};

}  // namespace ss::runtime
