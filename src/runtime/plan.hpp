// Mapping from the logical topology (plus optimizer decisions) to the actor
// graph executed by the engine (paper §4.2, Fig. 6: actors are *executors*
// of logical operators).
//
//   * plain operator                -> one worker actor
//   * replicated operator (fission) -> emitter + N replicas + collector
//   * fused sub-graph (fusion)      -> one meta actor running Alg. 4
//
// The actor graph also fixes the channel-token barrier protocol: every
// actor knows how many incoming channels it has and forwards one token per
// outgoing channel once it saw a token on all of its inputs.  Two token
// kinds ride this barrier: the end-of-stream shutdown token (the actor
// flushes its logic and exits — topologies drain deterministically without
// losing in-flight items) and the *fence* token used by elastic
// re-deployment (the actor quiesces at a tuple boundary and retires, its
// state surviving for migration into the next epoch; see engine.hpp).
#pragma once

#include <string>
#include <vector>

#include "core/deployment.hpp"
#include "core/fusion.hpp"
#include "core/key_partitioning.hpp"
#include "core/steady_state.hpp"
#include "core/topology.hpp"

namespace ss::runtime {

/// The deployment description itself lives in core (core/deployment.hpp)
/// so the optimizer can produce and diff deployments without linking the
/// runtime; the runtime keeps the historical alias.
using Deployment = ss::Deployment;

enum class ActorKind : std::uint8_t {
  kSource,     ///< generates the stream (logical source operator)
  kWorker,     ///< executes one unreplicated logical operator
  kEmitter,    ///< distributes items to the replicas of one operator
  kReplica,    ///< one replica of a replicated operator
  kCollector,  ///< merges replica outputs and performs the logical routing
  kMeta,       ///< executes a fused sub-graph (Algorithm 4)
};

/// Static description of one actor.
struct ActorSpec {
  ActorKind kind = ActorKind::kWorker;
  /// Owning logical operator (front-end member for kMeta).
  OpIndex op = kInvalidOp;
  /// Replica ordinal for kReplica, -1 otherwise.
  int replica = -1;
  /// Fused members in topological order (kMeta only).
  std::vector<OpIndex> members;
  std::string name;
  /// Target actor ids, one entry per outgoing channel (shutdown tokens are
  /// sent per channel; duplicates are meaningful).
  std::vector<int> downstream;
  /// Number of incoming channels (expected shutdown tokens).
  int incoming_channels = 0;
};

/// The complete actor-level deployment of a topology.
class ActorGraph {
 public:
  /// Validates `deployment` against `t` (legal fusions, disjoint groups,
  /// no replication of the source or of fused members) and builds the
  /// graph.  Throws ss::Error on violations.
  static ActorGraph build(const Topology& t, const Deployment& deployment);

  std::vector<ActorSpec> actors;
  /// Logical operator -> actor receiving its input items.
  std::vector<int> entry;
  /// Logical operator -> actor emitting its results.
  std::vector<int> exit;
  /// Logical operator -> index into Deployment::fusions, or -1.
  std::vector<int> group_of;
  int source_actor = -1;

  [[nodiscard]] std::size_t num_actors() const { return actors.size(); }
};

}  // namespace ss::runtime
