// SchedulerHost: the shared worker pool that runs *tenants* — multiple
// actor-sets (one per Engine epoch) multiplexed onto one set of K worker
// threads.  This inverts the pre-multi-tenant ownership: the pool no longer
// belongs to a scheduler that belongs to an engine; engines register with
// the host and the host owns the threads, the parking machinery, the
// blocking-compensation budget and the per-tenant work-stealing deques.
//
// Tenancy model:
//   * each tenant keeps its own WorkStealingQueues (per-tenant ready
//     queues), actor claim slots, affinity hints and drain-batch counters,
//     so tenant telemetry stays separable and the counter ledger invariant
//     (pushes == local_pops + steals + discarded) holds per tenant;
//   * dispatch across tenants is *stride scheduling*: tenant i advances a
//     pass counter by scale/weight_i per claimed actor batch, and a free
//     worker serves the ready tenant with the smallest pass.  Weights set
//     the long-run CPU share; every ready tenant has finite pass distance
//     to the front, so no tenant starves.  A tenant waking from idle has
//     its pass clamped up to the host's pass clock so it cannot monopolize
//     workers by replaying the credit it accumulated while idle;
//   * workers park on one host-level condition variable keyed on the total
//     pending hint count over all tenants (same lost-wakeup-free protocol
//     as WorkStealingQueues);
//   * hot attach/detach: a tenant joins or leaves while the other tenants
//     keep running.  Engines drive retirement through their own fence/
//     drain barrier; the host only requires that a tenant is drained
//     (every actor finished or retired) before detach.
//
// The single-tenant configuration *is* the pooled scheduler:
// make_pooled_scheduler() wraps a private one-tenant host, so the
// dispatcher semantics the scheduler tests pin down are the host's
// semantics.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "runtime/scheduler.hpp"
#include "runtime/work_stealing.hpp"

namespace ss::runtime {

class SchedulerHost {
 public:
  struct Tenant;  // opaque to callers; defined in scheduler_host.cpp
  /// Handle to a registered tenant.  Shared ownership: workers may hold a
  /// reference briefly after detach (they stop touching the engine the
  /// moment every actor slot is done).
  using TenantId = std::shared_ptr<Tenant>;

  /// `workers <= 0` means one per hardware thread; `batch <= 0` means the
  /// default drain batch of 64 messages per actor claim; `pin` maps worker
  /// threads to CPUs (best-effort: warns once and continues unpinned when
  /// sched_setaffinity is unavailable).
  explicit SchedulerHost(int workers = 0, int batch = 0,
                         PinMode pin = PinMode::kNone);
  ~SchedulerHost();

  SchedulerHost(const SchedulerHost&) = delete;
  SchedulerHost& operator=(const SchedulerHost&) = delete;

  /// Registers `core` as a tenant and makes its sources runnable.  `label`
  /// tags the tenant's trace events; `weight` (> 0) is its stride-
  /// scheduling share relative to the other tenants.  The first attach
  /// spawns the worker threads.  `core` must stay valid until wait_drained
  /// + detach.
  TenantId attach(EngineCore& core, std::string label, double weight = 1.0);

  /// Blocks until every actor of the tenant finished or retired.
  void wait_drained(const TenantId& tenant);

  /// Unregisters a *drained* tenant: its residual ready-hints become stale
  /// (counted as discarded) and workers stop touching its engine.  The
  /// other tenants keep running undisturbed.
  void detach(const TenantId& tenant);

  /// The tenant's scheduler telemetry: its own queue/batch counters plus
  /// the host-level park/wakeup counts (parking is shared machinery, so
  /// the park columns are per host, not per tenant).
  [[nodiscard]] SchedulerCounters tenant_counters(const TenantId& tenant) const;

  /// The runnable-worker budget K.
  [[nodiscard]] int workers() const { return target_; }
  /// Tenants currently attached.
  [[nodiscard]] std::size_t num_tenants() const;

  /// Sampling-cadence scale for per-tenant background samplers (the
  /// online profiler's fold loop): with N tenants sharing the pool, each
  /// tenant stretches its period N× so the combined probe pressure on
  /// the workers stays what a single tenant would generate.
  [[nodiscard]] double sampling_period_scale() const {
    const std::size_t n = num_tenants();
    return n > 1 ? static_cast<double>(n) : 1.0;
  }

  /// Cooperative blocking compensation (BlockingSection): a worker about
  /// to park inside operator/engine code reports in so the host can keep K
  /// *runnable* workers draining.
  void blocking_begin();
  void blocking_end();

 private:
  void ensure_started();
  void spawn_locked();
  void maybe_spawn_locked();
  void worker_loop(std::size_t self);
  bool run_one(std::size_t self);
  void run_actor_slot(const TenantId& t, std::size_t self, std::size_t id);
  void complete(Tenant& t, std::size_t id, bool run_finish);
  void enqueue(const TenantId& t, std::size_t id);
  void wake_or_spawn();

  int target_;           ///< runnable-worker budget (K)
  int batch_;            ///< messages drained per actor claim
  PinMode pin_;          ///< worker-to-CPU mapping (--pin)
  int max_threads_ = 0;  ///< cap: target_ + sum of active tenants' actors

  /// Guards the tenant list.  Workers scan under a shared lock; attach/
  /// detach take it exclusively, which is what makes detach safe without
  /// hazard pointers: no worker can be mid-scan over a leaving tenant.
  mutable std::shared_mutex tenants_mu_;
  std::vector<TenantId> tenants_;

  /// Stride-scheduling clock: the largest pass any dispatch advanced to.
  /// Tenants waking from idle clamp their pass up to it (no credit replay).
  std::atomic<std::uint64_t> pass_clock_{0};

  /// Ready hints over all tenants (the park predicate).
  std::atomic<std::size_t> pending_{0};
  std::atomic<std::size_t> idle_{0};
  std::atomic<bool> shutdown_{false};
  std::mutex park_mu_;
  std::condition_variable park_cv_;
  std::atomic<std::uint64_t> parks_{0};
  std::atomic<std::uint64_t> wakeups_{0};

  std::mutex mu_;  ///< spawn/blocked bookkeeping + tenant drain counts
  std::condition_variable drained_cv_;
  std::vector<std::thread> threads_;
  int spawned_ = 0;
  int blocked_ = 0;  ///< workers inside a BlockingSection
  bool started_ = false;
};

/// Scheduler adapter running one engine epoch as a tenant of `host` (which
/// must outlive the adapter).  start() attaches, join() waits for the
/// drain and detaches; the host keeps serving its other tenants.
std::unique_ptr<Scheduler> make_hosted_scheduler(SchedulerHost& host, std::string label,
                                                 double weight = 1.0);

}  // namespace ss::runtime
