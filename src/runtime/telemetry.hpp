// Utilization & backpressure metering, and the machine-readable metrics
// exporter.
//
// Algorithm 1 predicts per-operator utilization ρ and backpressure-limited
// throughput; until this layer existed the runtime could only *report*
// rates and latency percentiles, never measure ρ itself.  TelemetryBoard
// closes that gap: every actor accumulates
//
//   busy-ns    — wall time inside OperatorLogic::process (for synthetic
//                operators this is the wait-realized service time, i.e.
//                exactly the model's 1/μ per item),
//   blocked-ns — wall time spent blocked in Mailbox::send under
//                Blocking-After-Service backpressure (charged to the
//                *sending* operator and subtracted from its busy time, so
//                busy is pure service),
//
// per steady-state window; idle is the remainder.  Measured ρ is then
// busy / (window × replicas) — directly comparable to the predicted ρ of
// steady_state(), which is what the new RunStats columns print.
//
// The blocked charge crosses a layer boundary (the mailbox does not know
// which operator is sending), so the engine pins a thread-local
// ActorContext around every slice of actor code it runs; the mailbox's
// blocking slow path — and only the slow path — reads the clock and
// charges the wait through it.  The fast path cost with metering enabled
// is two thread-local stores per message plus two clock reads.
//
// MetricsExporter is the machine-readable side: a background thread
// samples cumulative counters every period and appends one JSON object per
// line (rates, ρ, blocked fraction, queue depths, latency percentiles,
// scheduler counters) — the format bench/ and the harness reuse instead of
// ad-hoc printouts.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/topology.hpp"
#include "runtime/metrics.hpp"

namespace ss::runtime {

/// Receives per-edge blocked-on-send observations from the mailbox slow
/// path: `from` spent `ns` blocked pushing into `to`'s input buffer.  The
/// ProfileEstimator implements this to build the backpressure-attribution
/// graph without telemetry/mailbox depending on the profiler headers.
/// Implementations must be lock-free-ish: calls come from actor threads
/// that were already stalled, but still on the hot(ish) path.
class BlockedEdgeSink {
 public:
  virtual ~BlockedEdgeSink() = default;
  virtual void record_blocked_edge(OpIndex from, OpIndex to, std::uint64_t ns) = 0;
};

/// Per-operator busy/blocked nanosecond accumulators (lock-free; replicas
/// and meta-group members of one logical operator share an entry, exactly
/// like OpCounters).  Gated: accumulation only happens while enabled, so a
/// closed gate costs one relaxed load per message.
class TelemetryBoard {
 public:
  explicit TelemetryBoard(std::size_t num_ops) : cells_(num_ops) {}

  TelemetryBoard(const TelemetryBoard&) = delete;
  TelemetryBoard& operator=(const TelemetryBoard&) = delete;

  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }

  void add_busy(OpIndex op, std::uint64_t ns) {
    cells_[op].busy.fetch_add(ns, std::memory_order_relaxed);
  }
  void add_blocked(OpIndex op, std::uint64_t ns) {
    cells_[op].blocked.fetch_add(ns, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t busy_ns(OpIndex op) const {
    return cells_[op].busy.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t blocked_ns(OpIndex op) const {
    return cells_[op].blocked.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t size() const { return cells_.size(); }

  /// Attaches the per-edge blocked-time listener (the profiler).  Not
  /// owned; must outlive its registration (the engine clears it before
  /// destroying the profiler).  Atomic so registration can race the
  /// mailbox slow path safely.
  void set_blocked_sink(BlockedEdgeSink* sink) {
    sink_.store(sink, std::memory_order_release);
  }
  [[nodiscard]] BlockedEdgeSink* blocked_sink() const {
    return sink_.load(std::memory_order_acquire);
  }

 private:
  struct Cell {
    std::atomic<std::uint64_t> busy{0};
    std::atomic<std::uint64_t> blocked{0};
  };
  std::vector<Cell> cells_;  ///< fixed: atomics are not movable
  std::atomic<bool> enabled_{false};
  std::atomic<BlockedEdgeSink*> sink_{nullptr};
};

/// Pins "this thread is currently executing operator `op`" so that
/// Mailbox::send can charge blocked-on-send time to the right operator.
/// Scopes nest (a meta-group actor runs one member inside another's
/// dispatch): the constructor saves and the destructor restores the outer
/// context.  blocked_ns() reports the blocked time charged *within this
/// scope* — the engine subtracts it from the elapsed service time so busy
/// never double-counts backpressure waits.
class ScopedActorContext {
 public:
  ScopedActorContext(TelemetryBoard& board, OpIndex op) noexcept;
  ~ScopedActorContext();

  ScopedActorContext(const ScopedActorContext&) = delete;
  ScopedActorContext& operator=(const ScopedActorContext&) = delete;

  /// Blocked-on-send nanoseconds accumulated inside this scope so far.
  [[nodiscard]] std::uint64_t blocked_ns() const;

 private:
  struct Saved {
    TelemetryBoard* board;
    OpIndex op;
    std::uint64_t blocked_in_scope;
  } saved_;
};

/// True when the calling thread holds an ActorContext whose board is
/// enabled — the mailbox's wait path checks this before reading clocks.
[[nodiscard]] bool blocked_metering_enabled();

/// Charges `ns` of blocked-on-send time to the calling thread's current
/// actor context (no-op without one / with the gate closed).
void charge_blocked(std::uint64_t ns);

/// Like charge_blocked(ns), and additionally reports the blocked *edge*
/// (current actor context → `dest_op`) to the board's BlockedEdgeSink so
/// backpressure can be attributed to its root cause.  `dest_op` is the
/// logical owner of the mailbox the send stalled on; kInvalidOp degrades
/// to the plain charge.
void charge_blocked(std::uint64_t ns, OpIndex dest_op);

// ---------------------------------------------------------------- exporter

/// One cumulative sample of everything the runtime measures; the exporter
/// turns consecutive samples into rates and window fractions.
struct MetricsSample {
  CounterSnapshot counters;    ///< processed/emitted/busy/blocked/queues
  LatencyReport latency;       ///< cumulative percentile summaries
  SchedulerCounters scheduler;
  std::uint64_t dropped = 0;
  int epoch = 1;
  // --- epoch checkpointing (zero when checkpointing is off)
  std::uint64_t checkpoints_written = 0;
  std::uint64_t last_epoch_persisted = 0;
  std::uint64_t recovered_from_epoch = 0;
  /// Model predictions of the current epoch's deployment — written next to
  /// the measured percentiles (per-op pred_ms/pred_p99_ms, e2e pred_*).
  PredictedLatency predicted;
  /// Online profiler output (empty when no ProfileEstimator is attached):
  /// per-op non-blocking rate estimates and the backpressure ranking.
  std::vector<ProfileEstimate> profile;
  std::vector<BottleneckEntry> bottlenecks;
};

/// Background JSONL metrics writer: calls `sampler` every `period`
/// seconds and appends one JSON object per line to `path` — fields: t,
/// epoch, dropped, per-op {name, processed, emitted, proc_rate, emit_rate,
/// rho, blocked, queue, queue_peak, p50_ms, p95_ms, p99_ms, pred_ms,
/// pred_p99_ms}, e2e measured + predicted percentiles and sched counters.
/// Rates and fractions are deltas over the sampling period; percentiles
/// are cumulative.  A final sample is
/// written on stop().  Throws ss::Error from the constructor when `path`
/// cannot be opened.
class MetricsExporter {
 public:
  /// `tenant`, when non-empty, is written as a "tenant" field into every
  /// line so analysis scripts can separate apps sharing one host.
  MetricsExporter(std::function<MetricsSample()> sampler,
                  std::vector<std::string> op_names, const std::string& path,
                  double period_seconds, std::string tenant = {});
  ~MetricsExporter();

  MetricsExporter(const MetricsExporter&) = delete;
  MetricsExporter& operator=(const MetricsExporter&) = delete;

  void start();
  /// Writes the final sample, flushes and joins.  Idempotent.
  void stop();

  [[nodiscard]] std::size_t lines_written() const { return lines_; }

 private:
  struct Impl;
  void loop();
  void write_sample(const MetricsSample& sample);

  std::function<MetricsSample()> sampler_;
  std::vector<std::string> op_names_;
  double period_;
  std::string tenant_;  ///< tenant tag of every line; empty = untagged
  std::unique_ptr<Impl> impl_;  ///< the output stream (keeps <fstream> out)
  MetricsSample prev_;
  bool have_prev_ = false;
  std::size_t lines_ = 0;
  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> started_{false};
  // stop() wakes the sampling loop early through a condition variable in
  // Impl so shutdown never waits out a full period.
};

}  // namespace ss::runtime
