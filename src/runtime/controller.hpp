// The elastic re-deployment controller (the online closed loop over the
// paper's static pipeline).
//
// SpinStreams is deliberately static: Algorithms 1-3 pick replica counts
// and fusion groups once, from profiled characteristics, before the run.
// The runtime's StatsBoard measures the real per-operator rates — so the
// controller closes the loop: every `period` seconds it converts the
// counter deltas of the last window into a measured topology annotation,
// re-runs the Alg. 1/2/3 pipeline (core/optimizer reoptimize()), and when
// the predicted throughput gain of the recommended deployment clears a
// hysteresis threshold it asks the engine to switch epochs — fence, drain,
// migrate partitioned key state, resume — without losing a tuple.
//
// With a latency SLO (ReconfigOptions::optimize.slo_p99) the loop is also
// latency-closed: the windowed measured end-to-end p99 from the StatsBoard
// feeds reoptimize(), and a breach triggers a re-deployment toward a plan
// predicted to repair the tail even when the throughput gain alone would
// not justify the fence.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/optimizer.hpp"
#include "runtime/metrics.hpp"

namespace ss::runtime {

class Engine;

struct ReconfigOptions {
  /// Seconds between StatsBoard samples (one decision per window).
  double period = 0.5;
  /// Minimum predicted relative throughput gain before re-deploying
  /// (hysteresis; 0.10 = don't move for less than 10%).
  double threshold = 0.10;
  /// Minimum source items in a window for the measurement to be trusted.
  std::uint64_t min_samples = 50;
  /// Safety valve against oscillation: stop re-deploying after this many
  /// switch-overs (sampling continues).
  int max_redeployments = 16;
  /// Optimizer options for the re-run of Algorithms 1-3.  Fusion is off by
  /// default: re-fusing a live graph is legal but rarely worth a fence.
  AutoOptimizeOptions optimize{.bottleneck = {}, .fusion = {}, .enable_fusion = false};
  /// Minimum ProfileEstimator confidence before an estimated non-blocking
  /// service rate overrides the busy-time measurement of a window.  Below
  /// saturation busy-time rates under-estimate capacity (slice overhead
  /// amortized over few items), so confident estimates take precedence.
  double estimate_confidence = 0.5;
};

/// One sampling-window decision, kept for reporting and tests.
struct ReconfigDecision {
  double at_seconds = 0.0;            ///< window end, seconds since run start
  double measured_throughput = 0.0;   ///< source departure rate in the window
  double predicted_current = 0.0;     ///< Alg. 1 throughput of the running plan
  double predicted_next = 0.0;        ///< Alg. 1 throughput of the recommended plan
  double gain = 0.0;                  ///< predicted relative gain
  int ops_changed = 0;                ///< size of the deployment diff
  /// Operators whose window measurement was overridden by a confident
  /// sub-saturation profiler estimate (see ReconfigOptions).
  int ops_estimated = 0;
  bool redeployed = false;            ///< the switch-over was executed
  /// Measured end-to-end p99 of the window, seconds (0 = no samples).
  double measured_p99 = 0.0;
  /// Predicted end-to-end p99 of the recommended plan.
  double predicted_p99_next = 0.0;
  /// An SLO is set and the running deployment's p99 exceeded it.
  bool slo_breached = false;
  std::string reason;                 ///< why (not) — human-readable
};

/// Samples the engine's StatsBoard on a fixed period and triggers epoch
/// switch-overs through Engine::reconfigure().  Owned by the engine when
/// EngineConfig::elastic is set; start()/stop() bracket the run.
class ReconfigController {
 public:
  ReconfigController(Engine& engine, ReconfigOptions options);
  ~ReconfigController();

  ReconfigController(const ReconfigController&) = delete;
  ReconfigController& operator=(const ReconfigController&) = delete;

  void start();
  /// Stops and joins the sampling thread; an in-flight switch-over
  /// completes first.  Idempotent.
  void stop();

  [[nodiscard]] std::vector<ReconfigDecision> decisions() const;
  [[nodiscard]] int redeployments() const {
    return redeployments_.load(std::memory_order_relaxed);
  }

 private:
  void loop();
  ReconfigDecision evaluate_window();

  Engine& engine_;
  ReconfigOptions options_;
  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::atomic<int> redeployments_{0};
  mutable std::mutex mu_;           ///< guards decisions_ and the stop cv
  std::condition_variable stop_cv_;
  std::vector<ReconfigDecision> decisions_;
  CounterSnapshot prev_;  ///< counters at the start of the current window
  /// End-to-end histogram base at the start of the current window: the
  /// windowed measured p99 the SLO check feeds into reoptimize().
  HistogramSnapshot e2e_prev_;
};

}  // namespace ss::runtime
