// Execution scheduling behind the actor engine.
//
// The engine (engine.hpp) is the *actor core*: it owns the actor graph,
// message dispatch, routing, metering and the drain protocol.  How actors
// get CPU time is delegated to a Scheduler:
//
//   * ThreadPerActorScheduler — one dedicated thread per actor, blocking
//     mailbox receive.  This is the configuration the paper evaluates
//     (§5.1, one Akka actor per operator) and the default; its semantics
//     are byte-for-byte those of the original monolithic engine.
//   * PooledScheduler — multiplexes N actors onto K worker threads with
//     work stealing.  Workers never park on a per-mailbox condition
//     variable: each mailbox routes its empty→non-empty readiness hint
//     (Mailbox::set_on_ready) to the per-worker deque of the worker that
//     last ran the actor (warm cache); owners pop LIFO, idle workers steal
//     FIFO, and ready actors are drained in bounded batches — one mailbox
//     lock acquisition per batch (Mailbox::drain) — through the
//     non-blocking try_send() send path.
//     Operator logic that parks its thread (timed-wait services, blocking
//     sends under backpressure) wraps the park in a BlockingSection so the
//     pool can lend the core to another worker meanwhile — K bounds the
//     number of *runnable* workers, not the number of sleepers, which is
//     what keeps wait-realized service times (clock.hpp) rate-faithful.
//
// Schedulers drive the engine through the narrow EngineCore interface so
// new policies (work stealing, NUMA-pinned pools) can be added without
// touching the actor core.
#pragma once

#include <chrono>
#include <cstddef>
#include <memory>
#include <string>

#include "runtime/mailbox.hpp"
#include "runtime/metrics.hpp"

namespace ss::runtime {

/// Which execution backend runs the actors of an Engine.
enum class SchedulerKind : std::uint8_t {
  kThreadPerActor,  ///< paper-faithful default: one thread per actor
  kPooled,          ///< N actors multiplexed onto K worker threads
};

/// Parses "threads"/"pool"; throws ss::Error otherwise.
SchedulerKind scheduler_kind_from_string(const std::string& name);
const char* to_string(SchedulerKind kind);

/// Worker-to-CPU pinning (--pin): extends the pool's last_worker_ affinity
/// hints (warm caches via hint routing) down to the hardware.  kCores pins
/// each worker to one CPU round-robin; kSockets confines each worker to
/// the CPUs of one physical package (cache locality without giving up
/// intra-socket migration).  When sched_setaffinity is unavailable (non-
/// Linux, or restricted CI containers) the runtime warns once and
/// continues unpinned.
enum class PinMode : std::uint8_t {
  kNone,
  kCores,
  kSockets,
};

/// Parses "none"/"cores"/"sockets"; throws ss::Error otherwise.
PinMode pin_mode_from_string(const std::string& name);
const char* to_string(PinMode mode);

/// What a Scheduler needs from the engine: actor-graph shape, the blocking
/// per-actor loop (thread-per-actor mode) and the step-wise execution
/// pieces (pooled mode).  Implemented by Engine.
class EngineCore {
 public:
  virtual ~EngineCore() = default;

  virtual std::size_t num_actors() const = 0;
  virtual bool is_source(std::size_t id) const = 0;
  /// Shutdown tokens expected before the actor may finish.
  virtual int incoming_channels(std::size_t id) const = 0;
  virtual Mailbox& mailbox(std::size_t id) = 0;

  /// Runs one actor to completion: blocking receive loop (or source loop)
  /// plus the finish/drain epilogue.  Thread-per-actor mode only.
  virtual void run_actor(std::size_t id) = 0;

  /// Emits up to `quantum` source items; returns false when the source
  /// ended (or the run was stopped) and the finish epilogue is due.
  virtual bool pump_source(std::size_t id, int quantum) = 0;

  /// Dispatches one already-dequeued data/seq-mark message to the actor's
  /// logic.  The caller guarantees single-threaded access per actor.
  virtual void process_message(std::size_t id, Message& m) = 0;

  /// Output staging: a scheduler that hands an actor a whole batch
  /// brackets it with this pair so the engine may coalesce consecutive
  /// same-destination emissions into a cache-aligned MessageBatch and hand
  /// them to the destination mailbox as one unit (Mailbox::try_send_batch).
  /// flush is mandatory on every exit path *before* the actor is marked
  /// complete — staged messages must reach their mailboxes while the slice
  /// is still live, or tokens sent by the finish/fence epilogues would
  /// overtake data.  Default: no staging (per-message delivery).
  virtual void begin_output_batch(std::size_t /*id*/) {}
  virtual void flush_output_batch(std::size_t /*id*/) {}

  /// Batch-granularity utilization metering: a scheduler that hands an
  /// actor a whole batch of messages brackets the batch with this pair so
  /// the engine times the batch as ONE busy slice (two clock reads per
  /// batch instead of two per message) and suppresses the per-message
  /// metering inside process_message().  begin returns false — and the
  /// scheduler must then skip the end call — when nothing was opened
  /// (metering off, or the actor's busy time is charged per logical
  /// member as for fused meta groups).  Default: per-message metering.
  virtual bool begin_batch_meter(std::size_t /*id*/) { return false; }
  virtual void end_batch_meter(std::size_t /*id*/) {}

  /// Flushes logic state and propagates end-of-stream tokens downstream.
  virtual void finish_actor(std::size_t id) = 0;

  /// Records the first failure, stops the run and unblocks neighbours so
  /// the drain completes; the engine rethrows after the run.
  virtual void report_failure(std::size_t id, const std::string& what) = 0;

  /// True when `id` passed an epoch fence and retired: the scheduler must
  /// complete the actor WITHOUT the finish epilogue (no logic flush, no
  /// shutdown tokens) — its state stays alive for migration into the next
  /// epoch.  Checked after process_message()/pump_source() returns.
  virtual bool actor_retired(std::size_t id) const = 0;

  /// Actor `id` fully finished or retired; the engine's active-actor
  /// accounting and completion signalling live here.
  virtual void actor_done(std::size_t id) = 0;

  virtual bool stop_requested() const = 0;
};

/// Execution policy: owns the threads that run the actors.
class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Spawns execution resources.  Called exactly once; `core` outlives the
  /// scheduler.
  virtual void start(EngineCore& core) = 0;

  /// Delivers a data message to `target`'s mailbox with the backpressure
  /// behaviour appropriate to the scheduling model (blocking send for
  /// dedicated threads; try_send fast path + cooperative blocking for the
  /// pool).  Returns false when the item was dropped or the box closed.
  virtual bool deliver(std::size_t target, const Message& m,
                       std::chrono::nanoseconds timeout) = 0;

  /// Waits until every actor finished (the drain completed), then stops
  /// and joins all execution threads.  Idempotent.
  virtual void join() = 0;

  /// Telemetry counters of this scheduler's machinery (steals, parks,
  /// batch sizes).  All-zero for schedulers without such machinery (the
  /// thread-per-actor default).  Exact once the scheduler is quiescent.
  [[nodiscard]] virtual SchedulerCounters counters() const { return {}; }
};

/// `workers <= 0` means one worker per hardware thread; `batch` is the
/// number of messages a pooled worker drains per actor claim (both pooled
/// only, `batch <= 0` means the default of 64); `pin` maps pooled workers
/// to CPUs (kNone for the thread-per-actor backend).
std::unique_ptr<Scheduler> make_scheduler(SchedulerKind kind, int workers, int batch = 0,
                                          PinMode pin = PinMode::kNone);

/// RAII marker around a thread-parking section (timed wait, blocking send,
/// I/O) inside operator or engine code.  Under the pooled scheduler this
/// releases the caller's worker slot so another worker can keep draining —
/// the mechanism that makes K-worker pools throughput-equivalent to
/// thread-per-actor on wait-bound workloads and that guarantees
/// backpressure blocking can never deadlock the pool.  A no-op on
/// non-pooled threads.
class BlockingSection {
 public:
  BlockingSection() noexcept;
  ~BlockingSection();

  BlockingSection(const BlockingSection&) = delete;
  BlockingSection& operator=(const BlockingSection&) = delete;

 private:
  void* pool_;  ///< the worker's PooledScheduler, or nullptr
};

}  // namespace ss::runtime
