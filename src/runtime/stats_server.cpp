#include "runtime/stats_server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <sstream>
#include <utility>

#include "core/error.hpp"

namespace ss::runtime {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) >= 0x20) out += c;
    }
  }
  return out;
}

/// Prometheus label values escape backslash, quote and newline.
std::string prom_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

}  // namespace

StatsServer::StatsServer(int port, std::function<MetricsSample()> sampler,
                         std::vector<std::string> op_names)
    : port_(port), sampler_(std::move(sampler)), op_names_(std::move(op_names)) {
  require(port > 0 && port <= 65535,
          "--stats-port out of range (1-65535): " + std::to_string(port));
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  require(listen_fd_ >= 0, "stats server: socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    require(false, "stats server: cannot bind 127.0.0.1:" + std::to_string(port) +
                       " (" + std::strerror(err) + ")");
  }
  if (::listen(listen_fd_, 8) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    require(false, "stats server: listen() failed on port " + std::to_string(port));
  }
}

StatsServer::~StatsServer() { stop(); }

void StatsServer::start() {
  bool expected = false;
  if (!started_.compare_exchange_strong(expected, true)) return;
  thread_ = std::thread([this] { loop(); });
}

void StatsServer::stop() {
  stop_.store(true, std::memory_order_relaxed);
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void StatsServer::loop() {
  while (!stop_.load(std::memory_order_relaxed)) {
    pollfd pfd{};
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, 100);  // 100 ms: bounded stop latency
    if (ready <= 0) continue;
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) continue;
    serve(client);
    ::close(client);
  }
}

void StatsServer::serve(int client_fd) {
  // Read one request head (we only need the request line; this endpoint
  // serves GETs from curl/Prometheus, not pipelined clients).
  char buf[2048];
  const auto n = ::recv(client_fd, buf, sizeof(buf) - 1, 0);
  if (n <= 0) return;
  buf[n] = '\0';
  std::string head(buf);
  const auto line_end = head.find("\r\n");
  const std::string request_line =
      line_end == std::string::npos ? head : head.substr(0, line_end);
  std::istringstream parse(request_line);
  std::string method;
  std::string path;
  parse >> method >> path;

  std::string body;
  std::string content_type = "application/json";
  int status = 200;
  const char* reason = "OK";
  if (method != "GET") {
    status = 405;
    reason = "Method Not Allowed";
    body = "{\"error\":\"method not allowed\"}\n";
  } else if (path == "/metrics") {
    content_type = "text/plain; version=0.0.4";
    body = render_prometheus(sampler_());
  } else if (path == "/" || path == "/stats.json") {
    body = render_json(sampler_());
  } else {
    status = 404;
    reason = "Not Found";
    body = "{\"error\":\"unknown path; try /metrics or /stats.json\"}\n";
  }

  std::ostringstream resp;
  resp << "HTTP/1.0 " << status << " " << reason << "\r\n"
       << "Content-Type: " << content_type << "\r\n"
       << "Content-Length: " << body.size() << "\r\n"
       << "Connection: close\r\n\r\n"
       << body;
  const std::string out = resp.str();
  std::size_t sent = 0;
  while (sent < out.size()) {
    const auto w = ::send(client_fd, out.data() + sent, out.size() - sent, 0);
    if (w <= 0) break;
    sent += static_cast<std::size_t>(w);
  }
}

std::string StatsServer::render_json(const MetricsSample& s) const {
  const CounterSnapshot& c = s.counters;
  std::ostringstream out;
  out.precision(6);
  out << "{\"t\":" << c.at_seconds << ",\"epoch\":" << s.epoch
      << ",\"dropped\":" << s.dropped << ",\"ops\":[";
  const std::size_t n = c.processed.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (i > 0) out << ",";
    const double busy_s =
        i < c.busy_ns.size() ? static_cast<double>(c.busy_ns[i]) * 1e-9 : 0.0;
    const double blocked_s =
        i < c.blocked_ns.size() ? static_cast<double>(c.blocked_ns[i]) * 1e-9 : 0.0;
    out << "{\"name\":\""
        << json_escape(i < op_names_.size() ? op_names_[i] : std::to_string(i))
        << "\",\"processed\":" << c.processed[i]
        << ",\"emitted\":" << (i < c.emitted.size() ? c.emitted[i] : 0)
        << ",\"busy_s\":" << busy_s << ",\"blocked_s\":" << blocked_s
        << ",\"queue\":" << (i < c.queue_depth.size() ? c.queue_depth[i] : 0)
        << ",\"queue_peak\":" << (i < c.queue_peak.size() ? c.queue_peak[i] : 0);
    if (busy_s > 0.0) {
      out << ",\"busy_rate\":" << static_cast<double>(c.processed[i]) / busy_s;
    }
    if (i < s.profile.size()) {
      const ProfileEstimate& p = s.profile[i];
      out << ",\"est_rate\":" << p.estimated_rate
          << ",\"confidence\":" << p.confidence << ",\"est_samples\":" << p.samples;
      if (p.cv2 >= 0.0) out << ",\"cv2\":" << p.cv2;
      out << ",\"queue_full\":" << p.queue_full_fraction;
    }
    if (i < s.latency.per_op.size() && s.latency.per_op[i].count > 0) {
      const LatencySummary& l = s.latency.per_op[i];
      out << ",\"p50_ms\":" << l.p50 * 1e3 << ",\"p95_ms\":" << l.p95 * 1e3
          << ",\"p99_ms\":" << l.p99 * 1e3;
    }
    out << "}";
  }
  out << "],\"bottlenecks\":[";
  for (std::size_t i = 0; i < s.bottlenecks.size(); ++i) {
    if (i > 0) out << ",";
    const BottleneckEntry& b = s.bottlenecks[i];
    out << "{\"op\":\""
        << json_escape(b.op < op_names_.size() ? op_names_[b.op]
                                               : std::to_string(b.op))
        << "\",\"blame_s\":" << b.blame_seconds << ",\"share\":" << b.share << "}";
  }
  out << "],\"e2e\":{\"count\":" << s.latency.end_to_end.count;
  if (s.latency.end_to_end.count > 0) {
    out << ",\"p50_ms\":" << s.latency.end_to_end.p50 * 1e3
        << ",\"p95_ms\":" << s.latency.end_to_end.p95 * 1e3
        << ",\"p99_ms\":" << s.latency.end_to_end.p99 * 1e3;
  }
  out << "},\"sched\":{\"steals\":" << s.scheduler.steals
      << ",\"batches\":" << s.scheduler.batches
      << ",\"ring_enqueues\":" << s.scheduler.ring_enqueues
      << ",\"ring_spills\":" << s.scheduler.ring_spills << "}}\n";
  return out.str();
}

std::string StatsServer::render_prometheus(const MetricsSample& s) const {
  const CounterSnapshot& c = s.counters;
  std::ostringstream out;
  out.precision(6);
  const auto label = [&](std::size_t i) {
    return "{op=\"" +
           prom_escape(i < op_names_.size() ? op_names_[i] : std::to_string(i)) +
           "\"}";
  };
  const std::size_t n = c.processed.size();
  out << "# TYPE ss_op_processed_total counter\n";
  for (std::size_t i = 0; i < n; ++i) {
    out << "ss_op_processed_total" << label(i) << " " << c.processed[i] << "\n";
  }
  out << "# TYPE ss_op_emitted_total counter\n";
  for (std::size_t i = 0; i < n && i < c.emitted.size(); ++i) {
    out << "ss_op_emitted_total" << label(i) << " " << c.emitted[i] << "\n";
  }
  out << "# TYPE ss_op_busy_seconds_total counter\n";
  for (std::size_t i = 0; i < c.busy_ns.size(); ++i) {
    out << "ss_op_busy_seconds_total" << label(i) << " "
        << static_cast<double>(c.busy_ns[i]) * 1e-9 << "\n";
  }
  out << "# TYPE ss_op_blocked_seconds_total counter\n";
  for (std::size_t i = 0; i < c.blocked_ns.size(); ++i) {
    out << "ss_op_blocked_seconds_total" << label(i) << " "
        << static_cast<double>(c.blocked_ns[i]) * 1e-9 << "\n";
  }
  out << "# TYPE ss_op_queue_depth gauge\n";
  for (std::size_t i = 0; i < c.queue_depth.size(); ++i) {
    out << "ss_op_queue_depth" << label(i) << " " << c.queue_depth[i] << "\n";
  }
  if (!s.profile.empty()) {
    out << "# TYPE ss_op_estimated_service_rate gauge\n";
    for (std::size_t i = 0; i < s.profile.size(); ++i) {
      if (s.profile[i].estimated_rate <= 0.0) continue;
      out << "ss_op_estimated_service_rate" << label(i) << " "
          << s.profile[i].estimated_rate << "\n";
    }
    out << "# TYPE ss_op_busy_service_rate gauge\n";
    for (std::size_t i = 0; i < s.profile.size(); ++i) {
      if (s.profile[i].busy_rate <= 0.0) continue;
      out << "ss_op_busy_service_rate" << label(i) << " " << s.profile[i].busy_rate
          << "\n";
    }
    out << "# TYPE ss_op_profile_confidence gauge\n";
    for (std::size_t i = 0; i < s.profile.size(); ++i) {
      out << "ss_op_profile_confidence" << label(i) << " "
          << s.profile[i].confidence << "\n";
    }
    out << "# TYPE ss_op_queue_full_fraction gauge\n";
    for (std::size_t i = 0; i < s.profile.size(); ++i) {
      out << "ss_op_queue_full_fraction" << label(i) << " "
          << s.profile[i].queue_full_fraction << "\n";
    }
  }
  if (!s.bottlenecks.empty()) {
    out << "# TYPE ss_op_bottleneck_share gauge\n";
    for (const BottleneckEntry& b : s.bottlenecks) {
      out << "ss_op_bottleneck_share" << label(b.op) << " " << b.share << "\n";
    }
  }
  bool latency_typed = false;
  for (std::size_t i = 0; i < s.latency.per_op.size(); ++i) {
    if (s.latency.per_op[i].count == 0) continue;
    if (!latency_typed) {
      out << "# TYPE ss_op_latency_seconds summary\n";
      latency_typed = true;
    }
    const LatencySummary& l = s.latency.per_op[i];
    out << "ss_op_latency_seconds{op=\""
        << prom_escape(i < op_names_.size() ? op_names_[i] : std::to_string(i))
        << "\",quantile=\"0.5\"} " << l.p50 << "\n";
    out << "ss_op_latency_seconds{op=\""
        << prom_escape(i < op_names_.size() ? op_names_[i] : std::to_string(i))
        << "\",quantile=\"0.99\"} " << l.p99 << "\n";
  }
  if (s.latency.end_to_end.count > 0) {
    out << "# TYPE ss_e2e_latency_seconds summary\n";
    out << "ss_e2e_latency_seconds{quantile=\"0.5\"} " << s.latency.end_to_end.p50
        << "\n";
    out << "ss_e2e_latency_seconds{quantile=\"0.95\"} " << s.latency.end_to_end.p95
        << "\n";
    out << "ss_e2e_latency_seconds{quantile=\"0.99\"} " << s.latency.end_to_end.p99
        << "\n";
  }
  out << "# TYPE ss_epoch gauge\nss_epoch " << s.epoch << "\n"
      << "# TYPE ss_dropped_total counter\nss_dropped_total " << s.dropped << "\n"
      << "# TYPE ss_sched_steals_total counter\nss_sched_steals_total "
      << s.scheduler.steals << "\n"
      << "# TYPE ss_sched_ring_enqueues_total counter\n"
      << "ss_sched_ring_enqueues_total " << s.scheduler.ring_enqueues << "\n"
      << "# TYPE ss_sched_ring_spills_total counter\nss_sched_ring_spills_total "
      << s.scheduler.ring_spills << "\n";
  return out.str();
}

}  // namespace ss::runtime
