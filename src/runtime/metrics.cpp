#include "runtime/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <iomanip>
#include <sstream>

#include "runtime/telemetry.hpp"

namespace ss::runtime {

// ------------------------------------------------------------ LatencyHistogram

namespace {

/// Buckets 0..31 are exact microseconds; above that each power-of-two
/// decade of microseconds splits into 32 linear sub-buckets.
constexpr std::size_t num_buckets(int sub_bits, std::uint64_t max_micros) {
  // decades from 2^sub_bits to max_micros, plus the linear head and a
  // final overflow bucket
  std::size_t n = std::size_t{1} << sub_bits;
  for (std::uint64_t edge = std::uint64_t{1} << sub_bits; edge < max_micros; edge <<= 1) {
    n += std::size_t{1} << sub_bits;
  }
  return n + 1;
}

}  // namespace

LatencyHistogram::LatencyHistogram()
    : buckets_(num_buckets(kSubBits, kMaxMicros)) {}

std::size_t LatencyHistogram::bucket_of(std::uint64_t micros) {
  if (micros < kSubBuckets) return static_cast<std::size_t>(micros);
  if (micros >= kMaxMicros) micros = kMaxMicros - 1;
  const int msb = std::bit_width(micros) - 1;  // >= kSubBits
  const int shift = msb - kSubBits;
  const std::size_t decade = static_cast<std::size_t>(msb - kSubBits + 1);
  const std::size_t sub = static_cast<std::size_t>((micros >> shift) & (kSubBuckets - 1));
  return (decade << kSubBits) + sub;
}

double LatencyHistogram::bucket_midpoint_seconds(std::size_t bucket) {
  if (bucket < kSubBuckets) return (static_cast<double>(bucket) + 0.5) * 1e-6;
  const std::size_t decade = bucket >> kSubBits;
  const std::size_t sub = bucket & (kSubBuckets - 1);
  const int shift = static_cast<int>(decade) - 1;
  const double lo = static_cast<double>((std::uint64_t{1} << (shift + kSubBits)) +
                                        (static_cast<std::uint64_t>(sub) << shift));
  const double width = static_cast<double>(std::uint64_t{1} << shift);
  return (lo + width * 0.5) * 1e-6;
}

void LatencyHistogram::record(double seconds) {
  if (seconds < 0.0) seconds = 0.0;
  const auto micros = static_cast<std::uint64_t>(seconds * 1e6);
  buckets_[bucket_of(micros)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_nanos_.fetch_add(static_cast<std::uint64_t>(seconds * 1e9),
                       std::memory_order_relaxed);
}

double LatencyHistogram::quantile(double q) const {
  const std::uint64_t total = count();
  if (total == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // rank of the q-th sample, 1-based, ceil(q * total) clamped to [1, total]
  const auto rank = static_cast<std::uint64_t>(
      std::min<double>(static_cast<double>(total),
                       std::max(1.0, std::ceil(q * static_cast<double>(total)))));
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < buckets_.size(); ++b) {
    seen += buckets_[b].load(std::memory_order_relaxed);
    if (seen >= rank) return bucket_midpoint_seconds(b);
  }
  return bucket_midpoint_seconds(buckets_.size() - 1);
}

LatencySummary LatencyHistogram::summary() const {
  LatencySummary s;
  s.count = count();
  if (s.count == 0) return s;
  s.mean = static_cast<double>(sum_nanos_.load(std::memory_order_relaxed)) * 1e-9 /
           static_cast<double>(s.count);
  s.p50 = quantile(0.50);
  s.p95 = quantile(0.95);
  s.p99 = quantile(0.99);
  return s;
}

HistogramSnapshot LatencyHistogram::snapshot() const {
  HistogramSnapshot snap;
  snap.buckets.reserve(buckets_.size());
  for (const auto& b : buckets_) {
    snap.buckets.push_back(b.load(std::memory_order_relaxed));
  }
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum_nanos = sum_nanos_.load(std::memory_order_relaxed);
  return snap;
}

LatencySummary LatencyHistogram::summary_since(const HistogramSnapshot& base) const {
  const auto base_bucket = [&base](std::size_t b) -> std::uint64_t {
    return b < base.buckets.size() ? base.buckets[b] : 0;
  };
  // Delta bucket counts; clamp at 0 so a base from a *different* histogram
  // (caller bug) degrades gracefully instead of wrapping.
  std::vector<std::uint64_t> delta(buckets_.size());
  std::uint64_t total = 0;
  for (std::size_t b = 0; b < buckets_.size(); ++b) {
    const std::uint64_t now = buckets_[b].load(std::memory_order_relaxed);
    const std::uint64_t was = base_bucket(b);
    delta[b] = now > was ? now - was : 0;
    total += delta[b];
  }
  LatencySummary s;
  s.count = total;
  if (total == 0) return s;
  const std::uint64_t sum_now = sum_nanos_.load(std::memory_order_relaxed);
  const std::uint64_t sum_delta = sum_now > base.sum_nanos ? sum_now - base.sum_nanos : 0;
  s.mean = static_cast<double>(sum_delta) * 1e-9 / static_cast<double>(total);
  const auto quantile_of = [&](double q) {
    const auto rank = static_cast<std::uint64_t>(
        std::min<double>(static_cast<double>(total),
                         std::max(1.0, std::ceil(q * static_cast<double>(total)))));
    std::uint64_t seen = 0;
    for (std::size_t b = 0; b < delta.size(); ++b) {
      seen += delta[b];
      if (seen >= rank) return bucket_midpoint_seconds(b);
    }
    return bucket_midpoint_seconds(delta.size() - 1);
  };
  s.p50 = quantile_of(0.50);
  s.p95 = quantile_of(0.95);
  s.p99 = quantile_of(0.99);
  return s;
}

// ------------------------------------------------------------------ StatsBoard

CounterSnapshot StatsBoard::snapshot(double at_seconds) const {
  CounterSnapshot snap;
  snap.at_seconds = at_seconds;
  snap.processed.reserve(counters_.size());
  snap.emitted.reserve(counters_.size());
  for (const OpCounters& c : counters_) {
    snap.processed.push_back(c.processed.load(std::memory_order_relaxed));
    snap.emitted.push_back(c.emitted.load(std::memory_order_relaxed));
  }
  // Telemetry rides in the same snapshot so the rate window and the ρ
  // window can never disagree; runs without an attached board leave the
  // vectors empty and make_run_stats reports -1 sentinels.
  if (telemetry_ != nullptr) {
    snap.busy_ns.reserve(telemetry_->size());
    snap.blocked_ns.reserve(telemetry_->size());
    for (OpIndex i = 0; i < static_cast<OpIndex>(telemetry_->size()); ++i) {
      snap.busy_ns.push_back(telemetry_->busy_ns(i));
      snap.blocked_ns.push_back(telemetry_->blocked_ns(i));
    }
  }
  return snap;
}

CounterSnapshot StatsBoard::open_window(double at_seconds) {
  set_latency_enabled(true);
  if (telemetry_ != nullptr) telemetry_->set_enabled(true);
  // Freeze the histogram bases: latency metered before the window (SLO
  // controller runs keep the gate open from the start) stays out of the
  // steady-state report.
  window_base_.clear();
  window_base_.reserve(latency_.size());
  for (const LatencyHistogram& h : latency_) window_base_.push_back(h.snapshot());
  e2e_base_ = end_to_end_.snapshot();
  return snapshot(at_seconds);
}

CounterSnapshot StatsBoard::close_window(double at_seconds) {
  CounterSnapshot snap = snapshot(at_seconds);
  set_latency_enabled(false);
  if (telemetry_ != nullptr) telemetry_->set_enabled(false);
  return snap;
}

LatencyReport StatsBoard::latency_report() const {
  LatencyReport report;
  report.per_op.reserve(latency_.size());
  const bool windowed = window_base_.size() == latency_.size();
  for (std::size_t i = 0; i < latency_.size(); ++i) {
    report.per_op.push_back(windowed ? latency_[i].summary_since(window_base_[i])
                                     : latency_[i].summary());
  }
  report.end_to_end =
      windowed ? end_to_end_.summary_since(e2e_base_) : end_to_end_.summary();
  return report;
}

RunStats make_run_stats(const Topology& t, const CounterSnapshot& begin,
                        const CounterSnapshot& end, const CounterSnapshot& final_totals,
                        double total_seconds, std::uint64_t dropped,
                        const LatencyReport* latency, const std::vector<int>* replicas) {
  RunStats stats;
  stats.total_seconds = total_seconds;
  stats.dropped = dropped;
  stats.measured_seconds = end.at_seconds - begin.at_seconds;
  const double window = stats.measured_seconds > 0.0 ? stats.measured_seconds : 1.0;
  // Telemetry is all-or-nothing per run: both snapshots carry a busy/blocked
  // entry per logical operator, or the run was metering-free.
  stats.has_telemetry = begin.busy_ns.size() == t.num_operators() &&
                        end.busy_ns.size() == t.num_operators();

  stats.ops.resize(t.num_operators());
  for (OpIndex i = 0; i < t.num_operators(); ++i) {
    OperatorStats& op = stats.ops[i];
    op.processed = final_totals.processed[i];
    op.emitted = final_totals.emitted[i];
    op.arrival_rate =
        static_cast<double>(end.processed[i] - begin.processed[i]) / window;
    op.departure_rate = static_cast<double>(end.emitted[i] - begin.emitted[i]) / window;
    if (latency != nullptr && i < latency->per_op.size()) {
      op.latency = latency->per_op[i];
    }
    if (stats.has_telemetry) {
      // Measured ρ of an operator with n replicas is busy time over
      // n × window — per-replica utilization, Alg. 1's quantity.
      const int n = replicas != nullptr && i < replicas->size()
                        ? std::max(1, (*replicas)[i])
                        : 1;
      const double denom_ns = window * 1e9 * static_cast<double>(n);
      op.busy_fraction =
          static_cast<double>(end.busy_ns[i] - begin.busy_ns[i]) / denom_ns;
      op.blocked_fraction =
          static_cast<double>(end.blocked_ns[i] - begin.blocked_ns[i]) / denom_ns;
    }
    if (i < end.queue_peak.size()) op.queue_peak = end.queue_peak[i];
  }
  if (latency != nullptr) stats.end_to_end = latency->end_to_end;
  // Ingest throughput is the source departure rate at steady state (§5.2).
  stats.source_rate = stats.ops[t.source()].departure_rate;
  for (OpIndex s : t.sinks()) stats.sink_rate += stats.ops[s].departure_rate;
  return stats;
}

std::string format_stats(const Topology& t, const RunStats& stats) {
  std::ostringstream out;
  const auto ms = [&out](const LatencySummary& s, double value) -> std::ostream& {
    if (s.count == 0) return out << std::setw(10) << "-";
    return out << std::setw(10) << value * 1e3;
  };
  const PredictedLatency& pred = stats.predicted;
  const bool predicted = pred.valid && pred.op_response.size() == t.num_operators() &&
                         pred.op_p99.size() == t.num_operators();
  out << std::fixed << std::setprecision(1);
  out << std::setw(18) << std::left << "operator" << std::right << std::setw(12) << "processed"
      << std::setw(12) << "emitted" << std::setw(14) << "arrival/s" << std::setw(14)
      << "departure/s" << std::setw(10) << "p50 ms" << std::setw(10) << "p95 ms"
      << std::setw(10) << "p99 ms";
  if (predicted) {
    // Model-side response time of the deployed plan (estimate_latency),
    // printed right of the measured percentiles it should explain.
    out << std::setw(10) << "pred ms" << std::setw(10) << "pred p99";
  }
  if (stats.has_telemetry) {
    // Measured counterparts of Algorithm 1's per-operator quantities:
    // utilization ρ, blocked-on-send fraction, queue high-water mark.
    out << std::setw(8) << "rho" << std::setw(8) << "blk" << std::setw(7) << "q_hi";
  }
  out << '\n';
  for (OpIndex i = 0; i < t.num_operators(); ++i) {
    const OperatorStats& op = stats.ops[i];
    out << std::setw(18) << std::left << t.op(i).name << std::right << std::setw(12)
        << op.processed << std::setw(12) << op.emitted << std::setw(14) << op.arrival_rate
        << std::setw(14) << op.departure_rate;
    out << std::setprecision(2);
    ms(op.latency, op.latency.p50);
    ms(op.latency, op.latency.p95);
    ms(op.latency, op.latency.p99);
    if (predicted) {
      out << std::setw(10) << pred.op_response[i] * 1e3 << std::setw(10)
          << pred.op_p99[i] * 1e3;
    }
    if (stats.has_telemetry) {
      out << std::setw(8) << op.busy_fraction << std::setw(8) << op.blocked_fraction
          << std::setw(7) << op.queue_peak;
    }
    out << std::setprecision(1) << '\n';
  }
  out << "measured throughput: " << stats.source_rate << " tuples/s";
  if (predicted) out << " (predicted " << pred.throughput << ")";
  out << " over " << stats.measured_seconds << " s (total run " << stats.total_seconds
      << " s, dropped " << stats.dropped << ")\n";
  out << std::setprecision(2);
  if (stats.end_to_end.count > 0) {
    out << "end-to-end latency: p50 " << stats.end_to_end.p50 * 1e3 << " ms / p95 "
        << stats.end_to_end.p95 * 1e3 << " ms / p99 " << stats.end_to_end.p99 * 1e3
        << " ms (mean " << stats.end_to_end.mean * 1e3 << " ms, "
        << stats.end_to_end.count << " samples)\n";
  } else {
    out << "end-to-end latency: no samples in the measurement window\n";
  }
  if (predicted) {
    out << "predicted end-to-end: p50 " << pred.p50 * 1e3 << " ms / p95 "
        << pred.p95 * 1e3 << " ms / p99 " << pred.p99 * 1e3 << " ms (mean "
        << pred.mean * 1e3 << " ms)\n";
  }
  if (stats.reconfigurations > 0) {
    out << "elastic: " << stats.epochs << " epochs, " << stats.reconfigurations
        << " re-deployment(s), " << stats.keys_migrated << " key(s) migrated\n";
  }
  if (stats.checkpoints_written > 0 || stats.recovered_from_epoch > 0) {
    out << "checkpoints: " << stats.checkpoints_written << " written (last epoch "
        << stats.last_epoch_persisted << ")";
    if (stats.recovered_from_epoch > 0) {
      out << ", recovered from epoch " << stats.recovered_from_epoch;
    }
    out << "\n";
  }
  if (stats.has_profile && !stats.profile.empty()) {
    // Online profiler block: the inferred non-blocking service rate next
    // to the naive busy-time rate it corrects.  Only operators with an
    // estimate print a row (sources and never-sampled ops stay silent).
    bool header = false;
    for (OpIndex i = 0; i < t.num_operators() && i < stats.profile.size(); ++i) {
      const ProfileEstimate& p = stats.profile[i];
      if (p.estimated_rate <= 0.0) continue;
      if (!header) {
        out << "profiler: estimated non-blocking service rates (vs busy-time)\n";
        header = true;
      }
      out << "  " << std::setw(16) << std::left << t.op(i).name << std::right
          << std::setprecision(1) << std::setw(12) << p.estimated_rate << " /s (busy "
          << std::setw(10) << p.busy_rate << " /s, conf " << std::setprecision(2)
          << p.confidence << ", " << p.samples << " samples";
      if (p.cv2 >= 0.0) out << ", cv2 " << p.cv2;
      if (p.queue_full_fraction > 0.0) out << ", q_full " << p.queue_full_fraction;
      out << ")\n";
    }
  }
  if (!stats.bottlenecks.empty()) {
    // Backpressure attribution: blocked-on-send time charged to senders,
    // propagated along blocked edges to the root-cause operator.
    out << "backpressure: ";
    bool first = true;
    for (const BottleneckEntry& b : stats.bottlenecks) {
      if (b.share <= 0.0) continue;
      if (!first) out << ", ";
      out << t.op(b.op).name << " " << std::setprecision(0) << b.share * 100.0 << "%"
          << std::setprecision(2) << " (" << b.blame_seconds << " s blamed)";
      first = false;
    }
    if (first) out << "none (no blocked time attributed)";
    out << "\n";
  }
  if (stats.scheduler.batches > 0) {
    const double avg_batch = static_cast<double>(stats.scheduler.batch_messages) /
                             static_cast<double>(stats.scheduler.batches);
    out << "scheduler: " << stats.scheduler.steals << " steals, " << stats.scheduler.parks
        << " parks, " << stats.scheduler.wakeups << " wakeups, " << stats.scheduler.batches
        << " batches (avg " << avg_batch << " msgs, max " << stats.scheduler.max_batch
        << ")";
    if (stats.scheduler.ring_enqueues > 0) {
      // Ring fast-path volume next to the hint ledger it feeds: many
      // enqueues per ready hint is the design working (edge-triggered
      // hints), not lost hints.
      out << ", " << stats.scheduler.ring_enqueues << " ring enqueues ("
          << stats.scheduler.ring_spills << " spilled)";
    }
    out << "\n";
    // Ready-hint ledger invariant of the quiescent pool: every pushed hint
    // was popped by its owner, stolen, or discarded at shutdown.  Checked
    // in release builds too — drift here means a scheduler accounting bug
    // (hints lost or double-counted), so surface it in the report instead
    // of only in the unit tests.
    const std::uint64_t accounted = stats.scheduler.local_pops + stats.scheduler.steals +
                                    stats.scheduler.discarded;
    if (stats.scheduler.pushes != accounted) {
      const auto drift = static_cast<std::int64_t>(stats.scheduler.pushes) -
                         static_cast<std::int64_t>(accounted);
      out << "scheduler WARNING: ready-hint ledger drift " << drift << " (pushes "
          << stats.scheduler.pushes << " != pops " << stats.scheduler.local_pops
          << " + steals " << stats.scheduler.steals << " + discarded "
          << stats.scheduler.discarded << ")\n";
    }
  }
  return out.str();
}

}  // namespace ss::runtime
