#include "runtime/metrics.hpp"

#include <iomanip>
#include <sstream>

namespace ss::runtime {

CounterSnapshot StatsBoard::snapshot(double at_seconds) const {
  CounterSnapshot snap;
  snap.at_seconds = at_seconds;
  snap.processed.reserve(counters_.size());
  snap.emitted.reserve(counters_.size());
  for (const OpCounters& c : counters_) {
    snap.processed.push_back(c.processed.load(std::memory_order_relaxed));
    snap.emitted.push_back(c.emitted.load(std::memory_order_relaxed));
  }
  return snap;
}

RunStats make_run_stats(const Topology& t, const CounterSnapshot& begin,
                        const CounterSnapshot& end, const CounterSnapshot& final_totals,
                        double total_seconds, std::uint64_t dropped) {
  RunStats stats;
  stats.total_seconds = total_seconds;
  stats.dropped = dropped;
  stats.measured_seconds = end.at_seconds - begin.at_seconds;
  const double window = stats.measured_seconds > 0.0 ? stats.measured_seconds : 1.0;

  stats.ops.resize(t.num_operators());
  for (OpIndex i = 0; i < t.num_operators(); ++i) {
    OperatorStats& op = stats.ops[i];
    op.processed = final_totals.processed[i];
    op.emitted = final_totals.emitted[i];
    op.arrival_rate =
        static_cast<double>(end.processed[i] - begin.processed[i]) / window;
    op.departure_rate = static_cast<double>(end.emitted[i] - begin.emitted[i]) / window;
  }
  // Ingest throughput is the source departure rate at steady state (§5.2).
  stats.source_rate = stats.ops[t.source()].departure_rate;
  for (OpIndex s : t.sinks()) stats.sink_rate += stats.ops[s].departure_rate;
  return stats;
}

std::string format_stats(const Topology& t, const RunStats& stats) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(1);
  out << std::setw(18) << std::left << "operator" << std::right << std::setw(12) << "processed"
      << std::setw(12) << "emitted" << std::setw(14) << "arrival/s" << std::setw(14)
      << "departure/s" << '\n';
  for (OpIndex i = 0; i < t.num_operators(); ++i) {
    const OperatorStats& op = stats.ops[i];
    out << std::setw(18) << std::left << t.op(i).name << std::right << std::setw(12)
        << op.processed << std::setw(12) << op.emitted << std::setw(14) << op.arrival_rate
        << std::setw(14) << op.departure_rate << '\n';
  }
  out << "measured throughput: " << stats.source_rate << " tuples/s over "
      << stats.measured_seconds << " s (total run " << stats.total_seconds << " s, dropped "
      << stats.dropped << ")\n";
  return out.str();
}

}  // namespace ss::runtime
