#include "runtime/checkpoint.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <utility>

#include "core/error.hpp"
#include "runtime/engine.hpp"
#include "runtime/wire.hpp"

namespace ss::runtime {

namespace fs = std::filesystem;

namespace {

constexpr char kMagic[4] = {'S', 'S', 'C', 'K'};
constexpr std::uint32_t kVersion = 1;
/// magic + version + payload length up front, CRC in the footer.
constexpr std::size_t kHeaderSize = 4 + 4 + 8;
constexpr std::size_t kFooterSize = 4;

constexpr const char* kFinalName = "final.bin";

std::string checkpoint_name(std::uint64_t sequence) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "ckpt-%08llu.bin",
                static_cast<unsigned long long>(sequence));
  return buf;
}

void encode_deployment(std::string& out, const Deployment& d) {
  wire::put_u64(out, d.replication.replicas.size());
  for (int r : d.replication.replicas) wire::put_i32(out, r);
  wire::put_u64(out, d.replication.max_share.size());
  for (double s : d.replication.max_share) wire::put_f64(out, s);
  wire::put_u64(out, d.partitions.size());
  for (const auto& p : d.partitions) {
    wire::put_u64(out, p.replica_of_key.size());
    for (int r : p.replica_of_key) wire::put_i32(out, r);
    wire::put_i32(out, p.replicas);
    wire::put_f64(out, p.max_share);
  }
  wire::put_u64(out, d.fusions.size());
  for (const auto& f : d.fusions) {
    wire::put_u64(out, f.members.size());
    for (OpIndex m : f.members) wire::put_u32(out, m);
    wire::put_bytes(out, f.fused_name);
  }
}

bool decode_deployment(wire::Reader& in, Deployment& d) {
  std::uint64_t n = 0;
  if (!in.u64(n)) return false;
  d.replication.replicas.resize(n);
  for (auto& r : d.replication.replicas) {
    std::int32_t v;
    if (!in.i32(v)) return false;
    r = v;
  }
  if (!in.u64(n)) return false;
  d.replication.max_share.resize(n);
  for (auto& s : d.replication.max_share) {
    if (!in.f64(s)) return false;
  }
  if (!in.u64(n)) return false;
  d.partitions.resize(n);
  for (auto& p : d.partitions) {
    std::uint64_t m = 0;
    if (!in.u64(m)) return false;
    p.replica_of_key.resize(m);
    for (auto& r : p.replica_of_key) {
      std::int32_t v;
      if (!in.i32(v)) return false;
      r = v;
    }
    if (!in.i32(p.replicas) || !in.f64(p.max_share)) return false;
  }
  if (!in.u64(n)) return false;
  d.fusions.resize(n);
  for (auto& f : d.fusions) {
    std::uint64_t m = 0;
    if (!in.u64(m)) return false;
    f.members.resize(m);
    for (auto& member : f.members) {
      if (!in.u32(member)) return false;
    }
    if (!in.bytes(f.fused_name)) return false;
  }
  return true;
}

}  // namespace

// --- codec -----------------------------------------------------------------

std::uint32_t crc32(std::string_view data, std::uint32_t seed) {
  static const auto table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t crc = ~seed;
  for (char ch : data) {
    crc = table[(crc ^ static_cast<std::uint8_t>(ch)) & 0xffu] ^ (crc >> 8);
  }
  return ~crc;
}

std::string encode_checkpoint(const Checkpoint& cp) {
  std::string out;
  wire::put_u64(out, cp.sequence);
  wire::put_u64(out, cp.epoch);
  wire::put_bytes(out, cp.tenant);
  encode_deployment(out, cp.deployment);
  wire::put_u64(out, cp.sources.size());
  for (const auto& s : cp.sources) {
    wire::put_u32(out, s.op);
    wire::put_u64(out, s.offset);
  }
  wire::put_u64(out, cp.actors.size());
  for (const auto& a : cp.actors) {
    wire::put_u32(out, a.op);
    wire::put_u8(out, static_cast<std::uint8_t>(a.role));
    wire::put_i32(out, a.replica);
    for (std::uint64_t lane : a.rng) wire::put_u64(out, lane);
    wire::put_i32(out, a.rr_cursor);
    wire::put_u8(out, a.has_state ? 1 : 0);
    wire::put_bytes(out, a.state);
  }
  return out;
}

bool decode_checkpoint(std::string_view payload, Checkpoint& out) {
  wire::Reader in(payload);
  Checkpoint cp;
  if (!in.u64(cp.sequence) || !in.u64(cp.epoch) || !in.bytes(cp.tenant)) return false;
  if (!decode_deployment(in, cp.deployment)) return false;
  std::uint64_t n = 0;
  if (!in.u64(n)) return false;
  cp.sources.resize(n);
  for (auto& s : cp.sources) {
    if (!in.u32(s.op) || !in.u64(s.offset)) return false;
  }
  if (!in.u64(n)) return false;
  cp.actors.resize(n);
  for (auto& a : cp.actors) {
    std::uint8_t role = 0, has_state = 0;
    if (!in.u32(a.op) || !in.u8(role) || !in.i32(a.replica)) return false;
    if (role > static_cast<std::uint8_t>(CheckpointRole::kMember)) return false;
    a.role = static_cast<CheckpointRole>(role);
    for (auto& lane : a.rng) {
      if (!in.u64(lane)) return false;
    }
    if (!in.i32(a.rr_cursor) || !in.u8(has_state) || !in.bytes(a.state)) return false;
    a.has_state = has_state != 0;
  }
  if (!in.ok() || in.remaining() != 0) return false;
  out = std::move(cp);
  return true;
}

std::string checkpoint_file_bytes(const Checkpoint& cp) {
  const std::string payload = encode_checkpoint(cp);
  std::string out;
  out.reserve(kHeaderSize + payload.size() + kFooterSize);
  out.append(kMagic, sizeof(kMagic));
  wire::put_u32(out, kVersion);
  wire::put_u64(out, payload.size());
  out += payload;
  wire::put_u32(out, crc32(payload));
  return out;
}

bool parse_checkpoint_file(std::string_view bytes, Checkpoint& out) {
  if (bytes.size() < kHeaderSize + kFooterSize) return false;
  if (bytes.compare(0, sizeof(kMagic), kMagic, sizeof(kMagic)) != 0) return false;
  wire::Reader head(bytes.substr(sizeof(kMagic)));
  std::uint32_t version = 0;
  std::uint64_t payload_len = 0;
  if (!head.u32(version) || !head.u64(payload_len) || version != kVersion) return false;
  if (payload_len != bytes.size() - kHeaderSize - kFooterSize) return false;
  const std::string_view payload = bytes.substr(kHeaderSize, payload_len);
  wire::Reader foot(bytes.substr(kHeaderSize + payload_len));
  std::uint32_t stored_crc = 0;
  if (!foot.u32(stored_crc) || stored_crc != crc32(payload)) return false;
  return decode_checkpoint(payload, out);
}

// --- fault injection -------------------------------------------------------

FaultInjector& FaultInjector::instance() {
  static FaultInjector injector;
  return injector;
}

FaultInjector::FaultInjector() {
  const auto arm = [](const char* var, std::atomic<int>& counter) {
    if (const char* value = std::getenv(var)) {
      const int n = std::atoi(value);
      if (n > 0) counter.store(n, std::memory_order_relaxed);
    }
  };
  arm("SS_CHECKPOINT_FAIL_WRITE", fail_write_in_);
  arm("SS_CHECKPOINT_TORN_WRITE", torn_write_in_);
  arm("SS_CRASH_AFTER_CHECKPOINTS", crash_in_);
}

void FaultInjector::reset() {
  fail_write_in_.store(0, std::memory_order_relaxed);
  torn_write_in_.store(0, std::memory_order_relaxed);
  crash_in_.store(0, std::memory_order_relaxed);
}

void FaultInjector::fail_write_on(int nth) {
  fail_write_in_.store(nth, std::memory_order_relaxed);
}
void FaultInjector::tear_write_on(int nth) {
  torn_write_in_.store(nth, std::memory_order_relaxed);
}
void FaultInjector::crash_after_writes(int nth) {
  crash_in_.store(nth, std::memory_order_relaxed);
}

namespace {
/// Counts an armed countdown one step down; true exactly when it hits 0.
bool tick(std::atomic<int>& counter) {
  int current = counter.load(std::memory_order_relaxed);
  while (current > 0) {
    if (counter.compare_exchange_weak(current, current - 1, std::memory_order_relaxed)) {
      return current == 1;
    }
  }
  return false;
}
}  // namespace

bool FaultInjector::take_fail_write() { return tick(fail_write_in_); }
bool FaultInjector::take_torn_write() { return tick(torn_write_in_); }

void FaultInjector::note_write_success() {
  if (tick(crash_in_)) {
    // kill -9 stand-in: no destructors, no flushes — the process vanishes
    // at a known checkpoint boundary.
    std::_Exit(kCrashExitCode);
  }
}

// --- manager ---------------------------------------------------------------

CheckpointManager::CheckpointManager(std::string dir, int retain)
    : dir_(std::move(dir)), retain_(retain < 1 ? 1 : retain) {
  require(!dir_.empty(), "checkpoint: directory must not be empty");
  std::error_code ec;
  fs::create_directories(dir_, ec);
  require(!ec && fs::is_directory(dir_, ec),
          "checkpoint: cannot create directory: " + dir_);
  // Probe writability now so a bad --checkpoint-dir fails at startup, the
  // same contract as the --trace/--metrics-out path checks.
  const std::string probe_path = (fs::path(dir_) / ".probe").string();
  {
    std::ofstream probe(probe_path, std::ios::binary | std::ios::trunc);
    require(probe.good(), "checkpoint: directory not writable: " + dir_);
  }
  fs::remove(probe_path, ec);
  // Continue the sequence from whatever is already on disk.
  Checkpoint existing;
  for (const auto& path : list()) {
    if (read_file(path, existing) && existing.sequence >= next_sequence_) {
      next_sequence_ = existing.sequence + 1;
    }
  }
}

std::string CheckpointManager::write_file(const std::string& name, Checkpoint& cp,
                                          bool injectable) {
  cp.sequence = next_sequence_++;
  std::string bytes = checkpoint_file_bytes(cp);
  auto& injector = FaultInjector::instance();
  if (injectable && injector.take_fail_write()) {
    throw Error("checkpoint: injected snapshot write failure (sequence " +
                std::to_string(cp.sequence) + ")");
  }
  if (injectable && injector.take_torn_write()) {
    // Torn-write simulation: the file lands under its final name but stops
    // mid-payload, as after power loss between rename and data flush.
    bytes.resize(bytes.size() / 2);
  }
  const fs::path path = fs::path(dir_) / name;
  const fs::path tmp = fs::path(dir_) / (name + ".tmp");
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out.good()) {
      std::error_code ec;
      fs::remove(tmp, ec);
      throw Error("checkpoint: write failed: " + tmp.string());
    }
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    fs::remove(tmp, ec);
    throw Error("checkpoint: rename failed: " + path.string());
  }
  if (injectable) injector.note_write_success();
  return path.string();
}

std::string CheckpointManager::write(Checkpoint& cp) {
  std::string path = write_file(checkpoint_name(next_sequence_), cp, true);
  prune();
  return path;
}

std::string CheckpointManager::write_final(Checkpoint& cp) {
  return write_file(kFinalName, cp, false);
}

std::vector<std::string> CheckpointManager::list() const {
  std::vector<std::string> paths;
  std::error_code ec;
  for (fs::directory_iterator it(dir_, ec), end; !ec && it != end; it.increment(ec)) {
    const fs::path& p = it->path();
    if (p.extension() != ".bin") continue;
    const std::string stem = p.filename().string();
    if (stem.rfind("ckpt-", 0) == 0 || stem == kFinalName) paths.push_back(p.string());
  }
  return paths;
}

bool CheckpointManager::read_file(const std::string& path, Checkpoint& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return false;
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  return parse_checkpoint_file(bytes, out);
}

bool CheckpointManager::load_latest(Checkpoint& out) const {
  bool found = false;
  Checkpoint best;
  Checkpoint candidate;
  for (const auto& path : list()) {
    if (!read_file(path, candidate)) continue;  // torn or corrupt: skip
    if (!found || candidate.sequence > best.sequence) {
      best = std::move(candidate);
      found = true;
    }
  }
  if (found) out = std::move(best);
  return found;
}

void CheckpointManager::prune() const {
  // Keep the newest `retain_` periodic snapshots (final.bin is outside the
  // rotation).  Sequence numbers are zero-padded, so the lexicographic
  // order of names is the write order.
  std::vector<std::string> periodic;
  for (auto& path : list()) {
    if (fs::path(path).filename().string() != kFinalName) periodic.push_back(std::move(path));
  }
  if (periodic.size() <= static_cast<std::size_t>(retain_)) return;
  std::sort(periodic.begin(), periodic.end());
  std::error_code ec;
  for (std::size_t i = 0; i + static_cast<std::size_t>(retain_) < periodic.size(); ++i) {
    fs::remove(periodic[i], ec);
  }
}

// --- periodic driver -------------------------------------------------------

CheckpointController::CheckpointController(Engine& engine, double period)
    : engine_(engine), period_(period) {}

CheckpointController::~CheckpointController() { stop(); }

void CheckpointController::start() {
  if (thread_.joinable()) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = false;
  }
  thread_ = std::thread([this] { loop(); });
}

void CheckpointController::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void CheckpointController::loop() {
  const auto period = std::chrono::duration<double>(period_);
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    if (cv_.wait_for(lock, period, [this] { return stop_; })) break;
    lock.unlock();
    // checkpoint_now() returns false only in terminal states: the run is
    // stopping, the source finished, or the snapshot write failed (which
    // records the failure and stops the run) — no point ticking further.
    const bool ok = engine_.checkpoint_now();
    lock.lock();
    if (!ok) break;
  }
}

}  // namespace ss::runtime
