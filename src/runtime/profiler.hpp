// Online profile estimation below saturation (ROADMAP item; Beard &
// Chamberlain, arXiv:1504.00591).
//
// The telemetry layer (PR 4) measures *busy-time* service rates:
// processed items over accumulated busy nanoseconds.  That quotient is
// only trustworthy for saturated operators — an operator with headroom
// amortizes its wakeup/scheduling overhead over few items per slice, so
// its busy-time rate under-estimates the true non-blocking service rate
// exactly where the elastic controller needs headroom information.
//
// The ProfileEstimator reconstructs the non-blocking rate from micro
// observations instead:
//
//   * inter-departure gaps inside *multi-item* busy slices: when a batch
//     slice drains k >= 2 backlogged items in `ns` contiguous busy
//     nanoseconds, ns/k is a direct sample of the per-item service time
//     even if the operator idles 90% of the wall clock — the backlog
//     forced a short saturated burst.  These are the primary signal.
//   * singleton slices (one item per metered slice) still sample the
//     service path but carry slice-entry overhead; they contribute with
//     reduced weight and never raise confidence on their own.
//   * queue-occupancy sampling: the fold loop probes every operator's
//     mailbox depth against its capacity; the fraction of probes that
//     found the buffer full is the measured stall probability the latency
//     model consumes (LatencyModelInputs::stall_p).
//   * forced-burst windows are realized as *armed* dense-sampling
//     windows: while any operator's confidence is below the arm
//     threshold, every slice is recorded; once all estimates are
//     confident the recorder thins to 1-in-8 slices, so the disarmed
//     steady-state overhead is a relaxed load and (7 of 8 times) one
//     relaxed fetch_add per metered slice.
//
// Estimates are EWMA-smoothed across fold periods with a per-op
// confidence score that grows with multi-item item coverage.  The fold
// loop runs on a background thread (cadence scaled by the SchedulerHost
// when several tenants share one pool) and additionally:
//
//   * fits the service-time squared coefficient of variation (cv²) from
//     slice statistics — reoptimize() turns it into arrival ca² terms via
//     the QNA linking equations (core/optimizer.hpp fit_variability);
//   * implements BlockedEdgeSink: the mailbox slow path reports every
//     blocked-on-send episode as an edge (sender → mailbox owner), and
//     the fold propagates blame transitively along those edges — an
//     operator that was itself blocked downstream passes the blame on —
//     into a bottleneck ranking ("op X is the root cause of Y% of the
//     run's blocked time"), surfaced in format_stats, the metrics JSONL,
//     the live stats endpoint and `bottleneck_rank` trace instants;
//   * emits one `profile_sample` trace instant per fold.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "core/topology.hpp"
#include "runtime/metrics.hpp"
#include "runtime/telemetry.hpp"

namespace ss::runtime {

struct ProfilerConfig {
  /// Fold cadence, seconds.  A SchedulerHost-attached engine multiplies
  /// this by the tenant count so N co-scheduled profilers do not probe
  /// N times as often as one.
  double period_seconds = 0.25;
  /// EWMA smoothing factor for the per-fold service-time estimate.
  double ewma_alpha = 0.3;
  /// Multi-item gap observations at which confidence reaches ~0.7
  /// (confidence = items / (items + target/2), capped by singleton-only
  /// penalties).
  std::uint64_t confidence_target = 200;
  /// Minimum per-op confidence before the recorder disarms (thins to
  /// 1-in-8 slice sampling).  Ops that processed nothing are ignored.
  double arm_threshold = 0.5;
};

/// One (size, capacity) probe of an operator's input mailbox, taken by
/// the engine under its epoch lock.
struct QueueProbe {
  std::size_t depth = 0;
  std::size_t capacity = 0;
  bool valid = false;  ///< false for sources / ops without a mailbox
};

class ProfileEstimator final : public BlockedEdgeSink {
 public:
  /// `telemetry` provides per-op blocked totals for blame propagation
  /// and busy totals for the busy-rate comparison column; `stats`
  /// provides processed counts.  Both are borrowed and must outlive the
  /// estimator (the engine owns all three).  `queue_probe`, when set, is
  /// called once per fold and must fill one QueueProbe per operator.
  ProfileEstimator(std::size_t num_ops, const TelemetryBoard* telemetry,
                   const StatsBoard* stats, ProfilerConfig config = {},
                   std::function<void(std::vector<QueueProbe>&)> queue_probe = {});
  ~ProfileEstimator() override;

  ProfileEstimator(const ProfileEstimator&) = delete;
  ProfileEstimator& operator=(const ProfileEstimator&) = delete;

  void start();
  /// Runs one final fold, then joins the fold thread.  Idempotent.
  void stop();

  /// Hot-path hook: one contiguous busy slice of `ns` nanoseconds in
  /// which `items` messages were fully processed (engine batch / message
  /// metering).  Wait-free; thins itself to 1-in-8 slices when disarmed.
  void record_slice(OpIndex op, std::uint64_t ns, std::uint64_t items) {
    if (op >= cells_.size() || items == 0 || ns == 0) return;
    Cell& c = cells_[op];
    if (!armed_.load(std::memory_order_relaxed) &&
        (c.tick.fetch_add(1, std::memory_order_relaxed) & 7u) != 0) {
      return;
    }
    if (items >= 2) {
      c.multi_ns.fetch_add(ns, std::memory_order_relaxed);
      c.multi_items.fetch_add(items, std::memory_order_relaxed);
      c.multi_slices.fetch_add(1, std::memory_order_relaxed);
      // Per-slice mean gap squared, weighted by items: feeds the
      // across-slice service-time variance behind the cv² fit.
      const double gap = static_cast<double>(ns) / static_cast<double>(items);
      add_relaxed(c.multi_sq_ns2, gap * gap * static_cast<double>(items));
    } else {
      c.single_ns.fetch_add(ns, std::memory_order_relaxed);
      c.single_slices.fetch_add(1, std::memory_order_relaxed);
      add_relaxed(c.single_sq_ns2,
                  static_cast<double>(ns) * static_cast<double>(ns));
    }
  }

  /// BlockedEdgeSink: `from` spent `ns` blocked pushing into `to`.
  void record_blocked_edge(OpIndex from, OpIndex to, std::uint64_t ns) override;

  /// True while the estimator wants dense slice sampling (some operator's
  /// confidence is still below ProfilerConfig::arm_threshold).
  [[nodiscard]] bool armed() const {
    return armed_.load(std::memory_order_relaxed);
  }

  /// Latest smoothed per-op estimates (copy; fold-thread synchronized).
  [[nodiscard]] std::vector<ProfileEstimate> snapshot() const;
  /// Latest backpressure-attribution ranking, most blamed first.
  [[nodiscard]] std::vector<BottleneckEntry> bottlenecks() const;

  /// Runs one fold synchronously (tests; also called by stop()).
  void fold_now();

 private:
  struct Cell {
    std::atomic<std::uint64_t> multi_ns{0};
    std::atomic<std::uint64_t> multi_items{0};
    std::atomic<std::uint64_t> multi_slices{0};
    std::atomic<double> multi_sq_ns2{0.0};
    std::atomic<std::uint64_t> single_ns{0};
    std::atomic<std::uint64_t> single_slices{0};
    std::atomic<double> single_sq_ns2{0.0};
    std::atomic<std::uint32_t> tick{0};  ///< disarmed 1-in-8 sampler
  };

  /// Smoothed per-op state, fold-thread-owned, published under mu_.
  struct Smoothed {
    double service_ns = 0.0;  ///< EWMA of the per-item service estimate
    double var_ns2 = 0.0;     ///< EWMA of the service-time variance
    double confidence = 0.0;
    std::uint64_t items = 0;        ///< cumulative recorded gap items
    std::uint64_t full_probes = 0;  ///< occupancy probes that found full
    std::uint64_t probes = 0;       ///< occupancy probes taken
  };

  static void add_relaxed(std::atomic<double>& cell, double v) {
    double cur = cell.load(std::memory_order_relaxed);
    while (!cell.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
    }
  }

  void loop();
  void fold();
  void compute_bottlenecks();

  const std::size_t num_ops_;
  const TelemetryBoard* telemetry_;  ///< borrowed, may be null in tests
  const StatsBoard* stats_;          ///< borrowed, may be null in tests
  const ProfilerConfig config_;
  std::function<void(std::vector<QueueProbe>&)> queue_probe_;

  std::vector<Cell> cells_;  ///< fixed: atomics are not movable
  /// Dense blocked-edge matrix, ns at [from * num_ops + to] (topologies
  /// are small; the testbed generator tops out well under 100 ops).
  std::vector<std::atomic<std::uint64_t>> edge_ns_;
  std::atomic<bool> armed_{true};

  mutable std::mutex mu_;  ///< guards the published fold results below
  std::vector<Smoothed> smoothed_;
  std::vector<ProfileEstimate> published_;
  std::vector<BottleneckEntry> ranking_;

  std::thread thread_;
  std::mutex wake_mu_;
  std::condition_variable wake_cv_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> started_{false};
};

}  // namespace ss::runtime
