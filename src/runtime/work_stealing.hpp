// Per-worker work-stealing deques for the pooled scheduler.
//
// Each worker owns one deque of actor-id hints.  The owner pushes and pops
// at the back (LIFO — the actor it just made ready is the one whose
// messages are hot in cache), while thieves steal from the front (FIFO —
// the oldest hint, the one least likely to be in anyone's cache and the
// fairest to age out).  Producers route a hint to a *preferred* queue (the
// worker that last ran the actor) so mailbox readiness notifications keep
// actor state on a warm core; any idle worker can still steal it, so no
// hint ever waits on a busy worker.
//
// Each deque has its own mutex: contention is spread over W locks instead
// of the single shared ready-queue lock this replaces (the hop bottleneck
// called out in ROADMAP).  Parking is centralized: a worker that misses on
// its own deque and every steal target parks on one condition variable and
// is woken by the next push — the steal-miss/wakeup protocol the unit
// tests in tests/work_stealing_test.cpp pin down.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

namespace ss::runtime {

/// Lifetime counters of the hint queues (telemetry; relaxed, so
/// approximate under concurrency and exact once the pool is quiescent).
/// Invariant after shutdown: pushes == local_pops + steals + discarded.
struct WorkStealingCounters {
  std::uint64_t pushes = 0;
  std::uint64_t local_pops = 0;
  std::uint64_t steals = 0;
  std::uint64_t discarded = 0;  ///< hints still queued at shutdown
  std::uint64_t parks = 0;      ///< times a worker went idle in acquire()
  std::uint64_t wakeups = 0;    ///< times a parked worker resumed with work
};

class WorkStealingQueues {
 public:
  /// One deque per potential worker.  `num_queues` is fixed for the
  /// lifetime of the object.
  explicit WorkStealingQueues(std::size_t num_queues);

  WorkStealingQueues(const WorkStealingQueues&) = delete;
  WorkStealingQueues& operator=(const WorkStealingQueues&) = delete;

  /// Enqueues `item` at the back of queue `preferred % num_queues()` and
  /// wakes one parked worker if any.  Callable from any thread, including
  /// non-workers (mailbox readiness hooks).
  void push(std::size_t item, std::size_t preferred);

  /// Non-blocking claim for worker `self`: pops the back of the own deque
  /// (LIFO); on miss, steals the *front* of another deque (FIFO), scanning
  /// victims round-robin from `self + 1`.  Returns false when every deque
  /// is empty right now.
  bool try_acquire(std::size_t self, std::size_t& out);

  /// Blocking claim: try_acquire, then park until a push arrives or
  /// shutdown() is called.  Returns false only on shutdown — remaining
  /// items are considered stale and are discarded with the pool.
  bool acquire(std::size_t self, std::size_t& out);

  /// Wakes every parked worker; acquire() starts returning false.
  void shutdown();

  /// Items currently enqueued across all deques (approximate under
  /// concurrency, exact when quiescent).
  [[nodiscard]] std::size_t pending() const {
    return pending_.load(std::memory_order_acquire);
  }

  /// Workers currently parked inside acquire().
  [[nodiscard]] std::size_t idle() const {
    return idle_.load(std::memory_order_acquire);
  }

  [[nodiscard]] std::size_t num_queues() const { return queues_.size(); }

  /// Telemetry counters (see WorkStealingCounters for the invariant).
  [[nodiscard]] WorkStealingCounters counters() const;

 private:
  /// Cache-line aligned so neighbouring workers' deques (and their locks)
  /// never false-share: a push to worker i's queue must not bounce the
  /// line under worker i±1's pop — the queues exist precisely to spread
  /// hot-path contention over W locks.
  struct alignas(64) Queue {
    mutable std::mutex mu;
    std::deque<std::size_t> items;
    // per-queue telemetry, guarded by mu (already held on every hot-path
    // touch, so counting costs no extra synchronization); steals are
    // charged to the *victim's* queue and summed in counters().
    std::uint64_t pushes = 0;
    std::uint64_t local_pops = 0;
    std::uint64_t steals = 0;
  };

  bool pop_local(std::size_t self, std::size_t& out);    // back: LIFO
  bool steal_from(std::size_t victim, std::size_t& out); // front: FIFO

  std::vector<Queue> queues_;
  /// pending_ is touched by every push and every claim; keep it off the
  /// park-path lines below (same false-sharing argument as Queue).
  alignas(64) std::atomic<std::size_t> pending_{0};
  alignas(64) std::atomic<std::size_t> idle_{0};
  std::atomic<bool> shutdown_{false};
  std::mutex park_mu_;
  std::condition_variable park_cv_;
  // park-path telemetry (relaxed; the park path is already slow)
  std::atomic<std::uint64_t> parks_{0};
  std::atomic<std::uint64_t> wakeups_{0};
  // `discarded` is not a counter: counters() sums the items still queued,
  // which is exact precisely when it matters (after the pool quiesced).
};

}  // namespace ss::runtime
