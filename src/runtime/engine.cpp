#include "runtime/engine.hpp"

#include <algorithm>
#include <deque>
#include <exception>
#include <map>
#include <optional>
#include <set>
#include <thread>
#include <tuple>
#include <unordered_map>

#include "core/error.hpp"
#include "runtime/clock.hpp"
#include "runtime/profiler.hpp"
#include "runtime/scheduler_host.hpp"
#include "runtime/stats_server.hpp"
#include "runtime/synthetic.hpp"
#include "runtime/trace.hpp"

namespace ss::runtime {

namespace {

/// Model predictions for one deployment: Alg. 1 rates + estimate_latency
/// on the replication plan, flattened into the report-friendly struct.
/// Fusion does not change the predicted rates (only safe fusions deploy),
/// so the unfused topology with the plan is the right model input.
PredictedLatency make_predictions(const Topology& t, const Deployment& deployment,
                                  std::size_t buffer_capacity) {
  PredictedLatency pred;
  const SteadyStateResult rates = steady_state(t, deployment.replication);
  const LatencyEstimate est =
      estimate_latency(t, rates, deployment.replication, buffer_capacity);
  pred.valid = true;
  pred.op_response = est.response;
  pred.op_p99.reserve(t.num_operators());
  for (OpIndex i = 0; i < t.num_operators(); ++i) {
    pred.op_p99.push_back(est.response_percentiles(i).p99);
  }
  pred.mean = est.sojourn_mean;
  pred.p50 = est.sojourn.p50;
  pred.p95 = est.sojourn.p95;
  pred.p99 = est.sojourn.p99;
  pred.throughput = rates.throughput();
  return pred;
}

/// Times one slice of operator logic as busy-ns, with blocked-on-send time
/// charged inside the slice subtracted out (busy is pure service; blocked
/// is accounted separately by the mailbox through the pinned context).
/// With the gate closed this is a single relaxed load.
template <typename F>
inline void run_timed(TelemetryBoard& telemetry, OpIndex op, F&& body) {
  if (!telemetry.enabled()) {
    body();
    return;
  }
  ScopedActorContext ctx(telemetry, op);
  const Clock::time_point from = metering_now();
  body();
  const auto elapsed = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(metering_now() - from).count());
  const std::uint64_t blocked = ctx.blocked_ns();
  telemetry.add_busy(op, elapsed > blocked ? elapsed - blocked : 0);
}

/// Open batch-granularity metering slice (begin/end_batch_meter): while a
/// slice is open on this thread, process_message() skips its per-message
/// busy metering and the whole drained batch is timed once — two clock
/// reads per batch instead of two per message.  Thread-local because a
/// pooled worker drains exactly one actor at a time.
struct BatchMeterSlice {
  std::optional<ScopedActorContext> ctx;  ///< pins blocked-charging to the op
  OpIndex op = kInvalidOp;
  Clock::time_point from;
  bool active = false;
  /// Data messages fully processed inside this slice — the profiler's
  /// inter-departure denominator (items >= 2 means the slice drained
  /// backlog, i.e. ns/items samples the non-blocking service time).
  std::uint64_t items = 0;
};
thread_local BatchMeterSlice tls_batch_slice;

}  // namespace

/// Per-thread output stage: while an actor slice runs (pooled drain,
/// source pump, or a dedicated-thread burst), consecutive data results
/// bound for the same destination coalesce into one cache-line-aligned
/// MessageBatch and reach the target mailbox as a unit
/// (Mailbox::try_send_batch) instead of one try_send per message.
/// `owner` scopes the stage to the engine that armed it — a hosted worker
/// interleaves slices of several tenant engines on one thread, and a stage
/// armed by one engine must never absorb another engine's sends.
namespace {
struct OutputStage {
  Engine* owner = nullptr;
  int target = -1;  ///< destination actor of the staged batch
  bool armed = false;
  MessageBatch batch;
};
thread_local OutputStage tls_output_stage;
}  // namespace

AppFactory synthetic_factory(double time_scale, std::int64_t max_items) {
  AppFactory factory;
  factory.source = [time_scale, max_items](OpIndex op, const OperatorSpec& spec) {
    return std::make_unique<SyntheticSource>(spec, 0x9e3779b9u + op, time_scale, max_items);
  };
  factory.logic = [time_scale](OpIndex op, const OperatorSpec& spec) {
    return std::make_unique<SyntheticOperator>(spec, 0xa076'1d64'78bd'642fULL + op, time_scale);
  };
  return factory;
}

// ---------------------------------------------------------------- ActorState

struct Engine::ActorState {
  ActorState(ActorSpec s, std::size_t mailbox_capacity, OverflowPolicy policy,
             MailboxKind kind, Rng r)
      : spec(std::move(s)), mailbox(mailbox_capacity, policy, kind), rng(r) {}

  struct PendingItem {
    OpIndex member;
    Tuple tuple;
    OpIndex from;
  };

  ActorSpec spec;
  Mailbox mailbox;
  Rng rng;
  std::unique_ptr<OperatorLogic> logic;    // worker / replica
  std::unique_ptr<SourceLogic> source;     // source
  std::vector<std::unique_ptr<OperatorLogic>> member_logic;  // meta
  std::unordered_map<OpIndex, std::size_t> member_pos;       // meta
  std::deque<PendingItem> pending;                           // meta work list
  ReplicaSelector selector;                // emitter
  std::vector<int> replica_targets;        // emitter
  int collector_actor = -1;                // replica
  std::vector<double> key_cdf;             // emitter of partitioned op
  // --- order-preserving collection (EngineConfig::preserve_replica_order)
  std::int64_t next_seq = 0;               // emitter: stamp for the next input
  std::int64_t current_seq = -1;           // replica: seq of the input in flight
  std::int64_t expected_seq = 0;           // collector: next seq to release
  std::map<std::int64_t, std::vector<Message>> held;  // collector: buffered results
  std::set<std::int64_t> completed;        // collector: seq marks received
  // --- epoch fence (reconfigure)
  int fence_seen = 0;     ///< fence tokens received this barrier (actor thread only)
  bool fence_counted = false;  ///< counted toward fence_passed_ (fence_mutex_)
  bool finished = false;       ///< ran the shutdown epilogue (fence_mutex_)
  /// Quiesced at a fence: the scheduler completes the actor WITHOUT the
  /// finish epilogue; logic and mailbox carry into the next epoch.
  std::atomic<bool> retired{false};
};

// ---------------------------------------------------------------- Collectors

/// Results of a plain operator (or the source, or a collector actor): the
/// engine routes them to the destination's entry actor.
class Engine::RouteCollector final : public Collector {
 public:
  RouteCollector(Engine& engine, OpIndex op, Rng& rng) : engine_(engine), op_(op), rng_(rng) {}

  void emit(const Tuple& t) override {
    if (engine_.route_result(op_, kInvalidOp, t, rng_)) engine_.board_.add_emitted(op_);
  }
  void emit_to(OpIndex target, const Tuple& t) override {
    if (engine_.route_result(op_, target, t, rng_)) engine_.board_.add_emitted(op_);
  }

 private:
  Engine& engine_;
  OpIndex op_;
  Rng& rng_;
};

/// Results of a replica: forwarded to the collector actor, which performs
/// the logical routing (and the emitted-counting) for the whole operator.
class Engine::ReplicaCollector final : public Collector {
 public:
  ReplicaCollector(Engine& engine, OpIndex op, int collector_actor, std::int64_t seq = -1)
      : engine_(engine), op_(op), collector_actor_(collector_actor), seq_(seq) {}

  void emit(const Tuple& t) override { forward(kInvalidOp, t); }
  void emit_to(OpIndex target, const Tuple& t) override { forward(target, t); }

 private:
  void forward(OpIndex target, const Tuple& t) {
    Message m = Message::data(t, op_, target);
    m.seq = seq_;  // results inherit the seq of the input that produced them
    // Un-sequenced results may stage; sequenced ones must not — the seq
    // mark the replica sends right after processing is capacity-exempt and
    // would overtake a staged result, wedging the collector's release
    // cursor past a seq whose data it never held.
    if (seq_ < 0 && engine_.stage_message(collector_actor_, m, /*count_emit=*/false)) {
      return;
    }
    engine_.send_to_actor(collector_actor_, m);
  }

  Engine& engine_;
  OpIndex op_;
  int collector_actor_;
  std::int64_t seq_;
};

/// Results of a fused member (Algorithm 4): stay inside the meta actor when
/// the destination is a member of the same group, leave otherwise.
class Engine::MetaCollector final : public Collector {
 public:
  MetaCollector(Engine& engine, ActorState& state, OpIndex member)
      : engine_(engine), state_(state), member_(member) {}

  void emit(const Tuple& t) override {
    deliver(engine_.routers_[member_].choose(state_.rng), t);
  }
  void emit_to(OpIndex target, const Tuple& t) override { deliver(target, t); }

 private:
  void deliver(OpIndex dest, const Tuple& t) {
    if (dest == kInvalidOp) {  // member is a sink: the result leaves the system
      engine_.meter_exit(t);
      engine_.board_.add_emitted(member_);
      return;
    }
    const ActorGraph& graph = engine_.epoch_->graph;
    if (graph.group_of[dest] == graph.group_of[member_]) {
      state_.pending.push_back(ActorState::PendingItem{dest, t, member_});
      engine_.board_.add_emitted(member_);
      return;
    }
    if (engine_.route_result(member_, dest, t, state_.rng)) {
      engine_.board_.add_emitted(member_);
    }
  }

  Engine& engine_;
  ActorState& state_;
  OpIndex member_;
};

// ---------------------------------------------------------------- Engine

Engine::Engine(const Topology& t, Deployment deployment, AppFactory factory,
               EngineConfig config)
    : topology_(t),
      factory_(std::move(factory)),
      config_(config),
      board_(t.num_operators()),
      telemetry_(t.num_operators()),
      master_rng_(config.seed) {
  require(factory_.source != nullptr && factory_.logic != nullptr,
          "Engine: AppFactory must provide both source and logic factories");
  // Interned here, before any thread exists: reconfigure() may read the tag
  // from a joint-controller thread concurrently with the run thread.
  if (!config_.tenant.empty()) tenant_tag_ = trace::intern_label(config_.tenant);
  board_.attach_telemetry(&telemetry_);
  queue_peak_prior_.assign(t.num_operators(), 0);
  routers_.reserve(t.num_operators());
  for (OpIndex i = 0; i < t.num_operators(); ++i) routers_.emplace_back(t, i);

  if (!config_.checkpoint_dir.empty()) {
    require(config_.checkpoint_period > 0.0,
            "Engine: checkpoint_period must be positive");
    // Creates the directory and probes writability: an unusable
    // --checkpoint-dir fails here, before any thread exists.
    checkpoint_mgr_ = std::make_unique<CheckpointManager>(config_.checkpoint_dir,
                                                          config_.checkpoint_retain);
  }
  source_base_offset_.assign(t.num_operators(), 0);
  if (config_.recover_from != nullptr) {
    // Resume the checkpointed deployment whatever the caller passed in:
    // the captured actor state only fits the graph shape it was cut from.
    deployment = config_.recover_from->deployment;
  }

  ActorGraph graph = ActorGraph::build(t, deployment);
  epoch_ = build_epoch(std::move(deployment), std::move(graph), nullptr, nullptr);
  predicted_ = make_predictions(topology_, epoch_->deployment, config_.mailbox_capacity);
  if (config_.recover_from != nullptr) apply_recovery(*config_.recover_from);
}

Engine::~Engine() {
  checkpoint_controller_.reset();  // joins; no checkpoint_now after this
  controller_.reset();  // joins the sampling thread; no reconfigure after this
  join_execution();
}

// --------------------------------------------------------------- epoch build

void Engine::init_actor_logic(ActorState& state, const ActorSpec& spec,
                              const Deployment& deployment) {
  const OperatorSpec& op = topology_.op(spec.op);
  switch (spec.kind) {
    case ActorKind::kSource:
      state.source = factory_.source(spec.op, op);
      break;
    case ActorKind::kWorker:
    case ActorKind::kReplica:
      state.logic = factory_.logic(spec.op, op);
      break;
    case ActorKind::kEmitter: {
      state.replica_targets = spec.downstream;  // exactly the replica ids
      const int n = static_cast<int>(state.replica_targets.size());
      if (op.state == StateKind::kPartitionedStateful) {
        KeyPartition partition;
        if (spec.op < deployment.partitions.size() &&
            !deployment.partitions[spec.op].replica_of_key.empty()) {
          partition = deployment.partitions[spec.op];
        } else {
          partition = partition_keys(op.keys, n);
        }
        require(partition.replicas == n,
                "Engine: partition map of '" + op.name + "' disagrees with replica count");
        state.selector = ReplicaSelector::by_key(std::move(partition));
        if (config_.assign_keys_at_emitter) {
          double running = 0.0;
          for (std::size_t k = 0; k < op.keys.num_keys(); ++k) {
            running += op.keys.probability(k);
            state.key_cdf.push_back(running);
          }
          if (!state.key_cdf.empty()) state.key_cdf.back() = 1.0;
        }
      } else {
        state.selector = ReplicaSelector::round_robin(n);
      }
      break;
    }
    case ActorKind::kCollector:
      break;
    case ActorKind::kMeta: {
      for (std::size_t p = 0; p < spec.members.size(); ++p) {
        const OpIndex m = spec.members[p];
        state.member_logic.push_back(factory_.logic(m, topology_.op(m)));
        state.member_pos.emplace(m, p);
      }
      break;
    }
  }
  // Replica actors forward to the collector: by construction the single
  // downstream entry of a replica is the collector actor.
  if (spec.kind == ActorKind::kReplica) state.collector_actor = spec.downstream.front();
}

std::unique_ptr<Engine::EpochState> Engine::build_epoch(Deployment deployment,
                                                        ActorGraph graph, EpochState* prev,
                                                        const DeploymentDiff* diff) {
  auto epoch = std::make_unique<EpochState>();
  epoch->deployment = std::move(deployment);
  epoch->graph = std::move(graph);

  // Actors of operators the diff leaves untouched carry over whole from the
  // quiesced previous epoch: mailbox contents, logic state, rng, counters.
  // Identity is (operator, role, replica) — actor *ids* shift between
  // epochs, so every id-bearing field is refreshed below.
  std::map<std::tuple<OpIndex, int, int>, std::size_t> reusable;
  if (prev != nullptr && diff != nullptr) {
    for (std::size_t i = 0; i < prev->actors.size(); ++i) {
      const ActorSpec& spec = prev->actors[i]->spec;
      if (!diff->changed(spec.op)) {
        reusable.emplace(std::make_tuple(spec.op, static_cast<int>(spec.kind), spec.replica),
                         i);
      }
    }
  }

  epoch->actors.reserve(epoch->graph.num_actors());
  for (const ActorSpec& spec : epoch->graph.actors) {
    const auto it =
        reusable.find(std::make_tuple(spec.op, static_cast<int>(spec.kind), spec.replica));
    if (it != reusable.end() && prev->actors[it->second] != nullptr) {
      std::unique_ptr<ActorState> state = std::move(prev->actors[it->second]);
      state->spec = spec;
      if (spec.kind == ActorKind::kEmitter) state->replica_targets = spec.downstream;
      if (spec.kind == ActorKind::kReplica) state->collector_actor = spec.downstream.front();
      state->mailbox.set_on_ready(nullptr);  // the new scheduler re-hooks
      state->mailbox.set_owner_op(spec.op);  // blocked-edge attribution
      state->fence_seen = 0;
      state->fence_counted = false;
      state->finished = false;
      state->retired.store(false, std::memory_order_relaxed);
      epoch->actors.push_back(std::move(state));
      continue;
    }
    auto state = std::make_unique<ActorState>(spec, config_.mailbox_capacity, config_.overflow,
                                              config_.mailbox, master_rng_.split());
    state->mailbox.set_owner_op(spec.op);  // blocked-edge attribution
    init_actor_logic(*state, spec, epoch->deployment);
    epoch->actors.push_back(std::move(state));
  }
  if (prev != nullptr && diff != nullptr) migrate_state(*epoch, *prev, *diff);
  return epoch;
}

void Engine::migrate_state(EpochState& next, EpochState& prev, const DeploymentDiff& diff) {
  for (OpIndex op = 0; op < topology_.num_operators(); ++op) {
    if (!diff.changed(op)) continue;
    const OperatorSpec& spec = topology_.op(op);
    if (spec.state != StateKind::kPartitionedStateful) continue;

    // The operator's previous state holders.  Actors moved into the new
    // epoch are nullptr here — but those belong to unchanged operators, so
    // every holder of a *changed* operator is still present.
    std::vector<OperatorLogic*> old_logics;
    for (const auto& actor : prev.actors) {
      if (actor == nullptr) continue;
      const ActorSpec& a = actor->spec;
      if (a.op == op &&
          (a.kind == ActorKind::kWorker || a.kind == ActorKind::kReplica) &&
          actor->logic != nullptr) {
        old_logics.push_back(actor->logic.get());
      } else if (a.kind == ActorKind::kMeta) {
        for (std::size_t p = 0; p < a.members.size(); ++p) {
          if (a.members[p] == op) old_logics.push_back(actor->member_logic[p].get());
        }
      }
    }
    if (old_logics.empty()) continue;

    // The new owners, indexed by replica id (a lone worker or fused member
    // is replica 0).
    std::vector<OperatorLogic*> owners;
    for (const auto& actor : next.actors) {
      const ActorSpec& a = actor->spec;
      if (a.op == op && a.kind == ActorKind::kWorker && actor->logic != nullptr) {
        owners.assign(1, actor->logic.get());
      } else if (a.op == op && a.kind == ActorKind::kReplica && actor->logic != nullptr) {
        const auto r = static_cast<std::size_t>(a.replica);
        if (owners.size() <= r) owners.resize(r + 1, nullptr);
        owners[r] = actor->logic.get();
      } else if (a.kind == ActorKind::kMeta) {
        for (std::size_t p = 0; p < a.members.size(); ++p) {
          if (a.members[p] == op) owners.assign(1, actor->member_logic[p].get());
        }
      }
    }
    if (owners.empty()) continue;

    // Key -> replica exactly as the new emitter's ReplicaSelector maps it
    // (routing.cpp), so migrated state lands where the data will go.
    KeyPartition partition;
    if (owners.size() > 1) {
      if (op < next.deployment.partitions.size() &&
          !next.deployment.partitions[op].replica_of_key.empty()) {
        partition = next.deployment.partitions[op];
      } else {
        partition = partition_keys(spec.keys, static_cast<int>(owners.size()));
      }
    }

    for (OperatorLogic* old_logic : old_logics) {
      for (const std::int64_t key : old_logic->owned_keys()) {
        std::size_t replica = 0;
        if (owners.size() > 1) {
          const auto n = static_cast<std::int64_t>(partition.replica_of_key.size());
          std::int64_t k = key % n;
          if (k < 0) k += n;
          replica = static_cast<std::size_t>(
              partition.replica_of_key[static_cast<std::size_t>(k)]);
        }
        OperatorLogic* dest = replica < owners.size() ? owners[replica] : nullptr;
        if (dest != nullptr && dest != old_logic && old_logic->migrate_key(key, *dest)) {
          keys_migrated_.fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
  }
}

// ------------------------------------------------- EngineCore (scheduler API)

bool Engine::is_source(std::size_t id) const {
  return actor(id).spec.kind == ActorKind::kSource;
}

int Engine::incoming_channels(std::size_t id) const {
  return actor(id).spec.incoming_channels;
}

Mailbox& Engine::mailbox(std::size_t id) { return actor(id).mailbox; }

bool Engine::actor_retired(std::size_t id) const {
  return actor(id).retired.load(std::memory_order_acquire);
}

bool Engine::send_to_actor(int actor_id, const Message& m) {
  const auto timeout =
      std::chrono::duration_cast<std::chrono::nanoseconds>(config_.send_timeout);
  return epoch_->scheduler->deliver(static_cast<std::size_t>(actor_id), m, timeout);
}

// ------------------------------------------------------------ output staging

void Engine::begin_output_batch(std::size_t /*id*/) {
  // Staging exists to feed the ring's batched slot reservation; under
  // --mailbox=mutex the engine runs the original per-message delivery so
  // the A/B in bench/micro_runtime compares the whole hot path against the
  // true baseline, not a hybrid.
  if (config_.mailbox != MailboxKind::kRing) return;
  OutputStage& stage = tls_output_stage;
  stage.owner = this;
  stage.target = -1;
  stage.armed = true;
  stage.batch.clear();
}

void Engine::flush_output_batch(std::size_t /*id*/) {
  flush_stage();
  OutputStage& stage = tls_output_stage;
  stage.armed = false;
  stage.owner = nullptr;
}

bool Engine::stage_message(int actor_id, const Message& m, bool count_emit) {
  OutputStage& stage = tls_output_stage;
  if (!stage.armed || stage.owner != this || m.kind != Message::Kind::kData) {
    return false;
  }
  if (stage.target != actor_id) flush_stage();  // destination changed
  stage.target = actor_id;
  stage.batch.push(m, count_emit);
  if (stage.batch.full()) flush_stage();
  return true;
}

void Engine::flush_stage() {
  OutputStage& stage = tls_output_stage;
  if (stage.owner != this || stage.batch.empty()) return;
  MessageBatch& b = stage.batch;
  const int target = stage.target;
  Mailbox& box = actor(static_cast<std::size_t>(target)).mailbox;
  const std::size_t accepted = box.try_send_batch(b.items, b.count);
  for (std::size_t i = 0; i < accepted; ++i) {
    if ((b.emit_mask & (1u << i)) != 0) board_.add_emitted(b.items[i].from);
  }
  // Remainder: the destination is full (or closed).  Fall back to the
  // scheduler's per-message delivery, which applies the usual BAS / shed
  // semantics and charges blocked time exactly like an unstaged send.
  for (std::size_t i = accepted; i < b.count; ++i) {
    if (send_to_actor(target, b.items[i]) && (b.emit_mask & (1u << i)) != 0) {
      board_.add_emitted(b.items[i].from);
    }
  }
  b.clear();
  stage.target = -1;
}

bool Engine::route_result(OpIndex op, OpIndex target, const Tuple& tuple, Rng& rng) {
  if (target == kInvalidOp) {
    target = routers_[op].choose(rng);
    if (target == kInvalidOp) {  // sink: the result leaves the system
      meter_exit(tuple);
      return true;
    }
  } else {
    require(routers_[op].is_destination(target),
            "emit_to: '" + topology_.op(target).name + "' is not a downstream neighbor of '" +
                topology_.op(op).name + "'");
  }
  const Message m = Message::data(tuple, op, target);
  const int entry = epoch_->graph.entry[target];
  // Staged: the emission is counted at flush time (emit_mask), so report
  // false here — the caller must not count it a second time.
  if (stage_message(entry, m, /*count_emit=*/true)) return false;
  return send_to_actor(entry, m);
}

void Engine::release_ordered(ActorState& st) {
  // Release buffered results of consecutive completed sequence numbers.
  while (st.completed.count(st.expected_seq) > 0) {
    auto it = st.held.find(st.expected_seq);
    if (it != st.held.end()) {
      for (const Message& m : it->second) {
        if (route_result(st.spec.op, m.target, m.tuple, st.rng)) {
          board_.add_emitted(st.spec.op);
        }
      }
      st.held.erase(it);
    }
    st.completed.erase(st.expected_seq);
    ++st.expected_seq;
  }
}

// -------------------------------------------------------------- latency hooks

// Sources stamp Tuple::ts with the time since the run started (run_seconds,
// monotonic clock); these two hooks measure against the same base, so a
// sample is exactly the tuple's age.  Recording is gated on the board's
// steady-state window (run_for opens it after warmup) and every sample
// costs one clock read plus a wait-free histogram increment.

void Engine::meter_arrival(OpIndex op, const Message& msg) {
  if (!board_.latency_enabled() || msg.kind != Message::Kind::kData) return;
  board_.add_latency(op, run_seconds() - msg.tuple.ts);
}

void Engine::meter_arrival(OpIndex op, const Message& msg, Clock::time_point now) {
  if (!board_.latency_enabled() || msg.kind != Message::Kind::kData) return;
  board_.add_latency(op, seconds_between(run_start_, now) - msg.tuple.ts);
}

void Engine::meter_exit(const Tuple& tuple) {
  if (!board_.latency_enabled()) return;
  board_.add_end_to_end(run_seconds() - tuple.ts);
}

void Engine::run_meta(std::size_t id, OpIndex member, const Tuple& tuple, OpIndex from) {
  ActorState& st = actor(id);
  st.pending.push_back(ActorState::PendingItem{member, tuple, from});
  while (!st.pending.empty()) {
    ActorState::PendingItem item = st.pending.front();
    st.pending.pop_front();
    board_.add_processed(item.member);
    MetaCollector out(*this, st, item.member);
    // Busy time is charged per *member*, so a fused group's ρ columns stay
    // per logical operator exactly like its counters.
    run_timed(telemetry_, item.member, [&] {
      st.member_logic[st.member_pos.at(item.member)]->process(item.tuple, item.from, out);
    });
  }
}

void Engine::finish_actor(std::size_t id) {
  // The epilogue below and the shutdown tokens at the end must not overtake
  // data this thread still has staged (pooled slots flush via their guard
  // before complete(); this covers the dedicated-thread loops).
  flush_stage();
  ActorState& st = actor(id);
  switch (st.spec.kind) {
    case ActorKind::kWorker: {
      RouteCollector out(*this, st.spec.op, st.rng);
      st.logic->on_finish(out);
      break;
    }
    case ActorKind::kReplica: {
      ReplicaCollector out(*this, st.spec.op, st.collector_actor);
      st.logic->on_finish(out);
      break;
    }
    case ActorKind::kMeta: {
      // Flush members upstream-first so window tails cascade downstream.
      for (OpIndex m : st.spec.members) {
        MetaCollector out(*this, st, m);
        st.member_logic[st.member_pos.at(m)]->on_finish(out);
        while (!st.pending.empty()) {
          ActorState::PendingItem item = st.pending.front();
          st.pending.pop_front();
          board_.add_processed(item.member);
          MetaCollector inner(*this, st, item.member);
          st.member_logic[st.member_pos.at(item.member)]->process(item.tuple, item.from, inner);
        }
      }
      break;
    }
    case ActorKind::kCollector: {
      // Release anything still held (inputs whose marks raced the drain),
      // in sequence order.
      for (auto& [seq, messages] : st.held) {
        (void)seq;
        for (const Message& m : messages) {
          if (route_result(st.spec.op, m.target, m.tuple, st.rng)) {
            board_.add_emitted(st.spec.op);
          }
        }
      }
      st.held.clear();
      break;
    }
    case ActorKind::kSource:
    case ActorKind::kEmitter:
      break;
  }
  // Propagate end-of-stream: one token per outgoing channel.
  for (int target : st.spec.downstream) {
    actor(static_cast<std::size_t>(target)).mailbox.send_unbounded(Message::shutdown());
  }
  std::lock_guard lock(fence_mutex_);
  st.finished = true;
}

// ------------------------------------------------------- fence/drain barrier

void Engine::on_fence_token(std::size_t id) {
  ActorState& st = actor(id);
  // One token per inbound channel, exactly like the shutdown protocol: FIFO
  // per channel means every upstream's data precedes its token, so when the
  // last token arrives the actor has processed everything this epoch will
  // ever send it.
  if (++st.fence_seen < st.spec.incoming_channels) return;
  st.fence_seen = 0;
  pass_fence(id);
}

void Engine::count_fence_locked(ActorState& st) {
  if (st.fence_counted) return;
  st.fence_counted = true;
  ++fence_passed_;
}

void Engine::pass_fence(std::size_t id) {
  // Results staged earlier in this slice must reach their mailboxes before
  // the fence tokens below — a token overtaking data would let a channel
  // quiesce with tuples still in flight behind it.
  flush_stage();
  ActorState& st = actor(id);
  if (st.retired.exchange(true, std::memory_order_acq_rel)) return;
  trace::instant("fence_pass", "fence", "actor", static_cast<std::int64_t>(id));
  // Forward the fence before announcing passage so every downstream channel
  // carries its token; the barrier completes only after the whole graph
  // quiesced.
  for (int target : st.spec.downstream) {
    actor(static_cast<std::size_t>(target)).mailbox.send_unbounded(Message::fence());
  }
  bool complete = false;
  {
    std::lock_guard lock(fence_mutex_);
    if (st.spec.kind != ActorKind::kSource) count_fence_locked(st);
    complete = fence_passed_ >= fence_expected_;
  }
  if (complete) fence_cv_.notify_all();
}

bool Engine::next_source_item(ActorState& st, Tuple& tuple) {
  {
    std::lock_guard lock(fence_mutex_);
    if (!fence_buffer_.empty()) {
      // Replay what the previous epoch's source buffered during the fence;
      // items keep their original timestamps so the switch-over delay shows
      // up honestly in the latency percentiles.
      tuple = fence_buffer_.front();
      fence_buffer_.pop_front();
      return true;
    }
    if (source_exhausted_) return false;  // SourceLogic ended mid-fence
  }
  if (!st.source->next(tuple)) return false;
  tuple.ts = run_seconds();  // source stamp: the latency time base
  return true;
}

void Engine::source_fence(std::size_t id) {
  flush_stage();  // staged items precede the fence tokens, as on every path
  ActorState& st = actor(id);
  if (st.retired.exchange(true, std::memory_order_acq_rel)) return;
  trace::Span span("source_fence", "fence");
  // Announce the tuple boundary: beyond these tokens this epoch's source
  // emits nothing; new items go to the bounded fence buffer instead of
  // being dropped, and the next epoch's source replays them first.
  for (int target : st.spec.downstream) {
    actor(static_cast<std::size_t>(target)).mailbox.send_unbounded(Message::fence());
  }
  std::unique_lock lock(fence_mutex_);
  while (!fence_release_sources_) {
    if (!source_exhausted_ && fence_buffer_.size() < config_.mailbox_capacity) {
      lock.unlock();
      Tuple tuple;
      const bool ok = st.source->next(tuple);
      if (ok) tuple.ts = run_seconds();
      lock.lock();
      if (ok) {
        fence_buffer_.push_back(tuple);
      } else {
        source_exhausted_ = true;
      }
      continue;
    }
    // Buffer full (or source dry): park until the switch-over releases us.
    BlockingSection blocking;
    fence_cv_.wait(lock);
  }
}

// ----------------------------------------------------------- message dispatch

void Engine::process_message(std::size_t id, Message& msg) {
  if (msg.kind == Message::Kind::kFence) {
    on_fence_token(id);
    return;
  }
  ActorState& st = actor(id);
  const OpIndex op = st.spec.op;
  // Telemetry: the worker/replica paths share one clock read between the
  // arrival-latency sample and the busy-span start, so metering adds a
  // single extra read per message over the pre-telemetry engine — and
  // none at all when the scheduler opened a batch slice around us.
  const bool meter = telemetry_.enabled() && !tls_batch_slice.active;
  switch (st.spec.kind) {
    case ActorKind::kWorker: {
      board_.add_processed(op);
      RouteCollector out(*this, op, st.rng);
      if (meter) {
        ScopedActorContext ctx(telemetry_, op);
        const Clock::time_point from = metering_now();
        meter_arrival(op, msg, from);
        st.logic->process(msg.tuple, msg.from, out);
        const auto elapsed = static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(metering_now() - from)
                .count());
        const std::uint64_t blocked = ctx.blocked_ns();
        const std::uint64_t busy = elapsed > blocked ? elapsed - blocked : 0;
        telemetry_.add_busy(op, busy);
        if (profiler_ != nullptr) profiler_->record_slice(op, busy, 1);
      } else {
        meter_arrival(op, msg);
        st.logic->process(msg.tuple, msg.from, out);
      }
      if (tls_batch_slice.active) ++tls_batch_slice.items;
      break;
    }
    case ActorKind::kReplica: {
      board_.add_processed(op);
      st.current_seq = msg.seq;
      ReplicaCollector out(*this, op, st.collector_actor, msg.seq);
      if (meter) {
        ScopedActorContext ctx(telemetry_, op);
        const Clock::time_point from = metering_now();
        meter_arrival(op, msg, from);
        st.logic->process(msg.tuple, msg.from, out);
        const auto elapsed = static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(metering_now() - from)
                .count());
        const std::uint64_t blocked = ctx.blocked_ns();
        const std::uint64_t busy = elapsed > blocked ? elapsed - blocked : 0;
        telemetry_.add_busy(op, busy);
        if (profiler_ != nullptr) profiler_->record_slice(op, busy, 1);
      } else {
        meter_arrival(op, msg);
        st.logic->process(msg.tuple, msg.from, out);
      }
      if (tls_batch_slice.active) ++tls_batch_slice.items;
      if (msg.seq >= 0) {
        // Tell the collector this input is fully processed so it can
        // release the next sequence number.
        actor(static_cast<std::size_t>(st.collector_actor))
            .mailbox.send_unbounded(Message::seq_mark(msg.seq));
      }
      break;
    }
    case ActorKind::kEmitter: {
      // No busy timing (routing is overhead, not service), but pin the
      // context so a backpressure-blocked send to a replica charges the
      // operator's blocked gauge.
      std::optional<ScopedActorContext> ctx;
      if (meter) ctx.emplace(telemetry_, op);
      if (!st.key_cdf.empty()) {
        // Synthetic mode: draw the key this item carries from the
        // operator's key distribution so replica loads realize the exact
        // shares the cost model assumed.
        const double u = st.rng.next_double();
        auto it = std::lower_bound(st.key_cdf.begin(), st.key_cdf.end(), u);
        if (it == st.key_cdf.end()) --it;
        msg.tuple.key = static_cast<std::int64_t>(it - st.key_cdf.begin());
      }
      if (config_.preserve_replica_order) msg.seq = st.next_seq++;
      const int r = st.selector.select(msg.tuple.key, st.rng);
      const int dest = st.replica_targets[static_cast<std::size_t>(r)];
      // A forward, not an emission (the collector counts the operator's
      // output): staged when a slice is open, delivered directly otherwise.
      if (!stage_message(dest, msg, /*count_emit=*/false)) send_to_actor(dest, msg);
      break;
    }
    case ActorKind::kCollector: {
      // msg carries an un-routed (or explicitly targeted) result of `op`,
      // or a seq mark when order-preserving collection is on.
      std::optional<ScopedActorContext> ctx;
      if (meter) ctx.emplace(telemetry_, op);
      if (msg.kind == Message::Kind::kSeqMark) {
        st.completed.insert(msg.seq);
        release_ordered(st);
      } else if (msg.seq < 0) {
        if (route_result(op, msg.target, msg.tuple, st.rng)) board_.add_emitted(op);
      } else {
        st.held[msg.seq].push_back(msg);
        release_ordered(st);
      }
      break;
    }
    case ActorKind::kMeta:
      // The delay to the entry member; intra-group hand-offs are mailbox-
      // free (Alg. 4) and add no queueing worth metering.
      meter_arrival(msg.target, msg);
      run_meta(id, msg.target, msg.tuple, msg.from);
      break;
    case ActorKind::kSource:
      break;  // sources have no inbound data
  }
}

// Batch-granularity metering (pooled scheduler).  A drained batch is timed
// as ONE busy slice charged to the actor's operator: two clock reads per
// batch instead of two per message, which is what keeps armed-window
// metering overhead flat on sub-microsecond operators.  The slice covers
// dispatch (routing, try_send) as well as OperatorLogic::process — that
// time is CPU the actor genuinely spends per item — while blocked-on-send
// waits inside the slice are charged through the pinned context and
// subtracted, exactly like the per-message path.  Only worker/replica
// actors opt in: meta groups charge busy per logical member (run_meta) and
// emitter/collector actors never charged busy per message either.
bool Engine::begin_batch_meter(std::size_t id) {
  if (!telemetry_.enabled()) return false;
  const ActorState& st = actor(id);
  if (st.spec.kind != ActorKind::kWorker && st.spec.kind != ActorKind::kReplica) {
    return false;
  }
  BatchMeterSlice& slice = tls_batch_slice;
  slice.op = st.spec.op;
  slice.ctx.emplace(telemetry_, st.spec.op);
  slice.from = metering_now();
  slice.active = true;
  slice.items = 0;
  return true;
}

void Engine::end_batch_meter(std::size_t /*id*/) {
  BatchMeterSlice& slice = tls_batch_slice;
  const auto elapsed = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(metering_now() - slice.from)
          .count());
  const std::uint64_t blocked = slice.ctx->blocked_ns();
  const std::uint64_t busy = elapsed > blocked ? elapsed - blocked : 0;
  telemetry_.add_busy(slice.op, busy);
  // The whole drained batch is one profiler slice: items >= 2 slices are
  // the backlog bursts whose per-item gap is the non-blocking service time.
  if (profiler_ != nullptr && slice.items > 0) {
    profiler_->record_slice(slice.op, busy, slice.items);
  }
  slice.active = false;
  slice.items = 0;
  slice.ctx.reset();
}

void Engine::actor_loop(std::size_t id) {
  // Messages are consumed in bounded bursts: one blocking receive, then
  // non-blocking try_receive drains whatever arrived meanwhile.  FIFO order
  // and semantics are identical to a plain receive loop; the burst exists
  // so armed-window metering can time it as ONE busy slice (two clock
  // reads per burst, as on the pooled drain path) — the blocking receive
  // stays outside the slice, so idle wait never counts as busy.
  static constexpr int kLoopBurst = 64;
  ActorState& st = actor(id);
  int shutdowns = 0;
  Message msg;
  bool running = true;
  while (running && st.mailbox.receive(msg)) {
    struct SliceGuard {
      Engine* engine;
      std::size_t id;
      bool armed;
      ~SliceGuard() {
        if (armed) engine->end_batch_meter(id);
      }
    } slice{this, id, begin_batch_meter(id)};
    // Stage outputs for the burst.  Declared after `slice` so the flush
    // (destructor order) lands inside the busy slice, and runs before the
    // next blocking receive so staged results never outwait an idle
    // mailbox.  Covers the mid-burst `return` on fence retirement too.
    struct StageGuard {
      Engine* engine;
      std::size_t id;
      ~StageGuard() { engine->flush_output_batch(id); }
    } stage{this, id};
    begin_output_batch(id);
    for (int n = 0;;) {
      if (msg.kind == Message::Kind::kShutdown) {
        if (++shutdowns >= st.spec.incoming_channels) {
          running = false;
          break;
        }
      } else {
        process_message(id, msg);
        // Retired at a fence: exit WITHOUT the finish epilogue — logic
        // state and mailbox carry into the next epoch.
        if (st.retired.load(std::memory_order_relaxed)) return;
      }
      if (++n >= kLoopBurst || !st.mailbox.try_receive(msg)) break;
    }
  }
  finish_actor(id);
}

void Engine::source_loop(std::size_t id) {
  ActorState& st = actor(id);
  const OpIndex op = st.spec.op;
  RouteCollector out(*this, op, st.rng);
  // Context pinned for the whole loop: generation time is busy, the
  // downstream emit charges blocked when backpressured (the gate is
  // re-checked per charge, so this is free while metering is off).
  ScopedActorContext ctx(telemetry_, op);
  Tuple tuple;
  while (true) {
    if (stop_.load(std::memory_order_relaxed)) {
      // A stop raised between a fence and its resume (e.g. a snapshot
      // write failure aborting the run) leaves already-generated items in
      // the fence buffer; deliver them before finishing — a bad disk must
      // never lose an in-flight tuple.
      std::unique_lock lock(fence_mutex_);
      if (fence_buffer_.empty()) break;
      tuple = fence_buffer_.front();
      fence_buffer_.pop_front();
      lock.unlock();
      board_.add_processed(op);
      out.emit(tuple);
      continue;
    }
    if (fence_active_.load(std::memory_order_acquire)) {
      source_fence(id);
      if (st.retired.load(std::memory_order_relaxed)) return;
      continue;
    }
    if (telemetry_.enabled()) {
      // Batch-granularity metering, as in pump_source: a bounded run of
      // items is ONE busy slice (generation + emit dispatch, blocked-on-
      // send subtracted through the nested context) — two clock reads per
      // slice instead of two per item.  Stop and fence flags are
      // re-checked per item, so slices never delay a fence.
      ScopedActorContext slice(telemetry_, op);
      const Clock::time_point from = metering_now();
      bool ended = false;
      begin_output_batch(id);
      for (int n = 0; n < 64; ++n) {
        if (stop_.load(std::memory_order_relaxed) ||
            fence_active_.load(std::memory_order_acquire)) {
          break;
        }
        if (!next_source_item(st, tuple)) {
          ended = true;
          break;
        }
        board_.add_processed(op);
        out.emit(tuple);
        // A paced source holding a half-filled batch would charge every
        // staged item the pace gaps of its successors — visible directly
        // in the percentiles.  While latency is being measured, hand each
        // item over as it is produced; batching a rate-limited source
        // buys nothing anyway (the win is back-to-back emission).
        if (board_.latency_enabled()) flush_stage();
      }
      flush_output_batch(id);  // inside the slice: dispatch time is busy
      const auto elapsed = static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(metering_now() - from)
              .count());
      const std::uint64_t blocked = slice.blocked_ns();
      telemetry_.add_busy(op, elapsed > blocked ? elapsed - blocked : 0);
      if (ended) break;
    } else {
      // Same bounded burst without the metering: emissions stage into
      // MessageBatch hand-offs, and the stop/fence flags are re-checked
      // per item so staging never delays a fence.
      bool ended = false;
      begin_output_batch(id);
      for (int n = 0; n < 64; ++n) {
        if (stop_.load(std::memory_order_relaxed) ||
            fence_active_.load(std::memory_order_acquire)) {
          break;
        }
        if (!next_source_item(st, tuple)) {
          ended = true;
          break;
        }
        board_.add_processed(op);
        out.emit(tuple);
        if (board_.latency_enabled()) flush_stage();  // see the metered twin
      }
      flush_output_batch(id);
      if (ended) break;
    }
  }
  finish_actor(id);
}

void Engine::run_actor(std::size_t id) {
  if (is_source(id)) {
    source_loop(id);
  } else {
    actor_loop(id);
  }
}

bool Engine::pump_source(std::size_t id, int quantum) {
  ActorState& st = actor(id);
  const OpIndex op = st.spec.op;
  RouteCollector out(*this, op, st.rng);
  ScopedActorContext ctx(telemetry_, op);
  // Batch-granularity metering, like begin/end_batch_meter on the drain
  // side: the whole quantum is ONE busy slice (generation + emit dispatch,
  // blocked-on-send subtracted through the pinned context) — two clock
  // reads per quantum instead of two per generated item.
  const bool meter = telemetry_.enabled();
  const Clock::time_point from = meter ? metering_now() : Clock::time_point{};
  const auto record = [&] {
    if (!meter) return;
    const auto elapsed = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(metering_now() - from)
            .count());
    const std::uint64_t blocked = ctx.blocked_ns();
    telemetry_.add_busy(op, elapsed > blocked ? elapsed - blocked : 0);
  };
  Tuple tuple;
  for (int i = 0; i < quantum; ++i) {
    if (stop_.load(std::memory_order_relaxed)) {
      // Same contract as source_loop: a stop must not strand items the
      // source already generated into the fence buffer.
      while (true) {
        std::unique_lock lock(fence_mutex_);
        if (fence_buffer_.empty()) break;
        tuple = fence_buffer_.front();
        fence_buffer_.pop_front();
        lock.unlock();
        board_.add_processed(op);
        out.emit(tuple);
      }
      record();
      return false;
    }
    if (fence_active_.load(std::memory_order_acquire)) {
      record();
      source_fence(id);
      return true;  // retired: the scheduler completes us without epilogue
    }
    if (!next_source_item(st, tuple)) {
      record();
      return false;
    }
    board_.add_processed(op);
    out.emit(tuple);
    // Paced sources hand items over as produced while latency percentiles
    // are live — a half-filled staged batch would charge every staged item
    // its successors' pace gaps (see source_loop).
    if (board_.latency_enabled()) flush_stage();
  }
  record();
  return true;
}

void Engine::report_failure(std::size_t id, const std::string& what) {
  flush_stage();  // deliver what the failed slice already routed
  {
    std::lock_guard lock(failure_mutex_);
    if (first_failure_.empty()) {
      first_failure_ = "actor '" + actor(id).spec.name + "': " + what;
    }
  }
  stop_.store(true);
  actor(id).mailbox.close();
  for (int target : actor(id).spec.downstream) {
    actor(static_cast<std::size_t>(target)).mailbox.send_unbounded(Message::shutdown());
  }
  // A failed actor will never pass its fence token: forward the fence on
  // its behalf so an in-flight barrier completes (reconfigure then aborts
  // on the stop flag and the failure is rethrown after join).
  if (fence_active_.load(std::memory_order_acquire)) pass_fence(id);
}

void Engine::actor_done(std::size_t id) {
  ActorState& st = actor(id);
  bool complete = false;
  {
    std::lock_guard lock(fence_mutex_);
    st.finished = true;
    if (st.spec.kind == ActorKind::kSource && !st.retired.load(std::memory_order_relaxed)) {
      // The source ran its natural end-of-stream, not a fence retirement:
      // the run is completing and reconfigurations must stop.
      source_finished_.store(true, std::memory_order_release);
    }
    if (fence_active_.load(std::memory_order_relaxed) &&
        st.spec.kind != ActorKind::kSource) {
      // Finished (or failed) during the fence: it will never pass a token;
      // count it so the barrier completes.
      count_fence_locked(st);
      complete = fence_passed_ >= fence_expected_;
    }
  }
  if (complete) fence_cv_.notify_all();
  if (active_actors_.fetch_sub(1) == 1) {
    std::lock_guard lock(done_mutex_);
    done_cv_.notify_all();
  }
}

// -------------------------------------------------------------- reconfigure

bool Engine::reconfigure(const Deployment& next) {
  // Tag the fence/epoch spans this switch-over records with the tenant,
  // whichever thread drives it (per-engine controller or a joint one).
  if (tenant_tag_ != nullptr) trace::set_thread_tenant(tenant_tag_);
  // Validate before disturbing the run: a malformed deployment throws here,
  // leaving the current epoch untouched.
  ActorGraph next_graph = ActorGraph::build(topology_, next);

  std::unique_lock epoch_lock(epoch_mutex_);
  if (!started_.load(std::memory_order_acquire) || stop_.load() ||
      source_finished_.load(std::memory_order_acquire)) {
    return false;
  }

  const DeploymentDiff diff =
      diff_deployments(topology_.num_operators(), epoch_->deployment, next);
  swap_in_progress_.store(true, std::memory_order_release);

  // Arm the fence.  Actors that already finished (natural end-of-stream
  // racing the fence) are pre-counted: they will never pass a token.
  {
    std::lock_guard lock(fence_mutex_);
    fence_passed_ = 0;
    fence_expected_ = 0;
    fence_release_sources_ = false;
    for (const auto& st : epoch_->actors) {
      if (st->spec.kind == ActorKind::kSource) continue;
      ++fence_expected_;
      st->fence_counted = false;
      if (st->finished) count_fence_locked(*st);
    }
    fence_active_.store(true, std::memory_order_release);
    trace::instant("fence_arm", "fence", "expected",
                   static_cast<std::int64_t>(fence_expected_));
  }

  // Sources see fence_active_ on their next item, inject the fence tokens
  // and buffer; the tokens sweep the graph behind all in-flight data.  Wait
  // for every non-source actor to quiesce at that tuple boundary.
  {
    trace::Span drain_span("fence_drain", "fence");
    std::unique_lock lock(fence_mutex_);
    fence_cv_.wait(lock, [this] { return fence_passed_ >= fence_expected_; });
    fence_release_sources_ = true;
  }
  fence_cv_.notify_all();

  // Every actor retired or finished: the epoch's scheduler winds down.
  epoch_->scheduler->join();

  const bool aborted =
      stop_.load() || source_finished_.load(std::memory_order_acquire);
  if (!aborted) {
    trace::Span swap_span("epoch_swap", "fence");
    std::unique_ptr<EpochState> fresh =
        build_epoch(next, std::move(next_graph), epoch_.get(), &diff);
    // Actors being replaced die with the old epoch; fold their drop counts
    // — and their telemetry: queue high-water marks and the retiring
    // scheduler's counters — into the final accounting (reused actors keep
    // counting on their own).
    for (const auto& st : epoch_->actors) {
      if (st == nullptr) continue;
      dropped_prior_epochs_ += st->mailbox.dropped();
      ring_enqueues_prior_ += st->mailbox.ring_enqueues();
      ring_spills_prior_ += st->mailbox.ring_spills();
      const OpIndex op = st->spec.op;
      queue_peak_prior_[op] = std::max(queue_peak_prior_[op], st->mailbox.depth_peak());
    }
    sched_counters_prior_ += epoch_->scheduler->counters();
    epoch_ = std::move(fresh);
    predicted_ = make_predictions(topology_, epoch_->deployment, config_.mailbox_capacity);
    const int e = epoch_counter_.fetch_add(1, std::memory_order_relaxed) + 1;
    trace::instant("epoch", "fence", "epoch", e);
  }

  {
    std::lock_guard lock(fence_mutex_);
    fence_active_.store(false, std::memory_order_release);
    if (aborted) fence_buffer_.clear();
  }

  if (!aborted) {
    active_actors_.store(static_cast<int>(epoch_->actors.size()));
    epoch_->scheduler = make_epoch_scheduler();
    epoch_->scheduler->start(*this);
  }
  swap_in_progress_.store(false, std::memory_order_release);
  {
    // run_until_complete may have observed active_actors_ == 0 during the
    // swap; re-evaluate its predicate now that swap_in_progress_ cleared.
    std::lock_guard lock(done_mutex_);
    done_cv_.notify_all();
  }
  return !aborted;
}

// ------------------------------------------------------------- checkpointing

bool Engine::checkpoint_now() {
  if (checkpoint_mgr_ == nullptr) return false;
  if (tenant_tag_ != nullptr) trace::set_thread_tenant(tenant_tag_);

  std::unique_lock epoch_lock(epoch_mutex_);
  if (!started_.load(std::memory_order_acquire) || stop_.load() ||
      source_finished_.load(std::memory_order_acquire)) {
    return false;
  }
  swap_in_progress_.store(true, std::memory_order_release);

  // Arm the fence, exactly as reconfigure() does: the barrier quiesces
  // every actor at a tuple boundary while sources buffer — mailboxes empty,
  // no item half-processed.  That quiesced graph is the consistent cut.
  {
    std::lock_guard lock(fence_mutex_);
    fence_passed_ = 0;
    fence_expected_ = 0;
    fence_release_sources_ = false;
    for (const auto& st : epoch_->actors) {
      if (st->spec.kind == ActorKind::kSource) continue;
      ++fence_expected_;
      st->fence_counted = false;
      if (st->finished) count_fence_locked(*st);
    }
    fence_active_.store(true, std::memory_order_release);
    trace::instant("fence_arm", "fence", "expected",
                   static_cast<std::int64_t>(fence_expected_));
  }
  {
    trace::Span drain_span("fence_drain", "fence");
    std::unique_lock lock(fence_mutex_);
    fence_cv_.wait(lock, [this] { return fence_passed_ >= fence_expected_; });
    fence_release_sources_ = true;
  }
  fence_cv_.notify_all();
  epoch_->scheduler->join();

  const bool aborted =
      stop_.load() || source_finished_.load(std::memory_order_acquire);
  bool written = false;
  if (!aborted) {
    // Serialize and persist the cut.  A write failure is surfaced exactly
    // like an operator exception — recorded as the run's first failure and
    // rethrown by finalize_run() on the caller's thread — but the epoch
    // still resumes below so the pipeline drains: a bad disk never stalls
    // the fence barrier and never loses an in-flight tuple.
    trace::Span ckpt_span("checkpoint", "fence");
    Checkpoint cp = capture_checkpoint();
    try {
      checkpoint_mgr_->write(cp);
      written = true;
      checkpoints_written_.fetch_add(1, std::memory_order_relaxed);
      last_epoch_persisted_.store(cp.epoch, std::memory_order_relaxed);
      trace::instant("checkpoint_write", "fence", "sequence",
                     static_cast<std::int64_t>(cp.sequence));
    } catch (const std::exception& e) {
      {
        std::lock_guard lock(failure_mutex_);
        if (first_failure_.empty()) first_failure_ = e.what();
      }
      stop_.store(true);
    }
  }

  {
    std::lock_guard lock(fence_mutex_);
    fence_active_.store(false, std::memory_order_release);
    if (aborted) fence_buffer_.clear();
  }

  if (!aborted) {
    // Resume the SAME epoch in place: no deployment change, no epoch bump,
    // actors keep their mailboxes and state.  Only the joined scheduler is
    // replaced (a scheduler cannot restart after join) and the per-actor
    // fence latches reset; the sources replay the fence buffer first.
    for (const auto& st : epoch_->actors) {
      st->mailbox.set_on_ready(nullptr);  // the new scheduler re-hooks
      st->fence_seen = 0;
      st->fence_counted = false;
      st->retired.store(false, std::memory_order_relaxed);
    }
    sched_counters_prior_ += epoch_->scheduler->counters();
    active_actors_.store(static_cast<int>(epoch_->actors.size()));
    epoch_->scheduler = make_epoch_scheduler();
    epoch_->scheduler->start(*this);
  }
  swap_in_progress_.store(false, std::memory_order_release);
  {
    std::lock_guard lock(done_mutex_);
    done_cv_.notify_all();
  }
  return written && !stop_.load();
}

Checkpoint Engine::capture_checkpoint() {
  Checkpoint cp;
  cp.epoch = static_cast<std::uint64_t>(epoch_counter_.load(std::memory_order_relaxed));
  cp.tenant = config_.tenant;
  cp.deployment = epoch_->deployment;
  const CounterSnapshot counts = board_.snapshot(0.0);
  for (const auto& actor_ptr : epoch_->actors) {
    const ActorState& st = *actor_ptr;
    const ActorSpec& spec = st.spec;
    if (spec.kind == ActorKind::kSource) {
      // Items delivered into the graph so far.  Fence-buffered items are
      // deliberately NOT counted: nothing downstream has seen them, and a
      // rewound source regenerates them deterministically on recovery.
      CheckpointSourceEntry src;
      src.op = spec.op;
      src.offset = source_base_offset_[spec.op] + counts.processed[spec.op];
      cp.sources.push_back(src);
    }
    CheckpointActorEntry e;
    e.op = spec.op;
    e.role = static_cast<CheckpointRole>(spec.kind);  // values mirror ActorKind
    e.replica = spec.replica;
    // Every actor's rng matters: emitters draw keys and routing picks, the
    // source/collector rngs drive probabilistic edge selection.  The seq
    // ordering counters need no capture — at a quiesced cut every stamped
    // sequence is released, and both sides restart from zero together.
    e.rng = st.rng.state();
    if (spec.kind == ActorKind::kEmitter) e.rr_cursor = st.selector.cursor();
    if (st.logic != nullptr) e.has_state = st.logic->save_state(e.state);
    cp.actors.push_back(std::move(e));
    // A fused meta actor carries one logic instance per member; each gets
    // its own entry so recovery can restore them individually.
    for (std::size_t p = 0; p < st.member_logic.size(); ++p) {
      CheckpointActorEntry m;
      m.op = spec.members[p];
      m.role = CheckpointRole::kMember;
      m.replica = 0;
      m.has_state = st.member_logic[p]->save_state(m.state);
      cp.actors.push_back(std::move(m));
    }
  }
  return cp;
}

void Engine::apply_recovery(const Checkpoint& cp) {
  recovered_from_epoch_ = cp.epoch;
  std::map<std::tuple<OpIndex, int, int>, const CheckpointActorEntry*> entries;
  for (const CheckpointActorEntry& e : cp.actors) {
    entries[std::make_tuple(e.op, static_cast<int>(e.role), static_cast<int>(e.replica))] =
        &e;
  }
  std::map<OpIndex, std::uint64_t> offsets;
  for (const CheckpointSourceEntry& s : cp.sources) offsets[s.op] = s.offset;

  for (const auto& actor_ptr : epoch_->actors) {
    ActorState& st = *actor_ptr;
    const ActorSpec& spec = st.spec;
    const auto it = entries.find(
        std::make_tuple(spec.op, static_cast<int>(spec.kind), spec.replica));
    if (it != entries.end()) {
      const CheckpointActorEntry& e = *it->second;
      st.rng.set_state(e.rng);
      if (spec.kind == ActorKind::kEmitter && e.rr_cursor >= 0) {
        st.selector.set_cursor(e.rr_cursor);
      }
      if (e.has_state && st.logic != nullptr) {
        require(st.logic->restore_state(e.state),
                "recovery: operator '" + topology_.op(spec.op).name +
                    "' rejected its checkpointed state");
      }
    }
    for (std::size_t p = 0; p < st.member_logic.size(); ++p) {
      const auto mit = entries.find(std::make_tuple(
          spec.members[p], static_cast<int>(CheckpointRole::kMember), 0));
      if (mit != entries.end() && mit->second->has_state) {
        require(st.member_logic[p]->restore_state(mit->second->state),
                "recovery: fused member '" + topology_.op(spec.members[p]).name +
                    "' rejected its checkpointed state");
      }
    }
    if (spec.kind == ActorKind::kSource) {
      const auto oit = offsets.find(spec.op);
      if (oit != offsets.end() && oit->second > 0) {
        // Rewind: fast-forward the source past everything the checkpoint
        // already accounts for, so the resumed stream continues item
        // offset+1 with the exact rng draws an uninterrupted run made.
        st.source->skip(oit->second);
        source_base_offset_[spec.op] = oit->second;
      }
    }
  }
}

void Engine::write_final_checkpoint() {
  if (checkpoint_mgr_ == nullptr) return;
  {
    std::lock_guard lock(failure_mutex_);
    if (!first_failure_.empty()) return;  // failed runs keep the last snapshot
  }
  std::lock_guard lock(epoch_mutex_);
  Checkpoint cp = capture_checkpoint();
  try {
    checkpoint_mgr_->write_final(cp);
    checkpoints_written_.fetch_add(1, std::memory_order_relaxed);
    last_epoch_persisted_.store(cp.epoch, std::memory_order_relaxed);
  } catch (const std::exception& e) {
    std::lock_guard flock(failure_mutex_);
    if (first_failure_.empty()) first_failure_ = e.what();
  }
}

Deployment Engine::deployment() const {
  std::lock_guard lock(epoch_mutex_);
  return epoch_->deployment;
}

CounterSnapshot Engine::sample() const { return board_.snapshot(run_seconds()); }

PredictedLatency Engine::predicted_latency() const {
  std::lock_guard lock(epoch_mutex_);
  return predicted_;
}

void Engine::fill_queue_stats(CounterSnapshot& snap) const {
  const std::size_t n = topology_.num_operators();
  snap.queue_depth.assign(n, 0);
  std::lock_guard lock(epoch_mutex_);
  snap.queue_peak = queue_peak_prior_;
  if (!epoch_) return;
  for (const auto& st : epoch_->actors) {
    if (st == nullptr) continue;
    const OpIndex op = st->spec.op;
    snap.queue_depth[op] += st->mailbox.size();
    snap.queue_peak[op] = std::max(snap.queue_peak[op], st->mailbox.depth_peak());
  }
}

void Engine::reset_queue_peaks() {
  std::lock_guard lock(epoch_mutex_);
  queue_peak_prior_.assign(topology_.num_operators(), 0);
  if (!epoch_) return;
  for (const auto& st : epoch_->actors) {
    if (st != nullptr) st->mailbox.reset_depth_peak();
  }
}

SchedulerCounters Engine::scheduler_counters() const {
  std::lock_guard lock(epoch_mutex_);
  SchedulerCounters c = sched_counters_prior_;
  if (epoch_ && epoch_->scheduler) c += epoch_->scheduler->counters();
  // Ring traffic lives in the mailboxes, not the scheduler: fold the live
  // actors' counters in here (replaced actors fold into the prior sums at
  // reconfigure) so the report shows enqueue volume next to the hint
  // ledger it fed.
  c.ring_enqueues += ring_enqueues_prior_;
  c.ring_spills += ring_spills_prior_;
  if (epoch_) {
    for (const auto& st : epoch_->actors) {
      if (st == nullptr) continue;
      c.ring_enqueues += st->mailbox.ring_enqueues();
      c.ring_spills += st->mailbox.ring_spills();
    }
  }
  return c;
}

MetricsSample Engine::metrics_sample() const {
  MetricsSample s;
  s.counters = board_.snapshot(run_seconds());
  fill_queue_stats(s.counters);
  s.latency = board_.latency_report();
  s.scheduler = scheduler_counters();
  s.epoch = epochs();
  s.checkpoints_written = checkpoints_written_.load(std::memory_order_relaxed);
  s.last_epoch_persisted = last_epoch_persisted_.load(std::memory_order_relaxed);
  s.recovered_from_epoch = recovered_from_epoch_;
  std::lock_guard lock(epoch_mutex_);
  s.dropped = dropped_prior_epochs_;
  if (epoch_) {
    for (const auto& st : epoch_->actors) {
      if (st != nullptr) s.dropped += st->mailbox.dropped();
    }
  }
  s.predicted = predicted_;
  if (profiler_) {
    s.profile = profiler_->snapshot();
    s.bottlenecks = profiler_->bottlenecks();
  }
  return s;
}

// ------------------------------------------------------------------- running

std::unique_ptr<Scheduler> Engine::make_epoch_scheduler() {
  if (config_.host != nullptr) {
    return make_hosted_scheduler(*config_.host, config_.tenant, config_.tenant_weight);
  }
  return make_scheduler(config_.scheduler, config_.workers, config_.pool_batch, config_.pin);
}

void Engine::start_execution() {
  require(!started_.load(), "Engine: run() can only be called once per instance");
  if (tenant_tag_ != nullptr) {
    // Tag the run-driving thread (and everything it records) with the
    // tenant; worker threads tag themselves per actor slot.
    trace::set_thread_tenant(tenant_tag_);
  }
  // Elastic runs feed the controller measured ρ from the first sample,
  // metrics runs export it every period, and a live stats endpoint must
  // serve real numbers from the first request — all three need metering
  // from the start, not only inside the steady-state window.
  if (config_.elastic || !config_.metrics_path.empty() || config_.stats_port > 0) {
    telemetry_.set_enabled(true);
  }
  // An SLO-constrained elastic run meters end-to-end latency from the
  // first tuple: the controller must see a breach before the steady-state
  // window would have opened.  run_for's open_window later re-bases the
  // report so the final stats still cover only the window.
  if (config_.elastic && config_.slo_p99 > 0.0) board_.set_latency_enabled(true);
  if (!config_.metrics_path.empty()) {
    // Construct before the scheduler starts: an unopenable path throws
    // here, before any actor thread exists.
    std::vector<std::string> names;
    names.reserve(topology_.num_operators());
    for (std::size_t i = 0; i < topology_.num_operators(); ++i) {
      names.push_back(topology_.op(static_cast<OpIndex>(i)).name);
    }
    exporter_ = std::make_unique<MetricsExporter>(
        [this] { return metrics_sample(); }, std::move(names),
        config_.metrics_path, config_.metrics_period, config_.tenant);
  }
  if (config_.profile) {
    // The estimator is the telemetry board's blocked-edge sink for the
    // whole run; its fold loop probes queue occupancy through the same
    // epoch-locked path fill_queue_stats uses.  Co-hosted engines stretch
    // the cadence by the tenant count (SchedulerHost::sampling_period_scale).
    ProfilerConfig pc;
    pc.period_seconds = config_.profile_period *
                        (config_.host != nullptr
                             ? config_.host->sampling_period_scale()
                             : 1.0);
    profiler_ = std::make_unique<ProfileEstimator>(
        topology_.num_operators(), &telemetry_, &board_, pc,
        [this](std::vector<QueueProbe>& probes) {
          std::lock_guard lock(epoch_mutex_);
          if (!epoch_) return;
          for (const auto& st : epoch_->actors) {
            if (st == nullptr) continue;
            QueueProbe& q = probes[st->spec.op];
            q.valid = true;
            // An op's push stalls when the entry actor's buffer is full;
            // over several actors (emitter/replicas) report the fullest.
            const std::size_t depth = st->mailbox.size();
            const std::size_t cap = st->mailbox.capacity();
            if (q.capacity == 0 ||
                depth * q.capacity > q.depth * cap) {  // depth/cap > q.depth/q.cap
              q.depth = depth;
              q.capacity = cap;
            }
          }
        });
    telemetry_.set_blocked_sink(profiler_.get());
  }
  if (config_.stats_port > 0) {
    // Bind before the scheduler starts: a taken or invalid port throws
    // here, before any actor thread exists.
    std::vector<std::string> names;
    names.reserve(topology_.num_operators());
    for (std::size_t i = 0; i < topology_.num_operators(); ++i) {
      names.push_back(topology_.op(static_cast<OpIndex>(i)).name);
    }
    stats_server_ = std::make_unique<StatsServer>(
        config_.stats_port, [this] { return metrics_sample(); }, std::move(names));
  }
  run_start_ = Clock::now();
  {
    // reconfigure() gates on started_ under epoch_mutex_; publish it only
    // after the scheduler is fully up so a concurrent reconfigure can never
    // join() a scheduler whose worker threads are still being spawned.
    std::lock_guard lock(epoch_mutex_);
    active_actors_.store(static_cast<int>(epoch_->actors.size()));
    epoch_->scheduler = make_epoch_scheduler();
    epoch_->scheduler->start(*this);
    started_.store(true, std::memory_order_release);
  }
  if (config_.elastic) {
    ReconfigOptions options;
    options.period = config_.reconfig_period;
    options.threshold = config_.reconfig_threshold;
    options.optimize.slo_p99 = config_.slo_p99;
    options.optimize.objective = config_.objective;
    options.optimize.buffer_capacity = config_.mailbox_capacity;
    controller_ = std::make_unique<ReconfigController>(*this, options);
    controller_->start();
  }
  if (checkpoint_mgr_ != nullptr) {
    checkpoint_controller_ =
        std::make_unique<CheckpointController>(*this, config_.checkpoint_period);
    checkpoint_controller_->start();
  }
  if (profiler_) profiler_->start();
  if (stats_server_) stats_server_->start();
  if (exporter_) exporter_->start();
}

void Engine::join_execution() {
  std::lock_guard lock(epoch_mutex_);
  if (epoch_ && epoch_->scheduler) epoch_->scheduler->join();
}

RunStats Engine::finalize_run() {
  if (stats_server_) stats_server_->stop();
  if (profiler_) profiler_->stop();  // final fold before the exporter's last line
  if (exporter_) exporter_->stop();  // final sample while the epoch is alive
  std::uint64_t dropped = dropped_prior_epochs_;
  for (const auto& actor : epoch_->actors) dropped += actor->mailbox.dropped();
  {
    std::lock_guard lock(failure_mutex_);
    require(first_failure_.empty(), "engine run failed: " + first_failure_);
  }
  RunStats stats;
  stats.dropped = dropped;
  return stats;
}

void Engine::stop_run() {
  if (controller_) controller_->stop();  // an in-flight switch-over completes
  // Joined before the stop flag rises (and before epoch_mutex_ is taken —
  // its thread may be inside checkpoint_now holding it): an in-flight
  // snapshot always completes or aborts cleanly.
  if (checkpoint_controller_) checkpoint_controller_->stop();
  std::lock_guard lock(epoch_mutex_);
  stop_.store(true);
}

void Engine::request_stop() {
  // Raising stop before the run starts is legal: the run then drains
  // immediately (sources see stop_requested on their first pump).  That
  // closes the race between a hot retire and the tenant's runner thread
  // still being inside start_execution().
  stop_run();
}

std::vector<int> Engine::replica_counts() const {
  std::vector<int> replicas(topology_.num_operators(), 1);
  std::lock_guard lock(epoch_mutex_);
  if (!epoch_) return replicas;
  for (std::size_t i = 0; i < replicas.size(); ++i) {
    replicas[i] = epoch_->deployment.replication.replicas_of(static_cast<OpIndex>(i));
  }
  return replicas;
}

RunStats Engine::run_for(std::chrono::duration<double> duration) {
  start_execution();
  const double total = duration.count();
  const double warmup = total * config_.warmup_fraction;
  std::this_thread::sleep_for(std::chrono::duration<double>(warmup));
  reset_queue_peaks();  // high-water marks measure the window, not warmup
  const CounterSnapshot begin = board_.open_window(seconds_between(run_start_, Clock::now()));
  std::this_thread::sleep_for(std::chrono::duration<double>(total - warmup));
  CounterSnapshot end = board_.close_window(seconds_between(run_start_, Clock::now()));
  fill_queue_stats(end);
  stop_run();
  join_execution();
  write_final_checkpoint();
  const double wall = seconds_between(run_start_, Clock::now());
  const CounterSnapshot final_totals = board_.snapshot(wall);
  const RunStats partial = finalize_run();
  const LatencyReport latency = board_.latency_report();
  const std::vector<int> replicas = replica_counts();
  RunStats stats = make_run_stats(topology_, begin, end, final_totals, wall,
                                  partial.dropped, &latency, &replicas);
  stats.epochs = epochs();
  stats.reconfigurations = stats.epochs - 1;
  stats.keys_migrated = keys_migrated_.load(std::memory_order_relaxed);
  stats.scheduler = scheduler_counters();
  stats.predicted = predicted_latency();
  stats.checkpoints_written = checkpoints_written();
  stats.last_epoch_persisted = last_epoch_persisted();
  stats.recovered_from_epoch = recovered_from_epoch_;
  if (profiler_) {
    stats.has_profile = true;
    stats.profile = profiler_->snapshot();
    stats.bottlenecks = profiler_->bottlenecks();
  }
  return stats;
}

RunStats Engine::run_until_complete(std::chrono::duration<double> max_duration) {
  start_execution();
  // Finite runs meter every tuple: the window spans the whole run.
  const CounterSnapshot begin = board_.open_window(0.0);
  {
    std::unique_lock lock(done_mutex_);
    done_cv_.wait_for(lock, max_duration, [this] {
      return active_actors_.load() == 0 &&
             !swap_in_progress_.load(std::memory_order_acquire);
    });
  }
  stop_run();  // natural completion: a no-op beyond stopping the controller
  join_execution();
  write_final_checkpoint();
  const double wall = seconds_between(run_start_, Clock::now());
  CounterSnapshot end = board_.close_window(wall);
  fill_queue_stats(end);
  const RunStats partial = finalize_run();
  const LatencyReport latency = board_.latency_report();
  const std::vector<int> replicas = replica_counts();
  RunStats stats =
      make_run_stats(topology_, begin, end, end, wall, partial.dropped, &latency, &replicas);
  stats.epochs = epochs();
  stats.reconfigurations = stats.epochs - 1;
  stats.keys_migrated = keys_migrated_.load(std::memory_order_relaxed);
  stats.scheduler = scheduler_counters();
  stats.predicted = predicted_latency();
  stats.checkpoints_written = checkpoints_written();
  stats.last_epoch_persisted = last_epoch_persisted();
  stats.recovered_from_epoch = recovered_from_epoch_;
  if (profiler_) {
    stats.has_profile = true;
    stats.profile = profiler_->snapshot();
    stats.bottlenecks = profiler_->bottlenecks();
  }
  return stats;
}

}  // namespace ss::runtime
