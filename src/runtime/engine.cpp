#include "runtime/engine.hpp"

#include <algorithm>
#include <deque>
#include <exception>
#include <map>
#include <set>
#include <thread>
#include <unordered_map>

#include "core/error.hpp"
#include "runtime/clock.hpp"
#include "runtime/synthetic.hpp"

namespace ss::runtime {

AppFactory synthetic_factory(double time_scale, std::int64_t max_items) {
  AppFactory factory;
  factory.source = [time_scale, max_items](OpIndex op, const OperatorSpec& spec) {
    return std::make_unique<SyntheticSource>(spec, 0x9e3779b9u + op, time_scale, max_items);
  };
  factory.logic = [time_scale](OpIndex op, const OperatorSpec& spec) {
    return std::make_unique<SyntheticOperator>(spec, 0xa076'1d64'78bd'642fULL + op, time_scale);
  };
  return factory;
}

// ---------------------------------------------------------------- ActorState

struct Engine::ActorState {
  ActorState(ActorSpec s, std::size_t mailbox_capacity, OverflowPolicy policy, Rng r)
      : spec(std::move(s)), mailbox(mailbox_capacity, policy), rng(r) {}

  struct PendingItem {
    OpIndex member;
    Tuple tuple;
    OpIndex from;
  };

  ActorSpec spec;
  Mailbox mailbox;
  Rng rng;
  std::unique_ptr<OperatorLogic> logic;    // worker / replica
  std::unique_ptr<SourceLogic> source;     // source
  std::vector<std::unique_ptr<OperatorLogic>> member_logic;  // meta
  std::unordered_map<OpIndex, std::size_t> member_pos;       // meta
  std::deque<PendingItem> pending;                           // meta work list
  ReplicaSelector selector;                // emitter
  std::vector<int> replica_targets;        // emitter
  int collector_actor = -1;                // replica
  std::vector<double> key_cdf;             // emitter of partitioned op
  // --- order-preserving collection (EngineConfig::preserve_replica_order)
  std::int64_t next_seq = 0;               // emitter: stamp for the next input
  std::int64_t current_seq = -1;           // replica: seq of the input in flight
  std::int64_t expected_seq = 0;           // collector: next seq to release
  std::map<std::int64_t, std::vector<Message>> held;  // collector: buffered results
  std::set<std::int64_t> completed;        // collector: seq marks received
};

// ---------------------------------------------------------------- Collectors

/// Results of a plain operator (or the source, or a collector actor): the
/// engine routes them to the destination's entry actor.
class Engine::RouteCollector final : public Collector {
 public:
  RouteCollector(Engine& engine, OpIndex op, Rng& rng) : engine_(engine), op_(op), rng_(rng) {}

  void emit(const Tuple& t) override {
    if (engine_.route_result(op_, kInvalidOp, t, rng_)) engine_.board_.add_emitted(op_);
  }
  void emit_to(OpIndex target, const Tuple& t) override {
    if (engine_.route_result(op_, target, t, rng_)) engine_.board_.add_emitted(op_);
  }

 private:
  Engine& engine_;
  OpIndex op_;
  Rng& rng_;
};

/// Results of a replica: forwarded to the collector actor, which performs
/// the logical routing (and the emitted-counting) for the whole operator.
class Engine::ReplicaCollector final : public Collector {
 public:
  ReplicaCollector(Engine& engine, OpIndex op, int collector_actor, std::int64_t seq = -1)
      : engine_(engine), op_(op), collector_actor_(collector_actor), seq_(seq) {}

  void emit(const Tuple& t) override { forward(kInvalidOp, t); }
  void emit_to(OpIndex target, const Tuple& t) override { forward(target, t); }

 private:
  void forward(OpIndex target, const Tuple& t) {
    Message m = Message::data(t, op_, target);
    m.seq = seq_;  // results inherit the seq of the input that produced them
    engine_.send_to_actor(collector_actor_, m);
  }

  Engine& engine_;
  OpIndex op_;
  int collector_actor_;
  std::int64_t seq_;
};

/// Results of a fused member (Algorithm 4): stay inside the meta actor when
/// the destination is a member of the same group, leave otherwise.
class Engine::MetaCollector final : public Collector {
 public:
  MetaCollector(Engine& engine, ActorState& state, OpIndex member)
      : engine_(engine), state_(state), member_(member) {}

  void emit(const Tuple& t) override {
    deliver(engine_.routers_[member_].choose(state_.rng), t);
  }
  void emit_to(OpIndex target, const Tuple& t) override { deliver(target, t); }

 private:
  void deliver(OpIndex dest, const Tuple& t) {
    if (dest == kInvalidOp) {  // member is a sink: the result leaves the system
      engine_.meter_exit(t);
      engine_.board_.add_emitted(member_);
      return;
    }
    const int group = engine_.graph_.group_of[member_];
    if (engine_.graph_.group_of[dest] == group) {
      state_.pending.push_back(ActorState::PendingItem{dest, t, member_});
      engine_.board_.add_emitted(member_);
      return;
    }
    if (engine_.route_result(member_, dest, t, state_.rng)) {
      engine_.board_.add_emitted(member_);
    }
  }

  Engine& engine_;
  ActorState& state_;
  OpIndex member_;
};

// ---------------------------------------------------------------- Engine

Engine::Engine(const Topology& t, Deployment deployment, AppFactory factory,
               EngineConfig config)
    : topology_(t),
      deployment_(std::move(deployment)),
      factory_(std::move(factory)),
      config_(config),
      graph_(ActorGraph::build(t, deployment_)),
      board_(t.num_operators()) {
  require(factory_.source != nullptr && factory_.logic != nullptr,
          "Engine: AppFactory must provide both source and logic factories");

  routers_.reserve(t.num_operators());
  for (OpIndex i = 0; i < t.num_operators(); ++i) routers_.emplace_back(t, i);

  Rng master(config_.seed);
  actors_.reserve(graph_.num_actors());
  for (const ActorSpec& spec : graph_.actors) {
    auto state = std::make_unique<ActorState>(spec, config_.mailbox_capacity,
                                              config_.overflow, master.split());
    const OperatorSpec& op = topology_.op(spec.op);
    switch (spec.kind) {
      case ActorKind::kSource:
        state->source = factory_.source(spec.op, op);
        break;
      case ActorKind::kWorker:
      case ActorKind::kReplica:
        state->logic = factory_.logic(spec.op, op);
        break;
      case ActorKind::kEmitter: {
        state->replica_targets = spec.downstream;  // exactly the replica ids
        const int n = static_cast<int>(state->replica_targets.size());
        if (op.state == StateKind::kPartitionedStateful) {
          KeyPartition partition;
          if (spec.op < deployment_.partitions.size() &&
              !deployment_.partitions[spec.op].replica_of_key.empty()) {
            partition = deployment_.partitions[spec.op];
          } else {
            partition = partition_keys(op.keys, n);
          }
          require(partition.replicas == n,
                  "Engine: partition map of '" + op.name + "' disagrees with replica count");
          state->selector = ReplicaSelector::by_key(std::move(partition));
          if (config_.assign_keys_at_emitter) {
            double running = 0.0;
            for (std::size_t k = 0; k < op.keys.num_keys(); ++k) {
              running += op.keys.probability(k);
              state->key_cdf.push_back(running);
            }
            if (!state->key_cdf.empty()) state->key_cdf.back() = 1.0;
          }
        } else {
          state->selector = ReplicaSelector::round_robin(n);
        }
        break;
      }
      case ActorKind::kCollector:
        break;
      case ActorKind::kMeta: {
        for (std::size_t p = 0; p < spec.members.size(); ++p) {
          const OpIndex m = spec.members[p];
          state->member_logic.push_back(factory_.logic(m, topology_.op(m)));
          state->member_pos.emplace(m, p);
        }
        break;
      }
    }
    // Replica actors forward to the collector: by construction the single
    // downstream entry of a replica is the collector actor.
    if (spec.kind == ActorKind::kReplica) state->collector_actor = spec.downstream.front();
    actors_.push_back(std::move(state));
  }
}

Engine::~Engine() { join_execution(); }

// ------------------------------------------------- EngineCore (scheduler API)

bool Engine::is_source(std::size_t id) const {
  return actors_[id]->spec.kind == ActorKind::kSource;
}

int Engine::incoming_channels(std::size_t id) const {
  return actors_[id]->spec.incoming_channels;
}

Mailbox& Engine::mailbox(std::size_t id) { return actors_[id]->mailbox; }

bool Engine::send_to_actor(int actor_id, const Message& m) {
  const auto timeout =
      std::chrono::duration_cast<std::chrono::nanoseconds>(config_.send_timeout);
  return scheduler_->deliver(static_cast<std::size_t>(actor_id), m, timeout);
}

bool Engine::route_result(OpIndex op, OpIndex target, const Tuple& tuple, Rng& rng) {
  if (target == kInvalidOp) {
    target = routers_[op].choose(rng);
    if (target == kInvalidOp) {  // sink: the result leaves the system
      meter_exit(tuple);
      return true;
    }
  } else {
    require(routers_[op].is_destination(target),
            "emit_to: '" + topology_.op(target).name + "' is not a downstream neighbor of '" +
                topology_.op(op).name + "'");
  }
  const Message m = Message::data(tuple, op, target);
  return send_to_actor(graph_.entry[target], m);
}

void Engine::release_ordered(ActorState& st) {
  // Release buffered results of consecutive completed sequence numbers.
  while (st.completed.count(st.expected_seq) > 0) {
    auto it = st.held.find(st.expected_seq);
    if (it != st.held.end()) {
      for (const Message& m : it->second) {
        if (route_result(st.spec.op, m.target, m.tuple, st.rng)) {
          board_.add_emitted(st.spec.op);
        }
      }
      st.held.erase(it);
    }
    st.completed.erase(st.expected_seq);
    ++st.expected_seq;
  }
}

// -------------------------------------------------------------- latency hooks

// Sources stamp Tuple::ts with the time since the run started (run_seconds,
// monotonic clock); these two hooks measure against the same base, so a
// sample is exactly the tuple's age.  Recording is gated on the board's
// steady-state window (run_for opens it after warmup) and every sample
// costs one clock read plus a wait-free histogram increment.

void Engine::meter_arrival(OpIndex op, const Message& msg) {
  if (!board_.latency_enabled() || msg.kind != Message::Kind::kData) return;
  board_.add_latency(op, run_seconds() - msg.tuple.ts);
}

void Engine::meter_exit(const Tuple& tuple) {
  if (!board_.latency_enabled()) return;
  board_.add_end_to_end(run_seconds() - tuple.ts);
}

void Engine::run_meta(std::size_t id, OpIndex member, const Tuple& tuple, OpIndex from) {
  ActorState& st = *actors_[id];
  st.pending.push_back(ActorState::PendingItem{member, tuple, from});
  while (!st.pending.empty()) {
    ActorState::PendingItem item = st.pending.front();
    st.pending.pop_front();
    board_.add_processed(item.member);
    MetaCollector out(*this, st, item.member);
    st.member_logic[st.member_pos.at(item.member)]->process(item.tuple, item.from, out);
  }
}

void Engine::finish_actor(std::size_t id) {
  ActorState& st = *actors_[id];
  switch (st.spec.kind) {
    case ActorKind::kWorker: {
      RouteCollector out(*this, st.spec.op, st.rng);
      st.logic->on_finish(out);
      break;
    }
    case ActorKind::kReplica: {
      ReplicaCollector out(*this, st.spec.op, st.collector_actor);
      st.logic->on_finish(out);
      break;
    }
    case ActorKind::kMeta: {
      // Flush members upstream-first so window tails cascade downstream.
      for (OpIndex m : st.spec.members) {
        MetaCollector out(*this, st, m);
        st.member_logic[st.member_pos.at(m)]->on_finish(out);
        while (!st.pending.empty()) {
          ActorState::PendingItem item = st.pending.front();
          st.pending.pop_front();
          board_.add_processed(item.member);
          MetaCollector inner(*this, st, item.member);
          st.member_logic[st.member_pos.at(item.member)]->process(item.tuple, item.from, inner);
        }
      }
      break;
    }
    case ActorKind::kCollector: {
      // Release anything still held (inputs whose marks raced the drain),
      // in sequence order.
      for (auto& [seq, messages] : st.held) {
        (void)seq;
        for (const Message& m : messages) {
          if (route_result(st.spec.op, m.target, m.tuple, st.rng)) {
            board_.add_emitted(st.spec.op);
          }
        }
      }
      st.held.clear();
      break;
    }
    case ActorKind::kSource:
    case ActorKind::kEmitter:
      break;
  }
  // Propagate end-of-stream: one token per outgoing channel.
  for (int target : st.spec.downstream) {
    actors_[static_cast<std::size_t>(target)]->mailbox.send_unbounded(Message::shutdown());
  }
}

void Engine::process_message(std::size_t id, Message& msg) {
  ActorState& st = *actors_[id];
  const OpIndex op = st.spec.op;
  switch (st.spec.kind) {
    case ActorKind::kWorker: {
      board_.add_processed(op);
      meter_arrival(op, msg);
      RouteCollector out(*this, op, st.rng);
      st.logic->process(msg.tuple, msg.from, out);
      break;
    }
    case ActorKind::kReplica: {
      board_.add_processed(op);
      meter_arrival(op, msg);
      st.current_seq = msg.seq;
      ReplicaCollector out(*this, op, st.collector_actor, msg.seq);
      st.logic->process(msg.tuple, msg.from, out);
      if (msg.seq >= 0) {
        // Tell the collector this input is fully processed so it can
        // release the next sequence number.
        actors_[static_cast<std::size_t>(st.collector_actor)]->mailbox.send_unbounded(
            Message::seq_mark(msg.seq));
      }
      break;
    }
    case ActorKind::kEmitter: {
      if (!st.key_cdf.empty()) {
        // Synthetic mode: draw the key this item carries from the
        // operator's key distribution so replica loads realize the exact
        // shares the cost model assumed.
        const double u = st.rng.next_double();
        auto it = std::lower_bound(st.key_cdf.begin(), st.key_cdf.end(), u);
        if (it == st.key_cdf.end()) --it;
        msg.tuple.key = static_cast<std::int64_t>(it - st.key_cdf.begin());
      }
      if (config_.preserve_replica_order) msg.seq = st.next_seq++;
      const int r = st.selector.select(msg.tuple.key, st.rng);
      send_to_actor(st.replica_targets[static_cast<std::size_t>(r)], msg);
      break;
    }
    case ActorKind::kCollector: {
      // msg carries an un-routed (or explicitly targeted) result of `op`,
      // or a seq mark when order-preserving collection is on.
      if (msg.kind == Message::Kind::kSeqMark) {
        st.completed.insert(msg.seq);
        release_ordered(st);
      } else if (msg.seq < 0) {
        if (route_result(op, msg.target, msg.tuple, st.rng)) board_.add_emitted(op);
      } else {
        st.held[msg.seq].push_back(msg);
        release_ordered(st);
      }
      break;
    }
    case ActorKind::kMeta:
      // The delay to the entry member; intra-group hand-offs are mailbox-
      // free (Alg. 4) and add no queueing worth metering.
      meter_arrival(msg.target, msg);
      run_meta(id, msg.target, msg.tuple, msg.from);
      break;
    case ActorKind::kSource:
      break;  // sources have no inbound data
  }
}

void Engine::actor_loop(std::size_t id) {
  ActorState& st = *actors_[id];
  int shutdowns = 0;
  Message msg;
  while (st.mailbox.receive(msg)) {
    if (msg.kind == Message::Kind::kShutdown) {
      if (++shutdowns >= st.spec.incoming_channels) break;
      continue;
    }
    process_message(id, msg);
  }
  finish_actor(id);
}

void Engine::source_loop(std::size_t id) {
  ActorState& st = *actors_[id];
  const OpIndex op = st.spec.op;
  RouteCollector out(*this, op, st.rng);
  Tuple tuple;
  while (!stop_.load(std::memory_order_relaxed)) {
    if (!st.source->next(tuple)) break;
    tuple.ts = run_seconds();  // source stamp: the latency time base
    board_.add_processed(op);
    out.emit(tuple);
  }
  finish_actor(id);
}

void Engine::run_actor(std::size_t id) {
  if (is_source(id)) {
    source_loop(id);
  } else {
    actor_loop(id);
  }
}

bool Engine::pump_source(std::size_t id, int quantum) {
  ActorState& st = *actors_[id];
  const OpIndex op = st.spec.op;
  RouteCollector out(*this, op, st.rng);
  Tuple tuple;
  for (int i = 0; i < quantum; ++i) {
    if (stop_.load(std::memory_order_relaxed)) return false;
    if (!st.source->next(tuple)) return false;
    tuple.ts = run_seconds();  // source stamp: the latency time base
    board_.add_processed(op);
    out.emit(tuple);
  }
  return true;
}

void Engine::report_failure(std::size_t id, const std::string& what) {
  {
    std::lock_guard lock(failure_mutex_);
    if (first_failure_.empty()) {
      first_failure_ = "actor '" + actors_[id]->spec.name + "': " + what;
    }
  }
  stop_.store(true);
  actors_[id]->mailbox.close();
  for (int target : actors_[id]->spec.downstream) {
    actors_[static_cast<std::size_t>(target)]->mailbox.send_unbounded(Message::shutdown());
  }
}

void Engine::actor_done() {
  if (active_actors_.fetch_sub(1) == 1) {
    std::lock_guard lock(done_mutex_);
    done_cv_.notify_all();
  }
}

// ------------------------------------------------------------------- running

void Engine::start_execution() {
  require(!started_, "Engine: run() can only be called once per instance");
  started_ = true;
  run_start_ = Clock::now();
  active_actors_.store(static_cast<int>(actors_.size()));
  scheduler_ = make_scheduler(config_.scheduler, config_.workers, config_.pool_batch);
  scheduler_->start(*this);
}

void Engine::join_execution() {
  if (scheduler_) scheduler_->join();
}

RunStats Engine::finalize_run() {
  std::uint64_t dropped = 0;
  for (const auto& actor : actors_) dropped += actor->mailbox.dropped();
  {
    std::lock_guard lock(failure_mutex_);
    require(first_failure_.empty(), "engine run failed: " + first_failure_);
  }
  RunStats stats;
  stats.dropped = dropped;
  return stats;
}

RunStats Engine::run_for(std::chrono::duration<double> duration) {
  start_execution();
  const double total = duration.count();
  const double warmup = total * config_.warmup_fraction;
  std::this_thread::sleep_for(std::chrono::duration<double>(warmup));
  board_.set_latency_enabled(true);
  const CounterSnapshot begin = board_.snapshot(seconds_between(run_start_, Clock::now()));
  std::this_thread::sleep_for(std::chrono::duration<double>(total - warmup));
  const CounterSnapshot end = board_.snapshot(seconds_between(run_start_, Clock::now()));
  board_.set_latency_enabled(false);
  stop_.store(true);
  join_execution();
  const double wall = seconds_between(run_start_, Clock::now());
  const CounterSnapshot final_totals = board_.snapshot(wall);
  const RunStats partial = finalize_run();
  const LatencyReport latency = board_.latency_report();
  return make_run_stats(topology_, begin, end, final_totals, wall, partial.dropped, &latency);
}

RunStats Engine::run_until_complete(std::chrono::duration<double> max_duration) {
  start_execution();
  board_.set_latency_enabled(true);  // finite runs meter every tuple
  const CounterSnapshot begin = board_.snapshot(0.0);
  {
    std::unique_lock lock(done_mutex_);
    if (!done_cv_.wait_for(lock, max_duration, [this] { return active_actors_.load() == 0; })) {
      stop_.store(true);
    }
  }
  join_execution();
  const double wall = seconds_between(run_start_, Clock::now());
  const CounterSnapshot end = board_.snapshot(wall);
  const RunStats partial = finalize_run();
  const LatencyReport latency = board_.latency_report();
  return make_run_stats(topology_, begin, end, end, wall, partial.dropped, &latency);
}

}  // namespace ss::runtime
