#include "runtime/controller.hpp"

#include <chrono>
#include <sstream>

#include "runtime/engine.hpp"
#include "runtime/profiler.hpp"

namespace ss::runtime {

ReconfigController::ReconfigController(Engine& engine, ReconfigOptions options)
    : engine_(engine), options_(std::move(options)) {
  if (options_.period <= 0.0) options_.period = 0.5;
  if (options_.threshold < 0.0) options_.threshold = 0.0;
}

ReconfigController::~ReconfigController() { stop(); }

void ReconfigController::start() {
  prev_ = engine_.sample();
  e2e_prev_ = engine_.stats_board().end_to_end_snapshot();
  thread_ = std::thread([this] { loop(); });
}

void ReconfigController::stop() {
  {
    std::lock_guard lock(mu_);
    stop_.store(true);
  }
  stop_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

std::vector<ReconfigDecision> ReconfigController::decisions() const {
  std::lock_guard lock(mu_);
  return decisions_;
}

void ReconfigController::loop() {
  const auto period = std::chrono::duration<double>(options_.period);
  while (true) {
    {
      std::unique_lock lock(mu_);
      if (stop_cv_.wait_for(lock, period, [this] { return stop_.load(); })) return;
    }
    ReconfigDecision decision = evaluate_window();
    std::lock_guard lock(mu_);
    decisions_.push_back(std::move(decision));
  }
}

ReconfigDecision ReconfigController::evaluate_window() {
  const CounterSnapshot now = engine_.sample();
  const Topology& topology = engine_.topology();
  const double window = now.at_seconds - prev_.at_seconds;

  // Counter deltas of the window -> measured per-operator behaviour.
  std::vector<MeasuredOperator> measured(topology.num_operators());
  for (OpIndex i = 0; i < topology.num_operators(); ++i) {
    MeasuredOperator& m = measured[i];
    m.samples = now.processed[i] - prev_.processed[i];
    if (window > 0.0) {
      m.processed_rate = static_cast<double>(m.samples) / window;
      m.emitted_rate = static_cast<double>(now.emitted[i] - prev_.emitted[i]) / window;
    }
    // Measured service time from the busy-time telemetry: busy is summed
    // across an operator's replicas, so busy / items is the per-item mean
    // regardless of replication — exactly Alg. 1's 1/μ.  Backpressure waits
    // are charged to blocked, never busy, so this stays pure service even
    // for operators that spend the window blocked downstream.
    if (m.samples > 0 && i < now.busy_ns.size() && i < prev_.busy_ns.size()) {
      const std::uint64_t busy_delta = now.busy_ns[i] - prev_.busy_ns[i];
      m.service_time = static_cast<double>(busy_delta) / 1e9 / static_cast<double>(m.samples);
    }
  }
  prev_ = now;

  // Sub-saturation overlay: the busy-time quotient above under-estimates the
  // non-blocking rate of operators with headroom (slice overhead amortized
  // over few items per activation).  When the online profiler has a confident
  // estimate for an operator, trust it instead, and carry the fitted
  // variability terms (cv², queue-full fraction) into the optimizer so the
  // latency model runs on measured inputs rather than exponential defaults.
  int ops_estimated = 0;
  if (const ProfileEstimator* prof = engine_.profiler(); prof != nullptr) {
    const std::vector<ProfileEstimate> estimates = prof->snapshot();
    for (OpIndex i = 0; i < topology.num_operators() && i < estimates.size(); ++i) {
      const ProfileEstimate& p = estimates[i];
      if (p.estimated_rate <= 0.0 || p.confidence < options_.estimate_confidence) continue;
      MeasuredOperator& m = measured[i];
      m.service_time = 1.0 / p.estimated_rate;
      m.cv2 = p.cv2;
      m.queue_full_fraction = p.queue_full_fraction;
      ++ops_estimated;
    }
  }

  // Windowed measured end-to-end p99 (the SLO's quantity): delta of the
  // latency histogram over the same window as the counter deltas above.
  const LatencySummary window_latency = engine_.stats_board().end_to_end_since(e2e_prev_);
  e2e_prev_ = engine_.stats_board().end_to_end_snapshot();

  ReoptimizeOptions reopt;
  reopt.optimize = options_.optimize;
  reopt.min_gain = options_.threshold;
  reopt.min_samples = options_.min_samples;
  if (window_latency.count >= options_.min_samples) {
    reopt.measured_p99 = window_latency.p99;
  }
  const Deployment current = engine_.deployment();
  const ReoptimizeResult result = reoptimize(topology, current, measured, reopt);

  ReconfigDecision decision;
  decision.at_seconds = now.at_seconds;
  decision.measured_throughput = measured[topology.source()].emitted_rate;
  decision.predicted_current = result.predicted_current;
  decision.predicted_next = result.predicted_next;
  decision.gain = result.gain;
  decision.ops_changed = result.diff.ops_changed;
  decision.ops_estimated = ops_estimated;
  decision.measured_p99 = reopt.measured_p99;
  decision.predicted_p99_next = result.predicted_p99_next;
  decision.slo_breached = result.slo_breached;

  if (!result.enough_samples) {
    decision.reason = "insufficient samples in window";
  } else if (!result.diff.any()) {
    decision.reason = result.slo_breached
                          ? "slo breached but no better deployment found (infeasible)"
                          : "deployment already optimal";
  } else if (!result.beneficial) {
    std::ostringstream reason;
    reason << "predicted gain " << result.gain * 100.0 << "% below threshold "
           << options_.threshold * 100.0 << "%";
    decision.reason = reason.str();
  } else if (redeployments_.load(std::memory_order_relaxed) >= options_.max_redeployments) {
    decision.reason = "max redeployments reached";
  } else if (engine_.reconfigure(result.next)) {
    decision.redeployed = true;
    redeployments_.fetch_add(1, std::memory_order_relaxed);
    std::ostringstream reason;
    reason << "redeployed: " << result.diff.ops_changed << " operator(s) changed, predicted "
           << decision.predicted_current << " -> " << decision.predicted_next << " tuples/s";
    if (result.slo_breached) {
      reason << " (slo breach: p99 " << decision.measured_p99 * 1e3 << " ms > "
             << options_.optimize.slo_p99 * 1e3 << " ms, predicted repair to "
             << result.predicted_p99_next * 1e3 << " ms)";
    }
    decision.reason = reason.str();
    // The fence window is not a steady-state sample; restart the window.
    prev_ = engine_.sample();
    e2e_prev_ = engine_.stats_board().end_to_end_snapshot();
  } else {
    decision.reason = "engine declined (run stopping or source finished)";
  }
  return decision;
}

}  // namespace ss::runtime
