// Multi-tenant execution: N topologies as tenants of one SchedulerHost.
//
// TenantGroup owns the shared host and one Engine per application.  Each
// tenant runs on its own driver thread (run_until_complete), but every
// actor of every tenant executes on the host's K workers under weighted
// stride dispatch.  Tenants are hot: submit() registers a new application
// while the others keep running (its actors fence into the host at their
// own epoch boundary), and retire() drains one application — every tuple
// its source emitted is processed — without pausing the neighbors.
//
// JointController is the multi-tenant generalization of the per-engine
// ReconfigController: one sampling loop measures every tenant's window
// (counter deltas → measured operator profiles, windowed e2e p99), feeds
// the measured topologies into optimize_joint() under the global replica
// budget, and re-deploys the tenants whose granted share changed — which
// is exactly how an SLO-breached tenant claws replicas back from an
// over-provisioned neighbor at the next elastic epoch.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/joint.hpp"
#include "runtime/engine.hpp"
#include "runtime/scheduler_host.hpp"

namespace ss::runtime {

/// One application to run as a tenant.
struct TenantSpec {
  std::string name;
  Topology topology;
  /// Initial deployment (typically deployment_of(auto_optimize(...)) or a
  /// TenantAllocation::deployment from optimize_joint()).
  Deployment deployment;
  AppFactory factory;
  /// Per-engine knobs (mailbox capacity, metrics path, ...).  The group
  /// overwrites `host`, `tenant`, `tenant_weight` and disables the
  /// per-engine elastic controller (the joint controller owns elasticity).
  EngineConfig config{};
  /// Stride-scheduling weight on the shared host and importance in the
  /// joint allocation.
  double weight = 1.0;
  /// Optimizer options (SLO, objective, ...) the joint controller uses
  /// for this tenant's workload.
  AutoOptimizeOptions optimize{};
  /// Give up on the run after this long even if the source never ends.
  std::chrono::duration<double> max_duration{30.0};
};

struct JointControllerOptions {
  double period = 0.5;        ///< seconds between joint evaluations
  double threshold = 0.10;    ///< min predicted relative gain to re-deploy
  std::uint64_t min_samples = 50;
  int replica_budget = 0;     ///< global replica budget; <= 0 = unbounded
  int max_redeployments = 16;
};

/// One joint evaluation window, kept for reporting and tests.
struct JointDecision {
  double at_seconds = 0.0;
  /// Per live tenant, in group submission order.
  std::vector<std::string> names;
  std::vector<int> granted;     ///< replicas granted by optimize_joint
  std::vector<int> current;     ///< replicas deployed before this window
  std::vector<bool> redeployed;
  std::vector<bool> slo_breached;
  bool budget_binding = false;
  std::string reason;
};

class JointController;

class TenantGroup {
 public:
  /// `workers`/`batch` size the shared SchedulerHost; `pin` maps its
  /// workers onto CPUs (cores/sockets) or leaves placement to the OS.
  explicit TenantGroup(int workers = 0, int batch = 0, PinMode pin = PinMode::kNone);
  ~TenantGroup();

  TenantGroup(const TenantGroup&) = delete;
  TenantGroup& operator=(const TenantGroup&) = delete;

  /// Registers the tenant and starts it immediately on the shared host;
  /// running neighbors are not paused.  Returns the tenant's index.
  std::size_t submit(TenantSpec spec);

  /// Hot-retires tenant `index`: its source stops, the pipeline drains
  /// through the shutdown protocol (zero tuples lost), the host drops its
  /// actor-set.  Blocks until drained; neighbors keep running.  Returns
  /// the tenant's final RunStats.  Rethrows the tenant's failure, if any.
  RunStats retire(std::size_t index);

  /// Waits for every still-running tenant to complete naturally (finite
  /// sources) and returns all final stats in submission order.  Tenants
  /// already retired keep the stats collected then.
  std::vector<RunStats> wait_all();

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] const std::string& name(std::size_t index) const;
  /// The tenant's engine (sampling, reconfigure).  Valid until the group
  /// dies; the engine outlives its run.
  [[nodiscard]] Engine& engine(std::size_t index);
  [[nodiscard]] SchedulerHost& host() { return host_; }
  /// True once the tenant's run returned (drained or failed).
  [[nodiscard]] bool finished(std::size_t index) const;

  /// Starts the joint elastic loop (stopped automatically on destruction
  /// and by wait_all()).
  void start_controller(JointControllerOptions options);
  void stop_controller();
  [[nodiscard]] const JointController* controller() const { return controller_.get(); }

 private:
  friend class JointController;

  struct Slot {
    TenantSpec spec;
    std::unique_ptr<Engine> engine;
    std::thread runner;
    RunStats stats;
    std::exception_ptr error;
    std::atomic<bool> finished{false};
    bool joined = false;  ///< runner thread collected (group mutex)
  };

  /// Joins the runner of `slot` (idempotent) and rethrows its failure.
  RunStats collect(Slot& slot);

  SchedulerHost host_;
  mutable std::mutex mu_;  ///< guards slots_ growth and join bookkeeping
  std::vector<std::unique_ptr<Slot>> slots_;
  std::unique_ptr<JointController> controller_;
};

/// Samples every live tenant on a fixed period and drives joint
/// re-deployments through optimize_joint().
class JointController {
 public:
  JointController(TenantGroup& group, JointControllerOptions options);
  ~JointController();

  JointController(const JointController&) = delete;
  JointController& operator=(const JointController&) = delete;

  void start();
  void stop();  ///< joins the loop; an in-flight switch-over completes

  [[nodiscard]] std::vector<JointDecision> decisions() const;
  [[nodiscard]] int redeployments() const {
    return redeployments_.load(std::memory_order_relaxed);
  }

 private:
  struct TenantWindow {
    CounterSnapshot prev;
    HistogramSnapshot e2e_prev;
    bool primed = false;
  };

  void loop();
  JointDecision evaluate_window();

  TenantGroup& group_;
  JointControllerOptions options_;
  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::atomic<int> redeployments_{0};
  mutable std::mutex mu_;  ///< guards decisions_ and the stop cv
  std::condition_variable stop_cv_;
  std::vector<JointDecision> decisions_;
  std::vector<TenantWindow> windows_;  ///< per tenant index, grown lazily
};

}  // namespace ss::runtime
