// Measurement plumbing: per-logical-operator counters and the steady-state
// rate window used to report measured throughput (paper §5: throughput is
// the source departure rate at steady state, after a warmup period).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "core/topology.hpp"

namespace ss::runtime {

/// Lock-free counters shared by all actors of one logical operator
/// (replicas and meta-group members included).
struct OpCounters {
  std::atomic<std::uint64_t> processed{0};  ///< input items consumed
  std::atomic<std::uint64_t> emitted{0};    ///< results produced
};

/// Snapshot of every operator's counters at one instant.
struct CounterSnapshot {
  std::vector<std::uint64_t> processed;
  std::vector<std::uint64_t> emitted;
  double at_seconds = 0.0;
};

/// Measured steady-state rates of one logical operator.
struct OperatorStats {
  std::uint64_t processed = 0;  ///< total over the whole run
  std::uint64_t emitted = 0;
  double arrival_rate = 0.0;    ///< items/s inside the measurement window
  double departure_rate = 0.0;  ///< results/s inside the measurement window
};

/// Result of one engine run.
struct RunStats {
  std::vector<OperatorStats> ops;
  double measured_seconds = 0.0;  ///< length of the steady-state window
  double total_seconds = 0.0;     ///< wall time of the whole run
  double source_rate = 0.0;       ///< measured ingest throughput (tuples/s)
  double sink_rate = 0.0;         ///< combined sink departure rate
  std::uint64_t dropped = 0;      ///< items lost to send timeouts (should be 0)
};

/// Shared counter board; one entry per logical operator.
class StatsBoard {
 public:
  explicit StatsBoard(std::size_t num_ops) : counters_(num_ops) {}

  void add_processed(OpIndex op) {
    counters_[op].processed.fetch_add(1, std::memory_order_relaxed);
  }
  void add_emitted(OpIndex op) {
    counters_[op].emitted.fetch_add(1, std::memory_order_relaxed);
  }

  [[nodiscard]] CounterSnapshot snapshot(double at_seconds) const;
  [[nodiscard]] std::size_t size() const { return counters_.size(); }

 private:
  // deque-free fixed vector: OpCounters is non-movable, so construct in place
  std::vector<OpCounters> counters_;
};

/// Derives steady-state rates from two snapshots.
RunStats make_run_stats(const Topology& t, const CounterSnapshot& begin,
                        const CounterSnapshot& end, const CounterSnapshot& final_totals,
                        double total_seconds, std::uint64_t dropped);

/// Human-readable table of measured rates (mirrors core's format_analysis).
std::string format_stats(const Topology& t, const RunStats& stats);

}  // namespace ss::runtime
