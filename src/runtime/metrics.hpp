// Measurement plumbing: per-logical-operator counters, the steady-state
// rate window used to report measured throughput (paper §5: throughput is
// the source departure rate at steady state, after a warmup period), and
// latency histograms recording source→operator and end-to-end tuple delays
// so execution backends can be compared on tail latency, not only rates
// (the dimension the paper's Table 1 / Figure 11 arguments leave out).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "core/topology.hpp"

namespace ss::runtime {

/// Lock-free counters shared by all actors of one logical operator
/// (replicas and meta-group members included).
struct OpCounters {
  std::atomic<std::uint64_t> processed{0};  ///< input items consumed
  std::atomic<std::uint64_t> emitted{0};    ///< results produced
};

/// Snapshot of every operator's counters at one instant.  The telemetry
/// vectors (busy/blocked nanoseconds, attached TelemetryBoard required)
/// and the queue columns (engine-filled: the board does not own the
/// mailboxes) may be empty when the producer has no such data.
struct CounterSnapshot {
  std::vector<std::uint64_t> processed;
  std::vector<std::uint64_t> emitted;
  std::vector<std::uint64_t> busy_ns;     ///< cumulative in-service time
  std::vector<std::uint64_t> blocked_ns;  ///< cumulative blocked-on-send time
  std::vector<std::size_t> queue_depth;   ///< mailbox depth right now
  std::vector<std::size_t> queue_peak;    ///< high-water mark since window open
  double at_seconds = 0.0;
};

/// Counters of the pooled scheduler's work-stealing machinery, surfaced in
/// RunStats and the metrics export (all zero under thread-per-actor).
/// `pushes/local_pops/steals/discarded` are queue-hint accounting —
/// internally consistent: pushes == local_pops + steals + discarded once
/// the pool is quiescent; `parks/wakeups` count the idle protocol;
/// `batches/batch_messages/max_batch` describe mailbox drain batching.
struct SchedulerCounters {
  std::uint64_t pushes = 0;
  std::uint64_t local_pops = 0;
  std::uint64_t steals = 0;
  std::uint64_t discarded = 0;  ///< hints still queued at shutdown
  std::uint64_t parks = 0;
  std::uint64_t wakeups = 0;
  std::uint64_t batches = 0;
  std::uint64_t batch_messages = 0;
  std::uint64_t max_batch = 0;
  /// Messages that entered mailboxes through the lock-free ring fast path
  /// and the ones that spilled to the mutex side queue (both 0 under
  /// --mailbox=mutex).  Enqueue *volume*, not hint counts: the ready-hint
  /// ledger above fires one hint per empty→non-empty edge, so
  /// ring_enqueues >= pushes on the ring path while the pushes ==
  /// local_pops + steals + discarded invariant is unchanged.
  std::uint64_t ring_enqueues = 0;
  std::uint64_t ring_spills = 0;

  SchedulerCounters& operator+=(const SchedulerCounters& o) {
    pushes += o.pushes;
    local_pops += o.local_pops;
    steals += o.steals;
    discarded += o.discarded;
    parks += o.parks;
    wakeups += o.wakeups;
    batches += o.batches;
    batch_messages += o.batch_messages;
    max_batch = max_batch > o.max_batch ? max_batch : o.max_batch;
    ring_enqueues += o.ring_enqueues;
    ring_spills += o.ring_spills;
    return *this;
  }
};

/// Percentile summary of one latency distribution (seconds).
struct LatencySummary {
  std::uint64_t count = 0;
  double mean = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

/// Frozen bucket counts of a LatencyHistogram at one instant.  Two uses:
/// windowed percentiles (summary_since subtracts a base snapshot, giving
/// the distribution of samples recorded *after* it — the SLO controller's
/// per-window measured p99) and the StatsBoard's steady-state window
/// (latency metered before the window opens never pollutes the report).
struct HistogramSnapshot {
  std::vector<std::uint64_t> buckets;
  std::uint64_t count = 0;
  std::uint64_t sum_nanos = 0;
};

/// Lock-free log-bucketed latency histogram (HDR style): 32 linear
/// sub-buckets per power-of-two decade of microseconds, i.e. ~3% value
/// resolution from 1 us to ~67 s.  record() is wait-free (one relaxed
/// fetch_add per sample) so actors can meter every tuple; quantiles are
/// derived from a snapshot of the bucket counts.
class LatencyHistogram {
 public:
  LatencyHistogram();

  LatencyHistogram(const LatencyHistogram&) = delete;
  LatencyHistogram& operator=(const LatencyHistogram&) = delete;

  /// Records one latency sample (seconds; negative values clamp to 0).
  void record(double seconds);

  /// Value at quantile `q` in [0, 1] (bucket midpoint); 0 when empty.
  [[nodiscard]] double quantile(double q) const;

  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }

  /// count/mean/p50/p95/p99 in one pass.
  [[nodiscard]] LatencySummary summary() const;

  /// Freezes the current bucket counts (relaxed loads; concurrent records
  /// may or may not be included, like every other reader here).
  [[nodiscard]] HistogramSnapshot snapshot() const;

  /// Summary of the samples recorded since `base` was snapshot from this
  /// histogram.  An empty/default base yields summary().
  [[nodiscard]] LatencySummary summary_since(const HistogramSnapshot& base) const;

 private:
  static constexpr int kSubBits = 5;  ///< 32 sub-buckets: ~3% resolution
  static constexpr int kSubBuckets = 1 << kSubBits;
  static constexpr std::uint64_t kMaxMicros = 1ull << 26;  ///< ~67 s cap
  static std::size_t bucket_of(std::uint64_t micros);
  static double bucket_midpoint_seconds(std::size_t bucket);

  std::vector<std::atomic<std::uint64_t>> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_nanos_{0};
};

/// Measured steady-state rates of one logical operator.
struct OperatorStats {
  std::uint64_t processed = 0;  ///< total over the whole run
  std::uint64_t emitted = 0;
  double arrival_rate = 0.0;    ///< items/s inside the measurement window
  double departure_rate = 0.0;  ///< results/s inside the measurement window
  /// Source→operator delay (source stamp to processing start) inside the
  /// measurement window; count == 0 when the operator saw no metered item
  /// (e.g. the source itself).
  LatencySummary latency;
  // --- telemetry (measured counterparts of Algorithm 1's quantities)
  /// Measured utilization ρ: busy time / (window × replicas).  The direct
  /// check of Alg. 1's predicted ρ; -1 when the run carried no telemetry.
  double busy_fraction = -1.0;
  /// Fraction of the window spent blocked sending downstream (BAS
  /// backpressure); -1 when the run carried no telemetry.
  double blocked_fraction = -1.0;
  /// Mailbox depth high-water mark inside the window (max over the
  /// operator's actors; 0 for sources).
  std::size_t queue_peak = 0;
};

/// One operator's online profile estimate (runtime/profiler.hpp): the
/// inferred *non-blocking* service rate reconstructed from micro
/// observations — inter-departure gaps inside multi-item busy slices,
/// queue-occupancy sampling and profiler-armed burst windows (Beard &
/// Chamberlain style) — next to the naive busy-time rate for comparison.
struct ProfileEstimate {
  /// Estimated non-blocking service rate, items/s; 0 = no estimate yet.
  double estimated_rate = 0.0;
  /// Naive busy-time rate (processed / busy seconds) over the same
  /// horizon; 0 when the operator processed nothing.
  double busy_rate = 0.0;
  /// Estimated service-time squared coefficient of variation (slice
  /// statistics); < 0 = not measured.
  double cv2 = -1.0;
  /// Fraction of occupancy samples that found the input buffer full.
  double queue_full_fraction = 0.0;
  /// Confidence in estimated_rate in [0, 1]: grows with multi-item slice
  /// coverage, decays when only singleton slices are seen.
  double confidence = 0.0;
  /// Items that contributed inter-departure gap observations.
  std::uint64_t samples = 0;
};

/// One entry of the backpressure-attribution ranking: `blame_seconds` of
/// upstream blocked-on-send time attributed (transitively) to this
/// operator as the root cause, `share` of the total blocked time.
struct BottleneckEntry {
  OpIndex op = 0;
  double blame_seconds = 0.0;
  double share = 0.0;  ///< blame / total blocked time, in [0, 1]
};

/// Per-op and end-to-end latency summaries extracted from a StatsBoard.
struct LatencyReport {
  std::vector<LatencySummary> per_op;
  LatencySummary end_to_end;
};

/// Model-side latency predictions riding next to the measurements
/// (estimate_latency + Alg. 1 on the deployed plan; the engine computes
/// them at epoch build so every report can print predicted-vs-measured
/// without re-deriving the model).  `valid` gates all columns.
struct PredictedLatency {
  bool valid = false;
  std::vector<double> op_response;  ///< per-op predicted mean response (s)
  std::vector<double> op_p99;       ///< per-op predicted p99 response (s)
  double mean = 0.0;                ///< predicted end-to-end tuple sojourn
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double throughput = 0.0;  ///< Alg. 1 predicted throughput (tuples/s)
};

/// Result of one engine run.
struct RunStats {
  std::vector<OperatorStats> ops;
  double measured_seconds = 0.0;  ///< length of the steady-state window
  double total_seconds = 0.0;     ///< wall time of the whole run
  double source_rate = 0.0;       ///< measured ingest throughput (tuples/s)
  double sink_rate = 0.0;         ///< combined sink departure rate
  std::uint64_t dropped = 0;      ///< items lost to send timeouts (should be 0)
  /// Source stamp → leaving the system at a sink, steady-state window only.
  LatencySummary end_to_end;
  // --- elastic re-deployment (EngineConfig::elastic / Engine::reconfigure)
  int epochs = 1;                  ///< actor-graph instantiations this run
  int reconfigurations = 0;        ///< completed epoch switch-overs
  std::uint64_t keys_migrated = 0; ///< per-key state moves across switch-overs
  // --- epoch checkpointing (runtime/checkpoint.hpp)
  std::uint64_t checkpoints_written = 0;   ///< snapshots persisted this run
  std::uint64_t last_epoch_persisted = 0;  ///< epoch id of the newest snapshot
  /// Epoch id the run was restored from (`--recover`); 0 = fresh start.
  std::uint64_t recovered_from_epoch = 0;
  // --- telemetry (PR 4)
  /// True when busy/blocked metering ran, i.e. the per-op busy_fraction /
  /// blocked_fraction columns are meaningful.
  bool has_telemetry = false;
  /// Work-stealing / batching counters of the pooled scheduler (summed
  /// over epochs; all zero under thread-per-actor).
  SchedulerCounters scheduler;
  /// Model predictions for the deployment the run ended on (the engine
  /// fills them; valid == false when the producer attached none).
  PredictedLatency predicted;
  // --- online profiler (PR 9; runtime/profiler.hpp)
  /// True when the ProfileEstimator ran; gates the two vectors below.
  bool has_profile = false;
  /// Per-op non-blocking service-rate estimates (indexed by OpIndex).
  std::vector<ProfileEstimate> profile;
  /// Backpressure-attribution ranking, most-blamed operator first.
  std::vector<BottleneckEntry> bottlenecks;
};

class TelemetryBoard;  // telemetry.hpp; attached to a StatsBoard below

/// Shared counter board; one entry per logical operator.
class StatsBoard {
 public:
  explicit StatsBoard(std::size_t num_ops) : counters_(num_ops), latency_(num_ops) {}

  void add_processed(OpIndex op) {
    counters_[op].processed.fetch_add(1, std::memory_order_relaxed);
  }
  void add_emitted(OpIndex op) {
    counters_[op].emitted.fetch_add(1, std::memory_order_relaxed);
  }

  /// Latency recording is gated so only the steady-state window is metered
  /// (run_for opens it after warmup; run_until_complete for the whole run).
  [[nodiscard]] bool latency_enabled() const {
    return latency_enabled_.load(std::memory_order_relaxed);
  }
  void set_latency_enabled(bool enabled) {
    latency_enabled_.store(enabled, std::memory_order_relaxed);
  }

  void add_latency(OpIndex op, double seconds) { latency_[op].record(seconds); }
  void add_end_to_end(double seconds) { end_to_end_.record(seconds); }

  /// Attaches the busy/blocked-time board so snapshots carry telemetry and
  /// the window helpers gate it together with latency.  Not owned; must
  /// outlive the StatsBoard's use (the engine owns both).
  void attach_telemetry(TelemetryBoard* telemetry) { telemetry_ = telemetry; }
  [[nodiscard]] TelemetryBoard* telemetry() const { return telemetry_; }

  /// Opens the steady-state measurement window: enables the latency gate
  /// AND telemetry metering, snapshots the latency histograms as the
  /// window base (samples metered before the window — e.g. by an SLO
  /// controller running from the start — stay out of the report), then
  /// snapshots the counters — one helper so the ρ window and the rate
  /// window can never disagree (they used to be toggled independently by
  /// run_for).
  CounterSnapshot open_window(double at_seconds);
  /// Snapshots the counters, then closes both gates.
  CounterSnapshot close_window(double at_seconds);

  /// Windowed end-to-end latency for online consumers (the SLO path of
  /// the ReconfigController): freeze a base, measure, summarize the delta.
  [[nodiscard]] HistogramSnapshot end_to_end_snapshot() const {
    return end_to_end_.snapshot();
  }
  [[nodiscard]] LatencySummary end_to_end_since(const HistogramSnapshot& base) const {
    return end_to_end_.summary_since(base);
  }

  [[nodiscard]] CounterSnapshot snapshot(double at_seconds) const;
  [[nodiscard]] LatencyReport latency_report() const;
  [[nodiscard]] std::size_t size() const { return counters_.size(); }

 private:
  // deque-free fixed vectors: the entries hold atomics (non-movable), so
  // construct in place and never resize
  std::vector<OpCounters> counters_;
  std::vector<LatencyHistogram> latency_;
  LatencyHistogram end_to_end_;
  std::atomic<bool> latency_enabled_{false};
  TelemetryBoard* telemetry_ = nullptr;
  /// Histogram bases frozen at open_window (empty before the first open).
  std::vector<HistogramSnapshot> window_base_;
  HistogramSnapshot e2e_base_;
};

/// Derives steady-state rates from two snapshots; `latency` (when given)
/// attaches the per-op and end-to-end percentile summaries.  `replicas`
/// (per-op replica counts, when given) normalizes the measured busy /
/// blocked fractions — ρ of an operator with n replicas is busy time over
/// n × window, matching Alg. 1's per-replica utilization.
RunStats make_run_stats(const Topology& t, const CounterSnapshot& begin,
                        const CounterSnapshot& end, const CounterSnapshot& final_totals,
                        double total_seconds, std::uint64_t dropped,
                        const LatencyReport* latency = nullptr,
                        const std::vector<int>* replicas = nullptr);

/// Human-readable table of measured rates (mirrors core's format_analysis).
/// When stats.predicted is valid, every latency column gets its model
/// prediction next to it and a predicted end-to-end footer is appended.
std::string format_stats(const Topology& t, const RunStats& stats);

}  // namespace ss::runtime
