#include "runtime/plan.hpp"

#include <algorithm>

#include "core/error.hpp"

namespace ss::runtime {

namespace {

std::string replica_name(const std::string& base, const char* role, int index = -1) {
  std::string name = base + "." + role;
  if (index >= 0) name += "[" + std::to_string(index) + "]";
  return name;
}

}  // namespace

ActorGraph ActorGraph::build(const Topology& t, const Deployment& deployment) {
  const std::size_t n = t.num_operators();
  ActorGraph g;
  g.entry.assign(n, -1);
  g.exit.assign(n, -1);
  g.group_of.assign(n, -1);

  // --- validate and index fusion groups -------------------------------
  for (std::size_t f = 0; f < deployment.fusions.size(); ++f) {
    const FusionSpec& spec = deployment.fusions[f];
    // The meta actor executes items from whatever member they target
    // (Alg. 4 generalized to the Fig. 2 semantics), so the relaxed
    // multi-entry legality is the right runtime-side check; the stricter
    // single-front-end rule only gates the §3.3 cost model.
    const std::string why = check_fusion_legal_multi(t, spec);
    require(why.empty(), "ActorGraph: illegal fusion group: " + why);
    for (OpIndex m : spec.members) {
      require(g.group_of[m] == -1, "ActorGraph: operator '" + t.op(m).name +
                                       "' belongs to two fusion groups");
      require(deployment.replication.replicas_of(m) == 1,
              "ActorGraph: fused operator '" + t.op(m).name + "' cannot be replicated");
      g.group_of[m] = static_cast<int>(f);
    }
  }
  require(deployment.replication.replicas_of(t.source()) == 1,
          "ActorGraph: the source cannot be replicated");

  // --- create actors ----------------------------------------------------
  // Fusion groups first (one meta actor each), then the remaining ops.
  std::vector<int> meta_actor(deployment.fusions.size(), -1);
  for (std::size_t f = 0; f < deployment.fusions.size(); ++f) {
    const FusionSpec& spec = deployment.fusions[f];
    ActorSpec actor;
    actor.kind = ActorKind::kMeta;
    // Members in topological order so on_finish flushes upstream-first.
    std::vector<OpIndex> members = spec.members;
    std::vector<std::size_t> position(n, 0);
    for (std::size_t i = 0; i < t.topological_order().size(); ++i) {
      position[t.topological_order()[i]] = i;
    }
    std::sort(members.begin(), members.end(),
              [&](OpIndex a, OpIndex b) { return position[a] < position[b]; });
    actor.members = members;
    actor.op = members.front();
    actor.name = spec.fused_name.empty() ? replica_name(t.op(members.front()).name, "meta")
                                         : spec.fused_name;
    meta_actor[f] = static_cast<int>(g.actors.size());
    g.actors.push_back(std::move(actor));
    for (OpIndex m : members) {
      g.entry[m] = meta_actor[f];
      g.exit[m] = meta_actor[f];
    }
  }

  for (OpIndex i = 0; i < n; ++i) {
    if (g.group_of[i] != -1) continue;
    const int replicas = deployment.replication.replicas_of(i);
    if (i == t.source()) {
      ActorSpec actor;
      actor.kind = ActorKind::kSource;
      actor.op = i;
      actor.name = t.op(i).name;
      g.source_actor = static_cast<int>(g.actors.size());
      g.entry[i] = g.exit[i] = g.source_actor;
      g.actors.push_back(std::move(actor));
      continue;
    }
    if (replicas == 1) {
      ActorSpec actor;
      actor.kind = ActorKind::kWorker;
      actor.op = i;
      actor.name = t.op(i).name;
      g.entry[i] = g.exit[i] = static_cast<int>(g.actors.size());
      g.actors.push_back(std::move(actor));
      continue;
    }
    // Fission: emitter -> replicas -> collector (paper §4.2).
    ActorSpec emitter;
    emitter.kind = ActorKind::kEmitter;
    emitter.op = i;
    emitter.name = replica_name(t.op(i).name, "emitter");
    const int emitter_id = static_cast<int>(g.actors.size());
    g.actors.push_back(std::move(emitter));

    std::vector<int> replica_ids;
    for (int r = 0; r < replicas; ++r) {
      ActorSpec replica;
      replica.kind = ActorKind::kReplica;
      replica.op = i;
      replica.replica = r;
      replica.name = replica_name(t.op(i).name, "replica", r);
      replica_ids.push_back(static_cast<int>(g.actors.size()));
      g.actors.push_back(std::move(replica));
    }

    ActorSpec collector;
    collector.kind = ActorKind::kCollector;
    collector.op = i;
    collector.name = replica_name(t.op(i).name, "collector");
    const int collector_id = static_cast<int>(g.actors.size());
    g.actors.push_back(std::move(collector));

    // Internal channels.
    for (int rid : replica_ids) {
      g.actors[static_cast<std::size_t>(emitter_id)].downstream.push_back(rid);
      g.actors[static_cast<std::size_t>(rid)].incoming_channels += 1;
      g.actors[static_cast<std::size_t>(rid)].downstream.push_back(collector_id);
      g.actors[static_cast<std::size_t>(collector_id)].incoming_channels += 1;
    }
    g.entry[i] = emitter_id;
    g.exit[i] = collector_id;
  }

  // --- channels for logical edges --------------------------------------
  for (const Edge& e : t.edges()) {
    if (g.group_of[e.from] != -1 && g.group_of[e.from] == g.group_of[e.to]) {
      continue;  // internal to a fusion group: handled inside the meta actor
    }
    const int from_actor = g.exit[e.from];
    const int to_actor = g.entry[e.to];
    g.actors[static_cast<std::size_t>(from_actor)].downstream.push_back(to_actor);
    g.actors[static_cast<std::size_t>(to_actor)].incoming_channels += 1;
  }

  return g;
}

}  // namespace ss::runtime
