// PooledScheduler: multiplexes the N actors of a deployment onto K worker
// threads — the dispatcher-style execution production stream processors use
// when the topology is larger than the thread budget (or the host smaller
// than the topology).
//
// Design:
//   * work stealing: each worker owns a deque of actor-id hints
//     (work_stealing.hpp).  A mailbox's empty→non-empty edge
//     (Mailbox::set_on_ready) routes the hint to the worker that last ran
//     the actor, so its state is still warm in that core's cache; the
//     owner pops LIFO, idle workers steal FIFO from the front of other
//     deques, and a worker that misses everywhere parks on one condition
//     variable until the next push.  This replaces the single shared
//     ready-queue whose one mutex was the hop bottleneck at high actor
//     counts;
//   * workers claim an actor (atomic flag — at most one worker runs an
//     actor at any time, preserving the single-threaded-logic guarantee),
//     drain a bounded batch in ONE mailbox lock acquisition
//     (Mailbox::drain), then release and re-check the mailbox so a message
//     that raced the release is never stranded;
//   * sources run as repeated bounded quanta and re-enqueue themselves
//     until exhausted or stopped;
//   * sends use the try_send() fast path; a full destination under BAS
//     falls back to the blocking send wrapped in a BlockingSection;
//   * BlockingSection implements cooperative blocking compensation (in the
//     spirit of ForkJoinPool's ManagedBlocker): while a worker parks in a
//     timed-wait service or a backpressure-blocked send, the pool may spawn
//     or wake a spare worker so K *runnable* workers keep draining.  This
//     both preserves the rate fidelity of wait-realized service times and
//     makes the blocked-send path deadlock-free: some runnable worker can
//     always claim the most-downstream ready actor (sinks never block on
//     send), so every full mailbox eventually drains.  Worker threads are
//     capped at num_actors + K — the same order as thread-per-actor in the
//     worst all-blocked case, but only ~K threads are ever runnable.
#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "runtime/scheduler.hpp"
#include "runtime/trace.hpp"
#include "runtime/work_stealing.hpp"

namespace ss::runtime {

namespace {

class PooledScheduler final : public Scheduler {
 public:
  PooledScheduler(int workers, int batch)
      : target_(workers), batch_(batch > 0 ? batch : kDefaultBatch) {}

  void start(EngineCore& core) override {
    core_ = &core;
    const std::size_t n = core.num_actors();
    slots_ = std::vector<ActorSlot>(n);
    if (target_ <= 0) target_ = static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
    max_threads_ = static_cast<int>(n) + target_;
    queues_ = std::make_unique<WorkStealingQueues>(static_cast<std::size_t>(max_threads_));
    batch_stats_ = std::vector<BatchStats>(static_cast<std::size_t>(max_threads_));
    last_worker_ = std::vector<std::atomic<std::size_t>>(n);
    for (std::size_t id = 0; id < n; ++id) {
      // Spread initial affinity over the K primary workers; it converges to
      // the worker that actually runs the actor after the first claim.
      last_worker_[id].store(id % static_cast<std::size_t>(target_),
                             std::memory_order_relaxed);
      core.mailbox(id).set_on_ready([this, id] { enqueue(id); });
    }
    std::lock_guard lock(mu_);
    remaining_ = n;
    for (std::size_t id = 0; id < n; ++id) {
      if (core.is_source(id)) {
        queues_->push(id, last_worker_[id].load(std::memory_order_relaxed));
      }
    }
    for (int i = 0; i < target_; ++i) spawn_locked();
  }

  bool deliver(std::size_t target, const Message& m,
               std::chrono::nanoseconds timeout) override {
    Mailbox& box = core_->mailbox(target);
    if (box.try_send(m)) return true;
    // Slow path: closed, or full.  Under shedding the drop was already
    // counted by try_send; under BAS block honestly — the BlockingSection
    // lends the core onward, so the pool keeps draining the destination
    // and the send completes (backpressure without pool deadlock).
    if (box.closed() || box.policy() == OverflowPolicy::kShedNewest) return false;
    BlockingSection blocking;
    return box.send(m, timeout);
  }

  void join() override {
    if (joined_) return;
    std::vector<std::thread> threads;
    {
      std::unique_lock lock(mu_);
      drained_cv_.wait(lock, [&] { return remaining_ == 0; });
      shutdown_ = true;
      threads.swap(threads_);
    }
    queues_->shutdown();  // remaining hints are stale: all actors done
    for (std::thread& thread : threads) {
      if (thread.joinable()) thread.join();
    }
    joined_ = true;
  }

  void blocking_begin() {
    std::lock_guard lock(mu_);
    ++blocked_;
    if (queues_->pending() > 0 && queues_->idle() == 0) maybe_spawn_locked();
  }

  void blocking_end() {
    std::lock_guard lock(mu_);
    --blocked_;
  }

  [[nodiscard]] SchedulerCounters counters() const override {
    SchedulerCounters c;
    if (queues_) {
      const WorkStealingCounters q = queues_->counters();
      c.pushes = q.pushes;
      c.local_pops = q.local_pops;
      c.steals = q.steals;
      c.discarded = q.discarded;
      c.parks = q.parks;
      c.wakeups = q.wakeups;
    }
    for (const BatchStats& s : batch_stats_) {
      c.batches += s.batches.load(std::memory_order_relaxed);
      c.batch_messages += s.messages.load(std::memory_order_relaxed);
      c.max_batch = std::max(c.max_batch, s.max_batch.load(std::memory_order_relaxed));
    }
    return c;
  }

 private:
  static constexpr int kDefaultBatch = 64;
  static constexpr int kSourceQuantum = 64;

  struct ActorSlot {
    std::atomic<bool> running{false};  ///< claim: one worker per actor
    std::atomic<bool> done{false};
    int shutdowns = 0;  ///< tokens seen; touched only while claimed
  };

  void enqueue(std::size_t id) {
    // Route the hint to the actor's last worker (warm cache); push wakes a
    // parked worker itself, and any worker can steal the hint, so a busy
    // preferred worker never delays the actor.
    queues_->push(id, last_worker_[id].load(std::memory_order_relaxed));
    if (queues_->idle() == 0) {
      // Nobody parked: all workers are busy or blocked.  Compensate if the
      // runnable budget has room (workers inside a BlockingSection don't
      // count against K).
      std::lock_guard lock(mu_);
      maybe_spawn_locked();
    }
  }

  /// Compensation: keep `target_` runnable (non-blocked) workers as long
  /// as ready work exists, up to the thread cap.
  void maybe_spawn_locked() {
    if (spawned_ - blocked_ < target_ && spawned_ < max_threads_) spawn_locked();
  }

  void spawn_locked() {
    if (shutdown_) return;
    const std::size_t self = static_cast<std::size_t>(spawned_++);
    threads_.emplace_back([this, self] { worker_loop(self); });
  }

  void worker_loop(std::size_t self);
  void run_actor_slot(std::size_t self, std::size_t id);
  void complete(std::size_t id, ActorSlot& slot, bool run_finish);

  EngineCore* core_ = nullptr;
  int target_;           ///< runnable-worker budget (K)
  int batch_;            ///< messages drained per claim (EngineConfig::pool_batch)
  int max_threads_ = 0;  ///< hard cap including blocked compensated workers
  std::vector<ActorSlot> slots_;
  std::unique_ptr<WorkStealingQueues> queues_;  ///< per-worker hint deques
  std::vector<std::atomic<std::size_t>> last_worker_;  ///< affinity per actor

  std::mutex mu_;                       ///< spawn/blocked/drain bookkeeping
  std::condition_variable drained_cv_;  ///< join() waits for remaining_ == 0
  std::vector<std::thread> threads_;
  int spawned_ = 0;
  int blocked_ = 0;  ///< workers inside a BlockingSection
  std::size_t remaining_ = 0;
  bool shutdown_ = false;
  bool joined_ = false;

  // telemetry: drain-batch statistics, sharded per worker and cache-line
  // separated so the drain hot loop never bounces a shared counter line
  // between workers (each shard has exactly one writer; counters() sums).
  struct alignas(64) BatchStats {
    std::atomic<std::uint64_t> batches{0};
    std::atomic<std::uint64_t> messages{0};
    std::atomic<std::uint64_t> max_batch{0};
  };
  std::vector<BatchStats> batch_stats_;
};

thread_local PooledScheduler* tls_pool = nullptr;

void PooledScheduler::worker_loop(std::size_t self) {
  tls_pool = this;
  trace::Tracer::instance().set_thread_name("worker-" + std::to_string(self));
  std::size_t id = 0;
  while (queues_->acquire(self, id)) run_actor_slot(self, id);
  tls_pool = nullptr;
}

void PooledScheduler::run_actor_slot(std::size_t self, std::size_t id) {
  ActorSlot& slot = slots_[id];
  if (slot.done.load(std::memory_order_acquire)) return;
  if (slot.running.exchange(true, std::memory_order_acq_rel)) return;  // claimed elsewhere
  if (slot.done.load(std::memory_order_relaxed)) {  // finished before our claim
    slot.running.store(false, std::memory_order_release);
    return;
  }
  last_worker_[id].store(self, std::memory_order_relaxed);
  bool requeue = false;
  if (core_->is_source(id)) {
    trace::Span span("pump", "actor");
    span.set_arg("actor", static_cast<std::int64_t>(id));
    bool more = false;
    try {
      more = core_->pump_source(id, kSourceQuantum);
    } catch (const std::exception& e) {
      core_->report_failure(id, e.what());
      complete(id, slot, /*run_finish=*/false);
      return;
    }
    if (core_->actor_retired(id)) {  // epoch fence: no finish epilogue
      complete(id, slot, /*run_finish=*/false);
      return;
    }
    if (!more) {
      complete(id, slot, /*run_finish=*/true);
      return;
    }
    requeue = true;  // sources stay ready until exhausted
  } else {
    // One lock acquisition hands the whole batch over (Mailbox::drain), but
    // each message's capacity slot is released only as it enters service —
    // freeing the whole batch up front would give senders capacity
    // B + batch and visibly weaken the BAS backpressure the cost models
    // assume.  Tokens and data stay in FIFO order inside the batch.
    thread_local std::vector<Message> batch;
    batch.clear();
    trace::Span span("batch", "actor");
    Mailbox& box = core_->mailbox(id);
    const std::size_t taken =
        box.drain(batch, static_cast<std::size_t>(batch_), /*release_now=*/false);
    span.set_arg("n", static_cast<std::int64_t>(taken));
    if (taken > 0) {
      BatchStats& bs = batch_stats_[self];
      bs.batches.fetch_add(1, std::memory_order_relaxed);
      bs.messages.fetch_add(taken, std::memory_order_relaxed);
      // Single writer per shard: a plain max needs no CAS loop.
      if (taken > bs.max_batch.load(std::memory_order_relaxed)) {
        bs.max_batch.store(taken, std::memory_order_relaxed);
      }
    }
    // Time the whole batch as one busy slice (per-message metering inside
    // process_message is suppressed while the slice is open); the guard
    // closes the slice on every exit path, including completions and
    // failures.
    struct BatchMeterGuard {
      EngineCore* core;
      std::size_t id;
      bool armed;
      ~BatchMeterGuard() {
        if (armed) core->end_batch_meter(id);
      }
    } meter{core_, id, taken > 0 && core_->begin_batch_meter(id)};
    std::size_t released = 0;
    try {
      for (Message& msg : batch) {
        box.release(1);
        ++released;
        if (msg.kind == Message::Kind::kShutdown) {
          // FIFO per channel puts each upstream's token after its data, so
          // once all tokens arrived no data can be pending behind them —
          // a completed actor cannot strand messages later in the batch.
          if (++slot.shutdowns >= core_->incoming_channels(id)) {
            if (taken > released) box.release(taken - released);
            complete(id, slot, /*run_finish=*/true);
            return;
          }
          continue;
        }
        core_->process_message(id, msg);
        if (core_->actor_retired(id)) {
          // The message was the actor's final fence token: it forwarded the
          // fence and retired.  FIFO per channel puts every upstream's data
          // before its token, so nothing can be pending later in the batch.
          if (taken > released) box.release(taken - released);
          complete(id, slot, /*run_finish=*/false);
          return;
        }
      }
    } catch (const std::exception& e) {
      if (taken > released) box.release(taken - released);
      core_->report_failure(id, e.what());
      complete(id, slot, /*run_finish=*/false);
      return;
    }
  }
  slot.running.store(false, std::memory_order_release);
  // A message that arrived during the batch fired its readiness hint while
  // we still held the claim (the hint was discarded): re-check so nothing
  // is stranded.
  if (requeue || core_->mailbox(id).size() > 0) enqueue(id);
}

void PooledScheduler::complete(std::size_t id, ActorSlot& slot, bool run_finish) {
  if (run_finish) {
    try {
      core_->finish_actor(id);  // flush logic, propagate shutdown tokens
    } catch (const std::exception& e) {
      core_->report_failure(id, e.what());
    }
  }
  slot.done.store(true, std::memory_order_release);
  slot.running.store(false, std::memory_order_release);
  core_->actor_done(id);
  bool drained = false;
  {
    std::lock_guard lock(mu_);
    drained = (--remaining_ == 0);
  }
  if (drained) drained_cv_.notify_all();
}

}  // namespace

BlockingSection::BlockingSection() noexcept : pool_(tls_pool) {
  if (pool_ != nullptr) static_cast<PooledScheduler*>(pool_)->blocking_begin();
}

BlockingSection::~BlockingSection() {
  if (pool_ != nullptr) static_cast<PooledScheduler*>(pool_)->blocking_end();
}

std::unique_ptr<Scheduler> make_pooled_scheduler(int workers, int batch);

std::unique_ptr<Scheduler> make_pooled_scheduler(int workers, int batch) {
  return std::make_unique<PooledScheduler>(workers, batch);
}

}  // namespace ss::runtime
