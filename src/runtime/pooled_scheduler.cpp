// PooledScheduler: multiplexes the N actors of a deployment onto K worker
// threads — the dispatcher-style execution production stream processors use
// when the topology is larger than the thread budget (or the host smaller
// than the topology).
//
// Design:
//   * a shared ready-queue of actor ids; every mailbox notifies it on its
//     empty→non-empty edge (Mailbox::set_on_ready), so workers park on one
//     scheduler condvar, never on a per-mailbox one;
//   * workers claim an actor (atomic flag — at most one worker runs an
//     actor at any time, preserving the single-threaded-logic guarantee),
//     drain a bounded batch via try_receive(), then release and re-check
//     the mailbox so a message that raced the release is never stranded;
//   * sources run as repeated bounded quanta and re-enqueue themselves
//     until exhausted or stopped;
//   * sends use the try_send() fast path; a full destination under BAS
//     falls back to the blocking send wrapped in a BlockingSection;
//   * BlockingSection implements cooperative blocking compensation (in the
//     spirit of ForkJoinPool's ManagedBlocker): while a worker parks in a
//     timed-wait service or a backpressure-blocked send, the pool may spawn
//     or wake a spare worker so K *runnable* workers keep draining.  This
//     both preserves the rate fidelity of wait-realized service times and
//     makes the blocked-send path deadlock-free: some runnable worker can
//     always claim the most-downstream ready actor (sinks never block on
//     send), so every full mailbox eventually drains.  Worker threads are
//     capped at num_actors + K — the same order as thread-per-actor in the
//     worst all-blocked case, but only ~K threads are ever runnable.
#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#include "runtime/scheduler.hpp"

namespace ss::runtime {

namespace {

class PooledScheduler final : public Scheduler {
 public:
  explicit PooledScheduler(int workers) : target_(workers) {}

  void start(EngineCore& core) override {
    core_ = &core;
    const std::size_t n = core.num_actors();
    slots_ = std::vector<ActorSlot>(n);
    if (target_ <= 0) target_ = static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
    max_threads_ = static_cast<int>(n) + target_;
    for (std::size_t id = 0; id < n; ++id) {
      core.mailbox(id).set_on_ready([this, id] { enqueue(id); });
    }
    std::lock_guard lock(mu_);
    remaining_ = n;
    for (std::size_t id = 0; id < n; ++id) {
      if (core.is_source(id)) ready_.push_back(id);
    }
    for (int i = 0; i < target_; ++i) spawn_locked();
  }

  bool deliver(std::size_t target, const Message& m,
               std::chrono::nanoseconds timeout) override {
    Mailbox& box = core_->mailbox(target);
    if (box.try_send(m)) return true;
    // Slow path: closed, or full.  Under shedding the drop was already
    // counted by try_send; under BAS block honestly — the BlockingSection
    // lends the core onward, so the pool keeps draining the destination
    // and the send completes (backpressure without pool deadlock).
    if (box.closed() || box.policy() == OverflowPolicy::kShedNewest) return false;
    BlockingSection blocking;
    return box.send(m, timeout);
  }

  void join() override {
    if (joined_) return;
    std::vector<std::thread> threads;
    {
      std::unique_lock lock(mu_);
      drained_cv_.wait(lock, [&] { return remaining_ == 0; });
      shutdown_ = true;
      threads.swap(threads_);
    }
    work_cv_.notify_all();
    for (std::thread& thread : threads) {
      if (thread.joinable()) thread.join();
    }
    joined_ = true;
  }

  void blocking_begin() {
    std::lock_guard lock(mu_);
    ++blocked_;
    if (!ready_.empty() && idle_ == 0) maybe_spawn_locked();
  }

  void blocking_end() {
    std::lock_guard lock(mu_);
    --blocked_;
  }

 private:
  /// Bounded work per claim, for fairness across actors on few workers.
  static constexpr int kBatch = 64;
  static constexpr int kSourceQuantum = 64;

  struct ActorSlot {
    std::atomic<bool> running{false};  ///< claim: one worker per actor
    std::atomic<bool> done{false};
    int shutdowns = 0;  ///< tokens seen; touched only while claimed
  };

  void enqueue(std::size_t id) {
    bool wake = false;
    {
      std::lock_guard lock(mu_);
      if (shutdown_) return;
      ready_.push_back(id);
      if (idle_ > 0) {
        wake = true;
      } else {
        maybe_spawn_locked();
      }
    }
    if (wake) work_cv_.notify_one();
  }

  /// Compensation: keep `target_` runnable (non-blocked) workers as long
  /// as ready work exists, up to the thread cap.
  void maybe_spawn_locked() {
    if (spawned_ - blocked_ < target_ && spawned_ < max_threads_) spawn_locked();
  }

  void spawn_locked() {
    if (shutdown_) return;
    ++spawned_;
    threads_.emplace_back([this] { worker_loop(); });
  }

  void worker_loop();
  void run_actor_slot(std::size_t id);
  void complete(std::size_t id, ActorSlot& slot, bool run_finish);

  EngineCore* core_ = nullptr;
  int target_;           ///< runnable-worker budget (K)
  int max_threads_ = 0;  ///< hard cap including blocked compensated workers
  std::vector<ActorSlot> slots_;

  std::mutex mu_;
  std::condition_variable work_cv_;     ///< the one condvar workers park on
  std::condition_variable drained_cv_;  ///< join() waits for remaining_ == 0
  std::deque<std::size_t> ready_;       ///< actor-id hints (may hold stale ones)
  std::vector<std::thread> threads_;
  int spawned_ = 0;
  int idle_ = 0;     ///< workers parked on work_cv_
  int blocked_ = 0;  ///< workers inside a BlockingSection
  std::size_t remaining_ = 0;
  bool shutdown_ = false;
  bool joined_ = false;
};

thread_local PooledScheduler* tls_pool = nullptr;

void PooledScheduler::worker_loop() {
  tls_pool = this;
  for (;;) {
    std::size_t id = 0;
    {
      std::unique_lock lock(mu_);
      ++idle_;
      work_cv_.wait(lock, [&] { return shutdown_ || !ready_.empty(); });
      --idle_;
      if (shutdown_) break;  // remaining hints are stale: all actors done
      id = ready_.front();
      ready_.pop_front();
    }
    run_actor_slot(id);
  }
  tls_pool = nullptr;
}

void PooledScheduler::run_actor_slot(std::size_t id) {
  ActorSlot& slot = slots_[id];
  if (slot.done.load(std::memory_order_acquire)) return;
  if (slot.running.exchange(true, std::memory_order_acq_rel)) return;  // claimed elsewhere
  if (slot.done.load(std::memory_order_relaxed)) {  // finished before our claim
    slot.running.store(false, std::memory_order_release);
    return;
  }
  bool requeue = false;
  if (core_->is_source(id)) {
    bool more = false;
    try {
      more = core_->pump_source(id, kSourceQuantum);
    } catch (const std::exception& e) {
      core_->report_failure(id, e.what());
      complete(id, slot, /*run_finish=*/false);
      return;
    }
    if (!more) {
      complete(id, slot, /*run_finish=*/true);
      return;
    }
    requeue = true;  // sources stay ready until exhausted
  } else {
    Message msg;
    try {
      for (int n = 0; n < kBatch && core_->mailbox(id).try_receive(msg); ++n) {
        if (msg.kind == Message::Kind::kShutdown) {
          // FIFO per channel puts each upstream's token after its data, so
          // once all tokens arrived no data can be pending behind them.
          if (++slot.shutdowns >= core_->incoming_channels(id)) {
            complete(id, slot, /*run_finish=*/true);
            return;
          }
          continue;
        }
        core_->process_message(id, msg);
      }
    } catch (const std::exception& e) {
      core_->report_failure(id, e.what());
      complete(id, slot, /*run_finish=*/false);
      return;
    }
  }
  slot.running.store(false, std::memory_order_release);
  // A message that arrived during the batch fired its readiness hint while
  // we still held the claim (the hint was discarded): re-check so nothing
  // is stranded.
  if (requeue || core_->mailbox(id).size() > 0) enqueue(id);
}

void PooledScheduler::complete(std::size_t id, ActorSlot& slot, bool run_finish) {
  if (run_finish) {
    try {
      core_->finish_actor(id);  // flush logic, propagate shutdown tokens
    } catch (const std::exception& e) {
      core_->report_failure(id, e.what());
    }
  }
  slot.done.store(true, std::memory_order_release);
  slot.running.store(false, std::memory_order_release);
  core_->actor_done();
  bool drained = false;
  {
    std::lock_guard lock(mu_);
    drained = (--remaining_ == 0);
  }
  if (drained) drained_cv_.notify_all();
}

}  // namespace

BlockingSection::BlockingSection() noexcept : pool_(tls_pool) {
  if (pool_ != nullptr) static_cast<PooledScheduler*>(pool_)->blocking_begin();
}

BlockingSection::~BlockingSection() {
  if (pool_ != nullptr) static_cast<PooledScheduler*>(pool_)->blocking_end();
}

std::unique_ptr<Scheduler> make_pooled_scheduler(int workers);

std::unique_ptr<Scheduler> make_pooled_scheduler(int workers) {
  return std::make_unique<PooledScheduler>(workers);
}

}  // namespace ss::runtime
