#include "runtime/telemetry.hpp"

#include <chrono>
#include <condition_variable>
#include <fstream>
#include <mutex>
#include <utility>

#include "core/error.hpp"

namespace ss::runtime {

// ------------------------------------------------------- thread-local context

namespace {

struct ActorContext {
  TelemetryBoard* board = nullptr;
  OpIndex op = kInvalidOp;
  std::uint64_t blocked_in_scope = 0;
};

thread_local ActorContext tls_context;

}  // namespace

ScopedActorContext::ScopedActorContext(TelemetryBoard& board, OpIndex op) noexcept
    : saved_{tls_context.board, tls_context.op, tls_context.blocked_in_scope} {
  tls_context.board = &board;
  tls_context.op = op;
  tls_context.blocked_in_scope = 0;
}

ScopedActorContext::~ScopedActorContext() {
  tls_context.board = saved_.board;
  tls_context.op = saved_.op;
  tls_context.blocked_in_scope = saved_.blocked_in_scope;
}

std::uint64_t ScopedActorContext::blocked_ns() const {
  return tls_context.blocked_in_scope;
}

bool blocked_metering_enabled() {
  return tls_context.board != nullptr && tls_context.board->enabled();
}

void charge_blocked(std::uint64_t ns) {
  if (tls_context.board == nullptr) return;
  tls_context.board->add_blocked(tls_context.op, ns);
  tls_context.blocked_in_scope += ns;
}

void charge_blocked(std::uint64_t ns, OpIndex dest_op) {
  if (tls_context.board == nullptr) return;
  tls_context.board->add_blocked(tls_context.op, ns);
  tls_context.blocked_in_scope += ns;
  if (dest_op == kInvalidOp) return;
  if (BlockedEdgeSink* sink = tls_context.board->blocked_sink(); sink != nullptr) {
    sink->record_blocked_edge(tls_context.op, dest_op, ns);
  }
}

// ---------------------------------------------------------------- exporter

namespace {

/// Escapes operator names for JSON (the only user-controlled strings).
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) >= 0x20) out += c;
    }
  }
  return out;
}

std::uint64_t delta(const std::vector<std::uint64_t>& now,
                    const std::vector<std::uint64_t>& prev, std::size_t i) {
  const std::uint64_t a = i < now.size() ? now[i] : 0;
  const std::uint64_t b = i < prev.size() ? prev[i] : 0;
  return a >= b ? a - b : 0;
}

}  // namespace

struct MetricsExporter::Impl {
  std::ofstream out;
  std::mutex mu;
  std::condition_variable cv;  ///< wakes the loop early on stop()
};

MetricsExporter::MetricsExporter(std::function<MetricsSample()> sampler,
                                 std::vector<std::string> op_names,
                                 const std::string& path, double period_seconds,
                                 std::string tenant)
    : sampler_(std::move(sampler)),
      op_names_(std::move(op_names)),
      period_(period_seconds > 0.0 ? period_seconds : 0.5),
      tenant_(std::move(tenant)),
      impl_(std::make_unique<Impl>()) {
  impl_->out.open(path, std::ios::trunc);
  require(impl_->out.good(), "cannot write metrics file: " + path);
}

MetricsExporter::~MetricsExporter() { stop(); }

void MetricsExporter::start() {
  bool expected = false;
  if (!started_.compare_exchange_strong(expected, true)) return;
  thread_ = std::thread([this] { loop(); });
}

void MetricsExporter::stop() {
  if (!started_.load(std::memory_order_relaxed)) return;
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    stop_.store(true, std::memory_order_relaxed);
  }
  impl_->cv.notify_all();
  if (thread_.joinable()) thread_.join();
}

void MetricsExporter::loop() {
  const auto period = std::chrono::duration<double>(period_);
  std::unique_lock<std::mutex> lock(impl_->mu);
  while (!stop_.load(std::memory_order_relaxed)) {
    if (impl_->cv.wait_for(lock, period,
                           [this] { return stop_.load(std::memory_order_relaxed); })) {
      break;
    }
    lock.unlock();
    write_sample(sampler_());
    lock.lock();
  }
  lock.unlock();
  // Final sample so short runs always leave at least one line.
  write_sample(sampler_());
  impl_->out.flush();
}

void MetricsExporter::write_sample(const MetricsSample& s) {
  const CounterSnapshot& now = s.counters;
  const CounterSnapshot& prev = prev_.counters;
  const double window = have_prev_ ? now.at_seconds - prev.at_seconds : now.at_seconds;
  const double dt = window > 1e-9 ? window : 1.0;

  std::ofstream& out = impl_->out;
  out.precision(6);
  out << "{\"t\":" << now.at_seconds;
  if (!tenant_.empty()) out << ",\"tenant\":\"" << json_escape(tenant_) << "\"";
  out << ",\"epoch\":" << s.epoch
      << ",\"dropped\":" << s.dropped << ",\"ops\":[";
  const std::size_t n = now.processed.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (i > 0) out << ",";
    const double proc_rate = static_cast<double>(delta(now.processed, prev.processed, i)) / dt;
    const double emit_rate = static_cast<double>(delta(now.emitted, prev.emitted, i)) / dt;
    const double rho = static_cast<double>(delta(now.busy_ns, prev.busy_ns, i)) / 1e9 / dt;
    const double blocked =
        static_cast<double>(delta(now.blocked_ns, prev.blocked_ns, i)) / 1e9 / dt;
    out << "{\"name\":\""
        << json_escape(i < op_names_.size() ? op_names_[i] : std::to_string(i))
        << "\",\"processed\":" << (i < now.processed.size() ? now.processed[i] : 0)
        << ",\"emitted\":" << (i < now.emitted.size() ? now.emitted[i] : 0)
        << ",\"proc_rate\":" << proc_rate << ",\"emit_rate\":" << emit_rate
        << ",\"rho\":" << rho << ",\"blocked\":" << blocked
        << ",\"queue\":" << (i < now.queue_depth.size() ? now.queue_depth[i] : 0)
        << ",\"queue_peak\":" << (i < now.queue_peak.size() ? now.queue_peak[i] : 0);
    if (i < s.latency.per_op.size() && s.latency.per_op[i].count > 0) {
      const LatencySummary& l = s.latency.per_op[i];
      out << ",\"p50_ms\":" << l.p50 * 1e3 << ",\"p95_ms\":" << l.p95 * 1e3
          << ",\"p99_ms\":" << l.p99 * 1e3;
    }
    if (s.predicted.valid && i < s.predicted.op_response.size() &&
        i < s.predicted.op_p99.size()) {
      out << ",\"pred_ms\":" << s.predicted.op_response[i] * 1e3
          << ",\"pred_p99_ms\":" << s.predicted.op_p99[i] * 1e3;
    }
    out << "}";
  }
  out << "],\"e2e\":{\"count\":" << s.latency.end_to_end.count;
  if (s.latency.end_to_end.count > 0) {
    out << ",\"p50_ms\":" << s.latency.end_to_end.p50 * 1e3
        << ",\"p95_ms\":" << s.latency.end_to_end.p95 * 1e3
        << ",\"p99_ms\":" << s.latency.end_to_end.p99 * 1e3;
  }
  if (s.predicted.valid) {
    out << ",\"pred_p50_ms\":" << s.predicted.p50 * 1e3
        << ",\"pred_p95_ms\":" << s.predicted.p95 * 1e3
        << ",\"pred_p99_ms\":" << s.predicted.p99 * 1e3
        << ",\"pred_mean_ms\":" << s.predicted.mean * 1e3;
  }
  out << "}";
  if (s.checkpoints_written > 0 || s.recovered_from_epoch > 0) {
    out << ",\"ckpt\":{\"written\":" << s.checkpoints_written
        << ",\"last_epoch\":" << s.last_epoch_persisted
        << ",\"recovered_from\":" << s.recovered_from_epoch << "}";
  }
  if (!s.profile.empty()) {
    // Profiler estimates ride next to the measurements they correct; only
    // operators with an estimate get an entry (op index keys the join).
    out << ",\"profile\":[";
    bool first = true;
    for (std::size_t i = 0; i < s.profile.size(); ++i) {
      const ProfileEstimate& p = s.profile[i];
      if (p.estimated_rate <= 0.0) continue;
      if (!first) out << ",";
      out << "{\"op\":" << i << ",\"est_rate\":" << p.estimated_rate
          << ",\"busy_rate\":" << p.busy_rate << ",\"confidence\":" << p.confidence
          << ",\"samples\":" << p.samples;
      if (p.cv2 >= 0.0) out << ",\"cv2\":" << p.cv2;
      if (p.queue_full_fraction > 0.0) {
        out << ",\"queue_full\":" << p.queue_full_fraction;
      }
      out << "}";
      first = false;
    }
    out << "]";
  }
  if (!s.bottlenecks.empty()) {
    out << ",\"bottlenecks\":[";
    for (std::size_t i = 0; i < s.bottlenecks.size(); ++i) {
      if (i > 0) out << ",";
      out << "{\"op\":" << s.bottlenecks[i].op
          << ",\"blame_s\":" << s.bottlenecks[i].blame_seconds
          << ",\"share\":" << s.bottlenecks[i].share << "}";
    }
    out << "]";
  }
  out << ",\"sched\":{\"steals\":" << s.scheduler.steals
      << ",\"parks\":" << s.scheduler.parks << ",\"wakeups\":" << s.scheduler.wakeups
      << ",\"batches\":" << s.scheduler.batches
      << ",\"batch_messages\":" << s.scheduler.batch_messages
      << ",\"max_batch\":" << s.scheduler.max_batch
      << ",\"ring_enqueues\":" << s.scheduler.ring_enqueues
      << ",\"ring_spills\":" << s.scheduler.ring_spills << "}}\n";
  prev_ = s;
  have_prev_ = true;
  ++lines_;
}

}  // namespace ss::runtime
