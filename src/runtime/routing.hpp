// Routing tables used by actors when an operator emits a result.
//
// Probabilistic routing mirrors the model's edge annotations: every result
// leaves on exactly one out-edge chosen with the edge probability (paper
// §3.1).  Replica selection covers the emitter actors introduced by fission:
// round-robin for stateless operators, key-based (or share-weighted, for
// synthetic workloads) for partitioned-stateful ones (paper §4.2).
#pragma once

#include <vector>

#include "core/key_partitioning.hpp"
#include "core/topology.hpp"
#include "gen/rng.hpp"

namespace ss::runtime {

/// Chooses the logical destination of a result of one operator.
class EdgeRouter {
 public:
  EdgeRouter() = default;
  EdgeRouter(const Topology& t, OpIndex op);

  /// True when the operator has at least one out-edge.
  [[nodiscard]] bool has_destinations() const { return !targets_.empty(); }

  /// Draws a destination according to the edge probabilities.
  [[nodiscard]] OpIndex choose(Rng& rng) const;

  /// True if `target` is a legal destination (an out-neighbor).
  [[nodiscard]] bool is_destination(OpIndex target) const;

 private:
  std::vector<OpIndex> targets_;
  std::vector<double> cdf_;
};

/// Chooses the replica of a replicated operator for one input item.
class ReplicaSelector {
 public:
  ReplicaSelector() = default;

  /// Round-robin over `replicas` (stateless fission, shuffle routing).
  static ReplicaSelector round_robin(int replicas);

  /// Key-based selection through the optimizer's partition map; tuples carry
  /// their key, the map gives the owning replica.
  static ReplicaSelector by_key(KeyPartition partition);

  /// Share-weighted random selection: replica r receives `shares[r]` of the
  /// stream.  Used by synthetic workloads to realize the exact load split
  /// the cost model assumed.
  static ReplicaSelector by_share(std::vector<double> shares);

  [[nodiscard]] int replicas() const { return replicas_; }

  /// Picks a replica for a tuple with key `key`.
  int select(std::int64_t key, Rng& rng);

  // Round-robin position, checkpointed with the emitter actor: which
  // replica receives the next item decides whose rng performs the
  // selectivity draws, so a recovered run must resume the rotation where
  // the cut left it.
  [[nodiscard]] int cursor() const { return next_; }
  void set_cursor(int cursor) { next_ = cursor; }

 private:
  enum class Mode { kRoundRobin, kByKey, kByShare };
  Mode mode_ = Mode::kRoundRobin;
  int replicas_ = 1;
  int next_ = 0;  // round-robin cursor
  KeyPartition partition_;
  std::vector<double> share_cdf_;
};

}  // namespace ss::runtime
