// SchedulerHost implementation: the pooled dispatcher generalized to many
// tenants.  The per-actor mechanics (claim slot, bounded drain batch,
// batch metering, fence retirement, requeue-on-race) are the pooled
// scheduler's, ported verbatim but parameterized by tenant; what is new is
// the cross-tenant layer — stride-weighted tenant selection, host-level
// parking keyed on the aggregate pending count, blocking compensation
// shared across tenants, and hot attach/detach under the tenant lock.
#include "runtime/scheduler_host.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <utility>

#if defined(__linux__)
#include <sched.h>
#endif

#include "runtime/trace.hpp"

namespace ss::runtime {

namespace {
constexpr int kDefaultBatch = 64;
constexpr int kSourceQuantum = 64;
/// Stride numerator: pass advances by kStrideScale/weight per dispatched
/// actor batch, so a weight-2 tenant is served twice as often as a
/// weight-1 neighbor when both stay ready.
constexpr std::uint64_t kStrideScale = 1 << 20;

thread_local SchedulerHost* tls_host = nullptr;

/// Best-effort degradation (--pin in restricted environments, e.g. CI
/// containers without CAP_SYS_NICE-adjacent affinity rights): warn once on
/// stderr, keep running unpinned.
void warn_pin_unavailable() {
  static std::atomic<bool> warned{false};
  if (!warned.exchange(true, std::memory_order_relaxed)) {
    std::fprintf(stderr,
                 "spinstreams: warning: --pin requested but CPU affinity is "
                 "unavailable here; continuing unpinned\n");
  }
}

#if defined(__linux__)
/// physical_package_id per CPU from sysfs; empty when the topology cannot
/// be read (then kSockets degrades to an all-CPU mask).
std::vector<int> cpu_packages(unsigned ncpu) {
  std::vector<int> packages(ncpu, -1);
  for (unsigned cpu = 0; cpu < ncpu; ++cpu) {
    std::ifstream in("/sys/devices/system/cpu/cpu" + std::to_string(cpu) +
                     "/topology/physical_package_id");
    if (!(in >> packages[cpu])) return {};
  }
  return packages;
}
#endif

/// Pins the calling worker thread per `mode`: kCores assigns worker
/// `self` → CPU (self mod N) round-robin — the hardware analogue of the
/// last_worker_ hint routing; kSockets confines the worker to every CPU of
/// one physical package (round-robin over packages), keeping the shared
/// L3 warm without forbidding intra-socket migration.
void apply_pinning(PinMode mode, std::size_t self) {
#if defined(__linux__)
  const unsigned ncpu = std::thread::hardware_concurrency();
  if (ncpu == 0) {
    warn_pin_unavailable();
    return;
  }
  cpu_set_t set;
  CPU_ZERO(&set);
  if (mode == PinMode::kCores) {
    CPU_SET(self % ncpu, &set);
  } else {
    static const std::vector<int> packages = cpu_packages(ncpu);
    const int npkg =
        packages.empty() ? 0 : *std::max_element(packages.begin(), packages.end()) + 1;
    if (npkg <= 1) {
      // Single socket (or unreadable topology): every CPU is "the" socket.
      for (unsigned cpu = 0; cpu < ncpu; ++cpu) CPU_SET(cpu, &set);
    } else {
      const int pkg = static_cast<int>(self % static_cast<std::size_t>(npkg));
      for (unsigned cpu = 0; cpu < ncpu; ++cpu) {
        if (packages[cpu] == pkg) CPU_SET(cpu, &set);
      }
    }
  }
  if (sched_setaffinity(0, sizeof(set), &set) != 0) warn_pin_unavailable();
#else
  (void)mode;
  (void)self;
  warn_pin_unavailable();
#endif
}
}  // namespace

struct SchedulerHost::Tenant {
  EngineCore* core = nullptr;
  std::string label;
  const char* trace_label = nullptr;  ///< interned for Event tagging
  double weight = 1.0;
  std::uint64_t stride = kStrideScale;
  std::atomic<std::uint64_t> pass{0};

  struct ActorSlot {
    std::atomic<bool> running{false};  ///< claim: one worker per actor
    std::atomic<bool> done{false};
    int shutdowns = 0;  ///< tokens seen; touched only while claimed
  };

  std::unique_ptr<WorkStealingQueues> queues;  ///< per-tenant ready hints
  std::vector<ActorSlot> slots;
  std::vector<std::atomic<std::size_t>> last_worker;  ///< affinity per actor

  std::size_t remaining = 0;  ///< actors not yet done (host mu_)
  std::atomic<bool> detached{false};

  /// Drain-batch telemetry.  One shard per tenant (not per worker): any
  /// worker index maps onto the tenant's queues by modulo, so the
  /// single-writer-per-shard assumption of the old per-worker layout does
  /// not survive multi-tenancy.  fetch_add + CAS-max keep it exact.
  std::atomic<std::uint64_t> batches{0};
  std::atomic<std::uint64_t> batch_messages{0};
  std::atomic<std::uint64_t> max_batch{0};
};

SchedulerHost::SchedulerHost(int workers, int batch, PinMode pin)
    : target_(workers), batch_(batch > 0 ? batch : kDefaultBatch), pin_(pin) {
  if (target_ <= 0) {
    target_ = static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
  }
  max_threads_ = target_;
}

SchedulerHost::~SchedulerHost() {
  shutdown_.store(true, std::memory_order_release);
  {
    std::lock_guard lock(park_mu_);
    park_cv_.notify_all();
  }
  std::vector<std::thread> threads;
  {
    std::lock_guard lock(mu_);
    threads.swap(threads_);
  }
  for (std::thread& thread : threads) {
    if (thread.joinable()) thread.join();
  }
}

std::size_t SchedulerHost::num_tenants() const {
  std::shared_lock lock(tenants_mu_);
  return tenants_.size();
}

SchedulerHost::TenantId SchedulerHost::attach(EngineCore& core, std::string label,
                                              double weight) {
  auto t = std::make_shared<Tenant>();
  t->core = &core;
  t->label = std::move(label);
  if (!t->label.empty()) t->trace_label = trace::intern_label(t->label);
  t->weight = weight > 0.0 ? weight : 1.0;
  t->stride = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(static_cast<double>(kStrideScale) / t->weight));
  const std::size_t n = core.num_actors();
  // Same queue-count sizing as the single-tenant pooled scheduler: one
  // deque per potential worker of a dedicated pool.  Host workers whose
  // index exceeds it fold in by modulo (work_stealing.hpp).
  t->queues = std::make_unique<WorkStealingQueues>(static_cast<std::size_t>(target_) + n);
  t->slots = std::vector<Tenant::ActorSlot>(n);
  t->last_worker = std::vector<std::atomic<std::size_t>>(n);
  // A newcomer starts at the host's pass clock: it competes fairly from
  // now on instead of replaying credit for the time before it existed.
  t->pass.store(pass_clock_.load(std::memory_order_relaxed), std::memory_order_relaxed);
  for (std::size_t id = 0; id < n; ++id) {
    t->last_worker[id].store(id % static_cast<std::size_t>(target_),
                             std::memory_order_relaxed);
    core.mailbox(id).set_on_ready([this, t, id] { enqueue(t, id); });
  }
  {
    std::unique_lock lock(tenants_mu_);
    tenants_.push_back(t);
  }
  {
    std::lock_guard lock(mu_);
    t->remaining = n;
    max_threads_ += static_cast<int>(n);
    ensure_started();
  }
  for (std::size_t id = 0; id < n; ++id) {
    if (core.is_source(id)) enqueue(t, id);
  }
  return t;
}

void SchedulerHost::wait_drained(const TenantId& tenant) {
  std::unique_lock lock(mu_);
  drained_cv_.wait(lock, [&] { return tenant->remaining == 0; });
}

void SchedulerHost::detach(const TenantId& tenant) {
  std::size_t actors = 0;
  {
    std::unique_lock lock(tenants_mu_);
    auto it = std::find(tenants_.begin(), tenants_.end(), tenant);
    if (it == tenants_.end()) return;
    tenants_.erase(it);
    tenant->detached.store(true, std::memory_order_release);
    actors = tenant->slots.size();
    // Residual ready-hints of the leaving tenant are stale (every actor is
    // done); deduct them from the park predicate so workers don't spin
    // hunting for work that no longer exists.  They stay in the tenant's
    // deques and are reported as `discarded`, exactly like the old pool's
    // shutdown path.
    const std::size_t residual = tenant->queues->pending();
    std::size_t pending = pending_.load(std::memory_order_relaxed);
    while (pending > 0 &&
           !pending_.compare_exchange_weak(pending, pending - std::min(pending, residual),
                                           std::memory_order_acq_rel)) {
    }
  }
  std::lock_guard lock(mu_);
  max_threads_ -= static_cast<int>(actors);
}

SchedulerCounters SchedulerHost::tenant_counters(const TenantId& tenant) const {
  SchedulerCounters c;
  const WorkStealingCounters q = tenant->queues->counters();
  c.pushes = q.pushes;
  c.local_pops = q.local_pops;
  c.steals = q.steals;
  c.discarded = q.discarded;
  c.parks = parks_.load(std::memory_order_relaxed);
  c.wakeups = wakeups_.load(std::memory_order_relaxed);
  c.batches = tenant->batches.load(std::memory_order_relaxed);
  c.batch_messages = tenant->batch_messages.load(std::memory_order_relaxed);
  c.max_batch = tenant->max_batch.load(std::memory_order_relaxed);
  return c;
}

void SchedulerHost::blocking_begin() {
  std::lock_guard lock(mu_);
  ++blocked_;
  if (pending_.load(std::memory_order_acquire) > 0 &&
      idle_.load(std::memory_order_acquire) == 0) {
    maybe_spawn_locked();
  }
}

void SchedulerHost::blocking_end() {
  std::lock_guard lock(mu_);
  --blocked_;
}

void SchedulerHost::ensure_started() {
  if (started_) return;
  started_ = true;
  for (int i = 0; i < target_; ++i) spawn_locked();
}

/// Compensation: keep `target_` runnable (non-blocked) workers as long as
/// ready work exists, up to the cap.
void SchedulerHost::maybe_spawn_locked() {
  if (spawned_ - blocked_ < target_ && spawned_ < max_threads_) spawn_locked();
}

void SchedulerHost::spawn_locked() {
  if (shutdown_.load(std::memory_order_acquire)) return;
  const std::size_t self = static_cast<std::size_t>(spawned_++);
  threads_.emplace_back([this, self] { worker_loop(self); });
}

void SchedulerHost::enqueue(const TenantId& t, std::size_t id) {
  {
    std::shared_lock lock(tenants_mu_);
    if (t->detached.load(std::memory_order_relaxed)) return;
    if (t->queues->pending() == 0) {
      // Idle → ready edge: clamp the tenant's pass up to the host clock so
      // the credit it "saved" while idle cannot buy a worker monopoly now.
      std::uint64_t clock = pass_clock_.load(std::memory_order_relaxed);
      std::uint64_t pass = t->pass.load(std::memory_order_relaxed);
      while (pass < clock &&
             !t->pass.compare_exchange_weak(pass, clock, std::memory_order_relaxed)) {
      }
    }
    // Route the hint to the actor's last worker (warm cache); any worker
    // can steal it, so a busy preferred worker never delays the actor.
    t->queues->push(id, t->last_worker[id].load(std::memory_order_relaxed));
    pending_.fetch_add(1, std::memory_order_release);
  }
  wake_or_spawn();
}

void SchedulerHost::wake_or_spawn() {
  // Check-then-notify is race-free against the park path: a worker only
  // parks after re-evaluating `pending_ > 0` under park_mu_, and the
  // fetch_add in enqueue() is ordered before this load.
  if (idle_.load(std::memory_order_acquire) > 0) {
    std::lock_guard lock(park_mu_);
    park_cv_.notify_one();
    return;
  }
  // Nobody parked: all workers are busy or blocked.  Compensate if the
  // runnable budget has room (workers inside a BlockingSection don't
  // count against K).
  std::lock_guard lock(mu_);
  maybe_spawn_locked();
}

void SchedulerHost::worker_loop(std::size_t self) {
  tls_host = this;
  trace::Tracer::instance().set_thread_name("worker-" + std::to_string(self));
  // Compensation workers (self >= target_) pin by the same modulo: they
  // substitute for a blocked worker, so they inherit a blocked worker's
  // placement rather than landing on an arbitrary core.
  if (pin_ != PinMode::kNone) apply_pinning(pin_, self);
  for (;;) {
    if (shutdown_.load(std::memory_order_acquire)) break;
    if (run_one(self)) continue;
    // Global miss: park until the next enqueue (or shutdown).  The
    // predicate re-check under park_mu_ closes the lost-wakeup window
    // with wake_or_spawn().
    std::unique_lock lock(park_mu_);
    idle_.fetch_add(1, std::memory_order_release);
    const auto runnable = [&] {
      return shutdown_.load(std::memory_order_acquire) ||
             pending_.load(std::memory_order_acquire) > 0;
    };
    if (!runnable()) {
      parks_.fetch_add(1, std::memory_order_relaxed);
      trace::Span span("park", "sched");
      park_cv_.wait(lock, runnable);
      if (!shutdown_.load(std::memory_order_acquire)) {
        wakeups_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    idle_.fetch_sub(1, std::memory_order_release);
  }
  tls_host = nullptr;
}

bool SchedulerHost::run_one(std::size_t self) {
  TenantId chosen;
  std::size_t id = 0;
  {
    std::shared_lock lock(tenants_mu_);
    const std::size_t n = tenants_.size();
    if (n == 0) return false;
    if (n == 1) {
      // Single-tenant fast path: no selection — this *is* the pooled
      // scheduler.
      if (tenants_[0]->queues->try_acquire(self, id)) chosen = tenants_[0];
    } else {
      // Stride scheduling: serve ready tenants in ascending pass order.
      thread_local std::vector<std::pair<std::uint64_t, std::size_t>> order;
      order.clear();
      for (std::size_t i = 0; i < n; ++i) {
        if (tenants_[i]->queues->pending() == 0) continue;
        order.emplace_back(tenants_[i]->pass.load(std::memory_order_relaxed), i);
      }
      std::sort(order.begin(), order.end());
      for (const auto& [pass, i] : order) {
        if (tenants_[i]->queues->try_acquire(self, id)) {
          chosen = tenants_[i];
          break;
        }
      }
    }
    if (chosen) {
      pending_.fetch_sub(1, std::memory_order_release);
      const std::uint64_t next =
          chosen->pass.fetch_add(chosen->stride, std::memory_order_relaxed) +
          chosen->stride;
      std::uint64_t clock = pass_clock_.load(std::memory_order_relaxed);
      while (clock < next &&
             !pass_clock_.compare_exchange_weak(clock, next, std::memory_order_relaxed)) {
      }
    }
  }
  if (!chosen) return false;
  run_actor_slot(chosen, self, id);
  return true;
}

void SchedulerHost::run_actor_slot(const TenantId& t, std::size_t self, std::size_t id) {
  Tenant::ActorSlot& slot = t->slots[id];
  if (slot.done.load(std::memory_order_acquire)) return;
  if (slot.running.exchange(true, std::memory_order_acq_rel)) return;  // claimed elsewhere
  if (slot.done.load(std::memory_order_relaxed)) {  // finished before our claim
    slot.running.store(false, std::memory_order_release);
    return;
  }
  // Tag every event this slot records (spans, steals, operator logic) with
  // the tenant; cleared on all exit paths.
  struct TenantTagGuard {
    ~TenantTagGuard() { trace::set_thread_tenant(nullptr); }
  } tag_guard;
  trace::set_thread_tenant(t->trace_label);
  EngineCore* core = t->core;
  t->last_worker[id].store(self, std::memory_order_relaxed);
  bool requeue = false;
  // Output staging: the engine coalesces a slice's consecutive
  // same-destination emissions into a MessageBatch handed over with one
  // try_send_batch.  Staged messages MUST flush before complete() — the
  // finish/fence epilogues send tokens that may not overtake data, and the
  // moment complete() drops the tenant's last `remaining` the engine may be
  // destroyed under us.  close() covers the completion paths; the
  // destructor covers normal exit and exceptions thrown before complete().
  struct OutputStageGuard {
    EngineCore* core;
    std::size_t id;
    bool armed;
    void close() {
      if (armed) core->flush_output_batch(id);
      armed = false;
    }
    ~OutputStageGuard() { close(); }
  };
  if (core->is_source(id)) {
    trace::Span span("pump", "actor");
    span.set_arg("actor", static_cast<std::int64_t>(id));
    bool more = false;
    OutputStageGuard stage{core, id, true};
    core->begin_output_batch(id);
    try {
      more = core->pump_source(id, kSourceQuantum);
    } catch (const std::exception& e) {
      stage.close();
      core->report_failure(id, e.what());
      complete(*t, id, /*run_finish=*/false);
      return;
    }
    stage.close();
    if (core->actor_retired(id)) {  // epoch fence: no finish epilogue
      complete(*t, id, /*run_finish=*/false);
      return;
    }
    if (!more) {
      complete(*t, id, /*run_finish=*/true);
      return;
    }
    requeue = true;  // sources stay ready until exhausted
  } else {
    // One lock acquisition hands the whole batch over (Mailbox::drain), but
    // each message's capacity slot is released only as it enters service —
    // freeing the whole batch up front would give senders capacity
    // B + batch and visibly weaken the BAS backpressure the cost models
    // assume.  Tokens and data stay in FIFO order inside the batch.
    thread_local std::vector<Message> batch;
    batch.clear();
    trace::Span span("batch", "actor");
    Mailbox& box = core->mailbox(id);
    const std::size_t taken =
        box.drain(batch, static_cast<std::size_t>(batch_), /*release_now=*/false);
    span.set_arg("n", static_cast<std::int64_t>(taken));
    if (taken > 0) {
      t->batches.fetch_add(1, std::memory_order_relaxed);
      t->batch_messages.fetch_add(taken, std::memory_order_relaxed);
      std::uint64_t prev = t->max_batch.load(std::memory_order_relaxed);
      while (prev < taken &&
             !t->max_batch.compare_exchange_weak(prev, taken, std::memory_order_relaxed)) {
      }
    }
    // Time the whole batch as one busy slice (per-message metering inside
    // process_message is suppressed while the slice is open); the guard
    // closes the slice on every exit path, including completions and
    // failures.
    // The slice must be closed BEFORE complete(): the moment complete()
    // drops the tenant's last `remaining`, wait_drained() returns and the
    // owner may destroy the engine — a guard firing after that would touch
    // freed memory.  close() covers the completion paths; the destructor
    // covers normal exit and exceptions thrown before complete().
    struct BatchMeterGuard {
      EngineCore* core;
      std::size_t id;
      bool armed;
      void close() {
        if (armed) core->end_batch_meter(id);
        armed = false;
      }
      ~BatchMeterGuard() { close(); }
    } meter{core, id, taken > 0 && core->begin_batch_meter(id)};
    // Staging, declared after `meter` so the destructor (normal exit,
    // exceptions before complete()) flushes first, then closes the slice —
    // dispatch time lands in the busy slice.
    OutputStageGuard stage{core, id, taken > 0};
    if (stage.armed) core->begin_output_batch(id);
    std::size_t released = 0;
    try {
      for (Message& msg : batch) {
        box.release(1);
        ++released;
        if (msg.kind == Message::Kind::kShutdown) {
          // FIFO per channel puts each upstream's token after its data, so
          // once all tokens arrived no data can be pending behind them —
          // a completed actor cannot strand messages later in the batch.
          if (++slot.shutdowns >= core->incoming_channels(id)) {
            if (taken > released) box.release(taken - released);
            stage.close();
            meter.close();
            complete(*t, id, /*run_finish=*/true);
            return;
          }
          continue;
        }
        core->process_message(id, msg);
        if (core->actor_retired(id)) {
          // The message was the actor's final fence token: it forwarded the
          // fence and retired.  FIFO per channel puts every upstream's data
          // before its token, so nothing can be pending later in the batch.
          if (taken > released) box.release(taken - released);
          stage.close();
          meter.close();
          complete(*t, id, /*run_finish=*/false);
          return;
        }
      }
    } catch (const std::exception& e) {
      if (taken > released) box.release(taken - released);
      stage.close();
      meter.close();
      core->report_failure(id, e.what());
      complete(*t, id, /*run_finish=*/false);
      return;
    }
  }
  slot.running.store(false, std::memory_order_release);
  // A message that arrived during the batch fired its readiness hint while
  // we still held the claim (the hint was discarded): re-check so nothing
  // is stranded.
  if (requeue || core->mailbox(id).size() > 0) enqueue(t, id);
}

void SchedulerHost::complete(Tenant& t, std::size_t id, bool run_finish) {
  if (run_finish) {
    try {
      t.core->finish_actor(id);  // flush logic, propagate shutdown tokens
    } catch (const std::exception& e) {
      t.core->report_failure(id, e.what());
    }
  }
  Tenant::ActorSlot& slot = t.slots[id];
  slot.done.store(true, std::memory_order_release);
  slot.running.store(false, std::memory_order_release);
  t.core->actor_done(id);
  bool drained = false;
  {
    std::lock_guard lock(mu_);
    drained = (--t.remaining == 0);
  }
  if (drained) drained_cv_.notify_all();
}

// --------------------------------------------------------------------------
// BlockingSection: cooperative blocking compensation (scheduler.hpp).  The
// thread-local host pointer is set by worker_loop, so operator/engine code
// blocking on a non-worker thread is a no-op as before.

BlockingSection::BlockingSection() noexcept : pool_(tls_host) {
  if (pool_ != nullptr) static_cast<SchedulerHost*>(pool_)->blocking_begin();
}

BlockingSection::~BlockingSection() {
  if (pool_ != nullptr) static_cast<SchedulerHost*>(pool_)->blocking_end();
}

// --------------------------------------------------------------------------
// HostedScheduler: one engine epoch as a tenant of a SchedulerHost.

namespace {

class HostedScheduler final : public Scheduler {
 public:
  /// `owned` (may be null) gives the adapter a private host — the
  /// single-tenant pooled configuration; `host` points at it or at a
  /// shared multi-tenant host owned elsewhere.
  HostedScheduler(SchedulerHost* host, std::unique_ptr<SchedulerHost> owned,
                  std::string label, double weight)
      : host_(host), owned_(std::move(owned)), label_(std::move(label)), weight_(weight) {}

  void start(EngineCore& core) override {
    core_ = &core;
    tenant_ = host_->attach(core, label_, weight_);
  }

  bool deliver(std::size_t target, const Message& m,
               std::chrono::nanoseconds timeout) override {
    Mailbox& box = core_->mailbox(target);
    if (box.try_send(m)) return true;
    // Slow path: closed, or full.  Under shedding the drop was already
    // counted by try_send; under BAS block honestly — the BlockingSection
    // lends the core onward, so the host keeps draining the destination
    // and the send completes (backpressure without pool deadlock).
    if (box.closed() || box.policy() == OverflowPolicy::kShedNewest) return false;
    BlockingSection blocking;
    return box.send(m, timeout);
  }

  void join() override {
    if (joined_) return;
    host_->wait_drained(tenant_);
    saved_ = host_->tenant_counters(tenant_);
    host_->detach(tenant_);
    joined_ = true;
  }

  [[nodiscard]] SchedulerCounters counters() const override {
    if (joined_) return saved_;
    return tenant_ ? host_->tenant_counters(tenant_) : SchedulerCounters{};
  }

 private:
  SchedulerHost* host_;
  std::unique_ptr<SchedulerHost> owned_;
  std::string label_;
  double weight_;
  EngineCore* core_ = nullptr;
  SchedulerHost::TenantId tenant_;
  SchedulerCounters saved_;
  bool joined_ = false;
};

}  // namespace

std::unique_ptr<Scheduler> make_hosted_scheduler(SchedulerHost& host, std::string label,
                                                 double weight) {
  return std::make_unique<HostedScheduler>(&host, nullptr, std::move(label), weight);
}

std::unique_ptr<Scheduler> make_pooled_scheduler(int workers, int batch, PinMode pin);

std::unique_ptr<Scheduler> make_pooled_scheduler(int workers, int batch, PinMode pin) {
  auto host = std::make_unique<SchedulerHost>(workers, batch, pin);
  SchedulerHost* raw = host.get();
  return std::make_unique<HostedScheduler>(raw, std::move(host), std::string(), 1.0);
}

}  // namespace ss::runtime
