// Synthetic operator/source logics realizing a profiled OperatorSpec.
//
// These are what the benches run: the service time is realized as a precise
// timed wait (see clock.hpp for why that is the right substitution on small
// machines) and the selectivity parameters are honoured statistically —
// one result per `input` items consumed, `output` results per production
// (fractional parts resolved by Bernoulli draws), so measured rates converge
// to the model's expectations.
#pragma once

#include <cstdint>
#include <memory>

#include "core/topology.hpp"
#include "gen/rng.hpp"
#include "runtime/clock.hpp"
#include "runtime/operator.hpp"

namespace ss::runtime {

class SyntheticOperator final : public OperatorLogic {
 public:
  /// `time_scale` multiplies the spec's service time (benches use < 1 to
  /// shrink paper-scale experiments into CI-friendly runs).
  SyntheticOperator(const OperatorSpec& spec, std::uint64_t seed, double time_scale = 1.0);

  void process(const Tuple& item, OpIndex from, Collector& out) override;
  void on_finish(Collector& out) override;
  [[nodiscard]] std::unique_ptr<OperatorLogic> clone() const override;
  [[nodiscard]] bool save_state(std::string& out) const override;
  bool restore_state(const std::string& bytes) override;

 private:
  void produce(const Tuple& item, Collector& out);

  double service_time_;
  PacedWaiter waiter_;
  Selectivity selectivity_;
  std::uint64_t seed_;
  double time_scale_;
  Rng rng_;
  double input_credit_ = 0.0;   ///< accumulated inputs toward the next result
  Tuple last_item_{};
  bool has_pending_ = false;
  mutable std::uint64_t clones_ = 0;  ///< decorrelates replica RNG streams
};

class SyntheticSource final : public SourceLogic {
 public:
  SyntheticSource(const OperatorSpec& spec, std::uint64_t seed, double time_scale = 1.0,
                  std::int64_t max_items = -1);

  bool next(Tuple& out) override;
  void skip(std::uint64_t n) override;

 private:
  double service_time_;
  PacedWaiter waiter_;
  Rng rng_;
  std::int64_t next_id_ = 0;
  std::int64_t max_items_;
};

}  // namespace ss::runtime
