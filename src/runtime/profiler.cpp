#include "runtime/profiler.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <utility>

#include "runtime/trace.hpp"

namespace ss::runtime {

ProfileEstimator::ProfileEstimator(std::size_t num_ops,
                                   const TelemetryBoard* telemetry,
                                   const StatsBoard* stats, ProfilerConfig config,
                                   std::function<void(std::vector<QueueProbe>&)> queue_probe)
    : num_ops_(num_ops),
      telemetry_(telemetry),
      stats_(stats),
      config_(config),
      queue_probe_(std::move(queue_probe)),
      cells_(num_ops),
      edge_ns_(num_ops * num_ops),
      smoothed_(num_ops),
      published_(num_ops) {}

ProfileEstimator::~ProfileEstimator() { stop(); }

void ProfileEstimator::start() {
  bool expected = false;
  if (!started_.compare_exchange_strong(expected, true)) return;
  thread_ = std::thread([this] { loop(); });
}

void ProfileEstimator::stop() {
  if (started_.load(std::memory_order_relaxed)) {
    {
      std::lock_guard<std::mutex> lock(wake_mu_);
      stop_.store(true, std::memory_order_relaxed);
    }
    wake_cv_.notify_all();
    if (thread_.joinable()) thread_.join();
    started_.store(false, std::memory_order_relaxed);
    stop_.store(false, std::memory_order_relaxed);
  }
  // Final fold so short runs (and stopped estimators queried afterwards)
  // always publish whatever was observed.
  fold_now();
}

void ProfileEstimator::record_blocked_edge(OpIndex from, OpIndex to,
                                           std::uint64_t ns) {
  if (from >= num_ops_ || to >= num_ops_) return;
  edge_ns_[from * num_ops_ + to].fetch_add(ns, std::memory_order_relaxed);
}

void ProfileEstimator::loop() {
  const auto period = std::chrono::duration<double>(
      config_.period_seconds > 0.0 ? config_.period_seconds : 0.25);
  std::unique_lock<std::mutex> lock(wake_mu_);
  while (!stop_.load(std::memory_order_relaxed)) {
    if (wake_cv_.wait_for(lock, period,
                          [this] { return stop_.load(std::memory_order_relaxed); })) {
      break;
    }
    lock.unlock();
    fold();
    lock.lock();
  }
}

void ProfileEstimator::fold_now() { fold(); }

void ProfileEstimator::fold() {
  // Queue-occupancy probe BEFORE taking mu_: the probe callback takes the
  // engine's epoch lock, and engine threads holding that lock may call
  // snapshot() (which takes mu_) — probing under mu_ would invert the
  // order and deadlock.
  std::vector<QueueProbe> probes;
  if (queue_probe_) {
    probes.assign(num_ops_, QueueProbe{});
    queue_probe_(probes);
  }

  std::lock_guard<std::mutex> lock(mu_);

  // One occupancy sample per op per fold, "full" when a push right now
  // would enter the blocking slow path.
  for (std::size_t i = 0; i < num_ops_ && i < probes.size(); ++i) {
    const QueueProbe& q = probes[i];
    if (!q.valid || q.capacity == 0) continue;
    ++smoothed_[i].probes;
    if (q.depth >= q.capacity) ++smoothed_[i].full_probes;
  }

  // One counter snapshot per fold feeds the busy-rate comparison column.
  CounterSnapshot counters;
  if (stats_ != nullptr) counters = stats_->snapshot(0.0);

  bool all_confident = true;
  for (std::size_t i = 0; i < num_ops_; ++i) {
    Cell& c = cells_[i];
    Smoothed& s = smoothed_[i];
    // Drain the accumulators (exchange keeps concurrent recorders safe).
    const std::uint64_t m_ns = c.multi_ns.exchange(0, std::memory_order_relaxed);
    const std::uint64_t m_items =
        c.multi_items.exchange(0, std::memory_order_relaxed);
    const double m_sq = c.multi_sq_ns2.exchange(0.0, std::memory_order_relaxed);
    const std::uint64_t s_ns = c.single_ns.exchange(0, std::memory_order_relaxed);
    const std::uint64_t s_slices =
        c.single_slices.exchange(0, std::memory_order_relaxed);
    const double s_sq = c.single_sq_ns2.exchange(0.0, std::memory_order_relaxed);
    c.multi_slices.exchange(0, std::memory_order_relaxed);

    // Fold-interval service estimate: multi-item gaps are the trusted
    // signal; singleton slices only fill in (quarter weight) when the
    // interval had no backlog burst at all.
    double est_ns = 0.0;
    double est_sq = 0.0;
    std::uint64_t weight = 0;
    if (m_items > 0) {
      est_ns = static_cast<double>(m_ns) / static_cast<double>(m_items);
      est_sq = m_sq / static_cast<double>(m_items);
      weight = m_items;
    } else if (s_slices > 0) {
      est_ns = static_cast<double>(s_ns) / static_cast<double>(s_slices);
      est_sq = s_sq / static_cast<double>(s_slices);
      weight = (s_slices + 3) / 4;
    }
    if (weight > 0 && est_ns > 0.0) {
      const double alpha =
          s.items == 0 ? 1.0 : std::clamp(config_.ewma_alpha, 0.0, 1.0);
      s.service_ns += alpha * (est_ns - s.service_ns);
      const double var = std::max(0.0, est_sq - est_ns * est_ns);
      s.var_ns2 += alpha * (var - s.var_ns2);
      s.items += m_items;  // singleton slices never raise confidence
    }
    const double half = static_cast<double>(config_.confidence_target) * 0.5;
    s.confidence =
        s.items == 0
            ? 0.0
            : static_cast<double>(s.items) / (static_cast<double>(s.items) + half);

    ProfileEstimate& p = published_[i];
    p.estimated_rate = s.service_ns > 0.0 ? 1e9 / s.service_ns : 0.0;
    p.cv2 = s.service_ns > 0.0 ? s.var_ns2 / (s.service_ns * s.service_ns) : -1.0;
    p.confidence = s.confidence;
    p.samples = s.items;
    p.queue_full_fraction =
        s.probes > 0
            ? static_cast<double>(s.full_probes) / static_cast<double>(s.probes)
            : 0.0;
    if (telemetry_ != nullptr && i < telemetry_->size() &&
        i < counters.processed.size()) {
      const double busy_s =
          static_cast<double>(telemetry_->busy_ns(static_cast<OpIndex>(i))) * 1e-9;
      p.busy_rate = busy_s > 0.0
                        ? static_cast<double>(counters.processed[i]) / busy_s
                        : 0.0;
    }
    // Only ops that actually processed something vote on arming: idle
    // operators (sources, cold branches) would pin the dense window open
    // forever.  An op seen only through singleton slices (service_ns set,
    // items still 0) is active but unconfident — it keeps the window armed.
    if (s.items > 0 && s.confidence < config_.arm_threshold) all_confident = false;
    if (s.items == 0 && (p.busy_rate > 0.0 || s.service_ns > 0.0)) {
      all_confident = false;
    }
  }
  armed_.store(!all_confident, std::memory_order_relaxed);

  compute_bottlenecks();

  trace::instant("profile_sample", "profiler", "armed",
                 armed_.load(std::memory_order_relaxed) ? 1 : 0);
  trace::instant("bottleneck_rank", "profiler", "top",
                 ranking_.empty() ? -1 : static_cast<std::int64_t>(ranking_[0].op));
}

void ProfileEstimator::compute_bottlenecks() {
  // Transitive blame propagation over the observed blocked-edge graph:
  // an edge (i → j, w) blames j for w, except for the fraction of time j
  // was itself blocked downstream — that share is passed along j's own
  // blocked edges proportionally.  Iterating num_ops rounds settles any
  // DAG (cycles would need damping; stream topologies here are acyclic).
  std::vector<double> blame(num_ops_, 0.0);
  std::vector<double> out_ns(num_ops_, 0.0);
  std::vector<std::pair<std::size_t, double>> edges;  // (from*n+to, ns)
  double total = 0.0;
  for (std::size_t f = 0; f < num_ops_; ++f) {
    for (std::size_t t = 0; t < num_ops_; ++t) {
      const double w = static_cast<double>(
          edge_ns_[f * num_ops_ + t].load(std::memory_order_relaxed));
      if (w <= 0.0) continue;
      edges.emplace_back(f * num_ops_ + t, w);
      out_ns[f] += w;
      total += w;
    }
  }
  ranking_.clear();
  if (edges.empty() || total <= 0.0) return;

  // pass_fraction[j]: how much of the blame arriving at j flows through
  // to j's own downstream blockers.  Normalized by j's busy + blocked-out
  // time — a j that mostly worked (not blocked) keeps the blame.
  std::vector<double> pass(num_ops_, 0.0);
  for (std::size_t j = 0; j < num_ops_; ++j) {
    if (out_ns[j] <= 0.0) continue;
    double busy_ns = 0.0;
    if (telemetry_ != nullptr && j < telemetry_->size()) {
      busy_ns = static_cast<double>(telemetry_->busy_ns(static_cast<OpIndex>(j)));
    }
    pass[j] = out_ns[j] / (out_ns[j] + std::max(busy_ns, 1.0));
  }

  // Seed: each edge's weight arrives at its destination.
  std::vector<double> incoming(num_ops_, 0.0);
  for (const auto& [key, w] : edges) incoming[key % num_ops_] += w;
  for (std::size_t round = 0; round < num_ops_; ++round) {
    std::vector<double> next(num_ops_, 0.0);
    bool moved = false;
    for (std::size_t j = 0; j < num_ops_; ++j) {
      if (incoming[j] <= 0.0) continue;
      const double keep = incoming[j] * (1.0 - pass[j]);
      blame[j] += keep;
      const double forward = incoming[j] - keep;
      if (forward <= 1e-9 || out_ns[j] <= 0.0) {
        blame[j] += forward;
        continue;
      }
      for (const auto& [key, w] : edges) {
        if (key / num_ops_ != j) continue;
        next[key % num_ops_] += forward * (w / out_ns[j]);
        moved = true;
      }
    }
    incoming.swap(next);
    if (!moved) break;
  }
  // Whatever is still in flight after the rounds settles where it is.
  for (std::size_t j = 0; j < num_ops_; ++j) blame[j] += incoming[j];

  for (std::size_t j = 0; j < num_ops_; ++j) {
    if (blame[j] <= 0.0) continue;
    BottleneckEntry e;
    e.op = static_cast<OpIndex>(j);
    e.blame_seconds = blame[j] * 1e-9;
    e.share = blame[j] / total;
    ranking_.push_back(e);
  }
  std::sort(ranking_.begin(), ranking_.end(),
            [](const BottleneckEntry& a, const BottleneckEntry& b) {
              return a.blame_seconds > b.blame_seconds;
            });
}

std::vector<ProfileEstimate> ProfileEstimator::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return published_;
}

std::vector<BottleneckEntry> ProfileEstimator::bottlenecks() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ranking_;
}

}  // namespace ss::runtime
