// Operator registry: the catalog of the 20 real-world operators the paper's
// testbed draws from (§5.1), their structural constraints and profiled
// service-time ranges, plus factories resolving an OperatorSpec::impl name
// to an executable OperatorLogic.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/topology.hpp"
#include "runtime/engine.hpp"
#include "runtime/operator.hpp"

namespace ss::ops {

/// One catalog entry describing a reusable operator implementation.
struct CatalogEntry {
  /// Registry key, stored in OperatorSpec::impl.
  std::string impl;
  /// Default state classification (workload generation may mark windowed
  /// operators as partitioned-stateful when can_be_partitioned).
  StateKind state = StateKind::kStateless;
  /// Uses count-based windows: input selectivity = window slide.
  bool windowed = false;
  /// Keyed state that admits fission by key-domain splitting.
  bool can_be_partitioned = false;
  /// Requires at least two input edges (joins).
  bool requires_multi_input = false;
  /// Profiled service-time range in seconds (paper: hundreds of
  /// microseconds to hundreds of milliseconds).
  double service_min = 1e-4;
  double service_max = 1e-3;
  /// Output selectivity range (results per production event).
  double out_sel_min = 1.0;
  double out_sel_max = 1.0;
};

/// The 20-operator catalog.
const std::vector<CatalogEntry>& catalog();

/// Entry lookup by impl name; throws ss::Error when unknown.
const CatalogEntry& catalog_entry(const std::string& impl);

/// True if `impl` names a known operator.
bool is_known_impl(const std::string& impl);

/// Instantiates the implementation named by spec.impl, deriving window
/// parameters from the spec's input selectivity.  Throws ss::Error for
/// unknown names.  An empty impl or "synthetic" yields a profile-faithful
/// synthetic operator; "meta" is rejected (fusion groups are executed by
/// the runtime, not instantiated directly).
std::unique_ptr<runtime::OperatorLogic> make_logic(OpIndex op, const OperatorSpec& spec);

/// AppFactory for the engine: synthetic paced source + make_logic per
/// operator (the code-generation target, cf. core/codegen.hpp).
/// `max_items >= 0` bounds every source to that many items (finite runs:
/// CLI --items, the deterministic-completion mode recovery tests rely on);
/// the default keeps sources unbounded, cut off by the run duration.
runtime::AppFactory make_logic_factory(const Topology& topology,
                                       std::int64_t max_items = -1);

}  // namespace ss::ops
