#include "ops/registry.hpp"

#include <algorithm>
#include <cmath>

#include "core/error.hpp"
#include "ops/join.hpp"
#include "ops/keyed.hpp"
#include "ops/per_key.hpp"
#include "ops/spatial.hpp"
#include "ops/stateless.hpp"
#include "ops/windowed.hpp"
#include "runtime/synthetic.hpp"

namespace ss::ops {

namespace {

/// Forwards items unchanged (used for the "sink" and "identity" impls).
class Identity final : public runtime::OperatorLogic {
 public:
  void process(const Tuple& item, OpIndex, Collector& out) override { out.emit(item); }
  [[nodiscard]] std::unique_ptr<runtime::OperatorLogic> clone() const override {
    return std::make_unique<Identity>();
  }
};

std::vector<CatalogEntry> build_catalog() {
  const auto stateless = [](std::string impl, double lo, double hi, double out_lo = 1.0,
                            double out_hi = 1.0) {
    CatalogEntry e;
    e.impl = std::move(impl);
    e.state = StateKind::kStateless;
    e.service_min = lo;
    e.service_max = hi;
    e.out_sel_min = out_lo;
    e.out_sel_max = out_hi;
    return e;
  };
  const auto keyed = [](std::string impl, double lo, double hi, double out_lo = 1.0,
                        double out_hi = 1.0) {
    CatalogEntry e;
    e.impl = std::move(impl);
    e.state = StateKind::kPartitionedStateful;
    e.can_be_partitioned = true;
    e.service_min = lo;
    e.service_max = hi;
    e.out_sel_min = out_lo;
    e.out_sel_max = out_hi;
    return e;
  };
  const auto windowed = [](std::string impl, double lo, double hi, bool partitionable,
                           double out_lo = 1.0, double out_hi = 1.0) {
    CatalogEntry e;
    e.impl = std::move(impl);
    e.state = StateKind::kStateful;
    e.windowed = true;
    e.can_be_partitioned = partitionable;
    e.service_min = lo;
    e.service_max = hi;
    e.out_sel_min = out_lo;
    e.out_sel_max = out_hi;
    return e;
  };

  std::vector<CatalogEntry> entries;
  // --- stateless tuple-at-a-time (8) -----------------------------------
  entries.push_back(stateless("filter", 100e-6, 300e-6, 0.3, 0.9));
  entries.push_back(stateless("map_affine", 150e-6, 400e-6));
  entries.push_back(stateless("map_math", 0.5e-3, 2e-3));
  entries.push_back(stateless("flatmap_expand", 0.3e-3, 1e-3, 1.5, 3.0));
  entries.push_back(stateless("projection", 100e-6, 250e-6));
  entries.push_back(stateless("sampler", 80e-6, 200e-6, 0.1, 0.5));
  entries.push_back(stateless("enrich", 0.4e-3, 1.2e-3));
  entries.push_back(stateless("clamp", 100e-6, 300e-6));
  // --- partitioned-stateful keyed state (4) -----------------------------
  entries.push_back(keyed("keyed_counter", 150e-6, 500e-6));
  entries.push_back(keyed("keyed_running_sum", 150e-6, 500e-6));
  entries.push_back(keyed("keyed_average", 200e-6, 600e-6));
  entries.push_back(keyed("keyed_distinct", 0.3e-3, 1e-3, 0.2, 0.8));
  // --- count-window aggregations (5) -------------------------------------
  // Service times are *per input tuple* (paper §5.1: the expensive
  // aggregate amortizes over the window slide), which keeps the testbed's
  // fast-to-slow spread in the hundreds-of-microseconds to tens-of-
  // milliseconds band the paper describes.
  entries.push_back(windowed("wma", 0.5e-3, 5e-3, true));
  entries.push_back(windowed("win_sum", 0.4e-3, 4e-3, true));
  entries.push_back(windowed("win_max", 0.4e-3, 3e-3, true));
  entries.push_back(windowed("win_min", 0.4e-3, 3e-3, true));
  entries.push_back(windowed("win_quantile", 1e-3, 10e-3, true));
  // --- spatial window queries (2) ----------------------------------------
  // Keyed (per-group) skylines/top-k admit key-domain fission; the testbed
  // generator decides which instances are kept stateful (paper §5.3 flags
  // a few operators stateful "to mimic cases where operators cannot be
  // parallelized").
  entries.push_back(windowed("skyline", 2e-3, 15e-3, true, 0.5, 4.0));
  entries.push_back(windowed("topk", 0.8e-3, 6e-3, true, 1.0, 5.0));
  // --- band join on count windows (1) ------------------------------------
  {
    CatalogEntry join;
    join.impl = "band_join";
    join.state = StateKind::kPartitionedStateful;
    join.can_be_partitioned = true;
    join.requires_multi_input = true;
    join.service_min = 3e-3;
    join.service_max = 25e-3;
    join.out_sel_min = 0.5;
    join.out_sel_max = 2.0;
    entries.push_back(join);
  }
  return entries;
}

/// Window slide derived from the profiled input selectivity; the window
/// length is the paper-style 20x-100x multiple capped at 10000 items.
std::pair<std::size_t, std::size_t> window_params(const OperatorSpec& spec) {
  const auto slide = static_cast<std::size_t>(
      std::max<long long>(1, std::llround(spec.selectivity.input)));
  const std::size_t length = std::clamp<std::size_t>(slide * 100, 1000, 10000);
  return {length, slide};
}

}  // namespace

const std::vector<CatalogEntry>& catalog() {
  static const std::vector<CatalogEntry> entries = build_catalog();
  return entries;
}

const CatalogEntry& catalog_entry(const std::string& impl) {
  for (const CatalogEntry& e : catalog()) {
    if (e.impl == impl) return e;
  }
  throw Error("unknown operator implementation '" + impl + "'");
}

bool is_known_impl(const std::string& impl) {
  return std::any_of(catalog().begin(), catalog().end(),
                     [&](const CatalogEntry& e) { return e.impl == impl; });
}

std::unique_ptr<runtime::OperatorLogic> make_logic(OpIndex op, const OperatorSpec& spec) {
  require(spec.impl != "meta",
          "make_logic: meta-operators are executed by the runtime, not instantiated");
  if (spec.impl.empty() || spec.impl == "synthetic") {
    return std::make_unique<runtime::SyntheticOperator>(spec, 0x9e3779b97f4a7c15ULL + op);
  }
  const auto [length, slide] = window_params(spec);
  // Windowed operators declared partitioned-stateful get per-key windows:
  // PerKey lifts the global aggregate into its keyed variant, which is the
  // partitionable-state shape fission relies on (paper §2).
  const bool keyed_windows = spec.state == StateKind::kPartitionedStateful &&
                             is_known_impl(spec.impl) && catalog_entry(spec.impl).windowed;
  if (keyed_windows) {
    OperatorSpec inner = spec;
    inner.state = StateKind::kStateful;  // the inner instance is one key's state
    return std::make_unique<PerKey>(
        [inner, op]() { return make_logic(op, inner); });
  }
  if (spec.impl == "filter") return std::make_unique<Filter>();
  if (spec.impl == "map_affine") return std::make_unique<MapAffine>();
  if (spec.impl == "map_math") return std::make_unique<MapMath>();
  if (spec.impl == "flatmap_expand") {
    return std::make_unique<FlatMapExpand>(
        std::max(1, static_cast<int>(std::llround(spec.selectivity.output))));
  }
  if (spec.impl == "projection") return std::make_unique<Projection>();
  if (spec.impl == "sampler") {
    return std::make_unique<Sampler>(std::clamp(spec.selectivity.output, 0.01, 1.0),
                                     0x12345 + op);
  }
  if (spec.impl == "enrich") return std::make_unique<Enrich>();
  if (spec.impl == "clamp") return std::make_unique<Clamp>();
  if (spec.impl == "keyed_counter") return std::make_unique<KeyedCounter>();
  if (spec.impl == "keyed_running_sum") return std::make_unique<KeyedRunningSum>();
  if (spec.impl == "keyed_average") return std::make_unique<KeyedAverage>();
  if (spec.impl == "keyed_distinct") return std::make_unique<KeyedDistinct>();
  if (spec.impl == "wma") return std::make_unique<Wma>(length, slide);
  if (spec.impl == "win_sum") return std::make_unique<WinSum>(length, slide);
  if (spec.impl == "win_max") return std::make_unique<WinMax>(length, slide);
  if (spec.impl == "win_min") return std::make_unique<WinMin>(length, slide);
  if (spec.impl == "win_quantile") return std::make_unique<WinQuantile>(length, slide);
  if (spec.impl == "skyline") return std::make_unique<Skyline>(length, slide);
  if (spec.impl == "topk") return std::make_unique<TopK>(length, slide);
  if (spec.impl == "band_join") return std::make_unique<BandJoin>();
  if (spec.impl == "sink" || spec.impl == "identity") return std::make_unique<Identity>();
  throw Error("unknown operator implementation '" + spec.impl + "'");
}

runtime::AppFactory make_logic_factory(const Topology& topology, std::int64_t max_items) {
  (void)topology;  // reserved: per-topology wiring (e.g. join side ids)
  runtime::AppFactory factory;
  factory.source = [max_items](OpIndex op, const OperatorSpec& spec) {
    return std::make_unique<runtime::SyntheticSource>(spec, 0x51ed2701u + op,
                                                      /*time_scale=*/1.0, max_items);
  };
  factory.logic = [](OpIndex op, const OperatorSpec& spec) { return make_logic(op, spec); };
  return factory;
}

}  // namespace ss::ops
