#include "ops/join.hpp"

#include <cmath>

namespace ss::ops {

void BandJoin::process(const Tuple& item, OpIndex from, Collector& out) {
  if (left_from_ == kInvalidOp) left_from_ = from;
  const bool is_left = (from == left_from_);
  std::deque<Tuple>& own = is_left ? left_ : right_;
  const std::deque<Tuple>& other = is_left ? right_ : left_;

  own.push_back(item);
  if (own.size() > window_length_) own.pop_front();

  for (const Tuple& match : other) {
    if (std::abs(match.f[0] - item.f[0]) <= band_) {
      // Merged result: probe tuple's identity, matched value in f[2],
      // matched key in f[3] (as a numeric payload).
      Tuple result = item;
      result.f[2] = match.f[0];
      result.f[3] = static_cast<double>(match.key);
      out.emit(result);
    }
  }
}

}  // namespace ss::ops
