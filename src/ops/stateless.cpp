#include "ops/stateless.hpp"

#include <cmath>

namespace ss::ops {

void MapMath::process(const Tuple& item, OpIndex, Collector& out) {
  Tuple t = item;
  double x = t.f[0];
  for (int i = 0; i < rounds_; ++i) {
    x = std::sin(x) * std::exp(-x * x) + std::log1p(std::abs(x));
  }
  t.f[1] = x;
  out.emit(t);
}

Enrich::Enrich(std::size_t table_size) : table_(table_size == 0 ? 1 : table_size) {
  // Deterministic pseudo-reference data: a fixed hash of the slot index.
  for (std::size_t i = 0; i < table_.size(); ++i) {
    const auto h = (i * 2654435761u) & 0xffffu;
    table_[i] = static_cast<double>(h) / 65535.0;
  }
}

void Enrich::process(const Tuple& item, OpIndex, Collector& out) {
  Tuple t = item;
  const auto n = static_cast<std::int64_t>(table_.size());
  std::int64_t slot = t.key % n;
  if (slot < 0) slot += n;
  t.f[3] = table_[static_cast<std::size_t>(slot)];
  out.emit(t);
}

}  // namespace ss::ops
