// Count-based sliding windows (paper §3.4, §5.1).
//
// The paper's windowed operators use count-based windows of length w sliding
// every s items: the operator's input selectivity is exactly s (one result
// per s new items once the window is primed).  CountWindow keeps the last w
// tuples and reports when a slide boundary is crossed.
#pragma once

#include <cstddef>
#include <deque>
#include <utility>

#include "core/error.hpp"
#include "runtime/tuple.hpp"

namespace ss::ops {

class CountWindow {
 public:
  CountWindow(std::size_t length, std::size_t slide) : length_(length), slide_(slide) {
    require(length > 0 && slide > 0, "CountWindow: length and slide must be positive");
  }

  /// Inserts one tuple; returns true when a window result is due (every
  /// `slide` insertions once at least one tuple is buffered; the first
  /// trigger fires as soon as `slide` items arrived, matching the partial
  /// window semantics streaming systems commonly use).
  bool push(const runtime::Tuple& t) {
    buffer_.push_back(t);
    if (buffer_.size() > length_) buffer_.pop_front();
    if (++since_slide_ >= slide_) {
      since_slide_ = 0;
      return true;
    }
    return false;
  }

  [[nodiscard]] const std::deque<runtime::Tuple>& contents() const { return buffer_; }
  [[nodiscard]] std::size_t size() const { return buffer_.size(); }
  [[nodiscard]] bool empty() const { return buffer_.empty(); }
  [[nodiscard]] std::size_t length() const { return length_; }
  [[nodiscard]] std::size_t slide() const { return slide_; }

  /// True when items arrived after the last slide trigger (a partial tail
  /// worth flushing at end-of-stream).
  [[nodiscard]] bool has_pending() const { return since_slide_ > 0; }

  /// Items since the last slide trigger (checkpointed with the contents).
  [[nodiscard]] std::size_t since_slide() const { return since_slide_; }

  /// Replaces buffer and slide phase wholesale (checkpoint restore).
  void restore(std::deque<runtime::Tuple> buffer, std::size_t since_slide) {
    buffer_ = std::move(buffer);
    since_slide_ = since_slide;
  }

  void clear() {
    buffer_.clear();
    since_slide_ = 0;
  }

 private:
  std::size_t length_;
  std::size_t slide_;
  std::deque<runtime::Tuple> buffer_;
  std::size_t since_slide_ = 0;
};

}  // namespace ss::ops
