// Band join over count-based windows (paper §5.1: "join operators
// performing band-join predicates on count-based windows").
//
// The operator has two input streams, distinguished by the logical upstream
// operator id the runtime passes to process().  Each side keeps a
// count-based window; an arriving tuple is matched against the opposite
// window with the band predicate |a.f[0] - b.f[0]| <= band, emitting one
// merged tuple per match (data-dependent output selectivity).
#pragma once

#include <deque>
#include <memory>

#include "core/types.hpp"
#include "runtime/operator.hpp"

namespace ss::ops {

using runtime::Collector;
using runtime::OperatorLogic;
using runtime::Tuple;

class BandJoin final : public OperatorLogic {
 public:
  explicit BandJoin(std::size_t window_length = 256, double band = 0.05)
      : window_length_(window_length), band_(band) {}

  void process(const Tuple& item, OpIndex from, Collector& out) override;
  [[nodiscard]] std::unique_ptr<OperatorLogic> clone() const override {
    return std::make_unique<BandJoin>(window_length_, band_);
  }

  [[nodiscard]] std::size_t window_length() const { return window_length_; }
  [[nodiscard]] double band() const { return band_; }

 private:
  std::size_t window_length_;
  double band_;
  // The first upstream id observed becomes the left side; any other id is
  // the right side (the runtime guarantees stable `from` values).
  OpIndex left_from_ = kInvalidOp;
  std::deque<Tuple> left_;
  std::deque<Tuple> right_;
};

}  // namespace ss::ops
