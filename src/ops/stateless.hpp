// Stateless tuple-at-a-time operators (paper §5.1: "filters and maps, which
// apply transformations on a tuple-by-tuple basis").
//
// Field conventions: f[0] is the primary measurement, f[1] a derived value,
// f[2] auxiliary, f[3] enrichment payload.  All operators are deterministic
// functions of the input (plus an explicit seed for Sampler), so replicas
// are trivially safe.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "gen/rng.hpp"
#include "runtime/operator.hpp"
#include "runtime/wire.hpp"

namespace ss::ops {

using runtime::Collector;
using runtime::OperatorLogic;
using runtime::Tuple;

/// Drops tuples whose f[0] is below `threshold` (output selectivity < 1).
class Filter final : public OperatorLogic {
 public:
  explicit Filter(double threshold = 0.5) : threshold_(threshold) {}
  void process(const Tuple& item, OpIndex, Collector& out) override {
    if (item.f[0] >= threshold_) out.emit(item);
  }
  [[nodiscard]] std::unique_ptr<OperatorLogic> clone() const override {
    return std::make_unique<Filter>(threshold_);
  }

 private:
  double threshold_;
};

/// f[0] <- a * f[0] + b (unit conversion, normalization...).
class MapAffine final : public OperatorLogic {
 public:
  MapAffine(double a = 2.0, double b = 1.0) : a_(a), b_(b) {}
  void process(const Tuple& item, OpIndex, Collector& out) override {
    Tuple t = item;
    t.f[0] = a_ * t.f[0] + b_;
    out.emit(t);
  }
  [[nodiscard]] std::unique_ptr<OperatorLogic> clone() const override {
    return std::make_unique<MapAffine>(a_, b_);
  }

 private:
  double a_;
  double b_;
};

/// f[1] <- iterated transcendental of f[0]; `rounds` tunes the CPU cost
/// (a stand-in for feature extraction / scoring kernels).
class MapMath final : public OperatorLogic {
 public:
  explicit MapMath(int rounds = 16) : rounds_(rounds) {}
  void process(const Tuple& item, OpIndex, Collector& out) override;
  [[nodiscard]] std::unique_ptr<OperatorLogic> clone() const override {
    return std::make_unique<MapMath>(rounds_);
  }

 private:
  int rounds_;
};

/// Emits `factor` copies of each input, with f[2] set to the copy ordinal
/// (output selectivity = factor).
class FlatMapExpand final : public OperatorLogic {
 public:
  explicit FlatMapExpand(int factor = 2) : factor_(factor) {}
  void process(const Tuple& item, OpIndex, Collector& out) override {
    for (int i = 0; i < factor_; ++i) {
      Tuple t = item;
      t.f[2] = static_cast<double>(i);
      out.emit(t);
    }
  }
  [[nodiscard]] std::unique_ptr<OperatorLogic> clone() const override {
    return std::make_unique<FlatMapExpand>(factor_);
  }

 private:
  int factor_;
};

/// Keeps f[0] and clears the remaining attributes (column projection).
class Projection final : public OperatorLogic {
 public:
  void process(const Tuple& item, OpIndex, Collector& out) override {
    Tuple t = item;
    t.f[1] = t.f[2] = t.f[3] = 0.0;
    out.emit(t);
  }
  [[nodiscard]] std::unique_ptr<OperatorLogic> clone() const override {
    return std::make_unique<Projection>();
  }
};

/// Forwards each tuple with probability `rate` (probabilistic load
/// reduction; output selectivity = rate).
class Sampler final : public OperatorLogic {
 public:
  explicit Sampler(double rate = 0.25, std::uint64_t seed = 7) : rate_(rate), rng_(seed) {}
  void process(const Tuple& item, OpIndex, Collector& out) override {
    if (rng_.bernoulli(rate_)) out.emit(item);
  }
  [[nodiscard]] std::unique_ptr<OperatorLogic> clone() const override {
    return std::make_unique<Sampler>(rate_, rng_.next_u64());
  }
  // The rng position is the Sampler's only state: a recovered instance must
  // continue the exact Bernoulli stream for item counts to stay identical.
  [[nodiscard]] bool save_state(std::string& out) const override {
    for (std::uint64_t lane : rng_.state()) runtime::wire::put_u64(out, lane);
    return true;
  }
  bool restore_state(const std::string& bytes) override {
    runtime::wire::Reader in(bytes);
    std::array<std::uint64_t, 4> lanes{};
    for (auto& lane : lanes) {
      if (!in.u64(lane)) return false;
    }
    if (!in.ok() || in.remaining() != 0) return false;
    rng_.set_state(lanes);
    return true;
  }

 private:
  double rate_;
  mutable Rng rng_;
};

/// Joins each tuple against a static reference table by key:
/// f[3] <- table[key mod table_size] (dimension-table enrichment).
class Enrich final : public OperatorLogic {
 public:
  explicit Enrich(std::size_t table_size = 1024);
  void process(const Tuple& item, OpIndex, Collector& out) override;
  [[nodiscard]] std::unique_ptr<OperatorLogic> clone() const override {
    return std::make_unique<Enrich>(table_.size());
  }

 private:
  std::vector<double> table_;
};

/// Clamps f[0] into [lo, hi] (sensor range sanitation).
class Clamp final : public OperatorLogic {
 public:
  Clamp(double lo = 0.0, double hi = 1.0) : lo_(lo), hi_(hi) {}
  void process(const Tuple& item, OpIndex, Collector& out) override {
    Tuple t = item;
    if (t.f[0] < lo_) t.f[0] = lo_;
    if (t.f[0] > hi_) t.f[0] = hi_;
    out.emit(t);
  }
  [[nodiscard]] std::unique_ptr<OperatorLogic> clone() const override {
    return std::make_unique<Clamp>(lo_, hi_);
  }

 private:
  double lo_;
  double hi_;
};

}  // namespace ss::ops
