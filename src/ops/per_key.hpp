// Per-key state adapter: lifts any OperatorLogic into its keyed variant.
//
// A windowed aggregate like Wma keeps one global window; wrapping it in
// PerKey gives one window *per key*, which is exactly what makes such an
// operator partitioned-stateful (paper §2: "stateful ones having a
// partitionable state"): replicas own disjoint key subsets, and each key's
// state lives in exactly one replica.  The testbed's "partitioned windowed"
// operators are PerKey-lifted instances of the global aggregates.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "runtime/operator.hpp"
#include "runtime/wire.hpp"

namespace ss::ops {

class PerKey final : public runtime::OperatorLogic {
 public:
  using InnerFactory = std::function<std::unique_ptr<runtime::OperatorLogic>()>;

  /// `factory` creates the state of one key on first touch.
  explicit PerKey(InnerFactory factory) : factory_(std::move(factory)) {}

  void process(const runtime::Tuple& item, OpIndex from, runtime::Collector& out) override {
    auto it = states_.find(item.key);
    if (it == states_.end()) it = states_.emplace(item.key, factory_()).first;
    it->second->process(item, from, out);
  }

  void on_finish(runtime::Collector& out) override {
    // Flush every key's pending state (e.g. partial windows).
    for (auto& [key, logic] : states_) {
      (void)key;
      logic->on_finish(out);
    }
  }

  [[nodiscard]] std::unique_ptr<runtime::OperatorLogic> clone() const override {
    return std::make_unique<PerKey>(factory_);  // fresh, empty key map
  }

  [[nodiscard]] std::vector<std::int64_t> owned_keys() const override {
    std::vector<std::int64_t> keys;
    keys.reserve(states_.size());
    for (const auto& [key, logic] : states_) {
      (void)logic;
      keys.push_back(key);
    }
    return keys;
  }

  bool migrate_key(std::int64_t key, runtime::OperatorLogic& dest) override {
    auto* target = dynamic_cast<PerKey*>(&dest);
    auto it = states_.find(key);
    if (target == nullptr || it == states_.end()) return false;
    target->states_[key] = std::move(it->second);  // the whole inner logic moves
    states_.erase(it);
    return true;
  }

  [[nodiscard]] bool save_state(std::string& out) const override {
    namespace wire = runtime::wire;
    // Keys ascending for byte-stable blobs; every inner logic must itself
    // support save_state, else the whole keyed state is unserializable.
    std::vector<std::int64_t> keys;
    keys.reserve(states_.size());
    for (const auto& [key, logic] : states_) {
      (void)logic;
      keys.push_back(key);
    }
    std::sort(keys.begin(), keys.end());
    std::string body;
    wire::put_u64(body, keys.size());
    for (std::int64_t key : keys) {
      std::string inner;
      if (!states_.at(key)->save_state(inner)) return false;
      wire::put_i64(body, key);
      wire::put_bytes(body, inner);
    }
    out += body;
    return true;
  }

  bool restore_state(const std::string& bytes) override {
    runtime::wire::Reader in(bytes);
    std::uint64_t n = 0;
    if (!in.u64(n)) return false;
    std::unordered_map<std::int64_t, std::unique_ptr<runtime::OperatorLogic>> fresh;
    fresh.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      std::int64_t key;
      std::string inner;
      if (!in.i64(key) || !in.bytes(inner)) return false;
      auto logic = factory_();
      if (!logic->restore_state(inner)) return false;
      fresh[key] = std::move(logic);
    }
    if (!in.ok() || in.remaining() != 0) return false;
    states_ = std::move(fresh);
    return true;
  }

  /// Number of distinct keys touched so far (observability/testing).
  [[nodiscard]] std::size_t keys_touched() const { return states_.size(); }

 private:
  InnerFactory factory_;
  std::unordered_map<std::int64_t, std::unique_ptr<runtime::OperatorLogic>> states_;
};

}  // namespace ss::ops
