// Count-based sliding-window aggregations (paper §5.1: "stateful operators
// based on count-based windows for aggregation tasks, i.e. weighted moving
// average, sum, max, min and quantiles").
//
// Every operator here consumes each input (buffering it) and emits one
// aggregate per window slide: its input selectivity equals the slide s.
// Aggregates write their value into f[1] of a copy of the latest tuple.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <utility>

#include "ops/window.hpp"
#include "runtime/operator.hpp"
#include "runtime/wire.hpp"

namespace ss::ops {

using runtime::Collector;
using runtime::OperatorLogic;
using runtime::Tuple;

/// Common machinery: buffer into a CountWindow, call aggregate() per slide,
/// flush the partial tail at end-of-stream.
class WindowedAggregate : public OperatorLogic {
 public:
  WindowedAggregate(std::size_t length, std::size_t slide) : window_(length, slide) {}

  void process(const Tuple& item, OpIndex, Collector& out) final {
    if (window_.push(item)) emit_aggregate(item, out);
  }
  void on_finish(Collector& out) final {
    if (window_.has_pending() && !window_.empty()) {
      emit_aggregate(window_.contents().back(), out);
    }
  }

  // The window buffer and slide phase are the aggregate's only state (the
  // length/slide/q parameters are configuration, reconstructed by the
  // factory); serializing them in the base covers every subclass.
  [[nodiscard]] bool save_state(std::string& out) const override {
    namespace wire = runtime::wire;
    wire::put_u64(out, window_.size());
    for (const Tuple& t : window_.contents()) {
      wire::put_i64(out, t.id);
      wire::put_i64(out, t.key);
      wire::put_f64(out, t.ts);
      for (double f : t.f) wire::put_f64(out, f);
    }
    wire::put_u64(out, window_.since_slide());
    return true;
  }

  bool restore_state(const std::string& bytes) override {
    runtime::wire::Reader in(bytes);
    std::uint64_t n = 0;
    if (!in.u64(n)) return false;
    std::deque<Tuple> buffer;
    for (std::uint64_t i = 0; i < n; ++i) {
      Tuple t;
      if (!in.i64(t.id) || !in.i64(t.key) || !in.f64(t.ts)) return false;
      for (double& f : t.f) {
        if (!in.f64(f)) return false;
      }
      buffer.push_back(t);
    }
    std::uint64_t since_slide = 0;
    if (!in.u64(since_slide) || !in.ok() || in.remaining() != 0) return false;
    window_.restore(std::move(buffer), static_cast<std::size_t>(since_slide));
    return true;
  }

 protected:
  /// Computes the aggregate of the current window contents into f[1] of a
  /// copy of `latest` (may emit more than once, e.g. Skyline overrides the
  /// emission entirely).
  virtual void emit_aggregate(const Tuple& latest, Collector& out) = 0;

  [[nodiscard]] const CountWindow& window() const { return window_; }

 private:
  CountWindow window_;
};

/// Weighted moving average of f[0] (linear weights, recent items heavier).
class Wma final : public WindowedAggregate {
 public:
  Wma(std::size_t length = 1000, std::size_t slide = 10) : WindowedAggregate(length, slide) {}
  [[nodiscard]] std::unique_ptr<OperatorLogic> clone() const override {
    return std::make_unique<Wma>(window().length(), window().slide());
  }

 protected:
  void emit_aggregate(const Tuple& latest, Collector& out) override;
};

/// Sum of f[0] over the window.
class WinSum final : public WindowedAggregate {
 public:
  WinSum(std::size_t length = 1000, std::size_t slide = 10) : WindowedAggregate(length, slide) {}
  [[nodiscard]] std::unique_ptr<OperatorLogic> clone() const override {
    return std::make_unique<WinSum>(window().length(), window().slide());
  }

 protected:
  void emit_aggregate(const Tuple& latest, Collector& out) override;
};

/// Maximum of f[0] over the window.
class WinMax final : public WindowedAggregate {
 public:
  WinMax(std::size_t length = 1000, std::size_t slide = 10) : WindowedAggregate(length, slide) {}
  [[nodiscard]] std::unique_ptr<OperatorLogic> clone() const override {
    return std::make_unique<WinMax>(window().length(), window().slide());
  }

 protected:
  void emit_aggregate(const Tuple& latest, Collector& out) override;
};

/// Minimum of f[0] over the window.
class WinMin final : public WindowedAggregate {
 public:
  WinMin(std::size_t length = 1000, std::size_t slide = 10) : WindowedAggregate(length, slide) {}
  [[nodiscard]] std::unique_ptr<OperatorLogic> clone() const override {
    return std::make_unique<WinMin>(window().length(), window().slide());
  }

 protected:
  void emit_aggregate(const Tuple& latest, Collector& out) override;
};

/// q-quantile (0 < q < 1) of f[0] over the window via nth_element.
class WinQuantile final : public WindowedAggregate {
 public:
  WinQuantile(std::size_t length = 1000, std::size_t slide = 10, double q = 0.95)
      : WindowedAggregate(length, slide), q_(q) {}
  [[nodiscard]] std::unique_ptr<OperatorLogic> clone() const override {
    return std::make_unique<WinQuantile>(window().length(), window().slide(), q_);
  }

 protected:
  void emit_aggregate(const Tuple& latest, Collector& out) override;

 private:
  double q_;
};

}  // namespace ss::ops
