#include "ops/spatial.hpp"

#include <algorithm>
#include <vector>

namespace ss::ops {

namespace {
bool dominates(const Tuple& a, const Tuple& b) {
  return a.f[0] >= b.f[0] && a.f[1] >= b.f[1] && (a.f[0] > b.f[0] || a.f[1] > b.f[1]);
}
}  // namespace

void Skyline::emit_skyline(Collector& out) {
  const auto& items = window_.contents();
  for (const Tuple& candidate : items) {
    bool dominated = false;
    for (const Tuple& other : items) {
      if (dominates(other, candidate)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) out.emit(candidate);
  }
}

void TopK::emit_topk(Collector& out) {
  std::vector<Tuple> items(window_.contents().begin(), window_.contents().end());
  const std::size_t k = std::min(k_, items.size());
  std::partial_sort(items.begin(), items.begin() + static_cast<std::ptrdiff_t>(k), items.end(),
                    [](const Tuple& a, const Tuple& b) { return a.f[0] > b.f[0]; });
  for (std::size_t i = 0; i < k; ++i) out.emit(items[i]);
}

}  // namespace ss::ops
