// Spatial window queries (paper §5.1: "spatial queries, i.e. skyline and
// top-k"): multi-result window operators whose output selectivity depends on
// the data.
#pragma once

#include <memory>

#include "ops/window.hpp"
#include "runtime/operator.hpp"

namespace ss::ops {

using runtime::Collector;
using runtime::OperatorLogic;
using runtime::Tuple;

/// 2-D skyline over (f[0], f[1]): per slide, emits the tuples of the window
/// that are not dominated (a dominates b iff a.f[0] >= b.f[0] and
/// a.f[1] >= b.f[1] with at least one strict).  Classic block-nested-loop
/// skyline — O(n^2) worst case, the expensive operator of the testbed.
class Skyline final : public OperatorLogic {
 public:
  Skyline(std::size_t length = 1000, std::size_t slide = 50) : window_(length, slide) {}
  void process(const Tuple& item, OpIndex, Collector& out) override {
    if (window_.push(item)) emit_skyline(out);
  }
  void on_finish(Collector& out) override {
    if (window_.has_pending() && !window_.empty()) emit_skyline(out);
  }
  [[nodiscard]] std::unique_ptr<OperatorLogic> clone() const override {
    return std::make_unique<Skyline>(window_.length(), window_.slide());
  }

 private:
  void emit_skyline(Collector& out);
  CountWindow window_;
};

/// Top-k by f[0] over the window: per slide emits the k largest tuples in
/// descending order (output selectivity up to k per slide).
class TopK final : public OperatorLogic {
 public:
  TopK(std::size_t length = 1000, std::size_t slide = 50, std::size_t k = 5)
      : window_(length, slide), k_(k) {}
  void process(const Tuple& item, OpIndex, Collector& out) override {
    if (window_.push(item)) emit_topk(out);
  }
  void on_finish(Collector& out) override {
    if (window_.has_pending() && !window_.empty()) emit_topk(out);
  }
  [[nodiscard]] std::unique_ptr<OperatorLogic> clone() const override {
    return std::make_unique<TopK>(window_.length(), window_.slide(), k_);
  }

 private:
  void emit_topk(Collector& out);
  CountWindow window_;
  std::size_t k_;
};

}  // namespace ss::ops
