#include "ops/windowed.hpp"

#include <algorithm>
#include <vector>

namespace ss::ops {

void Wma::emit_aggregate(const Tuple& latest, Collector& out) {
  const auto& items = window().contents();
  double weighted = 0.0;
  double total_weight = 0.0;
  double w = 1.0;
  for (const Tuple& t : items) {  // oldest -> newest, weights 1..n
    weighted += w * t.f[0];
    total_weight += w;
    w += 1.0;
  }
  Tuple result = latest;
  result.f[1] = total_weight > 0.0 ? weighted / total_weight : 0.0;
  out.emit(result);
}

void WinSum::emit_aggregate(const Tuple& latest, Collector& out) {
  double sum = 0.0;
  for (const Tuple& t : window().contents()) sum += t.f[0];
  Tuple result = latest;
  result.f[1] = sum;
  out.emit(result);
}

void WinMax::emit_aggregate(const Tuple& latest, Collector& out) {
  double best = -1e300;
  for (const Tuple& t : window().contents()) best = std::max(best, t.f[0]);
  Tuple result = latest;
  result.f[1] = best;
  out.emit(result);
}

void WinMin::emit_aggregate(const Tuple& latest, Collector& out) {
  double best = 1e300;
  for (const Tuple& t : window().contents()) best = std::min(best, t.f[0]);
  Tuple result = latest;
  result.f[1] = best;
  out.emit(result);
}

void WinQuantile::emit_aggregate(const Tuple& latest, Collector& out) {
  std::vector<double> values;
  values.reserve(window().size());
  for (const Tuple& t : window().contents()) values.push_back(t.f[0]);
  const auto rank = static_cast<std::size_t>(q_ * static_cast<double>(values.size() - 1));
  std::nth_element(values.begin(), values.begin() + static_cast<std::ptrdiff_t>(rank),
                   values.end());
  Tuple result = latest;
  result.f[1] = values[rank];
  out.emit(result);
}

}  // namespace ss::ops
