// Partitioned-stateful operators: per-key state, safely replicable by
// splitting the key domain (paper §2, §3.2).  Each replica only ever sees a
// subset of the keys, so per-replica hash maps are the state partitions.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <unordered_set>

#include "runtime/operator.hpp"

namespace ss::ops {

using runtime::Collector;
using runtime::OperatorLogic;
using runtime::Tuple;

/// f[1] <- number of tuples seen for this key so far.
class KeyedCounter final : public OperatorLogic {
 public:
  void process(const Tuple& item, OpIndex, Collector& out) override {
    Tuple t = item;
    t.f[1] = static_cast<double>(++counts_[t.key]);
    out.emit(t);
  }
  [[nodiscard]] std::unique_ptr<OperatorLogic> clone() const override {
    return std::make_unique<KeyedCounter>();
  }

 private:
  std::unordered_map<std::int64_t, std::uint64_t> counts_;
};

/// f[1] <- running sum of f[0] for this key.
class KeyedRunningSum final : public OperatorLogic {
 public:
  void process(const Tuple& item, OpIndex, Collector& out) override {
    Tuple t = item;
    t.f[1] = (sums_[t.key] += t.f[0]);
    out.emit(t);
  }
  [[nodiscard]] std::unique_ptr<OperatorLogic> clone() const override {
    return std::make_unique<KeyedRunningSum>();
  }

 private:
  std::unordered_map<std::int64_t, double> sums_;
};

/// f[1] <- running mean of f[0] for this key.
class KeyedAverage final : public OperatorLogic {
 public:
  void process(const Tuple& item, OpIndex, Collector& out) override {
    State& s = state_[item.key];
    s.sum += item.f[0];
    ++s.count;
    Tuple t = item;
    t.f[1] = s.sum / static_cast<double>(s.count);
    out.emit(t);
  }
  [[nodiscard]] std::unique_ptr<OperatorLogic> clone() const override {
    return std::make_unique<KeyedAverage>();
  }

 private:
  struct State {
    double sum = 0.0;
    std::uint64_t count = 0;
  };
  std::unordered_map<std::int64_t, State> state_;
};

/// Forwards a tuple only the first time its (key, bucketized f[0]) pair is
/// seen: per-key duplicate suppression (output selectivity < 1).
class KeyedDistinct final : public OperatorLogic {
 public:
  explicit KeyedDistinct(double bucket_width = 0.1) : bucket_width_(bucket_width) {}
  void process(const Tuple& item, OpIndex, Collector& out) override {
    const auto bucket = static_cast<std::int64_t>(item.f[0] / bucket_width_);
    if (seen_[item.key].insert(bucket).second) out.emit(item);
  }
  [[nodiscard]] std::unique_ptr<OperatorLogic> clone() const override {
    return std::make_unique<KeyedDistinct>(bucket_width_);
  }

 private:
  double bucket_width_;
  std::unordered_map<std::int64_t, std::unordered_set<std::int64_t>> seen_;
};

}  // namespace ss::ops
