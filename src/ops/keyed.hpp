// Partitioned-stateful operators: per-key state, safely replicable by
// splitting the key domain (paper §2, §3.2).  Each replica only ever sees a
// subset of the keys, so per-replica hash maps are the state partitions.
//
// All four operators implement the elastic state-migration hooks
// (OperatorLogic::owned_keys / migrate_key): when a re-deployment changes
// the operator's replica count, the engine moves each key's map entry to
// the replica that owns the key under the new partition, so running counts,
// sums and distinct-sets survive the switch-over.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "runtime/operator.hpp"
#include "runtime/wire.hpp"

namespace ss::ops {

using runtime::Collector;
using runtime::OperatorLogic;
using runtime::Tuple;

namespace detail {

/// Keys of one per-key state map, as the migration protocol wants them.
template <typename Map>
std::vector<std::int64_t> keys_of(const Map& map) {
  std::vector<std::int64_t> keys;
  keys.reserve(map.size());
  for (const auto& entry : map) keys.push_back(entry.first);
  return keys;
}

/// Moves `key`'s entry from `from` into the same-typed map of `to` (when
/// `to` really is a `Logic`); returns false on type mismatch or absent key.
template <typename Logic, typename Map>
bool move_key(Map& from, std::int64_t key, OperatorLogic& to, Map Logic::* member) {
  auto* dest = dynamic_cast<Logic*>(&to);
  auto it = from.find(key);
  if (dest == nullptr || it == from.end()) return false;
  (dest->*member)[key] = std::move(it->second);
  from.erase(it);
  return true;
}

/// Keys in ascending order: checkpoint blobs must be byte-stable across
/// runs regardless of hash-map iteration order, so the recovery test can
/// compare golden vs. recovered state byte-for-byte.
template <typename Map>
std::vector<std::int64_t> sorted_keys(const Map& map) {
  std::vector<std::int64_t> keys = keys_of(map);
  std::sort(keys.begin(), keys.end());
  return keys;
}

}  // namespace detail

/// f[1] <- number of tuples seen for this key so far.
class KeyedCounter final : public OperatorLogic {
 public:
  void process(const Tuple& item, OpIndex, Collector& out) override {
    Tuple t = item;
    t.f[1] = static_cast<double>(++counts_[t.key]);
    out.emit(t);
  }
  [[nodiscard]] std::unique_ptr<OperatorLogic> clone() const override {
    return std::make_unique<KeyedCounter>();
  }
  [[nodiscard]] std::vector<std::int64_t> owned_keys() const override {
    return detail::keys_of(counts_);
  }
  bool migrate_key(std::int64_t key, OperatorLogic& dest) override {
    return detail::move_key<KeyedCounter>(counts_, key, dest, &KeyedCounter::counts_);
  }
  [[nodiscard]] bool save_state(std::string& out) const override {
    namespace wire = runtime::wire;
    wire::put_u64(out, counts_.size());
    for (std::int64_t key : detail::sorted_keys(counts_)) {
      wire::put_i64(out, key);
      wire::put_u64(out, counts_.at(key));
    }
    return true;
  }
  bool restore_state(const std::string& bytes) override {
    runtime::wire::Reader in(bytes);
    std::uint64_t n = 0;
    if (!in.u64(n)) return false;
    std::unordered_map<std::int64_t, std::uint64_t> fresh;
    fresh.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      std::int64_t key;
      std::uint64_t count;
      if (!in.i64(key) || !in.u64(count)) return false;
      fresh[key] = count;
    }
    if (!in.ok() || in.remaining() != 0) return false;
    counts_ = std::move(fresh);
    return true;
  }

 private:
  std::unordered_map<std::int64_t, std::uint64_t> counts_;
};

/// f[1] <- running sum of f[0] for this key.
class KeyedRunningSum final : public OperatorLogic {
 public:
  void process(const Tuple& item, OpIndex, Collector& out) override {
    Tuple t = item;
    t.f[1] = (sums_[t.key] += t.f[0]);
    out.emit(t);
  }
  [[nodiscard]] std::unique_ptr<OperatorLogic> clone() const override {
    return std::make_unique<KeyedRunningSum>();
  }
  [[nodiscard]] std::vector<std::int64_t> owned_keys() const override {
    return detail::keys_of(sums_);
  }
  bool migrate_key(std::int64_t key, OperatorLogic& dest) override {
    return detail::move_key<KeyedRunningSum>(sums_, key, dest, &KeyedRunningSum::sums_);
  }
  [[nodiscard]] bool save_state(std::string& out) const override {
    namespace wire = runtime::wire;
    wire::put_u64(out, sums_.size());
    for (std::int64_t key : detail::sorted_keys(sums_)) {
      wire::put_i64(out, key);
      wire::put_f64(out, sums_.at(key));
    }
    return true;
  }
  bool restore_state(const std::string& bytes) override {
    runtime::wire::Reader in(bytes);
    std::uint64_t n = 0;
    if (!in.u64(n)) return false;
    std::unordered_map<std::int64_t, double> fresh;
    fresh.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      std::int64_t key;
      double sum;
      if (!in.i64(key) || !in.f64(sum)) return false;
      fresh[key] = sum;
    }
    if (!in.ok() || in.remaining() != 0) return false;
    sums_ = std::move(fresh);
    return true;
  }

 private:
  std::unordered_map<std::int64_t, double> sums_;
};

/// f[1] <- running mean of f[0] for this key.
class KeyedAverage final : public OperatorLogic {
 public:
  void process(const Tuple& item, OpIndex, Collector& out) override {
    State& s = state_[item.key];
    s.sum += item.f[0];
    ++s.count;
    Tuple t = item;
    t.f[1] = s.sum / static_cast<double>(s.count);
    out.emit(t);
  }
  [[nodiscard]] std::unique_ptr<OperatorLogic> clone() const override {
    return std::make_unique<KeyedAverage>();
  }
  [[nodiscard]] std::vector<std::int64_t> owned_keys() const override {
    return detail::keys_of(state_);
  }
  bool migrate_key(std::int64_t key, OperatorLogic& dest) override {
    return detail::move_key<KeyedAverage>(state_, key, dest, &KeyedAverage::state_);
  }
  [[nodiscard]] bool save_state(std::string& out) const override {
    namespace wire = runtime::wire;
    wire::put_u64(out, state_.size());
    for (std::int64_t key : detail::sorted_keys(state_)) {
      const State& s = state_.at(key);
      wire::put_i64(out, key);
      wire::put_f64(out, s.sum);
      wire::put_u64(out, s.count);
    }
    return true;
  }
  bool restore_state(const std::string& bytes) override {
    runtime::wire::Reader in(bytes);
    std::uint64_t n = 0;
    if (!in.u64(n)) return false;
    std::unordered_map<std::int64_t, State> fresh;
    fresh.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      std::int64_t key;
      State s;
      if (!in.i64(key) || !in.f64(s.sum) || !in.u64(s.count)) return false;
      fresh[key] = s;
    }
    if (!in.ok() || in.remaining() != 0) return false;
    state_ = std::move(fresh);
    return true;
  }

 private:
  struct State {
    double sum = 0.0;
    std::uint64_t count = 0;
  };
  std::unordered_map<std::int64_t, State> state_;
};

/// Forwards a tuple only the first time its (key, bucketized f[0]) pair is
/// seen: per-key duplicate suppression (output selectivity < 1).
class KeyedDistinct final : public OperatorLogic {
 public:
  explicit KeyedDistinct(double bucket_width = 0.1) : bucket_width_(bucket_width) {}
  void process(const Tuple& item, OpIndex, Collector& out) override {
    const auto bucket = static_cast<std::int64_t>(item.f[0] / bucket_width_);
    if (seen_[item.key].insert(bucket).second) out.emit(item);
  }
  [[nodiscard]] std::unique_ptr<OperatorLogic> clone() const override {
    return std::make_unique<KeyedDistinct>(bucket_width_);
  }
  [[nodiscard]] std::vector<std::int64_t> owned_keys() const override {
    return detail::keys_of(seen_);
  }
  bool migrate_key(std::int64_t key, OperatorLogic& dest) override {
    return detail::move_key<KeyedDistinct>(seen_, key, dest, &KeyedDistinct::seen_);
  }
  [[nodiscard]] bool save_state(std::string& out) const override {
    namespace wire = runtime::wire;
    wire::put_u64(out, seen_.size());
    for (std::int64_t key : detail::sorted_keys(seen_)) {
      const auto& buckets = seen_.at(key);
      std::vector<std::int64_t> sorted(buckets.begin(), buckets.end());
      std::sort(sorted.begin(), sorted.end());
      wire::put_i64(out, key);
      wire::put_u64(out, sorted.size());
      for (std::int64_t bucket : sorted) wire::put_i64(out, bucket);
    }
    return true;
  }
  bool restore_state(const std::string& bytes) override {
    runtime::wire::Reader in(bytes);
    std::uint64_t n = 0;
    if (!in.u64(n)) return false;
    std::unordered_map<std::int64_t, std::unordered_set<std::int64_t>> fresh;
    fresh.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      std::int64_t key;
      std::uint64_t buckets = 0;
      if (!in.i64(key) || !in.u64(buckets)) return false;
      auto& set = fresh[key];
      set.reserve(buckets);
      for (std::uint64_t b = 0; b < buckets; ++b) {
        std::int64_t bucket;
        if (!in.i64(bucket)) return false;
        set.insert(bucket);
      }
    }
    if (!in.ok() || in.remaining() != 0) return false;
    seen_ = std::move(fresh);
    return true;
  }

 private:
  double bucket_width_;
  std::unordered_map<std::int64_t, std::unordered_set<std::int64_t>> seen_;
};

}  // namespace ss::ops
