#include "gen/zipf.hpp"

#include <algorithm>
#include <cmath>

#include "core/error.hpp"

namespace ss {

std::vector<double> zipf_probabilities(std::size_t n, double alpha) {
  require(n > 0, "zipf_probabilities: n must be > 0");
  require(alpha > 0.0, "zipf_probabilities: alpha must be > 0");
  std::vector<double> p(n);
  double total = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    p[k] = 1.0 / std::pow(static_cast<double>(k + 1), alpha);
    total += p[k];
  }
  for (double& v : p) v /= total;
  return p;
}

ZipfSampler::ZipfSampler(std::size_t n, double alpha)
    : probabilities_(zipf_probabilities(n, alpha)), cdf_(n) {
  double running = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    running += probabilities_[k];
    cdf_[k] = running;
  }
  cdf_.back() = 1.0;  // guard against floating-point undershoot
}

std::size_t ZipfSampler::sample(Rng& rng) const {
  const double u = rng.next_double();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) --it;
  return static_cast<std::size_t>(it - cdf_.begin());
}

std::vector<double> shuffled_zipf_probabilities(std::size_t n, double alpha, Rng& rng) {
  std::vector<double> p = zipf_probabilities(n, alpha);
  // Fisher-Yates with the repo PRNG for reproducibility.
  for (std::size_t i = n; i > 1; --i) {
    const auto j = static_cast<std::size_t>(rng.rand_int(0, static_cast<int>(i - 1)));
    std::swap(p[i - 1], p[j]);
  }
  return p;
}

}  // namespace ss
