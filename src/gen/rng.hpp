// Deterministic PRNG used everywhere randomness is needed.
//
// xoshiro256** seeded via splitmix64: fast, high quality, and — unlike
// std::mt19937 with distribution objects — bit-reproducible across standard
// library implementations, which keeps testbed topologies and simulation
// runs identical everywhere.
#pragma once

#include <array>
#include <cstdint>

namespace ss {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    // splitmix64 expansion of the seed into the four lanes.
    std::uint64_t x = seed;
    for (auto& lane : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      lane = z ^ (z >> 31);
    }
  }

  /// Raw 64 random bits (xoshiro256**).
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [lo, hi] (inclusive), the paper's randInt(a, b).
  int rand_int(int lo, int hi) {
    if (hi <= lo) return lo;
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    // Unbiased rejection sampling (Lemire-style bounded draw).
    std::uint64_t x = next_u64();
    __uint128_t m = static_cast<__uint128_t>(x) * span;
    auto low = static_cast<std::uint64_t>(m);
    if (low < span) {
      const std::uint64_t threshold = (0ULL - span) % span;
      while (low < threshold) {
        x = next_u64();
        m = static_cast<__uint128_t>(x) * span;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return lo + static_cast<int>(m >> 64);
  }

  /// Uniform double in [lo, hi).
  double rand_double(double lo, double hi) { return lo + (hi - lo) * next_double(); }

  /// True with probability p.
  bool bernoulli(double p) { return next_double() < p; }

  /// Derives an independent child generator (for per-actor streams).
  Rng split() { return Rng(next_u64() ^ 0xd1b54a32d192ed03ULL); }

  // --- state capture (checkpointing) ------------------------------------
  //
  // A checkpointed run must resume the exact random stream it would have
  // produced uninterrupted: per-key routing draws at the emitter are rng
  // driven, so exactly-once per-key accounting needs the generator state
  // itself, not just its seed.

  /// The four xoshiro256** lanes, for serialization.
  [[nodiscard]] std::array<std::uint64_t, 4> state() const {
    return {state_[0], state_[1], state_[2], state_[3]};
  }

  /// Restores lanes previously captured with state().
  void set_state(const std::array<std::uint64_t, 4>& lanes) {
    for (int i = 0; i < 4; ++i) state_[i] = lanes[static_cast<std::size_t>(i)];
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  std::uint64_t state_[4];
};

}  // namespace ss
