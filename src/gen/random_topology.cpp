#include "gen/random_topology.hpp"

#include <algorithm>
#include <cmath>
#include <set>

namespace ss {

int TopologyShape::in_degree(int v) const {
  int n = 0;
  for (const auto& [from, to] : edges) {
    (void)from;
    if (to == v) ++n;
  }
  return n;
}

int TopologyShape::out_degree(int v) const {
  int n = 0;
  for (const auto& [from, to] : edges) {
    (void)to;
    if (from == v) ++n;
  }
  return n;
}

TopologyShape random_shape(Rng& rng, int num_vertices, int num_edges) {
  const int v = num_vertices;
  require(v >= 2, "random_shape: need at least two vertices");
  require(num_edges <= v * (v - 1) / 2, "random_shape: too many edges");
  require(num_edges >= v - 1, "random_shape: too few edges");

  TopologyShape shape;
  shape.num_vertices = v;
  std::set<std::pair<int, int>> edges;

  // Phase 1: every vertex except the last gets one forward out-edge, so the
  // vertex numbering is a topological order by construction.
  for (int i = 0; i <= v - 2; ++i) {
    edges.emplace(i, rng.rand_int(i + 1, v - 1));
  }
  // Phase 2: random forward edges up to the requested count.
  while (static_cast<int>(edges.size()) < num_edges) {
    const int u = rng.rand_int(0, v - 1);
    const int w = rng.rand_int(0, v - 1);
    if (u < w) edges.emplace(u, w);
  }
  // Repair: any vertex (other than 0) left without input edges is linked
  // from the source, which may exceed num_edges slightly (paper §5.1).
  std::vector<bool> has_input(static_cast<std::size_t>(v), false);
  for (const auto& [from, to] : edges) {
    (void)from;
    has_input[static_cast<std::size_t>(to)] = true;
  }
  for (int i = 1; i < v; ++i) {
    if (!has_input[static_cast<std::size_t>(i)]) edges.emplace(0, i);
  }

  shape.edges.assign(edges.begin(), edges.end());
  return shape;
}

TopologyShape random_shape(Rng& rng, const ShapeOptions& options) {
  const int v = rng.rand_int(options.min_vertices, options.max_vertices);
  const double beta = rng.rand_double(options.beta_min, options.beta_max);
  int e = static_cast<int>(std::llround((v - 1) * beta));
  e = std::clamp(e, v - 1, v * (v - 1) / 2);
  return random_shape(rng, v, e);
}

}  // namespace ss
