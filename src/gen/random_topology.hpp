// Random topology *shapes* per the paper's Algorithm 5.
//
// Vertices are numbered 0..V-1; the numbering is a topological order of the
// generated DAG and vertex 0 is the source.  Phase 1 gives every vertex
// i < V-1 a forward edge, phase 2 adds random forward edges up to the
// requested count, and the repair phase connects any input-less vertex to
// the source (which can push the edge count slightly above E, as the paper
// notes).
#pragma once

#include <vector>

#include "core/error.hpp"
#include "gen/rng.hpp"

namespace ss {

/// A bare DAG shape: V vertices and directed edges (from < to).
struct TopologyShape {
  int num_vertices = 0;
  std::vector<std::pair<int, int>> edges;

  [[nodiscard]] int in_degree(int v) const;
  [[nodiscard]] int out_degree(int v) const;
};

/// Algorithm 5 with explicit vertex/edge counts.  Throws ss::Error when E
/// is outside [V-1, V(V-1)/2] ("too few edges"/"too many edges").
TopologyShape random_shape(Rng& rng, int num_vertices, int num_edges);

/// Paper-scale draw: V uniform in [min_vertices, max_vertices], expected
/// edges E = (V-1) * beta with the connecting factor beta uniform in
/// [beta_min, beta_max] (defaults are the paper's §5.1 choices).
struct ShapeOptions {
  int min_vertices = 2;
  int max_vertices = 20;
  double beta_min = 1.0;
  double beta_max = 1.2;
};
TopologyShape random_shape(Rng& rng, const ShapeOptions& options = {});

}  // namespace ss
