// Full testbed generation (paper §5.1): turn a random shape into an
// annotated topology by assigning real-world operators from the catalog,
// drawing profiled service times, marking state classes, generating Zipf
// key distributions for partitioned-stateful operators and Zipf routing
// probabilities for fan-outs, and pacing the source 33% faster than the
// fastest operator so every topology has bottlenecks (§5.3).
#pragma once

#include "core/topology.hpp"
#include "gen/random_topology.hpp"
#include "gen/rng.hpp"

namespace ss {

struct WorkloadOptions {
  /// Source rate = fastest operator service rate * source_speedup.
  double source_speedup = 1.33;
  /// Zipf scaling exponent range for edge probabilities (alpha > 1, random
  /// per fan-out, §5.1).
  double zipf_alpha_min = 1.05;
  double zipf_alpha_max = 2.5;
  /// Key skew of partitioned-stateful operators: milder than the edge skew
  /// (§5.3 only requires "a random ZipF law"; near-uniform domains are what
  /// lets KeyPartitioning remove bottlenecks, as the paper observes it
  /// always did in the testbed).
  double key_alpha_min = 0.05;
  double key_alpha_max = 0.5;
  /// Key-domain size range of partitioned-stateful operators.
  int keys_min = 500;
  int keys_max = 5000;
  /// Probability that a partitionable operator is nevertheless marked
  /// stateful ("to mimic cases where operators cannot be parallelized",
  /// §5.3); rare, so that most topologies fully parallelize (43/50 in the
  /// paper).
  double stateful_fraction = 0.015;
  /// Window slides drawn for windowed operators (the paper uses windows of
  /// 1000/5000/10000 tuples sliding every 1/10/50 items).
  std::vector<int> slides{1, 10, 50};
  /// When true, selectivities are forced to 1 (the base model of §3.1);
  /// when false, windowed/flatmap/filter selectivities apply (§3.4).
  bool unit_selectivity = false;
};

/// Assigns operators and annotations to `shape`.
Topology assign_workload(const TopologyShape& shape, Rng& rng, const WorkloadOptions& options = {});

/// One-call testbed topology: random shape + workload.
Topology random_topology(Rng& rng, const ShapeOptions& shape_options = {},
                         const WorkloadOptions& workload_options = {});

/// The 50-topology testbed of the paper's evaluation, derived
/// deterministically from `seed`.
std::vector<Topology> make_testbed(std::uint64_t seed, int count = 50,
                                   const ShapeOptions& shape_options = {},
                                   const WorkloadOptions& workload_options = {});

}  // namespace ss
