#include "gen/workload.hpp"

#include <algorithm>
#include <string>

#include "core/error.hpp"
#include "gen/zipf.hpp"
#include "ops/registry.hpp"

namespace ss {

namespace {

/// Picks a catalog entry legal for a vertex with the given in-degree.
const ops::CatalogEntry& pick_entry(Rng& rng, int in_degree) {
  const auto& entries = ops::catalog();
  while (true) {
    const auto& e = entries[static_cast<std::size_t>(
        rng.rand_int(0, static_cast<int>(entries.size()) - 1))];
    if (e.requires_multi_input && in_degree < 2) continue;
    return e;
  }
}

}  // namespace

Topology assign_workload(const TopologyShape& shape, Rng& rng, const WorkloadOptions& options) {
  require(shape.num_vertices >= 2, "assign_workload: shape needs at least two vertices");

  const int v = shape.num_vertices;
  std::vector<int> in_degree(static_cast<std::size_t>(v), 0);
  std::vector<int> out_degree(static_cast<std::size_t>(v), 0);
  for (const auto& [from, to] : shape.edges) {
    ++out_degree[static_cast<std::size_t>(from)];
    ++in_degree[static_cast<std::size_t>(to)];
  }

  Topology::Builder builder;
  double fastest_rate = 0.0;

  // Vertex 0 is the source; its pace is fixed after all operators are
  // drawn, so reserve a placeholder spec first.
  OperatorSpec source;
  source.name = "source";
  source.service_time = 1.0;  // placeholder, finalized below
  source.impl = "source";

  std::vector<OperatorSpec> specs;
  specs.push_back(source);

  for (int i = 1; i < v; ++i) {
    const ops::CatalogEntry& entry = pick_entry(rng, in_degree[static_cast<std::size_t>(i)]);
    OperatorSpec spec;
    spec.name = "op" + std::to_string(i) + "_" + entry.impl;
    spec.impl = entry.impl;
    spec.service_time = rng.rand_double(entry.service_min, entry.service_max);
    fastest_rate = std::max(fastest_rate, spec.service_rate());

    // State classification: windowed partitionable operators are sometimes
    // kept stateful to model non-parallelizable logic (§5.3).
    spec.state = entry.state;
    if (entry.can_be_partitioned) {
      if (entry.state == StateKind::kPartitionedStateful ||
          !rng.bernoulli(options.stateful_fraction)) {
        spec.state = StateKind::kPartitionedStateful;
      } else {
        spec.state = StateKind::kStateful;
      }
    }
    if (spec.state == StateKind::kPartitionedStateful) {
      const int keys = rng.rand_int(options.keys_min, options.keys_max);
      const double alpha = rng.rand_double(options.key_alpha_min, options.key_alpha_max);
      spec.keys = KeyDistribution::zipf(static_cast<std::size_t>(keys), alpha);
    }

    if (!options.unit_selectivity) {
      if (entry.windowed && !options.slides.empty()) {
        const int slide = options.slides[static_cast<std::size_t>(
            rng.rand_int(0, static_cast<int>(options.slides.size()) - 1))];
        spec.selectivity.input = static_cast<double>(slide);
      }
      spec.selectivity.output = rng.rand_double(entry.out_sel_min, entry.out_sel_max);
    }
    specs.push_back(std::move(spec));
  }

  // Source pace: 33% faster than the fastest operator (§5.3), so that
  // bottlenecks exist and backpressure is exercised in every topology.
  specs[0].service_time = 1.0 / (fastest_rate * options.source_speedup);

  for (OperatorSpec& spec : specs) builder.add_operator(std::move(spec));

  // Routing probabilities: single out-edges get 1, fan-outs a shuffled Zipf
  // vector with random skew (§5.1).
  std::vector<std::vector<int>> fan_out(static_cast<std::size_t>(v));
  for (const auto& [from, to] : shape.edges) {
    fan_out[static_cast<std::size_t>(from)].push_back(to);
  }
  for (int u = 0; u < v; ++u) {
    auto& targets = fan_out[static_cast<std::size_t>(u)];
    if (targets.empty()) continue;
    std::sort(targets.begin(), targets.end());
    std::vector<double> probs;
    if (targets.size() == 1) {
      probs.push_back(1.0);
    } else {
      const double alpha = rng.rand_double(options.zipf_alpha_min, options.zipf_alpha_max);
      probs = shuffled_zipf_probabilities(targets.size(), alpha, rng);
    }
    for (std::size_t k = 0; k < targets.size(); ++k) {
      builder.add_edge(static_cast<OpIndex>(u), static_cast<OpIndex>(targets[k]), probs[k]);
    }
  }

  return builder.build();
}

Topology random_topology(Rng& rng, const ShapeOptions& shape_options,
                         const WorkloadOptions& workload_options) {
  const TopologyShape shape = random_shape(rng, shape_options);
  return assign_workload(shape, rng, workload_options);
}

std::vector<Topology> make_testbed(std::uint64_t seed, int count,
                                   const ShapeOptions& shape_options,
                                   const WorkloadOptions& workload_options) {
  Rng rng(seed);
  std::vector<Topology> testbed;
  testbed.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    Rng topology_rng = rng.split();
    testbed.push_back(random_topology(topology_rng, shape_options, workload_options));
  }
  return testbed;
}

}  // namespace ss
