// Zipf (power-law) sampling and probability vectors (paper §5.1, §5.3).
//
// The testbed assigns edge probabilities and key frequencies from Zipf laws
// with a random scaling exponent alpha > 1 so distributions of different
// skewness are exercised.
#pragma once

#include <cstddef>
#include <vector>

#include "gen/rng.hpp"

namespace ss {

/// Normalized Zipf probability vector over `n` ranks: p(k) ~ 1/(k+1)^alpha.
std::vector<double> zipf_probabilities(std::size_t n, double alpha);

/// Draws one rank in [0, n) from a Zipf law (inverse-CDF on the normalized
/// vector; O(n) setup in the sampler, O(log n) per draw).
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double alpha);

  [[nodiscard]] std::size_t sample(Rng& rng) const;
  [[nodiscard]] const std::vector<double>& probabilities() const { return probabilities_; }

 private:
  std::vector<double> probabilities_;
  std::vector<double> cdf_;
};

/// Returns a shuffled Zipf probability vector: ranks are randomly permuted
/// so the heavy item is not always the first (used for edge probabilities,
/// where the heavy out-edge should be a random one).
std::vector<double> shuffled_zipf_probabilities(std::size_t n, double alpha, Rng& rng);

}  // namespace ss
