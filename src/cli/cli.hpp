// The SpinStreams command-line tool (the headless equivalent of the paper's
// GUI workflow, Fig. 5): import an XML topology, inspect and optimize it,
// simulate or execute it, and generate code.
//
// Commands (see usage() or run `spinstreams help`):
//   validate    check a description against the §3.1 constraints
//   analyze     steady-state analysis (Alg. 1), optional latency estimates
//   optimize    bottleneck elimination (Alg. 2), optional replica budget
//   candidates  ranked fusion suggestions (§4.1)
//   fuse        evaluate/apply a fusion (Alg. 3; --multi for Fig. 2 groups)
//   simulate    run the DES and compare against the model
//   run         execute on the actor runtime (real operator impls)
//   codegen     emit a C++ program for the optimized deployment
//   generate    produce a random testbed topology (Alg. 5) as XML
#pragma once

#include <iosfwd>

namespace ss::cli {

/// Entry point used by tools/spinstreams.cpp and by the tests.  Writes
/// human output to `out` and diagnostics to `err`; returns a process exit
/// code (0 success, 1 user error, 2 usage).
int run_cli(int argc, const char* const* argv, std::ostream& out, std::ostream& err);

/// The usage text.
const char* usage();

}  // namespace ss::cli
