#include "cli/cli.hpp"

#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>

#include "core/bottleneck.hpp"
#include "core/codegen.hpp"
#include "core/error.hpp"
#include "core/fusion.hpp"
#include "core/latency.hpp"
#include "core/optimizer.hpp"
#include "core/profile.hpp"
#include "core/validate.hpp"
#include "gen/workload.hpp"
#include "harness/args.hpp"
#include "harness/experiment.hpp"
#include "harness/profiler.hpp"
#include "harness/table.hpp"
#include "core/joint.hpp"
#include "ops/registry.hpp"
#include "runtime/engine.hpp"
#include "runtime/tenants.hpp"
#include "runtime/trace.hpp"
#include "sim/des.hpp"
#include "xmlio/topology_xml.hpp"

namespace ss::cli {

namespace {

using harness::Args;
using harness::Table;

constexpr const char* kUsage = R"(spinstreams — static optimization tool for stream processing topologies

usage: spinstreams <command> <topology.xml> [flags]

commands:
  validate <file>                    check the description (all issues listed)
  analyze <file> [--latency]         steady-state analysis (Alg. 1)
  optimize <file> [--max-replicas=N] [--save-xml=OUT]
                                     bottleneck elimination (Alg. 2)
  auto <file> [--max-replicas=N] [--no-fusion] [--out=FILE]
              [--slo-p99=MS] [--objective=throughput|latency|balanced]
                                     fission + every safe fusion, optional codegen;
                                     --slo-p99 constrains the predicted end-to-end
                                     p99 (extra fission, fusion latency gate),
                                     --objective trades throughput vs tail latency
  candidates <file> [--threshold=R]  fusion suggestions ranked by utilization
  fuse <file> --members=a,b,c [--multi] [--name=F]
                                     evaluate a fusion (Alg. 3 / Fig. 2 ext.)
  simulate <file> [--duration=S] [--optimize] [--shedding] [--engine=sim|threads|pool]
                  [--slo-p99=MS] [--objective=NAME]
                                     discrete-event simulation vs the model
                                     (tables print predicted next to measured)
  run <file> [--seconds=S] [--optimize] [--engine=threads|pool] [--workers=K]
             [--batch=N] [--mailbox=mutex|ring] [--pin=none|cores|sockets]
             [--elastic] [--reconfig-period=S] [--reconfig-threshold=R]
             [--slo-p99=MS] [--objective=NAME] [--items=N]
             [--checkpoint-dir=D] [--checkpoint-period=S] [--recover]
             [--trace=FILE] [--metrics-out=FILE] [--metrics-period=S]
             [--stats-port=N] [--profile=on|off]
                                     execute on the actor runtime (threads =
                                     one thread per actor, pool = K work-
                                     stealing workers draining N msgs/claim);
                                     --mailbox picks the inbox engine (ring =
                                     lock-free MPSC fast path, the default;
                                     mutex = the two-queue baseline), --pin
                                     maps pool workers onto CPUs (cores =
                                     round-robin, sockets = spread across
                                     packages; warns and continues unpinned
                                     where CPU affinity is unavailable);
                                     --elastic runs the online controller that
                                     re-optimizes the live topology from
                                     measured rates without losing tuples
                                     (with --slo-p99 it also re-deploys on
                                     measured SLO breach);
                                     --items bounds every source to N items and
                                     runs to completion (--seconds caps it);
                                     --checkpoint-dir snapshots the quiesced
                                     graph every --checkpoint-period seconds
                                     (epoch checkpointing), --recover restores
                                     the newest valid checkpoint and rewinds
                                     the sources so the resumed run produces
                                     the exact uninterrupted stream;
                                     --trace writes a Chrome trace-event JSON
                                     (open in Perfetto), --metrics-out appends
                                     one JSON metrics snapshot per line every
                                     --metrics-period seconds;
                                     --stats-port serves live stats on
                                     127.0.0.1:N for the duration of the run
                                     (/ or /stats.json = JSON snapshot,
                                     /metrics = Prometheus text);
                                     --profile=off disables the online
                                     sub-saturation profiler (service-rate
                                     estimation + backpressure attribution;
                                     on by default)
  run --app A.xml --app B.xml [--workers=K] [--batch=N] [--seconds=S]
      [--mailbox=mutex|ring] [--pin=none|cores|sockets]
      [--optimize] [--budget=N] [--weights=1,2,...] [--elastic]
      [--reconfig-period=S] [--reconfig-threshold=R] [--slo-p99=MS]
      [--objective=NAME] [--metrics-out=FILE] [--checkpoint-dir=D]
      [--checkpoint-period=S] [--recover] [--profile=on|off]
                                     multi-tenant: every --app topology runs as
                                     a tenant of one shared worker pool;
                                     --optimize splits the --budget global
                                     replica budget across tenants jointly
                                     (water-filling by weighted marginal gain,
                                     SLO-breached tenants first), --elastic
                                     keeps re-balancing the live tenants from
                                     measured rates, --weights sets the CPU
                                     share per tenant, --metrics-out writes one
                                     JSONL file per tenant (FILE.<tenant>)
  codegen <file> [--max-replicas=N] [--out=FILE] [--run-seconds=S]
                                     generate a C++ program for the deployment
  whatif <file> --set op=ms[,op=ms...] [--replicas=op=n,...]
                                     re-run the analysis under hypothetical
                                     service times / replica counts
  profile <file> [--items=N] [--save-xml=OUT]
                                     measure the real operator implementations
                                     and re-annotate the description (§4.1)
  generate [--seed=S] [--out=FILE]   random testbed topology (Alg. 5) as XML
  help                               this text
)";

Topology load(const Args& args) {
  require(!args.positional().empty(), "expected a topology XML file argument");
  return xml::load_topology_file(args.positional().front());
}

/// "--slo-p99=MS" -> seconds; 0 when absent; rejects non-positive values.
double parse_slo_flag(const Args& args) {
  if (!args.has("slo-p99")) return 0.0;
  const double ms = args.get_double("slo-p99", 0.0);
  require(ms > 0.0, "--slo-p99 must be positive (milliseconds)");
  return ms * 1e-3;
}

/// "--objective=NAME" -> Objective; rejects unknown names.
Objective parse_objective_flag(const Args& args) {
  const std::string name = args.get("objective", "throughput");
  const auto objective = parse_objective(name);
  require(objective.has_value(),
          "--objective must be 'throughput', 'latency' or 'balanced', got '" + name + "'");
  return *objective;
}

/// Resolves "--members=a,b,c" (names or indices) against the topology.
FusionSpec parse_members(const Topology& t, const Args& args) {
  const std::string csv = args.get("members");
  require(!csv.empty(), "fuse: --members=a,b,c is required");
  FusionSpec spec;
  std::istringstream in(csv);
  std::string token;
  while (std::getline(in, token, ',')) {
    if (auto index = t.find(token)) {
      spec.members.push_back(*index);
    } else {
      try {
        spec.members.push_back(static_cast<OpIndex>(std::stoul(token)));
      } catch (const std::exception&) {
        throw Error("fuse: unknown operator '" + token + "'");
      }
    }
  }
  spec.fused_name = args.get("name", "");
  return spec;
}

int cmd_validate(const Args& args, std::ostream& out) {
  // Load through the DOM (not load_topology) so *all* issues are reported.
  std::ifstream in(args.positional().front());
  require(in.good(), "cannot open '" + args.positional().front() + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const Topology t = xml::load_topology(buffer.str());  // throws on hard errors
  const ValidationReport report = validate_draft(t.operators(), t.edges());
  out << (report.issues.empty() ? "OK: the description satisfies all constraints\n"
                                : report.to_string());
  return report.ok() ? 0 : 1;
}

int cmd_analyze(const Args& args, std::ostream& out) {
  const Topology t = load(args);
  const SteadyStateResult rates = steady_state(t);
  out << format_analysis(t, rates);
  if (args.has("latency")) {
    const LatencyEstimate latency = estimate_latency(t, rates);
    Table table({"operator", "response (ms)", "p99 (ms)", "window delay (ms)",
                 "to sink (ms)"});
    for (OpIndex i = 0; i < t.num_operators(); ++i) {
      table.add_row({t.op(i).name, Table::num(latency.response[i] * 1e3),
                     Table::num(latency.response_percentiles(i).p99 * 1e3),
                     Table::num(latency.window_delay[i] * 1e3),
                     Table::num(latency.to_sink[i] * 1e3)});
    }
    table.print(out);
    out << "estimated end-to-end latency: " << Table::num(latency.end_to_end * 1e3)
        << " ms (tuple sojourn p50 " << Table::num(latency.sojourn.p50 * 1e3) << " / p95 "
        << Table::num(latency.sojourn.p95 * 1e3) << " / p99 "
        << Table::num(latency.sojourn.p99 * 1e3) << " ms)\n";
  }
  return 0;
}

int cmd_optimize(const Args& args, std::ostream& out) {
  const Topology t = load(args);
  BottleneckOptions options;
  if (args.has("max-replicas")) {
    options.max_total_replicas = static_cast<int>(args.get_int("max-replicas", 0));
  }
  const BottleneckResult result = eliminate_bottlenecks(t, options);
  const LatencyEstimate latency = estimate_latency(t, result.analysis, result.plan);
  out << format_analysis(t, result.analysis, result.plan, &latency);
  out << "total replicas: " << result.total_replicas << " (+" << result.additional_replicas
      << "), " << (result.reaches_ideal ? "reaches the ideal throughput" : "still limited by: ");
  for (OpIndex op : result.unresolved) out << "'" << t.op(op).name << "' ";
  out << '\n';
  const std::string save = args.get("save-xml", "");
  if (!save.empty()) {
    xml::save_topology_file(t, save, "optimized");
    out << "description written to " << save << '\n';
  }
  return 0;
}

int cmd_auto(const Args& args, std::ostream& out) {
  const Topology t = load(args);
  AutoOptimizeOptions options;
  if (args.has("max-replicas")) {
    options.bottleneck.max_total_replicas = static_cast<int>(args.get_int("max-replicas", 0));
  }
  options.enable_fusion = !args.has("no-fusion");
  options.slo_p99 = parse_slo_flag(args);
  options.objective = parse_objective_flag(args);
  const AutoOptimizeResult result = auto_optimize(t, options);

  out << format_analysis(t, result.analysis, result.plan, &result.latency);
  out << "replicas added: " << result.additional_replicas
      << (result.reaches_ideal ? " (reaches the ideal throughput)" : " (still limited)")
      << "\n";
  if (result.overshoot_replicas > 0) {
    out << "latency overshoot: " << result.overshoot_replicas
        << " replica(s) beyond ceil(rho) to chase the tail\n";
  }
  if (result.fusions_rejected_by_latency > 0) {
    out << "fusions vetoed by the latency gate: " << result.fusions_rejected_by_latency
        << "\n";
  }
  if (options.slo_p99 > 0.0) {
    out << "slo: p99 " << Table::num(result.predicted_p99 * 1e3) << " ms vs "
        << Table::num(options.slo_p99 * 1e3) << " ms -> "
        << (result.slo_feasible ? "met" : "INFEASIBLE (best effort deployed)") << "\n";
  }
  if (result.fusions.empty()) {
    out << "no safe fusion found\n";
  } else {
    out << "fusions applied (" << result.actors_saved_by_fusion << " actors saved):\n";
    for (const FusionSpec& fusion : result.fusions) {
      out << "  {";
      for (std::size_t i = 0; i < fusion.members.size(); ++i) {
        out << (i ? ", " : "") << t.op(fusion.members[i]).name;
      }
      out << "}\n";
    }
  }
  const std::string path = args.get("out", "");
  if (!path.empty()) {
    CodegenOptions codegen;
    codegen.app_name = args.positional().front();
    std::ofstream file(path);
    require(file.good(), "cannot write '" + path + "'");
    file << generate_runtime_source(t, result.plan, result.fusions, codegen);
    out << "generated program written to " << path << "\n";
  }
  return 0;
}

int cmd_candidates(const Args& args, std::ostream& out) {
  const Topology t = load(args);
  FusionSuggestOptions options;
  options.utilization_threshold = args.get_double("threshold", 0.5);
  const auto candidates = suggest_fusion_candidates(t, steady_state(t), options);
  if (candidates.empty()) {
    out << "no fusion candidates below utilization " << options.utilization_threshold << '\n';
    return 0;
  }
  Table table({"members", "mean rho", "fused service (ms)"});
  for (const FusionCandidate& candidate : candidates) {
    std::string members;
    for (OpIndex m : candidate.spec.members) {
      if (!members.empty()) members += ',';
      members += t.op(m).name;
    }
    table.add_row({members, Table::num(candidate.mean_utilization),
                   Table::num(candidate.service_time * 1e3)});
  }
  table.print(out);
  return 0;
}

int cmd_fuse(const Args& args, std::ostream& out) {
  const Topology t = load(args);
  const FusionSpec spec = parse_members(t, args);
  const FusionResult result =
      args.has("multi") ? apply_fusion_multi(t, spec) : apply_fusion(t, spec);
  out << "fused service time: " << Table::num(result.service_time * 1e3) << " ms\n"
      << "throughput: " << Table::num(result.throughput_before, 1) << " -> "
      << Table::num(result.throughput_after, 1) << " tuples/s\n";
  if (result.introduces_bottleneck) {
    out << "ALERT: this fusion introduces a bottleneck (performance impaired)\n";
  } else {
    out << "the fusion is feasible (no new bottleneck)\n";
  }
  out << format_analysis(result.topology, result.analysis);
  return result.introduces_bottleneck ? 1 : 0;
}

/// The one execution path behind `run` and `simulate`: same topology
/// loading and --optimize deployment, then a backend switch.  `run`
/// defaults to the real runtime (threads), `simulate` to the DES; either
/// can be redirected with --engine=sim|threads|pool.
int cmd_execute(const Args& args, std::ostream& out, harness::ExecutionBackend backend) {
  const Topology t = load(args);
  const double slo_p99 = parse_slo_flag(args);
  const Objective objective = parse_objective_flag(args);
  runtime::Deployment deployment;
  if (args.has("optimize")) {
    if (slo_p99 > 0.0 || args.has("objective")) {
      // Latency-aware pipeline: the SLO/objective shapes the plan (fission
      // overshoot, fusion latency gate) instead of pure ceil(rho).
      AutoOptimizeOptions options;
      options.enable_fusion = false;  // run/simulate deploy plain replication
      options.slo_p99 = slo_p99;
      options.objective = objective;
      const AutoOptimizeResult result = auto_optimize(t, options);
      deployment.replication = result.plan;
      deployment.partitions = result.partitions;
      if (slo_p99 > 0.0 && !result.slo_feasible) {
        out << "warning: predicted p99 " << Table::num(result.predicted_p99 * 1e3)
            << " ms misses the " << Table::num(slo_p99 * 1e3)
            << " ms SLO (best effort deployed)\n";
      }
    } else {
      const BottleneckResult result = eliminate_bottlenecks(t);
      deployment.replication = result.plan;
      deployment.partitions = result.partitions;
    }
  }
  if (args.has("engine")) backend = harness::engine_from_string(args.get("engine"));

  if (backend == harness::ExecutionBackend::kSim) {
    require(!args.has("elastic"),
            "--elastic needs a live runtime: use --engine=threads or --engine=pool");
    require(!args.has("trace") && !args.has("metrics-out"),
            "--trace/--metrics-out need a live runtime: use --engine=threads or "
            "--engine=pool");
    require(!args.has("checkpoint-dir") && !args.has("checkpoint-period") &&
                !args.has("recover") && !args.has("items"),
            "--checkpoint-dir/--checkpoint-period/--recover/--items need a live "
            "runtime: use --engine=threads or --engine=pool");
    require(!args.has("pin") && !args.has("mailbox"),
            "--pin/--mailbox configure the live runtime: use --engine=threads or "
            "--engine=pool");
    require(!args.has("stats-port") && !args.has("profile"),
            "--stats-port/--profile need a live runtime: use --engine=threads or "
            "--engine=pool");
    sim::SimOptions options;
    options.duration = args.get_double("duration", 120.0);
    require(options.duration > 0.0, "--duration must be positive (seconds)");
    options.shedding = args.has("shedding");
    options.replication = deployment.replication;
    options.partitions = deployment.partitions;
    const sim::SimResult result = sim::simulate(t, options);
    const SteadyStateResult rates = steady_state(t, deployment.replication);
    const double predicted = rates.throughput();
    const LatencyEstimate est =
        estimate_latency(t, rates, deployment.replication, options.buffer_capacity);

    Table table({"operator", "arrival/s", "departure/s", "busy", "blocked", "q_hi",
                 "sojourn (ms)", "pred (ms)", "p50 ms", "p95 ms", "p99 ms", "pred p99",
                 "shed"});
    for (OpIndex i = 0; i < t.num_operators(); ++i) {
      const auto& lat = result.ops[i].latency;
      table.add_row({t.op(i).name, Table::num(result.ops[i].arrival_rate, 1),
                     Table::num(result.ops[i].departure_rate, 1),
                     Table::percent(result.ops[i].busy_fraction, 0),
                     Table::percent(result.ops[i].blocked_fraction, 0),
                     std::to_string(result.ops[i].queue_peak),
                     Table::num(result.ops[i].mean_sojourn * 1e3),
                     Table::num(est.response[i] * 1e3),
                     lat.count > 0 ? Table::num(lat.p50 * 1e3) : "-",
                     lat.count > 0 ? Table::num(lat.p95 * 1e3) : "-",
                     lat.count > 0 ? Table::num(lat.p99 * 1e3) : "-",
                     Table::num(est.response_percentiles(i).p99 * 1e3),
                     std::to_string(result.ops[i].shed)});
    }
    table.print(out);
    out << "simulated throughput: " << Table::num(result.throughput, 1)
        << " tuples/s, model predicts " << Table::num(predicted, 1) << " (error "
        << Table::percent(harness::relative_error(predicted, result.throughput)) << ")\n";
    if (result.end_to_end.count > 0) {
      out << "simulated end-to-end latency: p50 " << Table::num(result.end_to_end.p50 * 1e3)
          << " ms / p95 " << Table::num(result.end_to_end.p95 * 1e3) << " ms / p99 "
          << Table::num(result.end_to_end.p99 * 1e3) << " ms ("
          << result.end_to_end.count << " samples, virtual time)\n";
    }
    out << "predicted end-to-end latency: p50 " << Table::num(est.sojourn.p50 * 1e3)
        << " ms / p95 " << Table::num(est.sojourn.p95 * 1e3) << " ms / p99 "
        << Table::num(est.sojourn.p99 * 1e3) << " ms (mean "
        << Table::num(est.sojourn_mean * 1e3) << " ms)\n";
    if (slo_p99 > 0.0 && result.end_to_end.count > 0) {
      out << "slo: measured p99 " << Table::num(result.end_to_end.p99 * 1e3) << " ms vs "
          << Table::num(slo_p99 * 1e3) << " ms -> "
          << (result.end_to_end.p99 <= slo_p99 ? "met" : "MISSED") << "\n";
    }
    return 0;
  }

  runtime::EngineConfig config;
  require(!args.has("workers") || args.get_int("workers", 0) > 0,
          "--workers must be a positive integer");
  require(!args.has("batch") || args.get_int("batch", 0) > 0,
          "--batch must be a positive integer");
  if (backend == harness::ExecutionBackend::kPool) {
    config.scheduler = runtime::SchedulerKind::kPooled;
    config.workers = static_cast<int>(args.get_int("workers", 0));
    config.pool_batch = static_cast<int>(args.get_int("batch", 0));
  }
  if (args.has("mailbox")) {
    const std::string kind = args.get("mailbox");
    require(kind == "mutex" || kind == "ring",
            "unknown mailbox kind '" + kind + "' (expected 'mutex' or 'ring')");
    config.mailbox = runtime::mailbox_kind_from_string(kind);
  }
  if (args.has("pin")) {
    // Pinning maps *pool workers* onto CPUs; the thread-per-actor engine
    // has no worker set to map (one thread per actor, placement is the
    // OS's call).  pin_mode_from_string rejects unknown values, and a
    // kernel without sched_setaffinity degrades to a one-time warning at
    // run time rather than an error here.
    require(backend == harness::ExecutionBackend::kPool,
            "--pin maps pool workers onto CPUs: use --engine=pool");
    config.pin = runtime::pin_mode_from_string(args.get("pin"));
  }
  config.elastic = args.has("elastic");
  config.slo_p99 = slo_p99;
  config.objective = objective;
  config.reconfig_period = args.get_double("reconfig-period", config.reconfig_period);
  require(config.reconfig_period > 0.0, "--reconfig-period must be positive (seconds)");
  config.reconfig_threshold =
      args.get_double("reconfig-threshold", config.reconfig_threshold);
  require(config.reconfig_threshold >= 0.0, "--reconfig-threshold must be >= 0");
  const double seconds = args.get_double("seconds", 5.0);
  require(seconds > 0.0, "--seconds must be positive");
  config.metrics_path = args.get("metrics-out", "");
  config.metrics_period = args.get_double("metrics-period", config.metrics_period);
  require(config.metrics_period > 0.0, "--metrics-period must be positive (seconds)");
  // Live stats endpoint + online profiler toggle.  The port range check
  // repeats in the StatsServer constructor (which also fails early when the
  // port is taken); rejecting malformed values here keeps the error message
  // a flag error, not a socket error.
  config.stats_port = static_cast<int>(args.get_int("stats-port", 0));
  require(!args.has("stats-port") || (config.stats_port > 0 && config.stats_port <= 65535),
          "--stats-port must be a port number (1-65535)");
  if (args.has("profile")) {
    const std::string mode = args.get("profile");
    require(mode == "on" || mode == "off",
            "--profile must be 'on' or 'off', got '" + mode + "'");
    config.profile = mode == "on";
  }
  const std::string trace_path = args.get("trace", "");
  if (!trace_path.empty()) {
    // Probe writability now: fail with a usable error before the run, not
    // after `seconds` of execution when the trace flushes.
    std::ofstream probe(trace_path, std::ios::trunc);
    require(probe.good(), "cannot write trace file: " + trace_path);
  }
  // --items=N bounds every source and runs to completion: the deterministic
  // finite mode the recovery tests compare byte-for-byte.
  const auto items = static_cast<std::int64_t>(args.get_int("items", -1));
  require(!args.has("items") || items > 0, "--items must be a positive integer");
  // Epoch checkpointing flags (runtime/checkpoint.hpp).
  config.checkpoint_dir = args.get("checkpoint-dir", "");
  require(!args.has("checkpoint-period") || !config.checkpoint_dir.empty(),
          "--checkpoint-period requires --checkpoint-dir");
  config.checkpoint_period =
      args.get_double("checkpoint-period", config.checkpoint_period);
  require(config.checkpoint_period > 0.0,
          "--checkpoint-period must be positive (seconds)");
  require(!args.has("recover") || !config.checkpoint_dir.empty(),
          "--recover requires --checkpoint-dir");
  if (args.has("recover")) {
    // The manager validates the directory and scans for the newest valid
    // checkpoint, skipping torn/corrupt files.  An empty (or all-corrupt)
    // directory is a fresh start, not an error: a crash before the first
    // snapshot must still be restartable with the same command line.
    runtime::CheckpointManager manager(config.checkpoint_dir);
    auto cp = std::make_shared<runtime::Checkpoint>();
    if (manager.load_latest(*cp)) {
      out << "recover: restoring checkpoint " << cp->sequence << " (epoch " << cp->epoch
          << ") from " << config.checkpoint_dir << "\n";
      config.recover_from = std::move(cp);
    } else {
      out << "recover: no valid checkpoint in " << config.checkpoint_dir
          << ", starting fresh\n";
    }
  }
  // The engine validates --metrics-out the same way (the exporter opens
  // the file before any actor thread starts).
  runtime::Engine engine(t, deployment, ops::make_logic_factory(t, items), config);
  const bool tracing =
      !trace_path.empty() && runtime::trace::Tracer::instance().start();
  runtime::RunStats stats;
  try {
    if (items > 0) {
      // Finite run: --seconds caps the wait for natural completion.
      const double cap = args.has("seconds") ? seconds : 300.0;
      stats = engine.run_until_complete(std::chrono::duration<double>(cap));
    } else {
      stats = engine.run_for(std::chrono::duration<double>(seconds));
    }
  } catch (...) {
    // Disarm so a failed run never leaves the process-global tracer armed.
    if (tracing) {
      try {
        runtime::trace::Tracer::instance().stop_and_flush(trace_path);
      } catch (...) {
      }
    }
    throw;
  }
  out << runtime::format_stats(t, stats);
  if (slo_p99 > 0.0 && stats.end_to_end.count > 0) {
    out << "slo: measured p99 " << Table::num(stats.end_to_end.p99 * 1e3) << " ms vs "
        << Table::num(slo_p99 * 1e3) << " ms -> "
        << (stats.end_to_end.p99 <= slo_p99 ? "met" : "MISSED") << "\n";
  }
  if (tracing) {
    const std::size_t events = runtime::trace::Tracer::instance().stop_and_flush(trace_path);
    out << "trace: " << events << " events written to " << trace_path;
    if (runtime::trace::Tracer::instance().dropped() > 0) {
      out << " (" << runtime::trace::Tracer::instance().dropped()
          << " dropped to ring wrap-around)";
    }
    out << '\n';
  }
  if (!config.metrics_path.empty()) {
    out << "metrics: JSONL snapshots written to " << config.metrics_path << '\n';
  }
  if (config.stats_port > 0) {
    out << "stats: served http://127.0.0.1:" << config.stats_port
        << "/ (JSON) and /metrics (Prometheus) during the run\n";
  }
  if (engine.controller() != nullptr) {
    out << "controller decisions:\n";
    for (const auto& d : engine.controller()->decisions()) {
      out << "  t=" << Table::num(d.at_seconds) << "s measured "
          << Table::num(d.measured_throughput, 1) << " tuples/s: " << d.reason;
      if (d.ops_estimated > 0) {
        out << " [" << d.ops_estimated << " op(s) from profiler estimates]";
      }
      out << '\n';
    }
  }
  return 0;
}

int cmd_simulate(const Args& args, std::ostream& out) {
  return cmd_execute(args, out, harness::ExecutionBackend::kSim);
}

/// `run --app a.xml --app b.xml`: every topology becomes a tenant of one
/// shared SchedulerHost; --optimize splits the global --budget jointly and
/// --elastic keeps re-balancing the live tenants from measured rates.
int cmd_run_multi(const Args& args, std::ostream& out) {
  const std::vector<std::string> paths = args.get_all("app");
  const double slo_p99 = parse_slo_flag(args);
  const Objective objective = parse_objective_flag(args);
  const double seconds = args.get_double("seconds", 5.0);
  require(seconds > 0.0, "--seconds must be positive");
  require(!args.has("workers") || args.get_int("workers", 0) > 0,
          "--workers must be a positive integer");
  require(!args.has("batch") || args.get_int("batch", 0) > 0,
          "--batch must be a positive integer");
  require(!args.has("budget") || args.get_int("budget", 0) > 0,
          "--budget must be a positive integer (global replica budget)");
  const int budget = static_cast<int>(args.get_int("budget", 0));
  // One port cannot serve N engines; metrics JSONL is the multi-tenant
  // observability path (one file per tenant).
  require(!args.has("stats-port"),
          "--stats-port serves a single engine: run one app per process to "
          "expose live stats");
  bool profile_on = true;
  if (args.has("profile")) {
    const std::string mode = args.get("profile");
    require(mode == "on" || mode == "off",
            "--profile must be 'on' or 'off', got '" + mode + "'");
    profile_on = mode == "on";
  }

  std::vector<double> weights(paths.size(), 1.0);
  if (args.has("weights")) {
    std::istringstream in(args.get("weights"));
    std::string token;
    std::size_t i = 0;
    while (std::getline(in, token, ',')) {
      require(i < paths.size(), "--weights: more weights than --app topologies");
      weights[i] = std::stod(token);
      require(weights[i] > 0.0, "--weights: weights must be positive");
      ++i;
    }
    require(i == paths.size(), "--weights: expected one weight per --app topology");
  }

  // Load every tenant; names derive from the file stem (de-duplicated by
  // index) and tag that tenant's stats, metrics lines and trace events.
  std::vector<Topology> topologies;
  std::vector<std::string> names;
  topologies.reserve(paths.size());
  for (std::size_t i = 0; i < paths.size(); ++i) {
    topologies.push_back(xml::load_topology_file(paths[i]));
    std::string stem = paths[i];
    if (const auto slash = stem.find_last_of('/'); slash != std::string::npos) {
      stem.erase(0, slash + 1);
    }
    if (const auto dot = stem.rfind('.'); dot != std::string::npos) stem.erase(dot);
    for (const std::string& taken : names) {
      if (taken == stem) {
        stem += "-" + std::to_string(i);
        break;
      }
    }
    names.push_back(std::move(stem));
  }

  std::vector<AutoOptimizeOptions> optimize(paths.size());
  for (std::size_t i = 0; i < paths.size(); ++i) {
    optimize[i].enable_fusion = false;  // run deploys plain replication
    optimize[i].slo_p99 = slo_p99;
    optimize[i].objective = objective;
  }

  std::vector<runtime::Deployment> deployments(paths.size());
  if (args.has("optimize")) {
    std::vector<TenantWorkload> workloads(paths.size());
    for (std::size_t i = 0; i < paths.size(); ++i) {
      workloads[i].topology = topologies[i];
      workloads[i].options = optimize[i];
      workloads[i].weight = weights[i];
      workloads[i].name = names[i];
    }
    JointOptions joint_options;
    joint_options.replica_budget = budget;
    const JointResult joint = optimize_joint(workloads, joint_options);
    Table table({"tenant", "weight", "desired", "granted", "pred tuples/s", "pred p99 ms"});
    for (std::size_t i = 0; i < paths.size(); ++i) {
      deployments[i] = joint.tenants[i].deployment;
      table.add_row({names[i], Table::num(weights[i], 1),
                     std::to_string(joint.tenants[i].desired_replicas),
                     std::to_string(joint.tenants[i].granted_replicas),
                     Table::num(joint.tenants[i].predicted_throughput, 1),
                     Table::num(joint.tenants[i].predicted_p99 * 1e3)});
    }
    out << "joint allocation (" << joint.total_granted << "/" << joint.total_desired
        << " replicas granted" << (joint.budget_binding ? ", budget binding" : "")
        << "):\n";
    table.print(out);
  }

  const std::string metrics_path = args.get("metrics-out", "");
  // Epoch checkpointing: one subdirectory per tenant under --checkpoint-dir
  // so tenants sharing one host never clobber each other's snapshots.
  const std::string checkpoint_dir = args.get("checkpoint-dir", "");
  require(!args.has("checkpoint-period") || !checkpoint_dir.empty(),
          "--checkpoint-period requires --checkpoint-dir");
  const double checkpoint_period = args.get_double("checkpoint-period", 1.0);
  require(checkpoint_period > 0.0, "--checkpoint-period must be positive (seconds)");
  require(!args.has("recover") || !checkpoint_dir.empty(),
          "--recover requires --checkpoint-dir");
  runtime::PinMode pin = runtime::PinMode::kNone;
  if (args.has("pin")) pin = runtime::pin_mode_from_string(args.get("pin"));
  runtime::MailboxKind mailbox = runtime::MailboxKind::kRing;
  if (args.has("mailbox")) {
    const std::string kind = args.get("mailbox");
    require(kind == "mutex" || kind == "ring",
            "unknown mailbox kind '" + kind + "' (expected 'mutex' or 'ring')");
    mailbox = runtime::mailbox_kind_from_string(kind);
  }
  runtime::TenantGroup group(static_cast<int>(args.get_int("workers", 0)),
                             static_cast<int>(args.get_int("batch", 0)), pin);
  for (std::size_t i = 0; i < paths.size(); ++i) {
    runtime::TenantSpec spec;
    spec.name = names[i];
    spec.topology = topologies[i];
    spec.deployment = deployments[i];
    spec.factory = ops::make_logic_factory(topologies[i]);
    spec.weight = weights[i];
    spec.optimize = optimize[i];
    spec.config.mailbox = mailbox;
    spec.config.profile = profile_on;
    spec.max_duration = std::chrono::duration<double>(seconds);
    if (!metrics_path.empty()) {
      spec.config.metrics_path = metrics_path + "." + names[i];
      spec.config.metrics_period =
          args.get_double("metrics-period", spec.config.metrics_period);
      require(spec.config.metrics_period > 0.0,
              "--metrics-period must be positive (seconds)");
    }
    if (!checkpoint_dir.empty()) {
      spec.config.checkpoint_dir = checkpoint_dir + "/" + names[i];
      spec.config.checkpoint_period = checkpoint_period;
      if (args.has("recover")) {
        runtime::CheckpointManager manager(spec.config.checkpoint_dir);
        auto cp = std::make_shared<runtime::Checkpoint>();
        if (manager.load_latest(*cp)) {
          out << "recover: tenant " << names[i] << " restoring checkpoint "
              << cp->sequence << " (epoch " << cp->epoch << ")\n";
          spec.config.recover_from = std::move(cp);
        } else {
          out << "recover: tenant " << names[i] << " has no valid checkpoint, "
              << "starting fresh\n";
        }
      }
    }
    group.submit(std::move(spec));
  }
  if (args.has("elastic")) {
    runtime::JointControllerOptions controller;
    controller.period = args.get_double("reconfig-period", controller.period);
    require(controller.period > 0.0, "--reconfig-period must be positive (seconds)");
    controller.threshold = args.get_double("reconfig-threshold", controller.threshold);
    require(controller.threshold >= 0.0, "--reconfig-threshold must be >= 0");
    controller.replica_budget = budget;
    group.start_controller(controller);
  }
  const std::vector<runtime::RunStats> stats = group.wait_all();

  for (std::size_t i = 0; i < paths.size(); ++i) {
    out << "== tenant " << names[i] << " ==\n"
        << runtime::format_stats(topologies[i], stats[i]);
    if (slo_p99 > 0.0 && stats[i].end_to_end.count > 0) {
      out << "slo: measured p99 " << Table::num(stats[i].end_to_end.p99 * 1e3)
          << " ms vs " << Table::num(slo_p99 * 1e3) << " ms -> "
          << (stats[i].end_to_end.p99 <= slo_p99 ? "met" : "MISSED") << "\n";
    }
  }
  if (!metrics_path.empty()) {
    out << "metrics: one JSONL file per tenant at " << metrics_path << ".<tenant>\n";
  }
  if (group.controller() != nullptr) {
    out << "joint controller decisions:\n";
    for (const auto& d : group.controller()->decisions()) {
      out << "  t=" << Table::num(d.at_seconds) << "s: " << d.reason << '\n';
    }
  }
  return 0;
}

int cmd_run(const Args& args, std::ostream& out) {
  if (args.has("app")) return cmd_run_multi(args, out);
  return cmd_execute(args, out, harness::ExecutionBackend::kThreads);
}

int cmd_codegen(const Args& args, std::ostream& out) {
  const Topology t = load(args);
  BottleneckOptions options;
  if (args.has("max-replicas")) {
    options.max_total_replicas = static_cast<int>(args.get_int("max-replicas", 0));
  }
  const BottleneckResult result = eliminate_bottlenecks(t, options);
  CodegenOptions codegen;
  codegen.app_name = args.positional().front();
  codegen.run_seconds = args.get_double("run-seconds", 10.0);
  const std::string source = generate_runtime_source(t, result.plan, {}, codegen);
  const std::string path = args.get("out", "");
  if (path.empty()) {
    out << source;
  } else {
    std::ofstream file(path);
    require(file.good(), "cannot write '" + path + "'");
    file << source;
    out << "generated program written to " << path << '\n';
  }
  return 0;
}

/// Parses "name=value,name=value" pairs against operator names.
std::vector<std::pair<OpIndex, double>> parse_assignments(const Topology& t,
                                                          const std::string& csv,
                                                          const char* flag) {
  std::vector<std::pair<OpIndex, double>> result;
  std::istringstream in(csv);
  std::string token;
  while (std::getline(in, token, ',')) {
    const auto eq = token.find('=');
    require(eq != std::string::npos,
            std::string(flag) + ": expected name=value, got '" + token + "'");
    const std::string name = token.substr(0, eq);
    const auto index = t.find(name);
    require(index.has_value(), std::string(flag) + ": unknown operator '" + name + "'");
    result.emplace_back(*index, std::stod(token.substr(eq + 1)));
  }
  return result;
}

int cmd_whatif(const Args& args, std::ostream& out) {
  const Topology original = load(args);
  const SteadyStateResult before = steady_state(original);

  // Hypothetical service times (milliseconds).
  Topology::Builder builder;
  std::vector<double> new_times(original.num_operators(), -1.0);
  for (const auto& [op, ms] : parse_assignments(original, args.get("set", ""), "--set")) {
    require(ms > 0.0, "--set: service times must be positive");
    new_times[op] = ms * 1e-3;
  }
  for (OpIndex i = 0; i < original.num_operators(); ++i) {
    OperatorSpec spec = original.op(i);
    if (new_times[i] > 0.0) spec.service_time = new_times[i];
    builder.add_operator(std::move(spec));
  }
  for (const Edge& e : original.edges()) builder.add_edge(e.from, e.to, e.probability);
  const Topology changed = builder.build();

  // Hypothetical replica counts.
  ReplicationPlan plan;
  plan.replicas.assign(changed.num_operators(), 1);
  for (const auto& [op, n] :
       parse_assignments(original, args.get("replicas", ""), "--replicas")) {
    require(n >= 1.0, "--replicas: counts must be >= 1");
    plan.replicas[op] = static_cast<int>(n);
  }

  const SteadyStateResult after = steady_state(changed, plan);
  out << "-- current --\n" << format_analysis(original, before) << "\n-- what-if --\n"
      << format_analysis(changed, after, plan);
  const double delta = after.throughput() - before.throughput();
  out << "throughput change: " << (delta >= 0 ? "+" : "") << Table::num(delta, 1)
      << " tuples/s (" << Table::num(100.0 * delta / before.throughput(), 1) << "%)\n";
  return 0;
}

int cmd_profile(const Args& args, std::ostream& out) {
  const Topology declared = load(args);
  const int items = static_cast<int>(args.get_int("items", 2000));
  const ProfileData profile = harness::profile_topology(declared, items);
  require(!profile.operators.empty(),
          "profile: no operator names a known implementation (impl=...)");
  const Topology annotated = annotate_with_profile(declared, profile);

  Table table({"operator", "declared (us)", "measured (us)", "measured out/in"});
  for (OpIndex i = 0; i < declared.num_operators(); ++i) {
    auto it = profile.operators.find(declared.op(i).name);
    if (it == profile.operators.end()) continue;
    table.add_row({declared.op(i).name, Table::num(declared.op(i).service_time * 1e6, 1),
                   Table::num(it->second.service_time * 1e6, 3),
                   Table::num(it->second.selectivity.output / it->second.selectivity.input,
                              3)});
  }
  table.print(out);
  out << "re-annotated analysis:\n" << format_analysis(annotated, steady_state(annotated));
  const std::string save = args.get("save-xml", "");
  if (!save.empty()) {
    xml::save_topology_file(annotated, save, "profiled");
    out << "annotated description written to " << save << '\n';
  }
  return 0;
}

int cmd_generate(const Args& args, std::ostream& out) {
  Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 1)));
  const Topology t = random_topology(rng);
  const std::string xml_text = xml::save_topology(t, "generated");
  const std::string path = args.get("out", "");
  if (path.empty()) {
    out << xml_text;
  } else {
    std::ofstream file(path);
    require(file.good(), "cannot write '" + path + "'");
    file << xml_text;
    out << "topology with " << t.num_operators() << " operators written to " << path << '\n';
  }
  return 0;
}

}  // namespace

const char* usage() { return kUsage; }

int run_cli(int argc, const char* const* argv, std::ostream& out, std::ostream& err) {
  if (argc < 2) {
    err << kUsage;
    return 2;
  }
  const std::string command = argv[1];
  const Args args(argc - 1, argv + 1);
  try {
    if (command == "help" || command == "--help") {
      out << kUsage;
      return 0;
    }
    if (command == "validate") return cmd_validate(args, out);
    if (command == "analyze") return cmd_analyze(args, out);
    if (command == "optimize") return cmd_optimize(args, out);
    if (command == "auto") return cmd_auto(args, out);
    if (command == "candidates") return cmd_candidates(args, out);
    if (command == "fuse") return cmd_fuse(args, out);
    if (command == "simulate") return cmd_simulate(args, out);
    if (command == "run") return cmd_run(args, out);
    if (command == "codegen") return cmd_codegen(args, out);
    if (command == "profile") return cmd_profile(args, out);
    if (command == "whatif") return cmd_whatif(args, out);
    if (command == "generate") return cmd_generate(args, out);
    err << "unknown command '" << command << "'\n\n" << kUsage;
    return 2;
  } catch (const Error& e) {
    err << "error: " << e.what() << '\n';
    return 1;
  }
}

}  // namespace ss::cli
