// Predicted-vs-measured experiment plumbing shared by the fig* benches.
//
// The "measured" side can come from either engine:
//   * kSim     — the discrete-event BAS simulator (default; sweeps the
//                whole 50-topology testbed in seconds on one core), or
//   * kThreads — the real actor runtime with timed-wait operators (the
//                configuration closest to the paper's Akka runs; wall-clock
//                bound, used for spot validation).
// See DESIGN.md §2 for why both are faithful stand-ins for the paper's
// 24-core Akka deployment.
#pragma once

#include <string>
#include <vector>

#include "core/steady_state.hpp"
#include "core/topology.hpp"
#include "runtime/plan.hpp"
#include "sim/des.hpp"

namespace ss::harness {

enum class Engine { kSim, kThreads };

/// Parses "sim"/"threads" (CLI --engine values).
Engine engine_from_string(const std::string& name);

struct MeasureOptions {
  Engine engine = Engine::kSim;
  /// Simulated seconds (kSim).
  double sim_duration = 200.0;
  /// Service law for the simulator.
  sim::ServiceLaw law = sim::ServiceLaw::exponential();
  /// Wall-clock seconds per topology (kThreads).
  double real_duration = 2.0;
  /// Mailbox/buffer capacity.
  std::size_t buffer_capacity = 64;
  std::uint64_t seed = 7;
};

/// Measured steady-state rates of one run.
struct Measured {
  double throughput = 0.0;               ///< source departure rate (tuples/s)
  std::vector<double> departure_rates;   ///< per logical operator
  std::vector<double> arrival_rates;
};

/// Runs `t` under `deployment` on the chosen engine and returns rates.
Measured measure(const Topology& t, const runtime::Deployment& deployment,
                 const MeasureOptions& options);

/// Predicted + measured + relative error for one topology.
struct Comparison {
  double predicted = 0.0;
  double measured = 0.0;
  double error = 0.0;  ///< |predicted - measured| / measured
};

/// Full fig-7-style comparison of an unoptimized (or replicated) topology.
Comparison compare_throughput(const Topology& t, const runtime::Deployment& deployment,
                              const MeasureOptions& options);

}  // namespace ss::harness
