// Predicted-vs-measured experiment plumbing shared by the fig* benches,
// the ablations and the CLI.
//
// The "measured" side can come from any execution backend:
//   * kSim     — the discrete-event BAS simulator (default; sweeps the
//                whole 50-topology testbed in seconds on one core),
//   * kThreads — the real actor runtime, one dedicated thread per actor
//                (the configuration closest to the paper's Akka runs;
//                wall-clock bound, used for spot validation), or
//   * kPool    — the real actor runtime on the pooled scheduler: N actors
//                multiplexed onto K workers (MeasureOptions::workers).
// See DESIGN.md §2 for why these are faithful stand-ins for the paper's
// 24-core Akka deployment.
#pragma once

#include <string>
#include <vector>

#include "core/optimizer.hpp"
#include "core/steady_state.hpp"
#include "core/topology.hpp"
#include "runtime/plan.hpp"
#include "sim/des.hpp"

namespace ss::harness {

/// Which execution backend produces the "measured" side of an experiment.
enum class ExecutionBackend { kSim, kThreads, kPool };

/// Legacy alias kept for older bench code; new code should say
/// ExecutionBackend.
using Engine = ExecutionBackend;

/// Parses "sim"/"threads"/"pool" (the CLI --engine values).
ExecutionBackend engine_from_string(const std::string& name);
const char* backend_name(ExecutionBackend backend);

struct MeasureOptions {
  ExecutionBackend engine = ExecutionBackend::kSim;
  /// Simulated seconds (kSim).
  double sim_duration = 200.0;
  /// Service law for the simulator.
  sim::ServiceLaw law = sim::ServiceLaw::exponential();
  /// Wall-clock seconds per topology (kThreads/kPool).
  double real_duration = 2.0;
  /// Mailbox/buffer capacity.
  std::size_t buffer_capacity = 64;
  std::uint64_t seed = 7;
  /// Worker threads of the pooled backend; <= 0 means one per hardware
  /// thread.  Ignored by kSim/kThreads.
  int workers = 0;
  /// Messages drained per pooled actor claim; <= 0 means the default
  /// (Mailbox::drain batch of 64).  Ignored by kSim/kThreads.
  int pool_batch = 0;
  /// Elastic re-deployment (kThreads/kPool only): run a ReconfigController
  /// that re-runs Algorithms 1-3 on measured rates every `reconfig_period`
  /// seconds and switches epochs when the predicted gain exceeds
  /// `reconfig_threshold`.  measure() rejects elastic under kSim.
  bool elastic = false;
  double reconfig_period = 0.5;
  double reconfig_threshold = 0.10;
  /// End-to-end p99 latency SLO in seconds (0 = none).  Under an elastic
  /// runtime backend the controller re-deploys on measured SLO breach;
  /// every backend reports predicted-vs-measured latency either way.
  double slo_p99 = 0.0;
  /// Objective of the controller's re-optimization ("throughput",
  /// "latency" or "balanced"; see ss::Objective).
  Objective objective = Objective::kThroughput;
  /// When non-empty (kThreads/kPool only), the engine's MetricsExporter
  /// appends one JSON metrics snapshot per line to this file every
  /// `metrics_period` seconds.  measure() rejects it under kSim.
  std::string metrics_path;
  double metrics_period = 0.5;
};

/// Measured steady-state rates of one run.
struct Measured {
  double throughput = 0.0;               ///< source departure rate (tuples/s)
  std::vector<double> departure_rates;   ///< per logical operator
  std::vector<double> arrival_rates;
  /// Measured per-operator utilization ρ (busy time / window / replicas)
  /// and blocked-on-send fraction — filled by every backend (virtual time
  /// under kSim; -1 under kThreads/kPool runs without telemetry), so
  /// predicted-vs-measured ρ comparisons work sim-vs-runtime alike.
  std::vector<double> busy_fractions;
  std::vector<double> blocked_fractions;
  /// End-to-end tuple latency over the steady-state window (seconds):
  /// wall-clock under kThreads/kPool, virtual time under kSim (the DES
  /// records per-tuple sojourn, so the percentile columns fill everywhere).
  std::uint64_t latency_samples = 0;
  double latency_p50 = 0.0;
  double latency_p95 = 0.0;
  double latency_p99 = 0.0;
  /// Model-predicted end-to-end tuple latency of the same deployment
  /// (estimate_latency on the final plan) — filled by every backend so
  /// predicted-vs-measured tail comparisons need no extra plumbing.
  double predicted_mean_latency = 0.0;
  double predicted_p50 = 0.0;
  double predicted_p95 = 0.0;
  double predicted_p99 = 0.0;
  /// Elastic re-deployment outcome (1 epoch / 0 reconfigurations when the
  /// controller is off or never moved).
  int epochs = 1;
  int reconfigurations = 0;
  std::uint64_t keys_migrated = 0;
};

/// Runs `t` under `deployment` on the chosen engine and returns rates.
Measured measure(const Topology& t, const runtime::Deployment& deployment,
                 const MeasureOptions& options);

/// Predicted + measured + relative error for one topology.
struct Comparison {
  double predicted = 0.0;
  double measured = 0.0;
  double error = 0.0;  ///< |predicted - measured| / measured
};

/// Full fig-7-style comparison of an unoptimized (or replicated) topology.
Comparison compare_throughput(const Topology& t, const runtime::Deployment& deployment,
                              const MeasureOptions& options);

}  // namespace ss::harness
