#include "harness/table.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace ss::harness {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

Table& Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
  return *this;
}

std::string Table::num(double value, int precision) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(precision) << value;
  return out.str();
}

std::string Table::percent(double fraction, int precision) {
  return num(fraction * 100.0, precision) + "%";
}

void Table::print(std::ostream& out) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  const auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << (c == 0 ? "" : "  ") << std::setw(static_cast<int>(widths[c])) << cells[c];
    }
    out << '\n';
  };
  print_row(headers_);
  std::size_t total = headers_.size() > 0 ? 2 * (headers_.size() - 1) : 0;
  for (std::size_t w : widths) total += w;
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::string Table::to_string() const {
  std::ostringstream out;
  print(out);
  return out.str();
}

double mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double total = 0.0;
  for (double v : values) total += v;
  return total / static_cast<double>(values.size());
}

double stddev(const std::vector<double>& values) {
  if (values.size() < 2) return 0.0;
  const double m = mean(values);
  double sq = 0.0;
  for (double v : values) sq += (v - m) * (v - m);
  return std::sqrt(sq / static_cast<double>(values.size()));
}

double max_value(const std::vector<double>& values) {
  double best = 0.0;
  for (double v : values) best = std::max(best, v);
  return best;
}

double relative_error(double predicted, double measured) {
  if (measured == 0.0) return predicted == 0.0 ? 0.0 : 1.0;
  return std::abs(predicted - measured) / measured;
}

}  // namespace ss::harness
