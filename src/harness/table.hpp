// Column-aligned ASCII table/series output for the bench binaries, which
// regenerate the paper's figures as printable series.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace ss::harness {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  Table& add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with `precision` decimals.
  static std::string num(double value, int precision = 2);
  /// Formats a ratio as a percentage string ("3.25%").
  static std::string percent(double fraction, int precision = 2);

  void print(std::ostream& out) const;
  [[nodiscard]] std::string to_string() const;
  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Mean of a sample.
double mean(const std::vector<double>& values);
/// Population standard deviation of a sample.
double stddev(const std::vector<double>& values);
/// Maximum element (0 for empty input).
double max_value(const std::vector<double>& values);

/// |predicted - measured| / measured — the relative error the paper plots
/// in Figures 7b and 8.
double relative_error(double predicted, double measured);

}  // namespace ss::harness
