// Minimal CLI flag parsing for the bench/example binaries.
//
// Supports --key=value, --key value and boolean --flag forms; anything else
// is a positional argument.  Unknown flags are kept so binaries can print
// them in --help diagnostics.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "harness/experiment.hpp"

namespace ss::harness {

class Args {
 public:
  Args(int argc, const char* const* argv);

  [[nodiscard]] bool has(const std::string& key) const;
  [[nodiscard]] std::string get(const std::string& key, const std::string& fallback = "") const;
  /// Every value the flag was passed with, in command-line order — the
  /// repeatable-flag accessor (`--app a.xml --app b.xml`).  Empty when the
  /// flag is absent.  get() returns the last occurrence.
  [[nodiscard]] std::vector<std::string> get_all(const std::string& key) const;
  [[nodiscard]] long get_int(const std::string& key, long fallback) const;
  [[nodiscard]] double get_double(const std::string& key, double fallback) const;
  [[nodiscard]] const std::vector<std::string>& positional() const { return positional_; }
  [[nodiscard]] const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::vector<std::string>> values_;
  std::vector<std::string> positional_;
};

/// The measurement flags every bench and the CLI share, parsed in one
/// place: --engine=sim|threads|pool, --workers=K, --sim-duration=SEC,
/// --real-duration=SEC, --buffer-capacity=N, --seed=S, --elastic,
/// --reconfig-period=SEC, --reconfig-threshold=R.  `base` provides the
/// per-binary defaults for flags the user did not pass.  Malformed or
/// non-positive values fail with a usable ss::Error naming the flag.
MeasureOptions measure_options_from_args(const Args& args, ExecutionBackend default_backend,
                                         MeasureOptions base = {});

}  // namespace ss::harness
