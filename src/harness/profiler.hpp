// Operator profiling (paper §4.1): measure the average service time and the
// observed output selectivity of an OperatorLogic on synthetic tuples.
// This plays the role of the Mammut/DiSL instrumentation the paper relies
// on to obtain the cost-model inputs.
#pragma once

#include <cstdint>

#include "core/profile.hpp"
#include "core/topology.hpp"
#include "runtime/operator.hpp"

namespace ss::harness {

struct LogicProfile {
  double seconds_per_item = 0.0;  ///< mean wall time of process() per input
  double outputs_per_input = 0.0; ///< observed output selectivity
};

/// Feeds `items` synthetic tuples (seeded) through the logic and measures.
/// Window/selectivity behaviour is captured naturally: emissions are
/// counted, waits are real.
LogicProfile profile_logic(runtime::OperatorLogic& logic, int items, std::uint64_t seed = 1);

/// Profiles every operator of `t` that names a known implementation and
/// returns the ProfileData ready for annotate_with_profile().  Operators
/// with empty/synthetic impls are skipped (their spec already *is* the
/// profile).
ProfileData profile_topology(const Topology& t, int items_per_operator = 2000);

}  // namespace ss::harness
