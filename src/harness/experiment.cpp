#include "harness/experiment.hpp"

#include "core/error.hpp"
#include "harness/table.hpp"
#include "runtime/engine.hpp"

namespace ss::harness {

Engine engine_from_string(const std::string& name) {
  if (name == "sim") return Engine::kSim;
  if (name == "threads") return Engine::kThreads;
  throw Error("unknown engine '" + name + "' (expected 'sim' or 'threads')");
}

Measured measure(const Topology& t, const runtime::Deployment& deployment,
                 const MeasureOptions& options) {
  Measured result;
  if (options.engine == Engine::kSim) {
    sim::SimOptions sim_options;
    sim_options.duration = options.sim_duration;
    sim_options.buffer_capacity = options.buffer_capacity;
    sim_options.law = options.law;
    sim_options.seed = options.seed;
    sim_options.replication = deployment.replication;
    sim_options.partitions = deployment.partitions;
    const sim::SimResult sim = sim::simulate(t, sim_options);
    result.throughput = sim.throughput;
    for (const auto& op : sim.ops) {
      result.departure_rates.push_back(op.departure_rate);
      result.arrival_rates.push_back(op.arrival_rate);
    }
    return result;
  }

  runtime::EngineConfig config;
  config.mailbox_capacity = options.buffer_capacity;
  config.seed = options.seed;
  runtime::Engine engine(t, deployment, runtime::synthetic_factory(), config);
  const runtime::RunStats stats =
      engine.run_for(std::chrono::duration<double>(options.real_duration));
  result.throughput = stats.source_rate;
  for (const auto& op : stats.ops) {
    result.departure_rates.push_back(op.departure_rate);
    result.arrival_rates.push_back(op.arrival_rate);
  }
  return result;
}

Comparison compare_throughput(const Topology& t, const runtime::Deployment& deployment,
                              const MeasureOptions& options) {
  Comparison cmp;
  ReplicationPlan plan = deployment.replication;
  cmp.predicted = steady_state(t, plan).throughput();
  cmp.measured = measure(t, deployment, options).throughput;
  cmp.error = relative_error(cmp.predicted, cmp.measured);
  return cmp;
}

}  // namespace ss::harness
