#include "harness/experiment.hpp"

#include "core/error.hpp"
#include "harness/table.hpp"
#include "runtime/engine.hpp"

namespace ss::harness {

ExecutionBackend engine_from_string(const std::string& name) {
  if (name == "sim") return ExecutionBackend::kSim;
  if (name == "threads") return ExecutionBackend::kThreads;
  if (name == "pool") return ExecutionBackend::kPool;
  throw Error("unknown engine '" + name + "' (expected 'sim', 'threads' or 'pool')");
}

const char* backend_name(ExecutionBackend backend) {
  switch (backend) {
    case ExecutionBackend::kSim:
      return "sim";
    case ExecutionBackend::kThreads:
      return "threads";
    case ExecutionBackend::kPool:
      return "pool";
  }
  return "?";
}

Measured measure(const Topology& t, const runtime::Deployment& deployment,
                 const MeasureOptions& options) {
  Measured result;
  {
    // Predicted side (every backend): estimate_latency on the deployed
    // plan — the figures the measured percentiles should land near.
    const SteadyStateResult rates = steady_state(t, deployment.replication);
    const LatencyEstimate est =
        estimate_latency(t, rates, deployment.replication, options.buffer_capacity);
    result.predicted_mean_latency = est.sojourn_mean;
    result.predicted_p50 = est.sojourn.p50;
    result.predicted_p95 = est.sojourn.p95;
    result.predicted_p99 = est.sojourn.p99;
  }
  if (options.engine == ExecutionBackend::kSim) {
    require(!options.elastic,
            "--elastic needs a live runtime: use --engine=threads or --engine=pool");
    sim::SimOptions sim_options;
    sim_options.duration = options.sim_duration;
    sim_options.buffer_capacity = options.buffer_capacity;
    sim_options.law = options.law;
    sim_options.seed = options.seed;
    sim_options.replication = deployment.replication;
    sim_options.partitions = deployment.partitions;
    require(options.metrics_path.empty(),
            "--metrics-out needs a live runtime: use --engine=threads or --engine=pool");
    const sim::SimResult sim = sim::simulate(t, sim_options);
    result.throughput = sim.throughput;
    for (const auto& op : sim.ops) {
      result.departure_rates.push_back(op.departure_rate);
      result.arrival_rates.push_back(op.arrival_rate);
      result.busy_fractions.push_back(op.busy_fraction);
      result.blocked_fractions.push_back(op.blocked_fraction);
    }
    result.latency_samples = sim.end_to_end.count;
    result.latency_p50 = sim.end_to_end.p50;
    result.latency_p95 = sim.end_to_end.p95;
    result.latency_p99 = sim.end_to_end.p99;
    return result;
  }

  runtime::EngineConfig config;
  config.mailbox_capacity = options.buffer_capacity;
  config.seed = options.seed;
  if (options.engine == ExecutionBackend::kPool) {
    config.scheduler = runtime::SchedulerKind::kPooled;
    config.workers = options.workers;
    config.pool_batch = options.pool_batch;
  }
  config.elastic = options.elastic;
  config.reconfig_period = options.reconfig_period;
  config.reconfig_threshold = options.reconfig_threshold;
  config.slo_p99 = options.slo_p99;
  config.objective = options.objective;
  config.metrics_path = options.metrics_path;
  config.metrics_period = options.metrics_period;
  runtime::Engine engine(t, deployment, runtime::synthetic_factory(), config);
  const runtime::RunStats stats =
      engine.run_for(std::chrono::duration<double>(options.real_duration));
  result.throughput = stats.source_rate;
  for (const auto& op : stats.ops) {
    result.departure_rates.push_back(op.departure_rate);
    result.arrival_rates.push_back(op.arrival_rate);
    result.busy_fractions.push_back(op.busy_fraction);
    result.blocked_fractions.push_back(op.blocked_fraction);
  }
  result.latency_samples = stats.end_to_end.count;
  result.latency_p50 = stats.end_to_end.p50;
  result.latency_p95 = stats.end_to_end.p95;
  result.latency_p99 = stats.end_to_end.p99;
  result.epochs = stats.epochs;
  result.reconfigurations = stats.reconfigurations;
  result.keys_migrated = stats.keys_migrated;
  return result;
}

Comparison compare_throughput(const Topology& t, const runtime::Deployment& deployment,
                              const MeasureOptions& options) {
  Comparison cmp;
  ReplicationPlan plan = deployment.replication;
  cmp.predicted = steady_state(t, plan).throughput();
  cmp.measured = measure(t, deployment, options).throughput;
  cmp.error = relative_error(cmp.predicted, cmp.measured);
  return cmp;
}

}  // namespace ss::harness
