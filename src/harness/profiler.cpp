#include "harness/profiler.hpp"

#include <chrono>

#include "gen/rng.hpp"
#include "ops/registry.hpp"

namespace ss::harness {

namespace {

/// Swallows emissions, counting them.
class CountingCollector final : public runtime::Collector {
 public:
  void emit(const runtime::Tuple&) override { ++count_; }
  void emit_to(OpIndex, const runtime::Tuple&) override { ++count_; }
  [[nodiscard]] std::uint64_t count() const { return count_; }

 private:
  std::uint64_t count_ = 0;
};

runtime::Tuple synthetic_tuple(Rng& rng, std::int64_t id) {
  runtime::Tuple t;
  t.id = id;
  // A small key domain (64 keys) so keyed/windowed state warms up within
  // the profiling run; per-key windows would otherwise never trigger.
  t.key = static_cast<std::int64_t>(rng.next_u64() >> 58);
  t.ts = static_cast<double>(id) * 1e-3;
  for (double& f : t.f) f = rng.next_double();
  return t;
}

}  // namespace

LogicProfile profile_logic(runtime::OperatorLogic& logic, int items, std::uint64_t seed) {
  Rng rng(seed);
  CountingCollector collector;
  logic.on_start();

  // Untimed warmup: populate windows/hash maps so the measurement reflects
  // steady-state cost rather than cold-start allocation.
  const int warmup = items / 4;
  for (int i = 0; i < warmup; ++i) {
    logic.process(synthetic_tuple(rng, i), 0, collector);
  }

  CountingCollector measured;
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < items; ++i) {
    logic.process(synthetic_tuple(rng, warmup + i), 0, measured);
  }
  const auto elapsed = std::chrono::duration<double>(std::chrono::steady_clock::now() - start);

  LogicProfile profile;
  profile.seconds_per_item = elapsed.count() / static_cast<double>(items);
  profile.outputs_per_input =
      static_cast<double>(measured.count()) / static_cast<double>(items);
  return profile;
}

ProfileData profile_topology(const Topology& t, int items_per_operator) {
  ProfileData data;
  for (OpIndex i = 0; i < t.num_operators(); ++i) {
    const OperatorSpec& spec = t.op(i);
    if (i == t.source()) continue;
    if (spec.impl.empty() || spec.impl == "synthetic" || spec.impl == "meta" ||
        spec.impl == "source" || !ops::is_known_impl(spec.impl)) {
      continue;
    }
    auto logic = ops::make_logic(i, spec);
    const LogicProfile measured = profile_logic(*logic, items_per_operator, 0xfeed + i);
    OperatorProfile profile;
    profile.service_time = measured.seconds_per_item;
    // A zero observed selectivity means the run was too short for this
    // operator's state (e.g. a long window) to produce anything; keep the
    // declared value rather than recording an impossible annotation.
    if (measured.outputs_per_input > 0.0) {
      profile.selectivity = Selectivity{spec.selectivity.input,
                                        measured.outputs_per_input * spec.selectivity.input};
      profile.has_selectivity = true;
    }
    data.operators[spec.name] = profile;
  }
  return data;
}

}  // namespace ss::harness
