#include "harness/args.hpp"

#include <cerrno>
#include <cstdlib>

#include "core/error.hpp"

namespace ss::harness {

Args::Args(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg.erase(0, 2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)].push_back(arg.substr(eq + 1));
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg].push_back(argv[++i]);
    } else {
      values_[arg].push_back("true");
    }
  }
}

bool Args::has(const std::string& key) const { return values_.count(key) > 0; }

std::string Args::get(const std::string& key, const std::string& fallback) const {
  auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second.back();
}

std::vector<std::string> Args::get_all(const std::string& key) const {
  auto it = values_.find(key);
  return it == values_.end() ? std::vector<std::string>{} : it->second;
}

long Args::get_int(const std::string& key, long fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  const std::string& raw = it->second.back();
  const char* text = raw.c_str();
  char* end = nullptr;
  errno = 0;
  const long value = std::strtol(text, &end, 10);
  require(end != text && *end == '\0' && errno != ERANGE,
          "--" + key + ": expected an integer, got '" + raw + "'");
  return value;
}

double Args::get_double(const std::string& key, double fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  const std::string& raw = it->second.back();
  const char* text = raw.c_str();
  char* end = nullptr;
  errno = 0;
  const double value = std::strtod(text, &end);
  require(end != text && *end == '\0' && errno != ERANGE,
          "--" + key + ": expected a number, got '" + raw + "'");
  return value;
}

MeasureOptions measure_options_from_args(const Args& args, ExecutionBackend default_backend,
                                         MeasureOptions base) {
  MeasureOptions options = base;
  options.engine = args.has("engine") ? engine_from_string(args.get("engine"))
                                      : default_backend;
  options.workers = static_cast<int>(args.get_int("workers", base.workers));
  require(!args.has("workers") || options.workers > 0,
          "--workers must be a positive integer");
  options.pool_batch = static_cast<int>(args.get_int("batch", base.pool_batch));
  require(!args.has("batch") || options.pool_batch > 0,
          "--batch must be a positive integer");
  options.sim_duration = args.get_double("sim-duration", base.sim_duration);
  require(options.sim_duration > 0.0, "--sim-duration must be positive (seconds)");
  options.real_duration = args.get_double("real-duration", base.real_duration);
  require(options.real_duration > 0.0, "--real-duration must be positive (seconds)");
  const long buffer =
      args.get_int("buffer-capacity", static_cast<long>(base.buffer_capacity));
  require(buffer > 0, "--buffer-capacity must be a positive integer");
  options.buffer_capacity = static_cast<std::size_t>(buffer);
  options.seed = static_cast<std::uint64_t>(args.get_int("seed", static_cast<long>(base.seed)));
  options.elastic = base.elastic || args.has("elastic");
  options.reconfig_period = args.get_double("reconfig-period", base.reconfig_period);
  require(options.reconfig_period > 0.0, "--reconfig-period must be positive (seconds)");
  options.reconfig_threshold =
      args.get_double("reconfig-threshold", base.reconfig_threshold);
  require(options.reconfig_threshold >= 0.0, "--reconfig-threshold must be >= 0");
  options.metrics_path = args.get("metrics-out", base.metrics_path);
  options.metrics_period = args.get_double("metrics-period", base.metrics_period);
  require(options.metrics_period > 0.0, "--metrics-period must be positive (seconds)");
  return options;
}

}  // namespace ss::harness
