#include "harness/args.hpp"

#include <cstdlib>

namespace ss::harness {

Args::Args(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg.erase(0, 2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";
    }
  }
}

bool Args::has(const std::string& key) const { return values_.count(key) > 0; }

std::string Args::get(const std::string& key, const std::string& fallback) const {
  auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

long Args::get_int(const std::string& key, long fallback) const {
  auto it = values_.find(key);
  return it == values_.end() ? fallback : std::strtol(it->second.c_str(), nullptr, 10);
}

double Args::get_double(const std::string& key, double fallback) const {
  auto it = values_.find(key);
  return it == values_.end() ? fallback : std::strtod(it->second.c_str(), nullptr);
}

MeasureOptions measure_options_from_args(const Args& args, ExecutionBackend default_backend,
                                         MeasureOptions base) {
  MeasureOptions options = base;
  options.engine = args.has("engine") ? engine_from_string(args.get("engine"))
                                      : default_backend;
  options.workers = static_cast<int>(args.get_int("workers", base.workers));
  options.pool_batch = static_cast<int>(args.get_int("batch", base.pool_batch));
  options.sim_duration = args.get_double("sim-duration", base.sim_duration);
  options.real_duration = args.get_double("real-duration", base.real_duration);
  options.buffer_capacity =
      static_cast<std::size_t>(args.get_int("buffer-capacity", static_cast<long>(base.buffer_capacity)));
  options.seed = static_cast<std::uint64_t>(args.get_int("seed", static_cast<long>(base.seed)));
  return options;
}

}  // namespace ss::harness
