// Fundamental vocabulary types of the SpinStreams cost model (paper §3).
#pragma once

#include <cstdint>
#include <string>

namespace ss {

/// Index of an operator (vertex) inside a Topology.  Dense, 0-based; by
/// convention index 0 is the unique source after validation.
using OpIndex = std::uint32_t;

inline constexpr OpIndex kInvalidOp = static_cast<OpIndex>(-1);

/// State classification of an operator (paper §3.2).
///
/// The class decides which optimizations apply: stateless operators can be
/// replicated freely (shuffle routing), partitioned-stateful ones can be
/// replicated by splitting the key domain, stateful ones cannot be
/// replicated at all and only backpressure correction applies.
enum class StateKind : std::uint8_t {
  kStateless,
  kPartitionedStateful,
  kStateful,
};

/// Returns the canonical lower-case name used in the XML format.
std::string to_string(StateKind kind);

/// Parses the canonical name produced by to_string(StateKind).
StateKind state_kind_from_string(const std::string& name);

/// Selectivity parameters of an operator (paper §3.4).
///
/// `input` is the average number of items consumed before one result is
/// emitted (sliding-window operators have input selectivity equal to the
/// window slide).  `output` is the average number of results produced per
/// consumed item (flatmap-like operators have output selectivity > 1,
/// filters have output selectivity < 1).  Plain map-like operators use
/// {1, 1}.  The departure rate of an operator becomes
///   delta = min(lambda, n * mu) * output / input.
struct Selectivity {
  double input = 1.0;
  double output = 1.0;

  [[nodiscard]] double rate_gain() const { return output / input; }
  bool operator==(const Selectivity&) const = default;
};

/// Role of a vertex in the flow graph.
enum class OpRole : std::uint8_t {
  kSource,  ///< no input edges; generates the stream
  kInner,   ///< has both input and output edges
  kSink,    ///< no output edges; absorbs results
};

}  // namespace ss
