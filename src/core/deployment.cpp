#include "core/deployment.hpp"

#include <algorithm>

namespace ss {

namespace {

/// Fusion-group membership of every operator: the sorted member list of the
/// group containing it, or empty when unfused.  Comparing memberships (not
/// group indices) makes the diff insensitive to group ordering.
std::vector<std::vector<OpIndex>> group_signature(std::size_t num_ops,
                                                  const std::vector<FusionSpec>& fusions) {
  std::vector<std::vector<OpIndex>> sig(num_ops);
  for (const FusionSpec& group : fusions) {
    std::vector<OpIndex> members = group.members;
    std::sort(members.begin(), members.end());
    for (OpIndex m : members) {
      if (m < num_ops) sig[m] = members;
    }
  }
  return sig;
}

const KeyPartition* partition_of(const Deployment& d, OpIndex i) {
  if (i >= d.partitions.size() || d.partitions[i].replica_of_key.empty()) return nullptr;
  return &d.partitions[i];
}

bool partitions_equal(const KeyPartition* a, const KeyPartition* b) {
  if (a == nullptr || b == nullptr) return a == b;  // empty == "derive"
  return a->replicas == b->replicas && a->replica_of_key == b->replica_of_key;
}

}  // namespace

DeploymentDiff diff_deployments(std::size_t num_ops, const Deployment& from,
                                const Deployment& to) {
  DeploymentDiff diff;
  diff.op_changed.assign(num_ops, false);
  const auto from_groups = group_signature(num_ops, from.fusions);
  const auto to_groups = group_signature(num_ops, to.fusions);
  for (OpIndex i = 0; i < num_ops; ++i) {
    const int n_from = from.replication.replicas_of(i);
    const int n_to = to.replication.replicas_of(i);
    bool changed = n_from != n_to;
    // The key partition only matters while the operator is replicated: an
    // unreplicated operator owns the whole key domain either way.
    if (!changed && n_to > 1) {
      changed = !partitions_equal(partition_of(from, i), partition_of(to, i));
    }
    if (!changed && from_groups[i] != to_groups[i]) {
      changed = true;
      diff.fusions_changed = true;
    }
    if (changed) {
      diff.op_changed[i] = true;
      ++diff.ops_changed;
    }
  }
  if (diff.fusions_changed == false) {
    // Membership comparison above only flags ops whose own group changed;
    // surface the flag even when the only difference is group composition
    // of already-flagged ops.
    for (OpIndex i = 0; i < num_ops; ++i) {
      if (from_groups[i] != to_groups[i]) {
        diff.fusions_changed = true;
        break;
      }
    }
  }
  return diff;
}

}  // namespace ss
