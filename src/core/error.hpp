// Common error type for recoverable failures across the SpinStreams library.
//
// Recoverable misuse (malformed XML, illegal fusion sub-graphs, inconsistent
// probability annotations, ...) throws ss::Error carrying a human-readable
// message with enough context to fix the input.  Programming errors are
// handled with assertions instead.
#pragma once

#include <stdexcept>
#include <string>

namespace ss {

/// Exception thrown on recoverable, user-fixable errors.
class Error : public std::runtime_error {
 public:
  explicit Error(std::string message) : std::runtime_error(std::move(message)) {}
};

/// Throws ss::Error with `message` when `condition` is false.
inline void require(bool condition, const std::string& message) {
  if (!condition) throw Error(message);
}

}  // namespace ss
