#include "core/latency.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace ss {

namespace {
// Treat rho above this as saturated: the M/M/1 formula diverges while the
// real system is bounded by the finite buffer.
constexpr double kSaturationThreshold = 0.99;

// Inverse of the standard normal CDF (Acklam's rational approximation,
// |relative error| < 1.15e-9 on (0,1)).
double normal_quantile(double p) {
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double plow = 0.02425;
  if (p <= 0.0) return -1e9;
  if (p >= 1.0) return 1e9;
  if (p < plow) {
    const double q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p > 1.0 - plow) {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  const double q = p - 0.5;
  const double r = q * q;
  return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q /
         (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
}

// CDF of the moment-matched gamma at x (Wilson-Hilferty, the inverse of
// latency_quantile's approximation).
double gamma_cdf(double x, double mean, double var) {
  if (mean <= 0.0) return 1.0;
  if (var <= mean * mean * 1e-12) return x >= mean ? 1.0 : 0.0;  // deterministic
  if (x <= 0.0) return 0.0;
  const double shape = (mean * mean) / var;
  const double scale = var / mean;
  const double u = std::cbrt(x / (shape * scale));
  const double z = (u - (1.0 - 1.0 / (9.0 * shape))) * 3.0 * std::sqrt(shape);
  return 0.5 * std::erfc(-z / std::sqrt(2.0));
}

// One mode of a multimodal path-latency distribution: the probability mass
// of tuples exiting through a family of routing paths, with the first two
// moments of their latency.  A single moment-matched gamma cannot express
// "95% of tuples take the fast branch, 5% take a 10x slower one" -- its
// p99 lands between the modes -- so percentiles are computed on a small
// mixture of per-path clusters instead.
struct Cluster {
  double w = 0.0;
  double mean = 0.0;
  double m2 = 0.0;
};
constexpr std::size_t kMaxClusters = 8;

// Moment-preserving reduction to kMaxClusters: repeatedly merge the
// adjacent (by mean) pair with the smallest Ward cost.
void merge_clusters(std::vector<Cluster>& cs) {
  std::sort(cs.begin(), cs.end(),
            [](const Cluster& a, const Cluster& b) { return a.mean < b.mean; });
  while (cs.size() > kMaxClusters) {
    std::size_t best = 0;
    double best_cost = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i + 1 < cs.size(); ++i) {
      const double d = cs[i + 1].mean - cs[i].mean;
      const double cost = cs[i].w * cs[i + 1].w / (cs[i].w + cs[i + 1].w + 1e-300) * d * d;
      if (cost < best_cost) {
        best_cost = cost;
        best = i;
      }
    }
    Cluster& a = cs[best];
    const Cluster& b = cs[best + 1];
    const double w = a.w + b.w;
    a.mean = (a.w * a.mean + b.w * b.mean) / std::max(w, 1e-300);
    a.m2 = (a.w * a.m2 + b.w * b.m2) / std::max(w, 1e-300);
    a.w = w;
    cs.erase(cs.begin() + static_cast<std::ptrdiff_t>(best) + 1);
  }
}

double mixture_cdf(const std::vector<Cluster>& cs, double x) {
  double f = 0.0;
  double wt = 0.0;
  for (const Cluster& c : cs) {
    f += c.w * gamma_cdf(x, c.mean, std::max(c.m2 - c.mean * c.mean, 0.0));
    wt += c.w;
  }
  return wt > 0.0 ? f / wt : 1.0;
}

double mixture_quantile(const std::vector<Cluster>& cs, double q) {
  double hi = 0.0;
  for (const Cluster& c : cs) {
    hi = std::max(hi,
                  latency_quantile(c.mean, std::max(c.m2 - c.mean * c.mean, 0.0), q));
  }
  if (hi <= 0.0) return 0.0;
  for (int guard = 0; mixture_cdf(cs, hi) < q && guard < 64; ++guard) hi *= 2.0;
  double lo = 0.0;
  for (int it = 0; it < 80; ++it) {
    const double mid = 0.5 * (lo + hi);
    (mixture_cdf(cs, mid) < q ? lo : hi) = mid;
  }
  return 0.5 * (lo + hi);
}
}  // namespace

double latency_quantile(double mean, double variance, double q) {
  if (mean <= 0.0) return 0.0;
  if (variance <= mean * mean * 1e-12) return mean;  // (near-)deterministic
  const double shape = (mean * mean) / variance;
  const double scale = variance / mean;
  const double z = normal_quantile(q);
  // Wilson-Hilferty: the cube root of a gamma variate is approximately
  // normal with mean 1 - 1/(9k) and variance 1/(9k) (in units of k*theta).
  const double cube = 1.0 - 1.0 / (9.0 * shape) + z / (3.0 * std::sqrt(shape));
  if (cube <= 0.0) return 0.0;
  return shape * scale * cube * cube * cube;
}

LatencyPercentiles latency_percentiles(double mean, double variance) {
  LatencyPercentiles p;
  p.p50 = latency_quantile(mean, variance, 0.50);
  p.p95 = latency_quantile(mean, variance, 0.95);
  p.p99 = latency_quantile(mean, variance, 0.99);
  return p;
}

LatencyEstimate estimate_latency(const Topology& t, const SteadyStateResult& rates,
                                 const ReplicationPlan& plan, std::size_t buffer_capacity,
                                 const LatencyModelInputs* inputs) {
  const std::size_t n = t.num_operators();
  assert(rates.rates.size() == n);

  // Profiler-fitted variability terms (negative / absent = use the
  // closed-form default, so a null `inputs` reproduces the original model
  // bit-for-bit).
  const auto fitted_ca2 = [&](OpIndex i) {
    if (inputs == nullptr || i >= inputs->ca2.size()) return -1.0;
    return inputs->ca2[i];
  };
  const auto fitted_stall = [&](OpIndex i) {
    if (inputs == nullptr || i >= inputs->stall_p.size()) return -1.0;
    return std::min(inputs->stall_p[i], 1.0);
  };

  LatencyEstimate estimate;
  estimate.response.assign(n, 0.0);
  estimate.response_var.assign(n, 0.0);
  estimate.congested.assign(n, false);
  estimate.window_delay.assign(n, 0.0);
  estimate.to_sink.assign(n, 0.0);

  const double kSlots = static_cast<double>(buffer_capacity) + 1.0;  // queue + in service

  // Mean number of items in an M/M/1/K system (K slots) at offered load
  // rho; finite everywhere, ~K for rho >> 1 and K/2 at rho == 1.
  const auto finite_queue_len = [kSlots](double rho) {
    rho = std::max(rho, 1e-12);
    if (rho > 1.5) return kSlots;  // deep overload: pinned full
    if (std::abs(rho - 1.0) < 1e-6) return 0.5 * kSlots;
    const double rk = std::pow(rho, kSlots + 1.0);
    const double len = rho / (1.0 - rho) - (kSlots + 1.0) * rk / (1.0 - rk);
    return std::min(std::max(len, 0.0), kSlots);
  };

  const auto& order = t.topological_order();
  std::vector<double> lambda_hot(n, 0.0);   // served arrival, most loaded replica
  std::vector<double> fill(n, 0.0);         // modelled hot-queue fill, 0..1
  std::vector<char> pinned(n, 0);           // buffer pinned full

  // Pass A (forward topological): *offered* arrival rates -- what each
  // operator would receive if only raw upstream capacities throttled the
  // flow, with the source at its natural (uncorrected) rate.  Operators
  // between the source and the binding bottleneck see offered > served
  // (the testbed paces sources faster than the network can drain); behind
  // the bottleneck the offered flow is capacity-capped down to the served
  // rate.  The comparison tells the congestion model on which side of the
  // binding constraint an operator sits.
  std::vector<double> offered(n, 0.0);
  for (const OpIndex i : order) {
    const OperatorSpec& op = t.op(i);
    const double gain = op.selectivity.output / std::max(op.selectivity.input, 1.0);
    double out_rate = 0.0;
    if (i == t.source()) {
      offered[i] = op.service_rate();
      out_rate = op.service_rate() * gain;
    } else {
      const double cap = op.service_rate() / plan.max_share_of(i);  // aggregate
      out_rate = std::min(offered[i], cap) * gain;
    }
    for (const Edge& e : t.out_edges(i)) offered[e.to] += e.probability * out_rate;
  }

  // Pass B (reverse topological): congestion and responses, children
  // before parents.
  //
  // Queue length of one replica:
  //   * open: the M/M/1/K occupancy at its served load, capped at the
  //     *damped critical length* (K/2) / n^(1/4) for fission groups -- the
  //     split per-replica streams are smoother than Poisson and the
  //     backpressure loop couples the n queues, so the standing queue a
  //     critically loaded replica can sustain shrinks with the replica
  //     count (DES: ~K/2 for n = 1 down to ~K/7 for n > 100, well fit by
  //     (K/2) n^(-1/4)).  Away from criticality the cap is inactive and
  //     the plain M/M/1/K length applies.
  //   * pinned: interpolates from the damped critical length up to the
  //     full buffer with the overload ratio x = offered/served,
  //       len = len_crit + (K - len_crit) (1 - 1/x)
  //     (x ~ 1: critically loaded, continuous with the open model; x >> 1:
  //     a deeply overloaded chain pins the buffer full).
  // The response is len drained at the served throughput: an ~exponential
  // sojourn for open queues (the exact M/M/1 law), with the waiting
  // portion scaled by the Allen-Cunneen arrival-variability factor
  // (round-robin fission regularizes arrivals: ca^2 = 1/n), and an
  // Erlang(len)-like tail for a pinned standing queue.
  //
  // An operator is pinned full when its own load times its *effective*
  // service (own service plus expected stalls pushing into congested
  // children) saturates it, or when most of its results push into pinned
  // queues while upstream offers more than it can forward: BAS rate-
  // matches its service to the drain and the whole chain up to the source
  // runs pinned.  A *minor* supplier of a pinned child stalls only
  // occasionally and keeps catching up -- its queue stays short, which is
  // exactly what the DES shows for starved side branches next to a pinned
  // main chain.
  //
  // Stall probabilities per push attempt:
  //   * into a pinned child: flow conservation fixes the long-run blocked
  //     fraction exactly -- the child admits served/offered of what
  //     arrives, so 1 - arrival/offered of the pushes wait a full drain
  //     interval (the DES blocked fractions match this within a few
  //     percent: a 1.33x-overdriven chain blocks ~25% of pushes, a 1.06x
  //     residual bottleneck ~6%).
  //   * into an open but near-critical child: transient full-buffer
  //     episodes block ~fill^2 of pushes for about one service completion
  //     (fitted to DES blocked fractions upstream of rho ~ 0.98 fission
  //     groups).
  struct Response {
    double mean = 0.0;
    double var = 0.0;
  };
  std::vector<double> s_eff_v(n, 0.0);  // service + expected downstream stalls
  const auto replica_response = [&](double lambda, double service, double ca2,
                                    double damp, double overload) {
    Response resp;
    lambda = std::max(lambda, 1e-9);
    const double crit = finite_queue_len(0.995) / damp;
    if (overload > 0.0) {  // pinned: standing queue drained at lambda
      const double shortfall = 1.0 - 1.0 / overload;
      const double len = crit + (kSlots - crit) * shortfall;
      resp.mean = len / lambda;
      // Deeply overloaded: the wait is an Erlang(len) drain of a full
      // buffer (variance mean^2/len).  At the x ~ 1 criticality edge the
      // queue still fluctuates and the tail fattens toward exponential;
      // interpolate with the shortfall (floored: even a critical standing
      // queue drains with less-than-exponential variability).
      const double blend = std::max(shortfall, 0.15);
      resp.var = resp.mean * resp.mean / (1.0 + (len - 1.0) * blend);
      return resp;
    }
    const double rho = std::min(lambda * service, 0.995);
    const double len = std::min(finite_queue_len(rho), crit);
    const double wait = std::max(len / lambda - service, 0.0);
    resp.mean = service + 0.5 * (ca2 + 1.0) * wait;
    resp.var = resp.mean * resp.mean;  // exponential sojourn
    return resp;
  };

  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const OpIndex i = *it;
    const OperatorSpec& op = t.op(i);
    const OperatorRates& r = rates.rates[i];
    const int replicas = plan.replicas_of(i);
    const double pmax = plan.max_share_of(i);
    lambda_hot[i] = r.arrival * pmax;

    if (i == t.source()) {
      // Generation time only; exponential inter-generation times.
      estimate.response[i] = op.service_time;
      estimate.response_var[i] = op.service_time * op.service_time;
      continue;
    }

    const double results_per_input =
        op.selectivity.output / std::max(op.selectivity.input, 1.0);
    double stall = 0.0;
    double stall2 = 0.0;
    double chain_feed = 0.0;  // fraction of a pinned child's inflow we supply
    for (const Edge& e : t.out_edges(i)) {
      const OpIndex j = e.to;
      const double arr_j = std::max(rates.rates[j].arrival, 1e-9);
      if (pinned[j]) {
        // Conservation: the blocked fraction equals the child's overload
        // shortfall.  A stalled push waits ~one drain interval of the hit
        // replica; for a partitioned child only the hot replica is pinned
        // and only key-share pmax of the pushes hit it.
        const double p_full =
            std::clamp(1.0 - arr_j / std::max(offered[j], arr_j), 0.0, 1.0);
        double hit = 1.0;
        double wait = 0.0;
        if (t.op(j).state == StateKind::kPartitionedStateful &&
            plan.replicas_of(j) > 1) {
          hit = plan.max_share_of(j);
          wait = 1.0 / std::max(lambda_hot[j], 1e-9);
        } else {
          wait = static_cast<double>(plan.replicas_of(j)) / arr_j;
        }
        stall += e.probability * hit * p_full * wait;
        stall2 += e.probability * hit * p_full * 2.0 * wait * wait;  // ~exp stalls
        const double supply = r.arrival * results_per_input * e.probability / arr_j;
        chain_feed += e.probability * hit * std::min(supply, 1.0);
      } else {
        // Transient blocking on a busy open child: the target replica's
        // buffer is full ~fill^3 of the time, freeing a slot takes ~one
        // service completion.  A profiler-measured full-buffer fraction
        // (queue-occupancy sampling) replaces the fill^3 heuristic.
        const double measured = fitted_stall(j);
        const double p_full =
            measured >= 0.0 ? measured : fill[j] * fill[j] * fill[j];
        if (p_full > 0.0) {
          const double wait = s_eff_v[j];
          stall += e.probability * p_full * wait;
          stall2 += e.probability * p_full * 2.0 * wait * wait;
        }
      }
    }
    const double s_eff = op.service_time + results_per_input * stall;
    double stall_var = results_per_input * stall2;
    s_eff_v[i] = s_eff;

    pinned[i] = lambda_hot[i] * s_eff >= kSaturationThreshold ||
                (chain_feed >= 0.5 && offered[i] > 1.05 * r.arrival);
    if (pinned[i]) stall_var = 0.0;  // the drain model owns the variance
    estimate.congested[i] = pinned[i] != 0;

    const double damp =
        replicas > 1 ? std::pow(static_cast<double>(replicas), 0.25) : 1.0;
    // Arrival variability: the fitted base ca^2 when the profiler measured
    // one, exponential (1.0) otherwise; round-robin fission divides either
    // by the replica count (n-way splitting of any renewal stream).
    const double measured_ca2 = fitted_ca2(i);
    const double base_ca2 = measured_ca2 >= 0.0 ? measured_ca2 : 1.0;
    const double ca2 = (op.state == StateKind::kStateless && replicas > 1)
                           ? base_ca2 / static_cast<double>(replicas)
                           : base_ca2;
    const double overload =
        pinned[i] ? std::max(offered[i] / std::max(r.arrival, 1e-9), 1.0) : 0.0;
    const Response hot = replica_response(lambda_hot[i], s_eff, ca2, damp, overload);
    // Little's law: standing length of the hot replica's queue.
    fill[i] =
        std::min(std::max(lambda_hot[i], 1e-9) * hot.mean / kSlots, 1.0);

    if (op.state == StateKind::kPartitionedStateful && replicas > 1 && pmax < 1.0) {
      // Flow-weighted mixture over replicas: share pmax of the stream hits
      // the hot replica, the rest spreads over the n-1 cooler ones.
      const double lambda_cold =
          r.arrival * (1.0 - pmax) / static_cast<double>(replicas - 1);
      const Response cold = replica_response(lambda_cold, s_eff, 1.0, damp, 0.0);
      const double mean = pmax * hot.mean + (1.0 - pmax) * cold.mean;
      const double second = pmax * (hot.var + hot.mean * hot.mean) +
                            (1.0 - pmax) * (cold.var + cold.mean * cold.mean);
      estimate.response[i] = mean;
      estimate.response_var[i] = std::max(second - mean * mean, 0.0) + stall_var;
    } else {
      estimate.response[i] = hot.mean;
      estimate.response_var[i] = hot.var + stall_var;
    }

    // Windowed buffering: a result carries items that waited up to a full
    // slide; on average half a slide's worth of inter-arrival times.
    if (op.selectivity.input > 1.0 && r.arrival > 0.0) {
      estimate.window_delay[i] = (op.selectivity.input - 1.0) / (2.0 * r.arrival);
    }
  }

  // Backward pass for the legacy analytic remaining latency (includes
  // window delay and the source's generation time).
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const OpIndex i = *it;
    double downstream = 0.0;
    for (const Edge& e : t.out_edges(i)) {
      downstream += e.probability * estimate.to_sink[e.to];
    }
    estimate.to_sink[i] = estimate.response[i] + estimate.window_delay[i] + downstream;
  }
  estimate.end_to_end = estimate.to_sink[t.source()];

  // Two-moment backward pass for the measured-comparable tuple latency
  // (excludes source generation and window delay: an emitted result
  // inherits the freshest contributing input's timestamp).  The measured
  // distribution averages over *sink-emitted results*, so each branch is
  // weighted by its exit count, not its routing probability: a branch
  // through a size-s window emits s times fewer results per routed item.
  //   exits(i) = g_i                          for a sink (every result leaves)
  //   exits(i) = g_i * sum_j p(i,j) exits(j)  otherwise
  std::vector<double> exits(n, 0.0);
  std::vector<double> m(n, 0.0);   // mean latency from arrival at i to exit
  std::vector<double> m2(n, 0.0);  // second moment of the same
  // Per-path clusters for percentiles (see Cluster): the remaining-latency
  // distribution from arrival at i, normalized to total weight 1.
  std::vector<std::vector<Cluster>> clusters(n);
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const OpIndex i = *it;
    const OperatorSpec& op = t.op(i);
    const double gain = op.selectivity.output / std::max(op.selectivity.input, 1.0);
    double down_exits = 0.0;
    double down_mean = 0.0;
    double down_m2 = 0.0;
    std::vector<Cluster> cs;
    for (const Edge& e : t.out_edges(i)) {
      const double wgt = e.probability * exits[e.to];
      down_exits += wgt;
      down_mean += wgt * m[e.to];
      down_m2 += wgt * m2[e.to];
      for (const Cluster& c : clusters[e.to]) {
        if (wgt * c.w > 0.0) cs.push_back(Cluster{wgt * c.w, c.mean, c.m2});
      }
    }
    if (t.out_edges(i).empty()) {
      exits[i] = gain;
    } else {
      exits[i] = gain * down_exits;
      if (down_exits > 0.0) {
        down_mean /= down_exits;
        down_m2 /= down_exits;
      }
    }
    if (cs.empty()) cs.push_back(Cluster{1.0, 0.0, 0.0});
    const double w = estimate.response[i];
    const double w2 = estimate.response_var[i] + w * w;
    m[i] = w + down_mean;
    m2[i] = w2 + 2.0 * w * down_mean + down_m2;
    double wt = 0.0;
    for (const Cluster& c : cs) wt += c.w;
    for (Cluster& c : cs) {
      c.w /= std::max(wt, 1e-300);
      c.m2 = w2 + 2.0 * w * c.mean + c.m2;
      c.mean = w + c.mean;
    }
    merge_clusters(cs);
    clusters[i] = std::move(cs);
  }
  double exit_total = 0.0;
  double mean = 0.0;
  double second = 0.0;
  std::vector<Cluster> mix;
  for (const Edge& e : t.out_edges(t.source())) {
    const double wgt = e.probability * exits[e.to];
    exit_total += wgt;
    mean += wgt * m[e.to];
    second += wgt * m2[e.to];
    for (const Cluster& c : clusters[e.to]) {
      if (wgt * c.w > 0.0) mix.push_back(Cluster{wgt * c.w, c.mean, c.m2});
    }
  }
  if (exit_total > 0.0) {
    mean /= exit_total;
    second /= exit_total;
  }
  estimate.sojourn_mean = mean;
  estimate.sojourn_var = std::max(second - mean * mean, 0.0);
  if (mix.empty()) {
    estimate.sojourn = latency_percentiles(estimate.sojourn_mean, estimate.sojourn_var);
  } else {
    merge_clusters(mix);
    estimate.sojourn.p50 = mixture_quantile(mix, 0.50);
    estimate.sojourn.p95 = mixture_quantile(mix, 0.95);
    estimate.sojourn.p99 = mixture_quantile(mix, 0.99);
  }
  return estimate;
}

}  // namespace ss
