#include "core/latency.hpp"

#include <algorithm>
#include <cassert>

namespace ss {

namespace {
// Treat rho above this as saturated: the M/M/1 formula diverges while the
// real system is bounded by the finite buffer.
constexpr double kSaturationThreshold = 0.99;
}  // namespace

LatencyEstimate estimate_latency(const Topology& t, const SteadyStateResult& rates,
                                 const ReplicationPlan& plan, std::size_t buffer_capacity) {
  const std::size_t n = t.num_operators();
  assert(rates.rates.size() == n);

  LatencyEstimate estimate;
  estimate.response.assign(n, 0.0);
  estimate.window_delay.assign(n, 0.0);
  estimate.to_sink.assign(n, 0.0);

  for (OpIndex i = 0; i < n; ++i) {
    const OperatorSpec& op = t.op(i);
    const OperatorRates& r = rates.rates[i];
    const double mu = op.service_rate();
    const int replicas = plan.replicas_of(i);

    if (i == t.source()) {
      estimate.response[i] = op.service_time;  // generation time only
    } else if (r.utilization >= kSaturationThreshold) {
      // Full buffer ahead of the item, then its own service.
      estimate.response[i] = (static_cast<double>(buffer_capacity) + 1.0) / mu;
    } else {
      // Per-replica M/M/1: each replica sees lambda / n.
      const double lambda_per_replica = r.arrival / static_cast<double>(replicas);
      estimate.response[i] = 1.0 / (mu - std::min(lambda_per_replica, mu * 0.999));
    }

    // Windowed buffering: a result carries items that waited up to a full
    // slide; on average half a slide's worth of inter-arrival times.
    if (op.selectivity.input > 1.0 && r.arrival > 0.0) {
      estimate.window_delay[i] = (op.selectivity.input - 1.0) / (2.0 * r.arrival);
    }
  }

  // Backward pass over the topological order for remaining latency.
  const auto& order = t.topological_order();
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const OpIndex i = *it;
    double downstream = 0.0;
    for (const Edge& e : t.out_edges(i)) {
      downstream += e.probability * estimate.to_sink[e.to];
    }
    estimate.to_sink[i] = estimate.response[i] + estimate.window_delay[i] + downstream;
  }
  estimate.end_to_end = estimate.to_sink[t.source()];
  return estimate;
}

}  // namespace ss
