// Joint replica allocation across concurrent applications (multi-tenant
// extension of the paper's single-app pipeline).
//
// The paper sizes one topology at a time: Algorithms 1-3 choose replica
// counts and fusions against one machine.  A multi-tenant runtime shares
// one worker pool and one global replica budget between N topologies, so
// the interesting problem — following Benoit et al. (arXiv:0903.0710) —
// becomes the *joint* allocation: how many replicas does each app get?
//
// optimize_joint() solves it by water-filling on marginal gain:
//   1. solve each app's Alg. 1-3 unconstrained → its *desired* plan;
//   2. if the summed desire fits the budget, everyone gets what they want;
//   3. otherwise start every app at the sequential floor (one replica per
//      operator) and grant the remaining budget one replica at a time to
//      the app with the highest marginal utility — SLO-breached apps
//      first (ranked by predicted-p99 excess), then by weighted marginal
//      throughput gain.  Granting stops when the budget is spent or no
//      app gains from another replica (the water level).
//   4. each app's final share is re-solved exactly (Alg. 1-3 under
//      max_total_replicas = share), so partitions, fusions and latency
//      predictions are consistent with the granted plan.
//
// Feeding measured topologies (with_measured_profile) makes this the
// elastic claw-back step: an app whose measured load fell releases desire,
// and a breached neighbor's marginal gain wins the freed replicas at the
// next epoch.
#pragma once

#include <string>
#include <vector>

#include "core/deployment.hpp"
#include "core/optimizer.hpp"
#include "core/topology.hpp"

namespace ss {

/// One application competing for the shared budget.
struct TenantWorkload {
  Topology topology;
  AutoOptimizeOptions options{};
  /// Relative importance in the marginal-gain ranking (> 0); mirrors the
  /// runtime's stride-scheduling weight.
  double weight = 1.0;
  std::string name;
};

/// What one tenant was granted.
struct TenantAllocation {
  /// Full Alg. 1-3 solve under the granted share (plan, partitions,
  /// fusions, analysis, latency — all consistent with `granted_replicas`).
  AutoOptimizeResult result;
  /// The deployment of `result`, ready for Engine/TenantGroup.
  Deployment deployment;
  int desired_replicas = 0;  ///< unconstrained Alg. 1-3 total
  int granted_replicas = 0;  ///< total under the joint budget
  double predicted_throughput = 0.0;
  double predicted_p99 = 0.0;
  /// No SLO requested, or the granted plan is predicted to meet it.
  bool slo_feasible = true;
};

struct JointOptions {
  /// Total replicas across every tenant; <= 0 means unbounded (everyone
  /// gets their desired plan).
  int replica_budget = 0;
};

struct JointResult {
  std::vector<TenantAllocation> tenants;  ///< same order as the workloads
  int total_desired = 0;
  int total_granted = 0;
  /// The budget actually constrained someone (granted < desired somewhere).
  bool budget_binding = false;
};

JointResult optimize_joint(const std::vector<TenantWorkload>& workloads,
                           const JointOptions& options = {});

}  // namespace ss
