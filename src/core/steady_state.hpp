// Steady-state throughput analysis under backpressure (paper §3.1, Alg. 1).
//
// Given the topology (service rates, routing probabilities, selectivities)
// the analysis labels every operator with its steady-state arrival rate
// lambda, utilization rho and departure rate delta, honouring the
// Blocking-After-Service semantics: whenever a visited operator is saturated
// (rho > 1) the source departure rate is lowered by 1/rho (Theorem 3.2) and
// the traversal restarts, so that at fixpoint every operator has rho <= 1
// (Invariant 3.1).
//
// The same routine also evaluates *parallelized* topologies: a per-operator
// replica count and (for partitioned-stateful operators) the maximum key
// share p_max of the most loaded replica turn into an effective capacity
//   capacity_i = mu_i / p_max_i          with p_max_i = 1/n_i by default,
// which is exactly how Alg. 2 reasons about fission.
#pragma once

#include <cstddef>
#include <vector>

#include "core/topology.hpp"

namespace ss {

/// Per-operator replication configuration fed into the analysis.
struct ReplicationPlan {
  /// Number of replicas per operator; empty means all ones.
  std::vector<int> replicas;
  /// Fraction of the stream hitting the most loaded replica; empty means
  /// 1/replicas (perfect split).  Entries <= 0 also mean "perfect split".
  std::vector<double> max_share;

  static ReplicationPlan none() { return {}; }
  static ReplicationPlan uniform(std::size_t n, int replicas);

  [[nodiscard]] int replicas_of(OpIndex i) const;
  [[nodiscard]] double max_share_of(OpIndex i) const;
  /// Total replica count over `n` operators (operators not listed count 1).
  [[nodiscard]] int total_replicas(std::size_t n) const;
};

/// Steady-state rates of one operator.
struct OperatorRates {
  double arrival = 0.0;      ///< lambda: items entering per second
  double utilization = 0.0;  ///< rho = lambda / capacity
  double departure = 0.0;    ///< delta: results leaving per second (all edges)
  double capacity = 0.0;     ///< effective service capacity (mu / p_max)
  bool was_bottleneck = false;  ///< triggered a source correction at some visit
};

/// Result of Algorithm 1.
struct SteadyStateResult {
  std::vector<OperatorRates> rates;
  /// Corrected departure rate of the source = ingest throughput (tuples/s).
  double source_rate = 0.0;
  /// Sum of sink departure rates; equals source_rate under unit
  /// selectivities (Proposition 3.5).
  double sink_rate = 0.0;
  /// Operators that forced a correction, in discovery order (may repeat
  /// conceptually; stored deduplicated).
  std::vector<OpIndex> bottlenecks;
  /// Number of traversal restarts performed.
  int restarts = 0;

  [[nodiscard]] bool has_bottleneck() const { return !bottlenecks.empty(); }
  /// Predicted throughput as the paper reports it (tuples ingested per
  /// second at the source).
  [[nodiscard]] double throughput() const { return source_rate; }
};

/// Runs Algorithm 1 (with the §3.4 selectivity extensions) on `t`,
/// optionally under a replication plan.  O(|V| * |E|) worst case
/// (Proposition 3.4).
SteadyStateResult steady_state(const Topology& t, const ReplicationPlan& plan = {});

/// Throughput the topology would reach if nothing saturated: the source's
/// generation rate (times its selectivity gain).  Useful as the "ideal"
/// reference in the evaluation (§5.3).
double ideal_source_rate(const Topology& t);

}  // namespace ss
