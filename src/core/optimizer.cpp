#include "core/optimizer.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace ss {

const char* to_string(Objective objective) {
  switch (objective) {
    case Objective::kThroughput: return "throughput";
    case Objective::kLatency: return "latency";
    case Objective::kBalanced: return "balanced";
  }
  return "?";
}

std::optional<Objective> parse_objective(std::string_view text) {
  if (text == "throughput") return Objective::kThroughput;
  if (text == "latency") return Objective::kLatency;
  if (text == "balanced") return Objective::kBalanced;
  return std::nullopt;
}

Optimizer::Optimizer(Topology topology, std::string label) {
  versions_.push_back(TopologyVersion{std::move(label), std::move(topology), {}});
}

SteadyStateResult Optimizer::analyze() const {
  return steady_state(current().topology, current().plan);
}

BottleneckResult Optimizer::eliminate_bottlenecks(const BottleneckOptions& options) {
  BottleneckResult result = ss::eliminate_bottlenecks(current().topology, options);
  TopologyVersion version;
  version.label = current().label + "+fission";
  version.topology = current().topology;
  version.plan = result.plan;
  versions_.push_back(std::move(version));
  return result;
}

std::vector<FusionCandidate> Optimizer::fusion_candidates(
    const FusionSuggestOptions& options) const {
  return suggest_fusion_candidates(current().topology, analyze(), options);
}

FusionResult Optimizer::try_fusion(const FusionSpec& spec, bool force) {
  FusionResult result = apply_fusion(current().topology, spec);
  if (!result.introduces_bottleneck || force) {
    TopologyVersion version;
    version.label = current().label + "+fusion";
    version.topology = result.topology;
    version.plan = {};  // fusion starts from a sequential mapping again
    versions_.push_back(std::move(version));
  }
  return result;
}

std::string Optimizer::report() const {
  return format_analysis(current().topology, analyze(), current().plan);
}

namespace {

/// Raises the replication of operator `i` by one step, refreshing the key
/// partition for partitioned-stateful operators.  Returns false when the
/// operator cannot absorb another replica (source, stateful, or the key
/// domain does not split any further).
bool add_replica(const Topology& t, OpIndex i, ReplicationPlan& plan,
                 std::vector<KeyPartition>& partitions) {
  const OperatorSpec& op = t.op(i);
  if (i == t.source() || op.state == StateKind::kStateful) return false;
  const int next = plan.replicas_of(i) + 1;
  if (op.state == StateKind::kPartitionedStateful) {
    if (op.keys.empty()) return false;
    KeyPartition part = partition_keys(op.keys, next);
    if (part.replicas <= plan.replicas_of(i)) return false;  // keys exhausted
    plan.replicas[i] = part.replicas;
    plan.max_share[i] = part.max_share;
    partitions[i] = std::move(part);
  } else {
    plan.replicas[i] = next;
    plan.max_share[i] = 0.0;
  }
  return true;
}

}  // namespace

AutoOptimizeResult auto_optimize(const Topology& t, const AutoOptimizeOptions& options) {
  AutoOptimizeResult result;
  const std::size_t n = t.num_operators();
  const double slo = options.slo_p99;
  const bool latency_objective = options.objective == Objective::kLatency;
  const bool balanced_objective = options.objective == Objective::kBalanced;
  // Fitted variability terms apply to every unfused-topology estimate;
  // fused-graph evaluations keep the closed-form defaults (indices remap).
  const LatencyModelInputs* vary =
      options.variability.empty() ? nullptr : &options.variability;

  // Phase 1: fission (Alg. 2).
  const BottleneckResult fission = eliminate_bottlenecks(t, options.bottleneck);
  result.plan = fission.plan;
  result.partitions = fission.partitions;
  result.analysis = fission.analysis;
  result.additional_replicas = fission.additional_replicas;
  result.reaches_ideal = fission.reaches_ideal;

  // Phase 1b: latency-driven fission overshoot.  Alg. 2 sizes replication
  // for throughput (n = ceil(rho)), which leaves hot replicas just below
  // saturation -- long queues.  While the SLO is violated (or always,
  // under the latency objective, until returns diminish), add the single
  // replica that cuts the predicted end-to-end p99 the most, never
  // trading predicted throughput away and respecting the replica budget.
  result.latency = estimate_latency(t, result.analysis, result.plan,
                                    options.buffer_capacity, vary);
  if (slo > 0.0 || latency_objective || balanced_objective) {
    constexpr int kMaxOvershoot = 64;
    // kLatency chases 1% tail improvements; kBalanced only takes replicas
    // that each buy a >= 10% predicted-p99 cut.
    const double min_rel_gain = latency_objective ? 0.01 : 0.10;
    for (int round = 0; round < kMaxOvershoot; ++round) {
      const bool violated = slo > 0.0 && result.latency.sojourn.p99 > slo;
      if (!violated && !latency_objective && !balanced_objective) break;
      if (options.bottleneck.max_total_replicas &&
          result.plan.total_replicas(n) >= *options.bottleneck.max_total_replicas) {
        break;
      }
      double best_p99 = result.latency.sojourn.p99;
      OpIndex best_op = kInvalidOp;
      ReplicationPlan best_plan;
      std::vector<KeyPartition> best_parts;
      SteadyStateResult best_rates;
      LatencyEstimate best_est;
      for (OpIndex i = 0; i < n; ++i) {
        ReplicationPlan cand_plan = result.plan;
        std::vector<KeyPartition> cand_parts = result.partitions;
        if (!add_replica(t, i, cand_plan, cand_parts)) continue;
        SteadyStateResult cand_rates = steady_state(t, cand_plan);
        if (cand_rates.throughput() + 1e-9 < result.analysis.throughput()) continue;
        LatencyEstimate cand_est =
            estimate_latency(t, cand_rates, cand_plan, options.buffer_capacity, vary);
        if (cand_est.sojourn.p99 < best_p99) {
          best_p99 = cand_est.sojourn.p99;
          best_op = i;
          best_plan = std::move(cand_plan);
          best_parts = std::move(cand_parts);
          best_rates = std::move(cand_rates);
          best_est = std::move(cand_est);
        }
      }
      if (best_op == kInvalidOp) break;  // no replica improves the tail
      const double rel_gain =
          (result.latency.sojourn.p99 - best_p99) /
          std::max(result.latency.sojourn.p99, 1e-12);
      // Diminishing returns.  An SLO violation lowers the bar to 1% per
      // replica (any meaningful cut is worth an actor), but never below:
      // when the tail floor is the path itself rather than queueing, more
      // replicas cannot rescue the SLO -- stop and report infeasible
      // instead of burning the replica budget.
      if (rel_gain < (violated ? 0.01 : min_rel_gain)) break;
      result.plan = std::move(best_plan);
      result.partitions = std::move(best_parts);
      result.analysis = std::move(best_rates);
      result.latency = std::move(best_est);
      ++result.overshoot_replicas;
    }
  }

  // Phase 2: fusion of what is still sequential and under-utilized.
  // Candidates come from the post-fission rates so utilizations reflect
  // the replicated capacities; a candidate is accepted when it is
  // throughput-safe and none of its members were replicated (fused members
  // must stay sequential, paper §4.2) or already taken by another group.
  // With an SLO or the latency objective, each candidate is additionally
  // re-evaluated on the fused topology: a fusion whose meta-operator
  // response pushes the predicted end-to-end tail past the SLO (or, under
  // the latency objective, regresses it) is rejected even when
  // throughput-safe.
  if (options.enable_fusion) {
    const double base_p99 = result.latency.sojourn.p99;
    std::vector<bool> taken(n, false);
    const auto candidates =
        suggest_fusion_candidates(t, result.analysis, options.fusion);
    for (const FusionCandidate& candidate : candidates) {
      bool eligible = true;
      for (OpIndex m : candidate.spec.members) {
        if (taken[m] || result.plan.replicas_of(m) > 1) {
          eligible = false;
          break;
        }
      }
      if (!eligible || candidate.introduces_bottleneck) continue;
      if (slo > 0.0 || latency_objective || balanced_objective) {
        const FusionResult fused = apply_fusion(t, candidate.spec);
        ReplicationPlan fused_plan;
        fused_plan.replicas.assign(fused.topology.num_operators(), 1);
        fused_plan.max_share.assign(fused.topology.num_operators(), 0.0);
        for (OpIndex old = 0; old < n; ++old) {
          const OpIndex now = fused.remap[old];
          // Members are sequential (checked above), everything else maps
          // one-to-one, so the max over collisions is exact.
          fused_plan.replicas[now] =
              std::max(fused_plan.replicas[now], result.plan.replicas_of(old));
          fused_plan.max_share[now] = std::max(
              fused_plan.max_share[now],
              old < result.plan.max_share.size() ? result.plan.max_share[old] : 0.0);
        }
        const SteadyStateResult fused_rates = steady_state(fused.topology, fused_plan);
        const LatencyEstimate fused_est = estimate_latency(
            fused.topology, fused_rates, fused_plan, options.buffer_capacity);
        const double fused_p99 = fused_est.sojourn.p99;
        const bool pushes_past_slo = slo > 0.0 && fused_p99 > slo && base_p99 <= slo;
        const bool worsens_breach =
            slo > 0.0 && base_p99 > slo && fused_p99 > base_p99 * 1.001;
        const bool regresses_tail =
            (latency_objective && fused_p99 > base_p99 * 1.01) ||
            (balanced_objective && fused_p99 > base_p99 * 1.10);
        if (pushes_past_slo || worsens_breach || regresses_tail) {
          ++result.fusions_rejected_by_latency;
          continue;
        }
      }
      for (OpIndex m : candidate.spec.members) taken[m] = true;
      result.fusions.push_back(candidate.spec);
      result.actors_saved_by_fusion +=
          static_cast<int>(candidate.spec.members.size()) - 1;
    }
  }

  result.predicted_mean_latency = result.latency.sojourn_mean;
  result.predicted_p99 = result.latency.sojourn.p99;
  result.slo_feasible = slo <= 0.0 || result.predicted_p99 <= slo;
  return result;
}

Deployment deployment_of(const AutoOptimizeResult& result) {
  return Deployment{result.plan, result.fusions, result.partitions};
}

// ------------------------------------------- measured-rate re-optimization

Topology with_measured_profile(const Topology& t,
                               const std::vector<MeasuredOperator>& measured,
                               std::uint64_t min_samples) {
  if (min_samples == 0) min_samples = 1;
  Topology::Builder builder;
  for (OpIndex i = 0; i < t.num_operators(); ++i) {
    OperatorSpec spec = t.op(i);
    if (i < measured.size() && measured[i].samples >= min_samples) {
      const MeasuredOperator& m = measured[i];
      if (m.service_time > 0.0) spec.service_time = m.service_time;
      // Measured selectivity: results per input.  The source keeps its
      // declared selectivity — its "processed" count is its own generation,
      // which already realizes the declared rate gain.
      if (i != t.source() && m.processed_rate > 0.0 && m.emitted_rate > 0.0) {
        spec.selectivity = Selectivity{1.0, m.emitted_rate / m.processed_rate};
      }
    }
    builder.add_operator(std::move(spec));
  }
  for (const Edge& e : t.edges()) builder.add_edge(e.from, e.to, e.probability);
  return builder.build();
}

LatencyModelInputs fit_variability(const Topology& t, const SteadyStateResult& rates,
                                   const std::vector<MeasuredOperator>& measured) {
  const std::size_t n = t.num_operators();
  LatencyModelInputs inputs;
  bool any_cv2 = false;
  bool any_stall = false;
  for (std::size_t i = 0; i < std::min(n, measured.size()); ++i) {
    any_cv2 = any_cv2 || measured[i].cv2 >= 0.0;
    any_stall = any_stall || measured[i].queue_full_fraction >= 0.0;
  }
  if (any_stall) {
    inputs.stall_p.assign(n, -1.0);
    for (std::size_t i = 0; i < std::min(n, measured.size()); ++i) {
      if (measured[i].queue_full_fraction >= 0.0) {
        inputs.stall_p[i] = std::min(measured[i].queue_full_fraction, 1.0);
      }
    }
  }
  if (!any_cv2) return inputs;

  // QNA linking pass (Whitt's approximation, Marshall's formula): one
  // forward topological sweep propagates squared coefficients of variation
  // from each operator's measured *service* SCV to its children's
  // *arrival* SCV.  Departure: cd² = rho²·cs² + (1 − rho²)·ca².  A
  // probabilistic split with probability p thins to p·cd² + (1 − p); merged
  // inputs combine weighted by the arrival rate each edge carries.
  inputs.ca2.assign(n, -1.0);
  std::vector<double> num(n, 0.0);  // rate-weighted ca² numerators
  std::vector<double> den(n, 0.0);
  for (const OpIndex i : t.topological_order()) {
    const double ca2 =
        i == t.source() ? 1.0 : (den[i] > 0.0 ? num[i] / den[i] : 1.0);
    inputs.ca2[i] = ca2;
    const double cs2 = (i < measured.size() && measured[i].cv2 >= 0.0)
                           ? measured[i].cv2
                           : 1.0;
    const double rho = std::clamp(rates.rates[i].utilization, 0.0, 1.0);
    const double cd2 = rho * rho * cs2 + (1.0 - rho * rho) * ca2;
    const double out_rate = std::max(rates.rates[i].departure, 0.0);
    for (const Edge& e : t.out_edges(i)) {
      const double split = e.probability * cd2 + (1.0 - e.probability);
      num[e.to] += e.probability * out_rate * split;
      den[e.to] += e.probability * out_rate;
    }
  }
  return inputs;
}

ReoptimizeResult reoptimize(const Topology& declared, const Deployment& current,
                            const std::vector<MeasuredOperator>& measured,
                            const ReoptimizeOptions& options) {
  ReoptimizeResult result;
  const OpIndex source = declared.source();
  result.enough_samples =
      source < measured.size() && measured[source].samples >= options.min_samples;

  const Topology observed = with_measured_profile(declared, measured, options.min_samples);
  const SteadyStateResult current_rates = steady_state(observed, current.replication);
  result.predicted_current = current_rates.throughput();

  // Fit the model's variability terms to the measurements (when the caller
  // provided none explicitly): measured service SCVs and full-buffer
  // fractions sharpen both the running deployment's predicted tail and the
  // candidate search below.
  ReoptimizeOptions fitted = options;
  if (fitted.optimize.variability.empty()) {
    fitted.optimize.variability = fit_variability(observed, current_rates, measured);
  }
  const LatencyModelInputs* vary =
      fitted.optimize.variability.empty() ? nullptr : &fitted.optimize.variability;

  result.predicted_p99_current =
      estimate_latency(observed, current_rates, current.replication,
                       options.optimize.buffer_capacity, vary)
          .sojourn.p99;

  const AutoOptimizeResult optimized = auto_optimize(observed, fitted.optimize);
  result.next = deployment_of(optimized);
  result.analysis = optimized.analysis;
  result.predicted_next = optimized.analysis.throughput();
  result.predicted_p99_next = optimized.predicted_p99;
  result.diff = diff_deployments(declared.num_operators(), current, result.next);
  result.gain = result.predicted_current > 0.0
                    ? (result.predicted_next - result.predicted_current) /
                          result.predicted_current
                    : (result.predicted_next > 0.0 ? 1.0 : 0.0);

  // SLO check: trust the measured tail when the caller has one, fall back
  // to the model's prediction for the running deployment otherwise.
  const double slo = options.optimize.slo_p99;
  const double current_p99 =
      options.measured_p99 > 0.0 ? options.measured_p99 : result.predicted_p99_current;
  result.slo_breached = slo > 0.0 && current_p99 > slo;
  result.slo_feasible = optimized.slo_feasible;
  const bool repairs_tail =
      result.slo_breached &&
      (result.predicted_p99_next <= slo || result.predicted_p99_next < current_p99 * 0.9);
  result.beneficial = result.enough_samples && result.diff.any() &&
                      (result.gain > options.min_gain || repairs_tail);
  return result;
}

std::string format_analysis(const Topology& t, const SteadyStateResult& rates,
                            const ReplicationPlan& plan, const LatencyEstimate* latency) {
  std::ostringstream out;
  out << std::fixed;
  out << std::setw(18) << std::left << "operator" << std::right << std::setw(12) << "mu^-1(ms)"
      << std::setw(15) << "delta^-1(ms)" << std::setw(8) << "rho" << std::setw(6) << "n"
      << std::setw(14) << "state";
  if (latency != nullptr) out << std::setw(12) << "pred W(ms)";
  out << '\n';
  for (OpIndex i = 0; i < t.num_operators(); ++i) {
    const OperatorSpec& op = t.op(i);
    const OperatorRates& r = rates.rates[i];
    out << std::setw(18) << std::left << op.name << std::right << std::setprecision(2)
        << std::setw(12) << op.service_time * 1e3 << std::setw(15)
        << (r.departure > 0.0 ? 1e3 / r.departure : 0.0) << std::setw(8) << r.utilization
        << std::setw(6) << plan.replicas_of(i) << std::setw(14) << to_string(op.state);
    if (latency != nullptr) {
      out << std::setw(12) << latency->response.at(i) * 1e3;
      if (latency->congested.at(i)) out << "  <- congested";
    }
    if (r.was_bottleneck) out << "  <- bottleneck";
    out << '\n';
  }
  out << std::setprecision(1) << "predicted throughput: " << rates.throughput()
      << " tuples/s (restarts: " << rates.restarts << ")\n";
  if (latency != nullptr) {
    const LatencyPercentiles& p = latency->sojourn;
    out << std::setprecision(2) << "predicted latency: mean "
        << latency->sojourn_mean * 1e3 << " ms, p50 " << p.p50 * 1e3 << " ms, p95 "
        << p.p95 * 1e3 << " ms, p99 " << p.p99 * 1e3 << " ms\n";
  }
  return out.str();
}

}  // namespace ss
