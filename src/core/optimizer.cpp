#include "core/optimizer.hpp"

#include <iomanip>
#include <sstream>

namespace ss {

Optimizer::Optimizer(Topology topology, std::string label) {
  versions_.push_back(TopologyVersion{std::move(label), std::move(topology), {}});
}

SteadyStateResult Optimizer::analyze() const {
  return steady_state(current().topology, current().plan);
}

BottleneckResult Optimizer::eliminate_bottlenecks(const BottleneckOptions& options) {
  BottleneckResult result = ss::eliminate_bottlenecks(current().topology, options);
  TopologyVersion version;
  version.label = current().label + "+fission";
  version.topology = current().topology;
  version.plan = result.plan;
  versions_.push_back(std::move(version));
  return result;
}

std::vector<FusionCandidate> Optimizer::fusion_candidates(
    const FusionSuggestOptions& options) const {
  return suggest_fusion_candidates(current().topology, analyze(), options);
}

FusionResult Optimizer::try_fusion(const FusionSpec& spec, bool force) {
  FusionResult result = apply_fusion(current().topology, spec);
  if (!result.introduces_bottleneck || force) {
    TopologyVersion version;
    version.label = current().label + "+fusion";
    version.topology = result.topology;
    version.plan = {};  // fusion starts from a sequential mapping again
    versions_.push_back(std::move(version));
  }
  return result;
}

std::string Optimizer::report() const {
  return format_analysis(current().topology, analyze(), current().plan);
}

AutoOptimizeResult auto_optimize(const Topology& t, const AutoOptimizeOptions& options) {
  AutoOptimizeResult result;

  // Phase 1: fission (Alg. 2).
  const BottleneckResult fission = eliminate_bottlenecks(t, options.bottleneck);
  result.plan = fission.plan;
  result.partitions = fission.partitions;
  result.analysis = fission.analysis;
  result.additional_replicas = fission.additional_replicas;
  result.reaches_ideal = fission.reaches_ideal;
  if (!options.enable_fusion) return result;

  // Phase 2: fusion of what is still sequential and under-utilized.
  // Candidates come from the post-fission rates so utilizations reflect
  // the replicated capacities; a candidate is accepted when it is
  // throughput-safe and none of its members were replicated (fused members
  // must stay sequential, paper §4.2) or already taken by another group.
  std::vector<bool> taken(t.num_operators(), false);
  const auto candidates =
      suggest_fusion_candidates(t, fission.analysis, options.fusion);
  for (const FusionCandidate& candidate : candidates) {
    bool eligible = true;
    for (OpIndex m : candidate.spec.members) {
      if (taken[m] || result.plan.replicas_of(m) > 1) {
        eligible = false;
        break;
      }
    }
    if (!eligible || candidate.introduces_bottleneck) continue;
    for (OpIndex m : candidate.spec.members) taken[m] = true;
    result.fusions.push_back(candidate.spec);
    result.actors_saved_by_fusion += static_cast<int>(candidate.spec.members.size()) - 1;
  }
  return result;
}

Deployment deployment_of(const AutoOptimizeResult& result) {
  return Deployment{result.plan, result.fusions, result.partitions};
}

// ------------------------------------------- measured-rate re-optimization

Topology with_measured_profile(const Topology& t,
                               const std::vector<MeasuredOperator>& measured,
                               std::uint64_t min_samples) {
  if (min_samples == 0) min_samples = 1;
  Topology::Builder builder;
  for (OpIndex i = 0; i < t.num_operators(); ++i) {
    OperatorSpec spec = t.op(i);
    if (i < measured.size() && measured[i].samples >= min_samples) {
      const MeasuredOperator& m = measured[i];
      if (m.service_time > 0.0) spec.service_time = m.service_time;
      // Measured selectivity: results per input.  The source keeps its
      // declared selectivity — its "processed" count is its own generation,
      // which already realizes the declared rate gain.
      if (i != t.source() && m.processed_rate > 0.0 && m.emitted_rate > 0.0) {
        spec.selectivity = Selectivity{1.0, m.emitted_rate / m.processed_rate};
      }
    }
    builder.add_operator(std::move(spec));
  }
  for (const Edge& e : t.edges()) builder.add_edge(e.from, e.to, e.probability);
  return builder.build();
}

ReoptimizeResult reoptimize(const Topology& declared, const Deployment& current,
                            const std::vector<MeasuredOperator>& measured,
                            const ReoptimizeOptions& options) {
  ReoptimizeResult result;
  const OpIndex source = declared.source();
  result.enough_samples =
      source < measured.size() && measured[source].samples >= options.min_samples;

  const Topology observed = with_measured_profile(declared, measured, options.min_samples);
  result.predicted_current = steady_state(observed, current.replication).throughput();

  const AutoOptimizeResult optimized = auto_optimize(observed, options.optimize);
  result.next = deployment_of(optimized);
  result.analysis = optimized.analysis;
  result.predicted_next = optimized.analysis.throughput();
  result.diff = diff_deployments(declared.num_operators(), current, result.next);
  result.gain = result.predicted_current > 0.0
                    ? (result.predicted_next - result.predicted_current) /
                          result.predicted_current
                    : (result.predicted_next > 0.0 ? 1.0 : 0.0);
  result.beneficial =
      result.enough_samples && result.diff.any() && result.gain > options.min_gain;
  return result;
}

std::string format_analysis(const Topology& t, const SteadyStateResult& rates,
                            const ReplicationPlan& plan) {
  std::ostringstream out;
  out << std::fixed;
  out << std::setw(18) << std::left << "operator" << std::right << std::setw(12) << "mu^-1(ms)"
      << std::setw(15) << "delta^-1(ms)" << std::setw(8) << "rho" << std::setw(6) << "n"
      << std::setw(14) << "state" << '\n';
  for (OpIndex i = 0; i < t.num_operators(); ++i) {
    const OperatorSpec& op = t.op(i);
    const OperatorRates& r = rates.rates[i];
    out << std::setw(18) << std::left << op.name << std::right << std::setprecision(2)
        << std::setw(12) << op.service_time * 1e3 << std::setw(15)
        << (r.departure > 0.0 ? 1e3 / r.departure : 0.0) << std::setw(8) << r.utilization
        << std::setw(6) << plan.replicas_of(i) << std::setw(14) << to_string(op.state);
    if (r.was_bottleneck) out << "  <- bottleneck";
    out << '\n';
  }
  out << std::setprecision(1) << "predicted throughput: " << rates.throughput()
      << " tuples/s (restarts: " << rates.restarts << ")\n";
  return out.str();
}

}  // namespace ss
