#include "core/optimizer.hpp"

#include <iomanip>
#include <sstream>

namespace ss {

Optimizer::Optimizer(Topology topology, std::string label) {
  versions_.push_back(TopologyVersion{std::move(label), std::move(topology), {}});
}

SteadyStateResult Optimizer::analyze() const {
  return steady_state(current().topology, current().plan);
}

BottleneckResult Optimizer::eliminate_bottlenecks(const BottleneckOptions& options) {
  BottleneckResult result = ss::eliminate_bottlenecks(current().topology, options);
  TopologyVersion version;
  version.label = current().label + "+fission";
  version.topology = current().topology;
  version.plan = result.plan;
  versions_.push_back(std::move(version));
  return result;
}

std::vector<FusionCandidate> Optimizer::fusion_candidates(
    const FusionSuggestOptions& options) const {
  return suggest_fusion_candidates(current().topology, analyze(), options);
}

FusionResult Optimizer::try_fusion(const FusionSpec& spec, bool force) {
  FusionResult result = apply_fusion(current().topology, spec);
  if (!result.introduces_bottleneck || force) {
    TopologyVersion version;
    version.label = current().label + "+fusion";
    version.topology = result.topology;
    version.plan = {};  // fusion starts from a sequential mapping again
    versions_.push_back(std::move(version));
  }
  return result;
}

std::string Optimizer::report() const {
  return format_analysis(current().topology, analyze(), current().plan);
}

AutoOptimizeResult auto_optimize(const Topology& t, const AutoOptimizeOptions& options) {
  AutoOptimizeResult result;

  // Phase 1: fission (Alg. 2).
  const BottleneckResult fission = eliminate_bottlenecks(t, options.bottleneck);
  result.plan = fission.plan;
  result.partitions = fission.partitions;
  result.analysis = fission.analysis;
  result.additional_replicas = fission.additional_replicas;
  result.reaches_ideal = fission.reaches_ideal;
  if (!options.enable_fusion) return result;

  // Phase 2: fusion of what is still sequential and under-utilized.
  // Candidates come from the post-fission rates so utilizations reflect
  // the replicated capacities; a candidate is accepted when it is
  // throughput-safe and none of its members were replicated (fused members
  // must stay sequential, paper §4.2) or already taken by another group.
  std::vector<bool> taken(t.num_operators(), false);
  const auto candidates =
      suggest_fusion_candidates(t, fission.analysis, options.fusion);
  for (const FusionCandidate& candidate : candidates) {
    bool eligible = true;
    for (OpIndex m : candidate.spec.members) {
      if (taken[m] || result.plan.replicas_of(m) > 1) {
        eligible = false;
        break;
      }
    }
    if (!eligible || candidate.introduces_bottleneck) continue;
    for (OpIndex m : candidate.spec.members) taken[m] = true;
    result.fusions.push_back(candidate.spec);
    result.actors_saved_by_fusion += static_cast<int>(candidate.spec.members.size()) - 1;
  }
  return result;
}

std::string format_analysis(const Topology& t, const SteadyStateResult& rates,
                            const ReplicationPlan& plan) {
  std::ostringstream out;
  out << std::fixed;
  out << std::setw(18) << std::left << "operator" << std::right << std::setw(12) << "mu^-1(ms)"
      << std::setw(15) << "delta^-1(ms)" << std::setw(8) << "rho" << std::setw(6) << "n"
      << std::setw(14) << "state" << '\n';
  for (OpIndex i = 0; i < t.num_operators(); ++i) {
    const OperatorSpec& op = t.op(i);
    const OperatorRates& r = rates.rates[i];
    out << std::setw(18) << std::left << op.name << std::right << std::setprecision(2)
        << std::setw(12) << op.service_time * 1e3 << std::setw(15)
        << (r.departure > 0.0 ? 1e3 / r.departure : 0.0) << std::setw(8) << r.utilization
        << std::setw(6) << plan.replicas_of(i) << std::setw(14) << to_string(op.state);
    if (r.was_bottleneck) out << "  <- bottleneck";
    out << '\n';
  }
  out << std::setprecision(1) << "predicted throughput: " << rates.throughput()
      << " tuples/s (restarts: " << rates.restarts << ")\n";
  return out.str();
}

}  // namespace ss
