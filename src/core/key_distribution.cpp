#include "core/key_distribution.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "core/error.hpp"

namespace ss {

KeyDistribution::KeyDistribution(std::vector<double> frequencies)
    : probabilities_(std::move(frequencies)) {
  require(!probabilities_.empty(), "KeyDistribution: empty frequency vector");
  double total = 0.0;
  for (double f : probabilities_) {
    require(f >= 0.0, "KeyDistribution: negative frequency");
    total += f;
  }
  require(total > 0.0, "KeyDistribution: frequencies sum to zero");
  for (double& f : probabilities_) f /= total;
}

KeyDistribution KeyDistribution::uniform(std::size_t num_keys) {
  require(num_keys > 0, "KeyDistribution::uniform: num_keys must be > 0");
  return KeyDistribution(std::vector<double>(num_keys, 1.0));
}

KeyDistribution KeyDistribution::zipf(std::size_t num_keys, double alpha) {
  require(num_keys > 0, "KeyDistribution::zipf: num_keys must be > 0");
  require(alpha > 0.0, "KeyDistribution::zipf: alpha must be > 0");
  std::vector<double> freq(num_keys);
  for (std::size_t k = 0; k < num_keys; ++k) {
    freq[k] = 1.0 / std::pow(static_cast<double>(k + 1), alpha);
  }
  return KeyDistribution(std::move(freq));
}

double KeyDistribution::max_probability() const {
  if (probabilities_.empty()) return 0.0;
  return *std::max_element(probabilities_.begin(), probabilities_.end());
}

}  // namespace ss
