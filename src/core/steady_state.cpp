#include "core/steady_state.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "core/error.hpp"

namespace ss {

namespace {
// Numerical slack: after a correction the recomputed utilization of the
// corrected operator is exactly 1 up to floating-point drift; treating
// rho in (1, 1+eps] as saturated-but-not-bottleneck keeps Alg. 1 finite.
constexpr double kRhoTolerance = 1e-9;
}  // namespace

ReplicationPlan ReplicationPlan::uniform(std::size_t n, int replica_count) {
  ReplicationPlan plan;
  plan.replicas.assign(n, replica_count);
  return plan;
}

int ReplicationPlan::replicas_of(OpIndex i) const {
  if (i >= replicas.size()) return 1;
  return std::max(1, replicas[i]);
}

double ReplicationPlan::max_share_of(OpIndex i) const {
  if (i < max_share.size() && max_share[i] > 0.0) return max_share[i];
  return 1.0 / static_cast<double>(replicas_of(i));
}

int ReplicationPlan::total_replicas(std::size_t n) const {
  int total = 0;
  for (OpIndex i = 0; i < n; ++i) total += replicas_of(i);
  return total;
}

double ideal_source_rate(const Topology& t) {
  const OperatorSpec& src = t.op(t.source());
  return src.service_rate() * src.selectivity.rate_gain();
}

SteadyStateResult steady_state(const Topology& t, const ReplicationPlan& plan) {
  const std::size_t n = t.num_operators();
  const OpIndex source = t.source();
  const std::vector<OpIndex>& order = t.topological_order();
  assert(!order.empty() && order.front() == source);

  SteadyStateResult result;
  result.rates.assign(n, OperatorRates{});

  // Effective capacity of every operator under the replication plan.
  std::vector<double> capacity(n);
  for (OpIndex i = 0; i < n; ++i) {
    capacity[i] = t.op(i).service_rate() / plan.max_share_of(i);
    result.rates[i].capacity = capacity[i];
  }

  std::vector<bool> flagged(n, false);

  // delta_1 starts at the source's own generation rate (Alg. 1 line 1) and
  // is only ever lowered by corrections (Theorem 3.2).
  double source_delta = capacity[source] * t.op(source).selectivity.rate_gain();

  // Each restart strictly lowers source_delta and pins one more operator at
  // rho = 1, so n restarts bound the loop (Propositions 3.3-3.4).  The +n
  // slack absorbs tolerance-boundary repeats.
  const int max_restarts = static_cast<int>(2 * n + 8);
  bool done = false;
  std::vector<double> delta(n, 0.0);
  while (!done) {
    done = true;
    delta.assign(n, 0.0);
    delta[source] = source_delta;
    result.rates[source].arrival = source_delta / t.op(source).selectivity.rate_gain();
    result.rates[source].utilization =
        result.rates[source].arrival / capacity[source];
    result.rates[source].departure = source_delta;

    for (std::size_t pos = 1; pos < order.size(); ++pos) {
      const OpIndex i = order[pos];
      double lambda = 0.0;
      for (const Edge& e : t.in_edges(i)) lambda += delta[e.from] * e.probability;
      const double rho = lambda / capacity[i];
      result.rates[i].arrival = lambda;
      result.rates[i].utilization = std::min(rho, 1.0);
      if (rho > 1.0 + kRhoTolerance) {
        // Bottleneck: lower the source rate by 1/rho and restart (Thm 3.2).
        require(result.restarts < max_restarts,
                "steady_state: correction loop did not converge (numerical issue)");
        source_delta /= rho;
        ++result.restarts;
        if (!flagged[i]) {
          flagged[i] = true;
          result.bottlenecks.push_back(i);
          result.rates[i].was_bottleneck = true;
        }
        done = false;
        break;
      }
      const double served = std::min(lambda, capacity[i]);
      delta[i] = served * t.op(i).selectivity.rate_gain();
      result.rates[i].departure = delta[i];
    }

    if (done) {
      result.source_rate = source_delta;
      result.sink_rate = 0.0;
      for (OpIndex s : t.sinks()) result.sink_rate += delta[s];
    }
  }

  // Invariant 3.1 at fixpoint: every operator has rho <= 1.
#ifndef NDEBUG
  for (const OperatorRates& r : result.rates) {
    assert(r.utilization <= 1.0 + kRhoTolerance);
  }
#endif
  return result;
}

}  // namespace ss
