// Non-throwing structural validation of topology drafts.
//
// Topology::Builder::build() throws on the first violation; tools (XML
// import, the GUI-equivalent CLI front-ends) often want the complete list of
// problems instead.  This module re-runs the same checks and reports all of
// them.
#pragma once

#include <string>
#include <vector>

#include "core/topology.hpp"

namespace ss {

/// One detected constraint violation.
struct ValidationIssue {
  enum class Severity { kError, kWarning };
  Severity severity = Severity::kError;
  std::string message;
};

/// Outcome of validating an operator/edge draft.
struct ValidationReport {
  std::vector<ValidationIssue> issues;

  [[nodiscard]] bool ok() const;
  [[nodiscard]] std::size_t error_count() const;
  [[nodiscard]] std::size_t warning_count() const;
  /// All messages joined by newlines (errors first).
  [[nodiscard]] std::string to_string() const;
};

/// Validates a draft graph (operators + edges) against the paper §3.1
/// constraints: non-empty, unique names, positive service times, valid edge
/// endpoints, no self-loops or duplicate edges, single source, acyclic,
/// all vertices reachable from the source, out-probabilities summing to 1,
/// key distributions present on partitioned-stateful operators.
/// Warnings flag suspicious-but-legal inputs (e.g. probability 1 fan-out of
/// size one with probability < 1 after normalization hints).
ValidationReport validate_draft(const std::vector<OperatorSpec>& ops,
                                const std::vector<Edge>& edges);

}  // namespace ss
