// KeyPartitioning() heuristic of Algorithm 2 (paper §3.2).
//
// For a partitioned-stateful bottleneck with utilization rho, fission wants
// ceil(rho) replicas, each owning a subset of the key domain.  The input
// stream cannot be split better than the key frequencies allow, so the
// heuristic assigns keys to replicas trying to make the most loaded replica
// receive a fraction of items as close as possible to 1/n.  We use greedy
// longest-processing-time (LPT) assignment: keys sorted by decreasing
// frequency, each placed on the currently least-loaded replica — the classic
// 4/3-approximation for makespan, which is what [Gedik, VLDBJ'14] style
// partitioning functions approximate as well.
#pragma once

#include <vector>

#include "core/key_distribution.hpp"

namespace ss {

/// Outcome of partitioning a key domain over replicas.
struct KeyPartition {
  /// replica_of_key[k] is the replica index (0-based) owning key k.
  std::vector<int> replica_of_key;
  /// Number of replicas actually used (<= requested; a replica may end up
  /// empty when keys are fewer or extremely skewed, empty replicas are
  /// dropped).
  int replicas = 1;
  /// Fraction of the input stream received by the most loaded replica.
  double max_share = 1.0;
};

/// Partitions `keys` over (at most) `requested_replicas` replicas with the
/// greedy LPT heuristic.  Throws ss::Error if the distribution is empty or
/// requested_replicas < 1.
KeyPartition partition_keys(const KeyDistribution& keys, int requested_replicas);

}  // namespace ss
