#include "core/validate.hpp"

#include <cmath>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

namespace ss {

namespace {
constexpr double kProbabilityTolerance = 1e-6;

void add_error(ValidationReport& report, std::string message) {
  report.issues.push_back({ValidationIssue::Severity::kError, std::move(message)});
}

void add_warning(ValidationReport& report, std::string message) {
  report.issues.push_back({ValidationIssue::Severity::kWarning, std::move(message)});
}
}  // namespace

bool ValidationReport::ok() const { return error_count() == 0; }

std::size_t ValidationReport::error_count() const {
  std::size_t n = 0;
  for (const auto& issue : issues) {
    if (issue.severity == ValidationIssue::Severity::kError) ++n;
  }
  return n;
}

std::size_t ValidationReport::warning_count() const { return issues.size() - error_count(); }

std::string ValidationReport::to_string() const {
  std::ostringstream out;
  for (const auto& issue : issues) {
    if (issue.severity == ValidationIssue::Severity::kError) out << "error: " << issue.message << '\n';
  }
  for (const auto& issue : issues) {
    if (issue.severity == ValidationIssue::Severity::kWarning) {
      out << "warning: " << issue.message << '\n';
    }
  }
  return out.str();
}

ValidationReport validate_draft(const std::vector<OperatorSpec>& ops,
                                const std::vector<Edge>& edges) {
  ValidationReport report;
  if (ops.empty()) {
    add_error(report, "topology must contain at least one operator");
    return report;
  }
  const std::size_t n = ops.size();

  std::unordered_set<std::string> names;
  for (const OperatorSpec& op : ops) {
    if (op.name.empty()) add_error(report, "operator with empty name");
    if (!names.insert(op.name).second) add_error(report, "duplicate operator name '" + op.name + "'");
    if (op.service_time <= 0.0) {
      add_error(report, "operator '" + op.name + "' has non-positive service time");
    }
    if (op.selectivity.input <= 0.0 || op.selectivity.output <= 0.0) {
      add_error(report, "operator '" + op.name + "' has non-positive selectivity");
    }
    if (op.state == StateKind::kPartitionedStateful && op.keys.empty()) {
      add_error(report, "partitioned-stateful operator '" + op.name + "' lacks a key distribution");
    }
    if (op.state != StateKind::kPartitionedStateful && !op.keys.empty()) {
      add_warning(report, "operator '" + op.name + "' carries a key distribution but is " +
                              ss::to_string(op.state));
    }
  }

  std::unordered_set<std::uint64_t> seen_edges;
  std::vector<double> out_sum(n, 0.0);
  std::vector<std::size_t> out_count(n, 0);
  std::vector<std::size_t> in_count(n, 0);
  bool endpoints_ok = true;
  for (const Edge& e : edges) {
    if (e.from >= n || e.to >= n) {
      add_error(report, "edge endpoint out of range");
      endpoints_ok = false;
      continue;
    }
    if (e.from == e.to) add_error(report, "self-loop on operator '" + ops[e.from].name + "'");
    const std::uint64_t key = (static_cast<std::uint64_t>(e.from) << 32) | e.to;
    if (!seen_edges.insert(key).second) {
      add_error(report,
                "duplicate edge '" + ops[e.from].name + "' -> '" + ops[e.to].name + "'");
    }
    if (e.probability <= 0.0 || e.probability > 1.0 + kProbabilityTolerance) {
      add_error(report, "edge '" + ops[e.from].name + "' -> '" + ops[e.to].name +
                            "' has probability outside (0, 1]");
    }
    out_sum[e.from] += e.probability;
    ++out_count[e.from];
    ++in_count[e.to];
  }
  if (!endpoints_ok) return report;

  for (OpIndex i = 0; i < n; ++i) {
    if (out_count[i] == 0) continue;
    if (std::abs(out_sum[i] - 1.0) > kProbabilityTolerance * static_cast<double>(out_count[i] + 1)) {
      add_error(report, "out-edge probabilities of '" + ops[i].name + "' sum to " +
                            std::to_string(out_sum[i]) + ", expected 1.0");
    }
  }

  std::vector<OpIndex> roots;
  for (OpIndex i = 0; i < n; ++i) {
    if (in_count[i] == 0) roots.push_back(i);
  }
  if (roots.empty()) {
    add_error(report, "no source vertex: every operator has an input edge (cycle)");
  } else if (roots.size() > 1) {
    std::string msg = "multiple sources:";
    for (OpIndex r : roots) msg += " '" + ops[r].name + "'";
    add_error(report, msg + "; add a fictitious source");
  }

  auto order = topological_sort(n, edges);
  if (!order) add_error(report, "the graph contains a cycle");

  if (roots.size() == 1 && order) {
    std::vector<bool> reachable(n, false);
    std::vector<std::vector<OpIndex>> adjacency(n);
    for (const Edge& e : edges) adjacency[e.from].push_back(e.to);
    std::vector<OpIndex> stack{roots[0]};
    reachable[roots[0]] = true;
    while (!stack.empty()) {
      OpIndex u = stack.back();
      stack.pop_back();
      for (OpIndex v : adjacency[u]) {
        if (!reachable[v]) {
          reachable[v] = true;
          stack.push_back(v);
        }
      }
    }
    for (OpIndex i = 0; i < n; ++i) {
      if (!reachable[i]) {
        add_error(report, "operator '" + ops[i].name + "' is not reachable from the source");
      }
    }
    // Sinks with selectivity annotations that can never matter.
    for (OpIndex i = 0; i < n; ++i) {
      if (out_count[i] == 0 && ops[i].selectivity.output != 1.0) {
        add_warning(report, "sink '" + ops[i].name + "' has output selectivity != 1 (unused)");
      }
    }
  }
  return report;
}

}  // namespace ss
