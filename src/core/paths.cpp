#include "core/paths.hpp"

#include "core/error.hpp"

namespace ss {

namespace {

std::vector<double> coefficients_impl(const Topology& t, bool with_selectivity) {
  std::vector<double> coeff(t.num_operators(), 0.0);
  coeff[t.source()] = 1.0;
  for (OpIndex u : t.topological_order()) {
    double outflow = coeff[u];
    if (with_selectivity) outflow *= t.op(u).selectivity.rate_gain();
    for (const Edge& e : t.out_edges(u)) {
      coeff[e.to] += outflow * e.probability;
    }
  }
  return coeff;
}

void enumerate_rec(const Topology& t, OpIndex at, OpIndex to, Path& current,
                   std::vector<Path>& result, std::size_t max_paths) {
  current.push_back(at);
  if (at == to) {
    require(result.size() < max_paths, "enumerate_paths: path count exceeds limit");
    result.push_back(current);
  } else {
    for (const Edge& e : t.out_edges(at)) {
      enumerate_rec(t, e.to, to, current, result, max_paths);
    }
  }
  current.pop_back();
}

}  // namespace

std::vector<double> arrival_coefficients(const Topology& t) {
  return coefficients_impl(t, /*with_selectivity=*/false);
}

std::vector<double> arrival_coefficients_with_selectivity(const Topology& t) {
  return coefficients_impl(t, /*with_selectivity=*/true);
}

std::vector<Path> enumerate_paths(const Topology& t, OpIndex from, OpIndex to,
                                  std::size_t max_paths) {
  require(from < t.num_operators() && to < t.num_operators(),
          "enumerate_paths: vertex out of range");
  std::vector<Path> result;
  Path current;
  enumerate_rec(t, from, to, current, result, max_paths);
  return result;
}

double path_probability(const Topology& t, const Path& path) {
  require(!path.empty(), "path_probability: empty path");
  double p = 1.0;
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    double edge_p = t.edge_probability(path[i], path[i + 1]);
    require(edge_p > 0.0, "path_probability: path uses a non-existent edge");
    p *= edge_p;
  }
  return p;
}

}  // namespace ss
