// Code generation (paper §4.2, the SS2Akka analogue).
//
// Once the user settles on an optimized version, SpinStreams generates the
// program that runs it on the target SPS.  Our target SPS is the bundled
// ss::runtime actor engine: the generated translation unit rebuilds the
// topology, the replication plan and the fusion groups, resolves operator
// implementations through ss::ops::Registry (by the `impl` field of each
// OperatorSpec, falling back to profile-faithful synthetic operators), and
// runs the engine for a configurable duration printing measured rates.
//
// The emitted source is plain C++20 against the public headers of this
// repository, so it can be dropped into examples/ and compiled as-is;
// examples/generated_pipeline.cpp is exactly such an artifact.
#pragma once

#include <string>
#include <vector>

#include "core/fusion.hpp"
#include "core/steady_state.hpp"
#include "core/topology.hpp"

namespace ss {

struct CodegenOptions {
  /// Name used in the banner and main() comment.
  std::string app_name = "spinstreams_app";
  /// How long the generated program runs before printing statistics.
  double run_seconds = 10.0;
  /// Mailbox capacity configured in the generated engine.
  std::size_t mailbox_capacity = 64;
  /// Send timeout (seconds) after which an item is dropped (paper §5.1 uses
  /// five seconds).
  double send_timeout_seconds = 5.0;
};

/// Emits a complete C++ translation unit executing `t` under `plan` with the
/// given fusion groups on the ss::runtime engine.
std::string generate_runtime_source(const Topology& t, const ReplicationPlan& plan,
                                    const std::vector<FusionSpec>& fusions,
                                    const CodegenOptions& options = {});

}  // namespace ss
