#include "core/joint.hpp"

#include <algorithm>
#include <limits>

#include "core/bottleneck.hpp"
#include "core/latency.hpp"
#include "core/steady_state.hpp"

namespace ss {

namespace {

/// Cheap evaluation of one tenant at `share` total replicas: the desired
/// plan scaled down by hold-off replication, analyzed by Alg. 1.  Used
/// inside the water-filling loop; the final grant is re-solved exactly.
struct ShareEval {
  double throughput = 0.0;
  double p99 = 0.0;
};

ShareEval evaluate_share(const TenantWorkload& w, const ReplicationPlan& desired,
                         int share) {
  const ReplicationPlan plan = apply_replica_budget(w.topology, desired, share);
  const SteadyStateResult rates = steady_state(w.topology, plan);
  ShareEval eval;
  eval.throughput = rates.throughput();
  if (w.options.slo_p99 > 0.0) {
    const LatencyEstimate est =
        estimate_latency(w.topology, rates, plan, w.options.buffer_capacity);
    eval.p99 = est.sojourn.p99;
  }
  return eval;
}

/// Exact solve of one tenant capped at `share` replicas.
TenantAllocation solve_share(const TenantWorkload& w, int share, int desired_total) {
  TenantWorkload capped = w;
  capped.options.bottleneck.max_total_replicas = share;
  TenantAllocation alloc;
  alloc.result = auto_optimize(capped.topology, capped.options);
  alloc.deployment = deployment_of(alloc.result);
  alloc.desired_replicas = desired_total;
  alloc.granted_replicas =
      alloc.result.plan.total_replicas(w.topology.num_operators());
  alloc.predicted_throughput = alloc.result.analysis.throughput();
  alloc.predicted_p99 = alloc.result.predicted_p99;
  alloc.slo_feasible = alloc.result.slo_feasible;
  return alloc;
}

}  // namespace

JointResult optimize_joint(const std::vector<TenantWorkload>& workloads,
                           const JointOptions& options) {
  JointResult result;
  const std::size_t n = workloads.size();
  if (n == 0) return result;

  // Step 1: every tenant's unconstrained desire.
  std::vector<AutoOptimizeResult> desired(n);
  std::vector<int> want(n, 0);
  int total_want = 0;
  for (std::size_t i = 0; i < n; ++i) {
    desired[i] = auto_optimize(workloads[i].topology, workloads[i].options);
    want[i] = desired[i].plan.total_replicas(workloads[i].topology.num_operators());
    total_want += want[i];
  }
  result.total_desired = total_want;

  // Step 2: budget slack (or no budget) — everyone gets their desire.
  if (options.replica_budget <= 0 || total_want <= options.replica_budget) {
    for (std::size_t i = 0; i < n; ++i) {
      TenantAllocation alloc;
      alloc.result = std::move(desired[i]);
      alloc.deployment = deployment_of(alloc.result);
      alloc.desired_replicas = want[i];
      alloc.granted_replicas = want[i];
      alloc.predicted_throughput = alloc.result.analysis.throughput();
      alloc.predicted_p99 = alloc.result.predicted_p99;
      alloc.slo_feasible = alloc.result.slo_feasible;
      result.total_granted += want[i];
      result.tenants.push_back(std::move(alloc));
    }
    return result;
  }

  // Step 3: water-filling.  Shares start at the sequential floor; each
  // round grants one replica to the most deserving tenant.
  result.budget_binding = true;
  std::vector<int> share(n, 0);
  std::vector<ShareEval> at_share(n);
  int spent = 0;
  for (std::size_t i = 0; i < n; ++i) {
    share[i] = static_cast<int>(workloads[i].topology.num_operators());
    share[i] = std::min(share[i], want[i]);  // desire below the floor: keep it
    at_share[i] = evaluate_share(workloads[i], desired[i].plan, share[i]);
    spent += share[i];
  }
  while (spent < options.replica_budget) {
    // SLO-breached tenants outrank throughput seekers; among the breached
    // the largest relative p99 excess wins, among the rest the largest
    // weighted marginal throughput gain.
    std::size_t best = n;
    bool best_breached = false;
    double best_key = 0.0;
    std::vector<ShareEval> next_eval(n);
    for (std::size_t i = 0; i < n; ++i) {
      if (share[i] >= want[i]) continue;  // satisfied: more buys nothing
      next_eval[i] = evaluate_share(workloads[i], desired[i].plan, share[i] + 1);
      const double slo = workloads[i].options.slo_p99;
      const bool breached = slo > 0.0 && at_share[i].p99 > slo;
      double key;
      if (breached) {
        // Grant only if the extra replica actually improves the tail.
        if (next_eval[i].p99 >= at_share[i].p99 &&
            next_eval[i].throughput <= at_share[i].throughput) {
          continue;
        }
        key = (at_share[i].p99 - slo) / slo * workloads[i].weight;
      } else {
        key = workloads[i].weight * (next_eval[i].throughput - at_share[i].throughput);
        if (key <= 0.0) continue;  // water level: no gain left here
      }
      if (best == n || (breached && !best_breached) ||
          (breached == best_breached && key > best_key)) {
        best = i;
        best_breached = breached;
        best_key = key;
      }
    }
    if (best == n) break;  // nobody gains from another replica
    ++share[best];
    at_share[best] = next_eval[best];
    ++spent;
  }

  // Step 4: exact solve at the granted shares.
  for (std::size_t i = 0; i < n; ++i) {
    TenantAllocation alloc = solve_share(workloads[i], share[i], want[i]);
    result.total_granted += alloc.granted_replicas;
    result.tenants.push_back(std::move(alloc));
  }
  return result;
}

}  // namespace ss
