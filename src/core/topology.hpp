// The flow-graph model of a streaming application (paper §3.1).
//
// A topology is a rooted acyclic directed graph: vertices are operators,
// edges are unidirectional streams annotated with a routing probability
// (every result leaves on exactly one out-edge, chosen with that
// probability).  A valid topology has a single source, every vertex
// reachable from it, and out-edge probabilities summing to one.
//
// Topology is immutable after Builder::build(); all analyses (steady-state,
// bottleneck elimination, fusion) consume it by const reference and produce
// result objects or new topologies.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "core/key_distribution.hpp"
#include "core/types.hpp"

namespace ss {

/// Static description of one operator: everything the cost models need.
struct OperatorSpec {
  /// Human-readable unique name (used in reports, XML and code generation).
  std::string name;

  /// Average service time per input item, in seconds (the inverse of the
  /// service rate mu).  For the source this is the inter-generation time.
  double service_time = 1.0;

  /// State classification driving the fission options (paper §3.2).
  StateKind state = StateKind::kStateless;

  /// Input/output selectivity (paper §3.4); {1,1} for map-like operators.
  Selectivity selectivity{};

  /// Key frequency distribution; meaningful only for partitioned-stateful
  /// operators (empty otherwise).
  KeyDistribution keys{};

  /// Logical operator type (a key into ss::ops::Registry); optional, used
  /// by code generation and the testbed generator.
  std::string impl{};

  [[nodiscard]] double service_rate() const { return 1.0 / service_time; }
};

/// Directed edge with routing probability.
struct Edge {
  OpIndex from = kInvalidOp;
  OpIndex to = kInvalidOp;
  double probability = 1.0;
};

/// Immutable rooted-acyclic-flow-graph; see file comment.
class Topology {
 public:
  class Builder;

  /// An empty topology; only useful as a placeholder to assign into
  /// (result structs default-construct one).  Every built topology has at
  /// least one operator.
  Topology() = default;

  [[nodiscard]] std::size_t num_operators() const { return ops_.size(); }
  [[nodiscard]] std::size_t num_edges() const { return edges_.size(); }

  [[nodiscard]] const OperatorSpec& op(OpIndex i) const { return ops_.at(i); }
  [[nodiscard]] const std::vector<OperatorSpec>& operators() const { return ops_; }
  [[nodiscard]] const std::vector<Edge>& edges() const { return edges_; }

  /// Out-edges of `i` in insertion order.
  [[nodiscard]] const std::vector<Edge>& out_edges(OpIndex i) const { return out_.at(i); }
  /// In-edges of `i` in insertion order.
  [[nodiscard]] const std::vector<Edge>& in_edges(OpIndex i) const { return in_.at(i); }

  /// The unique source vertex (no input edges).
  [[nodiscard]] OpIndex source() const { return source_; }
  /// All vertices without out-edges.
  [[nodiscard]] const std::vector<OpIndex>& sinks() const { return sinks_; }

  [[nodiscard]] OpRole role(OpIndex i) const;

  /// A topological ordering starting at the source (computed at build time).
  [[nodiscard]] const std::vector<OpIndex>& topological_order() const { return topo_order_; }

  /// Probability of edge (from, to); zero if the edge does not exist.
  [[nodiscard]] double edge_probability(OpIndex from, OpIndex to) const;

  /// True if an edge (from, to) exists.
  [[nodiscard]] bool has_edge(OpIndex from, OpIndex to) const;

  /// Index of the operator with the given name, if any.
  [[nodiscard]] std::optional<OpIndex> find(const std::string& name) const;

 private:
  friend class Builder;

  std::vector<OperatorSpec> ops_;
  std::vector<Edge> edges_;
  std::vector<std::vector<Edge>> out_;
  std::vector<std::vector<Edge>> in_;
  std::vector<OpIndex> topo_order_;
  std::vector<OpIndex> sinks_;
  OpIndex source_ = kInvalidOp;
};

/// Incremental construction of a Topology.  build() validates the structural
/// constraints of paper §3.1 and throws ss::Error on violation.
class Topology::Builder {
 public:
  /// Adds an operator and returns its index.  Names must be unique.
  OpIndex add_operator(OperatorSpec spec);

  /// Convenience overload for the common case.
  OpIndex add_operator(std::string name, double service_time,
                       StateKind state = StateKind::kStateless,
                       Selectivity selectivity = {});

  /// Adds an edge with routing probability (default 1.0).  Probabilities of
  /// all out-edges of a vertex must sum to 1 at build() time.
  Builder& add_edge(OpIndex from, OpIndex to, double probability = 1.0);

  /// Rescales the out-edge probabilities of every vertex to sum to one.
  /// Useful when edge annotations come from measured frequencies.
  Builder& normalize_probabilities();

  /// If the graph has multiple roots, adds a zero-cost fictitious source
  /// connected to every root with probabilities proportional to the roots'
  /// service rates (paper §3.1 suggests this workaround for multi-source
  /// graphs).  `service_time` is the inter-generation time of the combined
  /// source.  No-op when the graph already has a single root.
  Builder& add_fictitious_source(double service_time, const std::string& name = "__source__");

  [[nodiscard]] std::size_t num_operators() const { return ops_.size(); }

  /// Validates and produces the immutable topology.  Throws ss::Error
  /// describing the first violated constraint.
  [[nodiscard]] Topology build() const;

 private:
  std::vector<OperatorSpec> ops_;
  std::vector<Edge> edges_;
};

/// Returns a topological order of `edges` over `n` vertices, or std::nullopt
/// if the graph has a cycle (Kahn's algorithm; stable: ties broken by index).
std::optional<std::vector<OpIndex>> topological_sort(std::size_t n, const std::vector<Edge>& edges);

}  // namespace ss
