// Path machinery behind Theorem 3.2 and Proposition 3.5.
//
// The arrival rate of an operator under no backpressure is
//   lambda_i = delta_1 * sum over paths source->i of prod of edge probs
// (Eq. 1 of the paper).  The per-path sums collapse to a single topological
// pass, which is how the closed forms are computed here; explicit path
// enumeration is also provided for reporting and testing.
#pragma once

#include <vector>

#include "core/topology.hpp"

namespace ss {

/// A path as the sequence of visited operator indices.
using Path = std::vector<OpIndex>;

/// Coefficient sum_{pi in P(i)} prod_{(u,v) in pi} p(u,v) for every vertex,
/// i.e. the fraction of source departures that reach each operator when no
/// operator is saturated (unit selectivities).  Source coefficient is 1.
std::vector<double> arrival_coefficients(const Topology& t);

/// Same as arrival_coefficients but compounding each traversed operator's
/// selectivity rate gain (out/in), so coefficient_i * delta_source is the
/// arrival rate under the §3.4 extensions.
std::vector<double> arrival_coefficients_with_selectivity(const Topology& t);

/// Enumerates all distinct paths from `from` to `to` (inclusive), up to
/// `max_paths`; throws ss::Error if the bound would be exceeded.  Worst-case
/// exponential, as the paper notes — fine for the tens-of-operators graphs
/// streaming topologies actually have.
std::vector<Path> enumerate_paths(const Topology& t, OpIndex from, OpIndex to,
                                  std::size_t max_paths = 1u << 20);

/// Probability of a concrete path: product of its edge probabilities.
double path_probability(const Topology& t, const Path& path);

}  // namespace ss
