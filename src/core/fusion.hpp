// Operator fusion (paper §3.3, Alg. 3).
//
// A legal fusion sub-graph has a unique front-end vertex (the only member
// receiving edges from outside), every member reachable from the front-end
// inside the sub-graph, and its contraction keeps the topology acyclic.
// The fused operator's service time is the probability-weighted sum of the
// service times along all paths through the sub-graph (Definition 2 /
// Algorithm 3); with the §3.4 extensions each member's contribution is
// compounded by the selectivity rate gains of its predecessors, which
// reduces to the paper's formula when all selectivities are one.
//
// apply_fusion() produces the re-designed topology: members are replaced by
// one operator, parallel external edges are merged and their joint
// probabilities computed from the relative flow they carry.
#pragma once

#include <string>
#include <vector>

#include "core/steady_state.hpp"
#include "core/topology.hpp"

namespace ss {

/// A fusion request: the sub-graph members (any order, deduplicated).
struct FusionSpec {
  std::vector<OpIndex> members;
  /// Name of the resulting operator; empty derives "F(a+b+...)".
  std::string fused_name;
};

/// Why a FusionSpec is illegal, as a human-readable message; empty == legal.
std::string check_fusion_legal(const Topology& t, const FusionSpec& spec);

/// Expected service time of the fused operator per item entering its
/// front-end (Algorithm 3 with memoization; O(|Vsub| + |Esub|)).
/// Throws ss::Error when the spec is illegal.
double fusion_service_time(const Topology& t, const FusionSpec& spec);

/// Expected number of items leaving the sub-graph per item entering the
/// front-end; this becomes the fused operator's output selectivity (1 under
/// unit member selectivities).
double fusion_output_gain(const Topology& t, const FusionSpec& spec);

/// Result of applying a fusion to a topology.
struct FusionResult {
  Topology topology;           ///< re-designed topology
  OpIndex fused_index = 0;     ///< index of the new operator
  double service_time = 0.0;   ///< its predicted service time (seconds)
  /// old index -> new index; members map to fused_index.
  std::vector<OpIndex> remap;
  /// Steady-state analysis of the new topology (Alg. 1 re-run, paper §3.3).
  SteadyStateResult analysis;
  /// True when the fused operator saturates, i.e. the fusion would impair
  /// performance (the tool warns the user, cf. Table 2).
  bool introduces_bottleneck = false;
  /// Predicted throughput before/after, for the user-facing report.
  double throughput_before = 0.0;
  double throughput_after = 0.0;
};

/// Applies the fusion and evaluates it.  Throws ss::Error on illegal specs.
FusionResult apply_fusion(const Topology& t, const FusionSpec& spec);

/// A ranked fusion suggestion (paper §4.1: candidates are proposed after the
/// steady-state analysis, ranked by utilization).
struct FusionCandidate {
  FusionSpec spec;
  double mean_utilization = 0.0;   ///< mean rho of members (rank key, low first)
  double service_time = 0.0;       ///< predicted fused service time
  bool introduces_bottleneck = false;
};

struct FusionSuggestOptions {
  /// Only operators with rho below this threshold seed/extend candidates.
  double utilization_threshold = 0.5;
  /// Maximum number of candidates returned.
  std::size_t max_candidates = 8;
  /// Minimum members per candidate.
  std::size_t min_members = 2;
};

/// Greedily grows legal sub-graphs of under-utilized operators and ranks
/// them by mean utilization (ascending), dropping any whose fusion would
/// introduce a bottleneck.
std::vector<FusionCandidate> suggest_fusion_candidates(const Topology& t,
                                                       const SteadyStateResult& rates,
                                                       const FusionSuggestOptions& options = {});

// ---------------------------------------------------------------------
// Multi-entry fusion (extension).
//
// The paper's motivating scenario (§2, Fig. 2) fuses OP4 and OP5 even
// though *both* receive items from outside the sub-graph: an item entering
// at member m executes m's logic and continues from there (the runtime
// meta actor already implements exactly that).  The §3.3 cost model is
// restricted to single-front-end sub-graphs; this extension generalizes it
// by weighting each entry member with its share of the external arrival
// flow, which Alg. 1 provides.  With a single front-end it reduces to the
// paper's formula.
// ---------------------------------------------------------------------

/// Legality of a multi-entry fusion: >= 2 members, source excluded, every
/// member reachable (within the sub-graph) from some member with external
/// input, and the contraction acyclic — this last check is load-bearing
/// here, unlike in the single-front-end case.  Empty string == legal.
std::string check_fusion_legal_multi(const Topology& t, const FusionSpec& spec);

/// Expected service time per item entering the fused operator, weighting
/// each entry point by its steady-state share of the external arrivals.
double fusion_service_time_multi(const Topology& t, const FusionSpec& spec,
                                 const SteadyStateResult& rates);

/// Applies a multi-entry fusion: external in-edges from one origin to
/// several members are merged (their flow enters the single fused
/// operator), external out-edges merge per destination as usual, and the
/// fused service time comes from fusion_service_time_multi.
FusionResult apply_fusion_multi(const Topology& t, const FusionSpec& spec);

}  // namespace ss
