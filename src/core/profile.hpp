// Profile-driven annotation of topologies (paper §4.1).
//
// SpinStreams is driven by profile measurements: per-operator processing
// times and selectivities, and per-edge traffic counts collected by running
// the application as-is for a while (the paper cites Mammut/DiSL as the
// collection layer; this repo's ss::harness::Profiler plays that role for
// the bundled C++ operators).  This module merges such measurements into an
// existing topology description, producing the annotated topology the cost
// models consume.
#pragma once

#include <map>
#include <string>

#include "core/topology.hpp"

namespace ss {

/// Measured characteristics of one operator.
struct OperatorProfile {
  double service_time = 0.0;  ///< seconds per input item; <= 0 keeps current
  Selectivity selectivity{};  ///< measured in/out selectivity
  bool has_selectivity = false;
};

/// A bundle of profile measurements, keyed by operator name.
struct ProfileData {
  std::map<std::string, OperatorProfile> operators;
  /// Observed item counts per edge (from-name, to-name); used to re-derive
  /// routing probabilities by normalizing per origin.
  std::map<std::pair<std::string, std::string>, double> edge_counts;
};

/// Returns a copy of `t` with service times, selectivities and edge
/// probabilities replaced by the profiled values where present.  Unknown
/// operator names in the profile throw ss::Error (they indicate a mismatch
/// between the profiled binary and the description).
Topology annotate_with_profile(const Topology& t, const ProfileData& profile);

}  // namespace ss
