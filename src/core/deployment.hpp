// A deployment: everything the optimizer decided about how to run a
// topology (replication plan, fusion groups, key partitions).  Lives in
// core — not in the runtime — because the elastic controller needs to
// compare and produce deployments without linking the actor engine.
//
// diff_deployments() computes which logical operators are affected by a
// re-deployment.  The runtime uses the diff during an epoch switch-over to
// keep the actors (mailboxes, logic state) of unchanged operators alive and
// rebuild only what actually changed, and to know which partitioned
// operators need key-state migration.
#pragma once

#include <cstddef>
#include <vector>

#include "core/fusion.hpp"
#include "core/key_partitioning.hpp"
#include "core/steady_state.hpp"

namespace ss {

/// Everything the optimizer decided about how to deploy a topology.
struct Deployment {
  ReplicationPlan replication;
  std::vector<FusionSpec> fusions;
  /// Key-to-replica maps for partitioned-stateful operators (indexed by
  /// logical operator); missing/empty entries are derived automatically.
  std::vector<KeyPartition> partitions;
};

/// Which logical operators a re-deployment touches.  An operator is
/// *changed* when its replica count, its key partition (only meaningful
/// while replicated), or its fusion-group membership differ between the two
/// deployments.  Unchanged operators keep their actors — mailboxes and
/// logic state — across the epoch switch.
struct DeploymentDiff {
  std::vector<bool> op_changed;
  int ops_changed = 0;
  bool fusions_changed = false;

  [[nodiscard]] bool any() const { return ops_changed > 0; }
  [[nodiscard]] bool changed(OpIndex i) const {
    return i < op_changed.size() && op_changed[i];
  }
};

/// Compares two deployments over a topology of `num_ops` operators.  A
/// partition entry that is absent/empty means "derive automatically"; it
/// compares equal only to another absent/empty entry (under the same
/// replica count the derivation is deterministic).
DeploymentDiff diff_deployments(std::size_t num_ops, const Deployment& from,
                                const Deployment& to);

}  // namespace ss
