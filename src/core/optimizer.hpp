// The SpinStreams tool facade (paper §4).
//
// Mirrors the workflow of the GUI: import a topology, run the steady-state
// analysis, ask for bottleneck elimination, try fusions (with candidates
// ranked by utilization), and keep the prototyped versions of the topology
// for later code generation.  All the heavy lifting lives in
// steady_state/bottleneck/fusion; this class provides the user-facing
// orchestration and report formatting.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/bottleneck.hpp"
#include "core/deployment.hpp"
#include "core/fusion.hpp"
#include "core/latency.hpp"
#include "core/steady_state.hpp"
#include "core/topology.hpp"

namespace ss {

/// What the automatic pipeline optimizes for.
///   * kThroughput: the paper's objective -- fission to ceil(rho), fusion
///     whenever throughput-safe.  An SLO, when set, still acts as a
///     constraint (extra fission / fusion vetoes to meet it).
///   * kLatency: minimize the predicted end-to-end p99 -- fission
///     overshoots ceil(rho) while the tail keeps improving, fusions must
///     not regress the tail.
///   * kBalanced: throughput first, but take the cheap tail wins -- fission
///     keeps overshooting only while one extra replica cuts the predicted
///     p99 by >= 10%, and fusions may regress the tail by at most 10%.
enum class Objective { kThroughput, kLatency, kBalanced };

[[nodiscard]] const char* to_string(Objective objective);
/// Parses "throughput" / "latency" / "balanced"; nullopt on anything else.
[[nodiscard]] std::optional<Objective> parse_objective(std::string_view text);

/// One prototyped version of the application kept by the tool.
struct TopologyVersion {
  std::string label;
  Topology topology;
  ReplicationPlan plan;  ///< replication chosen for this version (empty = sequential)
};

class Optimizer {
 public:
  /// Imports a topology (the constructor validates nothing beyond what
  /// Topology::Builder already enforced; `label` names the initial version).
  explicit Optimizer(Topology topology, std::string label = "imported");

  /// The currently selected version.
  [[nodiscard]] const TopologyVersion& current() const { return versions_.back(); }
  [[nodiscard]] const std::vector<TopologyVersion>& versions() const { return versions_; }

  /// Steady-state analysis of the current version (Alg. 1).
  [[nodiscard]] SteadyStateResult analyze() const;

  /// Runs bottleneck elimination (Alg. 2) on the current version and commits
  /// the parallelized version.  Returns the full result.
  BottleneckResult eliminate_bottlenecks(const BottleneckOptions& options = {});

  /// Fusion candidates for the current version, ranked by utilization.
  [[nodiscard]] std::vector<FusionCandidate> fusion_candidates(
      const FusionSuggestOptions& options = {}) const;

  /// Evaluates a fusion on the current version.  When the fusion does not
  /// introduce a bottleneck (or `force` is set) the fused version is
  /// committed; otherwise the current version is kept and only the report is
  /// returned (the tool "generates an alert", §5.4).
  FusionResult try_fusion(const FusionSpec& spec, bool force = false);

  /// Human-readable report of the current version in the style of the
  /// paper's Tables 1-2: per-operator service time, departure time,
  /// utilization and replicas, plus the predicted throughput.
  [[nodiscard]] std::string report() const;

 private:
  std::vector<TopologyVersion> versions_;
};

/// One-shot automatic optimization (the paper leaves fusion selection to
/// the user, §5.4; this is the natural "automatize the operator fusion
/// process" future-work item of §7): run bottleneck elimination, then
/// greedily accept every non-overlapping fusion candidate that is
/// throughput-safe and whose members were not replicated.  The result is a
/// complete deployment for the *original* topology: replication plan, key
/// partitions, and fusion groups executable by the runtime's meta actors.
struct AutoOptimizeOptions {
  BottleneckOptions bottleneck{};
  FusionSuggestOptions fusion{};
  /// Skip the fusion phase entirely.
  bool enable_fusion = true;
  /// End-to-end p99 latency SLO in seconds; 0 disables the constraint.
  /// When set, fission may overshoot ceil(rho) to pull queueing delay
  /// down, and fusions predicted to push the tail past the SLO are
  /// rejected even when throughput-safe.
  double slo_p99 = 0.0;
  Objective objective = Objective::kThroughput;
  /// Mailbox bound the latency model assumes (match the runtime's
  /// EngineConfig::mailbox_capacity / the simulator's buffer_capacity).
  std::size_t buffer_capacity = 64;
  /// Profiler-fitted variability terms (per-op arrival ca², measured
  /// full-buffer stall probabilities) applied to every latency estimate on
  /// the *unfused* topology.  Empty = the model's closed-form defaults.
  /// Fused-graph evaluations ignore it (member indices are remapped).
  LatencyModelInputs variability{};
};

struct AutoOptimizeResult {
  ReplicationPlan plan;
  std::vector<KeyPartition> partitions;
  std::vector<FusionSpec> fusions;
  /// Analysis of the deployment (replication capacities; fusion does not
  /// change predicted rates when every accepted fusion is safe).
  SteadyStateResult analysis;
  /// Latency estimate of the final plan on the unfused topology, and its
  /// headline figures (tuple sojourn, source emission to sink departure).
  LatencyEstimate latency;
  double predicted_mean_latency = 0.0;
  double predicted_p99 = 0.0;
  /// True when no SLO was requested or the final plan is predicted to meet
  /// it; false = the SLO is infeasible for this topology (report, don't
  /// silently drop the constraint).
  bool slo_feasible = true;
  /// Replicas added beyond the Alg. 2 ceil(rho) plan to chase the SLO /
  /// latency objective.
  int overshoot_replicas = 0;
  /// Throughput-safe fusion candidates vetoed by the latency gate.
  int fusions_rejected_by_latency = 0;
  /// Actors of the sequential topology minus actors after optimization
  /// (replicas and emitter/collector pairs added, fused members merged).
  int actors_saved_by_fusion = 0;
  int additional_replicas = 0;
  bool reaches_ideal = false;
};

AutoOptimizeResult auto_optimize(const Topology& t, const AutoOptimizeOptions& options = {});

/// The deployment an auto-optimization result describes.
Deployment deployment_of(const AutoOptimizeResult& result);

// --------------------------------------------------------------------------
// Measured-rate re-optimization (elastic re-deployment).
//
// The static pipeline above consumes *profiled* characteristics.  At
// runtime the StatsBoard measures the real processed/emitted rates per
// operator; reoptimize() folds those measurements back into the topology
// description, re-runs Algorithms 1-3 on it and compares the prediction
// against the currently running deployment, so an online controller can
// decide whether a re-deployment pays for itself.

/// Measured behaviour of one logical operator over a sampling window.
struct MeasuredOperator {
  double processed_rate = 0.0;  ///< input items/s consumed in the window
  double emitted_rate = 0.0;    ///< results/s produced in the window
  /// Measured service time (seconds/item); <= 0 keeps the declared profile.
  double service_time = 0.0;
  /// Input items observed in the window; measurements below the caller's
  /// min_samples threshold keep the declared profile (too noisy).
  std::uint64_t samples = 0;
  /// Measured squared coefficient of variation of the operator's service
  /// time (profiler slice statistics); < 0 = not measured.  Feeds the QNA
  /// linking equations that fit downstream arrival ca² terms.
  double cv2 = -1.0;
  /// Measured fraction of time this operator's input buffer was observed
  /// full (queue-occupancy sampling); < 0 = not measured.  Feeds the
  /// latency model's stall-probability override.
  double queue_full_fraction = -1.0;
};

/// Returns a copy of `t` re-annotated with measured behaviour: the output
/// selectivity of every operator with at least `min_samples` observed
/// inputs becomes emitted_rate/processed_rate, and a positive measured
/// service_time replaces the declared one.  Structure, routing
/// probabilities and key distributions are preserved.
Topology with_measured_profile(const Topology& t,
                               const std::vector<MeasuredOperator>& measured,
                               std::uint64_t min_samples = 1);

/// Fits the latency model's variability terms to profiler measurements via
/// the QNA linking equations (Whitt): in topological order, each
/// operator's departure SCV is cd² = rho²·cs² + (1 − rho²)·ca², a
/// probabilistic split onto edge (i,j) with probability p thins it to
/// p·cd² + (1 − p), and merged inputs combine arrival-rate-weighted.
/// Operators without a measured cv2 contribute cs² = 1 (exponential);
/// the source's arrival ca² anchors at 1.  queue_full_fraction
/// measurements map straight onto stall_p.  `rates` must describe the
/// same topology the measurements were taken on (fission thinning of the
/// base ca² happens inside estimate_latency, not here).
LatencyModelInputs fit_variability(const Topology& t, const SteadyStateResult& rates,
                                   const std::vector<MeasuredOperator>& measured);

struct ReoptimizeOptions {
  AutoOptimizeOptions optimize{};
  /// Minimum predicted relative throughput gain before a re-deployment is
  /// declared beneficial (hysteresis; 0.10 = 10%).
  double min_gain = 0.10;
  /// Minimum source items observed in the window for the measurement to be
  /// trusted at all.
  std::uint64_t min_samples = 100;
  /// Measured end-to-end p99 of the running deployment over the sampling
  /// window, seconds; 0 = not measured (the SLO check then falls back to
  /// the predicted p99 of the running deployment).
  double measured_p99 = 0.0;
};

struct ReoptimizeResult {
  /// The deployment Algorithms 1-3 recommend for the measured topology.
  Deployment next;
  /// What would change relative to the currently running deployment.
  DeploymentDiff diff;
  /// Alg. 1 analysis of `next` on the measured topology.
  SteadyStateResult analysis;
  double predicted_current = 0.0;  ///< Alg. 1 throughput of the running deployment
  double predicted_next = 0.0;     ///< Alg. 1 throughput of `next`
  double gain = 0.0;               ///< (next - current) / current
  /// Predicted end-to-end p99 of the running deployment / of `next`, both
  /// on the measured topology (options.optimize.buffer_capacity bound).
  double predicted_p99_current = 0.0;
  double predicted_p99_next = 0.0;
  /// SLO set and the running deployment's p99 (measured when available,
  /// predicted otherwise) exceeds it.
  bool slo_breached = false;
  /// No SLO, or `next` is predicted to meet it.
  bool slo_feasible = true;
  bool enough_samples = false;
  /// True when the measurement is trusted, something actually changes and
  /// either the predicted throughput gain clears the hysteresis threshold
  /// or the SLO is breached and `next` is predicted to repair (or at
  /// least clearly improve) the tail.
  bool beneficial = false;
};

/// Re-runs the Alg. 1/2/3 pipeline on `declared` re-annotated with
/// `measured` (indexed by operator) and diffs the recommendation against
/// `current`.
ReoptimizeResult reoptimize(const Topology& declared, const Deployment& current,
                            const std::vector<MeasuredOperator>& measured,
                            const ReoptimizeOptions& options = {});

/// Formats an analysis as the paper's Tables 1-2 do (mu^-1, delta^-1, rho per
/// operator in milliseconds plus throughput in tuples/s).  With `latency`
/// the table grows a predicted response-time column and a predicted
/// end-to-end mean/p99 footer.
std::string format_analysis(const Topology& t, const SteadyStateResult& rates,
                            const ReplicationPlan& plan = {},
                            const LatencyEstimate* latency = nullptr);

}  // namespace ss
