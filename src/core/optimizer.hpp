// The SpinStreams tool facade (paper §4).
//
// Mirrors the workflow of the GUI: import a topology, run the steady-state
// analysis, ask for bottleneck elimination, try fusions (with candidates
// ranked by utilization), and keep the prototyped versions of the topology
// for later code generation.  All the heavy lifting lives in
// steady_state/bottleneck/fusion; this class provides the user-facing
// orchestration and report formatting.
#pragma once

#include <string>
#include <vector>

#include "core/bottleneck.hpp"
#include "core/fusion.hpp"
#include "core/steady_state.hpp"
#include "core/topology.hpp"

namespace ss {

/// One prototyped version of the application kept by the tool.
struct TopologyVersion {
  std::string label;
  Topology topology;
  ReplicationPlan plan;  ///< replication chosen for this version (empty = sequential)
};

class Optimizer {
 public:
  /// Imports a topology (the constructor validates nothing beyond what
  /// Topology::Builder already enforced; `label` names the initial version).
  explicit Optimizer(Topology topology, std::string label = "imported");

  /// The currently selected version.
  [[nodiscard]] const TopologyVersion& current() const { return versions_.back(); }
  [[nodiscard]] const std::vector<TopologyVersion>& versions() const { return versions_; }

  /// Steady-state analysis of the current version (Alg. 1).
  [[nodiscard]] SteadyStateResult analyze() const;

  /// Runs bottleneck elimination (Alg. 2) on the current version and commits
  /// the parallelized version.  Returns the full result.
  BottleneckResult eliminate_bottlenecks(const BottleneckOptions& options = {});

  /// Fusion candidates for the current version, ranked by utilization.
  [[nodiscard]] std::vector<FusionCandidate> fusion_candidates(
      const FusionSuggestOptions& options = {}) const;

  /// Evaluates a fusion on the current version.  When the fusion does not
  /// introduce a bottleneck (or `force` is set) the fused version is
  /// committed; otherwise the current version is kept and only the report is
  /// returned (the tool "generates an alert", §5.4).
  FusionResult try_fusion(const FusionSpec& spec, bool force = false);

  /// Human-readable report of the current version in the style of the
  /// paper's Tables 1-2: per-operator service time, departure time,
  /// utilization and replicas, plus the predicted throughput.
  [[nodiscard]] std::string report() const;

 private:
  std::vector<TopologyVersion> versions_;
};

/// One-shot automatic optimization (the paper leaves fusion selection to
/// the user, §5.4; this is the natural "automatize the operator fusion
/// process" future-work item of §7): run bottleneck elimination, then
/// greedily accept every non-overlapping fusion candidate that is
/// throughput-safe and whose members were not replicated.  The result is a
/// complete deployment for the *original* topology: replication plan, key
/// partitions, and fusion groups executable by the runtime's meta actors.
struct AutoOptimizeOptions {
  BottleneckOptions bottleneck{};
  FusionSuggestOptions fusion{};
  /// Skip the fusion phase entirely.
  bool enable_fusion = true;
};

struct AutoOptimizeResult {
  ReplicationPlan plan;
  std::vector<KeyPartition> partitions;
  std::vector<FusionSpec> fusions;
  /// Analysis of the deployment (replication capacities; fusion does not
  /// change predicted rates when every accepted fusion is safe).
  SteadyStateResult analysis;
  /// Actors of the sequential topology minus actors after optimization
  /// (replicas and emitter/collector pairs added, fused members merged).
  int actors_saved_by_fusion = 0;
  int additional_replicas = 0;
  bool reaches_ideal = false;
};

AutoOptimizeResult auto_optimize(const Topology& t, const AutoOptimizeOptions& options = {});

/// Formats an analysis as the paper's Tables 1-2 do (mu^-1, delta^-1, rho per
/// operator in milliseconds plus throughput in tuples/s).
std::string format_analysis(const Topology& t, const SteadyStateResult& rates,
                            const ReplicationPlan& plan = {});

}  // namespace ss
