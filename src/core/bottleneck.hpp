// Bottleneck elimination via operator fission (paper §3.2, Alg. 2) and the
// hold-off replication budget.
//
// The algorithm walks the topology in topological order like Alg. 1; when a
// vertex saturates it reacts by state class:
//   * stateless            -> replicate with n = ceil(rho) (Definition 1),
//   * partitioned-stateful -> KeyPartitioning(); if the achievable max key
//                             share still saturates the operator, the
//                             bottleneck is only mitigated and the source is
//                             corrected (Thm 3.2),
//   * stateful             -> cannot replicate; correct the source.
//
// If the user supplies a global replica budget Nmax smaller than the total
// the algorithm chose, every replication degree is scaled by r = Nmax/N
// (hold-off replication) with small integer adjustments, and the analysis is
// re-run under the reduced plan.
#pragma once

#include <optional>
#include <vector>

#include "core/key_partitioning.hpp"
#include "core/steady_state.hpp"
#include "core/topology.hpp"

namespace ss {

/// Options of the bottleneck-elimination phase.
struct BottleneckOptions {
  /// Maximum total number of replicas across the topology (paper §3.2
  /// "hold-off replication"); nullopt = unbounded.
  std::optional<int> max_total_replicas;
};

/// Result of Algorithm 2.
struct BottleneckResult {
  /// Final replication plan (replicas and, for partitioned-stateful
  /// operators, the achieved max key share).
  ReplicationPlan plan;
  /// Steady-state rates under `plan` (a full Alg. 1 run).
  SteadyStateResult analysis;
  /// Key-to-replica assignments for partitioned-stateful operators that were
  /// replicated; indexed by operator, empty for the rest.
  std::vector<KeyPartition> partitions;
  /// Operators that remain bottlenecks (stateful, or partitioned with too
  /// skewed keys, or re-saturated after the hold-off scaling).
  std::vector<OpIndex> unresolved;
  /// Total replicas used by `plan`.
  int total_replicas = 0;
  /// Replicas added w.r.t. the sequential topology (n_i - 1 summed).
  int additional_replicas = 0;
  /// True when the plan lets the topology ingest at the source's own rate.
  bool reaches_ideal = false;
};

/// Runs Algorithm 2 on `t`.
BottleneckResult eliminate_bottlenecks(const Topology& t, const BottleneckOptions& options = {});

/// Scales `plan` to respect `max_total` replicas in total: every degree is
/// multiplied by r = max_total / total and rounded, keeping each >= 1, then
/// adjusted by single units (largest first) until the budget holds.
/// Exposed for testing; eliminate_bottlenecks() applies it automatically.
ReplicationPlan apply_replica_budget(const Topology& t, const ReplicationPlan& plan, int max_total);

}  // namespace ss
