#include "core/fusion.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <map>
#include <set>
#include <sstream>

#include "core/error.hpp"

namespace ss {

namespace {

/// Canonical view of a fusion spec: sorted unique members, membership mask,
/// identified front-end.
struct Subgraph {
  std::vector<OpIndex> members;
  std::vector<bool> in_sub;
  OpIndex front_end = kInvalidOp;
};

/// Performs all legality checks; fills `sub` on success, returns a message
/// on failure (empty string == legal).
std::string analyze_subgraph(const Topology& t, const FusionSpec& spec, Subgraph& sub) {
  const std::size_t n = t.num_operators();
  sub.members = spec.members;
  std::sort(sub.members.begin(), sub.members.end());
  sub.members.erase(std::unique(sub.members.begin(), sub.members.end()), sub.members.end());

  if (sub.members.size() < 2) return "fusion sub-graph needs at least two operators";
  for (OpIndex m : sub.members) {
    if (m >= n) return "fusion member index out of range";
  }
  sub.in_sub.assign(n, false);
  for (OpIndex m : sub.members) sub.in_sub[m] = true;
  if (sub.in_sub[t.source()]) return "the source operator cannot be fused";

  // Unique front-end: the only member with input edges from outside.
  for (OpIndex m : sub.members) {
    bool external_input = false;
    for (const Edge& e : t.in_edges(m)) {
      if (!sub.in_sub[e.from]) external_input = true;
    }
    if (external_input) {
      if (sub.front_end != kInvalidOp) {
        return "sub-graph has multiple front-end operators ('" + t.op(sub.front_end).name +
               "' and '" + t.op(m).name + "')";
      }
      sub.front_end = m;
    }
  }
  if (sub.front_end == kInvalidOp) return "sub-graph has no front-end operator";

  // Every member reachable from the front-end within the sub-graph.
  std::vector<bool> reached(n, false);
  std::vector<OpIndex> stack{sub.front_end};
  reached[sub.front_end] = true;
  while (!stack.empty()) {
    OpIndex u = stack.back();
    stack.pop_back();
    for (const Edge& e : t.out_edges(u)) {
      if (sub.in_sub[e.to] && !reached[e.to]) {
        reached[e.to] = true;
        stack.push_back(e.to);
      }
    }
  }
  for (OpIndex m : sub.members) {
    if (!reached[m]) {
      return "operator '" + t.op(m).name + "' is not reachable from the front-end '" +
             t.op(sub.front_end).name + "' inside the sub-graph";
    }
  }

  // Contraction must keep the topology acyclic.
  std::vector<Edge> contracted;
  const auto map_vertex = [&](OpIndex v) -> OpIndex {
    return sub.in_sub[v] ? static_cast<OpIndex>(n) : v;  // n = the meta vertex
  };
  for (const Edge& e : t.edges()) {
    OpIndex u = map_vertex(e.from);
    OpIndex v = map_vertex(e.to);
    if (u == v) continue;  // internal edge disappears
    contracted.push_back(Edge{u, v, e.probability});
  }
  if (!topological_sort(n + 1, contracted)) {
    return "fusing the sub-graph would create a cycle in the topology";
  }
  return {};
}

Subgraph require_legal(const Topology& t, const FusionSpec& spec) {
  Subgraph sub;
  std::string why = analyze_subgraph(t, spec, sub);
  require(why.empty(), "illegal fusion: " + why);
  return sub;
}

/// Expected arrivals at each member per item entering the front-end,
/// compounding selectivity gains along internal edges.  This is the
/// closed-form equivalent of Algorithm 3's recursion: the paper's
///   T(i) = T_i + sum_j p(i,j) T(j)
/// expands to sum over members of a(i) * T_i with a(i) the path-probability
/// weights computed here.
std::vector<double> member_arrival_weights(const Topology& t, const Subgraph& sub) {
  std::vector<double> a(t.num_operators(), 0.0);
  a[sub.front_end] = 1.0;
  for (OpIndex u : t.topological_order()) {
    if (!sub.in_sub[u] || a[u] == 0.0) continue;
    const double outflow = a[u] * t.op(u).selectivity.rate_gain();
    for (const Edge& e : t.out_edges(u)) {
      if (sub.in_sub[e.to]) a[e.to] += outflow * e.probability;
    }
  }
  return a;
}

double service_time_impl(const Topology& t, const Subgraph& sub) {
  const std::vector<double> a = member_arrival_weights(t, sub);
  double total = 0.0;
  for (OpIndex m : sub.members) total += a[m] * t.op(m).service_time;
  return total;
}

/// Flow leaving the sub-graph toward each external destination, per item
/// entering the front-end.
std::map<OpIndex, double> external_out_rates(const Topology& t, const Subgraph& sub) {
  const std::vector<double> a = member_arrival_weights(t, sub);
  std::map<OpIndex, double> rates;
  for (OpIndex m : sub.members) {
    const double outflow = a[m] * t.op(m).selectivity.rate_gain();
    for (const Edge& e : t.out_edges(m)) {
      if (!sub.in_sub[e.to]) rates[e.to] += outflow * e.probability;
    }
  }
  return rates;
}

std::string derive_fused_name(const Topology& t, const Subgraph& sub) {
  std::ostringstream name;
  name << "F(";
  for (std::size_t i = 0; i < sub.members.size(); ++i) {
    if (i > 0) name << '+';
    name << t.op(sub.members[i]).name;
  }
  name << ')';
  return name.str();
}

std::string derive_fused_name_multi(const Topology& t, const std::vector<OpIndex>& members) {
  std::ostringstream name;
  name << "F(";
  for (std::size_t i = 0; i < members.size(); ++i) {
    if (i > 0) name << '+';
    name << t.op(members[i]).name;
  }
  name << ')';
  return name.str();
}

/// Multi-entry variant of analyze_subgraph (see fusion.hpp): entries are
/// all members with external input; reachability is from the entry set.
struct MultiSubgraph {
  std::vector<OpIndex> members;
  std::vector<bool> in_sub;
  std::vector<OpIndex> entries;
};

std::string analyze_subgraph_multi(const Topology& t, const FusionSpec& spec,
                                   MultiSubgraph& sub) {
  const std::size_t n = t.num_operators();
  sub.members = spec.members;
  std::sort(sub.members.begin(), sub.members.end());
  sub.members.erase(std::unique(sub.members.begin(), sub.members.end()), sub.members.end());

  if (sub.members.size() < 2) return "fusion sub-graph needs at least two operators";
  for (OpIndex m : sub.members) {
    if (m >= n) return "fusion member index out of range";
  }
  sub.in_sub.assign(n, false);
  for (OpIndex m : sub.members) sub.in_sub[m] = true;
  if (sub.in_sub[t.source()]) return "the source operator cannot be fused";

  for (OpIndex m : sub.members) {
    for (const Edge& e : t.in_edges(m)) {
      if (!sub.in_sub[e.from]) {
        sub.entries.push_back(m);
        break;
      }
    }
  }
  if (sub.entries.empty()) return "sub-graph has no entry operator";

  // Every member reachable from the entry set within the sub-graph.
  std::vector<bool> reached(n, false);
  std::vector<OpIndex> stack = sub.entries;
  for (OpIndex e : sub.entries) reached[e] = true;
  while (!stack.empty()) {
    OpIndex u = stack.back();
    stack.pop_back();
    for (const Edge& e : t.out_edges(u)) {
      if (sub.in_sub[e.to] && !reached[e.to]) {
        reached[e.to] = true;
        stack.push_back(e.to);
      }
    }
  }
  for (OpIndex m : sub.members) {
    if (!reached[m]) {
      return "operator '" + t.op(m).name + "' is not reachable from any entry of the sub-graph";
    }
  }

  // Contraction acyclicity: with multiple entries an external path can
  // genuinely leave and re-enter the group, so this check rejects real
  // cases here (not just defense-in-depth as in the single-entry variant).
  std::vector<Edge> contracted;
  for (const Edge& e : t.edges()) {
    const OpIndex u = sub.in_sub[e.from] ? static_cast<OpIndex>(n) : e.from;
    const OpIndex v = sub.in_sub[e.to] ? static_cast<OpIndex>(n) : e.to;
    if (u == v) continue;
    contracted.push_back(Edge{u, v, e.probability});
  }
  if (!topological_sort(n + 1, contracted)) {
    return "fusing the sub-graph would create a cycle in the topology";
  }
  return {};
}

MultiSubgraph require_legal_multi(const Topology& t, const FusionSpec& spec) {
  MultiSubgraph sub;
  const std::string why = analyze_subgraph_multi(t, spec, sub);
  require(why.empty(), "illegal multi-entry fusion: " + why);
  return sub;
}

/// Share of the external arrival flow entering at each entry member, from
/// the steady-state departure rates of the external upstream operators.
std::vector<double> entry_weights(const Topology& t, const MultiSubgraph& sub,
                                  const SteadyStateResult& rates) {
  std::vector<double> weight(t.num_operators(), 0.0);
  double total = 0.0;
  for (OpIndex m : sub.entries) {
    for (const Edge& e : t.in_edges(m)) {
      if (!sub.in_sub[e.from]) {
        weight[m] += rates.rates[e.from].departure * e.probability;
      }
    }
    total += weight[m];
  }
  require(total > 0.0,
          "multi-entry fusion: no steady-state flow enters the sub-graph (dead sub-graph)");
  for (OpIndex m : sub.entries) weight[m] /= total;
  return weight;
}

/// Expected arrivals per fused-operator input, seeded at the entry members
/// with their flow shares (reduces to member_arrival_weights when a single
/// front-end takes weight 1).
std::vector<double> member_arrival_weights_multi(const Topology& t, const MultiSubgraph& sub,
                                                 const std::vector<double>& entry_weight) {
  std::vector<double> a(t.num_operators(), 0.0);
  for (OpIndex m : sub.entries) a[m] = entry_weight[m];
  for (OpIndex u : t.topological_order()) {
    if (!sub.in_sub[u] || a[u] == 0.0) continue;
    const double outflow = a[u] * t.op(u).selectivity.rate_gain();
    for (const Edge& e : t.out_edges(u)) {
      if (sub.in_sub[e.to]) a[e.to] += outflow * e.probability;
    }
  }
  return a;
}

}  // namespace

std::string check_fusion_legal_multi(const Topology& t, const FusionSpec& spec) {
  MultiSubgraph sub;
  return analyze_subgraph_multi(t, spec, sub);
}

double fusion_service_time_multi(const Topology& t, const FusionSpec& spec,
                                 const SteadyStateResult& rates) {
  const MultiSubgraph sub = require_legal_multi(t, spec);
  const std::vector<double> a =
      member_arrival_weights_multi(t, sub, entry_weights(t, sub, rates));
  double total = 0.0;
  for (OpIndex m : sub.members) total += a[m] * t.op(m).service_time;
  return total;
}

FusionResult apply_fusion_multi(const Topology& t, const FusionSpec& spec) {
  const MultiSubgraph sub = require_legal_multi(t, spec);
  const SteadyStateResult rates = steady_state(t);
  const std::vector<double> a =
      member_arrival_weights_multi(t, sub, entry_weights(t, sub, rates));

  double fused_time = 0.0;
  for (OpIndex m : sub.members) fused_time += a[m] * t.op(m).service_time;

  // External out-flow per destination, per fused-operator input.
  std::map<OpIndex, double> out_rates;
  double total_out = 0.0;
  for (OpIndex m : sub.members) {
    const double outflow = a[m] * t.op(m).selectivity.rate_gain();
    for (const Edge& e : t.out_edges(m)) {
      if (!sub.in_sub[e.to]) {
        out_rates[e.to] += outflow * e.probability;
        total_out += outflow * e.probability;
      }
    }
  }

  FusionResult result;
  result.service_time = fused_time;
  result.remap.assign(t.num_operators(), kInvalidOp);

  // The fused operator takes the slot of the first entry member.
  const OpIndex anchor = sub.entries.front();
  Topology::Builder builder;
  for (OpIndex i = 0; i < t.num_operators(); ++i) {
    if (!sub.in_sub[i]) {
      result.remap[i] = builder.num_operators();
      builder.add_operator(t.op(i));
    } else if (i == anchor) {
      OperatorSpec fused;
      fused.name = spec.fused_name.empty() ? derive_fused_name_multi(t, sub.members)
                                           : spec.fused_name;
      fused.service_time = fused_time;
      fused.state = StateKind::kStateful;
      fused.selectivity = Selectivity{1.0, total_out > 0.0 ? total_out : 1.0};
      fused.impl = "meta";
      result.fused_index = builder.num_operators();
      builder.add_operator(std::move(fused));
    }
  }
  for (OpIndex m : sub.members) result.remap[m] = result.fused_index;

  // External in-edges: edges from one origin to several members merge into
  // one edge to the fused operator with the summed probability.
  std::map<OpIndex, double> in_probability;  // by original origin
  for (const Edge& e : t.edges()) {
    if (!sub.in_sub[e.from] && sub.in_sub[e.to]) in_probability[e.from] += e.probability;
  }
  for (const Edge& e : t.edges()) {
    if (sub.in_sub[e.from] || sub.in_sub[e.to]) continue;
    builder.add_edge(result.remap[e.from], result.remap[e.to], e.probability);
  }
  for (const auto& [origin, probability] : in_probability) {
    builder.add_edge(result.remap[origin], result.fused_index, probability);
  }
  for (const auto& [dest, rate] : out_rates) {
    builder.add_edge(result.fused_index, result.remap[dest], rate / total_out);
  }

  result.topology = builder.build();
  result.throughput_before = rates.throughput();
  result.analysis = steady_state(result.topology);
  result.throughput_after = result.analysis.throughput();
  result.introduces_bottleneck =
      std::find(result.analysis.bottlenecks.begin(), result.analysis.bottlenecks.end(),
                result.fused_index) != result.analysis.bottlenecks.end();
  return result;
}

std::string check_fusion_legal(const Topology& t, const FusionSpec& spec) {
  Subgraph sub;
  return analyze_subgraph(t, spec, sub);
}

double fusion_service_time(const Topology& t, const FusionSpec& spec) {
  return service_time_impl(t, require_legal(t, spec));
}

double fusion_output_gain(const Topology& t, const FusionSpec& spec) {
  const Subgraph sub = require_legal(t, spec);
  double gain = 0.0;
  for (const auto& [dest, rate] : external_out_rates(t, sub)) {
    (void)dest;
    gain += rate;
  }
  return gain;
}

FusionResult apply_fusion(const Topology& t, const FusionSpec& spec) {
  const Subgraph sub = require_legal(t, spec);
  const double fused_time = service_time_impl(t, sub);
  const std::map<OpIndex, double> out_rates = external_out_rates(t, sub);
  double total_out = 0.0;
  for (const auto& [dest, rate] : out_rates) {
    (void)dest;
    total_out += rate;
  }

  FusionResult result;
  result.service_time = fused_time;
  result.remap.assign(t.num_operators(), kInvalidOp);

  Topology::Builder builder;
  // Keep non-members in their original relative order; the fused operator
  // takes the slot of the front-end so reports read naturally.
  for (OpIndex i = 0; i < t.num_operators(); ++i) {
    if (!sub.in_sub[i]) {
      result.remap[i] = builder.num_operators();
      builder.add_operator(t.op(i));
    } else if (i == sub.front_end) {
      OperatorSpec fused;
      fused.name = spec.fused_name.empty() ? derive_fused_name(t, sub) : spec.fused_name;
      fused.service_time = fused_time;
      // Meta-operators must not be replicated (paper §4.2), which the
      // optimizer honours through the stateful classification.
      fused.state = StateKind::kStateful;
      fused.selectivity = Selectivity{1.0, total_out > 0.0 ? total_out : 1.0};
      fused.impl = "meta";
      result.fused_index = builder.num_operators();
      builder.add_operator(std::move(fused));
    }
  }
  for (OpIndex m : sub.members) result.remap[m] = result.fused_index;

  // External in-edges: only the front-end has them; they now target the
  // fused operator unchanged.
  for (const Edge& e : t.edges()) {
    const bool from_in = sub.in_sub[e.from];
    const bool to_in = sub.in_sub[e.to];
    if (from_in) continue;  // member out-edges handled below; internal dropped
    if (to_in) {
      assert(e.to == sub.front_end);
      builder.add_edge(result.remap[e.from], result.fused_index, e.probability);
    } else {
      builder.add_edge(result.remap[e.from], result.remap[e.to], e.probability);
    }
  }
  // External out-edges, merged per destination with joint probabilities
  // proportional to the flow they carry.
  for (const auto& [dest, rate] : out_rates) {
    builder.add_edge(result.fused_index, result.remap[dest], rate / total_out);
  }

  result.topology = builder.build();
  result.throughput_before = steady_state(t).throughput();
  result.analysis = steady_state(result.topology);
  result.throughput_after = result.analysis.throughput();
  result.introduces_bottleneck =
      std::find(result.analysis.bottlenecks.begin(), result.analysis.bottlenecks.end(),
                result.fused_index) != result.analysis.bottlenecks.end();
  return result;
}

std::vector<FusionCandidate> suggest_fusion_candidates(const Topology& t,
                                                       const SteadyStateResult& rates,
                                                       const FusionSuggestOptions& options) {
  std::vector<FusionCandidate> candidates;
  std::set<std::vector<OpIndex>> seen;

  for (OpIndex seed = 0; seed < t.num_operators(); ++seed) {
    if (seed == t.source()) continue;
    if (rates.rates[seed].utilization >= options.utilization_threshold) continue;

    // Grow greedily: keep adding under-utilized successors of the current
    // member set while the sub-graph stays legal.
    std::vector<OpIndex> members{seed};
    bool grew = true;
    while (grew) {
      grew = false;
      std::set<OpIndex> frontier;
      for (OpIndex m : members) {
        for (const Edge& e : t.out_edges(m)) frontier.insert(e.to);
      }
      for (OpIndex w : frontier) {
        if (std::find(members.begin(), members.end(), w) != members.end()) continue;
        if (w == t.source()) continue;
        if (rates.rates[w].utilization >= options.utilization_threshold) continue;
        std::vector<OpIndex> trial = members;
        trial.push_back(w);
        if (trial.size() >= 2 && !check_fusion_legal(t, FusionSpec{trial, {}}).empty()) continue;
        members = std::move(trial);
        grew = true;
        break;
      }
    }

    if (members.size() < std::max<std::size_t>(2, options.min_members)) continue;
    std::vector<OpIndex> key = members;
    std::sort(key.begin(), key.end());
    if (!seen.insert(key).second) continue;

    FusionSpec spec{members, {}};
    if (!check_fusion_legal(t, spec).empty()) continue;
    FusionCandidate candidate;
    candidate.spec = spec;
    double total_util = 0.0;
    for (OpIndex m : members) total_util += rates.rates[m].utilization;
    candidate.mean_utilization = total_util / static_cast<double>(members.size());
    candidate.service_time = fusion_service_time(t, spec);
    candidate.introduces_bottleneck = apply_fusion(t, spec).introduces_bottleneck;
    if (candidate.introduces_bottleneck) continue;
    candidates.push_back(std::move(candidate));
  }

  std::sort(candidates.begin(), candidates.end(), [](const auto& a, const auto& b) {
    return a.mean_utilization < b.mean_utilization;
  });
  if (candidates.size() > options.max_candidates) candidates.resize(options.max_candidates);
  return candidates;
}

}  // namespace ss
