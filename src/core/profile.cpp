#include "core/profile.hpp"

#include "core/error.hpp"

namespace ss {

Topology annotate_with_profile(const Topology& t, const ProfileData& profile) {
  for (const auto& [name, unused] : profile.operators) {
    (void)unused;
    require(t.find(name).has_value(),
            "profile refers to unknown operator '" + name + "'");
  }
  for (const auto& [edge, unused] : profile.edge_counts) {
    (void)unused;
    auto from = t.find(edge.first);
    auto to = t.find(edge.second);
    require(from.has_value() && to.has_value(),
            "profile refers to unknown edge '" + edge.first + "' -> '" + edge.second + "'");
    require(t.has_edge(*from, *to),
            "profile reports traffic on non-existent edge '" + edge.first + "' -> '" +
                edge.second + "'");
  }

  Topology::Builder builder;
  for (OpIndex i = 0; i < t.num_operators(); ++i) {
    OperatorSpec spec = t.op(i);
    auto it = profile.operators.find(spec.name);
    if (it != profile.operators.end()) {
      if (it->second.service_time > 0.0) spec.service_time = it->second.service_time;
      if (it->second.has_selectivity) spec.selectivity = it->second.selectivity;
    }
    builder.add_operator(std::move(spec));
  }
  // Re-derive routing probabilities only for origins where every out-edge
  // has a measured count; mixing measured counts with declared
  // probabilities inside one fan-out would skew both.
  std::vector<bool> fully_counted(t.num_operators(), false);
  std::vector<double> origin_total(t.num_operators(), 0.0);
  for (OpIndex i = 0; i < t.num_operators(); ++i) {
    const auto& out = t.out_edges(i);
    if (out.empty()) continue;
    bool all = true;
    double total = 0.0;
    for (const Edge& e : out) {
      auto it = profile.edge_counts.find({t.op(e.from).name, t.op(e.to).name});
      if (it == profile.edge_counts.end() || it->second <= 0.0) {
        all = false;
        break;
      }
      total += it->second;
    }
    fully_counted[i] = all;
    origin_total[i] = total;
  }
  for (const Edge& e : t.edges()) {
    double p = e.probability;
    if (fully_counted[e.from]) {
      p = profile.edge_counts.at({t.op(e.from).name, t.op(e.to).name}) / origin_total[e.from];
    }
    builder.add_edge(e.from, e.to, p);
  }
  return builder.build();
}

}  // namespace ss
