// Latency estimation on top of the steady-state analysis (extension).
//
// The paper's models target throughput; its introduction names latency as
// the other first-class metric.  This module derives per-operator response
// times from the Alg. 1 rates with standard queueing approximations:
//
//   * non-saturated operator (rho < 1): M/M/1 response time per replica,
//       W = 1 / (mu - lambda / n),
//   * saturated operator (rho ~ 1): the buffer stays full under BAS, so an
//       admitted item waits for a full buffer drain plus its own service,
//       W = (B + 1) / mu.
//
// End-to-end latency follows the routing probabilities: the expected
// remaining latency from operator i is
//   L(i) = W(i) + sum_j p(i,j) L(j),
// and the topology's expected source-to-sink latency is L(source).
//
// These are *estimates*: the M/M/1 step assumes Poisson-ish arrivals and
// exponential service, and windowed operators add buffering delay (items
// wait for the slide boundary) that is reported separately as
// window_delay = (input_selectivity - 1) / (2 * lambda) per such operator.
#pragma once

#include <cstddef>
#include <vector>

#include "core/steady_state.hpp"
#include "core/topology.hpp"

namespace ss {

struct LatencyEstimate {
  /// Expected response time (queueing + service) per operator, seconds.
  std::vector<double> response;
  /// Expected window-buffering delay per operator (0 for non-windowed).
  std::vector<double> window_delay;
  /// Expected remaining latency from each operator to a sink.
  std::vector<double> to_sink;
  /// Expected end-to-end latency of one item, source to sink, seconds.
  double end_to_end = 0.0;
};

/// Estimates latencies for `t` under the rates of a prior steady_state()
/// run (which must come from the same topology and replication plan).
/// `buffer_capacity` is the mailbox bound B of the runtime configuration.
LatencyEstimate estimate_latency(const Topology& t, const SteadyStateResult& rates,
                                 const ReplicationPlan& plan = {},
                                 std::size_t buffer_capacity = 64);

}  // namespace ss
