// Latency estimation on top of the steady-state analysis (extension).
//
// The paper's models target throughput; its introduction names latency as
// the other first-class metric.  This module derives per-operator response
// times from the Alg. 1 rates with queueing approximations calibrated
// against the discrete-event simulator (tests/latency_model_test):
//
//   * open operator (rho < 1): per-replica M/M/1/K occupancy drained at
//       the served rate, with the waiting portion scaled by the
//       Allen-Cunneen arrival-variability factor (ca^2 + cs^2) / 2.
//       Round-robin fission splits a Poisson-ish stream into n-way Erlang
//       interarrivals (ca^2 = 1/n), so replicated stateless operators wait
//       *less* than an independent M/M/1 would.  The standing queue a
//       critically loaded fission replica can sustain shrinks with the
//       replica count -- the occupancy is capped at (K/2) / n^(1/4).
//   * pinned operator: a saturated operator -- and every major supplier of
//       one, transitively up to the source -- holds a standing queue under
//       BAS backpressure.  Its length interpolates from the damped
//       critical occupancy to the full buffer with the overload ratio
//       x = offered/served rate, and an admitted item drains it at the
//       served per-replica throughput.
//   * stalls: a push into a pinned child blocks for a drain interval with
//       the conservation probability 1 - served/offered; a push into a
//       busy open child blocks ~fill^3 of the time for ~one service
//       completion.  Expected stalls inflate the parent's effective
//       service time (BAS rate-matching).
//
// Percentile model: an open response is ~exponential (the exact M/M/1
// sojourn law; variance W^2), a pinned response tightens toward an
// Erlang(len) drain as the overload grows.  Responses compose along
// routing paths by the two-moment recursion
//   m(i)  = W(i) + sum_j p(i,j) m(j)
//   m2(i) = E[W(i)^2] + 2 W(i) sum_j p(i,j) m(j) + sum_j p(i,j) m2(j)
// with each branch weighted by its *exit count* (results emitted per
// routed item), and the end-to-end distribution is kept as a small
// mixture of moment-matched gamma components per operator (adjacent
// components merged moment-preservingly), so multimodal path mixes keep
// their tails.  Quantiles come from bisection on the mixture CDF via the
// Wilson-Hilferty gamma approximation (exact-ish for a single
// exponential hop: p99 within 1%).
//
// Two end-to-end figures are reported:
//   * end_to_end: the analytic source-to-sink expectation including the
//     source generation time and window buffering delay (legacy field), and
//   * sojourn_*: the distribution of the *measured* tuple latency -- source
//     emission to sink departure, excluding the source's own generation
//     time and window buffering (an emitted result inherits the timestamp
//     of the freshest contributing input, in both the runtime and the DES).
// Validation against DES virtual-time latencies (tests/latency_model_test)
// compares sojourn_mean / sojourn.p99.
#pragma once

#include <cstddef>
#include <vector>

#include "core/steady_state.hpp"
#include "core/topology.hpp"

namespace ss {

/// Selected quantiles of a latency distribution, in seconds.
struct LatencyPercentiles {
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

/// Quantile `q` (in (0,1)) of a nonnegative distribution with the given
/// mean and variance, via a moment-matched gamma and the Wilson-Hilferty
/// cube approximation.  Returns `mean` for (near-)zero variance.
double latency_quantile(double mean, double variance, double q);

/// p50/p95/p99 of a moment-matched gamma distribution.
LatencyPercentiles latency_percentiles(double mean, double variance);

struct LatencyEstimate {
  /// Expected response time (queueing + service) per operator, seconds.
  std::vector<double> response;
  /// Variance of the per-operator response (exponential for open queues,
  /// Erlang(B+1) for congested ones).
  std::vector<double> response_var;
  /// True for operators predicted to run with a backpressure-full input
  /// buffer: saturated operators and everything upstream of one.
  std::vector<bool> congested;
  /// Expected window-buffering delay per operator (0 for non-windowed).
  std::vector<double> window_delay;
  /// Expected remaining latency from each operator to a sink.
  std::vector<double> to_sink;
  /// Expected end-to-end latency of one item, source to sink, seconds
  /// (includes source generation time and window delay; legacy figure).
  double end_to_end = 0.0;

  /// Mean / variance / percentiles of the measured-comparable tuple
  /// latency: source emission to sink departure (see file comment).
  double sojourn_mean = 0.0;
  double sojourn_var = 0.0;
  LatencyPercentiles sojourn;

  /// Percentiles of one operator's response time.
  [[nodiscard]] LatencyPercentiles response_percentiles(OpIndex i) const {
    return latency_percentiles(response.at(i), response_var.at(i));
  }
};

/// Measured variability terms that replace the model's closed-form
/// defaults when an online profiler has fitted them (Beard & Chamberlain
/// style run-time approximation).  Both vectors are indexed by OpIndex and
/// may be empty; a negative (or missing) entry means "no measurement, keep
/// the default".
///
///   * ca2[i]: squared coefficient of variation of operator i's *arrival*
///     process.  The default assumes exponential arrivals (ca² = 1);
///     fitted values feed the Allen-Cunneen waiting term directly, so
///     bursty (ca² > 1) or smoothed (ca² < 1) streams predict their tails
///     honestly.  Round-robin fission still divides the base ca² by the
///     replica count (n-way splitting of any renewal stream).
///   * stall_p[i]: measured probability that a push *into* operator i
///     finds its buffer full (queue-occupancy sampling).  Replaces the
///     fill³ heuristic for open children when present.
struct LatencyModelInputs {
  std::vector<double> ca2;
  std::vector<double> stall_p;

  [[nodiscard]] bool empty() const { return ca2.empty() && stall_p.empty(); }
};

/// Estimates latencies for `t` under the rates of a prior steady_state()
/// run.  Utilizations are re-derived from `rates.arrival` and `plan`, so a
/// different plan than the one `rates` was computed with answers the
/// counterfactual "same arrivals, different replication" (used by the
/// latency-aware optimizer and the monotonicity property tests).
/// `buffer_capacity` is the mailbox bound B of the runtime configuration.
/// `inputs`, when non-null, overrides the closed-form variability terms
/// with profiler-fitted ones (see LatencyModelInputs); passing nullptr
/// reproduces the original model exactly.
LatencyEstimate estimate_latency(const Topology& t, const SteadyStateResult& rates,
                                 const ReplicationPlan& plan = {},
                                 std::size_t buffer_capacity = 64,
                                 const LatencyModelInputs* inputs = nullptr);

}  // namespace ss
