#include "core/key_partitioning.hpp"

#include <algorithm>
#include <numeric>

#include "core/error.hpp"

namespace ss {

KeyPartition partition_keys(const KeyDistribution& keys, int requested_replicas) {
  require(!keys.empty(), "partition_keys: empty key distribution");
  require(requested_replicas >= 1, "partition_keys: need at least one replica");

  const std::size_t num_keys = keys.num_keys();
  const int bins = static_cast<int>(
      std::min<std::size_t>(static_cast<std::size_t>(requested_replicas), num_keys));

  // Greedy LPT: heaviest key first onto the least-loaded bin.
  std::vector<std::size_t> by_weight(num_keys);
  std::iota(by_weight.begin(), by_weight.end(), 0);
  std::sort(by_weight.begin(), by_weight.end(), [&](std::size_t a, std::size_t b) {
    double pa = keys.probability(a);
    double pb = keys.probability(b);
    if (pa != pb) return pa > pb;
    return a < b;  // deterministic tie-break
  });

  std::vector<double> load(static_cast<std::size_t>(bins), 0.0);
  KeyPartition result;
  result.replica_of_key.assign(num_keys, 0);
  for (std::size_t k : by_weight) {
    auto lightest = std::min_element(load.begin(), load.end());
    *lightest += keys.probability(k);
    result.replica_of_key[k] = static_cast<int>(lightest - load.begin());
  }

  // Drop replicas that received no key (can happen with very skewed
  // distributions where one key dominates).
  std::vector<int> remap(static_cast<std::size_t>(bins), -1);
  int used = 0;
  for (int b = 0; b < bins; ++b) {
    if (load[static_cast<std::size_t>(b)] > 0.0) remap[static_cast<std::size_t>(b)] = used++;
  }
  for (int& r : result.replica_of_key) r = remap[static_cast<std::size_t>(r)];

  result.replicas = std::max(1, used);
  result.max_share = *std::max_element(load.begin(), load.end());
  return result;
}

}  // namespace ss
