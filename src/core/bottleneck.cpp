#include "core/bottleneck.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "core/error.hpp"

namespace ss {

namespace {
constexpr double kRhoTolerance = 1e-9;

/// Recomputes the key partition of every replicated partitioned-stateful
/// operator for the replica counts in `plan`, updating plan.max_share and
/// `partitions`.
void refresh_partitions(const Topology& t, ReplicationPlan& plan,
                        std::vector<KeyPartition>& partitions) {
  for (OpIndex i = 0; i < t.num_operators(); ++i) {
    if (t.op(i).state != StateKind::kPartitionedStateful) continue;
    if (plan.replicas_of(i) <= 1) {
      plan.max_share[i] = 0.0;
      partitions[i] = KeyPartition{};
      continue;
    }
    KeyPartition part = partition_keys(t.op(i).keys, plan.replicas_of(i));
    plan.replicas[i] = part.replicas;
    plan.max_share[i] = part.max_share;
    partitions[i] = std::move(part);
  }
}
}  // namespace

ReplicationPlan apply_replica_budget(const Topology& t, const ReplicationPlan& plan,
                                     int max_total) {
  const std::size_t n = t.num_operators();
  require(max_total >= 1, "apply_replica_budget: budget must be positive");
  const int total = plan.total_replicas(n);
  if (total <= max_total) return plan;

  const double r = static_cast<double>(max_total) / static_cast<double>(total);
  ReplicationPlan scaled;
  scaled.replicas.assign(n, 1);
  scaled.max_share.assign(n, 0.0);
  for (OpIndex i = 0; i < n; ++i) {
    scaled.replicas[i] =
        std::max(1, static_cast<int>(std::llround(plan.replicas_of(i) * r)));
  }

  // Rounding can leave the plan a few units above the budget; shave single
  // replicas off the most replicated operators (paper §3.2: "adjustments of
  // few units").  When even all-ones exceeds the budget nothing more can be
  // done: one replica per operator is the floor.
  while (scaled.total_replicas(n) > max_total) {
    OpIndex victim = kInvalidOp;
    for (OpIndex i = 0; i < n; ++i) {
      if (scaled.replicas[i] > 1 &&
          (victim == kInvalidOp || scaled.replicas[i] > scaled.replicas[victim])) {
        victim = i;
      }
    }
    if (victim == kInvalidOp) break;
    --scaled.replicas[victim];
  }
  return scaled;
}

BottleneckResult eliminate_bottlenecks(const Topology& t, const BottleneckOptions& options) {
  const std::size_t n = t.num_operators();
  const OpIndex source = t.source();
  const std::vector<OpIndex>& order = t.topological_order();

  BottleneckResult result;
  result.plan.replicas.assign(n, 1);
  result.plan.max_share.assign(n, 0.0);
  result.partitions.assign(n, KeyPartition{});

  double source_delta = ideal_source_rate(t);
  std::vector<double> delta(n, 0.0);

  // Guard mirroring steady_state(): every restart permanently lowers the
  // source rate, so restarts are bounded by the number of operators.
  int restarts = 0;
  const int max_restarts = static_cast<int>(2 * n + 8);

  bool done = false;
  while (!done) {
    done = true;
    delta.assign(n, 0.0);
    delta[source] = source_delta;

    for (std::size_t pos = 1; pos < order.size() && done; ++pos) {
      const OpIndex i = order[pos];
      const OperatorSpec& op = t.op(i);
      double lambda = 0.0;
      for (const Edge& e : t.in_edges(i)) lambda += delta[e.from] * e.probability;

      double capacity = op.service_rate() / result.plan.max_share_of(i);
      double rho = lambda / capacity;
      if (rho > 1.0 + kRhoTolerance) {
        switch (op.state) {
          case StateKind::kStateless: {
            // Definition 1: n_opt = ceil(rho) of the *sequential* operator.
            const int needed =
                static_cast<int>(std::ceil(lambda / op.service_rate() - kRhoTolerance));
            result.plan.replicas[i] = std::max(result.plan.replicas[i], needed);
            result.plan.max_share[i] = 0.0;
            break;
          }
          case StateKind::kPartitionedStateful: {
            const int needed =
                static_cast<int>(std::ceil(lambda / op.service_rate() - kRhoTolerance));
            KeyPartition part = partition_keys(op.keys, needed);
            result.plan.replicas[i] = part.replicas;
            result.plan.max_share[i] = part.max_share;
            result.partitions[i] = std::move(part);
            const double new_rho = lambda * result.plan.max_share[i] / op.service_rate();
            if (new_rho > 1.0 + kRhoTolerance) {
              // Keys too skewed: mitigated, not removed (Alg. 2 lines 17-20).
              require(restarts++ < max_restarts, "eliminate_bottlenecks: no convergence");
              source_delta /= new_rho;
              done = false;
              continue;
            }
            break;
          }
          case StateKind::kStateful: {
            // Fission impossible; correct the source (Alg. 2 lines 24-28).
            require(restarts++ < max_restarts, "eliminate_bottlenecks: no convergence");
            source_delta /= rho;
            done = false;
            continue;
          }
        }
      }
      capacity = op.service_rate() / result.plan.max_share_of(i);
      delta[i] = std::min(lambda, capacity) * op.selectivity.rate_gain();
    }
  }

  // Hold-off replication: enforce the user's global budget, then re-derive
  // the achievable key shares for the reduced replica counts.
  if (options.max_total_replicas &&
      result.plan.total_replicas(n) > *options.max_total_replicas) {
    result.plan = apply_replica_budget(t, result.plan, *options.max_total_replicas);
    refresh_partitions(t, result.plan, result.partitions);
  }

  result.analysis = steady_state(t, result.plan);
  result.unresolved = result.analysis.bottlenecks;
  result.total_replicas = result.plan.total_replicas(n);
  result.additional_replicas = result.total_replicas - static_cast<int>(n);
  result.reaches_ideal =
      result.analysis.source_rate >= ideal_source_rate(t) * (1.0 - 1e-6);
  return result;
}

}  // namespace ss
