// Key frequency distributions for partitioned-stateful operators (paper §3.2).
//
// A partitioned-stateful operator routes each item to a replica according to
// a partitioning-key attribute.  How well fission works on such an operator
// depends on the key frequency distribution: the most loaded replica receives
// a fraction p_max of the stream, and the operator remains a bottleneck when
// p_max * lambda > mu.  SpinStreams therefore carries the measured (or
// assumed) key frequencies in the topology description.
#pragma once

#include <cstddef>
#include <vector>

namespace ss {

/// Discrete probability distribution over the key domain of a
/// partitioned-stateful operator.  Frequencies are normalized on
/// construction; keys are identified by their index.
class KeyDistribution {
 public:
  KeyDistribution() = default;

  /// Builds from raw (not necessarily normalized) non-negative frequencies.
  /// Throws ss::Error if `frequencies` is empty, contains a negative value,
  /// or sums to zero.
  explicit KeyDistribution(std::vector<double> frequencies);

  /// Uniform distribution over `num_keys` keys.
  static KeyDistribution uniform(std::size_t num_keys);

  /// Zipf (power-law) distribution with scaling exponent `alpha` > 0 over
  /// `num_keys` keys; frequency of key k is proportional to 1/(k+1)^alpha.
  /// The paper generates key skew this way (§5.3).
  static KeyDistribution zipf(std::size_t num_keys, double alpha);

  [[nodiscard]] std::size_t num_keys() const { return probabilities_.size(); }
  [[nodiscard]] bool empty() const { return probabilities_.empty(); }

  /// Normalized frequency of key `k`.
  [[nodiscard]] double probability(std::size_t k) const { return probabilities_.at(k); }

  [[nodiscard]] const std::vector<double>& probabilities() const { return probabilities_; }

  /// Largest single-key frequency; a lower bound on p_max for any
  /// partitioning into replicas.
  [[nodiscard]] double max_probability() const;

 private:
  std::vector<double> probabilities_;
};

}  // namespace ss
