#include "core/topology.hpp"

#include <algorithm>
#include <cmath>
#include <queue>
#include <unordered_map>
#include <unordered_set>

#include "core/error.hpp"

namespace ss {

namespace {
constexpr double kProbabilityTolerance = 1e-6;
}  // namespace

OpRole Topology::role(OpIndex i) const {
  if (in_.at(i).empty()) return OpRole::kSource;
  if (out_.at(i).empty()) return OpRole::kSink;
  return OpRole::kInner;
}

double Topology::edge_probability(OpIndex from, OpIndex to) const {
  for (const Edge& e : out_.at(from)) {
    if (e.to == to) return e.probability;
  }
  return 0.0;
}

bool Topology::has_edge(OpIndex from, OpIndex to) const {
  for (const Edge& e : out_.at(from)) {
    if (e.to == to) return true;
  }
  return false;
}

std::optional<OpIndex> Topology::find(const std::string& name) const {
  for (OpIndex i = 0; i < ops_.size(); ++i) {
    if (ops_[i].name == name) return i;
  }
  return std::nullopt;
}

std::optional<std::vector<OpIndex>> topological_sort(std::size_t n, const std::vector<Edge>& edges) {
  std::vector<std::size_t> in_degree(n, 0);
  std::vector<std::vector<OpIndex>> adjacency(n);
  for (const Edge& e : edges) {
    adjacency[e.from].push_back(e.to);
    ++in_degree[e.to];
  }
  // Min-heap on the vertex index keeps the order deterministic.
  std::priority_queue<OpIndex, std::vector<OpIndex>, std::greater<>> ready;
  for (OpIndex i = 0; i < n; ++i) {
    if (in_degree[i] == 0) ready.push(i);
  }
  std::vector<OpIndex> order;
  order.reserve(n);
  while (!ready.empty()) {
    OpIndex u = ready.top();
    ready.pop();
    order.push_back(u);
    for (OpIndex v : adjacency[u]) {
      if (--in_degree[v] == 0) ready.push(v);
    }
  }
  if (order.size() != n) return std::nullopt;  // cycle
  return order;
}

OpIndex Topology::Builder::add_operator(OperatorSpec spec) {
  require(!spec.name.empty(), "Topology: operator name must not be empty");
  require(spec.service_time > 0.0,
          "Topology: operator '" + spec.name + "' must have service_time > 0");
  require(spec.selectivity.input > 0.0 && spec.selectivity.output > 0.0,
          "Topology: operator '" + spec.name + "' must have positive selectivities");
  for (const OperatorSpec& existing : ops_) {
    require(existing.name != spec.name, "Topology: duplicate operator name '" + spec.name + "'");
  }
  ops_.push_back(std::move(spec));
  return static_cast<OpIndex>(ops_.size() - 1);
}

OpIndex Topology::Builder::add_operator(std::string name, double service_time, StateKind state,
                                        Selectivity selectivity) {
  OperatorSpec spec;
  spec.name = std::move(name);
  spec.service_time = service_time;
  spec.state = state;
  spec.selectivity = selectivity;
  return add_operator(std::move(spec));
}

Topology::Builder& Topology::Builder::add_edge(OpIndex from, OpIndex to, double probability) {
  require(from < ops_.size() && to < ops_.size(), "Topology: edge endpoint out of range");
  require(from != to, "Topology: self-loop on operator '" + ops_[from].name + "'");
  require(probability > 0.0 && probability <= 1.0 + kProbabilityTolerance,
          "Topology: edge probability must be in (0, 1]");
  for (const Edge& e : edges_) {
    require(!(e.from == from && e.to == to), "Topology: duplicate edge '" + ops_[from].name +
                                                 "' -> '" + ops_[to].name + "'");
  }
  edges_.push_back(Edge{from, to, probability});
  return *this;
}

Topology::Builder& Topology::Builder::normalize_probabilities() {
  std::vector<double> out_sum(ops_.size(), 0.0);
  for (const Edge& e : edges_) out_sum[e.from] += e.probability;
  for (Edge& e : edges_) {
    if (out_sum[e.from] > 0.0) e.probability /= out_sum[e.from];
  }
  return *this;
}

Topology::Builder& Topology::Builder::add_fictitious_source(double service_time,
                                                            const std::string& name) {
  std::vector<bool> has_input(ops_.size(), false);
  for (const Edge& e : edges_) has_input[e.to] = true;
  std::vector<OpIndex> roots;
  for (OpIndex i = 0; i < ops_.size(); ++i) {
    if (!has_input[i]) roots.push_back(i);
  }
  if (roots.size() <= 1) return *this;

  // Split the combined stream proportionally to the roots' own rates so the
  // fictitious source preserves each original source's share of traffic.
  double total_rate = 0.0;
  for (OpIndex r : roots) total_rate += ops_[r].service_rate();
  OperatorSpec spec;
  spec.name = name;
  spec.service_time = service_time;
  spec.state = StateKind::kStateless;
  OpIndex root = add_operator(std::move(spec));
  for (OpIndex r : roots) {
    add_edge(root, r, ops_[r].service_rate() / total_rate);
  }
  return *this;
}

Topology Topology::Builder::build() const {
  require(!ops_.empty(), "Topology: must contain at least one operator");

  const std::size_t n = ops_.size();
  std::vector<std::vector<Edge>> out(n);
  std::vector<std::vector<Edge>> in(n);
  for (const Edge& e : edges_) {
    out[e.from].push_back(e);
    in[e.to].push_back(e);
  }

  // Single source.
  OpIndex source = kInvalidOp;
  for (OpIndex i = 0; i < n; ++i) {
    if (in[i].empty()) {
      require(source == kInvalidOp,
              "Topology: multiple sources ('" + ops_[source == kInvalidOp ? i : source].name +
                  "' and '" + ops_[i].name +
                  "'); use add_fictitious_source() for multi-source graphs");
      source = i;
    }
  }
  require(source != kInvalidOp, "Topology: no source vertex (every operator has an input edge)");

  // Acyclicity.
  auto order = topological_sort(n, edges_);
  require(order.has_value(), "Topology: the graph contains a cycle");

  // Reachability from the source (flow-graph property, paper §3.1).
  std::vector<bool> reachable(n, false);
  std::vector<OpIndex> stack{source};
  reachable[source] = true;
  while (!stack.empty()) {
    OpIndex u = stack.back();
    stack.pop_back();
    for (const Edge& e : out[u]) {
      if (!reachable[e.to]) {
        reachable[e.to] = true;
        stack.push_back(e.to);
      }
    }
  }
  for (OpIndex i = 0; i < n; ++i) {
    require(reachable[i],
            "Topology: operator '" + ops_[i].name + "' is not reachable from the source");
  }

  // Out-edge probabilities sum to one.
  for (OpIndex i = 0; i < n; ++i) {
    if (out[i].empty()) continue;
    double sum = 0.0;
    for (const Edge& e : out[i]) sum += e.probability;
    require(std::abs(sum - 1.0) <= kProbabilityTolerance * static_cast<double>(out[i].size() + 1),
            "Topology: out-edge probabilities of '" + ops_[i].name + "' sum to " +
                std::to_string(sum) + ", expected 1.0");
  }

  // Partitioned-stateful operators need a key distribution.
  for (OpIndex i = 0; i < n; ++i) {
    if (ops_[i].state == StateKind::kPartitionedStateful) {
      require(!ops_[i].keys.empty(), "Topology: partitioned-stateful operator '" + ops_[i].name +
                                         "' requires a key distribution");
    }
  }

  Topology t;
  t.ops_ = ops_;
  t.edges_ = edges_;
  t.out_ = std::move(out);
  t.in_ = std::move(in);
  t.topo_order_ = std::move(*order);
  t.source_ = source;
  for (OpIndex i = 0; i < n; ++i) {
    if (t.out_[i].empty()) t.sinks_.push_back(i);
  }
  return t;
}

std::string to_string(StateKind kind) {
  switch (kind) {
    case StateKind::kStateless:
      return "stateless";
    case StateKind::kPartitionedStateful:
      return "partitioned";
    case StateKind::kStateful:
      return "stateful";
  }
  return "unknown";
}

StateKind state_kind_from_string(const std::string& name) {
  if (name == "stateless") return StateKind::kStateless;
  if (name == "partitioned" || name == "partitioned-stateful") {
    return StateKind::kPartitionedStateful;
  }
  if (name == "stateful") return StateKind::kStateful;
  throw Error("unknown state kind '" + name + "'");
}

}  // namespace ss
