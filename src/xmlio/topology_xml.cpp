#include "xmlio/topology_xml.hpp"

#include <fstream>
#include <map>
#include <sstream>

#include "core/error.hpp"
#include "xmlio/xml.hpp"

namespace ss::xml {

namespace {

/// Serializes a double with enough digits to round-trip exactly.
std::string fmt(double value) {
  std::ostringstream out;
  out.precision(17);
  out << value;
  return out.str();
}

double time_unit_factor(const std::string& unit) {
  if (unit == "s") return 1.0;
  if (unit == "ms") return 1e-3;
  if (unit == "us") return 1e-6;
  if (unit == "ns") return 1e-9;
  throw Error("topology xml: unknown time-unit '" + unit + "' (expected s/ms/us/ns)");
}

KeyDistribution parse_keys(const XmlNode& keys) {
  if (keys.has_attr("values")) {
    std::istringstream in(keys.attr("values"));
    std::vector<double> values;
    double v = 0.0;
    while (in >> v) values.push_back(v);
    require(!values.empty(), "topology xml: <keys values=...> must list frequencies");
    return KeyDistribution(values);
  }
  const auto count = static_cast<std::size_t>(keys.attr_double("count"));
  const std::string distribution = keys.attr("distribution", "uniform");
  if (distribution == "uniform") return KeyDistribution::uniform(count);
  if (distribution == "zipf") return KeyDistribution::zipf(count, keys.attr_double("alpha", 1.5));
  throw Error("topology xml: unknown key distribution '" + distribution + "'");
}

}  // namespace

Topology load_topology(const std::string& xml_text) {
  const XmlNode root = parse_xml(xml_text);
  require(root.name == "topology",
          "topology xml: root element must be <topology>, got <" + root.name + ">");

  Topology::Builder builder;
  std::map<std::string, OpIndex> index_of;
  for (const XmlNode* op_node : root.children_named("operator")) {
    OperatorSpec spec;
    spec.name = op_node->require_attr("name");
    const double factor = time_unit_factor(op_node->attr("time-unit", "ms"));
    spec.service_time = op_node->attr_double("service-time") * factor;
    spec.state = state_kind_from_string(op_node->attr("state", "stateless"));
    spec.selectivity.input = op_node->attr_double("input-selectivity", 1.0);
    spec.selectivity.output = op_node->attr_double("output-selectivity", 1.0);
    spec.impl = op_node->attr("impl", "");
    if (const XmlNode* keys = op_node->child("keys")) spec.keys = parse_keys(*keys);
    const std::string name = spec.name;
    index_of[name] = builder.add_operator(std::move(spec));
  }

  for (const XmlNode* edge : root.children_named("edge")) {
    const std::string from = edge->require_attr("from");
    const std::string to = edge->require_attr("to");
    require(index_of.count(from) > 0, "topology xml: edge from unknown operator '" + from + "'");
    require(index_of.count(to) > 0, "topology xml: edge to unknown operator '" + to + "'");
    builder.add_edge(index_of[from], index_of[to], edge->attr_double("probability", 1.0));
  }
  return builder.build();
}

Topology load_topology_file(const std::string& path) {
  std::ifstream in(path);
  require(in.good(), "topology xml: cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return load_topology(buffer.str());
}

std::string save_topology(const Topology& t, const std::string& app_name) {
  XmlNode root;
  root.name = "topology";
  root.attributes["name"] = app_name;

  for (OpIndex i = 0; i < t.num_operators(); ++i) {
    const OperatorSpec& op = t.op(i);
    XmlNode node;
    node.name = "operator";
    node.attributes["name"] = op.name;
    node.attributes["service-time"] = fmt(op.service_time * 1e3);
    node.attributes["time-unit"] = "ms";
    node.attributes["state"] = to_string(op.state);
    if (op.selectivity.input != 1.0) {
      node.attributes["input-selectivity"] = fmt(op.selectivity.input);
    }
    if (op.selectivity.output != 1.0) {
      node.attributes["output-selectivity"] = fmt(op.selectivity.output);
    }
    if (!op.impl.empty()) node.attributes["impl"] = op.impl;
    if (!op.keys.empty()) {
      XmlNode keys;
      keys.name = "keys";
      std::ostringstream values;
      values.precision(17);
      for (std::size_t k = 0; k < op.keys.num_keys(); ++k) {
        if (k > 0) values << ' ';
        values << op.keys.probability(k);
      }
      keys.attributes["values"] = values.str();
      node.children.push_back(std::move(keys));
    }
    root.children.push_back(std::move(node));
  }
  for (const Edge& e : t.edges()) {
    XmlNode edge;
    edge.name = "edge";
    edge.attributes["from"] = t.op(e.from).name;
    edge.attributes["to"] = t.op(e.to).name;
    edge.attributes["probability"] = fmt(e.probability);
    root.children.push_back(std::move(edge));
  }
  return write_xml(root);
}

void save_topology_file(const Topology& t, const std::string& path,
                        const std::string& app_name) {
  std::ofstream out(path);
  require(out.good(), "topology xml: cannot write '" + path + "'");
  out << save_topology(t, app_name);
}

}  // namespace ss::xml
