#include "xmlio/xml.hpp"

#include <cctype>
#include <cstdlib>
#include <sstream>

#include "core/error.hpp"

namespace ss::xml {

namespace {

class Parser {
 public:
  explicit Parser(std::string_view input) : input_(input) {}

  XmlNode parse_document() {
    skip_misc();
    require(!at_end(), "xml: document has no root element");
    XmlNode root = parse_element();
    skip_misc();
    require(at_end(), err("trailing content after the root element"));
    return root;
  }

 private:
  [[nodiscard]] bool at_end() const { return pos_ >= input_.size(); }
  [[nodiscard]] char peek() const { return input_[pos_]; }
  [[nodiscard]] bool starts_with(std::string_view prefix) const {
    return input_.substr(pos_, prefix.size()) == prefix;
  }

  char advance() {
    const char c = input_[pos_++];
    if (c == '\n') ++line_;
    return c;
  }

  void skip(std::size_t n) {
    for (std::size_t i = 0; i < n && !at_end(); ++i) advance();
  }

  [[nodiscard]] std::string err(const std::string& message) const {
    return "xml (line " + std::to_string(line_) + "): " + message;
  }

  void skip_whitespace() {
    while (!at_end() && std::isspace(static_cast<unsigned char>(peek()))) advance();
  }

  /// Whitespace, comments and processing instructions / declarations.
  void skip_misc() {
    while (true) {
      skip_whitespace();
      if (starts_with("<!--")) {
        skip(4);
        while (!at_end() && !starts_with("-->")) advance();
        require(!at_end(), err("unterminated comment"));
        skip(3);
      } else if (starts_with("<?")) {
        while (!at_end() && !starts_with("?>")) advance();
        require(!at_end(), err("unterminated processing instruction"));
        skip(2);
      } else if (starts_with("<!DOCTYPE")) {
        while (!at_end() && peek() != '>') advance();
        require(!at_end(), err("unterminated DOCTYPE"));
        advance();
      } else {
        return;
      }
    }
  }

  [[nodiscard]] static bool is_name_char(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-' || c == '.' ||
           c == ':';
  }

  std::string parse_name() {
    std::string name;
    while (!at_end() && is_name_char(peek())) name.push_back(advance());
    require(!name.empty(), err("expected a name"));
    return name;
  }

  std::string decode_entities(const std::string& raw) {
    std::string out;
    out.reserve(raw.size());
    for (std::size_t i = 0; i < raw.size(); ++i) {
      if (raw[i] != '&') {
        out.push_back(raw[i]);
        continue;
      }
      const auto semi = raw.find(';', i);
      require(semi != std::string::npos, err("unterminated entity"));
      const std::string entity = raw.substr(i + 1, semi - i - 1);
      if (entity == "amp") {
        out.push_back('&');
      } else if (entity == "lt") {
        out.push_back('<');
      } else if (entity == "gt") {
        out.push_back('>');
      } else if (entity == "quot") {
        out.push_back('"');
      } else if (entity == "apos") {
        out.push_back('\'');
      } else if (!entity.empty() && entity[0] == '#') {
        const long code = std::strtol(entity.c_str() + 1, nullptr, entity[1] == 'x' ? 16 : 10);
        require(code > 0 && code < 128, err("unsupported character reference &" + entity + ";"));
        out.push_back(static_cast<char>(code));
      } else {
        throw Error(err("unknown entity &" + entity + ";"));
      }
      i = semi;
    }
    return out;
  }

  std::string parse_attr_value() {
    require(!at_end() && (peek() == '"' || peek() == '\''), err("expected a quoted value"));
    const char quote = advance();
    std::string raw;
    while (!at_end() && peek() != quote) raw.push_back(advance());
    require(!at_end(), err("unterminated attribute value"));
    advance();  // closing quote
    return decode_entities(raw);
  }

  XmlNode parse_element() {
    require(peek() == '<', err("expected '<'"));
    advance();
    XmlNode node;
    node.name = parse_name();

    // Attributes.
    while (true) {
      skip_whitespace();
      require(!at_end(), err("unterminated start tag <" + node.name));
      if (peek() == '>' || starts_with("/>")) break;
      const std::string key = parse_name();
      skip_whitespace();
      require(!at_end() && peek() == '=', err("expected '=' after attribute '" + key + "'"));
      advance();
      skip_whitespace();
      require(node.attributes.emplace(key, parse_attr_value()).second,
              err("duplicate attribute '" + key + "'"));
    }
    if (starts_with("/>")) {
      skip(2);
      return node;
    }
    advance();  // '>'

    // Content.
    std::string text;
    while (true) {
      require(!at_end(), err("unterminated element <" + node.name + ">"));
      if (starts_with("</")) {
        skip(2);
        const std::string closing = parse_name();
        require(closing == node.name,
                err("mismatched closing tag </" + closing + "> for <" + node.name + ">"));
        skip_whitespace();
        require(!at_end() && peek() == '>', err("malformed closing tag"));
        advance();
        break;
      }
      if (starts_with("<!--")) {
        skip(4);
        while (!at_end() && !starts_with("-->")) advance();
        require(!at_end(), err("unterminated comment"));
        skip(3);
      } else if (peek() == '<') {
        node.children.push_back(parse_element());
      } else {
        text.push_back(advance());
      }
    }

    // Trim and decode the character data.
    const auto first = text.find_first_not_of(" \t\r\n");
    if (first != std::string::npos) {
      const auto last = text.find_last_not_of(" \t\r\n");
      node.text = decode_entities(text.substr(first, last - first + 1));
    }
    return node;
  }

  std::string_view input_;
  std::size_t pos_ = 0;
  int line_ = 1;
};

void write_node(const XmlNode& node, std::ostringstream& out, int depth) {
  const std::string indent(static_cast<std::size_t>(depth) * 2, ' ');
  out << indent << '<' << node.name;
  for (const auto& [key, value] : node.attributes) {
    out << ' ' << key << "=\"" << escape_text(value) << '"';
  }
  if (node.children.empty() && node.text.empty()) {
    out << "/>\n";
    return;
  }
  out << '>';
  if (!node.text.empty()) out << escape_text(node.text);
  if (!node.children.empty()) {
    out << '\n';
    for (const XmlNode& child : node.children) write_node(child, out, depth + 1);
    out << indent;
  }
  out << "</" << node.name << ">\n";
}

}  // namespace

const XmlNode* XmlNode::child(const std::string& child_name) const {
  for (const XmlNode& c : children) {
    if (c.name == child_name) return &c;
  }
  return nullptr;
}

std::vector<const XmlNode*> XmlNode::children_named(const std::string& child_name) const {
  std::vector<const XmlNode*> result;
  for (const XmlNode& c : children) {
    if (c.name == child_name) result.push_back(&c);
  }
  return result;
}

bool XmlNode::has_attr(const std::string& key) const { return attributes.count(key) > 0; }

std::string XmlNode::attr(const std::string& key, const std::string& fallback) const {
  auto it = attributes.find(key);
  return it == attributes.end() ? fallback : it->second;
}

double XmlNode::attr_double(const std::string& key) const {
  const std::string value = require_attr(key);
  char* end = nullptr;
  const double parsed = std::strtod(value.c_str(), &end);
  require(end != value.c_str() && *end == '\0',
          "xml: attribute '" + key + "' of <" + name + "> is not a number: '" + value + "'");
  return parsed;
}

double XmlNode::attr_double(const std::string& key, double fallback) const {
  return has_attr(key) ? attr_double(key) : fallback;
}

std::string XmlNode::require_attr(const std::string& key) const {
  auto it = attributes.find(key);
  require(it != attributes.end(), "xml: <" + name + "> requires attribute '" + key + "'");
  return it->second;
}

XmlNode parse_xml(std::string_view input) { return Parser(input).parse_document(); }

std::string write_xml(const XmlNode& node) {
  std::ostringstream out;
  out << "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n";
  write_node(node, out, 0);
  return out.str();
}

std::string escape_text(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      case '\'':
        out += "&apos;";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

}  // namespace ss::xml
