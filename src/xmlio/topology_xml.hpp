// The XML topology description format (paper §4.1): operators with service
// time (and its unit), state class, selectivities, key distributions, and
// edges with routing probabilities.
//
// Example:
//
//   <topology name="example">
//     <operator name="source" impl="source" service-time="1" time-unit="ms"/>
//     <operator name="agg" impl="win_sum" service-time="2.5" time-unit="ms"
//               state="partitioned" input-selectivity="10">
//       <keys distribution="zipf" count="100" alpha="1.5"/>
//     </operator>
//     <operator name="sink" impl="sink" service-time="100" time-unit="us"/>
//     <edge from="source" to="agg"/>
//     <edge from="agg" to="sink" probability="1.0"/>
//   </topology>
//
// Explicit key frequencies are also accepted:
//   <keys values="0.5 0.3 0.2"/>
#pragma once

#include <string>

#include "core/topology.hpp"

namespace ss::xml {

/// Parses the XML description and builds a validated Topology.
/// Throws ss::Error on malformed XML or violated topology constraints.
Topology load_topology(const std::string& xml_text);

/// Reads the description from a file.
Topology load_topology_file(const std::string& path);

/// Serializes a topology back to the description format (explicit key
/// frequency values; times in milliseconds).
std::string save_topology(const Topology& t, const std::string& app_name = "app");

/// Writes the description to a file.
void save_topology_file(const Topology& t, const std::string& path,
                        const std::string& app_name = "app");

}  // namespace ss::xml
