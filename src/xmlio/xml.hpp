// Minimal XML DOM: enough of the language for the SpinStreams topology
// description format (elements, attributes, text, comments, declarations,
// the five predefined entities), with no external dependencies.
// parse_xml() reports errors with line numbers via ss::Error.
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace ss::xml {

struct XmlNode {
  std::string name;
  std::map<std::string, std::string> attributes;
  std::vector<XmlNode> children;
  /// Concatenated character data directly inside this element (trimmed).
  std::string text;

  /// First child element with the given name, or nullptr.
  [[nodiscard]] const XmlNode* child(const std::string& child_name) const;
  /// All child elements with the given name.
  [[nodiscard]] std::vector<const XmlNode*> children_named(const std::string& child_name) const;

  [[nodiscard]] bool has_attr(const std::string& key) const;
  /// Attribute value or `fallback`.
  [[nodiscard]] std::string attr(const std::string& key, const std::string& fallback = "") const;
  /// Attribute parsed as double; throws ss::Error when absent or malformed.
  [[nodiscard]] double attr_double(const std::string& key) const;
  /// Attribute parsed as double with a fallback for absence.
  [[nodiscard]] double attr_double(const std::string& key, double fallback) const;
  /// Required attribute; throws ss::Error when absent.
  [[nodiscard]] std::string require_attr(const std::string& key) const;
};

/// Parses one XML document and returns its root element.
XmlNode parse_xml(std::string_view input);

/// Serializes a node (recursively) with 2-space indentation.
std::string write_xml(const XmlNode& node);

/// Escapes the five predefined entities in attribute/text content.
std::string escape_text(const std::string& raw);

}  // namespace ss::xml
