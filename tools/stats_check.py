#!/usr/bin/env python3
"""Validates the live stats endpoint payloads of a SpinStreams run.

Given the body of /stats.json and/or /metrics (saved to files by the CI
smoke job's curl), checks:

  JSON snapshot (--json FILE):
    * valid JSON object with t/epoch/dropped/ops/bottlenecks/e2e/sched,
    * a non-empty "ops" list where every entry carries the per-operator
      counter fields with the right types,
    * the scheduler block carries steals/batches/ring_enqueues/ring_spills,
    * with --require-profile, at least one operator carries a profiler
      estimate (est_rate/confidence/est_samples).

  Prometheus text (--prom FILE):
    * every sample line parses as  name[{labels}] value,
    * every metric family is preceded by its "# TYPE" declaration,
    * the always-present families exist (processed, busy seconds, queue
      depth, epoch, scheduler counters),
    * with --require-profile, the estimated-service-rate family exists.

Exit code 0 when every requested payload validates, 1 with a diagnostic on
the first violation.  Stdlib only -- runs anywhere CI has a python3.

Usage: stats_check.py [--json FILE] [--prom FILE] [--require-profile]
"""

import json
import re
import sys

SAMPLE_LINE = re.compile(
    r'^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)'
    r'(?:\{(?P<labels>[^}]*)\})?'
    r'\s+(?P<value>[^\s]+)$'
)

REQUIRED_OP_FIELDS = {
    "name": str,
    "processed": int,
    "emitted": int,
    "busy_s": (int, float),
    "blocked_s": (int, float),
    "queue": int,
    "queue_peak": int,
}

REQUIRED_PROM_FAMILIES = [
    "ss_op_processed_total",
    "ss_op_busy_seconds_total",
    "ss_op_queue_depth",
    "ss_epoch",
    "ss_dropped_total",
    "ss_sched_steals_total",
    "ss_sched_ring_enqueues_total",
    "ss_sched_ring_spills_total",
]


def fail(message):
    print(f"stats_check: FAIL: {message}", file=sys.stderr)
    return 1


def check_json(path, require_profile):
    try:
        with open(path, encoding="utf-8") as handle:
            snap = json.load(handle)
    except OSError as error:
        return fail(f"cannot read {path}: {error}")
    except json.JSONDecodeError as error:
        return fail(f"{path} is not valid JSON: {error}")

    if not isinstance(snap, dict):
        return fail("top level must be a JSON object")
    for key in ("t", "epoch", "dropped", "ops", "bottlenecks", "e2e", "sched"):
        if key not in snap:
            return fail(f'missing top-level key "{key}"')
    ops = snap["ops"]
    if not isinstance(ops, list) or not ops:
        return fail('"ops" must be a non-empty list')
    for index, op in enumerate(ops):
        if not isinstance(op, dict):
            return fail(f"ops[{index}] is not an object")
        for field, kind in REQUIRED_OP_FIELDS.items():
            if field not in op:
                return fail(f'ops[{index}] missing "{field}"')
            if not isinstance(op[field], kind):
                return fail(
                    f'ops[{index}].{field} has type {type(op[field]).__name__}'
                )
    sched = snap["sched"]
    if not isinstance(sched, dict):
        return fail('"sched" must be an object')
    for field in ("steals", "batches", "ring_enqueues", "ring_spills"):
        if not isinstance(sched.get(field), int):
            return fail(f'sched.{field} missing or not an integer')
    if not isinstance(snap["bottlenecks"], list):
        return fail('"bottlenecks" must be a list')
    for index, entry in enumerate(snap["bottlenecks"]):
        for field in ("op", "blame_s", "share"):
            if field not in entry:
                return fail(f'bottlenecks[{index}] missing "{field}"')
    if require_profile:
        profiled = [op for op in ops if "est_rate" in op]
        if not profiled:
            return fail("no operator carries a profiler estimate (est_rate)")
        for op in profiled:
            for field in ("confidence", "est_samples", "queue_full"):
                if field not in op:
                    return fail(f'profiled op "{op["name"]}" missing "{field}"')
    print(f"stats_check: {path}: {len(ops)} ops, "
          f"{len(snap['bottlenecks'])} bottleneck entries: OK")
    return 0


def check_prom(path, require_profile):
    try:
        with open(path, encoding="utf-8") as handle:
            lines = handle.read().splitlines()
    except OSError as error:
        return fail(f"cannot read {path}: {error}")

    declared = set()
    samples = 0
    for number, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 3 and parts[1] == "TYPE":
                declared.add(parts[2])
            continue
        match = SAMPLE_LINE.match(line)
        if match is None:
            return fail(f"{path}:{number}: unparseable sample line: {line!r}")
        name = match.group("name")
        if name not in declared:
            return fail(f'{path}:{number}: family "{name}" has no # TYPE')
        try:
            float(match.group("value"))
        except ValueError:
            return fail(f"{path}:{number}: non-numeric value: {line!r}")
        samples += 1
    if samples == 0:
        return fail(f"{path}: no sample lines at all")
    for family in REQUIRED_PROM_FAMILIES:
        if family not in declared:
            return fail(f'{path}: required family "{family}" missing')
    if require_profile and "ss_op_estimated_service_rate" not in declared:
        return fail(f"{path}: ss_op_estimated_service_rate missing "
                    "(profiler estimates not exported)")
    print(f"stats_check: {path}: {samples} samples, "
          f"{len(declared)} typed families: OK")
    return 0


def main(argv):
    json_path = None
    prom_path = None
    require_profile = False
    it = iter(argv[1:])
    for arg in it:
        if arg == "--json":
            json_path = next(it, None)
        elif arg == "--prom":
            prom_path = next(it, None)
        elif arg == "--require-profile":
            require_profile = True
        else:
            return fail(f"unknown argument {arg}")
    if json_path is None and prom_path is None:
        print(__doc__, file=sys.stderr)
        return 2
    if json_path is not None:
        status = check_json(json_path, require_profile)
        if status != 0:
            return status
    if prom_path is not None:
        status = check_prom(prom_path, require_profile)
        if status != 0:
            return status
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
