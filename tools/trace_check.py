#!/usr/bin/env python3
"""Validates a SpinStreams --trace output file against the Chrome
trace-event JSON format (the subset Perfetto / chrome://tracing load).

Checks:
  * the file is valid JSON with a top-level "traceEvents" list,
  * every event carries the required keys (name/ph/ts/pid/tid),
  * complete events ('X') carry a non-negative "dur",
  * instant events ('i') carry a scope "s",
  * metadata events ('M') are thread_name records with an args.name,
  * timestamps are non-negative and (optionally) at least N events exist.

Exit code 0 on a valid trace, 1 with a diagnostic on the first violation.
Stdlib only -- runs anywhere CI has a python3.

Usage: trace_check.py TRACE.json [--min-events=N] [--require-span=NAME]
"""

import json
import sys

KNOWN_PHASES = {"X", "i", "I", "M", "B", "E", "b", "e", "n", "C"}


def fail(message):
    print(f"trace_check: FAIL: {message}", file=sys.stderr)
    return 1


def main(argv):
    path = None
    min_events = 1
    required_spans = []
    for arg in argv[1:]:
        if arg.startswith("--min-events="):
            min_events = int(arg.split("=", 1)[1])
        elif arg.startswith("--require-span="):
            required_spans.append(arg.split("=", 1)[1])
        elif arg.startswith("--"):
            return fail(f"unknown flag {arg}")
        elif path is None:
            path = arg
        else:
            return fail("exactly one trace file expected")
    if path is None:
        print(__doc__, file=sys.stderr)
        return 2

    try:
        with open(path, encoding="utf-8") as handle:
            document = json.load(handle)
    except OSError as error:
        return fail(f"cannot read {path}: {error}")
    except json.JSONDecodeError as error:
        return fail(f"{path} is not valid JSON: {error}")

    if not isinstance(document, dict) or "traceEvents" not in document:
        return fail('top level must be an object with a "traceEvents" list')
    events = document["traceEvents"]
    if not isinstance(events, list):
        return fail('"traceEvents" must be a list')

    seen_names = set()
    threads_named = 0
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            return fail(f"{where} is not an object")
        phase = event.get("ph")
        if phase not in KNOWN_PHASES:
            return fail(f"{where} has unknown phase {phase!r}")
        # Metadata events carry no timestamp; everything else must.
        required = ("name", "ph", "pid", "tid") if phase == "M" else (
            "name", "ph", "ts", "pid", "tid")
        for key in required:
            if key not in event:
                return fail(f"{where} is missing required key {key!r}")
        if phase != "M":
            if not isinstance(event["ts"], (int, float)) or event["ts"] < 0:
                return fail(f"{where} has a negative or non-numeric ts")
        if phase == "X":
            if "dur" not in event:
                return fail(f"{where} is a complete event without dur")
            if not isinstance(event["dur"], (int, float)) or event["dur"] < 0:
                return fail(f"{where} has a negative or non-numeric dur")
        if phase == "i" and "s" not in event:
            return fail(f"{where} is an instant event without scope 's'")
        if phase == "M":
            if event["name"] != "thread_name":
                return fail(f"{where} metadata must be thread_name, got {event['name']!r}")
            if not event.get("args", {}).get("name"):
                return fail(f"{where} thread_name metadata lacks args.name")
            threads_named += 1
        else:
            seen_names.add(event["name"])

    if len(events) < min_events:
        return fail(f"only {len(events)} events, expected >= {min_events}")
    if threads_named == 0 and events:
        return fail("no thread_name metadata: Perfetto would show bare tids")
    for span in required_spans:
        if span not in seen_names:
            return fail(f"required span {span!r} absent (saw: {sorted(seen_names)})")

    print(
        f"trace_check: OK: {len(events)} events, {threads_named} named threads, "
        f"{len(seen_names)} distinct event names"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
