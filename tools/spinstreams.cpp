// The spinstreams command-line tool; all logic lives in src/cli/cli.cpp so
// it can be unit-tested.
#include <iostream>

#include "cli/cli.hpp"

int main(int argc, char** argv) { return ss::cli::run_cli(argc, argv, std::cout, std::cerr); }
