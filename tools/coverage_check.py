#!/usr/bin/env python3
"""Gate line coverage of an lcov tracefile.

Reads an lcov .info file, computes line coverage over the source files
matching --path-prefix (after normalization), prints a per-file table and
fails (exit 1) when the aggregate falls below --min-percent.

Usage:
  python3 tools/coverage_check.py coverage.info --path-prefix=src/core/ \
      --min-percent=90
"""

from __future__ import annotations

import argparse
import sys


def parse_tracefile(path: str) -> dict[str, tuple[int, int]]:
    """Returns {source_file: (covered_lines, instrumented_lines)}."""
    per_file: dict[str, tuple[int, int]] = {}
    current = None
    covered = 0
    total = 0
    with open(path, encoding="utf-8") as handle:
        for raw in handle:
            line = raw.strip()
            if line.startswith("SF:"):
                current = line[3:]
                covered = 0
                total = 0
            elif line.startswith("DA:") and current is not None:
                # DA:<line>,<hit count>[,...]
                parts = line[3:].split(",")
                total += 1
                if int(parts[1]) > 0:
                    covered += 1
            elif line == "end_of_record" and current is not None:
                old = per_file.get(current, (0, 0))
                per_file[current] = (old[0] + covered, old[1] + total)
                current = None
    return per_file


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("tracefile", help="lcov .info tracefile")
    parser.add_argument("--path-prefix", default="src/core/",
                        help="only count files whose path contains this")
    parser.add_argument("--min-percent", type=float, required=True,
                        help="fail when aggregate line coverage drops below")
    args = parser.parse_args()

    per_file = parse_tracefile(args.tracefile)
    covered = 0
    total = 0
    rows = []
    for source, (hit, lines) in sorted(per_file.items()):
        if args.path_prefix not in source:
            continue
        covered += hit
        total += lines
        pct = 100.0 * hit / lines if lines else 100.0
        rows.append((source, hit, lines, pct))

    if not rows:
        print(f"error: no files matching '{args.path_prefix}' in "
              f"{args.tracefile}", file=sys.stderr)
        return 1

    for source, hit, lines, pct in rows:
        print(f"{pct:6.1f}%  {hit:5d}/{lines:<5d}  {source}")
    aggregate = 100.0 * covered / total
    print(f"\n{args.path_prefix} line coverage: {aggregate:.2f}% "
          f"({covered}/{total} lines), floor {args.min_percent:.2f}%")
    if aggregate < args.min_percent:
        print(f"FAIL: coverage dropped below the recorded floor "
              f"({aggregate:.2f}% < {args.min_percent:.2f}%)", file=sys.stderr)
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
