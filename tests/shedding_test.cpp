// Tests of the load-shedding overflow policy (paper §2's alternative to
// backpressure) in the mailbox, the engine, and the simulator.
#include <gtest/gtest.h>

#include <chrono>

#include "core/steady_state.hpp"
#include "runtime/engine.hpp"
#include "runtime/mailbox.hpp"
#include "sim/des.hpp"

namespace ss {
namespace {

using namespace std::chrono_literals;
using runtime::Mailbox;
using runtime::Message;
using runtime::OverflowPolicy;

TEST(SheddingMailbox, DropsImmediatelyWhenFull) {
  Mailbox box(2, OverflowPolicy::kShedNewest);
  const Message m = Message::data({}, 0, 1);
  EXPECT_TRUE(box.send(m, 10s));
  EXPECT_TRUE(box.send(m, 10s));
  const auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(box.send(m, 10s));  // returns at once despite the long timeout
  EXPECT_LT(std::chrono::steady_clock::now() - start, 100ms);
  EXPECT_EQ(box.dropped(), 1u);
  EXPECT_EQ(box.size(), 2u);
}

TEST(SheddingMailbox, AcceptsAgainAfterDrain) {
  Mailbox box(1, OverflowPolicy::kShedNewest);
  const Message m = Message::data({}, 0, 1);
  EXPECT_TRUE(box.send(m, 1s));
  EXPECT_FALSE(box.send(m, 1s));
  Message out;
  EXPECT_TRUE(box.receive(out));
  EXPECT_TRUE(box.send(m, 1s));
}

TEST(SheddingDes, SourceRunsUnthrottled) {
  // src 1 ms, slow 4 ms: BAS throttles the source to 250/s; with shedding
  // the source keeps its ~1000/s pace and the surplus is discarded.
  Topology::Builder b;
  b.add_operator("src", 1e-3);
  b.add_operator("slow", 4e-3);
  b.add_edge(0, 1);
  Topology t = b.build();

  sim::SimOptions options;
  options.duration = 60.0;
  options.seed = 3;
  const sim::SimResult bas = sim::simulate(t, options);
  options.shedding = true;
  const sim::SimResult shed = sim::simulate(t, options);

  EXPECT_NEAR(bas.throughput, 250.0, 10.0);
  // Under shedding the source *generates* at full pace (its arrival rate);
  // only the delivered fraction counts as departures.
  EXPECT_NEAR(shed.ops[0].arrival_rate, 1000.0, 30.0);
  EXPECT_NEAR(shed.throughput, 250.0, 10.0);
  EXPECT_EQ(bas.shed, 0u);
  EXPECT_GT(shed.shed, 0u);
  // The bottleneck still only serves ~250/s; ~75% of items are lost.
  EXPECT_NEAR(shed.ops[1].arrival_rate, 250.0, 10.0);
  const double loss = static_cast<double>(shed.shed) /
                      static_cast<double>(shed.ops[0].emitted + shed.shed);
  EXPECT_NEAR(loss, 0.75, 0.03);
}

TEST(SheddingDes, NoLossWithoutBottleneck) {
  Topology::Builder b;
  b.add_operator("src", 2e-3);
  b.add_operator("fast", 0.5e-3);
  b.add_edge(0, 1);
  sim::SimOptions options;
  options.duration = 30.0;
  options.shedding = true;
  const sim::SimResult result = sim::simulate(b.build(), options);
  EXPECT_EQ(result.shed, 0u);
  EXPECT_NEAR(result.throughput, 500.0, 20.0);
}

TEST(SheddingEngine, SourceKeepsPaceAndItemsAreLost) {
  Topology::Builder b;
  b.add_operator("src", 1e-3);
  b.add_operator("slow", 5e-3);
  b.add_edge(0, 1);
  Topology t = b.build();

  runtime::EngineConfig config;
  config.overflow = OverflowPolicy::kShedNewest;
  config.mailbox_capacity = 8;
  runtime::Engine engine(t, runtime::Deployment{}, runtime::synthetic_factory(), config);
  const runtime::RunStats stats = engine.run_for(std::chrono::duration<double>(1.5));
  // Source unthrottled (vs 200/s under BAS) and drops recorded.
  EXPECT_GT(stats.ops[0].processed, stats.ops[1].processed);
  EXPECT_GT(stats.dropped, 0u);
  const double predicted_bas = steady_state(t).throughput();
  EXPECT_GT(stats.ops[0].arrival_rate, 2.0 * predicted_bas);
}

}  // namespace
}  // namespace ss
