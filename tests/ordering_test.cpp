// Tests of order-preserving collection under fission (paper §2: fission
// may adopt "proper approaches for item scheduling and collection, to
// preserve the sequential ordering").
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <vector>

#include "gen/rng.hpp"
#include "runtime/clock.hpp"
#include "runtime/engine.hpp"

namespace ss::runtime {
namespace {

using std::chrono::duration;

class Burst final : public SourceLogic {
 public:
  explicit Burst(std::int64_t n) : n_(n) {}
  bool next(Tuple& out) override {
    if (i_ >= n_) return false;
    out = Tuple{};
    out.id = i_++;
    return true;
  }

 private:
  std::int64_t n_;
  std::int64_t i_ = 0;
};

/// Waits a random micro-interval per item so replica completion order
/// scrambles, then forwards.
class Jitter final : public OperatorLogic {
 public:
  explicit Jitter(std::uint64_t seed) : rng_(seed) {}
  void process(const Tuple& item, OpIndex, Collector& out) override {
    precise_wait(rng_.rand_double(0.0, 200e-6));
    out.emit(item);
  }
  std::unique_ptr<OperatorLogic> clone() const override {
    return std::make_unique<Jitter>(rng_.next_u64());
  }

 private:
  mutable Rng rng_;
};

/// Records the arrival order of ids.
class OrderRecorder final : public OperatorLogic {
 public:
  explicit OrderRecorder(std::vector<std::int64_t>* ids) : ids_(ids) {}
  void process(const Tuple& item, OpIndex, Collector& out) override {
    ids_->push_back(item.id);  // single collector thread: no lock needed
    out.emit(item);
  }
  std::unique_ptr<OperatorLogic> clone() const override {
    return std::make_unique<OrderRecorder>(ids_);
  }

 private:
  std::vector<std::int64_t>* ids_;
};

std::vector<std::int64_t> run_pipeline(bool preserve_order, std::int64_t items) {
  Topology::Builder b;
  b.add_operator("src", 1e-6);
  b.add_operator("work", 1e-6);
  b.add_operator("sink", 1e-6);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  Topology t = b.build();

  std::vector<std::int64_t> ids;
  AppFactory factory;
  factory.source = [items](OpIndex, const OperatorSpec&) {
    return std::make_unique<Burst>(items);
  };
  factory.logic = [&ids](OpIndex op, const OperatorSpec&) -> std::unique_ptr<OperatorLogic> {
    if (op == 1) return std::make_unique<Jitter>(77);
    return std::make_unique<OrderRecorder>(&ids);
  };
  Deployment d;
  d.replication.replicas = {1, 4, 1};
  EngineConfig config;
  config.preserve_replica_order = preserve_order;
  Engine engine(t, d, factory, config);
  (void)engine.run_until_complete(duration<double>(60.0));
  return ids;
}

std::size_t count_inversions(const std::vector<std::int64_t>& ids) {
  std::size_t inversions = 0;
  for (std::size_t i = 1; i < ids.size(); ++i) {
    if (ids[i] < ids[i - 1]) ++inversions;
  }
  return inversions;
}

TEST(OrderPreservingCollection, ReplicasScrambleOrderByDefault) {
  const auto ids = run_pipeline(/*preserve_order=*/false, 2000);
  ASSERT_EQ(ids.size(), 2000u);  // nothing lost
  EXPECT_GT(count_inversions(ids), 0u) << "jittered replicas should reorder";
}

TEST(OrderPreservingCollection, CollectorRestoresInputOrder) {
  const auto ids = run_pipeline(/*preserve_order=*/true, 2000);
  ASSERT_EQ(ids.size(), 2000u);
  EXPECT_EQ(count_inversions(ids), 0u);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    ASSERT_EQ(ids[i], static_cast<std::int64_t>(i));
  }
}

TEST(OrderPreservingCollection, WorksWithFilteringLogic) {
  // An operator that drops half the items must still release survivors in
  // order (seq marks release sequence numbers with zero results).
  Topology::Builder b;
  b.add_operator("src", 1e-6);
  b.add_operator("filter", 1e-6);
  b.add_operator("sink", 1e-6);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  Topology t = b.build();

  class DropOdd final : public OperatorLogic {
   public:
    void process(const Tuple& item, OpIndex, Collector& out) override {
      if (item.id % 2 == 0) out.emit(item);
    }
    std::unique_ptr<OperatorLogic> clone() const override {
      return std::make_unique<DropOdd>();
    }
  };

  std::vector<std::int64_t> ids;
  AppFactory factory;
  factory.source = [](OpIndex, const OperatorSpec&) { return std::make_unique<Burst>(1000); };
  factory.logic = [&ids](OpIndex op, const OperatorSpec&) -> std::unique_ptr<OperatorLogic> {
    if (op == 1) return std::make_unique<DropOdd>();
    return std::make_unique<OrderRecorder>(&ids);
  };
  Deployment d;
  d.replication.replicas = {1, 3, 1};
  EngineConfig config;
  config.preserve_replica_order = true;
  Engine engine(t, d, factory, config);
  (void)engine.run_until_complete(duration<double>(60.0));

  ASSERT_EQ(ids.size(), 500u);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    ASSERT_EQ(ids[i], static_cast<std::int64_t>(2 * i));
  }
}

}  // namespace
}  // namespace ss::runtime
