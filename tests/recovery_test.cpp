// End-to-end crash-recovery tests: the spinstreams CLI is launched as a
// child process, killed mid-run — either via the deterministic
// SS_CRASH_AFTER_CHECKPOINTS injection (exit 42 at a known checkpoint
// boundary) or a real SIGKILL at a randomized point — and restarted with
// --recover.  The proof of exactly-once per-key accounting: the final
// consistent cut (dir/final.bin) of the recovered run must be identical to
// the cut of an uninterrupted golden run over the same finite stream —
// same source offsets, same operator state blobs (the per-key counts),
// same rng lanes — for three topology shapes on both live engines.
//
// The sequence numbers inside the two final.bin files legitimately differ
// (a recovered run continues the directory's numbering), so the comparison
// decodes both checkpoints and compares the cut, not the raw bytes.
#include <fcntl.h>
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <tuple>
#include <utility>
#include <vector>

#include "runtime/checkpoint.hpp"

namespace ss::runtime {
namespace {

namespace fs = std::filesystem;

// --- topology shapes (the Alg. 5 testbed structures: pipeline, diamond
// with probabilistic routing, replicated keyed bottleneck) ----------------

constexpr const char* kChainXml = R"(<?xml version="1.0"?>
<topology name="rchain">
  <operator name="src" impl="source" service-time="0.1" time-unit="ms"/>
  <operator name="stage" impl="map_affine" service-time="0.04" time-unit="ms"/>
  <operator name="counts" impl="keyed_counter" state="partitioned"
            service-time="0.05" time-unit="ms">
    <keys count="64" distribution="zipf" alpha="1.2"/>
  </operator>
  <operator name="sink" impl="sink" service-time="0.01" time-unit="ms"/>
  <edge from="src" to="stage"/>
  <edge from="stage" to="counts"/>
  <edge from="counts" to="sink"/>
</topology>
)";

constexpr const char* kDiamondXml = R"(<?xml version="1.0"?>
<topology name="rdiamond">
  <operator name="src" impl="source" service-time="0.1" time-unit="ms"/>
  <operator name="fan" impl="map_affine" service-time="0.03" time-unit="ms"/>
  <operator name="counts" impl="keyed_counter" state="partitioned"
            service-time="0.05" time-unit="ms">
    <keys count="48" distribution="zipf" alpha="1.1"/>
  </operator>
  <operator name="sums" impl="keyed_running_sum" state="partitioned"
            service-time="0.05" time-unit="ms">
    <keys count="48" distribution="uniform"/>
  </operator>
  <operator name="sink" impl="sink" service-time="0.01" time-unit="ms"/>
  <edge from="src" to="fan"/>
  <edge from="fan" to="counts" probability="0.5"/>
  <edge from="fan" to="sums" probability="0.5"/>
  <edge from="counts" to="sink"/>
  <edge from="sums" to="sink"/>
</topology>
)";

// keyed_counter at rho 2.5: --optimize replicates it, so the recovered cut
// must also restore the emitter's rng/cursor and per-replica key state.
constexpr const char* kReplicatedXml = R"(<?xml version="1.0"?>
<topology name="rsplit">
  <operator name="src" impl="source" service-time="0.1" time-unit="ms"/>
  <operator name="heavy" impl="keyed_counter" state="partitioned"
            service-time="0.25" time-unit="ms">
    <keys count="96" distribution="zipf" alpha="1.1"/>
  </operator>
  <operator name="sink" impl="sink" service-time="0.01" time-unit="ms"/>
  <edge from="src" to="heavy"/>
  <edge from="heavy" to="sink"/>
</topology>
)";

constexpr std::int64_t kItems = 6000;  // ~0.6 s at the 0.1 ms source pace

// --- child-process plumbing ------------------------------------------------

pid_t spawn_cli(const std::vector<std::string>& args,
                const std::vector<std::pair<std::string, std::string>>& env,
                const std::string& log_path) {
  const pid_t pid = ::fork();
  if (pid != 0) return pid;
  const int fd = ::open(log_path.c_str(), O_CREAT | O_WRONLY | O_TRUNC, 0644);
  if (fd >= 0) {
    ::dup2(fd, STDOUT_FILENO);
    ::dup2(fd, STDERR_FILENO);
    ::close(fd);
  }
  for (const auto& [key, value] : env) ::setenv(key.c_str(), value.c_str(), 1);
  std::vector<char*> argv;
  argv.push_back(const_cast<char*>(SS_CLI_BIN));
  for (const auto& a : args) argv.push_back(const_cast<char*>(a.c_str()));
  argv.push_back(nullptr);
  ::execv(SS_CLI_BIN, argv.data());
  std::_Exit(127);  // exec failed
}

int wait_child(pid_t pid) {
  int status = 0;
  ::waitpid(pid, &status, 0);
  return status;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

// --- cut comparison --------------------------------------------------------

using ActorKey = std::tuple<OpIndex, int, std::int32_t>;

std::map<ActorKey, const CheckpointActorEntry*> index_actors(const Checkpoint& cp) {
  std::map<ActorKey, const CheckpointActorEntry*> by_key;
  for (const auto& a : cp.actors) {
    by_key[{a.op, static_cast<int>(a.role), a.replica}] = &a;
  }
  return by_key;
}

/// The exactly-once assertion: same source offsets, same deployment, and
/// byte-identical state blobs + rng lanes per actor.  `sequence` (and only
/// it) may differ between the golden and the recovered run.
void expect_same_cut(const Checkpoint& golden, const Checkpoint& recovered) {
  ASSERT_EQ(golden.sources.size(), recovered.sources.size());
  for (std::size_t i = 0; i < golden.sources.size(); ++i) {
    EXPECT_EQ(golden.sources[i].op, recovered.sources[i].op);
    EXPECT_EQ(golden.sources[i].offset, recovered.sources[i].offset)
        << "source " << golden.sources[i].op << " delivered a different item count";
  }
  EXPECT_EQ(golden.deployment.replication.replicas,
            recovered.deployment.replication.replicas);

  const auto golden_actors = index_actors(golden);
  const auto recovered_actors = index_actors(recovered);
  ASSERT_EQ(golden_actors.size(), recovered_actors.size());
  for (const auto& [key, g] : golden_actors) {
    const auto it = recovered_actors.find(key);
    ASSERT_NE(it, recovered_actors.end())
        << "actor (op=" << std::get<0>(key) << ", role=" << std::get<1>(key)
        << ", replica=" << std::get<2>(key) << ") missing from recovered cut";
    const CheckpointActorEntry* r = it->second;
    EXPECT_EQ(g->rng, r->rng) << "rng lanes diverged for op " << g->op;
    EXPECT_EQ(g->rr_cursor, r->rr_cursor);
    EXPECT_EQ(g->has_state, r->has_state);
    EXPECT_EQ(g->state, r->state)
        << "per-key state diverged for op " << g->op << " replica " << g->replica;
  }
}

// --- fixture ---------------------------------------------------------------

class RecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    base_ = ::testing::TempDir() + "/recovery_" + info->name();
    fs::remove_all(base_);
    fs::create_directories(base_);
  }
  void TearDown() override {
    // Keep the evidence (child logs + checkpoint dirs) on failure: CI
    // uploads /tmp/recovery_* as artifacts.
    if (!HasFailure()) fs::remove_all(base_);
  }

  std::string write_topology(const char* xml) {
    const std::string path = base_ + "/topology.xml";
    std::ofstream(path) << xml;
    return path;
  }

  std::vector<std::string> run_args(const std::string& xml, const std::string& engine,
                                    bool optimize, const std::string& dir,
                                    double period, bool recover) {
    std::vector<std::string> args = {"run", xml, "--engine=" + engine,
                                     "--items=" + std::to_string(kItems),
                                     "--seconds=30",  // watchdog cap, not a pace
                                     "--checkpoint-dir=" + dir,
                                     "--checkpoint-period=" + std::to_string(period)};
    if (engine == "pool") args.push_back("--workers=2");
    if (optimize) args.push_back("--optimize");
    if (recover) args.push_back("--recover");
    return args;
  }

  Checkpoint load_final(const std::string& dir) {
    Checkpoint cp;
    const std::string path = dir + "/final.bin";
    EXPECT_TRUE(CheckpointManager::read_file(path, cp)) << "unreadable: " << path;
    return cp;
  }

  /// Golden run (uninterrupted) + crash run (exit 42 after `crash_after`
  /// checkpoints) + --recover run, then the cut comparison.
  void run_crash_scenario(const char* xml_text, const std::string& engine,
                          bool optimize, int crash_after) {
    const std::string xml = write_topology(xml_text);
    const std::string golden_dir = base_ + "/golden";
    const std::string crash_dir = base_ + "/crash";

    int status = wait_child(spawn_cli(
        run_args(xml, engine, optimize, golden_dir, 30.0, false), {},
        base_ + "/golden.log"));
    ASSERT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
        << slurp(base_ + "/golden.log");

    status = wait_child(spawn_cli(
        run_args(xml, engine, optimize, crash_dir, 0.08, false),
        {{"SS_CRASH_AFTER_CHECKPOINTS", std::to_string(crash_after)}},
        base_ + "/crash.log"));
    ASSERT_TRUE(WIFEXITED(status)) << slurp(base_ + "/crash.log");
    ASSERT_EQ(WEXITSTATUS(status), FaultInjector::kCrashExitCode)
        << slurp(base_ + "/crash.log");
    EXPECT_FALSE(fs::exists(crash_dir + "/final.bin"));  // it really died mid-run
    char name[32];
    std::snprintf(name, sizeof(name), "ckpt-%08d.bin", crash_after);
    EXPECT_TRUE(fs::exists(crash_dir + "/" + name));

    status = wait_child(spawn_cli(
        run_args(xml, engine, optimize, crash_dir, 30.0, true), {},
        base_ + "/recover.log"));
    ASSERT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
        << slurp(base_ + "/recover.log");
    const std::string log = slurp(base_ + "/recover.log");
    EXPECT_NE(log.find("recover: restoring checkpoint"), std::string::npos) << log;
    EXPECT_NE(log.find("recovered from epoch"), std::string::npos) << log;

    expect_same_cut(load_final(golden_dir), load_final(crash_dir));
  }

  /// Golden run + SIGKILL at a randomized (seed-derived) point + --recover.
  /// The kill can land before the first checkpoint (recovery starts fresh)
  /// or even after completion — the final cut must match the golden run in
  /// every case, which is exactly the crash-anywhere guarantee.
  void run_sigkill_scenario(const char* xml_text, const std::string& engine,
                            bool optimize, unsigned seed) {
    const std::string xml = write_topology(xml_text);
    const std::string golden_dir = base_ + "/golden";
    const std::string crash_dir = base_ + "/crash";

    int status = wait_child(spawn_cli(
        run_args(xml, engine, optimize, golden_dir, 30.0, false), {},
        base_ + "/golden.log"));
    ASSERT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
        << slurp(base_ + "/golden.log");

    const int delay_ms = 120 + static_cast<int>((seed * 97u) % 300u);
    const pid_t pid = spawn_cli(run_args(xml, engine, optimize, crash_dir, 0.06, false),
                                {}, base_ + "/crash.log");
    std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
    ::kill(pid, SIGKILL);
    status = wait_child(pid);
    const bool killed = WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL;
    const bool finished = WIFEXITED(status) && WEXITSTATUS(status) == 0;
    ASSERT_TRUE(killed || finished) << "status=" << status << "\n"
                                    << slurp(base_ + "/crash.log");

    status = wait_child(spawn_cli(
        run_args(xml, engine, optimize, crash_dir, 30.0, true), {},
        base_ + "/recover.log"));
    ASSERT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
        << slurp(base_ + "/recover.log");
    EXPECT_NE(slurp(base_ + "/recover.log").find("recover:"), std::string::npos);

    expect_same_cut(load_final(golden_dir), load_final(crash_dir));
  }

  std::string base_;
};

// --- deterministic crash at a checkpoint boundary: 3 shapes x 2 engines ----

TEST_F(RecoveryTest, ChainExactlyOnceOnThreads) {
  run_crash_scenario(kChainXml, "threads", false, 1);
}

TEST_F(RecoveryTest, ChainExactlyOnceOnPool) {
  run_crash_scenario(kChainXml, "pool", false, 2);
}

TEST_F(RecoveryTest, DiamondExactlyOnceOnThreads) {
  run_crash_scenario(kDiamondXml, "threads", false, 2);
}

TEST_F(RecoveryTest, DiamondExactlyOnceOnPool) {
  run_crash_scenario(kDiamondXml, "pool", false, 1);
}

TEST_F(RecoveryTest, ReplicatedExactlyOnceOnThreads) {
  run_crash_scenario(kReplicatedXml, "threads", true, 2);
}

TEST_F(RecoveryTest, ReplicatedExactlyOnceOnPool) {
  run_crash_scenario(kReplicatedXml, "pool", true, 1);
}

// --- real SIGKILL at a randomized point ------------------------------------

TEST_F(RecoveryTest, SigkillMidRunRecoversOnThreads) {
  run_sigkill_scenario(kChainXml, "threads", false, /*seed=*/1);
}

TEST_F(RecoveryTest, SigkillMidRunRecoversOnPool) {
  run_sigkill_scenario(kDiamondXml, "pool", false, /*seed=*/2);
}

}  // namespace
}  // namespace ss::runtime
