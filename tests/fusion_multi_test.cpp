// Tests of the multi-entry fusion extension: the paper's Fig. 2 motivating
// scenario (fusing OP4 and OP5, which both receive external input), its
// cost model, its legality rules, and its execution semantics on the actor
// engine (items entering at OP5 must skip OP4's logic).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>

#include "core/error.hpp"
#include "core/fusion.hpp"
#include "runtime/engine.hpp"

namespace ss {
namespace {

constexpr double kMs = 1e-3;

// The five-operator topology of paper Fig. 2:
//   OP1 -> OP2 (0.5), OP1 -> OP4 (0.5); OP2 -> OP3 (0.5), OP2 -> OP5 (0.5);
//   OP3 -> OP4; OP4 -> OP5; OP5 is the sink.
// Fusing {OP4, OP5}: items from OP1/OP3 run OP4 then OP5, items from OP2
// run only OP5.
Topology fig2_topology() {
  Topology::Builder b;
  b.add_operator("op1", 1.0 * kMs);
  b.add_operator("op2", 1.0 * kMs);
  b.add_operator("op3", 1.0 * kMs);
  b.add_operator("op4", 0.5 * kMs);
  b.add_operator("op5", 0.3 * kMs);
  b.add_edge(0, 1, 0.5);
  b.add_edge(0, 3, 0.5);
  b.add_edge(1, 2, 0.5);
  b.add_edge(1, 4, 0.5);
  b.add_edge(2, 3, 1.0);
  b.add_edge(3, 4, 1.0);
  return b.build();
}

TEST(MultiEntryFusion, Fig2SubGraphIsLegalOnlyUnderTheExtension) {
  Topology t = fig2_topology();
  const FusionSpec spec{{3, 4}, "op45"};
  // The single-front-end rule of §3.3 rejects it...
  EXPECT_NE(check_fusion_legal(t, spec), "");
  // ...the multi-entry extension accepts it (Fig. 2 semantics).
  EXPECT_EQ(check_fusion_legal_multi(t, spec), "");
}

TEST(MultiEntryFusion, ServiceTimeWeightsEntriesByFlow) {
  Topology t = fig2_topology();
  const SteadyStateResult rates = steady_state(t);
  // Flow into OP4: from OP1 0.5 + from OP3 0.25 = 0.75; into OP5 external:
  // from OP2 0.25.  Entry shares: 0.75 and 0.25.
  // T = 0.75 * (T4 + T5) + 0.25 * T5 = 0.75 * 0.8 + 0.25 * 0.3 = 0.675 ms.
  const double fused = fusion_service_time_multi(t, FusionSpec{{3, 4}, {}}, rates);
  EXPECT_NEAR(fused, 0.675 * kMs, 1e-9);
}

TEST(MultiEntryFusion, ReducesToSingleFrontEndFormula) {
  // On a single-front-end sub-graph both models must agree exactly.
  Topology::Builder b;
  b.add_operator("src", 1.0 * kMs);
  b.add_operator("a", 1.0 * kMs);
  b.add_operator("b", 2.0 * kMs);
  b.add_operator("c", 0.5 * kMs);
  b.add_edge(0, 1);
  b.add_edge(1, 2, 0.25);
  b.add_edge(1, 3, 0.75);
  b.add_edge(2, 3, 1.0);
  Topology t = b.build();
  const FusionSpec spec{{1, 2, 3}, {}};
  const double single = fusion_service_time(t, spec);
  const double multi = fusion_service_time_multi(t, spec, steady_state(t));
  EXPECT_NEAR(single, multi, 1e-12);
}

TEST(MultiEntryFusion, ApplyBuildsMergedTopology) {
  Topology t = fig2_topology();
  FusionResult result = apply_fusion_multi(t, FusionSpec{{3, 4}, "op45"});
  const Topology& fused = result.topology;
  ASSERT_EQ(fused.num_operators(), 4u);
  ASSERT_TRUE(fused.find("op45").has_value());
  // In-edges: op1 -> op45 (0.5), op2 -> op45 (0.5), op3 -> op45 (1.0).
  EXPECT_NEAR(fused.edge_probability(result.remap[0], result.fused_index), 0.5, 1e-12);
  EXPECT_NEAR(fused.edge_probability(result.remap[1], result.fused_index), 0.5, 1e-12);
  EXPECT_NEAR(fused.edge_probability(result.remap[2], result.fused_index), 1.0, 1e-12);
  // The fused operator is the only sink now.
  ASSERT_EQ(fused.sinks().size(), 1u);
  EXPECT_EQ(fused.sinks()[0], result.fused_index);
  EXPECT_FALSE(result.introduces_bottleneck);
  EXPECT_NEAR(result.throughput_after, result.throughput_before, 1e-6);
}

TEST(MultiEntryFusion, DetectsIntroducedBottleneck) {
  // Make OP4/OP5 slow enough that the merged operator saturates.
  Topology::Builder b;
  b.add_operator("op1", 1.0 * kMs);
  b.add_operator("op2", 1.0 * kMs);
  b.add_operator("op4", 1.3 * kMs);
  b.add_operator("op5", 0.9 * kMs);
  b.add_edge(0, 1, 0.5);
  b.add_edge(0, 2, 0.5);
  b.add_edge(1, 3, 1.0);
  b.add_edge(2, 3, 1.0);
  Topology t = b.build();
  FusionResult result = apply_fusion_multi(t, FusionSpec{{2, 3}, "F"});
  // Entry shares 0.5/0.5: T = 0.5*(1.3+0.9) + 0.5*0.9 = 1.55 ms; the fused
  // operator receives the full stream (1000/s) -> rho = 1.55: bottleneck.
  EXPECT_TRUE(result.introduces_bottleneck);
  EXPECT_NEAR(result.throughput_after, 1000.0 / 1.55, 1e-6);
}

TEST(MultiEntryFusion, RejectsReentrantPaths) {
  // a -> x -> b with both a, b in the group: the contraction would cycle.
  Topology::Builder b;
  b.add_operator("src", 1.0 * kMs);
  b.add_operator("a", 1.0 * kMs);
  b.add_operator("x", 1.0 * kMs);
  b.add_operator("b", 1.0 * kMs);
  b.add_edge(0, 1);
  b.add_edge(1, 2, 0.5);
  b.add_edge(1, 3, 0.5);
  b.add_edge(2, 3);
  Topology t = b.build();
  const std::string why = check_fusion_legal_multi(t, FusionSpec{{1, 3}, {}});
  EXPECT_NE(why.find("cycle"), std::string::npos) << why;
}

TEST(MultiEntryFusion, RejectsDegenerateSpecs) {
  Topology t = fig2_topology();
  EXPECT_NE(check_fusion_legal_multi(t, FusionSpec{{3}, {}}), "");
  EXPECT_NE(check_fusion_legal_multi(t, FusionSpec{{0, 1}, {}}), "");  // source
  EXPECT_THROW((void)apply_fusion_multi(t, FusionSpec{{3}, {}}), Error);
}

// ------------------------------------------------------- runtime semantics

using runtime::Collector;
using runtime::OperatorLogic;
using runtime::SourceLogic;
using runtime::Tuple;

class TaggingLogic final : public OperatorLogic {
 public:
  TaggingLogic(double tag, int slot) : tag_(tag), slot_(slot) {}
  void process(const Tuple& item, OpIndex, Collector& out) override {
    Tuple t = item;
    t.f[static_cast<std::size_t>(slot_)] += tag_;
    out.emit(t);
  }
  std::unique_ptr<OperatorLogic> clone() const override {
    return std::make_unique<TaggingLogic>(tag_, slot_);
  }

 private:
  double tag_;
  int slot_;
};

class FinalCounter final : public OperatorLogic {
 public:
  FinalCounter(std::atomic<std::int64_t>* with_op4, std::atomic<std::int64_t>* without_op4)
      : with_op4_(with_op4), without_op4_(without_op4) {}
  void process(const Tuple& item, OpIndex, Collector& out) override {
    (item.f[1] > 0.5 ? with_op4_ : without_op4_)->fetch_add(1);
    out.emit(item);
  }
  std::unique_ptr<OperatorLogic> clone() const override {
    return std::make_unique<FinalCounter>(with_op4_, without_op4_);
  }

 private:
  std::atomic<std::int64_t>* with_op4_;
  std::atomic<std::int64_t>* without_op4_;
};

class Burst final : public SourceLogic {
 public:
  explicit Burst(std::int64_t n) : n_(n) {}
  bool next(Tuple& out) override {
    if (i_ >= n_) return false;
    out = Tuple{};
    out.id = i_++;
    return true;
  }

 private:
  std::int64_t n_;
  std::int64_t i_ = 0;
};

TEST(MultiEntryFusion, EngineExecutesFig2Semantics) {
  // src -> a (0.5) -> op5 path, src -> op4 (0.5) -> op5: fuse {op4, op5}.
  // Items routed via a must NOT receive op4's tag (they enter at op5).
  Topology::Builder b;
  b.add_operator("src", 1e-6);
  b.add_operator("a", 1e-6);
  b.add_operator("op4", 1e-6);
  b.add_operator("op5", 1e-6);
  b.add_operator("sink", 1e-6);
  b.add_edge(0, 1, 0.5);
  b.add_edge(0, 2, 0.5);
  b.add_edge(1, 3, 1.0);  // a -> op5 directly (external entry at op5)
  b.add_edge(2, 3, 1.0);  // op4 -> op5 (internal once fused)
  b.add_edge(3, 4, 1.0);
  Topology t = b.build();

  static constexpr std::int64_t kItems = 10000;
  std::atomic<std::int64_t> with_op4{0};
  std::atomic<std::int64_t> without_op4{0};
  runtime::AppFactory factory;
  factory.source = [](OpIndex, const OperatorSpec&) { return std::make_unique<Burst>(kItems); };
  factory.logic = [&](OpIndex op, const OperatorSpec&) -> std::unique_ptr<OperatorLogic> {
    if (op == 1) return std::make_unique<TaggingLogic>(0.0, 2);   // pass-through
    if (op == 2) return std::make_unique<TaggingLogic>(1.0, 1);   // op4 marks f[1]
    if (op == 3) return std::make_unique<TaggingLogic>(1.0, 3);   // op5 marks f[3]
    return std::make_unique<FinalCounter>(&with_op4, &without_op4);
  };

  runtime::Deployment deployment;
  deployment.fusions.push_back(FusionSpec{{2, 3}, "op45"});
  runtime::Engine engine(t, deployment, factory, {});
  (void)engine.run_until_complete(std::chrono::duration<double>(30.0));

  EXPECT_EQ(with_op4.load() + without_op4.load(), kItems);
  // ~half the items went through op4 first, ~half skipped it.
  EXPECT_NEAR(static_cast<double>(with_op4.load()), kItems / 2.0, 0.05 * kItems);
  EXPECT_NEAR(static_cast<double>(without_op4.load()), kItems / 2.0, 0.05 * kItems);
  EXPECT_GT(without_op4.load(), 0);  // entry-at-op5 items really skip op4
}

}  // namespace
}  // namespace ss
