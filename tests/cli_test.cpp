// Tests of the spinstreams CLI: every command exercised against a
// temporary XML description, exit codes and key output fragments checked.
#include "cli/cli.hpp"

#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

namespace ss::cli {
namespace {

constexpr const char* kTopologyXml = R"(<?xml version="1.0"?>
<topology name="t">
  <operator name="src"  impl="source" service-time="1"   time-unit="ms"/>
  <operator name="slow" impl="map_affine" service-time="2.5" time-unit="ms"/>
  <operator name="tail_a" impl="clamp" service-time="0.2" time-unit="ms"/>
  <operator name="tail_b" impl="sink" service-time="0.3" time-unit="ms"/>
  <edge from="src" to="slow"/>
  <edge from="slow" to="tail_a"/>
  <edge from="tail_a" to="tail_b"/>
</topology>
)";

class CliTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Unique per test: parallel ctest runs each test as its own process,
    // and a shared path would let one SetUp truncate the XML while
    // another test is still parsing it.
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    path_ = ::testing::TempDir() + "/cli_topology_" + info->name() + ".xml";
    std::ofstream file(path_);
    file << kTopologyXml;
  }

  /// Runs the CLI with the given arguments (file path appended when
  /// `with_file`), returning {exit code, stdout, stderr}.
  std::tuple<int, std::string, std::string> run(std::vector<std::string> argv,
                                                bool with_file = true) {
    argv.insert(argv.begin(), "spinstreams");
    if (with_file) argv.insert(argv.begin() + 2, path_);
    std::vector<const char*> raw;
    raw.reserve(argv.size());
    for (const std::string& a : argv) raw.push_back(a.c_str());
    std::ostringstream out;
    std::ostringstream err;
    const int code = run_cli(static_cast<int>(raw.size()), raw.data(), out, err);
    return {code, out.str(), err.str()};
  }

  std::string path_;
};

TEST_F(CliTest, HelpAndUnknownCommand) {
  auto [code, out, err] = run({"help"}, false);
  EXPECT_EQ(code, 0);
  EXPECT_NE(out.find("usage:"), std::string::npos);

  auto [bad_code, bad_out, bad_err] = run({"frobnicate"}, false);
  EXPECT_EQ(bad_code, 2);
  EXPECT_NE(bad_err.find("unknown command"), std::string::npos);
}

TEST_F(CliTest, NoArgumentsPrintsUsage) {
  const char* argv[] = {"spinstreams"};
  std::ostringstream out;
  std::ostringstream err;
  EXPECT_EQ(run_cli(1, argv, out, err), 2);
  EXPECT_NE(err.str().find("usage:"), std::string::npos);
}

TEST_F(CliTest, Validate) {
  auto [code, out, err] = run({"validate"});
  EXPECT_EQ(code, 0) << err;
  EXPECT_NE(out.find("OK"), std::string::npos);
}

TEST_F(CliTest, ValidateMissingFile) {
  auto [code, out, err] = run({"validate", "/nonexistent/x.xml"}, false);
  EXPECT_EQ(code, 1);
  EXPECT_NE(err.find("error:"), std::string::npos);
}

TEST_F(CliTest, AnalyzeReportsBottleneck) {
  auto [code, out, err] = run({"analyze"});
  EXPECT_EQ(code, 0) << err;
  EXPECT_NE(out.find("slow"), std::string::npos);
  EXPECT_NE(out.find("bottleneck"), std::string::npos);
  EXPECT_NE(out.find("400.0 tuples/s"), std::string::npos);  // 1000/2.5
}

TEST_F(CliTest, AnalyzeWithLatency) {
  auto [code, out, err] = run({"analyze", "--latency"});
  EXPECT_EQ(code, 0) << err;
  EXPECT_NE(out.find("end-to-end latency"), std::string::npos);
}

TEST_F(CliTest, OptimizeAddsReplicas) {
  auto [code, out, err] = run({"optimize"});
  EXPECT_EQ(code, 0) << err;
  EXPECT_NE(out.find("total replicas: 6 (+2)"), std::string::npos) << out;
  EXPECT_NE(out.find("reaches the ideal"), std::string::npos);
}

TEST_F(CliTest, OptimizeWithBudget) {
  auto [code, out, err] = run({"optimize", "--max-replicas=5"});
  EXPECT_EQ(code, 0) << err;
  EXPECT_NE(out.find("total replicas: 5"), std::string::npos) << out;
}

TEST_F(CliTest, CandidatesListsIdleTail) {
  auto [code, out, err] = run({"candidates", "--threshold=0.6"});
  EXPECT_EQ(code, 0) << err;
  EXPECT_NE(out.find("tail_a,tail_b"), std::string::npos) << out;
}

TEST_F(CliTest, FuseByNames) {
  auto [code, out, err] = run({"fuse", "--members=tail_a,tail_b", "--name=tail"});
  EXPECT_EQ(code, 0) << err;
  EXPECT_NE(out.find("fused service time: 0.50 ms"), std::string::npos) << out;
  EXPECT_NE(out.find("feasible"), std::string::npos);
}

TEST_F(CliTest, FuseRejectsUnknownMember) {
  auto [code, out, err] = run({"fuse", "--members=ghost,tail_b"});
  EXPECT_EQ(code, 1);
  EXPECT_NE(err.find("unknown operator"), std::string::npos);
}

TEST_F(CliTest, FuseAlertExitCode) {
  // Fusing src's busy successor with the tail saturates: exit code 1.
  auto [code, out, err] = run({"fuse", "--members=slow,tail_a,tail_b"});
  EXPECT_EQ(code, 1) << out;
  EXPECT_NE(out.find("ALERT"), std::string::npos);
}

TEST_F(CliTest, SimulateComparesToModel) {
  auto [code, out, err] = run({"simulate", "--duration=40"});
  EXPECT_EQ(code, 0) << err;
  EXPECT_NE(out.find("model predicts 400.0"), std::string::npos) << out;
  EXPECT_NE(out.find("error"), std::string::npos);
}

TEST_F(CliTest, SimulateOptimized) {
  auto [code, out, err] = run({"simulate", "--duration=40", "--optimize"});
  EXPECT_EQ(code, 0) << err;
  EXPECT_NE(out.find("model predicts 1000.0"), std::string::npos) << out;
}

TEST_F(CliTest, CodegenWritesProgram) {
  const std::string out_path = ::testing::TempDir() + "/cli_generated.cpp";
  auto [code, out, err] = run({"codegen", "--out=" + out_path});
  EXPECT_EQ(code, 0) << err;
  std::ifstream file(out_path);
  std::stringstream buffer;
  buffer << file.rdbuf();
  EXPECT_NE(buffer.str().find("int main()"), std::string::npos);
  EXPECT_NE(buffer.str().find("ss::runtime::Engine"), std::string::npos);
}

TEST_F(CliTest, AutoOptimizeEndToEnd) {
  const std::string out_path = ::testing::TempDir() + "/cli_auto.cpp";
  auto [code, out, err] = run({"auto", "--out=" + out_path});
  EXPECT_EQ(code, 0) << err;
  EXPECT_NE(out.find("replicas added: 2"), std::string::npos) << out;
  EXPECT_NE(out.find("fusions applied"), std::string::npos) << out;
  EXPECT_NE(out.find("tail_a"), std::string::npos);
  std::ifstream file(out_path);
  std::stringstream buffer;
  buffer << file.rdbuf();
  EXPECT_NE(buffer.str().find("deployment.fusions.push_back"), std::string::npos);
}

TEST_F(CliTest, WhatIfExploresHypotheticals) {
  // Halving the bottleneck's service time doubles the predicted rate.
  auto [code, out, err] = run({"whatif", "--set=slow=1.25"});
  EXPECT_EQ(code, 0) << err;
  EXPECT_NE(out.find("-- what-if --"), std::string::npos);
  EXPECT_NE(out.find("800.0 tuples/s"), std::string::npos) << out;
  EXPECT_NE(out.find("+400.0 tuples/s (100.0%)"), std::string::npos) << out;

  // Replicas instead of faster code.
  auto [rcode, rout, rerr] = run({"whatif", "--replicas=slow=3"});
  EXPECT_EQ(rcode, 0) << rerr;
  EXPECT_NE(rout.find("1000.0 tuples/s"), std::string::npos) << rout;

  auto [bad, bout, berr] = run({"whatif", "--set=ghost=1"});
  EXPECT_EQ(bad, 1);
  EXPECT_NE(berr.find("unknown operator"), std::string::npos);
}

TEST_F(CliTest, ProfileReplacesDeclaredTimes) {
  const std::string out_path = ::testing::TempDir() + "/cli_profiled.xml";
  auto [code, out, err] = run({"profile", "--items=500", "--save-xml=" + out_path});
  EXPECT_EQ(code, 0) << err;
  EXPECT_NE(out.find("measured (us)"), std::string::npos);
  EXPECT_NE(out.find("re-annotated analysis"), std::string::npos);
  // The annotated description must load and validate.
  auto [vcode, vout, verr] = run({"validate", out_path}, false);
  EXPECT_EQ(vcode, 0) << verr;
}

TEST_F(CliTest, RunExecutesOnBothRuntimeBackends) {
  auto [code, out, err] = run({"run", "--seconds=0.4"});
  EXPECT_EQ(code, 0) << err;
  EXPECT_NE(out.find("src"), std::string::npos);

  auto [pcode, pout, perr] = run({"run", "--engine=pool", "--workers=2", "--seconds=0.4"});
  EXPECT_EQ(pcode, 0) << perr;
  EXPECT_NE(pout.find("src"), std::string::npos);
}

TEST_F(CliTest, PoolRunReportsLatencyColumns) {
  auto [code, out, err] =
      run({"run", "--engine=pool", "--workers=2", "--batch=16", "--seconds=0.5"});
  EXPECT_EQ(code, 0) << err;
  EXPECT_NE(out.find("p50 ms"), std::string::npos) << out;
  EXPECT_NE(out.find("p99 ms"), std::string::npos) << out;
  EXPECT_NE(out.find("end-to-end latency"), std::string::npos) << out;
}

TEST_F(CliTest, RunRejectsUnknownEngine) {
  auto [code, out, err] = run({"run", "--engine=quantum", "--seconds=0.1"});
  EXPECT_EQ(code, 1);
  EXPECT_NE(err.find("unknown engine"), std::string::npos);
}

TEST_F(CliTest, RunRejectsNonPositiveWorkerAndBatchCounts) {
  auto [wcode, wout, werr] = run({"run", "--engine=pool", "--workers=0", "--seconds=0.1"});
  EXPECT_EQ(wcode, 1);
  EXPECT_NE(werr.find("--workers"), std::string::npos) << werr;

  auto [bcode, bout, berr] = run({"run", "--engine=pool", "--batch=-4", "--seconds=0.1"});
  EXPECT_EQ(bcode, 1);
  EXPECT_NE(berr.find("--batch"), std::string::npos) << berr;

  // A bogus count fails even on a backend that would ignore the flag.
  auto [tcode, tout, terr] = run({"run", "--workers=0", "--seconds=0.1"});
  EXPECT_EQ(tcode, 1);
  EXPECT_NE(terr.find("--workers"), std::string::npos) << terr;
}

TEST_F(CliTest, RunRejectsMalformedNumericFlags) {
  auto [code, out, err] = run({"run", "--engine=pool", "--workers=many", "--seconds=0.1"});
  EXPECT_EQ(code, 1);
  EXPECT_NE(err.find("expected an integer"), std::string::npos) << err;

  auto [pcode, pout, perr] = run({"run", "--reconfig-period=0", "--seconds=0.1"});
  EXPECT_EQ(pcode, 1);
  EXPECT_NE(perr.find("--reconfig-period"), std::string::npos) << perr;
}

TEST_F(CliTest, ElasticRejectedUnderSimBackend) {
  auto [code, out, err] = run({"simulate", "--elastic", "--duration=1"});
  EXPECT_EQ(code, 1);
  EXPECT_NE(err.find("--elastic needs a live runtime"), std::string::npos) << err;
}

TEST_F(CliTest, ElasticRunPrintsControllerDecisions) {
  auto [code, out, err] =
      run({"run", "--elastic", "--reconfig-period=0.2", "--seconds=0.8"});
  EXPECT_EQ(code, 0) << err;
  EXPECT_NE(out.find("controller decisions:"), std::string::npos) << out;
}

TEST_F(CliTest, SimulateReportsVirtualTimeLatencyPercentiles) {
  auto [code, out, err] = run({"simulate", "--duration=40"});
  EXPECT_EQ(code, 0) << err;
  EXPECT_NE(out.find("p99 ms"), std::string::npos) << out;
  EXPECT_NE(out.find("simulated end-to-end latency"), std::string::npos) << out;
}

TEST_F(CliTest, SimulateRedirectsToRuntimeEngine) {
  // The unified execution path: `simulate --engine=pool` runs the real
  // runtime instead of the DES.
  auto [code, out, err] = run({"simulate", "--engine=pool", "--workers=2", "--seconds=0.4"});
  EXPECT_EQ(code, 0) << err;
  EXPECT_EQ(out.find("simulated throughput"), std::string::npos);
  EXPECT_NE(out.find("src"), std::string::npos);
}

TEST_F(CliTest, RunRejectsUnwritableTelemetryPaths) {
  // Both sinks are probed before any tuple flows: a bad path must fail
  // fast instead of discarding a completed run at flush time.
  auto [tcode, tout, terr] =
      run({"run", "--seconds=0.1", "--trace=/nonexistent-dir/trace.json"});
  EXPECT_EQ(tcode, 1);
  EXPECT_NE(terr.find("cannot write trace file"), std::string::npos) << terr;

  auto [mcode, mout, merr] =
      run({"run", "--seconds=0.1", "--metrics-out=/nonexistent-dir/m.jsonl"});
  EXPECT_EQ(mcode, 1);
  EXPECT_NE(merr.find("cannot write metrics file"), std::string::npos) << merr;
}

TEST_F(CliTest, RunRejectsNonPositiveMetricsPeriod) {
  auto [code, out, err] = run({"run", "--seconds=0.1", "--metrics-out=" +
                                   ::testing::TempDir() + "/cli_period.jsonl",
                               "--metrics-period=0"});
  EXPECT_EQ(code, 1);
  EXPECT_NE(err.find("--metrics-period must be positive"), std::string::npos) << err;
}

TEST_F(CliTest, TelemetryFlagsRejectedUnderSimBackend) {
  // The DES has no wall-clock threads to trace or sample.
  auto [tcode, tout, terr] = run({"simulate", "--duration=1", "--trace=t.json"});
  EXPECT_EQ(tcode, 1);
  EXPECT_NE(terr.find("need a live runtime"), std::string::npos) << terr;

  auto [mcode, mout, merr] =
      run({"simulate", "--duration=1", "--metrics-out=m.jsonl"});
  EXPECT_EQ(mcode, 1);
  EXPECT_NE(merr.find("need a live runtime"), std::string::npos) << merr;
}

TEST_F(CliTest, TracedRunWritesChromeJsonAndMetricsJsonl) {
  const std::string trace_path = ::testing::TempDir() + "/cli_trace.json";
  const std::string metrics_path = ::testing::TempDir() + "/cli_metrics.jsonl";
  auto [code, out, err] =
      run({"run", "--engine=pool", "--workers=2", "--seconds=0.5",
           "--trace=" + trace_path, "--metrics-out=" + metrics_path,
           "--metrics-period=0.1"});
  EXPECT_EQ(code, 0) << err;
  EXPECT_NE(out.find("trace:"), std::string::npos) << out;
  EXPECT_NE(out.find("metrics:"), std::string::npos) << out;
  // The rho/blk/q_hi telemetry columns appear in the per-operator table.
  EXPECT_NE(out.find("rho"), std::string::npos) << out;
  EXPECT_NE(out.find("q_hi"), std::string::npos) << out;

  std::ifstream trace_file(trace_path);
  std::stringstream trace_buf;
  trace_buf << trace_file.rdbuf();
  EXPECT_NE(trace_buf.str().find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace_buf.str().find("thread_name"), std::string::npos);

  std::ifstream metrics_file(metrics_path);
  std::string line;
  std::size_t lines = 0;
  while (std::getline(metrics_file, line)) {
    if (line.empty()) continue;
    ++lines;
    EXPECT_EQ(line.front(), '{') << line;
    EXPECT_EQ(line.back(), '}') << line;
    EXPECT_NE(line.find("\"ops\":["), std::string::npos) << line;
  }
  EXPECT_GE(lines, 2u);  // >= 0.5s run at 0.1s period, plus the final sample
}

// ---------------------------------------------------------------------------
// Latency-aware optimization flags (--slo-p99, --objective).

TEST_F(CliTest, AutoAcceptsSloAndObjectiveFlags) {
  auto [code, out, err] = run({"auto", "--slo-p99=50", "--objective=latency"});
  EXPECT_EQ(code, 0) << err;
  EXPECT_NE(out.find("slo: p99"), std::string::npos) << out;
  EXPECT_NE(out.find("-> met"), std::string::npos) << out;
  // The latency objective overshoots ceil(rho) on this bottlenecked
  // pipeline (slow at rho 2.5 is left near saturation by pure fission).
  EXPECT_NE(out.find("latency overshoot:"), std::string::npos) << out;
}

TEST_F(CliTest, AutoReportsInfeasibleSlo) {
  // 0.1 ms is below the pipeline's bare service time: no deployment can
  // meet it and the CLI must say so rather than pretend.
  auto [code, out, err] = run({"auto", "--slo-p99=0.1"});
  EXPECT_EQ(code, 0) << err;
  EXPECT_NE(out.find("INFEASIBLE (best effort deployed)"), std::string::npos) << out;
}

TEST_F(CliTest, RejectsNonPositiveSlo) {
  auto [zcode, zout, zerr] = run({"auto", "--slo-p99=0"});
  EXPECT_EQ(zcode, 1);
  EXPECT_NE(zerr.find("--slo-p99 must be positive"), std::string::npos) << zerr;

  auto [ncode, nout, nerr] = run({"run", "--seconds=0.1", "--slo-p99=-5"});
  EXPECT_EQ(ncode, 1);
  EXPECT_NE(nerr.find("--slo-p99 must be positive"), std::string::npos) << nerr;
}

TEST_F(CliTest, RejectsUnknownObjective) {
  auto [code, out, err] = run({"auto", "--objective=speed"});
  EXPECT_EQ(code, 1);
  EXPECT_NE(err.find("--objective must be"), std::string::npos) << err;

  auto [scode, sout, serr] = run({"simulate", "--duration=1", "--objective=speed"});
  EXPECT_EQ(scode, 1);
  EXPECT_NE(serr.find("--objective must be"), std::string::npos) << serr;
}

TEST_F(CliTest, SimulatePrintsPredictedLatencyNextToMeasured) {
  auto [code, out, err] = run({"simulate", "--duration=40", "--slo-p99=100"});
  EXPECT_EQ(code, 0) << err;
  EXPECT_NE(out.find("pred (ms)"), std::string::npos) << out;
  EXPECT_NE(out.find("pred p99"), std::string::npos) << out;
  EXPECT_NE(out.find("predicted end-to-end latency:"), std::string::npos) << out;
  EXPECT_NE(out.find("slo: measured p99"), std::string::npos) << out;
}

TEST_F(CliTest, RunPrintsPredictedLatencyNextToMeasured) {
  auto [code, out, err] = run({"run", "--seconds=0.4", "--slo-p99=100"});
  EXPECT_EQ(code, 0) << err;
  EXPECT_NE(out.find("pred ms"), std::string::npos) << out;
  EXPECT_NE(out.find("pred p99"), std::string::npos) << out;
  EXPECT_NE(out.find("predicted end-to-end:"), std::string::npos) << out;
  EXPECT_NE(out.find("slo: measured p99"), std::string::npos) << out;
}

// ---------------------------------------------------------------------------
// Checkpointing & recovery flags (--checkpoint-dir, --checkpoint-period,
// --recover, --items).

TEST_F(CliTest, RunRejectsUnwritableCheckpointDir) {
  // A plain file where the directory should go: validated at startup, not
  // at the first fence.
  const std::string blocker = ::testing::TempDir() + "/cli_ckpt_blocker";
  std::ofstream(blocker) << "not a directory";
  auto [code, out, err] =
      run({"run", "--seconds=0.1", "--checkpoint-dir=" + blocker});
  EXPECT_EQ(code, 1);
  EXPECT_NE(err.find("checkpoint: cannot create directory"), std::string::npos) << err;
}

TEST_F(CliTest, RunRejectsNonPositiveCheckpointPeriod) {
  const std::string dir = ::testing::TempDir() + "/cli_ckpt_period";
  auto [code, out, err] = run({"run", "--seconds=0.1", "--checkpoint-dir=" + dir,
                               "--checkpoint-period=0"});
  EXPECT_EQ(code, 1);
  EXPECT_NE(err.find("--checkpoint-period must be positive"), std::string::npos) << err;
}

TEST_F(CliTest, CheckpointPeriodAndRecoverRequireDir) {
  auto [pcode, pout, perr] = run({"run", "--seconds=0.1", "--checkpoint-period=1"});
  EXPECT_EQ(pcode, 1);
  EXPECT_NE(perr.find("--checkpoint-period requires --checkpoint-dir"),
            std::string::npos)
      << perr;

  auto [rcode, rout, rerr] = run({"run", "--seconds=0.1", "--recover"});
  EXPECT_EQ(rcode, 1);
  EXPECT_NE(rerr.find("--recover requires --checkpoint-dir"), std::string::npos) << rerr;
}

TEST_F(CliTest, CheckpointFlagsRejectedUnderSimBackend) {
  // The DES has no live actor graph to fence or restore.
  for (const std::string flag :
       {std::string("--checkpoint-dir=/tmp/x"), std::string("--checkpoint-period=1"),
        std::string("--recover"), std::string("--items=100")}) {
    auto [code, out, err] = run({"simulate", "--duration=1", flag});
    EXPECT_EQ(code, 1) << flag;
    EXPECT_NE(err.find("need a live runtime"), std::string::npos) << flag << ": " << err;
  }
}

TEST_F(CliTest, RunRejectsNonPositiveItems) {
  auto [code, out, err] = run({"run", "--items=0"});
  EXPECT_EQ(code, 1);
  EXPECT_NE(err.find("--items must be a positive integer"), std::string::npos) << err;
}

TEST_F(CliTest, CheckpointedRunPrintsFooterAndWritesFinalSnapshot) {
  const std::string dir = ::testing::TempDir() + "/cli_ckpt_run_" +
                          ::testing::UnitTest::GetInstance()->current_test_info()->name();
  std::filesystem::remove_all(dir);
  auto [code, out, err] = run({"run", "--items=1500", "--seconds=20",
                               "--checkpoint-dir=" + dir, "--checkpoint-period=0.1"});
  EXPECT_EQ(code, 0) << err;
  EXPECT_NE(out.find("checkpoints:"), std::string::npos) << out;
  std::ifstream final_file(dir + "/final.bin", std::ios::binary);
  EXPECT_TRUE(final_file.good());
}

TEST_F(CliTest, RecoverOnEmptyDirStartsFresh) {
  // A crash before the first snapshot must be restartable with the exact
  // same command line: an empty directory is a fresh start, not an error.
  const std::string dir = ::testing::TempDir() + "/cli_ckpt_fresh_" +
                          ::testing::UnitTest::GetInstance()->current_test_info()->name();
  std::filesystem::remove_all(dir);
  auto [code, out, err] = run({"run", "--items=500", "--seconds=20", "--recover",
                               "--checkpoint-dir=" + dir});
  EXPECT_EQ(code, 0) << err;
  EXPECT_NE(out.find("recover: no valid checkpoint"), std::string::npos) << out;
}

TEST_F(CliTest, MailboxFlagSelectsEitherInboxEngine) {
  auto [rcode, rout, rerr] = run(
      {"run", "--engine=pool", "--workers=2", "--mailbox=ring", "--seconds=0.3"});
  EXPECT_EQ(rcode, 0) << rerr;
  EXPECT_NE(rout.find("src"), std::string::npos);

  auto [mcode, mout, merr] = run(
      {"run", "--engine=pool", "--workers=2", "--mailbox=mutex", "--seconds=0.3"});
  EXPECT_EQ(mcode, 0) << merr;
  EXPECT_NE(mout.find("src"), std::string::npos);
}

TEST_F(CliTest, RunRejectsUnknownMailboxKind) {
  auto [code, out, err] =
      run({"run", "--engine=pool", "--mailbox=carrier-pigeon", "--seconds=0.1"});
  EXPECT_EQ(code, 1);
  EXPECT_NE(err.find("unknown mailbox kind"), std::string::npos) << err;
}

TEST_F(CliTest, PinAndMailboxRejectedUnderSimBackend) {
  // The simulator has no worker threads or inboxes to configure.
  auto [pcode, pout, perr] = run({"run", "--engine=sim", "--pin=cores"});
  EXPECT_EQ(pcode, 1);
  EXPECT_NE(perr.find("--pin/--mailbox configure the live runtime"),
            std::string::npos)
      << perr;

  auto [mcode, mout, merr] = run({"simulate", "--mailbox=ring", "--duration=1"});
  EXPECT_EQ(mcode, 1);
  EXPECT_NE(merr.find("--pin/--mailbox configure the live runtime"),
            std::string::npos)
      << merr;
}

TEST_F(CliTest, PinRequiresThePoolEngine) {
  // Dedicated-thread actors are scheduled by the OS; only pool workers pin.
  auto [code, out, err] = run({"run", "--pin=cores", "--seconds=0.1"});
  EXPECT_EQ(code, 1);
  EXPECT_NE(err.find("--pin maps pool workers onto CPUs"), std::string::npos) << err;
}

TEST_F(CliTest, RunRejectsUnknownPinMode) {
  auto [code, out, err] =
      run({"run", "--engine=pool", "--pin=diagonal", "--seconds=0.1"});
  EXPECT_EQ(code, 1);
  EXPECT_NE(err.find("unknown pin mode"), std::string::npos) << err;
}

TEST_F(CliTest, PinnedPoolRunExecutes) {
  // --pin=cores and --pin=sockets must run end to end on any host: when
  // affinity syscalls are unavailable the runtime warns and continues
  // unpinned rather than failing the run.
  for (const char* mode : {"cores", "sockets", "none"}) {
    auto [code, out, err] = run({"run", "--engine=pool", "--workers=2",
                                 std::string("--pin=") + mode, "--seconds=0.3"});
    EXPECT_EQ(code, 0) << "--pin=" << mode << ": " << err;
    EXPECT_NE(out.find("src"), std::string::npos);
  }
}

// ---------------------------------------------------------------------------
// Online profiler + live stats endpoint flags

/// Asks the kernel for a free loopback port (bind 0, read back, close).
int free_loopback_port() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  EXPECT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  socklen_t len = sizeof(addr);
  EXPECT_EQ(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len), 0);
  const int port = ntohs(addr.sin_port);
  ::close(fd);
  return port;
}

/// Minimal HTTP/1.0 GET against 127.0.0.1:`port`; whole response or "".
std::string loopback_get(int port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return {};
  }
  const std::string req = "GET " + path + " HTTP/1.0\r\n\r\n";
  (void)!::send(fd, req.data(), req.size(), 0);
  std::string response;
  char buf[4096];
  for (;;) {
    const auto n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST_F(CliTest, RunRejectsMalformedStatsPort) {
  auto [zcode, zout, zerr] = run({"run", "--stats-port=0", "--seconds=0.1"});
  EXPECT_EQ(zcode, 1);
  EXPECT_NE(zerr.find("--stats-port must be a port number"), std::string::npos) << zerr;

  auto [hcode, hout, herr] = run({"run", "--stats-port=99999", "--seconds=0.1"});
  EXPECT_EQ(hcode, 1);
  EXPECT_NE(herr.find("--stats-port must be a port number"), std::string::npos) << herr;
}

TEST_F(CliTest, RunFailsFastWhenStatsPortIsTaken) {
  // Occupy a port, then ask the run to serve on it: the server binds in
  // its constructor, before any actor thread starts, so the run must fail
  // up front with a bind error instead of executing without the endpoint.
  const int port = free_loopback_port();
  const int holder = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  ASSERT_EQ(::bind(holder, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  ASSERT_EQ(::listen(holder, 1), 0);

  auto [code, out, err] =
      run({"run", "--stats-port=" + std::to_string(port), "--seconds=0.1"});
  EXPECT_EQ(code, 1);
  EXPECT_NE(err.find("cannot bind 127.0.0.1:" + std::to_string(port)),
            std::string::npos)
      << err;
  ::close(holder);
}

TEST_F(CliTest, StatsPortAndProfileRejectedUnderSimBackend) {
  auto [scode, sout, serr] =
      run({"simulate", "--duration=1", "--stats-port=19876"});
  EXPECT_EQ(scode, 1);
  EXPECT_NE(serr.find("need a live runtime"), std::string::npos) << serr;

  auto [pcode, pout, perr] = run({"simulate", "--duration=1", "--profile=off"});
  EXPECT_EQ(pcode, 1);
  EXPECT_NE(perr.find("need a live runtime"), std::string::npos) << perr;
}

TEST_F(CliTest, RunRejectsUnknownProfileMode) {
  auto [code, out, err] = run({"run", "--profile=banana", "--seconds=0.1"});
  EXPECT_EQ(code, 1);
  EXPECT_NE(err.find("--profile must be 'on' or 'off'"), std::string::npos) << err;
}

TEST_F(CliTest, ProfileToggleControlsTheEstimatorBlock) {
  // On (the default): the pooled run prints estimated service rates.
  auto [code, out, err] =
      run({"run", "--engine=pool", "--workers=2", "--seconds=0.6"});
  EXPECT_EQ(code, 0) << err;
  EXPECT_NE(out.find("profiler: estimated non-blocking service rates"),
            std::string::npos)
      << out;

  // Off: the estimator is never constructed, so the block cannot appear.
  auto [ocode, oout, oerr] =
      run({"run", "--engine=pool", "--workers=2", "--seconds=0.6", "--profile=off"});
  EXPECT_EQ(ocode, 0) << oerr;
  EXPECT_EQ(oout.find("profiler:"), std::string::npos) << oout;
}

TEST_F(CliTest, StatsPortServesJsonAndPrometheusDuringTheRun) {
  const int port = free_loopback_port();
  std::tuple<int, std::string, std::string> result;
  std::thread runner([&] {
    result = run({"run", "--engine=pool", "--workers=2", "--seconds=1.5",
                  "--stats-port=" + std::to_string(port)});
  });
  // Poll until the endpoint answers (the server starts with the engine).
  std::string json;
  for (int i = 0; i < 40 && json.find("\"ops\":[") == std::string::npos; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    json = loopback_get(port, "/stats.json");
  }
  const std::string prom = loopback_get(port, "/metrics");
  const std::string missing = loopback_get(port, "/bogus");
  runner.join();

  EXPECT_EQ(std::get<0>(result), 0) << std::get<2>(result);
  EXPECT_NE(std::get<1>(result).find("stats: served http://127.0.0.1:"),
            std::string::npos);
  EXPECT_NE(json.find("200 OK"), std::string::npos) << json.substr(0, 200);
  EXPECT_NE(json.find("\"name\":\"src\""), std::string::npos);
  EXPECT_NE(json.find("\"sched\":{"), std::string::npos);
  EXPECT_NE(prom.find("ss_op_processed_total{op=\"src\"}"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE ss_epoch gauge"), std::string::npos);
  EXPECT_NE(missing.find("404"), std::string::npos);

  // After the run the socket is closed: the endpoint must not outlive it.
  EXPECT_TRUE(loopback_get(port, "/stats.json").empty());
}

TEST_F(CliTest, MultiTenantRunRejectsStatsPort) {
  auto [code, out, err] =
      run({"run", "--app=" + path_, "--app=" + path_, "--seconds=0.1",
           "--stats-port=19321"},
          false);
  EXPECT_EQ(code, 1);
  EXPECT_NE(err.find("--stats-port serves a single engine"), std::string::npos)
      << err;
}

TEST_F(CliTest, GenerateProducesLoadableXml) {
  const std::string out_path = ::testing::TempDir() + "/cli_random.xml";
  auto [code, out, err] = run({"generate", "--seed=9", "--out=" + out_path}, false);
  EXPECT_EQ(code, 0) << err;
  // The generated description must round-trip through validate.
  auto [vcode, vout, verr] = run({"validate", out_path}, false);
  EXPECT_EQ(vcode, 0) << verr;
}

}  // namespace
}  // namespace ss::cli
