// End-to-end latency metering tests: a deterministic pipeline whose only
// delay is one operator's known service time, so the reported percentiles
// can be checked against the analytic value on both execution backends.
// The source paces slower than the operator serves, so no queueing delay
// accumulates and end-to-end latency ~= the operator's service time.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <thread>

#include "runtime/engine.hpp"

namespace ss::runtime {
namespace {

using std::chrono::duration;

constexpr double kServiceSeconds = 3e-3;  // the metered operator's delay
constexpr double kPaceSeconds = 7e-3;     // source inter-arrival gap
constexpr std::int64_t kItems = 120;

class PacedSource final : public SourceLogic {
 public:
  bool next(Tuple& out) override {
    if (next_id_ >= kItems) return false;
    std::this_thread::sleep_for(duration<double>(kPaceSeconds));
    out = Tuple{};
    out.id = next_id_++;
    return true;
  }

 private:
  std::int64_t next_id_ = 0;
};

class FixedService final : public OperatorLogic {
 public:
  explicit FixedService(double seconds) : seconds_(seconds) {}
  void process(const Tuple& item, OpIndex, Collector& out) override {
    if (seconds_ > 0.0) std::this_thread::sleep_for(duration<double>(seconds_));
    out.emit(item);
  }
  std::unique_ptr<OperatorLogic> clone() const override {
    return std::make_unique<FixedService>(seconds_);
  }

 private:
  double seconds_;
};

Topology pipeline_topology() {
  Topology::Builder b;
  b.add_operator("src", kPaceSeconds);
  b.add_operator("work", kServiceSeconds);
  b.add_operator("sink", 1e-6);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  return b.build();
}

AppFactory paced_factory() {
  AppFactory factory;
  factory.source = [](OpIndex, const OperatorSpec&) { return std::make_unique<PacedSource>(); };
  factory.logic = [](OpIndex op, const OperatorSpec&) -> std::unique_ptr<OperatorLogic> {
    return std::make_unique<FixedService>(op == 1 ? kServiceSeconds : 0.0);
  };
  return factory;
}

/// Every tuple is metered once end-to-end, p50 sits in a band around the
/// analytic service time, and the tail stays bounded (the run has no
/// queueing, so anything much above the service time is scheduler noise).
void check_latency(const RunStats& stats) {
  EXPECT_EQ(stats.end_to_end.count, static_cast<std::uint64_t>(kItems));
  // Lower bound: the tuple cannot leave before its 3 ms of service (minus
  // the ~3% histogram bucket resolution).  Upper bound: service + pacing
  // headroom; p50 far above this means latency is being over-counted.
  EXPECT_GE(stats.end_to_end.p50, kServiceSeconds * 0.9);
  EXPECT_LE(stats.end_to_end.p50, kServiceSeconds + kPaceSeconds);
  EXPECT_LE(stats.end_to_end.p99, 40e-3);
  EXPECT_GE(stats.end_to_end.p99, stats.end_to_end.p50);
  EXPECT_GE(stats.end_to_end.mean, kServiceSeconds * 0.9);
  // Per-operator arrival latency: the worker sees tuples almost as soon as
  // they are stamped (hop delay only); the sink sees them one service
  // time later.  The source itself is never metered.
  EXPECT_EQ(stats.ops[0].latency.count, 0u);
  EXPECT_EQ(stats.ops[1].latency.count, static_cast<std::uint64_t>(kItems));
  EXPECT_EQ(stats.ops[2].latency.count, static_cast<std::uint64_t>(kItems));
  EXPECT_LT(stats.ops[1].latency.p50, kServiceSeconds);
  EXPECT_GE(stats.ops[2].latency.p50, kServiceSeconds * 0.9);
}

TEST(LatencyMetering, ThreadPerActorMatchesAnalyticServiceTime) {
  EngineConfig cfg;  // defaults: thread-per-actor
  Engine engine(pipeline_topology(), Deployment{}, paced_factory(), cfg);
  const RunStats stats = engine.run_until_complete(duration<double>(30.0));
  check_latency(stats);
}

TEST(LatencyMetering, WorkStealingPoolMatchesAnalyticServiceTime) {
  EngineConfig cfg;
  cfg.scheduler = SchedulerKind::kPooled;
  cfg.workers = 2;
  Engine engine(pipeline_topology(), Deployment{}, paced_factory(), cfg);
  const RunStats stats = engine.run_until_complete(duration<double>(30.0));
  check_latency(stats);
}

TEST(LatencyMetering, SteadyStateWindowGatesRunForSamples) {
  // run_for() meters only after warmup: with a 30% warmup over ~0.5 s the
  // sample count must be well below the total stream, but non-zero.
  EngineConfig cfg;
  cfg.scheduler = SchedulerKind::kPooled;
  cfg.workers = 2;
  Engine engine(pipeline_topology(), Deployment{}, paced_factory(), cfg);
  const RunStats stats = engine.run_for(duration<double>(0.6));
  EXPECT_GT(stats.end_to_end.count, 0u);
  EXPECT_LT(stats.end_to_end.count, static_cast<std::uint64_t>(kItems));
  if (stats.end_to_end.count > 0) {
    EXPECT_GE(stats.end_to_end.p50, kServiceSeconds * 0.9);
  }
}

}  // namespace
}  // namespace ss::runtime
