// Tests of the testbed generator: Zipf distributions, Algorithm 5 shape
// properties (seed-swept TEST_P), workload assignment, and the
// flow-conservation property of Alg. 1 on random topologies.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/error.hpp"
#include "core/paths.hpp"
#include "core/steady_state.hpp"
#include "gen/random_topology.hpp"
#include "gen/workload.hpp"
#include "gen/zipf.hpp"
#include "ops/registry.hpp"

namespace ss {
namespace {

// ------------------------------------------------------------------- zipf

TEST(Zipf, ProbabilitiesAreNormalizedAndDecreasing) {
  const auto p = zipf_probabilities(100, 1.5);
  double total = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    total += p[i];
    if (i > 0) {
      EXPECT_LE(p[i], p[i - 1]);
    }
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(Zipf, HigherAlphaIsMoreSkewed) {
  const auto mild = zipf_probabilities(50, 1.1);
  const auto steep = zipf_probabilities(50, 3.0);
  EXPECT_GT(steep[0], mild[0]);
  EXPECT_LT(steep[49], mild[49]);
}

TEST(Zipf, SamplerFrequenciesConverge) {
  ZipfSampler sampler(10, 1.5);
  Rng rng(42);
  std::vector<int> counts(10, 0);
  constexpr int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) counts[sampler.sample(rng)]++;
  for (std::size_t k = 0; k < 10; ++k) {
    EXPECT_NEAR(counts[k] / static_cast<double>(kDraws), sampler.probabilities()[k], 0.01);
  }
}

TEST(Zipf, ShuffledKeepsMassButPermutesRanks) {
  Rng rng(9);
  const auto p = shuffled_zipf_probabilities(20, 2.0, rng);
  double total = 0.0;
  for (double v : p) total += v;
  EXPECT_NEAR(total, 1.0, 1e-12);
  // The same multiset of values as the unshuffled vector.
  auto sorted = p;
  std::sort(sorted.begin(), sorted.end(), std::greater<>());
  const auto reference = zipf_probabilities(20, 2.0);
  for (std::size_t i = 0; i < 20; ++i) EXPECT_NEAR(sorted[i], reference[i], 1e-12);
}

TEST(Zipf, RejectsBadParameters) {
  EXPECT_THROW((void)zipf_probabilities(0, 1.0), Error);
  EXPECT_THROW((void)zipf_probabilities(5, 0.0), Error);
}

// --------------------------------------------------------------- Algorithm 5

TEST(RandomShape, RejectsInfeasibleEdgeCounts) {
  Rng rng(1);
  EXPECT_THROW((void)random_shape(rng, 5, 3), Error);   // < V-1: too few
  EXPECT_THROW((void)random_shape(rng, 5, 11), Error);  // > V(V-1)/2: too many
  EXPECT_THROW((void)random_shape(rng, 1, 0), Error);
}

class ShapeSeedTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ShapeSeedTest, ShapesSatisfyAlgorithm5Invariants) {
  Rng rng(GetParam());
  for (int round = 0; round < 10; ++round) {
    const TopologyShape shape = random_shape(rng);
    ASSERT_GE(shape.num_vertices, 2);
    ASSERT_LE(shape.num_vertices, 20);
    std::set<std::pair<int, int>> seen;
    for (const auto& [from, to] : shape.edges) {
      EXPECT_LT(from, to) << "edges must respect the topological numbering";
      EXPECT_GE(from, 0);
      EXPECT_LT(to, shape.num_vertices);
      EXPECT_TRUE(seen.insert({from, to}).second) << "duplicate edge";
    }
    // Single source: only vertex 0 lacks inputs.
    for (int v = 1; v < shape.num_vertices; ++v) {
      EXPECT_GT(shape.in_degree(v), 0) << "vertex " << v << " has no input";
    }
    EXPECT_EQ(shape.in_degree(0), 0);
    // Edge count is at least the spanning requirement.
    EXPECT_GE(static_cast<int>(shape.edges.size()), shape.num_vertices - 1);
  }
}

TEST_P(ShapeSeedTest, WorkloadTopologiesBuildAndAreSound) {
  Rng rng(GetParam() ^ 0xabcdef);
  for (int round = 0; round < 5; ++round) {
    // Building a Topology validates rooted/acyclic/reachable/probability
    // invariants, so surviving build() is itself the property.
    Topology t = random_topology(rng);
    EXPECT_EQ(t.source(), 0u);
    EXPECT_GE(t.num_operators(), 2u);
    // The source must out-pace the fastest operator by 33% (§5.3).
    double fastest = 0.0;
    for (OpIndex i = 1; i < t.num_operators(); ++i) {
      fastest = std::max(fastest, t.op(i).service_rate());
    }
    EXPECT_NEAR(t.op(0).service_rate(), 1.33 * fastest, 1e-6 * fastest);
    // Operators carry known implementations and legal annotations.
    for (OpIndex i = 1; i < t.num_operators(); ++i) {
      const OperatorSpec& op = t.op(i);
      EXPECT_TRUE(ops::is_known_impl(op.impl)) << op.impl;
      if (op.state == StateKind::kPartitionedStateful) {
        EXPECT_FALSE(op.keys.empty());
      }
      if (ops::catalog_entry(op.impl).requires_multi_input) {
        EXPECT_GE(t.in_edges(i).size(), 2u);
      }
    }
  }
}

TEST_P(ShapeSeedTest, FlowConservationOnRandomUnitSelectivityTopologies) {
  // Proposition 3.5, property-tested: with unit selectivities the corrected
  // source rate equals the total sink departure rate.
  Rng rng(GetParam() ^ 0x5eed);
  WorkloadOptions w;
  w.unit_selectivity = true;
  for (int round = 0; round < 5; ++round) {
    Topology t = random_topology(rng, {}, w);
    SteadyStateResult r = steady_state(t);
    EXPECT_TRUE(r.has_bottleneck());  // the 33% rule guarantees one
    EXPECT_NEAR(r.sink_rate, r.source_rate, 1e-6 * r.source_rate);
    // Eq. 1 cross-check: arrival rates equal delta_1 * path coefficients
    // for every non-saturated prefix... at fixpoint every rho <= 1, so the
    // coefficients reproduce all arrival rates exactly.
    const auto coeff = arrival_coefficients(t);
    for (OpIndex i = 0; i < t.num_operators(); ++i) {
      EXPECT_NEAR(r.rates[i].arrival, r.source_rate * coeff[i],
                  1e-6 * (1.0 + r.rates[i].arrival));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShapeSeedTest,
                         ::testing::Values(1u, 2u, 3u, 17u, 1234u, 987654321u));

TEST(Testbed, IsDeterministicPerSeed) {
  const auto a = make_testbed(2018, 5);
  const auto b = make_testbed(2018, 5);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].num_operators(), b[i].num_operators());
    ASSERT_EQ(a[i].num_edges(), b[i].num_edges());
    for (OpIndex j = 0; j < a[i].num_operators(); ++j) {
      EXPECT_EQ(a[i].op(j).name, b[i].op(j).name);
      EXPECT_DOUBLE_EQ(a[i].op(j).service_time, b[i].op(j).service_time);
    }
  }
}

TEST(Testbed, FiftyTopologiesCoverTheOperatorMix) {
  const auto testbed = make_testbed(2018, 50);
  ASSERT_EQ(testbed.size(), 50u);
  int stateless = 0;
  int partitioned = 0;
  int stateful = 0;
  for (const Topology& t : testbed) {
    for (OpIndex i = 1; i < t.num_operators(); ++i) {
      switch (t.op(i).state) {
        case StateKind::kStateless:
          ++stateless;
          break;
        case StateKind::kPartitionedStateful:
          ++partitioned;
          break;
        case StateKind::kStateful:
          ++stateful;
          break;
      }
    }
  }
  // The paper's testbed had 678 operators across 50 topologies; sizes are
  // random so just require a comparable scale and all three state classes.
  EXPECT_GT(stateless + partitioned + stateful, 200);
  EXPECT_GT(stateless, 0);
  EXPECT_GT(partitioned, 0);
  EXPECT_GT(stateful, 0);
}

// ------------------------------------------------------------ ops catalog

TEST(Catalog, HasTwentyOperators) {
  EXPECT_EQ(ops::catalog().size(), 20u);
  std::set<std::string> names;
  for (const auto& e : ops::catalog()) {
    EXPECT_TRUE(names.insert(e.impl).second) << "duplicate impl " << e.impl;
    EXPECT_GT(e.service_min, 0.0);
    EXPECT_GE(e.service_max, e.service_min);
    EXPECT_GT(e.out_sel_min, 0.0);
    EXPECT_GE(e.out_sel_max, e.out_sel_min);
  }
}

TEST(Catalog, LookupAndErrors) {
  EXPECT_TRUE(ops::is_known_impl("skyline"));
  EXPECT_FALSE(ops::is_known_impl("bogus"));
  EXPECT_EQ(ops::catalog_entry("band_join").requires_multi_input, true);
  EXPECT_THROW((void)ops::catalog_entry("bogus"), Error);
}

}  // namespace
}  // namespace ss
